package thermosc

import (
	"math"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	p, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 3 {
		t.Fatalf("NumCores = %d", p.NumCores())
	}
	if p.AmbientC() != 35 {
		t.Fatalf("AmbientC = %v", p.AmbientC())
	}
	if got := p.VoltageLevels(); len(got) != 15 || got[0] != 0.6 || got[len(got)-1] != 1.3 {
		t.Fatalf("VoltageLevels = %v", got)
	}
	if tc := p.DominantTimeConstant(); tc <= 0 {
		t.Fatalf("DominantTimeConstant = %v", tc)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("invalid grid must error")
	}
	if _, err := New(2, 1, WithVoltageLevels()); err == nil {
		t.Fatal("empty level set must error")
	}
	if _, err := New(2, 1, WithTransitionOverhead(-1)); err == nil {
		t.Fatal("negative overhead must error")
	}
	if _, err := New(2, 1, WithBasePeriod(0)); err == nil {
		t.Fatal("zero period must error")
	}
	if _, err := New(2, 1, WithCoreEdge(-1)); err == nil {
		t.Fatal("negative core edge must error")
	}
	if _, err := New(2, 1, WithConvectionR(0)); err == nil {
		t.Fatal("zero convection resistance must error")
	}
	if _, err := New(2, 1, WithPowerCoefficients(1, 1, -0.1, 6)); err == nil {
		t.Fatal("negative leakage slope must error")
	}
	if _, err := New(2, 1, WithPowerCoefficients(1, 1, 0.05, 0)); err == nil {
		t.Fatal("zero gamma must error")
	}
	if _, err := New(2, 1, WithPaperLevels(7)); err == nil {
		t.Fatal("undefined paper level count must error")
	}
}

func TestSteadyTempC(t *testing.T) {
	p, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	temps, err := p.SteadyTempC([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range temps {
		if math.Abs(tc-35) > 1e-9 {
			t.Fatalf("idle platform should sit at ambient: %v", temps)
		}
	}
	hot, err := p.SteadyTempC([]float64{1.3, 1.3, 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if hot[1] <= 65 {
		t.Fatalf("full throttle should overheat 65 °C: %v", hot)
	}
	if _, err := p.SteadyTempC([]float64{1}); err == nil {
		t.Fatal("wrong vector length must error")
	}
	if _, err := p.SteadyTempC([]float64{-1, 0, 0}); err == nil {
		t.Fatal("negative voltage must error")
	}
}

func TestMaximizeAllMethods(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := p.Compare(65)
	if err != nil {
		t.Fatal(err)
	}
	lns, exs, ao, pco := plans[MethodLNS], plans[MethodEXS], plans[MethodAO], plans[MethodPCO]
	if !(lns.Throughput < exs.Throughput && exs.Throughput < ao.Throughput) {
		t.Fatalf("ordering violated: %v %v %v", lns.Throughput, exs.Throughput, ao.Throughput)
	}
	if pco.Throughput < ao.Throughput-1e-6 {
		t.Fatalf("PCO below AO: %v vs %v", pco.Throughput, ao.Throughput)
	}
	for m, plan := range plans {
		if !plan.Feasible {
			t.Fatalf("%s infeasible", m)
		}
		if plan.PeakC > 65+1e-3 {
			t.Fatalf("%s peak %.3f above threshold", m, plan.PeakC)
		}
		if plan.PeriodS <= 0 || len(plan.Cores) != 3 {
			t.Fatalf("%s plan malformed: %+v", m, plan)
		}
		// Per-core slices tile the period.
		for i, slices := range plan.Cores {
			var sum float64
			for _, sl := range slices {
				sum += sl.Seconds
			}
			if math.Abs(sum-plan.PeriodS) > 1e-9*plan.PeriodS {
				t.Fatalf("%s core %d slices sum to %v, period %v", m, i, sum, plan.PeriodS)
			}
		}
	}
	if _, err := p.Maximize(Method("nope"), 65); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestMinimizePeak(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, tmin, err := p.MinimizePeak(0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Throughput < 0.9-1e-9 {
		t.Fatalf("dual plan misses target: %+v", plan)
	}
	if tmin <= p.AmbientC() || tmin >= 65 {
		t.Fatalf("minimal threshold %.2f implausible (0.9 should be sustainable below 65 °C)", tmin)
	}
	if plan.PeakC > tmin+1e-3 {
		t.Fatalf("plan peak %.3f above the threshold it claims %.3f", plan.PeakC, tmin)
	}
	if _, _, err := p.MinimizePeak(0, 0.1); err == nil {
		t.Fatal("zero target must error")
	}
}

func TestIdealMethod(t *testing.T) {
	p, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Maximize(MethodIdeal, 65)
	if err != nil {
		t.Fatal(err)
	}
	volts, err := p.IdealVoltagesC(65)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range volts {
		mean += v
	}
	mean /= float64(len(volts))
	if math.Abs(plan.Throughput-mean) > 1e-9 {
		t.Fatalf("ideal throughput %v != mean voltage %v", plan.Throughput, mean)
	}
}

func TestVerifyPeakAndTrace(t *testing.T) {
	p, err := New(2, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Maximize(MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := p.VerifyPeakC(plan, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-plan.PeakC) > 0.05 {
		t.Fatalf("verified peak %.4f vs plan peak %.4f", peak, plan.PeakC)
	}
	tr, err := p.Trace(plan, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TimeS) != 1+3*8 || len(tr.CoreTempC) != 2 {
		t.Fatalf("trace shape: %d samples, %d cores", len(tr.TimeS), len(tr.CoreTempC))
	}
	if tr.MaxC() > plan.PeakC+0.5 {
		t.Fatalf("transient trace exceeds stable peak substantially: %.3f vs %.3f", tr.MaxC(), plan.PeakC)
	}
	if tr.CoreTempC[0][0] != 35 {
		t.Fatalf("trace should start at ambient: %v", tr.CoreTempC[0][0])
	}
	if _, err := p.Trace(plan, 0, 8); err == nil {
		t.Fatal("invalid trace request must error")
	}
}

func TestTightThresholdDegradesToShutdown(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	// 2 K above ambient: no active assignment fits, so EXS keeps every
	// core off (the paper's inactive mode) — feasible, zero throughput.
	plan, err := p.Maximize(MethodEXS, 37)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("all-off plan must be feasible")
	}
	if plan.Throughput != 0 {
		t.Fatalf("throughput = %v, want 0", plan.Throughput)
	}
	for _, slices := range plan.Cores {
		for _, sl := range slices {
			if sl.Voltage != 0 {
				t.Fatalf("expected all cores off: %+v", plan.Cores)
			}
		}
	}
	// An empty plan (no schedule) cannot be verified or traced.
	empty := &Plan{Method: MethodEXS}
	if _, err := p.VerifyPeakC(empty, 8); err == nil {
		t.Fatal("verifying a schedule-less plan must error")
	}
	if _, err := p.Trace(empty, 1, 1); err == nil {
		t.Fatal("tracing a schedule-less plan must error")
	}
}

func TestStackedLayersOption(t *testing.T) {
	p, err := New(3, 1, WithStackedLayers(2), WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 6 {
		t.Fatalf("stacked NumCores = %d, want 6", p.NumCores())
	}
	plan, err := p.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("stacked AO infeasible")
	}
	// The stack must be tighter than a planar part with equal core count.
	planar, err := New(3, 2, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := planar.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Throughput >= pp.Throughput {
		t.Fatalf("stacked %.4f should trail planar %.4f", plan.Throughput, pp.Throughput)
	}
	if _, err := New(3, 1, WithStackedLayers(0)); err == nil {
		t.Fatal("invalid layer count must error")
	}
	if _, err := New(3, 1, WithStackedLayers(2), WithCoreLevelModel()); err == nil {
		t.Fatal("stack + core-level must error")
	}
}

func TestCoreLevelModelOption(t *testing.T) {
	p, err := New(3, 1, WithCoreLevelModel(), WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Maximize(MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("AO infeasible on core-level model")
	}
}

func TestTighterPackagingLowersThroughput(t *testing.T) {
	loose, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := New(3, 1, WithPaperLevels(2), WithConvectionR(1.2))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := loose.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := tight.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput >= pl.Throughput {
		t.Fatalf("worse cooling should lower throughput: %v vs %v", pt.Throughput, pl.Throughput)
	}
}

func TestCoreScalesOption(t *testing.T) {
	p, err := New(2, 1, WithPaperLevels(2), WithCoreScales(1.6, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	volts, err := p.IdealVoltagesC(65)
	if err != nil {
		t.Fatal(err)
	}
	if volts[0] >= volts[1] {
		t.Fatalf("power-hungry core should get the lower ideal voltage: %v", volts)
	}
	plan, err := p.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("hetero AO infeasible")
	}
	if _, err := New(2, 1, WithCoreScales()); err == nil {
		t.Fatal("empty scales must error")
	}
	if _, err := New(2, 1, WithCoreScales(1.0)); err == nil {
		t.Fatal("scale count mismatch must error")
	}
	if _, err := New(2, 1, WithCoreScales(1, 1), WithStackedLayers(2)); err == nil {
		t.Fatal("scales + stack must error")
	}
	if _, err := New(2, 1, WithCoreScales(1, 1), WithCoreLevelModel()); err == nil {
		t.Fatal("scales + core-level must error")
	}
}

func TestAmbientOption(t *testing.T) {
	p, err := New(2, 1, WithAmbientC(25))
	if err != nil {
		t.Fatal(err)
	}
	if p.AmbientC() != 25 {
		t.Fatalf("AmbientC = %v", p.AmbientC())
	}
	// Cooler ambient leaves more headroom at the same absolute threshold.
	warm, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := p.Maximize(MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := warm.Maximize(MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Throughput < pw.Throughput-1e-9 {
		t.Fatalf("cooler ambient should not lower throughput: %v vs %v", pc.Throughput, pw.Throughput)
	}
}
