// Package thermosc is a library for throughput maximization on
// temperature-constrained multi-core processors via frequency oscillation,
// reproducing Sha et al., "Performance Maximization via Frequency
// Oscillation on Temperature Constrained Multi-core Processors"
// (ICPP 2016).
//
// The package wraps a compact RC thermal model (HotSpot-style layered
// die/spreader/sink network, leakage/temperature dependency folded into
// the system matrix) and four scheduling policies:
//
//   - MethodLNS — round the ideal continuous speeds down to the lower
//     neighboring discrete mode (baseline).
//   - MethodEXS — exhaustive search over constant per-core modes
//     (the paper's Algorithm 1, implemented with an identical-optimum
//     branch-and-bound).
//   - MethodAO — aligned frequency oscillation (the paper's Algorithm 2):
//     two neighboring modes per core, oscillated m times per period, with
//     TPT-guided ratio adjustment under a provable peak-temperature
//     evaluation.
//   - MethodPCO — phase-conscious oscillation: AO plus per-core phase
//     interleaving and headroom refill.
//
// # Quick start
//
//	plat, err := thermosc.New(3, 1)                    // a 3×1 chip
//	if err != nil { ... }
//	plan, err := plat.Maximize(thermosc.MethodAO, 65)  // Tmax = 65 °C
//	if err != nil { ... }
//	fmt.Printf("throughput %.4f at peak %.2f °C\n", plan.Throughput, plan.PeakC)
//
// All public temperatures are absolute °C; the voltage range and thermal
// package are configurable through Options.
package thermosc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Method selects a scheduling policy.
type Method string

// The available scheduling policies.
const (
	MethodIdeal Method = "Ideal" // continuous-voltage upper bound
	MethodLNS   Method = "LNS"
	MethodEXS   Method = "EXS"
	MethodAO    Method = "AO"
	MethodPCO   Method = "PCO"
)

// Methods lists every policy in comparison order.
func Methods() []Method {
	return []Method{MethodLNS, MethodEXS, MethodAO, MethodPCO}
}

// Platform is a configured multi-core platform: floorplan, thermal model,
// power model, and DVFS capabilities.
type Platform struct {
	model    *thermal.Model
	levels   *power.LevelSet
	overhead power.TransitionOverhead
	period   float64

	// One evaluation engine per platform, built lazily and shared by
	// every solve on this platform: concurrent Maximize calls reuse a
	// single propagator / period-operator pool (bit-identical results,
	// see sim.Engine). The Once makes Platform non-copyable by vet,
	// which is the intent — pass *Platform around.
	engOnce  sync.Once
	engReady atomic.Bool
	eng      *sim.Engine
}

// engine returns the platform's shared evaluation engine.
func (p *Platform) engine() *sim.Engine {
	p.engOnce.Do(func() {
		p.eng = sim.NewEngine(p.model)
		p.engReady.Store(true)
	})
	return p.eng
}

// builtEngine returns the engine only if some solve has already forced
// it — observability paths (stats snapshots) must not pay the engine
// build for platforms that never solved.
func (p *Platform) builtEngine() *sim.Engine {
	if !p.engReady.Load() {
		return nil
	}
	return p.eng
}

// New builds a rows×cols grid platform with the repository's calibrated
// 65 nm defaults (4×4 mm² cores, 35 °C ambient, 0.6–1.3 V DVFS range in
// 0.05 V steps, 5 µs transition stalls, 20 ms base period), modified by
// the given options.
func New(rows, cols int, opts ...Option) (*Platform, error) {
	cfg := config{
		coreEdge: 4e-3,
		pkg:      thermal.HotSpot65nm(),
		pwr:      power.DefaultModel(),
		levels:   power.FullRange(),
		overhead: power.DefaultOverhead(),
		period:   20e-3,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	fp, err := floorplan.Grid(rows, cols, cfg.coreEdge)
	if err != nil {
		return nil, err
	}
	// Large chips need a proportionally stronger package or no operating
	// point is thermally sustainable; scale the convection path with the
	// core count (identity at ≤16 cores) unless the caller pinned the
	// convection resistance explicitly.
	totalCores := rows * cols
	if cfg.stackLayers > 1 {
		totalCores *= cfg.stackLayers
	}
	if !cfg.convectionSet {
		cfg.pkg = thermal.ScaledPackage(cfg.pkg, totalCores)
	}
	var md *thermal.Model
	switch {
	case cfg.coreLevel != nil && cfg.stackLayers > 1:
		return nil, fmt.Errorf("thermosc: core-level and stacked models are mutually exclusive")
	case cfg.coreScales != nil && cfg.coreLevel != nil:
		return nil, fmt.Errorf("thermosc: core scales are not supported by the core-level model")
	case cfg.coreLevel != nil:
		md, err = thermal.NewCoreLevelModel(fp, *cfg.coreLevel, cfg.pwr)
	case cfg.stackLayers > 1:
		sp := thermal.DefaultStack(cfg.stackLayers)
		sp.PackageParams = cfg.pkg
		sp.Layers = cfg.stackLayers
		md, err = thermal.NewStackedModel(fp, sp, cfg.pwr, thermal.WithHeteroScales(cfg.coreScales))
	default:
		md, err = thermal.NewHeteroModel(fp, cfg.pkg, cfg.pwr, cfg.coreScales)
	}
	if err != nil {
		return nil, err
	}
	return &Platform{
		model:    md,
		levels:   cfg.levels,
		overhead: cfg.overhead,
		period:   cfg.period,
	}, nil
}

// NumCores returns the number of cores.
func (p *Platform) NumCores() int { return p.model.NumCores() }

// AmbientC returns the ambient temperature in °C.
func (p *Platform) AmbientC() float64 { return p.model.Package().AmbientC }

// VoltageLevels returns the available discrete supply voltages, ascending.
func (p *Platform) VoltageLevels() []float64 { return p.levels.Voltages() }

// SteadyTempC returns the steady-state absolute temperature (°C) of every
// core when each runs forever at the given voltage (0 = off). This is the
// paper's T∞ = −A⁻¹B evaluated through the exact linear solve.
func (p *Platform) SteadyTempC(voltages []float64) ([]float64, error) {
	if len(voltages) != p.NumCores() {
		return nil, fmt.Errorf("thermosc: %d voltages for %d cores", len(voltages), p.NumCores())
	}
	modes := make([]power.Mode, len(voltages))
	for i, v := range voltages {
		if v < 0 {
			return nil, fmt.Errorf("thermosc: negative voltage %v", v)
		}
		modes[i] = power.NewMode(v)
	}
	temps := p.model.SteadyStateCores(modes)
	out := make([]float64, len(temps))
	for i, rise := range temps {
		out[i] = p.model.Absolute(rise)
	}
	return out, nil
}

// IdealVoltagesC returns the continuous per-core voltages that pin every
// core's steady temperature at tmaxC (the paper's §V starting point).
func (p *Platform) IdealVoltagesC(tmaxC float64) ([]float64, error) {
	return solver.IdealVoltages(p.model, p.model.Rise(tmaxC), p.levels.Max())
}

// DominantTimeConstant returns the platform's slowest thermal time
// constant in seconds.
func (p *Platform) DominantTimeConstant() float64 {
	return p.model.DominantTimeConstant()
}

// Maximize runs the selected policy against the peak temperature
// threshold tmaxC (absolute °C) and returns the resulting plan.
func (p *Platform) Maximize(m Method, tmaxC float64) (*Plan, error) {
	return p.MaximizeContext(context.Background(), m, tmaxC, 0)
}

// MaximizeContext is Maximize with cancellation and solver tuning: ctx
// cancels or times out the search loops (the AO/PCO m-search, the
// TPT/refill adjustment scans, and the EXS branch-and-bound all observe
// it), and workers sets the parallel fan-out width of the candidate scans
// (0 = GOMAXPROCS; every width returns the identical plan). All solves on
// one Platform share a single evaluation-engine pool, so concurrent
// requests against the same platform reuse each other's thermal
// operators.
func (p *Platform) MaximizeContext(ctx context.Context, m Method, tmaxC float64, workers int) (*Plan, error) {
	prob := solver.Problem{
		Model:      p.model,
		Levels:     p.levels,
		TmaxC:      tmaxC,
		Overhead:   p.overhead,
		BasePeriod: p.period,
		Workers:    workers,
		Ctx:        ctx,
		Engine:     p.engine(),
	}
	var (
		res *solver.Result
		err error
	)
	switch m {
	case MethodIdeal:
		res, err = solver.Ideal(prob)
	case MethodLNS:
		res, err = solver.LNS(prob)
	case MethodEXS:
		res, err = solver.EXS(prob)
	case MethodAO:
		res, err = solver.AO(prob)
	case MethodPCO:
		res, err = solver.PCO(prob)
	default:
		return nil, fmt.Errorf("thermosc: unknown method %q", m)
	}
	if err != nil {
		return nil, err
	}
	return newPlan(p, m, res), nil
}

// MinimizePeak solves the dual problem: the coolest peak-temperature
// threshold (°C, within tolK kelvins) at which the platform still
// sustains the target chip-wide throughput, together with the AO plan
// achieving it. Useful for fan policies and reliability budgeting when
// the performance contract is fixed.
func (p *Platform) MinimizePeak(targetThroughput, tolK float64) (*Plan, float64, error) {
	prob := solver.Problem{
		Model:      p.model,
		Levels:     p.levels,
		TmaxC:      p.model.Package().AmbientC + 30, // placeholder; MinPeak brackets internally
		Overhead:   p.overhead,
		BasePeriod: p.period,
		Engine:     p.engine(),
	}
	res, tmin, err := solver.MinPeak(prob, targetThroughput, tolK)
	if err != nil {
		return nil, 0, err
	}
	return newPlan(p, MethodAO, res), tmin, nil
}

// Compare runs every discrete-mode policy (LNS, EXS, AO, PCO) and returns
// the plans keyed by method.
func (p *Platform) Compare(tmaxC float64) (map[Method]*Plan, error) {
	out := make(map[Method]*Plan, 4)
	for _, m := range Methods() {
		plan, err := p.Maximize(m, tmaxC)
		if err != nil {
			return nil, fmt.Errorf("thermosc: %s: %w", m, err)
		}
		out[m] = plan
	}
	return out, nil
}

// VerifyPeakC independently verifies a plan's peak temperature by a dense
// stable-status search at the given per-interval sampling resolution,
// returning the absolute peak in °C.
func (p *Platform) VerifyPeakC(plan *Plan, samples int) (float64, error) {
	s, err := plan.internalSchedule(p)
	if err != nil {
		return 0, err
	}
	st, err := sim.NewStable(p.model, s)
	if err != nil {
		return 0, err
	}
	peak, _, _ := st.PeakDense(samples)
	return p.model.Absolute(peak), nil
}

// Trace simulates the plan's schedule from ambient for nPeriods periods,
// sampling samplesPerPeriod points per period, and returns absolute core
// temperatures over time.
func (p *Platform) Trace(plan *Plan, nPeriods, samplesPerPeriod int) (*TraceData, error) {
	if nPeriods < 1 || samplesPerPeriod < 1 {
		return nil, fmt.Errorf("thermosc: invalid trace request (%d periods, %d samples)", nPeriods, samplesPerPeriod)
	}
	s, err := plan.internalSchedule(p)
	if err != nil {
		return nil, err
	}
	tr := sim.Transient(p.model, s, p.model.ZeroState(), nPeriods, samplesPerPeriod)
	td := &TraceData{
		TimeS:     append([]float64(nil), tr.Times...),
		CoreTempC: make([][]float64, p.NumCores()),
	}
	for i := 0; i < p.NumCores(); i++ {
		td.CoreTempC[i] = tr.CoreSeries(p.model, i)
	}
	return td, nil
}

// TraceData is a sampled absolute-temperature trajectory per core.
type TraceData struct {
	TimeS     []float64   // sample times in seconds
	CoreTempC [][]float64 // [core][sample] absolute °C
}

// MaxC returns the hottest sampled core temperature in the trace.
func (td *TraceData) MaxC() float64 {
	best := td.CoreTempC[0][0]
	for _, series := range td.CoreTempC {
		if m, _ := mat.VecMax(series); m > best {
			best = m
		}
	}
	return best
}

// Plan is the outcome of Maximize: the periodic schedule to execute and
// its verified characteristics.
type Plan struct {
	Method     Method
	Throughput float64 // chip-wide useful throughput (eq. (5))
	PeakC      float64 // verified stable-status peak, absolute °C
	Feasible   bool    // PeakC respects the threshold
	M          int     // oscillation count (1 for constant-mode plans)
	PeriodS    float64 // period of the schedule below, seconds
	// Cores[i] is core i's periodic voltage timeline (slices in order;
	// lengths sum to PeriodS). Empty when the policy found no feasible
	// assignment.
	Cores   [][]Slice
	Elapsed time.Duration // solver wall-clock time
	// Degraded marks an anytime plan: the solve hit its deadline and this
	// is the best valid plan found so far (or the constant safe floor),
	// not the full search's answer. PeakC/Feasible are still exact for
	// the plan returned — only optimality is lost. Degraded plans are
	// timing-dependent and must never be treated as cache-canonical.
	Degraded bool
	// DegradedReason says how far the search got before truncation (one
	// of the solver's DegradedReason tags, e.g. "m-search-truncated",
	// "safe-floor"). Empty for complete plans.
	DegradedReason string
}

// Slice is one stretch of a core's periodic timeline.
type Slice struct {
	Seconds float64
	Voltage float64 // 0 = core off
}

func newPlan(p *Platform, m Method, res *solver.Result) *Plan {
	plan := &Plan{
		Method:         m,
		Throughput:     res.Throughput,
		PeakC:          res.PeakC(p.model),
		Feasible:       res.Feasible,
		M:              res.M,
		Elapsed:        res.Elapsed,
		Degraded:       res.Degraded != solver.DegradedNone,
		DegradedReason: string(res.Degraded),
	}
	if res.Schedule != nil {
		plan.PeriodS = res.Schedule.Period()
		plan.Cores = make([][]Slice, res.Schedule.NumCores())
		for i := range plan.Cores {
			for _, seg := range res.Schedule.CoreSegments(i) {
				plan.Cores[i] = append(plan.Cores[i], Slice{Seconds: seg.Length, Voltage: seg.Mode.Voltage})
			}
		}
	}
	return plan
}

// internalSchedule rebuilds the internal schedule representation.
func (plan *Plan) internalSchedule(p *Platform) (*schedule.Schedule, error) {
	if len(plan.Cores) == 0 {
		return nil, fmt.Errorf("thermosc: plan %q carries no schedule (infeasible)", plan.Method)
	}
	if len(plan.Cores) != p.NumCores() {
		return nil, fmt.Errorf("thermosc: plan has %d cores, platform %d", len(plan.Cores), p.NumCores())
	}
	cores := make([][]schedule.Segment, len(plan.Cores))
	for i, slices := range plan.Cores {
		for _, sl := range slices {
			cores[i] = append(cores[i], schedule.Segment{
				Length: sl.Seconds,
				Mode:   power.NewMode(sl.Voltage),
			})
		}
	}
	return schedule.New(cores)
}
