package thermosc

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"thermosc/internal/sim"
)

// GovernorTable holds precomputed guaranteed plans for a ladder of peak
// temperature thresholds — the artifact an OS thermal governor consumes:
// measure the operating condition (e.g. current ambient or enclosure
// policy), look up the hottest threshold at or below the allowance, and
// program that plan's command stream. All entries are solved offline with
// full guarantees; the lookup never interpolates (interpolated schedules
// carry no certificate).
type GovernorTable struct {
	// Entries ascend by threshold. Infeasible thresholds (nothing can
	// run) are stored with an all-off plan so lookups below the ladder
	// still return something safe.
	Entries []GovernorEntry `json:"entries"`
}

// GovernorEntry pairs a threshold with its guaranteed plan.
type GovernorEntry struct {
	TmaxC float64 `json:"tmax_c"`
	Plan  *Plan   `json:"plan"`
}

// BuildGovernorTable solves the method at every threshold (°C, any order;
// duplicates rejected) and assembles the lookup table.
func (p *Platform) BuildGovernorTable(method Method, tmaxsC []float64) (*GovernorTable, error) {
	if len(tmaxsC) == 0 {
		return nil, fmt.Errorf("thermosc: empty threshold ladder")
	}
	sorted := append([]float64(nil), tmaxsC...)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("thermosc: duplicate threshold %.2f °C", sorted[i])
		}
	}
	tbl := &GovernorTable{}
	for _, tmax := range sorted {
		if tmax <= p.AmbientC() {
			return nil, fmt.Errorf("thermosc: threshold %.2f °C not above ambient %.2f °C", tmax, p.AmbientC())
		}
		plan, err := p.Maximize(method, tmax)
		if err != nil {
			return nil, fmt.Errorf("thermosc: solving %.2f °C: %w", tmax, err)
		}
		tbl.Entries = append(tbl.Entries, GovernorEntry{TmaxC: tmax, Plan: plan})
	}
	return tbl, nil
}

// PlanFor returns the plan of the hottest threshold ≤ allowanceC, i.e.
// the most aggressive schedule still guaranteed under the allowance. The
// boolean is false when the allowance is below every entry (the caller
// should power down or consult a finer ladder).
func (t *GovernorTable) PlanFor(allowanceC float64) (*Plan, float64, bool) {
	best := -1
	for i, e := range t.Entries {
		if e.TmaxC <= allowanceC+1e-9 {
			best = i
		} else {
			break
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	e := t.Entries[best]
	return e.Plan, e.TmaxC, true
}

// Thresholds lists the ladder, ascending.
func (t *GovernorTable) Thresholds() []float64 {
	out := make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.TmaxC
	}
	return out
}

// Validate checks the structural invariants of a (possibly deserialized)
// table: ascending unique thresholds, plans present, and monotone
// throughput (a hotter allowance never sustains less).
func (t *GovernorTable) Validate() error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("thermosc: empty governor table")
	}
	prevT := math.Inf(-1)
	prevThr := -1.0
	for i, e := range t.Entries {
		if e.TmaxC <= prevT {
			return fmt.Errorf("thermosc: entry %d: thresholds not strictly ascending", i)
		}
		if e.Plan == nil {
			return fmt.Errorf("thermosc: entry %d: missing plan", i)
		}
		if err := e.Plan.validate(); err != nil {
			return fmt.Errorf("thermosc: entry %d: %w", i, err)
		}
		if e.Plan.Throughput < prevThr-1e-9 {
			return fmt.Errorf("thermosc: entry %d: throughput %.4f below the cooler entry's %.4f",
				i, e.Plan.Throughput, prevThr)
		}
		prevT, prevThr = e.TmaxC, e.Plan.Throughput
	}
	return nil
}

// SwitchInfo characterizes hopping between two ladder entries at runtime.
type SwitchInfo struct {
	FromC, ToC float64
	// TransientPeakC is the hottest temperature during the transition.
	TransientPeakC float64
	// SettleSeconds is how long after the switch the chip stays within
	// the DESTINATION threshold's envelope (0 for upward switches that
	// never leave it; -1 if it did not settle within the analysis
	// horizon).
	SettleSeconds float64
	// Safe: an upward switch never exceeds the destination threshold; a
	// downward switch never exceeds the SOURCE threshold and settles.
	Safe bool
}

// AnalyzeSwitching certifies runtime hopping between adjacent ladder
// entries in both directions. The plans must have been built on this
// platform.
func (t *GovernorTable) AnalyzeSwitching(p *Platform) ([]SwitchInfo, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var out []SwitchInfo
	for i := 0; i+1 < len(t.Entries); i++ {
		for _, dir := range [][2]int{{i, i + 1}, {i + 1, i}} {
			from, to := t.Entries[dir[0]], t.Entries[dir[1]]
			info, err := p.analyzeSwitch(from, to)
			if err != nil {
				return nil, fmt.Errorf("thermosc: switch %.1f→%.1f °C: %w", from.TmaxC, to.TmaxC, err)
			}
			out = append(out, *info)
		}
	}
	return out, nil
}

func (p *Platform) analyzeSwitch(from, to GovernorEntry) (*SwitchInfo, error) {
	sFrom, err := from.Plan.internalSchedule(p)
	if err != nil {
		return nil, err
	}
	sTo, err := to.Plan.internalSchedule(p)
	if err != nil {
		return nil, err
	}
	settleRise := p.model.Rise(to.TmaxC) + 1e-6
	maxPeriods := int(12*p.model.DominantTimeConstant()/sTo.Period()) + 2
	rep, err := sim.Switch(p.model, sFrom, sTo, settleRise, maxPeriods, 4)
	if err != nil {
		return nil, err
	}
	info := &SwitchInfo{
		FromC:          from.TmaxC,
		ToC:            to.TmaxC,
		TransientPeakC: p.model.Absolute(rep.PeakRise),
	}
	if rep.SettlePeriods >= 0 {
		info.SettleSeconds = float64(rep.SettlePeriods) * sTo.Period()
	} else {
		info.SettleSeconds = -1
	}
	const slack = 0.05
	if to.TmaxC >= from.TmaxC {
		info.Safe = info.TransientPeakC <= to.TmaxC+slack
	} else {
		info.Safe = info.TransientPeakC <= from.TmaxC+slack && rep.SettlePeriods >= 0
	}
	return info, nil
}

// MarshalJSON/UnmarshalJSON use the Plan interchange format; Unmarshal
// validates the table.
func (t *GovernorTable) UnmarshalJSON(data []byte) error {
	type raw GovernorTable
	var r raw
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	out := GovernorTable(r)
	if err := out.Validate(); err != nil {
		return err
	}
	*t = out
	return nil
}
