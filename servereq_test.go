package thermosc

import (
	"math"
	"strings"
	"testing"
	"time"
)

var testLimits = serveLimits{maxCores: 16, maxVoltages: 64, maxTraceSamples: 1 << 17}

func TestParseMaximizeRequestValidation(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"trailing data", `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO"} {}`, "trailing data"},
		{"stack too deep", `{"platform":{"rows":2,"cols":1,"stack_layers":20},"tmax_c":65,"method":"AO"}`, "cores exceeds"},
		{"negative stack", `{"platform":{"rows":2,"cols":1,"stack_layers":-2},"tmax_c":65,"method":"AO"}`, "stack_layers"},
		{"core_level with stack", `{"platform":{"rows":2,"cols":1,"stack_layers":2,"core_level":true},"tmax_c":65,"method":"AO"}`, "mutually exclusive"},
		{"scales with core_level", `{"platform":{"rows":2,"cols":1,"core_level":true,"core_scales":[1,2]},"tmax_c":65,"method":"AO"}`, "core-level"},
		{"wrong stacked scales length", `{"platform":{"rows":2,"cols":1,"stack_layers":2,"core_scales":[1,2]},"tmax_c":65,"method":"AO"}`, "core_scales"},
		{"bad paper levels", `{"platform":{"rows":2,"cols":1,"paper_levels":9},"tmax_c":65,"method":"AO"}`, "platform"},
		{"too many voltages", `{"platform":{"rows":2,"cols":1,"voltages":[` + strings.Repeat("0.6,", 64) + `1.3]},"tmax_c":65,"method":"AO"}`, "voltage levels"},
		{"huge voltage", `{"platform":{"rows":2,"cols":1,"voltages":[0.6,99]},"tmax_c":65,"method":"AO"}`, "outside [0.001, 10]"},
		{"subnormal voltage", `{"platform":{"rows":2,"cols":1,"voltages":[5e-324,1.0]},"tmax_c":65,"method":"AO"}`, "outside [0.001, 10]"},
		{"subnormal period", `{"platform":{"rows":2,"cols":1,"period_s":5e-324},"tmax_c":65,"method":"AO"}`, "period_s"},
		{"overflowing period", `{"platform":{"rows":2,"cols":1,"period_s":1e999},"tmax_c":65,"method":"AO"}`, "period_s"},
		{"subnormal core edge", `{"platform":{"rows":2,"cols":1,"core_edge_m":1e-300},"tmax_c":65,"method":"AO"}`, "core_edge_m"},
		{"subnormal convection", `{"platform":{"rows":2,"cols":1,"convection_r":4.9e-324},"tmax_c":65,"method":"AO"}`, "convection_r"},
		{"tmax within a mK of ambient", `{"platform":{"rows":2,"cols":1,"ambient_c":35},"tmax_c":35.0001,"method":"AO"}`, "not above ambient"},
		{"overflowing timeout", `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":1e999}`, "decoding"},
		{"NaN timeout", `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":NaN}`, "decoding"},
		{"ambient below zero K", `{"platform":{"rows":2,"cols":1,"ambient_c":-300},"tmax_c":65,"method":"AO"}`, "ambient_c"},
		{"negative period", `{"platform":{"rows":2,"cols":1,"period_s":-1},"tmax_c":65,"method":"AO"}`, "period_s"},
		{"period too long", `{"platform":{"rows":2,"cols":1,"period_s":7200},"tmax_c":65,"method":"AO"}`, "period_s"},
		{"overhead beyond period", `{"platform":{"rows":2,"cols":1,"overhead_s":1},"tmax_c":65,"method":"AO"}`, "overhead_s"},
		{"negative overhead", `{"platform":{"rows":2,"cols":1,"overhead_s":-1e-6},"tmax_c":65,"method":"AO"}`, "overhead_s"},
		{"bad core edge", `{"platform":{"rows":2,"cols":1,"core_edge_m":5},"tmax_c":65,"method":"AO"}`, "core_edge_m"},
		{"bad convection", `{"platform":{"rows":2,"cols":1,"convection_r":-0.1},"tmax_c":65,"method":"AO"}`, "convection_r"},
		{"zero core scale", `{"platform":{"rows":2,"cols":1,"core_scales":[0,1]},"tmax_c":65,"method":"AO"}`, "core scale"},
		{"tmax too hot", `{"platform":{"rows":2,"cols":1},"tmax_c":5000,"method":"AO"}`, "plausible"},
	}
	for _, tc := range cases {
		_, _, _, err := parseMaximizeRequest([]byte(tc.body), testLimits)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseMaximizeRequestCanonicalization(t *testing.T) {
	// All-ones core scales are canonically dropped, so the spellings with
	// and without them share a cache key.
	a := `{"platform":{"rows":2,"cols":1,"core_scales":[1,1]},"tmax_c":65,"method":"AO"}`
	b := `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO"}`
	_, keyA, platA, err := parseMaximizeRequest([]byte(a), testLimits)
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, platB, err := parseMaximizeRequest([]byte(b), testLimits)
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB || platA != platB {
		t.Fatalf("all-ones core_scales changed the key:\n%s\n%s", keyA, keyB)
	}
	// An unsorted duplicated voltage list canonicalizes to the ordered set.
	req, _, _, err := parseMaximizeRequest(
		[]byte(`{"platform":{"rows":2,"cols":1,"voltages":[1.3,0.6,1.3]},"tmax_c":65,"method":"exs"}`), testLimits)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Platform.Voltages) != 2 || req.Platform.Voltages[0] != 0.6 || req.Platform.Voltages[1] != 1.3 {
		t.Fatalf("canonical voltages = %v", req.Platform.Voltages)
	}
	if req.Method != MethodEXS {
		t.Fatalf("method = %q", req.Method)
	}
	// The keys of distinct methods differ.
	_, keyEXS, _, _ := parseMaximizeRequest([]byte(strings.Replace(b, "AO", "EXS", 1)), testLimits)
	if keyEXS == keyB {
		t.Fatal("method is not part of the cache key")
	}
}

// The canonical spec must build the same platform New builds from the
// equivalent options, including the layered and heterogeneous variants.
func TestPlatformSpecBuilds(t *testing.T) {
	for _, body := range []string{
		`{"platform":{"rows":2,"cols":1,"stack_layers":2},"tmax_c":65,"method":"LNS"}`,
		`{"platform":{"rows":2,"cols":1,"core_level":true},"tmax_c":65,"method":"LNS"}`,
		`{"platform":{"rows":2,"cols":1,"core_scales":[1,2]},"tmax_c":65,"method":"LNS"}`,
		`{"platform":{"rows":2,"cols":1,"overhead_s":0},"tmax_c":65,"method":"LNS"}`,
	} {
		req, _, _, err := parseMaximizeRequest([]byte(body), testLimits)
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		plat, err := req.Platform.platform()
		if err != nil {
			t.Fatalf("%s: building: %v", body, err)
		}
		want := req.Platform.Rows * req.Platform.Cols * req.Platform.StackLayers
		if plat.NumCores() != want {
			t.Fatalf("%s: %d cores, want %d", body, plat.NumCores(), want)
		}
	}
}

func TestParseSimulateRequestValidation(t *testing.T) {
	plan := `{"version":1,"method":"AO","throughput":1,"peak_c":60,"feasible":true,"m":1,"period_s":0.02,` +
		`"cores":[[{"Seconds":0.02,"Voltage":0.6}],[{"Seconds":0.02,"Voltage":0.6}]],"solver_elapsed_s":0}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing plan", `{"platform":{"rows":2,"cols":1}}`, "missing plan"},
		{"junk", `nope`, "decoding request"},
		{"trailing", `{"platform":{"rows":2,"cols":1},"plan":` + plan + `} x`, "trailing data"},
		{"bad plan", `{"platform":{"rows":2,"cols":1},"plan":{"version":99}}`, "decoding plan"},
		{"empty plan", `{"platform":{"rows":2,"cols":1},"plan":{"version":1,"method":"AO","period_s":0.02,"cores":[]}}`, "no schedule"},
		{"core mismatch", `{"platform":{"rows":3,"cols":1},"plan":` + plan + `}`, "plan has 2 cores"},
		{"negative periods", `{"platform":{"rows":2,"cols":1},"plan":` + plan + `,"periods":-1}`, "invalid trace"},
		{"oversized trace", `{"platform":{"rows":2,"cols":1},"plan":` + plan + `,"periods":1000,"samples_per_period":1000}`, "exceeds the cap"},
		{"bad platform", `{"platform":{"rows":0,"cols":1},"plan":` + plan + `}`, "rows/cols"},
	}
	for _, tc := range cases {
		_, _, _, _, _, err := parseSimulateRequest([]byte(tc.body), testLimits)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	// Defaults: periods 3, samples 64.
	_, _, periods, samples, _, err := parseSimulateRequest(
		[]byte(`{"platform":{"rows":2,"cols":1},"plan":`+plan+`}`), testLimits)
	if err != nil {
		t.Fatal(err)
	}
	if periods != 3 || samples != 64 {
		t.Fatalf("defaults: %d periods, %d samples", periods, samples)
	}
}

func TestTimeoutFor(t *testing.T) {
	s := NewServer(ServerConfig{DefaultTimeout: 10 * time.Second, MaxTimeout: time.Minute})
	if d := s.timeoutFor(0); d != 10*time.Second {
		t.Fatalf("default: %s", d)
	}
	if d := s.timeoutFor(2); d != 2*time.Second {
		t.Fatalf("explicit: %s", d)
	}
	if d := s.timeoutFor(3600); d != time.Minute {
		t.Fatalf("capped: %s", d)
	}
	if d := s.timeoutFor(1e-12); d != time.Nanosecond {
		t.Fatalf("sub-nanosecond: %s", d)
	}
	// A huge timeout_s overflows the int64 nanosecond conversion; it must
	// cap at MaxTimeout, never wrap into a near-zero deadline.
	for _, huge := range []float64{1e300, 1e18, math.MaxFloat64} {
		if d := s.timeoutFor(huge); d != time.Minute {
			t.Fatalf("timeoutFor(%g) = %s, want the %s cap", huge, d, time.Minute)
		}
	}
}
