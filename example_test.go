package thermosc_test

import (
	"fmt"
	"log"

	"thermosc"
)

// The basic workflow: build a platform, maximize throughput under a peak
// temperature cap, inspect the plan.
func Example() {
	plat, err := thermosc.New(3, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := plat.Maximize(thermosc.MethodAO, 65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible=%v throughput=%.4f peak=%.1f°C\n",
		plan.Feasible, plan.Throughput, plan.PeakC)
	// Output:
	// feasible=true throughput=1.0632 peak=64.9°C
}

// Steady-state temperature queries answer "how hot would this assignment
// run forever?" — the T∞ = −A⁻¹B evaluation behind the paper's EXS.
func ExamplePlatform_SteadyTempC() {
	plat, err := thermosc.New(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	temps, err := plat.SteadyTempC([]float64{1.3, 0, 1.3}) // middle core off
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f %.1f %.1f\n", temps[0], temps[1], temps[2])
	// Output:
	// 64.6 55.4 64.6
}

// Comparing all policies on one platform.
func ExamplePlatform_Compare() {
	plat, err := thermosc.New(2, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		log.Fatal(err)
	}
	plans, err := plat.Compare(60)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range thermosc.Methods() {
		fmt.Printf("%s %.4f\n", m, plans[m].Throughput)
	}
	// Output:
	// LNS 0.6000
	// EXS 0.9500
	// AO 1.1321
	// PCO 1.1321
}

// Real-time admission: can this task set be guaranteed under the cap?
func ExamplePlatform_AdmitTasks() {
	plat, err := thermosc.New(2, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		log.Fatal(err)
	}
	tasks := []thermosc.Task{
		{Name: "ctl", WCET: 40e-3, Period: 50e-3}, // u = 0.8
		{Name: "log", WCET: 30e-3, Period: 60e-3}, // u = 0.5
	}
	rep, err := plat.AdmitTasks(tasks, thermosc.MethodAO, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admissible=%v\n", rep.Admissible)
	// Output:
	// admissible=true
}
