package thermosc

import (
	"fmt"

	"thermosc/internal/verify"
)

// This file is the public surface of the independent plan-verification
// oracle (internal/verify): a slow, first-principles re-derivation of a
// plan's stable-status peak (dense Padé-exponential orbit + fixed-step
// RK4 cross-check, sharing no caches or eigen shortcuts with the fast
// engine) plus the paper's structural invariants — Definition 1 step-up
// ordering, Theorem 1 peak placement, work preservation across the
// m-split, and the overhead bound m ≤ M. It backs cmd/thermosc-verify
// and the server's sampled post-solve audit (ServerConfig.AuditEvery).

// AuditViolation is one invariant a plan failed.
type AuditViolation struct {
	// Invariant identifies the failed check: "tmax", "step-up",
	// "theorem-1", "work", "m-split", "m-bound", "peak-mismatch",
	// "structure", "feasible-flag", or "oracle" (the oracle's own
	// self-checks).
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// AuditReport is the oracle's verdict on one plan. Temperatures are
// absolute °C, matching Plan.PeakC.
type AuditReport struct {
	Method Method `json:"method"`
	M      int    `json:"m"`
	// PlanPeakC is the plan's claimed peak; OraclePeakC the oracle's
	// independent dense evaluation of the executed timeline on the
	// solver-matching grid (their relative difference is the
	// differential); OracleFinePeakC the finer-grid peak used for the
	// Tmax audit; RK4PeakC the fixed-step RK4 cross-check.
	PlanPeakC       float64 `json:"plan_peak_c"`
	OraclePeakC     float64 `json:"oracle_peak_c"`
	OracleFinePeakC float64 `json:"oracle_fine_peak_c"`
	RK4PeakC        float64 `json:"rk4_peak_c"`
	// ThroughputRecovered is the useful throughput reconstructed from
	// the emitted interval lengths.
	ThroughputRecovered float64          `json:"throughput_recovered"`
	OK                  bool             `json:"ok"`
	Violations          []AuditViolation `json:"violations,omitempty"`
}

// String renders a one-line verdict (with one indented line per
// violation), mirroring internal/verify's divergence report.
func (r *AuditReport) String() string {
	s := fmt.Sprintf("audit %s m=%d: plan %.6f °C, oracle %.6f °C (fine %.6f, rk4 %.6f)",
		r.Method, r.M, r.PlanPeakC, r.OraclePeakC, r.OracleFinePeakC, r.RK4PeakC)
	if r.OK {
		return s + " OK"
	}
	for _, v := range r.Violations {
		s += fmt.Sprintf("\n  FAIL [%s] %s", v.Invariant, v.Detail)
	}
	return s
}

// Audit re-checks plan against tmaxC (absolute °C) with the independent
// oracle and returns the full report. A plan failing its invariants is
// not an error — inspect AuditReport.OK; an error means the plan carries
// no schedule or the oracle could not run.
func (p *Platform) Audit(plan *Plan, tmaxC float64) (*AuditReport, error) {
	sched, err := plan.internalSchedule(p)
	if err != nil {
		return nil, err
	}
	rep, err := verify.Check(p.model, sched, verify.Params{
		Method:     string(plan.Method),
		M:          plan.M,
		TmaxRise:   p.model.Rise(tmaxC),
		BasePeriod: p.period,
		Overhead:   p.overhead,
		PeakRise:   p.model.Rise(plan.PeakC),
		Throughput: plan.Throughput,
		Feasible:   plan.Feasible,
	}, verify.Options{})
	if err != nil {
		return nil, err
	}
	out := &AuditReport{
		Method:              plan.Method,
		M:                   plan.M,
		PlanPeakC:           plan.PeakC,
		OraclePeakC:         p.model.Absolute(rep.PeakExecRise),
		OracleFinePeakC:     p.model.Absolute(rep.PeakFineRise),
		RK4PeakC:            p.model.Absolute(rep.RK4PeakRise),
		ThroughputRecovered: rep.ThroughputRecovered,
		OK:                  rep.OK(),
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, AuditViolation{Invariant: v.Invariant, Detail: v.Detail})
	}
	return out, nil
}
