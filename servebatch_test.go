package thermosc

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermosc/internal/floorplan"
)

// newBatchedTestServer builds a server with batching enabled (and a
// window long enough for test goroutines to actually coalesce).
func newBatchedTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 20 * time.Millisecond
	}
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// catalogMaximizeBodies builds /v1/maximize bodies over the floorplan
// catalog (filtered to small platforms so the differential sweep stays
// fast) at two thresholds each.
func catalogMaximizeBodies(t *testing.T, maxCores int) []string {
	t.Helper()
	var bodies []string
	for _, g := range floorplan.Catalog() {
		if g.NumCores() > maxCores {
			continue
		}
		plat := map[string]any{"rows": g.Rows, "cols": g.Cols, "paper_levels": 3}
		if g.CoreEdge > 0 {
			plat["core_edge_m"] = g.CoreEdge
		}
		if g.Layers > 1 {
			plat["stack_layers"] = g.Layers
		}
		if len(g.Scales) > 0 {
			plat["core_scales"] = g.Scales
		}
		for _, tmax := range []float64{62, 75} {
			b, err := json.Marshal(map[string]any{
				"platform": plat, "tmax_c": tmax, "method": "AO", "timeout_s": 120,
			})
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, string(b))
		}
	}
	if len(bodies) < 6 {
		t.Fatalf("catalog sweep built only %d bodies", len(bodies))
	}
	return bodies
}

// The tentpole invariant: batched plans are byte-identical to unbatched
// plans across the floorplan catalog. The batched server takes the
// whole sweep CONCURRENTLY (so groups actually form); the unbatched
// server solves the same bodies one at a time.
func TestBatchedPlansByteIdenticalAcrossCatalog(t *testing.T) {
	bodies := catalogMaximizeBodies(t, 18)
	_, unbatched := newTestServer(t)
	// SolveConcurrency must exceed 1 (the GOMAXPROCS default on a
	// single-core box) or admission serializes requests ahead of the
	// batcher and no group ever holds two members.
	batchedSrv, batched := newBatchedTestServer(t, ServerConfig{SolveConcurrency: 8})

	want := make(map[string][]byte, len(bodies))
	for _, body := range bodies {
		status, b := postJSON(t, unbatched.URL+"/v1/maximize", body)
		if status != 200 {
			t.Fatalf("unbatched solve: status %d: %s", status, b)
		}
		mr := decodeMaximize(t, b)
		if mr.Degraded {
			t.Fatalf("unbatched reference degraded (%s) — raise the sweep timeout", mr.DegradedReason)
		}
		want[body] = mr.Plan
	}

	var wg sync.WaitGroup
	got := make([][]byte, len(bodies))
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			status, b := postJSON(t, batched.URL+"/v1/maximize", body)
			if status != 200 {
				t.Errorf("batched solve: status %d: %s", status, b)
				return
			}
			got[i] = decodeMaximize(t, b).Plan
		}(i, body)
	}
	wg.Wait()
	for i, body := range bodies {
		if !bytes.Equal(got[i], want[body]) {
			t.Fatalf("body %d: batched plan differs from unbatched:\n%s\nvs\n%s", i, got[i], want[body])
		}
	}
	st := batchedSrv.Stats()
	if st.Batch == nil || st.Batch.Members == 0 || st.Batch.GroupsFormed == 0 {
		t.Fatalf("catalog sweep never exercised the batcher: %+v", st.Batch)
	}
}

// A same-platform storm coalesces into shared groups and returns plans
// byte-identical to the singleflight (unbatched) path; a mixed-platform
// storm forms independent groups. Run with -race.
func TestBatchSamePlatformStormCoalesces(t *testing.T) {
	_, unbatched := newTestServer(t)
	batchedSrv, batched := newBatchedTestServer(t, ServerConfig{
		BatchWindow: 30 * time.Millisecond, BatchMaxSize: 32, SolveConcurrency: 16,
	})

	tmaxes := []float64{58, 60, 62, 64}
	ref := make(map[string][]byte)
	for _, tm := range tmaxes {
		body := clusterBody(2, 2, 3, tm)
		status, b := postJSON(t, unbatched.URL+"/v1/maximize", body)
		if status != 200 {
			t.Fatalf("reference solve: status %d: %s", status, b)
		}
		ref[body] = decodeMaximize(t, b).Plan
	}

	// 16 concurrent members over 4 distinct plan keys on ONE platform:
	// identical keys collapse in the singleflight; the 4 distinct cold
	// solves coalesce into batch groups on the shared platform key.
	var wg sync.WaitGroup
	var bad atomic.Int64
	for rep := 0; rep < 4; rep++ {
		for _, tm := range tmaxes {
			wg.Add(1)
			go func(tm float64) {
				defer wg.Done()
				body := clusterBody(2, 2, 3, tm)
				status, b := postJSON(t, batched.URL+"/v1/maximize", body)
				if status != 200 {
					t.Errorf("storm solve: status %d: %s", status, b)
					bad.Add(1)
					return
				}
				if !bytes.Equal(decodeMaximize(t, b).Plan, ref[body]) {
					t.Errorf("storm plan for tmax %g differs from the singleflight path", tm)
					bad.Add(1)
				}
			}(tm)
		}
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.FailNow()
	}
	st := batchedSrv.Stats().Batch
	if st == nil {
		t.Fatal("batched server reports no batch stats")
	}
	if st.Members == 0 || st.GroupsFormed == 0 {
		t.Fatalf("storm never batched: %+v", st)
	}
	if st.Coalesced == 0 {
		t.Fatalf("same-platform storm formed only singleton groups: %+v", st)
	}
	// The shared engine's caches were hit by followers (the whole point).
	if st.EngineSteadyHitRatio <= 0 || st.EngineSteadyHitRatio > 1 {
		t.Fatalf("engine steady hit ratio %v after a same-platform storm", st.EngineSteadyHitRatio)
	}

	// Mixed-platform storm: distinct platforms never share a group.
	groupsBefore := st.GroupsFormed
	var wg2 sync.WaitGroup
	for _, rows := range []int{2, 3} {
		wg2.Add(1)
		go func(rows int) {
			defer wg2.Done()
			if status, b := postJSON(t, batched.URL+"/v1/maximize", clusterBody(rows, 1, 3, 59)); status != 200 {
				t.Errorf("mixed storm: status %d: %s", status, b)
			}
		}(rows)
	}
	wg2.Wait()
	if st2 := batchedSrv.Stats().Batch; st2.GroupsFormed < groupsBefore+2 {
		t.Fatalf("mixed platforms shared a batch group: %d -> %d", groupsBefore, st2.GroupsFormed)
	}
}

// Per-request deadlines cancel individually inside a batch: a member
// whose deadline is already gone answers immediately (degraded, under
// its own context) without waiting out the window, while healthy
// members of the same group still get complete plans.
func TestBatchMemberDeadlinesCancelIndividually(t *testing.T) {
	_, batched := newBatchedTestServer(t, ServerConfig{
		BatchWindow: 400 * time.Millisecond, BatchMaxSize: 32, SolveConcurrency: 4,
	})

	var wg sync.WaitGroup
	healthy := clusterBody(2, 1, 3, 60)
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, b := postJSON(t, batched.URL+"/v1/maximize", healthy)
		if status != 200 {
			t.Errorf("healthy member: status %d: %s", status, b)
			return
		}
		if mr := decodeMaximize(t, b); mr.Degraded {
			t.Errorf("healthy member degraded: %s", mr.DegradedReason)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the healthy member open the group

	// Same platform, different threshold, nanosecond deadline: joins the
	// open group but must not wait ~380ms for it to seal.
	doomed := strings.Replace(clusterBody(2, 1, 3, 61), `"method":"AO"`, `"method":"AO","timeout_s":1e-9`, 1)
	start := time.Now()
	status, b := postJSON(t, batched.URL+"/v1/maximize", doomed)
	elapsed := time.Since(start)
	if status != 200 {
		t.Fatalf("doomed member: status %d: %s", status, b)
	}
	if mr := decodeMaximize(t, b); !mr.Degraded {
		t.Fatalf("doomed member returned a complete plan under a 1ns deadline: %s", b)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("doomed member waited %v — the batch window held a dead request", elapsed)
	}
	wg.Wait()
}

// A shed request never joins a batch: admission control refuses it
// before solveFull runs, so the batch counters don't move.
func TestBatchShedRequestsNeverJoin(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newBatchedTestServer(t, ServerConfig{SolveConcurrency: 1, SolveQueue: 1})
	srv.solveHook = func(Method) { <-release }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the only solve slot, parked in the hook
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/maximize", clusterBody(2, 1, 3, 60))
	}()
	for srv.admit.depth() == 0 { // wait for a second request to queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/maximize", clusterBody(2, 1, 3, 61))
		}()
		time.Sleep(5 * time.Millisecond)
	}

	// Queue full: this one must shed — and must never touch the batcher.
	status, b := postJSON(t, ts.URL+"/v1/maximize", clusterBody(2, 1, 3, 62))
	if status != 429 {
		t.Fatalf("saturated server answered %d: %s", status, b)
	}
	if st := srv.Stats().Batch; st.Members != 0 {
		t.Fatalf("a shed request joined a batch: %+v", st)
	}
	close(release)
	wg.Wait()
}

// A breaker-open request takes the safe-floor branch and never joins a
// batch; batching and the breaker compose.
func TestBatchBreakerOpenBypasses(t *testing.T) {
	srv, ts := newBatchedTestServer(t, ServerConfig{
		AuditEvery: 1, BreakerWindow: 2, BreakerMinSamples: 2, BreakerCooloff: time.Hour,
	})
	srv.brk.record(false)
	srv.brk.record(false)
	if st := srv.Stats(); st.Resilience.BreakerState != breakerOpen {
		t.Fatalf("breaker did not trip: %+v", st.Resilience)
	}
	status, b := postJSON(t, ts.URL+"/v1/maximize", clusterBody(2, 1, 3, 60))
	if status != 200 {
		t.Fatalf("breaker-open solve: status %d: %s", status, b)
	}
	if mr := decodeMaximize(t, b); !mr.Degraded || mr.DegradedReason != "breaker-open" {
		t.Fatalf("breaker-open solve not routed to the floor: %s", b)
	}
	if st := srv.Stats().Batch; st.Members != 0 {
		t.Fatalf("a breaker-open request joined a batch: %+v", st)
	}
}

// Stats schema: no batch block when batching is disabled; a populated
// one when enabled.
func TestBatchStatsPresence(t *testing.T) {
	srvOff, tsOff := newTestServer(t)
	postJSON(t, tsOff.URL+"/v1/maximize", maximizeBody("LNS"))
	if st := srvOff.Stats(); st.Batch != nil {
		t.Fatalf("batching disabled but stats carry a batch block: %+v", st.Batch)
	}
	b, err := json.Marshal(srvOff.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"batch"`)) {
		t.Fatalf("disabled batch leaks into the stats JSON: %s", b)
	}

	srvOn, tsOn := newBatchedTestServer(t, ServerConfig{})
	postJSON(t, tsOn.URL+"/v1/maximize", maximizeBody("AO"))
	st := srvOn.Stats().Batch
	if st == nil || st.Members != 1 || st.GroupsFormed != 1 {
		t.Fatalf("batch stats after one solve: %+v", st)
	}
	if st.WindowWaitMaxMs <= 0 {
		t.Fatalf("no window wait recorded: %+v", st)
	}
}
