package thermosc

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server's overload machinery: deadline-aware admission
// control in front of the solver pool, and a circuit breaker that trips
// the service to fallback-only planning when the async verification
// audits start failing. Both are deliberately simple — a counting
// semaphore with an EWMA wait estimate, and a fixed-window failure-rate
// breaker — because they sit on the request path of every cold solve.

// drainState reports whether this server is signalling "stop sending
// me new work": either Shutdown has begun, or the cluster drain
// endpoint (POST /v1/cluster/drain) took the replica out of rotation
// for a rolling restart. Both surface identically — 503 "draining" on
// /healthz (which load balancers and peer failure detectors read) and
// Draining in the /v1/stats resilience block — so operators and peers
// never need to distinguish why a replica is on its way out.
func (s *Server) drainState() bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return true
	}
	return s.cluster != nil && s.cluster.draining.Load()
}

// shedError is a typed admission refusal: the request was not solved
// because the service is saturated (queue full, or the estimated wait
// already exceeds the request's own deadline). It maps to 429 with a
// Retry-After hint, telling well-behaved clients when capacity is
// likely to exist again.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("request shed: %s (retry after %v)", e.reason, e.retryAfter.Round(time.Second))
}

// admission is the bounded solver-pool gate. Concurrency caps the
// solves actually running; queueCap bounds the ones waiting for a slot.
// A request sheds instead of queueing when the queue is full OR when
// the EWMA-estimated wait for a slot exceeds the request's remaining
// deadline — queueing it would only burn a slot on a reply nobody is
// still waiting for.
type admission struct {
	sem      chan struct{}
	queueCap int
	waiting  atomic.Int64 // queued, not yet holding a slot

	mu   sync.Mutex
	avgS float64 // EWMA of recent solve durations, seconds (0 until the first solve)
}

func newAdmission(concurrency, queueCap int) *admission {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	return &admission{sem: make(chan struct{}, concurrency), queueCap: queueCap}
}

// depth is the current queue depth (the /v1/stats gauge).
func (a *admission) depth() int64 { return a.waiting.Load() }

// estWaitS estimates how long a newly queued solve would wait for a
// slot: queue depth × average solve time ÷ pool width. Zero until the
// first solve completes, so a cold server never sheds on estimate.
func (a *admission) estWaitS() float64 {
	a.mu.Lock()
	avg := a.avgS
	a.mu.Unlock()
	return float64(a.waiting.Load()) * avg / float64(cap(a.sem))
}

// retryAfter is the Retry-After hint attached to sheds: the estimated
// wait rounded UP to a whole second, floored at one. Retry-After is an
// integer-seconds header — truncating a sub-second estimate would tell
// well-behaved clients "retry after 0", i.e. hammer a saturated server
// immediately — and ceiling at the source keeps the header, the JSON
// retry_after_s, and the error text in agreement.
func (a *admission) retryAfter() time.Duration {
	secs := math.Ceil(a.estWaitS())
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// acquire blocks until a solve slot is free, the context expires, or
// the request is shed. A nil return means the caller holds a slot and
// must release() it.
func (a *admission) acquire(ctx context.Context) error {
	// A free slot is taken unconditionally — even a nearly-expired
	// deadline is the anytime chain's problem, not admission's: with no
	// wait there is nothing to shed against, and the solver will answer
	// with a degraded plan or the safe floor.
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if int(a.waiting.Load()) >= a.queueCap {
		return &shedError{reason: "solve queue is full", retryAfter: a.retryAfter()}
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := a.estWaitS(); est > time.Until(dl).Seconds() {
			return &shedError{
				reason:     fmt.Sprintf("estimated queue wait %.2fs exceeds the request deadline", est),
				retryAfter: a.retryAfter(),
			}
		}
	}
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &shedError{reason: "deadline expired while queued for a solve slot", retryAfter: a.retryAfter()}
	}
}

// release frees the slot and folds the solve's duration into the EWMA
// the shed estimate runs on.
func (a *admission) release(d time.Duration) {
	<-a.sem
	s := d.Seconds()
	a.mu.Lock()
	if a.avgS == 0 {
		a.avgS = s
	} else {
		a.avgS = 0.8*a.avgS + 0.2*s
	}
	a.mu.Unlock()
}

// Circuit breaker states.
const (
	breakerClosed   = "closed"    // full solves trusted
	breakerOpen     = "open"      // fallback-only until the cooloff elapses
	breakerHalfOpen = "half-open" // one full solve probing; next audit verdict decides
)

// breaker trips the service to fallback-only planning when the async
// verification audits say full solves can no longer be trusted: if the
// failure rate over a fixed window of audit verdicts crosses the
// threshold, every solve is answered with the oracle-checked constant
// safe floor until a cooloff elapses; then one full solve probes
// (half-open) and its audit verdict closes or re-opens the breaker.
//
// The breaker is fed ONLY by the sampled async audits (runAudit) — the
// independent oracle's verdicts — never by request errors, which say
// nothing about plan correctness.
type breaker struct {
	threshold  float64
	minSamples int
	cooloff    time.Duration

	mu       sync.Mutex
	window   []bool // ring of verdicts; true = audit failure
	idx      int
	filled   int
	fails    int
	state    string
	openedAt time.Time
	trips    uint64
}

func newBreaker(window int, threshold float64, minSamples int, cooloff time.Duration) *breaker {
	if window < 1 {
		window = 1
	}
	if minSamples < 1 {
		minSamples = 1
	}
	if minSamples > window {
		minSamples = window
	}
	return &breaker{
		threshold:  threshold,
		minSamples: minSamples,
		cooloff:    cooloff,
		window:     make([]bool, window),
		state:      breakerClosed,
	}
}

// allowFull reports whether a full solve may run right now. An open
// breaker whose cooloff has elapsed transitions to half-open and lets
// this one solve through as the probe.
func (b *breaker) allowFull() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return true
	}
	if time.Since(b.openedAt) >= b.cooloff {
		b.state = breakerHalfOpen
		return true
	}
	return false
}

// record folds one audit verdict into the window and trips the breaker
// when the failure rate crosses the threshold (with at least minSamples
// verdicts observed). In half-open, the single verdict decides: pass
// closes the breaker, fail re-opens it for another cooloff.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		if ok {
			b.resetLocked(breakerClosed)
		} else {
			b.tripLocked()
		}
		return
	case breakerOpen:
		return // verdict from an audit launched before the trip
	}
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = !ok
	if !ok {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled >= b.minSamples && float64(b.fails) >= b.threshold*float64(b.filled) {
		b.tripLocked()
	}
}

func (b *breaker) tripLocked() {
	b.trips++
	b.resetLocked(breakerOpen)
	b.openedAt = time.Now()
}

func (b *breaker) resetLocked(state string) {
	b.state = state
	b.idx, b.filled, b.fails = 0, 0, 0
	for i := range b.window {
		b.window[i] = false
	}
}

// status returns the breaker's state and lifetime trip count for
// /v1/stats.
func (b *breaker) status() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
