package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testCluster is an in-process replica fleet: n Servers, each with its
// own listener and a ring spanning all of them. Used by the cluster
// unit tests, the fault-tolerance suite, and the soak.
type testCluster struct {
	urls  []string
	srvs  []*Server
	https []*http.Server
}

// startTestCluster boots n replicas on ephemeral ports. mutate (may be
// nil) can adjust each replica's ServerConfig before construction; the
// Cluster field is filled in afterwards, so mutate only tunes the
// serving knobs.
func startTestCluster(t *testing.T, n int, syncInterval time.Duration, mutate func(i int, cfg *ServerConfig)) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	tc := &testCluster{urls: make([]string, n), srvs: make([]*Server, n), https: make([]*http.Server, n)}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		cfg := ServerConfig{}
		if mutate != nil {
			mutate(i, &cfg)
		}
		tc.startReplica(t, i, lns[i], cfg, syncInterval)
	}
	t.Cleanup(func() {
		for i := range tc.srvs {
			tc.stopReplica(i)
		}
	})
	return tc
}

func (tc *testCluster) startReplica(t *testing.T, i int, ln net.Listener, cfg ServerConfig, syncInterval time.Duration) {
	t.Helper()
	peers := make([]string, 0, len(tc.urls)-1)
	for j, u := range tc.urls {
		if j != i {
			peers = append(peers, u)
		}
	}
	cc := &ClusterConfig{}
	if cfg.Cluster != nil {
		// mutate may pre-set store-backend and health knobs; topology
		// stays ours.
		*cc = *cfg.Cluster
	}
	cc.Self, cc.Peers, cc.SyncInterval = tc.urls[i], peers, syncInterval
	cfg.Cluster = cc
	srv := NewServer(cfg)
	hs := &http.Server{Handler: srv}
	tc.srvs[i], tc.https[i] = srv, hs
	go func() { _ = hs.Serve(ln) }()
}

// storeBackendMutate honors THERMOSC_CLUSTER_STORE so the soak suite
// runs once per PlanStore backend: "file" points every replica's store
// at an append-only log under a per-test temp dir; empty or "mem"
// keeps the in-memory default.
func storeBackendMutate(t *testing.T) func(i int, cfg *ServerConfig) {
	t.Helper()
	switch backend := os.Getenv("THERMOSC_CLUSTER_STORE"); backend {
	case "", "mem":
		return nil
	case "file":
		dir := t.TempDir()
		return func(i int, cfg *ServerConfig) {
			cfg.Cluster = &ClusterConfig{
				StoreBackend: "file",
				StorePath:    filepath.Join(dir, fmt.Sprintf("replica%d.log", i)),
			}
		}
	default:
		t.Fatalf("bad THERMOSC_CLUSTER_STORE %q (want mem or file)", backend)
		return nil
	}
}

// stopReplica kills replica i: the listener closes and its gossip loop
// stops, as a crashed process would (modulo kernel-held TIME_WAITs).
func (tc *testCluster) stopReplica(i int) {
	if tc.https[i] == nil {
		return
	}
	_ = tc.https[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = tc.srvs[i].Shutdown(ctx)
	cancel()
	tc.https[i] = nil
}

// restartReplica rebinds replica i's original address with a fresh
// (cold) Server.
func (tc *testCluster) restartReplica(t *testing.T, i int, cfg ServerConfig, syncInterval time.Duration) {
	t.Helper()
	addr := tc.urls[i][len("http://"):]
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	tc.startReplica(t, i, ln, cfg, syncInterval)
	// Pooled keep-alive connections to the old process would be served
	// an EOF by the kernel; drop them so the next request redials.
	http.DefaultClient.CloseIdleConnections()
	for j, srv := range tc.srvs {
		if j != i && tc.https[j] != nil {
			srv.cluster.client.CloseIdleConnections()
		}
	}
}

// syncAll drives pairwise anti-entropy rounds until every replica's
// store digest matches (or fails the test after a bounded number of
// sweeps).
func (tc *testCluster) syncAll(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for sweep := 0; sweep < 10; sweep++ {
		for i, srv := range tc.srvs {
			if tc.https[i] == nil {
				continue
			}
			for j, peer := range tc.urls {
				if j == i || tc.https[j] == nil {
					continue
				}
				if err := srv.SyncPeer(ctx, peer); err != nil {
					t.Fatalf("sync %s -> %s: %v", tc.urls[i], peer, err)
				}
			}
		}
		if tc.converged() {
			return
		}
	}
	t.Fatal("cluster did not converge after 10 anti-entropy sweeps")
}

func (tc *testCluster) converged() bool {
	var ref map[string]string
	for i, srv := range tc.srvs {
		if tc.https[i] == nil {
			continue
		}
		d := srv.cluster.store.Digest()
		if ref == nil {
			ref = d
			continue
		}
		if len(d) != len(ref) {
			return false
		}
		for k, h := range ref {
			if d[k] != h {
				return false
			}
		}
	}
	return true
}

func clusterBody(rows, cols, levels int, tmax float64) string {
	return fmt.Sprintf(`{"platform":{"rows":%d,"cols":%d,"paper_levels":%d},"tmax_c":%g,"method":"AO"}`, rows, cols, levels, tmax)
}

func postMaximize(t *testing.T, url, body string) (int, MaximizeResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/maximize", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var mr MaximizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(rb, &mr); err != nil {
			t.Fatalf("decoding response: %v\n%s", err, rb)
		}
	}
	return resp.StatusCode, mr
}

func getStats(t *testing.T, url string) ServerStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// planKeyFor computes the canonical plan key for a request body the way
// the server does — tests use it to find which replica owns a key.
func planKeyFor(t *testing.T, body string) string {
	t.Helper()
	_, planKey, _, err := parseMaximizeRequest([]byte(body), ServerConfig{}.withDefaults().limits())
	if err != nil {
		t.Fatalf("parsing %q: %v", body, err)
	}
	return planKey
}

// bodiesByOwner solves the routing riddle for tests: returns one
// request body owned by each replica, probing tmax variations until
// every replica owns at least one.
func bodiesByOwner(t *testing.T, tc *testCluster) map[string]string {
	t.Helper()
	byOwner := make(map[string]string, len(tc.urls))
	ring := tc.srvs[0].cluster.ring
	for dt := 0; dt < 200 && len(byOwner) < len(tc.urls); dt++ {
		body := clusterBody(2, 1, 3, 60+float64(dt)*0.125)
		owner := ring.Owner(planKeyFor(t, body))
		if _, ok := byOwner[owner]; !ok {
			byOwner[owner] = body
		}
	}
	if len(byOwner) < len(tc.urls) {
		t.Fatalf("could not find keys for every replica: %v", byOwner)
	}
	return byOwner
}

// sumInvariant asserts the pinned per-node accounting identity:
// served_local + served_peer_fetch + served_forwarded equals the node's
// successful maximize responses.
func sumInvariant(t *testing.T, tc *testCluster) {
	t.Helper()
	for i := range tc.srvs {
		if tc.https[i] == nil {
			continue
		}
		st := getStats(t, tc.urls[i])
		if st.Cluster == nil {
			t.Fatalf("replica %d: stats carry no cluster block", i)
		}
		ep := st.Requests["maximize"]
		got := st.Cluster.ServedLocal + st.Cluster.ServedPeerFetch + st.Cluster.ServedForwarded
		want := ep.Count - ep.Errors
		if got != want {
			t.Fatalf("replica %d: served sum %d (local %d + peer %d + fwd %d) != 200-responses %d",
				i, got, st.Cluster.ServedLocal, st.Cluster.ServedPeerFetch, st.Cluster.ServedForwarded, want)
		}
	}
}

// A request whose key another replica owns is proxied there; the owner
// solves it once, both replicas cache it, and the counters classify
// every serve. This also pins the per-node sum invariant for the
// local/forwarded/peer serve classes.
func TestClusterForwardingAndServeSources(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)

	ownerURL := tc.urls[1]
	body := byOwner[ownerURL]

	// Served via replica 0 → forwarded to replica 1.
	status, mr := postMaximize(t, tc.urls[0], body)
	if status != http.StatusOK {
		t.Fatalf("forwarded request: HTTP %d", status)
	}
	if mr.Source != "forwarded" {
		t.Fatalf("source %q, want forwarded", mr.Source)
	}
	if mr.Cached {
		t.Fatal("first solve reported cached")
	}
	// The owner answered it locally.
	ownerStats := getStats(t, ownerURL)
	if ownerStats.Cluster.ServedLocal != 1 {
		t.Fatalf("owner served_local = %d, want 1", ownerStats.Cluster.ServedLocal)
	}
	// Replica 0 now holds the bytes (LRU + store): a repeat is a local
	// cache hit, not another forward.
	status, mr2 := postMaximize(t, tc.urls[0], body)
	if status != http.StatusOK || !mr2.Cached || mr2.Source != "local" {
		t.Fatalf("repeat after forward: HTTP %d cached=%v source=%q", status, mr2.Cached, mr2.Source)
	}
	if !bytes.Equal(mr.Plan, mr2.Plan) {
		t.Fatal("forwarded and cached plan bytes differ")
	}
	// And byte-identical to the owner's own serve.
	status, mr3 := postMaximize(t, ownerURL, body)
	if status != http.StatusOK || !bytes.Equal(mr.Plan, mr3.Plan) {
		t.Fatalf("owner's plan differs from the forwarded plan (HTTP %d)", status)
	}

	// Peer-fetch: solve a replica-0-owned key on replica 0, gossip it to
	// replica 2, then ask replica 2 — whose LRU is cold — for it.
	body0 := byOwner[tc.urls[0]]
	if status, _ := postMaximize(t, tc.urls[0], body0); status != http.StatusOK {
		t.Fatalf("owner solve: HTTP %d", status)
	}
	tc.syncAll(t)
	status, mr4 := postMaximize(t, tc.urls[2], body0)
	if status != http.StatusOK {
		t.Fatalf("peer-fetch request: HTTP %d", status)
	}
	if mr4.Source != "peer" || !mr4.Cached {
		t.Fatalf("store hit for a foreign key: source=%q cached=%v, want peer/true", mr4.Source, mr4.Cached)
	}

	sumInvariant(t, tc)
}

// A hop-marked request must be answered by the receiver even when the
// ring says another replica owns the key — forwarding never loops.
func TestClusterForwardNeverLoops(t *testing.T) {
	tc := startTestCluster(t, 2, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	body := byOwner[tc.urls[1]] // owned by replica 1

	req, err := http.NewRequest(http.MethodPost, tc.urls[0]+"/v1/maximize", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(clusterHopHeader, "test") // pretend this already hopped
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hop-marked request: HTTP %d", resp.StatusCode)
	}
	var mr MaximizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Source != "local" {
		t.Fatalf("hop-marked request source %q, want local (owner-solve on the receiver)", mr.Source)
	}
	if got := tc.srvs[0].cluster.servedForwarded.Load(); got != 0 {
		t.Fatalf("replica 0 forwarded %d hop-marked requests", got)
	}
}

func TestClusterStatusAndFleetEndpoint(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	for owner, body := range byOwner {
		if status, _ := postMaximize(t, owner, body); status != http.StatusOK {
			t.Fatalf("solve on %s: HTTP %d", owner, status)
		}
	}
	resp, err := http.Get(tc.urls[0] + "/v1/cluster?fleet=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != tc.urls[0] || len(st.Nodes) != 3 || len(st.Peers) != 2 {
		t.Fatalf("status topology: self=%q nodes=%v peers=%v", st.Self, st.Nodes, st.Peers)
	}
	if st.Fleet == nil {
		t.Fatal("?fleet=1 returned no fleet block")
	}
	if st.Fleet.Reachable != 3 || len(st.Fleet.Unreachable) != 0 {
		t.Fatalf("fleet reachability: %+v", st.Fleet)
	}
	if st.Fleet.ServedLocal != 3 {
		t.Fatalf("fleet served_local = %d, want 3 (one owner-solve per replica)", st.Fleet.ServedLocal)
	}
	if len(st.Fleet.StoreSizes) != 3 {
		t.Fatalf("fleet store sizes: %v", st.Fleet.StoreSizes)
	}
}

func TestClusterSnapshotRestoreEndpoints(t *testing.T) {
	tc := startTestCluster(t, 2, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	for owner, body := range byOwner {
		if status, _ := postMaximize(t, owner, body); status != http.StatusOK {
			t.Fatalf("solve on %s: HTTP %d", owner, status)
		}
	}
	tc.syncAll(t)

	resp, err := http.Get(tc.urls[0] + "/v1/cluster/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d, %v", resp.StatusCode, err)
	}

	// Restore into a fresh single replica and verify the entries landed.
	fresh := NewServer(ServerConfig{Cluster: &ClusterConfig{Self: "http://fresh.invalid"}})
	n, err := fresh.ClusterRestore(snap)
	if err != nil || n != tc.srvs[0].cluster.store.Len() {
		t.Fatalf("restore: n=%d err=%v (store %d)", n, err, tc.srvs[0].cluster.store.Len())
	}
	// The HTTP restore path agrees (0 new entries into the converged
	// replica 1).
	post, err := http.Post(tc.urls[1]+"/v1/cluster/restore", "application/json", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	var out struct {
		Restored  int `json:"restored"`
		StoreSize int `json:"store_size"`
	}
	if err := json.NewDecoder(post.Body).Decode(&out); err != nil || post.StatusCode != http.StatusOK {
		t.Fatalf("restore endpoint: HTTP %d, %v", post.StatusCode, err)
	}
	if out.Restored != 0 || out.StoreSize != n {
		t.Fatalf("restore endpoint: %+v, want 0 new of %d", out, n)
	}
	// Corrupt snapshots are a 400, never a panic.
	bad, err := http.Post(tc.urls[1]+"/v1/cluster/restore", "application/json", bytes.NewReader([]byte(`{"version":9}`)))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt restore: HTTP %d, want 400", bad.StatusCode)
	}
}

// Single-process servers must be byte-stable against previous releases:
// no source field, no cluster stats block, and cluster endpoints 404.
func TestClusterDisabledIsByteStable(t *testing.T) {
	tc := startTestCluster(t, 1, 0, nil) // cluster of one: still "enabled"
	_ = tc
	srv := NewServer(ServerConfig{})
	hs := &http.Server{Handler: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close() })
	url := "http://" + ln.Addr().String()

	status, mr := postMaximize(t, url, clusterBody(2, 1, 3, 65))
	if status != http.StatusOK {
		t.Fatalf("HTTP %d", status)
	}
	if mr.Source != "" {
		t.Fatalf("single-process response carries source %q", mr.Source)
	}
	var raw map[string]any
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cluster"]; ok {
		t.Fatal("single-process stats carry a cluster block")
	}
	cr, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/cluster on a single process: HTTP %d, want 404", cr.StatusCode)
	}
}

// A cluster config without Self is a topology bug: fail fast.
func TestClusterConfigRequiresSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer accepted a cluster config without Self")
		}
	}()
	NewServer(ServerConfig{Cluster: &ClusterConfig{Peers: []string{"http://a"}}})
}
