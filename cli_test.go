package thermosc_test

// End-to-end smoke tests for the command-line tools: each binary is built
// once into a temp dir and exercised against its primary flag surface.
// These tests run the real executables, so regressions in flag parsing,
// output formatting, or exit codes fail here even when the libraries
// underneath stay green.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles ./cmd/<name> once per test run.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestCLIOpt(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds in -short mode")
	}
	bin := buildCmd(t, "thermosc-opt")

	out, _, err := run(t, bin, "-rows", "2", "-cols", "1", "-tmax", "60", "-levels", "2", "-method", "all", "-v")
	if err != nil {
		t.Fatalf("thermosc-opt: %v\n%s", err, out)
	}
	for _, want := range []string{"LNS", "EXS", "AO", "PCO", "core 0:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// JSON mode must emit one valid plan object per line.
	out, _, err = run(t, bin, "-rows", "2", "-cols", "1", "-tmax", "60", "-method", "AO", "-json")
	if err != nil {
		t.Fatalf("json mode: %v", err)
	}
	var plan map[string]interface{}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &plan); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if plan["method"] != "AO" || plan["version"] != float64(1) {
		t.Fatalf("plan JSON malformed: %v", plan)
	}

	// Governor-table mode emits a validated JSON ladder.
	out, _, err = run(t, bin, "-rows", "2", "-cols", "1", "-levels", "2", "-table", "55,60,65")
	if err != nil {
		t.Fatalf("table mode: %v", err)
	}
	var tbl struct {
		Entries []struct {
			TmaxC float64 `json:"tmax_c"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &tbl); err != nil {
		t.Fatalf("table JSON invalid: %v", err)
	}
	if len(tbl.Entries) != 3 || tbl.Entries[0].TmaxC != 55 {
		t.Fatalf("table = %+v", tbl)
	}
	if _, _, err := run(t, bin, "-table", "55,sixty"); err == nil {
		t.Fatal("bad table ladder should fail")
	}

	// Bad flags exit nonzero.
	if _, _, err := run(t, bin, "-levels", "nine"); err == nil {
		t.Fatal("bad -levels should fail")
	}
	if _, _, err := run(t, bin, "-method", "bogus"); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds in -short mode")
	}
	bin := buildCmd(t, "thermosc-experiments")

	out, _, err := run(t, bin, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"motivation", "fig6", "tablev", "reliability", "scaling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}

	out, _, err = run(t, bin, "-run", "fig2", "-quick")
	if err != nil {
		t.Fatalf("fig2: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Fig. 2") {
		t.Fatalf("fig2 output:\n%s", out)
	}

	if _, stderr, err := run(t, bin, "-run", "nope"); err == nil || !strings.Contains(stderr, "unknown experiment") {
		t.Fatalf("unknown experiment should fail with a message, got %q", stderr)
	}
}

func TestCLISim(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI builds in -short mode")
	}
	bin := buildCmd(t, "thermosc-sim")

	// ASCII mode with a policy.
	out, stderr, err := run(t, bin, "-rows", "2", "-cols", "1", "-tmax", "60", "-method", "AO", "-periods", "4", "-samples", "4")
	if err != nil {
		t.Fatalf("sim: %v\n%s%s", err, out, stderr)
	}
	if !strings.Contains(out, "core temperatures") || !strings.Contains(stderr, "AO:") {
		t.Fatalf("sim output unexpected:\nstdout=%s\nstderr=%s", out, stderr)
	}

	// CSV mode with fixed voltages.
	out, _, err = run(t, bin, "-rows", "2", "-cols", "1", "-volts", "1.3,0.6", "-periods", "2", "-samples", "2", "-csv")
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time_s,core0_C,core1_C" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 1+1+2*2 { // header + t0 + samples
		t.Fatalf("csv has %d lines", len(lines))
	}

	// Mismatched voltage count fails.
	if _, _, err := run(t, bin, "-rows", "2", "-cols", "1", "-volts", "1.3"); err == nil {
		t.Fatal("voltage count mismatch should fail")
	}
}
