package thermosc_test

// One benchmark per paper artifact (Tables II/III & V, Figs. 2-7) plus
// micro-benchmarks for the kernels the schedulers lean on. Regenerate the
// full evaluation with:
//
//	go test -bench=. -benchmem
//
// The Benchmark<Artifact> functions execute the same code paths as
// `thermosc-experiments -run <artifact>` (in quick mode, writing to
// io.Discard), so their wall-clock times are directly comparable across
// machines and revisions.

import (
	"io"
	"runtime"
	"testing"

	"thermosc"

	"thermosc/internal/expr"
	"thermosc/internal/floorplan"
	"thermosc/internal/governor"
	"thermosc/internal/power"
	"thermosc/internal/rt"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := expr.Config{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := expr.Run(name, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_III regenerates the §III motivation tables.
func BenchmarkTableII_III(b *testing.B) { benchExperiment(b, "motivation") }

// BenchmarkFig2 regenerates the single-core vs all-core oscillation study.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates the phase-sweep step-up bound study.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the 6-core step-up trace study.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the 9-core peak-vs-m study.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the cores × levels throughput comparison.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the cores × Tmax throughput comparison.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTableV regenerates the computation-time comparison.
func BenchmarkTableV(b *testing.B) { benchExperiment(b, "tablev") }

// BenchmarkAblation regenerates the repository's ablation studies.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// --- solver micro-benchmarks -------------------------------------------

func benchProblem(b *testing.B, rows, cols, levels int, tmax float64) solver.Problem {
	b.Helper()
	md, err := thermal.Default(rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := power.PaperLevels(levels)
	if err != nil {
		b.Fatal(err)
	}
	return solver.Problem{Model: md, Levels: ls, TmaxC: tmax, Overhead: power.DefaultOverhead()}
}

func BenchmarkAO3x1(b *testing.B) {
	p := benchProblem(b, 3, 1, 2, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.AO(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAO3x3(b *testing.B) {
	p := benchProblem(b, 3, 3, 2, 55)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.AO(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCO3x1(b *testing.B) {
	p := benchProblem(b, 3, 1, 2, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.PCO(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEXSPruned9x5(b *testing.B) {
	p := benchProblem(b, 3, 3, 5, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.EXS(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEXSNaive9x5(b *testing.B) {
	// The paper's Algorithm 1 at its largest evaluated size: 5^9 ≈ 1.95M
	// steady-state evaluations per run (their MATLAB exceeded 2 hours).
	p := benchProblem(b, 3, 3, 5, 65)
	p.DisallowOff = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.EXSNaive(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEXSParallel9x5(b *testing.B) {
	p := benchProblem(b, 3, 3, 5, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.EXSParallel(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIdealVoltages9(b *testing.B) {
	md, err := thermal.Default(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.IdealVoltages(md, 20, 1.3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator micro-benchmarks ----------------------------------------

func benchSchedule(b *testing.B, n int) (*thermal.Model, *schedule.Schedule) {
	b.Helper()
	rows, cols := 3, n/3
	if n == 2 || n == 3 {
		rows, cols = n, 1
	}
	md, err := thermal.Default(rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]schedule.TwoModeSpec, n)
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.3 + 0.05*float64(i%8),
		}
	}
	s, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		b.Fatal(err)
	}
	return md, s
}

func BenchmarkStableSolve9(b *testing.B) {
	md, s := benchSchedule(b, 9)
	cache, err := sim.NewPeriodCache(md, s.Period())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewStableCached(md, s, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeakDense9(b *testing.B) {
	md, s := benchSchedule(b, 9)
	st, err := sim.NewStable(md, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.PeakDense(24)
	}
}

func BenchmarkPeriodCache9(b *testing.B) {
	md, s := benchSchedule(b, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewPeriodCache(md, s.Period()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientPeriod9(b *testing.B) {
	md, s := benchSchedule(b, 9)
	t0 := md.ZeroState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.PeriodEnd(md, s, t0)
	}
}

func BenchmarkRK4Period3(b *testing.B) {
	md, s := benchSchedule(b, 3)
	t0 := md.ZeroState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RK4(md, s, t0, 1, 1e-4)
	}
}

// --- evaluation-engine benchmarks ---------------------------------------

// BenchmarkAOSearch pits the sequential reference m-search (Workers=1)
// against the worker-pool fan-out (Workers=GOMAXPROCS). Both produce
// bit-identical plans (see internal/solver/determinism_test.go); the
// ratio seq/par is the parallel speedup reported by cmd/thermosc-bench.
// On a single-CPU machine the two coincide — the speedup only shows at
// 4+ cores (the CI bench job).
func BenchmarkAOSearch(b *testing.B) {
	for name, workers := range map[string]int{
		"seq": 1,
		"par": runtime.GOMAXPROCS(0),
	} {
		b.Run(name, func(b *testing.B) {
			p := benchProblem(b, 3, 3, 2, 55)
			p.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.AO(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPeakEval compares the three stable-status peak evaluators on
// the 9-core platform:
//
//	classic  — NewStableCached + PeakEndOfPeriod against a bare
//	           PeriodCache (the pre-engine hot path),
//	engine   — the same evaluation through sim.Engine, hitting the warmed
//	           propagator cache (bit-identical result),
//	composed — the eigenbasis semigroup evaluator StepUpPeakComposed
//	           (agrees to ≲1e-8 K, not bit-identical).
func BenchmarkPeakEval(b *testing.B) {
	md, s := benchSchedule(b, 9)
	b.Run("classic", func(b *testing.B) {
		cache, err := sim.NewPeriodCache(md, s.Period())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := sim.NewStableCached(md, s, cache)
			if err != nil {
				b.Fatal(err)
			}
			st.PeakEndOfPeriod()
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := sim.NewEngine(md)
		if _, _, err := eng.StepUpPeak(s); err != nil { // warm the caches
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.StepUpPeak(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("composed", func(b *testing.B) {
		eng := sim.NewEngine(md)
		if _, _, err := eng.StepUpPeakComposed(s); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.StepUpPeakComposed(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- sparse-backend benchmarks ------------------------------------------

func benchSparse256(b *testing.B) (*thermal.Model, *schedule.Schedule) {
	b.Helper()
	md, err := thermal.BuildGen(floorplan.BigLittleStacked(8, 8, 4, 0.5, 4), power.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	if !md.SparsePath() {
		b.Fatal("256-core platform on the dense backend")
	}
	specs := make([]schedule.TwoModeSpec, md.NumCores())
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.3 + 0.05*float64(i%8),
		}
	}
	s, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		b.Fatal(err)
	}
	return md, s
}

// BenchmarkPeakEvalSparse measures one warmed stable-peak evaluation on
// the 256-core stacked big.LITTLE platform through the sparse backend
// (PCG stable start + exponential actions; mirrored by the CI entry
// peak_eval_sparse_256).
func BenchmarkPeakEvalSparse(b *testing.B) {
	md, s := benchSparse256(b)
	eng := sim.NewEngine(md)
	if _, _, err := eng.StepUpPeak(s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.StepUpPeak(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAOSearch256 is the headline scale solve: full AO on the
// 256-core stacked big.LITTLE platform (sparse backend + scale policy;
// mirrored by the CI entry ao_search_256, which also gates it).
func BenchmarkAOSearch256(b *testing.B) {
	md, _ := benchSparse256(b)
	ls, err := power.PaperLevels(3)
	if err != nil {
		b.Fatal(err)
	}
	p := solver.Problem{Model: md, Levels: ls, TmaxC: 70, Overhead: power.DefaultOverhead()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.AO(p)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("256-core AO lost feasibility")
		}
	}
}

// --- closed-loop component benchmarks -----------------------------------

func BenchmarkGovernorClosedLoop(b *testing.B) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		b.Fatal(err)
	}
	pol := &governor.StepWise{TripC: 62, HystK: 2, Levels: ls.Len()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := governor.Simulate(md, ls, pol, governor.Sensor{PeriodS: 10e-3}, 65, 10, 2, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEDFSimulation(b *testing.B) {
	tasks := []rt.Task{
		{Name: "a", WCET: 30e-3, Period: 100e-3},
		{Name: "b", WCET: 20e-3, Period: 40e-3},
		{Name: "c", WCET: 5e-3, Period: 25e-3},
	}
	profile := []rt.SpeedSeg{
		{Length: 1e-3, Speed: 0.6},
		{Length: 1e-3, Speed: 1.3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.SimulateEDF(tasks, profile, 2.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- public API benchmark ----------------------------------------------

func BenchmarkPublicCompare3x1(b *testing.B) {
	plat, err := thermosc.New(3, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.Compare(65); err != nil {
			b.Fatal(err)
		}
	}
}
