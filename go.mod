module thermosc

go 1.22
