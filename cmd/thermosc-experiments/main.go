// Command thermosc-experiments regenerates the paper's tables and figures
// on the repository's calibrated substrate.
//
// Usage:
//
//	thermosc-experiments [-run NAME|all] [-quick] [-seed N] [-list]
//
// Experiment names follow the paper artifacts: motivation (Tables II–III),
// fig2..fig7, tablev, plus the repository's ablation studies.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"thermosc/internal/expr"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment to run (or 'all')")
		quick    = flag.Bool("quick", false, "reduced sweep sizes (same shapes, ~10x faster)")
		seed     = flag.Int64("seed", 1, "seed for the random schedule generators")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Bool("parallel", false, "run all experiments concurrently (output stays ordered)")
	)
	flag.Parse()

	if *list {
		for _, name := range expr.Names() {
			fmt.Printf("%-12s %s\n", name, expr.Describe(name))
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	cfg := expr.Config{Quick: *quick, Seed: *seed}

	var err error
	switch {
	case *run == "all" && *parallel:
		err = expr.AllParallel(w, cfg)
	case *run == "all":
		err = expr.All(w, cfg)
	default:
		err = expr.Run(*run, w, cfg)
	}
	if err != nil {
		w.Flush()
		fmt.Fprintln(os.Stderr, "thermosc-experiments:", err)
		os.Exit(1)
	}
}
