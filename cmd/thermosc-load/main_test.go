package main

import (
	"context"
	"net/http"
	"reflect"
	"testing"
	"time"

	"thermosc/internal/cluster"
)

func TestParseHelpers(t *testing.T) {
	if got := parseList(" a, ,b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("parseList: %v", got)
	}
	if got := parseFloats("60, 70.5 ,80"); !reflect.DeepEqual(got, []float64{60, 70.5, 80}) {
		t.Fatalf("parseFloats: %v", got)
	}
	if got := parseFloats(""); got != nil {
		t.Fatalf("parseFloats empty: %v", got)
	}
}

// The -cluster N in-process fleet must come up healthy, gossip, answer
// requests on every replica, and shut down cleanly.
func TestStartFleet(t *testing.T) {
	f, err := startFleet(2, 50*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	if len(f.urls) != 2 {
		t.Fatalf("fleet urls: %v", f.urls)
	}
	for _, u := range f.urls {
		resp, err := http.Get(u + "/healthz")
		if err != nil {
			t.Fatalf("healthz %s: %v", u, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz %s: HTTP %d", u, resp.StatusCode)
		}
		cr, err := http.Get(u + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		cr.Body.Close()
		if cr.StatusCode != http.StatusOK {
			t.Fatalf("cluster status %s: HTTP %d", u, cr.StatusCode)
		}
	}
	// A tiny load run against the fleet goes through end to end.
	rep, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
		Targets:  f.urls,
		Requests: 30,
		RateHz:   500,
		// Small platforms + wide deadlines keep this robust under -race.
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served+rep.Shed != 30 || rep.Errors > 0 {
		t.Fatalf("fleet load: %+v", rep)
	}
	if len(rep.PlanMismatches) != 0 {
		t.Fatalf("fleet load mismatches: %v", rep.PlanMismatches)
	}
}
