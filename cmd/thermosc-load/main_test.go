package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"thermosc/internal/cluster"
)

func TestParseHelpers(t *testing.T) {
	if got := parseList(" a, ,b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("parseList: %v", got)
	}
	if got := parseFloats("60, 70.5 ,80"); !reflect.DeepEqual(got, []float64{60, 70.5, 80}) {
		t.Fatalf("parseFloats: %v", got)
	}
	if got := parseFloats(""); got != nil {
		t.Fatalf("parseFloats empty: %v", got)
	}
}

// The -cluster N in-process fleet must come up healthy, gossip, answer
// requests on every replica, and shut down cleanly.
func TestStartFleet(t *testing.T) {
	f, err := startFleet(2, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	if len(f.urls) != 2 {
		t.Fatalf("fleet urls: %v", f.urls)
	}
	for _, u := range f.urls {
		resp, err := http.Get(u + "/healthz")
		if err != nil {
			t.Fatalf("healthz %s: %v", u, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz %s: HTTP %d", u, resp.StatusCode)
		}
		cr, err := http.Get(u + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		cr.Body.Close()
		if cr.StatusCode != http.StatusOK {
			t.Fatalf("cluster status %s: HTTP %d", u, cr.StatusCode)
		}
	}
	// A tiny load run against the fleet goes through end to end.
	rep, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
		Targets:  f.urls,
		Requests: 30,
		RateHz:   500,
		// Small platforms + wide deadlines keep this robust under -race.
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served+rep.Shed != 30 || rep.Errors > 0 {
		t.Fatalf("fleet load: %+v", rep)
	}
	if len(rep.PlanMismatches) != 0 {
		t.Fatalf("fleet load mismatches: %v", rep.PlanMismatches)
	}
}

// -churn mode end to end: a scripted kill/restart cycle runs against the
// in-process fleet, the killed replica really goes dark, the restarted
// one really comes back, and the timeline artifact is written.
func TestFleetChurnAndTimelines(t *testing.T) {
	f, err := startFleet(2, 50*time.Millisecond, 0, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()

	healthz := func(i int) (int, error) {
		resp, err := http.Get(f.urls[i] + "/healthz")
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	events := []cluster.ChurnEvent{
		{At: 0, Kind: cluster.ChurnKill, Replica: 0},
		{At: 50 * time.Millisecond, Kind: cluster.ChurnRestart, Replica: 0},
	}
	f.runChurn(context.Background(), events, time.Now())

	if _, err := healthz(0); err == nil {
		// The restart already rebound; verify it serves rather than
		// asserting darkness we may have missed.
		t.Log("replica 0 already rebound by the time we probed")
	}
	// The restarted replica answers on its original address.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, err := healthz(0)
		if err == nil && code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never came back: code=%d err=%v", code, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Probe loops on the survivor noticed the flap: give the 20 ms probe
	// interval a few ticks, then collect timelines.
	time.Sleep(300 * time.Millisecond)
	out := filepath.Join(t.TempDir(), "timelines.json")
	if err := f.writeTimelines(out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var timelines map[string]json.RawMessage
	if err := json.Unmarshal(raw, &timelines); err != nil {
		t.Fatalf("timeline artifact not JSON: %v\n%s", err, raw)
	}
	if len(timelines) != 2 {
		t.Fatalf("timeline artifact covers %d replicas, want 2", len(timelines))
	}
}
