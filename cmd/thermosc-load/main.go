// Command thermosc-load is an open-loop load generator for the
// planning service: a seed-pinned request stream with Poisson or ramp
// arrivals and zipf-skewed platform popularity, driven either at an
// existing fleet (-targets) or at a self-contained in-process cluster
// (-cluster N). The run's report — exact request accounting, latency
// percentiles, cache hit ratio, serve-source split, and cross-replica
// plan-identity violations — is printed as JSON and optionally written
// to -out; a run with errors, plan mismatches, or broken accounting
// exits nonzero, so the report doubles as a CI gate.
//
// Usage:
//
//	thermosc-load -cluster 3 -n 5000 -rate 500 -out report.json
//	thermosc-load -targets http://a:8080,http://b:8080 -n 100000 -curve ramp
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thermosc"
	"thermosc/internal/cluster"
)

func main() {
	var (
		targets     = flag.String("targets", "", "comma-separated replica base URLs to drive")
		clusterN    = flag.Int("cluster", 0, "spin up N in-process replicas and drive them (mutually exclusive with -targets)")
		n           = flag.Int("n", 1000, "total requests")
		rate        = flag.Float64("rate", 200, "mean arrival rate (req/s)")
		curve       = flag.String("curve", "poisson", "arrival curve: poisson or ramp")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf skew exponent (>1)")
		zipfV       = flag.Float64("zipf-v", 1, "zipf offset (>=1)")
		seed        = flag.Int64("seed", 1, "workload seed (pins schedule, picks, and deadlines)")
		maxCores    = flag.Int("max-cores", 16, "largest catalog platform (total cores)")
		tmax        = flag.String("tmax", "60,70,80", "comma-separated thermal thresholds (°C)")
		methods     = flag.String("methods", "AO,LNS", "comma-separated solver methods")
		paperLevels = flag.Int("paper-levels", 3, "voltage level set for every platform")
		timeoutMin  = flag.Float64("timeout-min", 1, "per-request deadline lower bound (s)")
		timeoutMax  = flag.Float64("timeout-max", 10, "per-request deadline upper bound (s)")
		concurrency = flag.Int("concurrency", 256, "max in-flight requests")
		relBurst    = flag.Int("related-burst", 0, "group requests into same-platform bursts of this size (<=1 disables; exercises server-side batching)")
		out         = flag.String("out", "", "write the JSON report to this file")
		maxErrors   = flag.Int("max-errors", -1, "fail the run when more than this many requests error (-1 disables; deadline 504s count as errors)")
		syncEvery   = flag.Duration("sync-interval", 250*time.Millisecond, "gossip period of the in-process cluster")
		storeCap    = flag.Int("store-cap", 0, "replicated store capacity of the in-process cluster (0 = default)")
		probeEvery  = flag.Duration("probe-interval", 250*time.Millisecond, "failure-detector probe period of the in-process cluster (0 disables dedicated probes)")
		churn       = flag.Int("churn", 0, "run N seed-pinned kill/restart cycles against the in-process cluster during the load (requires -cluster; report gains per-phase splits)")
		timeline    = flag.String("timeline", "", "write the fleet's per-peer health-transition timelines (JSON) to this file after the run (requires -cluster)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var urls []string
	var flt *fleet
	switch {
	case *clusterN > 0 && *targets != "":
		log.Fatal("thermosc-load: -cluster and -targets are mutually exclusive")
	case *clusterN > 0:
		f, err := startFleet(*clusterN, *syncEvery, *storeCap, *probeEvery)
		if err != nil {
			log.Fatalf("thermosc-load: %v", err)
		}
		defer f.stop()
		flt = f
		urls = f.urls
		log.Printf("thermosc-load: started %d in-process replicas: %v", *clusterN, urls)
	case *targets != "":
		if *churn > 0 || *timeline != "" {
			log.Fatal("thermosc-load: -churn/-timeline need the in-process fleet (-cluster N)")
		}
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				urls = append(urls, strings.TrimRight(t, "/"))
			}
		}
	default:
		log.Fatal("thermosc-load: one of -targets or -cluster is required")
	}

	cfg := cluster.LoadConfig{
		Targets:      urls,
		Requests:     *n,
		RateHz:       *rate,
		Curve:        *curve,
		ZipfS:        *zipfS,
		ZipfV:        *zipfV,
		Seed:         *seed,
		MaxCores:     *maxCores,
		TmaxC:        parseFloats(*tmax),
		Methods:      parseList(*methods),
		PaperLevels:  *paperLevels,
		TimeoutMinS:  *timeoutMin,
		TimeoutMaxS:  *timeoutMax,
		Concurrency:  *concurrency,
		RelatedBurst: *relBurst,
	}
	log.Printf("thermosc-load: %d requests at %.0f/s (%s curve, seed %d) across %d targets",
		cfg.Requests, cfg.RateHz, cfg.Curve, cfg.Seed, len(urls))

	// Churn mode: script seed-pinned kill/restart cycles over the run
	// window and split the report's accounting at each event boundary.
	var churnEvents []cluster.ChurnEvent
	if *churn > 0 {
		sched := cfg.Schedule()
		churnEvents = cluster.ChurnSchedule(*seed, *clusterN, *churn, sched[len(sched)-1])
		cfg.Phases = cluster.PhasesFor(churnEvents)
		for _, ev := range churnEvents {
			log.Printf("thermosc-load: churn: %s replica %d at +%s", ev.Kind, ev.Replica, ev.At.Round(time.Millisecond))
		}
	}

	start := time.Now()
	if len(churnEvents) > 0 {
		go flt.runChurn(ctx, churnEvents, start)
	}
	report, err := cluster.RunLoad(ctx, cfg)
	if err != nil {
		log.Fatalf("thermosc-load: %v", err)
	}
	log.Printf("thermosc-load: done in %s", time.Since(start).Round(time.Millisecond))

	if *timeline != "" {
		if err := flt.writeTimelines(*timeline); err != nil {
			log.Fatalf("thermosc-load: writing %s: %v", *timeline, err)
		}
		log.Printf("thermosc-load: health timelines written to %s", *timeline)
	}

	rb, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("thermosc-load: encoding report: %v", err)
	}
	fmt.Println(string(rb))
	if *out != "" {
		if err := os.WriteFile(*out, append(rb, '\n'), 0o644); err != nil {
			log.Fatalf("thermosc-load: writing %s: %v", *out, err)
		}
		log.Printf("thermosc-load: report written to %s", *out)
	}

	// Gate: the run is a failure when accounting breaks or any replica
	// returned two different complete plans for one key; sheds,
	// infeasibles, and (below -max-errors) deadline timeouts are
	// legitimate answers.
	failed := false
	if sum := report.Served + report.Infeasible + report.Shed + report.Errors; sum != report.Requests {
		log.Printf("thermosc-load: FAIL: accounting sums to %d of %d requests", sum, report.Requests)
		failed = true
	}
	if len(report.PlanMismatches) > 0 {
		log.Printf("thermosc-load: FAIL: %d keys returned divergent complete plans: %v",
			len(report.PlanMismatches), report.PlanMismatches)
		failed = true
	}
	if *maxErrors >= 0 && report.Errors > *maxErrors {
		log.Printf("thermosc-load: FAIL: %d requests errored (cap %d)", report.Errors, *maxErrors)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// fleet is the in-process replica set of -cluster N. Each replica
// remembers its cluster config so churn mode can kill it and bring an
// identically-configured incarnation back on the same address.
type fleet struct {
	urls  []string
	cfgs  []thermosc.ClusterConfig
	srvs  []*thermosc.Server
	https []*http.Server
}

// startFleet boots n replicas on ephemeral loopback ports, each
// configured with the others as peers.
func startFleet(n int, syncInterval time.Duration, storeCap int, probeInterval time.Duration) (*fleet, error) {
	lns := make([]net.Listener, n)
	f := &fleet{
		urls:  make([]string, n),
		cfgs:  make([]thermosc.ClusterConfig, n),
		srvs:  make([]*thermosc.Server, n),
		https: make([]*http.Server, n),
	}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		peers := make([]string, 0, n-1)
		for j, u := range f.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		f.cfgs[i] = thermosc.ClusterConfig{
			Self:          f.urls[i],
			Peers:         peers,
			SyncInterval:  syncInterval,
			StoreCap:      storeCap,
			ProbeInterval: probeInterval,
		}
		if err := f.boot(i, lns[i]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// boot builds replica i's server around an already-bound listener.
func (f *fleet) boot(i int, ln net.Listener) error {
	cfg := f.cfgs[i]
	srv := thermosc.NewServer(thermosc.ServerConfig{Cluster: &cfg})
	hs := &http.Server{Handler: srv}
	f.srvs[i], f.https[i] = srv, hs
	go func() { _ = hs.Serve(ln) }()
	return nil
}

// kill hard-stops replica i: listeners close, in-flight connections are
// cut — the closest in-process approximation of a process kill.
func (f *fleet) kill(i int) {
	_ = f.https[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = f.srvs[i].Shutdown(ctx)
	cancel()
}

// restart brings replica i back on its original address with its
// original config (an empty store — recovery runs through hinted
// handoff and anti-entropy, which is the point of churn mode). The
// survivors' pooled connections to the old incarnation are dropped so
// the restarted replica is rediscovered cleanly.
func (f *fleet) restart(i int) error {
	addr := strings.TrimPrefix(f.urls[i], "http://")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", addr, err)
	}
	if err := f.boot(i, ln); err != nil {
		return err
	}
	for j, srv := range f.srvs {
		if j != i {
			srv.CloseIdlePeerConnections()
		}
	}
	return nil
}

// runChurn replays a seed-pinned kill/restart script against the fleet,
// offsets measured from start.
func (f *fleet) runChurn(ctx context.Context, events []cluster.ChurnEvent, start time.Time) {
	for _, ev := range events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		switch ev.Kind {
		case cluster.ChurnKill:
			log.Printf("thermosc-load: churn: killing replica %d (%s)", ev.Replica, f.urls[ev.Replica])
			f.kill(ev.Replica)
		case cluster.ChurnRestart:
			log.Printf("thermosc-load: churn: restarting replica %d (%s)", ev.Replica, f.urls[ev.Replica])
			if err := f.restart(ev.Replica); err != nil {
				log.Printf("thermosc-load: churn: restart failed: %v", err)
			}
		}
	}
}

// writeTimelines collects every live replica's health-transition log
// (GET /v1/cluster?timeline=1) into one JSON file — the per-peer health
// timeline artifact the churn CI job uploads.
func (f *fleet) writeTimelines(path string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	timelines := make(map[string]json.RawMessage, len(f.urls))
	for _, u := range f.urls {
		resp, err := client.Get(u + "/v1/cluster?timeline=1")
		if err != nil {
			timelines[u] = json.RawMessage(`"unreachable"`)
			continue
		}
		var status struct {
			Timeline json.RawMessage `json:"timeline"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil || len(status.Timeline) == 0 {
			timelines[u] = json.RawMessage(`[]`)
			continue
		}
		timelines[u] = status.Timeline
	}
	b, err := json.MarshalIndent(timelines, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func (f *fleet) stop() {
	for i := range f.srvs {
		f.kill(i)
	}
}

func parseList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range parseList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			log.Fatalf("thermosc-load: bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}
