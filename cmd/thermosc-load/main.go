// Command thermosc-load is an open-loop load generator for the
// planning service: a seed-pinned request stream with Poisson or ramp
// arrivals and zipf-skewed platform popularity, driven either at an
// existing fleet (-targets) or at a self-contained in-process cluster
// (-cluster N). The run's report — exact request accounting, latency
// percentiles, cache hit ratio, serve-source split, and cross-replica
// plan-identity violations — is printed as JSON and optionally written
// to -out; a run with errors, plan mismatches, or broken accounting
// exits nonzero, so the report doubles as a CI gate.
//
// Usage:
//
//	thermosc-load -cluster 3 -n 5000 -rate 500 -out report.json
//	thermosc-load -targets http://a:8080,http://b:8080 -n 100000 -curve ramp
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thermosc"
	"thermosc/internal/cluster"
)

func main() {
	var (
		targets     = flag.String("targets", "", "comma-separated replica base URLs to drive")
		clusterN    = flag.Int("cluster", 0, "spin up N in-process replicas and drive them (mutually exclusive with -targets)")
		n           = flag.Int("n", 1000, "total requests")
		rate        = flag.Float64("rate", 200, "mean arrival rate (req/s)")
		curve       = flag.String("curve", "poisson", "arrival curve: poisson or ramp")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf skew exponent (>1)")
		zipfV       = flag.Float64("zipf-v", 1, "zipf offset (>=1)")
		seed        = flag.Int64("seed", 1, "workload seed (pins schedule, picks, and deadlines)")
		maxCores    = flag.Int("max-cores", 16, "largest catalog platform (total cores)")
		tmax        = flag.String("tmax", "60,70,80", "comma-separated thermal thresholds (°C)")
		methods     = flag.String("methods", "AO,LNS", "comma-separated solver methods")
		paperLevels = flag.Int("paper-levels", 3, "voltage level set for every platform")
		timeoutMin  = flag.Float64("timeout-min", 1, "per-request deadline lower bound (s)")
		timeoutMax  = flag.Float64("timeout-max", 10, "per-request deadline upper bound (s)")
		concurrency = flag.Int("concurrency", 256, "max in-flight requests")
		relBurst    = flag.Int("related-burst", 0, "group requests into same-platform bursts of this size (<=1 disables; exercises server-side batching)")
		out         = flag.String("out", "", "write the JSON report to this file")
		maxErrors   = flag.Int("max-errors", -1, "fail the run when more than this many requests error (-1 disables; deadline 504s count as errors)")
		syncEvery   = flag.Duration("sync-interval", 250*time.Millisecond, "gossip period of the in-process cluster")
		storeCap    = flag.Int("store-cap", 0, "replicated store capacity of the in-process cluster (0 = default)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var urls []string
	switch {
	case *clusterN > 0 && *targets != "":
		log.Fatal("thermosc-load: -cluster and -targets are mutually exclusive")
	case *clusterN > 0:
		fleet, err := startFleet(*clusterN, *syncEvery, *storeCap)
		if err != nil {
			log.Fatalf("thermosc-load: %v", err)
		}
		defer fleet.stop()
		urls = fleet.urls
		log.Printf("thermosc-load: started %d in-process replicas: %v", *clusterN, urls)
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				urls = append(urls, strings.TrimRight(t, "/"))
			}
		}
	default:
		log.Fatal("thermosc-load: one of -targets or -cluster is required")
	}

	cfg := cluster.LoadConfig{
		Targets:      urls,
		Requests:     *n,
		RateHz:       *rate,
		Curve:        *curve,
		ZipfS:        *zipfS,
		ZipfV:        *zipfV,
		Seed:         *seed,
		MaxCores:     *maxCores,
		TmaxC:        parseFloats(*tmax),
		Methods:      parseList(*methods),
		PaperLevels:  *paperLevels,
		TimeoutMinS:  *timeoutMin,
		TimeoutMaxS:  *timeoutMax,
		Concurrency:  *concurrency,
		RelatedBurst: *relBurst,
	}
	log.Printf("thermosc-load: %d requests at %.0f/s (%s curve, seed %d) across %d targets",
		cfg.Requests, cfg.RateHz, cfg.Curve, cfg.Seed, len(urls))

	start := time.Now()
	report, err := cluster.RunLoad(ctx, cfg)
	if err != nil {
		log.Fatalf("thermosc-load: %v", err)
	}
	log.Printf("thermosc-load: done in %s", time.Since(start).Round(time.Millisecond))

	rb, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("thermosc-load: encoding report: %v", err)
	}
	fmt.Println(string(rb))
	if *out != "" {
		if err := os.WriteFile(*out, append(rb, '\n'), 0o644); err != nil {
			log.Fatalf("thermosc-load: writing %s: %v", *out, err)
		}
		log.Printf("thermosc-load: report written to %s", *out)
	}

	// Gate: the run is a failure when accounting breaks or any replica
	// returned two different complete plans for one key; sheds,
	// infeasibles, and (below -max-errors) deadline timeouts are
	// legitimate answers.
	failed := false
	if sum := report.Served + report.Infeasible + report.Shed + report.Errors; sum != report.Requests {
		log.Printf("thermosc-load: FAIL: accounting sums to %d of %d requests", sum, report.Requests)
		failed = true
	}
	if len(report.PlanMismatches) > 0 {
		log.Printf("thermosc-load: FAIL: %d keys returned divergent complete plans: %v",
			len(report.PlanMismatches), report.PlanMismatches)
		failed = true
	}
	if *maxErrors >= 0 && report.Errors > *maxErrors {
		log.Printf("thermosc-load: FAIL: %d requests errored (cap %d)", report.Errors, *maxErrors)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// fleet is the in-process replica set of -cluster N.
type fleet struct {
	urls  []string
	srvs  []*thermosc.Server
	https []*http.Server
}

// startFleet boots n replicas on ephemeral loopback ports, each
// configured with the others as peers.
func startFleet(n int, syncInterval time.Duration, storeCap int) (*fleet, error) {
	lns := make([]net.Listener, n)
	f := &fleet{urls: make([]string, n), srvs: make([]*thermosc.Server, n), https: make([]*http.Server, n)}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		peers := make([]string, 0, n-1)
		for j, u := range f.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv := thermosc.NewServer(thermosc.ServerConfig{
			Cluster: &thermosc.ClusterConfig{
				Self:         f.urls[i],
				Peers:        peers,
				SyncInterval: syncInterval,
				StoreCap:     storeCap,
			},
		})
		hs := &http.Server{Handler: srv}
		f.srvs[i], f.https[i] = srv, hs
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, lns[i])
	}
	return f, nil
}

func (f *fleet) stop() {
	for i := range f.srvs {
		_ = f.https[i].Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = f.srvs[i].Shutdown(ctx)
		cancel()
	}
}

func parseList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range parseList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			log.Fatalf("thermosc-load: bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}
