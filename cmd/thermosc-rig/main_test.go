package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"thermosc/internal/rig"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	old := os.Stdout
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wr
	done := make(chan []byte)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := rd.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- buf
	}()
	ferr := fn()
	wr.Close()
	os.Stdout = old
	out := <-done
	rd.Close()
	return out, ferr
}

func writeScenario(t *testing.T, sc *rig.Scenario) string {
	t.Helper()
	data, err := rig.EncodeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func shortScenario(t *testing.T) string {
	sc := &rig.Scenario{Seed: 7, HorizonS: 1,
		Sensor:   rig.SensorFaults{NoiseStdK: 0.5, DropoutProb: 0.01},
		Actuator: rig.ActuatorFaults{LatencyS: 1e-3},
	}
	if err := sc.Canon(); err != nil {
		t.Fatal(err)
	}
	return writeScenario(t, sc)
}

func TestCmdRunControllers(t *testing.T) {
	path := shortScenario(t)
	for _, ctrl := range []string{"guard", "stepwise", "predictive"} {
		out, err := capture(t, func() error {
			return cmdRun([]string{"-scenario", path, "-controller", ctrl})
		})
		if err != nil {
			t.Fatalf("%s: %v", ctrl, err)
		}
		var rep rig.Report
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatalf("%s: bad report JSON: %v\n%s", ctrl, err, out)
		}
		if rep.Steps != 100 || rep.TraceSHA256 == "" {
			t.Fatalf("%s: report %+v", ctrl, rep)
		}
	}
	if err := cmdRun([]string{"-scenario", path, "-controller", "nope"}); err == nil {
		t.Fatal("unknown controller accepted")
	}
	if err := cmdRun([]string{"-scenario", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

func TestCmdRunSeedOverride(t *testing.T) {
	path := shortScenario(t)
	run := func(seed string) rig.Report {
		out, err := capture(t, func() error {
			return cmdRun([]string{"-scenario", path, "-seed", seed})
		})
		if err != nil {
			t.Fatal(err)
		}
		var rep rig.Report
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run("99"), run("100")
	if a.Seed != 99 || b.Seed != 100 {
		t.Fatalf("seed override ignored: %d/%d", a.Seed, b.Seed)
	}
	if a.TraceSHA256 == b.TraceSHA256 {
		t.Fatal("different seeds, identical traces")
	}
}

func TestCmdSoakPassesAndIsDeterministic(t *testing.T) {
	base := &rig.Scenario{HorizonS: 1}
	path := writeScenario(t, base)
	run := func() rig.SoakReport {
		out, err := capture(t, func() error {
			return cmdSoak([]string{"-scenario", path, "-n", "3", "-seed", "5", "-workers", "2"})
		})
		if err != nil {
			t.Fatal(err)
		}
		var rep rig.SoakReport
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !a.Pass || a.N != 3 {
		t.Fatalf("soak report %+v", a)
	}
	for i := range a.Scenarios {
		if a.Scenarios[i].Report.TraceSHA256 != b.Scenarios[i].Report.TraceSHA256 {
			t.Fatalf("soak scenario %d not reproducible across invocations", i)
		}
	}
}

func TestCmdCompare(t *testing.T) {
	path := shortScenario(t)
	out, err := capture(t, func() error {
		return cmdCompare([]string{"-scenario", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep rig.CompareReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("bad compare JSON: %v", err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("%d runs", len(rep.Runs))
	}
}

func TestLoadScenarioDefaults(t *testing.T) {
	sc, err := loadScenario("", 123)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 123 {
		t.Fatalf("seed %d", sc.Seed)
	}
	if _, err := loadScenario(filepath.Join(t.TempDir(), "nope.json"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
