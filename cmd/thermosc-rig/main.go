// Command thermosc-rig drives the closed-loop chip emulator: a virtual
// plant with quantized noisy sensors, DVFS actuation latency, and a
// seed-pinned fault injector, controlled by the AO plan guard or the
// reactive/predictive governors.
//
// Usage:
//
//	thermosc-rig run     [-scenario file.json] [-seed N] [-controller guard|stepwise|predictive]
//	thermosc-rig soak    [-n 20] [-seed 1] [-workers 0] [-scenario base.json] [-plan-budget 0]
//	thermosc-rig compare [-scenario file.json] [-seed N]
//
// Every subcommand prints a JSON report to stdout (see docs/RIG.md for
// the schemas). `soak` exits nonzero when any scenario violates
// Tmax + guard band or replays nondeterministically, so CI can gate on
// it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"thermosc/internal/governor"
	"thermosc/internal/rig"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "thermosc-rig: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-rig: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: thermosc-rig <run|soak|compare> [flags]

  run      one scenario under one controller, print the run report
  soak     N randomized fault scenarios under the guarded AO plan,
           each replayed twice; exit 1 on any violation or trace mismatch
  compare  one scenario under plan-guard, step-wise, and predictive
           controllers with identical fault streams

Run "thermosc-rig <subcommand> -h" for flags.
`)
}

// loadScenario reads a scenario JSON file, or starts from the zero
// scenario (all defaults, no faults) when path is empty. A nonzero seed
// flag overrides the file's seed.
func loadScenario(path string, seed int64) (*rig.Scenario, error) {
	sc := &rig.Scenario{}
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		sc, err = rig.DecodeScenario(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	if seed != 0 {
		sc.Seed = seed
	}
	return sc, nil
}

func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scPath := fs.String("scenario", "", "scenario JSON file (default: zero-fault defaults)")
	seed := fs.Int64("seed", 0, "override the scenario seed (0 keeps the file's)")
	ctrlName := fs.String("controller", "guard", "controller: guard | stepwise | predictive")
	fs.Parse(args)

	sc, err := loadScenario(*scPath, *seed)
	if err != nil {
		return err
	}
	r, err := rig.New(sc)
	if err != nil {
		return err
	}
	canon := r.Scenario()
	var ctrl rig.Controller
	switch *ctrlName {
	case "guard":
		plan, err := rig.PlanAO(r)
		if err != nil {
			return err
		}
		ctrl, err = rig.GuardFor(canon, plan, r.Levels())
		if err != nil {
			return err
		}
	case "stepwise":
		ctrl = rig.FromPolicy(&governor.StepWise{TripC: canon.TmaxC, HystK: 2, Levels: r.Levels().Len()})
	case "predictive":
		pred := governor.NewPredictive(r.PlannerModel(), r.Levels(), canon.TmaxC, 1.0, canon.StepS)
		pred.LatencyS = canon.Actuator.LatencyS
		ctrl = rig.FromPolicy(pred)
	default:
		return fmt.Errorf("unknown controller %q (want guard, stepwise, or predictive)", *ctrlName)
	}
	rep, err := r.Run(ctrl)
	if err != nil {
		return err
	}
	return emit(rep)
}

func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	scPath := fs.String("scenario", "", "base scenario JSON template (default: built-in defaults)")
	n := fs.Int("n", 20, "number of randomized fault scenarios")
	seed := fs.Int64("seed", 1, "soak derivation seed")
	workers := fs.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	planBudget := fs.Duration("plan-budget", 0,
		"starve the planner: swap to a replan solved under this wall-clock budget at the horizon midpoint (0 = full planning)")
	fs.Parse(args)

	var base *rig.Scenario
	if *scPath != "" {
		sc, err := loadScenario(*scPath, 0)
		if err != nil {
			return err
		}
		base = sc
	}
	var rep *rig.SoakReport
	var err error
	if *planBudget > 0 {
		rep, err = rig.SoakStarved(base, *n, *seed, *workers, *planBudget)
	} else {
		rep, err = rig.Soak(base, *n, *seed, *workers)
	}
	if err != nil {
		return err
	}
	if err := emit(rep); err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("soak failed: %d violation(s), %d nondeterministic trace(s)",
			rep.Violations, rep.NonDeterministic)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	scPath := fs.String("scenario", "", "scenario JSON file (default: zero-fault defaults)")
	seed := fs.Int64("seed", 0, "override the scenario seed (0 keeps the file's)")
	fs.Parse(args)

	sc, err := loadScenario(*scPath, *seed)
	if err != nil {
		return err
	}
	rep, err := rig.Compare(sc)
	if err != nil {
		return err
	}
	return emit(rep)
}
