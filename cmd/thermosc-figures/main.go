// Command thermosc-figures renders the headline evaluation figures as
// standalone SVG files.
//
// Usage:
//
//	thermosc-figures [-dir figures] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"thermosc/internal/figures"
)

func main() {
	var (
		dir   = flag.String("dir", "figures", "output directory for the SVG files")
		quick = flag.Bool("quick", false, "reduced sweep sizes")
		seed  = flag.Int64("seed", 1, "seed for the random schedule generators")
	)
	flag.Parse()

	cfg := figures.Config{Quick: *quick, Seed: *seed}
	if err := figures.WriteAll(*dir, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "thermosc-figures:", err)
		os.Exit(1)
	}
	for _, f := range figures.Files() {
		fmt.Printf("wrote %s/%s\n", *dir, f)
	}
}
