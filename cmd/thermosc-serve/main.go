// Command thermosc-serve runs the planning service: a long-lived HTTP
// daemon answering throughput-maximization and simulation requests over
// JSON, with plan caching, request deduplication, per-request timeouts,
// and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	thermosc-serve -addr :8080
//
// Endpoints (see docs/SERVE.md for the full schemas):
//
//	POST /v1/maximize  {"platform":{"rows":3,"cols":1},"tmax_c":65,"method":"AO"}
//	POST /v1/simulate  {"platform":{...},"plan":{...},"periods":3}
//	GET  /healthz
//	GET  /v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thermosc"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		planCache     = flag.Int("plan-cache", 256, "LRU plan cache capacity")
		platformCache = flag.Int("platform-cache", 32, "LRU platform/engine cache capacity")
		maxCores      = flag.Int("max-cores", 256, "largest platform (total cores) accepted")
		timeout       = flag.Duration("timeout", 30*time.Second, "default per-request solve timeout")
		maxTimeout    = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested timeouts")
		workers       = flag.Int("workers", 0, "solver fan-out width (0 = GOMAXPROCS)")
		grace         = flag.Duration("grace", 30*time.Second, "shutdown drain grace period")
		auditEvery    = flag.Int("audit-every", 0, "audit every Nth cold solve with the verification oracle (0 disables)")
		solveConc     = flag.Int("solve-concurrency", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		solveQueue    = flag.Int("solve-queue", 0, "admission queue depth; beyond it requests shed with 429 (0 = default 256)")
		planTTL       = flag.Duration("plan-ttl", 0, "age after which cached complete plans are served stale and refreshed in the background (0 = never stale)")
		brkWindow     = flag.Int("breaker-window", 0, "audit verdicts in the circuit breaker window (0 = default 20)")
		brkThreshold  = flag.Float64("breaker-threshold", 0, "audit failure fraction that trips the breaker to fallback-only planning (0 = default 0.5)")
		brkMinSamples = flag.Int("breaker-min-samples", 0, "verdicts required before the breaker may trip (0 = default 8)")
		brkCooloff    = flag.Duration("breaker-cooloff", 0, "open-state hold before a half-open probe (0 = default 30s)")
		batchWindow   = flag.Duration("batch-window", 0, "coalesce concurrent same-platform solves inside this window (0 disables batching)")
		batchMax      = flag.Int("batch-max", 0, "members that seal a batch group early (0 = default 16)")

		// Fleet flags (see docs/CLUSTER.md). -peers turns on clustering.
		self         = flag.String("self", "", "this replica's advertised base URL (default http://<bound addr>)")
		peers        = flag.String("peers", "", "comma-separated peer base URLs; non-empty enables clustering")
		ringVnodes   = flag.Int("ring-vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
		syncInterval = flag.Duration("sync-interval", 2*time.Second, "anti-entropy gossip period (0 disables the background loop)")
		storeCap     = flag.Int("store-cap", 0, "replicated plan store capacity (0 = default 4096)")
		storeBackend = flag.String("store-backend", "", "plan store backend: mem or file (default mem)")
		storePath    = flag.String("store-path", "", "append-only log path for -store-backend file")
		warmRestore  = flag.String("warm-restore", "", "snapshot file to load into the plan store at startup")
		warmExport   = flag.String("warm-export", "", "snapshot file to write from the plan store on shutdown")

		// Self-healing flags (failure detector + hinted handoff).
		probeInterval = flag.Duration("probe-interval", time.Second, "peer /healthz probe period for the failure detector (0 disables dedicated probes; gossip still feeds the detector)")
		suspectAfter  = flag.Int("suspect-after", 0, "consecutive failed contacts that mark a peer suspect (0 = default 2)")
		deadAfter     = flag.Int("dead-after", 0, "consecutive failed contacts that mark a peer dead (0 = default 4)")
		recoverAfter  = flag.Int("recover-after", 0, "consecutive successes a dead peer needs to rejoin (0 = default 2)")
		hintCap       = flag.Int("hint-cap", 0, "per-peer hinted-handoff queue bound in keys (0 = default 1024)")
	)
	flag.Parse()

	// The listener binds before the server is built so -self can default
	// to the actually-bound address (-addr 127.0.0.1:0 picks a port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("thermosc-serve: listen %s: %v", *addr, err)
	}

	var clusterCfg *thermosc.ClusterConfig
	if *peers != "" || *self != "" {
		advertised := *self
		if advertised == "" {
			advertised = "http://" + ln.Addr().String()
		}
		clusterCfg = &thermosc.ClusterConfig{
			Self:          advertised,
			Peers:         splitList(*peers),
			VirtualNodes:  *ringVnodes,
			SyncInterval:  *syncInterval,
			StoreCap:      *storeCap,
			StoreBackend:  *storeBackend,
			StorePath:     *storePath,
			ProbeInterval: *probeInterval,
			SuspectAfter:  *suspectAfter,
			DeadAfter:     *deadAfter,
			RecoverAfter:  *recoverAfter,
			HintCap:       *hintCap,
		}
	} else if *warmRestore != "" || *warmExport != "" {
		log.Fatalf("thermosc-serve: -warm-restore/-warm-export need clustering (-peers or -self)")
	} else if *storeBackend != "" || *storePath != "" {
		log.Fatalf("thermosc-serve: -store-backend/-store-path need clustering (-peers or -self)")
	}

	srv := thermosc.NewServer(thermosc.ServerConfig{
		PlanCacheSize:     *planCache,
		PlatformCacheSize: *platformCache,
		MaxCores:          *maxCores,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Workers:           *workers,
		AuditEvery:        *auditEvery,
		SolveConcurrency:  *solveConc,
		SolveQueue:        *solveQueue,
		PlanTTL:           *planTTL,
		BreakerWindow:     *brkWindow,
		BreakerThreshold:  *brkThreshold,
		BreakerMinSamples: *brkMinSamples,
		BreakerCooloff:    *brkCooloff,
		BatchWindow:       *batchWindow,
		BatchMaxSize:      *batchMax,
		Cluster:           clusterCfg,
	})
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *warmRestore != "" {
		snap, err := os.ReadFile(*warmRestore)
		if err != nil {
			log.Fatalf("thermosc-serve: warm restore: %v", err)
		}
		n, err := srv.ClusterRestore(snap)
		if err != nil {
			log.Fatalf("thermosc-serve: warm restore %s: %v", *warmRestore, err)
		}
		log.Printf("thermosc-serve: warm restore: %d plans from %s", n, *warmRestore)
	}

	// The resolved address goes to stdout so scripts and the e2e harness
	// can discover an ephemeral port (-addr 127.0.0.1:0).
	fmt.Printf("listening %s\n", ln.Addr())
	log.Printf("thermosc-serve: listening on %s", ln.Addr())
	if clusterCfg != nil {
		log.Printf("thermosc-serve: cluster self=%s peers=%v", clusterCfg.Self, clusterCfg.Peers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatalf("thermosc-serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("thermosc-serve: draining (grace %s)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop accepting and drain connections, then drain solver work; both
	// share the grace deadline.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("thermosc-serve: connection drain: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("thermosc-serve: solve drain: %v", err)
		os.Exit(1)
	}
	if *warmExport != "" {
		snap, err := srv.ClusterSnapshot()
		if err != nil {
			log.Printf("thermosc-serve: warm export: %v", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*warmExport, snap, 0o644); err != nil {
			log.Printf("thermosc-serve: warm export %s: %v", *warmExport, err)
			os.Exit(1)
		}
		log.Printf("thermosc-serve: warm export: wrote %s", *warmExport)
	}
	log.Printf("thermosc-serve: drained, bye")
}

// splitList parses a comma-separated flag value into trimmed non-empty
// items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
