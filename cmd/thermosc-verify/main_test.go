package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"thermosc"
)

// A small seeded sweep must find zero divergences and detect every
// mutation (this is the CI differential job in miniature).
func TestSweepDifferential(t *testing.T) {
	if err := runSweep(os.Stdout, 6, 7, 8, false); err != nil {
		t.Fatal(err)
	}
}

// Every mutation class must be flagged on a fixed verified subject.
func TestMutationClassesAllDetected(t *testing.T) {
	plat, err := thermosc.New(2, 1, thermosc.WithPaperLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := plat.Maximize(thermosc.MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !hasOscillatingCore(plan) {
		t.Fatal("AO plan has no oscillating core to mutate")
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 60 && len(seen) < 6; i++ {
		mut, name := mutate(rng, plan)
		seen[name] = true
		rep, err := plat.Audit(mut, 60)
		if err != nil {
			continue // refusal to audit a corrupted plan is detection
		}
		if rep.OK {
			t.Fatalf("mutation %q (iteration %d) not flagged:\n%s", name, i, rep)
		}
	}
	if len(seen) < 6 {
		t.Fatalf("only %d mutation classes drawn: %v", len(seen), seen)
	}
	// The subject itself must still verify — mutate must not corrupt it.
	rep, err := plat.Audit(plan, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("mutate corrupted the shared subject:\n%s", rep)
	}
}

// Plan mode must pass a genuine serialized plan and fail a tampered one.
func TestAuditPlanFile(t *testing.T) {
	plat, err := thermosc.New(2, 1, thermosc.WithPaperLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := plat.Maximize(thermosc.MethodAO, 60)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, p *thermosc.Plan) string {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if err := auditPlanFile(write("good.json", plan), 2, 1, 3, 60, true); err != nil {
		t.Fatalf("genuine plan rejected: %v", err)
	}
	bad := clonePlan(plan)
	bad.PeakC += 1
	if err := auditPlanFile(write("bad.json", bad), 2, 1, 3, 60, false); err == nil {
		t.Fatal("tampered plan accepted")
	}
	if err := auditPlanFile(filepath.Join(dir, "missing.json"), 2, 1, 3, 60, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
