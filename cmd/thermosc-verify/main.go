// Command thermosc-verify re-checks plans with the independent
// verification oracle (internal/verify): a dense first-principles
// re-derivation of the stable-status peak plus the paper's structural
// invariants (step-up ordering, Theorem-1 peak placement, work
// preservation across the m-split, the overhead bound m ≤ M).
//
// Two modes:
//
//	thermosc-verify -plan plan.json -rows 2 -cols 1 -paper-levels 3 -tmax 65
//
// audits one serialized plan (the JSON served by /v1/maximize or written
// by thermosc-opt) against the platform described by the flags, prints
// the report, and exits 1 on any violation.
//
//	thermosc-verify -sweep 50 -seed 1 -mutations 20
//
// generates N seeded random platforms, solves each with AO, PCO and EXS,
// audits every plan differentially against the oracle (exit 1 on any
// divergence), then applies K seeded mutations — level swaps, interval
// stretches, m inflation, peak/throughput tampering, feasibility flips —
// to verified plans and requires the oracle to flag every one. This is
// the CI differential job (`make verify-diff`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"thermosc"
)

func main() {
	var (
		planPath    = flag.String("plan", "", "serialized plan (JSON) to audit; empty = sweep mode")
		rows        = flag.Int("rows", 2, "platform rows (plan mode)")
		cols        = flag.Int("cols", 1, "platform cols (plan mode)")
		paperLevels = flag.Int("paper-levels", 3, "number of paper voltage levels (plan mode)")
		tmax        = flag.Float64("tmax", 65, "temperature threshold, absolute °C (plan mode)")
		sweep       = flag.Int("sweep", 50, "number of seeded random platforms to verify differentially")
		seed        = flag.Int64("seed", 1, "sweep RNG seed")
		mutations   = flag.Int("mutations", 20, "seeded mutations that must all be flagged")
		jsonOut     = flag.Bool("json", false, "emit reports as JSON")
	)
	flag.Parse()

	var err error
	if *planPath != "" {
		err = auditPlanFile(*planPath, *rows, *cols, *paperLevels, *tmax, *jsonOut)
	} else {
		err = runSweep(os.Stdout, *sweep, *seed, *mutations, *jsonOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-verify: FAIL: %v\n", err)
		os.Exit(1)
	}
}

// auditPlanFile verifies one serialized plan against a flag-described
// platform.
func auditPlanFile(path string, rows, cols, levels int, tmaxC float64, jsonOut bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var plan thermosc.Plan
	if err := json.Unmarshal(b, &plan); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	plat, err := thermosc.New(rows, cols, thermosc.WithPaperLevels(levels))
	if err != nil {
		return err
	}
	rep, err := plat.Audit(&plan, tmaxC)
	if err != nil {
		return err
	}
	emit(os.Stdout, rep, jsonOut)
	if !rep.OK {
		return fmt.Errorf("%d invariant violation(s)", len(rep.Violations))
	}
	return nil
}

func emit(w *os.File, rep *thermosc.AuditReport, jsonOut bool) {
	if jsonOut {
		b, _ := json.Marshal(rep)
		fmt.Fprintf(w, "%s\n", b)
		return
	}
	fmt.Fprintln(w, rep)
}

// platformCase is one randomly drawn verification subject.
type platformCase struct {
	rows, cols, levels int
	periodS            float64
	tmaxC              float64
}

func (c platformCase) String() string {
	return fmt.Sprintf("%dx%d levels=%d period=%gms tmax=%g°C",
		c.rows, c.cols, c.levels, c.periodS*1e3, c.tmaxC)
}

// drawCase samples a small platform: 1–4 cores, 2–3 paper levels, a base
// period spanning 10–40 ms, and a threshold spanning comfortably
// feasible to borderline infeasible.
func drawCase(rng *rand.Rand) platformCase {
	shapes := [][2]int{{1, 1}, {2, 1}, {1, 3}, {2, 2}}
	sh := shapes[rng.Intn(len(shapes))]
	return platformCase{
		rows:    sh[0],
		cols:    sh[1],
		levels:  2 + rng.Intn(2),
		periodS: []float64{10e-3, 20e-3, 40e-3}[rng.Intn(3)],
		tmaxC:   50 + 25*rng.Float64(),
	}
}

func (c platformCase) build() (*thermosc.Platform, error) {
	return thermosc.New(c.rows, c.cols,
		thermosc.WithPaperLevels(c.levels),
		thermosc.WithBasePeriod(c.periodS))
}

// runSweep is the differential CI job: every solver plan on every drawn
// platform must pass the oracle, and every seeded mutation must fail it.
func runSweep(w *os.File, n int, seed int64, mutations int, jsonOut bool) error {
	rng := rand.New(rand.NewSource(seed))
	methods := []thermosc.Method{thermosc.MethodAO, thermosc.MethodPCO, thermosc.MethodEXS}

	var failures int
	var audited int
	// oscillating collects verified plans with a real two-mode timeline —
	// the mutation pass needs plans whose structure can be corrupted.
	type subject struct {
		plat  *thermosc.Platform
		plan  *thermosc.Plan
		tmaxC float64
	}
	var oscillating []subject

	for i := 0; i < n; i++ {
		c := drawCase(rng)
		plat, err := c.build()
		if err != nil {
			return fmt.Errorf("case %d (%s): %w", i, c, err)
		}
		for _, m := range methods {
			plan, err := plat.Maximize(m, c.tmaxC)
			if err != nil {
				return fmt.Errorf("case %d (%s) %s: %w", i, c, m, err)
			}
			if len(plan.Cores) == 0 {
				continue // nothing schedulable to verify
			}
			rep, err := plat.Audit(plan, c.tmaxC)
			if err != nil {
				return fmt.Errorf("case %d (%s) %s: audit: %w", i, c, m, err)
			}
			audited++
			if !rep.OK {
				failures++
				fmt.Fprintf(w, "case %d (%s) %s DIVERGES:\n", i, c, m)
				emit(w, rep, jsonOut)
				continue
			}
			if plan.M >= 1 && hasOscillatingCore(plan) {
				oscillating = append(oscillating, subject{plat, plan, c.tmaxC})
			}
		}
	}
	fmt.Fprintf(w, "sweep: %d platforms, %d plans audited, %d divergences, %d oscillating subjects\n",
		n, audited, failures, len(oscillating))
	if failures > 0 {
		return fmt.Errorf("%d plan(s) diverged from the oracle", failures)
	}
	if audited == 0 {
		return fmt.Errorf("sweep audited no plans")
	}

	if mutations > 0 {
		if len(oscillating) == 0 {
			return fmt.Errorf("no oscillating plans to mutate")
		}
		missed := 0
		for k := 0; k < mutations; k++ {
			s := oscillating[rng.Intn(len(oscillating))]
			mut, name := mutate(rng, s.plan)
			rep, err := s.plat.Audit(mut, s.tmaxC)
			if err != nil {
				// An audit refusing to run on a corrupted plan counts as
				// detection (e.g. a structurally invalid timeline).
				fmt.Fprintf(w, "mutation %2d %-18s detected (audit error: %v)\n", k, name, err)
				continue
			}
			if rep.OK {
				missed++
				fmt.Fprintf(w, "mutation %2d %-18s MISSED:\n", k, name)
				emit(w, rep, jsonOut)
				continue
			}
			fmt.Fprintf(w, "mutation %2d %-18s detected [%s]\n", k, name, rep.Violations[0].Invariant)
		}
		if missed > 0 {
			return fmt.Errorf("%d of %d mutations went undetected", missed, mutations)
		}
		fmt.Fprintf(w, "mutations: %d/%d detected\n", mutations, mutations)
	}
	return nil
}

func hasOscillatingCore(p *thermosc.Plan) bool {
	for _, core := range p.Cores {
		if len(core) >= 2 {
			return true
		}
	}
	return false
}

// clonePlan deep-copies a plan so mutations never corrupt the verified
// subject.
func clonePlan(p *thermosc.Plan) *thermosc.Plan {
	out := *p
	out.Cores = make([][]thermosc.Slice, len(p.Cores))
	for i, core := range p.Cores {
		out.Cores[i] = append([]thermosc.Slice(nil), core...)
	}
	return &out
}

// mutate applies one randomly chosen corruption that a sound oracle must
// flag, and names it for the log.
func mutate(rng *rand.Rand, p *thermosc.Plan) (*thermosc.Plan, string) {
	mut := clonePlan(p)
	osc := -1
	for i, core := range mut.Cores {
		if len(core) >= 2 {
			osc = i
			break
		}
	}
	switch rng.Intn(6) {
	case 0: // Definition-1 order broken: low and high slices swapped.
		mut.Cores[osc][0], mut.Cores[osc][1] = mut.Cores[osc][1], mut.Cores[osc][0]
		return mut, "level-swap"
	case 1: // One high interval stretched at the low interval's expense.
		grow := (0.1 + 0.3*rng.Float64()) * mut.Cores[osc][0].Seconds
		mut.Cores[osc][1].Seconds += grow
		mut.Cores[osc][0].Seconds -= grow
		return mut, "interval-stretch"
	case 2: // m inflated past the overhead bound M.
		mut.M += 1 << 16
		return mut, "m-inflation"
	case 3: // Claimed peak no longer matches the timeline.
		mut.PeakC += 0.5 + 2*rng.Float64()
		return mut, "peak-tamper"
	case 4: // Claimed throughput no longer matches the emitted work.
		mut.Throughput *= 1.02 + 0.1*rng.Float64()
		return mut, "throughput-tamper"
	default: // Whole timeline stretched: m·tc no longer splits the base period.
		scale := 1.05 + 0.2*rng.Float64()
		mut.PeriodS *= scale
		for i := range mut.Cores {
			for j := range mut.Cores[i] {
				mut.Cores[i][j].Seconds *= scale
			}
		}
		return mut, "period-scale"
	}
}
