// Command thermosc-sim simulates the transient temperatures of a
// multi-core platform under a policy's schedule (or a fixed constant
// voltage assignment) and prints a CSV trace plus an ASCII plot.
//
// Usage:
//
//	thermosc-sim [-rows R] [-cols C] [-tmax T] [-method AO|...]
//	             [-volts v1,v2,...] [-periods N] [-samples K] [-csv]
//
// Examples:
//
//	thermosc-sim -rows 3 -cols 1 -tmax 65 -method AO -periods 50
//	thermosc-sim -rows 2 -cols 1 -volts 1.3,0.6 -periods 10 -csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"thermosc"
	"thermosc/internal/report"
)

func main() {
	var (
		rows    = flag.Int("rows", 3, "floorplan rows")
		cols    = flag.Int("cols", 1, "floorplan columns")
		tmax    = flag.Float64("tmax", 65, "peak temperature threshold [°C] (for -method runs)")
		method  = flag.String("method", "AO", "scheduling policy for the simulated plan")
		volts   = flag.String("volts", "", "comma-separated constant voltages (overrides -method)")
		levels  = flag.Int("levels", 2, "paper voltage level count for -method runs")
		periods = flag.Int("periods", 20, "number of schedule periods to simulate")
		samples = flag.Int("samples", 16, "samples per period")
		csv     = flag.Bool("csv", false, "emit the full CSV trace instead of the ASCII plot")
	)
	flag.Parse()

	plat, err := thermosc.New(*rows, *cols, thermosc.WithPaperLevels(*levels))
	if err != nil {
		fatal(err)
	}

	var plan *thermosc.Plan
	if *volts != "" {
		vs, err := parseVolts(*volts)
		if err != nil {
			fatal(err)
		}
		if len(vs) != plat.NumCores() {
			fatal(fmt.Errorf("%d voltages for %d cores", len(vs), plat.NumCores()))
		}
		plan = constantPlan(vs)
		steady, err := plat.SteadyTempC(vs)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "steady-state temps: %s\n", fmtTemps(steady))
	} else {
		plan, err = plat.Maximize(thermosc.Method(*method), *tmax)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: throughput %.4f, peak %.3f °C, feasible %v, m=%d\n",
			plan.Method, plan.Throughput, plan.PeakC, plan.Feasible, plan.M)
	}

	tr, err := plat.Trace(plan, *periods, *samples)
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *csv {
		t := report.NewTable("", traceHeader(plat.NumCores())...)
		for k := range tr.TimeS {
			row := []string{fmt.Sprintf("%.6f", tr.TimeS[k])}
			for i := 0; i < plat.NumCores(); i++ {
				row = append(row, fmt.Sprintf("%.4f", tr.CoreTempC[i][k]))
			}
			t.AddRow(row...)
		}
		fmt.Fprint(w, t.CSV())
		return
	}
	fmt.Fprint(w, report.ASCIIPlot(
		fmt.Sprintf("core temperatures [°C], %d periods (max %.2f °C)", *periods, tr.MaxC()),
		tr.TimeS, tr.CoreTempC, 96, 16))
}

func traceHeader(n int) []string {
	h := []string{"time_s"}
	for i := 0; i < n; i++ {
		h = append(h, fmt.Sprintf("core%d_C", i))
	}
	return h
}

func parseVolts(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad voltage %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// constantPlan wraps fixed voltages in a Plan so Trace can run it.
func constantPlan(vs []float64) *thermosc.Plan {
	const period = 20e-3
	plan := &thermosc.Plan{Method: "const", PeriodS: period, Feasible: true, M: 1}
	for _, v := range vs {
		plan.Cores = append(plan.Cores, []thermosc.Slice{{Seconds: period, Voltage: v}})
	}
	return plan
}

func fmtTemps(ts []float64) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%.2f", t)
	}
	return "[" + strings.Join(parts, " ") + "] °C"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermosc-sim:", err)
	os.Exit(1)
}
