// Command thermosc-bench runs the evaluation-engine benchmark suite and
// emits a machine-readable report (BENCH_ao.json) for the CI regression
// gate.
//
// Usage:
//
//	thermosc-bench [-out BENCH_ao.json] [-baseline BENCH_ao.json] \
//	               [-max-regression 2.0] [-benchtime 1s]
//
// The suite mirrors BenchmarkAOSearch and BenchmarkPeakEval in
// bench_test.go: the AO solver with the sequential reference m-search
// (workers=1) and the worker-pool fan-out (workers=GOMAXPROCS), plus the
// three stable-status peak evaluators (classic, engine-cached, composed),
// plus the degraded path: an AO solve whose context deadline is half the
// median full-solve time, walked through the same truncate-or-floor
// chain the serving layer uses. Its ns/op is bounded by the budget, so
// the entry gates the cost of SERVING under starvation, not the search.
//
// With -baseline the report is compared entry-by-entry against a previous
// run on THREE dimensions: any benchmark whose ns/op, allocs/op, or
// bytes/op exceeds its regression limit (-max-regression, default 2.0;
// -max-alloc-regression and -max-bytes-regression, default 1.5) times the
// baseline fails the gate and the process exits 1. Time is noisy across
// runners, so it gets the loose 2× limit; allocation counts and bytes are
// deterministic properties of the code, so they get the tight 1.5× limit
// that catches an accidentally reintroduced per-candidate allocation long
// before it costs 2× wall clock. Baseline entries missing from the
// current run (or vice versa) are reported but never fail the gate, so
// the suite can grow. A missing baseline file bootstraps the gate: the
// current report is written there and the run exits 0, so a fresh
// checkout's first CI run seeds the baseline instead of failing.
// Baselines written by the v1 schema are accepted (they carry the same
// per-entry fields); the report written back is always v2.
//
// -min-par-speedup gates the measured ao_search seq/par parallel speedup
// — but only when the run itself has GOMAXPROCS > 1; a single-CPU runner
// cannot exhibit a speedup and records gomaxprocs=1 in the report so the
// blind spot is visible instead of silently waved through.
//
// -compare-out writes a before/after markdown table (baseline vs current,
// all three dimensions) for CI to upload as a workflow artifact.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Schema identifies the report layout; bump on incompatible changes.
// v2 added the gomaxprocs field and the alloc/bytes gate dimensions; v1
// baselines are still accepted by the gate (same per-entry fields).
const (
	Schema   = "thermosc-bench/v2"
	SchemaV1 = "thermosc-bench/v1"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// CrossoverEntry is one point of the dense-vs-sparse comparison: the
// same platform built and evaluated on both algebra backends. Build is
// where the backends diverge asymptotically (O(dim³) eigendecomposition
// vs O(nnz) sparse Cholesky); eval is the warmed per-evaluation cost the
// solvers pay afterwards.
type CrossoverEntry struct {
	Name          string  `json:"name"`
	Dim           int     `json:"dim"` // thermal node count
	DenseBuildNs  float64 `json:"dense_build_ns"`
	SparseBuildNs float64 `json:"sparse_build_ns"`
	DenseEvalNs   float64 `json:"dense_eval_ns"`
	SparseEvalNs  float64 `json:"sparse_eval_ns"`
}

// Report is the full machine-readable output.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the scheduler width the parallel benchmarks actually
	// ran at — the number that decides whether the ao_search speedup is
	// meaningful. A report with gomaxprocs=1 (the historic CI blind spot)
	// cannot see parallel regressions, and the speedup floor is waived.
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks []Entry            `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
	// Crossover is the informational dense-vs-sparse peak-evaluation sweep
	// (not gated: it exists to show WHERE the backends cross, and the
	// answer may legitimately move with the hardware).
	Crossover []CrossoverEntry `json:"crossover,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_ao.json", "report output path ('-' for stdout only)")
		basePth  = flag.String("baseline", "", "baseline report to gate against (empty = no gate)")
		maxReg   = flag.Float64("max-regression", 2.0, "fail if ns/op exceeds this multiple of the baseline")
		maxAlloc = flag.Float64("max-alloc-regression", 1.5, "fail if allocs/op exceeds this multiple of the baseline")
		maxBytes = flag.Float64("max-bytes-regression", 1.5, "fail if bytes/op exceeds this multiple of the baseline")
		minPar   = flag.Float64("min-par-speedup", 0, "fail if the ao_search seq/par speedup falls below this (0 = no floor; waived when GOMAXPROCS is 1)")
		cmpOut   = flag.String("compare-out", "", "write a baseline-vs-current markdown comparison table here")
	)
	flag.Parse()

	rep, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks, %d CPUs)\n", *out, len(rep.Benchmarks), rep.CPUs)
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %14.0f ns/op  %8d B/op  %6d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	for k, v := range rep.Speedups {
		fmt.Printf("  speedup %-16s %.2fx\n", k, v)
	}
	for _, c := range rep.Crossover {
		fmt.Printf("  crossover %-12s dim %4d  build %12.0f / %12.0f ns  eval %10.0f / %10.0f ns (dense/sparse)\n",
			c.Name, c.Dim, c.DenseBuildNs, c.SparseBuildNs, c.DenseEvalNs, c.SparseEvalNs)
	}

	if *minPar > 0 {
		if rep.GOMAXPROCS <= 1 {
			fmt.Printf("min-par-speedup %.2fx waived: GOMAXPROCS=%d cannot exhibit a parallel speedup\n",
				*minPar, rep.GOMAXPROCS)
		} else if sp := rep.Speedups["ao_search"]; sp < *minPar {
			fmt.Fprintf(os.Stderr, "thermosc-bench: FAIL: ao_search parallel speedup %.2fx below the %.2fx floor (GOMAXPROCS=%d)\n",
				sp, *minPar, rep.GOMAXPROCS)
			os.Exit(1)
		} else {
			fmt.Printf("ao_search parallel speedup %.2fx meets the %.2fx floor\n", sp, *minPar)
		}
	}

	if *basePth != "" {
		lim := limits{ns: *maxReg, allocs: *maxAlloc, bytes: *maxBytes}
		bootstrapped, err := gate(rep, *basePth, lim, *cmpOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thermosc-bench: FAIL: %v\n", err)
			os.Exit(1)
		}
		if bootstrapped {
			fmt.Printf("no baseline at %s: wrote the current report as the new baseline\n", *basePth)
		} else {
			fmt.Printf("gate passed: no benchmark regressed beyond %.1fx ns, %.1fx allocs, %.1fx bytes vs %s\n",
				*maxReg, *maxAlloc, *maxBytes, *basePth)
		}
	} else if *cmpOut != "" {
		if err := writeCompare(*cmpOut, nil, rep); err != nil {
			fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// run executes the suite. Benchmark bodies intentionally mirror
// bench_test.go so `go test -bench` and CI measure the same code paths;
// testing.Benchmark grows b.N until each measurement covers ~1 s.
func run() (*Report, error) {
	md, err := thermal.Default(3, 3)
	if err != nil {
		return nil, err
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		return nil, err
	}
	aoProblem := func(workers int) solver.Problem {
		return solver.Problem{
			Model: md, Levels: ls, TmaxC: 55,
			Overhead: power.DefaultOverhead(), Workers: workers,
		}
	}
	specs := make([]schedule.TwoModeSpec, md.NumCores())
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.3 + 0.05*float64(i%8),
		}
	}
	sched, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		return nil, err
	}
	cache, err := sim.NewPeriodCache(md, sched.Period())
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(md)
	if _, _, err := engine.StepUpPeak(sched); err != nil {
		return nil, err
	}

	// The 256-core sparse-backend workload: the largest catalog platform
	// (stacked + heterogeneous), the scale the serving layer now accepts.
	bigGen := floorplan.BigLittleStacked(8, 8, 4, 0.5, 4)
	bigMd, err := thermal.BuildGen(bigGen, power.DefaultModel())
	if err != nil {
		return nil, err
	}
	if !bigMd.SparsePath() {
		return nil, fmt.Errorf("%s unexpectedly on the dense backend", bigGen.Name)
	}
	bigLs, err := power.PaperLevels(3)
	if err != nil {
		return nil, err
	}
	bigSpecs := make([]schedule.TwoModeSpec, bigMd.NumCores())
	for i := range bigSpecs {
		bigSpecs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.3 + 0.05*float64(i%8),
		}
	}
	bigSched, err := schedule.TwoMode(20e-3, bigSpecs)
	if err != nil {
		return nil, err
	}
	bigEngine := sim.NewEngine(bigMd)
	if _, _, err := bigEngine.StepUpPeak(bigSched); err != nil {
		return nil, err
	}
	bigProblem := func() solver.Problem {
		return solver.Problem{
			Model: bigMd, Levels: bigLs, TmaxC: 70,
			Overhead: power.DefaultOverhead(), Workers: runtime.GOMAXPROCS(0),
		}
	}

	// Budget for the degraded-path benchmark: half the median full AO
	// solve time on THIS machine, so the deadline lands mid-search on
	// fast and slow hardware alike.
	times := make([]time.Duration, 5)
	for i := range times {
		start := time.Now()
		if _, err := solver.AO(aoProblem(1)); err != nil {
			return nil, err
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	halfBudget := times[len(times)/2] / 2
	if halfBudget <= 0 {
		halfBudget = time.Millisecond
	}

	// The serving-path batch workload: one op is a 16-request burst on a
	// single platform, zipf-skewed over four thresholds (8/4/2/2) — the
	// shape production bursts take (a few hot thresholds on a hot
	// platform). serve_batch pushes the burst through the request
	// coalescer (duplicate thresholds collapse onto one solve; distinct
	// ones lease the shared engine leader-first); serve_batch_unbatched
	// is the naive serving path the batcher replaces — every request runs
	// its own solve on its own engine.
	burstTmax := []float64{55, 58, 61, 64}
	var burstKeys []int
	for ki, reps := range []int{8, 4, 2, 2} {
		for r := 0; r < reps; r++ {
			burstKeys = append(burstKeys, ki)
		}
	}

	suite := []struct {
		name string
		body func(b *testing.B)
	}{
		{"ao_search_seq", func(b *testing.B) {
			p := aoProblem(1)
			for i := 0; i < b.N; i++ {
				if _, err := solver.AO(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ao_search_par", func(b *testing.B) {
			p := aoProblem(runtime.GOMAXPROCS(0))
			for i := 0; i < b.N; i++ {
				if _, err := solver.AO(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ao_anytime_halfbudget", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := aoProblem(1)
				ctx, cancel := context.WithTimeout(context.Background(), halfBudget)
				p.Ctx = ctx
				res, err := solver.AO(p)
				switch {
				case err == nil && res.Schedule != nil:
					// Complete or tagged best-so-far: either is a valid
					// outcome of the anytime contract.
				case err != nil && errors.Is(err, solver.ErrDeadline):
					// Deadline before any incumbent: the chain's floor.
					if _, err := solver.SafeFloor(p); err != nil {
						cancel()
						b.Fatal(err)
					}
				default:
					cancel()
					b.Fatalf("anytime solve broke its contract: res=%+v err=%v", res, err)
				}
				cancel()
			}
		}},
		{"peak_eval_classic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := sim.NewStableCached(md, sched, cache)
				if err != nil {
					b.Fatal(err)
				}
				st.PeakEndOfPeriod()
			}
		}},
		{"peak_eval_engine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.StepUpPeak(sched); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"peak_eval_composed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.StepUpPeakComposed(sched); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"peak_eval_sparse_256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bigEngine.StepUpPeak(bigSched); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"serve_batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bat := solver.NewBatcher(solver.BatchConfig{Window: 2 * time.Millisecond, MaxBatch: len(burstKeys)})
				eng := sim.NewEngine(md)
				errs := make(chan error, len(burstKeys))
				var wg sync.WaitGroup
				for _, ki := range burstKeys {
					wg.Add(1)
					go func(ki int) {
						defer wg.Done()
						_, _, err := bat.Do(context.Background(), "mesh-3x3", fmt.Sprintf("tmax-%g", burstTmax[ki]), func() (any, error) {
							p := aoProblem(1)
							p.TmaxC = burstTmax[ki]
							p.Engine = eng
							return solver.AO(p)
						})
						if err != nil {
							errs <- err
						}
					}(ki)
				}
				wg.Wait()
				select {
				case err := <-errs:
					b.Fatal(err)
				default:
				}
			}
		}},
		{"serve_batch_unbatched", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, ki := range burstKeys {
					p := aoProblem(1)
					p.TmaxC = burstTmax[ki]
					if _, err := solver.AO(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"ao_search_256", func(b *testing.B) {
			p := bigProblem()
			for i := 0; i < b.N; i++ {
				res, err := solver.AO(p)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible || res.Degraded != solver.DegradedNone {
					b.Fatalf("256-core AO lost feasibility: %+v", res)
				}
			}
		}},
	}

	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	byName := make(map[string]Entry, len(suite))
	for _, bm := range suite {
		body := bm.body
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b)
		})
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark %s failed (zero iterations)", bm.name)
		}
		e := Entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		byName[e.Name] = e
	}

	cross, err := crossoverSweep()
	if err != nil {
		return nil, err
	}
	rep.Crossover = cross

	rep.Speedups = map[string]float64{}
	if s, p := byName["ao_search_seq"], byName["ao_search_par"]; p.NsPerOp > 0 {
		rep.Speedups["ao_search"] = s.NsPerOp / p.NsPerOp
	}
	if c, e := byName["peak_eval_classic"], byName["peak_eval_engine"]; e.NsPerOp > 0 {
		rep.Speedups["peak_eval_engine"] = c.NsPerOp / e.NsPerOp
	}
	if c, co := byName["peak_eval_classic"], byName["peak_eval_composed"]; co.NsPerOp > 0 {
		rep.Speedups["peak_eval_composed"] = c.NsPerOp / co.NsPerOp
	}
	if u, bt := byName["serve_batch_unbatched"], byName["serve_batch"]; bt.NsPerOp > 0 {
		rep.Speedups["serve_batch"] = u.NsPerOp / bt.NsPerOp
	}
	return rep, nil
}

// crossoverSweep times one warmed stable-peak evaluation on the SAME
// mesh through both algebra backends across the sizes that bracket
// thermal.SparseCrossoverDim, so the -compare-out table shows where the
// sparse path actually overtakes the dense one on this machine.
func crossoverSweep() ([]CrossoverEntry, error) {
	var out []CrossoverEntry
	for _, rows := range []int{4, 6, 8, 10, 12} {
		g := floorplan.Mesh(rows, rows)
		var build, eval [2]float64
		var dim int
		for k, alg := range []thermal.Algebra{thermal.AlgebraDense, thermal.AlgebraSparse} {
			// Build cost: the backend's one-time factorization (Jacobi
			// eigendecomposition + SPD inverse densely; sparse Cholesky +
			// power-iteration τ on the sparse path).
			buildIters := 3
			if rows >= 10 {
				buildIters = 1 // dense builds are seconds here; one is enough
			}
			start := time.Now()
			var md *thermal.Model
			var err error
			for i := 0; i < buildIters; i++ {
				md, err = thermal.BuildGen(g, power.DefaultModel(), thermal.WithAlgebra(alg))
				if err != nil {
					return nil, fmt.Errorf("crossover %s %s: %w", g.Name, alg, err)
				}
			}
			build[k] = float64(time.Since(start).Nanoseconds()) / float64(buildIters)
			dim = md.NumNodes()

			specs := make([]schedule.TwoModeSpec, md.NumCores())
			for i := range specs {
				specs[i] = schedule.TwoModeSpec{
					Low:       power.NewMode(0.6),
					High:      power.NewMode(1.3),
					HighRatio: 0.3 + 0.05*float64(i%8),
				}
			}
			sched, err := schedule.TwoMode(20e-3, specs)
			if err != nil {
				return nil, err
			}
			eng := sim.NewEngine(md)
			if _, _, err := eng.StepUpPeak(sched); err != nil {
				return nil, fmt.Errorf("crossover %s %s: %w", g.Name, alg, err)
			}
			const evalIters = 10
			start = time.Now()
			for i := 0; i < evalIters; i++ {
				if _, _, err := eng.StepUpPeak(sched); err != nil {
					return nil, err
				}
			}
			eval[k] = float64(time.Since(start).Nanoseconds()) / evalIters
		}
		out = append(out, CrossoverEntry{
			Name: g.Name, Dim: dim,
			DenseBuildNs: build[0], SparseBuildNs: build[1],
			DenseEvalNs: eval[0], SparseEvalNs: eval[1],
		})
	}
	return out, nil
}

// limits are the per-dimension regression multipliers of the gate.
type limits struct {
	ns, allocs, bytes float64
}

// gate compares cur against the baseline report at baselinePath on all
// three dimensions (time, allocation count, allocated bytes). A missing
// baseline is not a failure: the current report is written there as the
// new baseline and gate returns bootstrapped = true, so a fresh
// checkout's first CI run seeds the gate instead of breaking it. When
// cmpOut is non-empty the baseline-vs-current markdown table is written
// there regardless of the verdict, so a failing CI run still uploads the
// numbers that explain it.
func gate(cur *Report, baselinePath string, lim limits, cmpOut string) (bootstrapped bool, err error) {
	data, err := os.ReadFile(baselinePath)
	if errors.Is(err, os.ErrNotExist) {
		b, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return false, err
		}
		if err := os.WriteFile(baselinePath, append(b, '\n'), 0o644); err != nil {
			return false, fmt.Errorf("bootstrapping baseline: %w", err)
		}
		if cmpOut != "" {
			if err := writeCompare(cmpOut, nil, cur); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Schema != Schema && base.Schema != SchemaV1 {
		return false, fmt.Errorf("baseline schema %q, want %q (or legacy %q)", base.Schema, Schema, SchemaV1)
	}
	if cmpOut != "" {
		if err := writeCompare(cmpOut, &base, cur); err != nil {
			return false, err
		}
	}
	baseBy := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	var failures []string
	check := func(name, dim string, cur, base, limit float64) {
		if base <= 0 {
			return // nothing to ratio against (e.g. a zero-alloc baseline)
		}
		ratio := cur / base
		fmt.Printf("  gate %-24s %-6s %6.2fx of baseline (%.0f vs %.0f)\n", name, dim, ratio, cur, base)
		if ratio > limit {
			failures = append(failures,
				fmt.Sprintf("%s %s regressed %.2fx (limit %.1fx)", name, dim, ratio, limit))
		}
	}
	for _, e := range cur.Benchmarks {
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("  (no baseline for %s — skipping gate)\n", e.Name)
			continue
		}
		check(e.Name, "ns", e.NsPerOp, b.NsPerOp, lim.ns)
		check(e.Name, "allocs", float64(e.AllocsPerOp), float64(b.AllocsPerOp), lim.allocs)
		check(e.Name, "bytes", float64(e.BytesPerOp), float64(b.BytesPerOp), lim.bytes)
	}
	if len(failures) > 0 {
		return false, fmt.Errorf("%d regression(s): %v", len(failures), failures)
	}
	return false, nil
}

// writeCompare renders the baseline-vs-current comparison as a markdown
// table (the CI workflow artifact). A nil baseline renders the current
// run alone.
func writeCompare(path string, base, cur *Report) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# thermosc bench comparison\n\n")
	fmt.Fprintf(&sb, "current: %s %s/%s, %d CPUs, GOMAXPROCS=%d, %s\n\n",
		cur.GoVersion, cur.GOOS, cur.GOARCH, cur.CPUs, cur.GOMAXPROCS, cur.Schema)
	if base == nil {
		fmt.Fprintf(&sb, "_no baseline: first run_\n\n")
		fmt.Fprintf(&sb, "| benchmark | ns/op | allocs/op | B/op |\n|---|---:|---:|---:|\n")
		for _, e := range cur.Benchmarks {
			fmt.Fprintf(&sb, "| %s | %.0f | %d | %d |\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		}
	} else {
		fmt.Fprintf(&sb, "baseline: %s, %d CPUs, GOMAXPROCS=%d, %s\n\n",
			base.GoVersion, base.CPUs, base.GOMAXPROCS, base.Schema)
		fmt.Fprintf(&sb, "| benchmark | ns/op before | ns/op after | Δ | allocs before | allocs after | B before | B after |\n")
		fmt.Fprintf(&sb, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
		baseBy := make(map[string]Entry, len(base.Benchmarks))
		for _, e := range base.Benchmarks {
			baseBy[e.Name] = e
		}
		for _, e := range cur.Benchmarks {
			b, ok := baseBy[e.Name]
			if !ok {
				fmt.Fprintf(&sb, "| %s | — | %.0f | new | — | %d | — | %d |\n",
					e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
				continue
			}
			delta := "—"
			if b.NsPerOp > 0 {
				delta = fmt.Sprintf("%.2fx", e.NsPerOp/b.NsPerOp)
			}
			fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %s | %d | %d | %d | %d |\n",
				e.Name, b.NsPerOp, e.NsPerOp, delta, b.AllocsPerOp, e.AllocsPerOp, b.BytesPerOp, e.BytesPerOp)
		}
	}
	if len(cur.Speedups) > 0 {
		names := make([]string, 0, len(cur.Speedups))
		for k := range cur.Speedups {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "\n")
		for _, k := range names {
			fmt.Fprintf(&sb, "- speedup %s: %.2fx\n", k, cur.Speedups[k])
		}
	}
	if len(cur.Crossover) > 0 {
		fmt.Fprintf(&sb, "\n## dense vs sparse crossover\n\n")
		fmt.Fprintf(&sb, "| platform | dim | dense build | sparse build | dense eval | sparse eval |\n|---|---:|---:|---:|---:|---:|\n")
		crossAt := ""
		for _, c := range cur.Crossover {
			fmt.Fprintf(&sb, "| %s | %d | %.0f | %.0f | %.0f | %.0f |\n",
				c.Name, c.Dim, c.DenseBuildNs, c.SparseBuildNs, c.DenseEvalNs, c.SparseEvalNs)
			if crossAt == "" && c.SparseBuildNs <= c.DenseBuildNs {
				crossAt = fmt.Sprintf("dim %d (%s)", c.Dim, c.Name)
			}
		}
		fmt.Fprintf(&sb, "\n(all ns; build is the one-time backend factorization, eval one warmed stable-peak evaluation)\n")
		if crossAt != "" {
			fmt.Fprintf(&sb, "\nsparse build overtakes dense at %s; the automatic crossover switches at dim %d\n",
				crossAt, thermal.SparseCrossoverDim)
		} else {
			fmt.Fprintf(&sb, "\nsparse build never overtook dense in this sweep; the automatic crossover switches at dim %d\n",
				thermal.SparseCrossoverDim)
		}
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
