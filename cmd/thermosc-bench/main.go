// Command thermosc-bench runs the evaluation-engine benchmark suite and
// emits a machine-readable report (BENCH_ao.json) for the CI regression
// gate.
//
// Usage:
//
//	thermosc-bench [-out BENCH_ao.json] [-baseline BENCH_ao.json] \
//	               [-max-regression 2.0] [-benchtime 1s]
//
// The suite mirrors BenchmarkAOSearch and BenchmarkPeakEval in
// bench_test.go: the AO solver with the sequential reference m-search
// (workers=1) and the worker-pool fan-out (workers=GOMAXPROCS), plus the
// three stable-status peak evaluators (classic, engine-cached, composed),
// plus the degraded path: an AO solve whose context deadline is half the
// median full-solve time, walked through the same truncate-or-floor
// chain the serving layer uses. Its ns/op is bounded by the budget, so
// the entry gates the cost of SERVING under starvation, not the search.
//
// With -baseline the report is compared entry-by-entry against a previous
// run: any benchmark whose ns/op exceeds max-regression × its baseline
// ns/op fails the gate and the process exits 1. The 2× default absorbs
// cross-machine and CI-runner noise while still catching real
// regressions. Baseline entries missing from the current run (or vice
// versa) are reported but never fail the gate, so the suite can grow. A
// missing baseline file bootstraps the gate: the current report is
// written there and the run exits 0, so a fresh checkout's first CI run
// seeds the baseline instead of failing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// Schema identifies the report layout; bump on incompatible changes.
const Schema = "thermosc-bench/v1"

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full machine-readable output.
type Report struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPUs       int                `json:"cpus"`
	Benchmarks []Entry            `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_ao.json", "report output path ('-' for stdout only)")
		basePth = flag.String("baseline", "", "baseline report to gate against (empty = no gate)")
		maxReg  = flag.Float64("max-regression", 2.0, "fail if ns/op exceeds this multiple of the baseline")
	)
	flag.Parse()

	rep, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "thermosc-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks, %d CPUs)\n", *out, len(rep.Benchmarks), rep.CPUs)
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %14.0f ns/op  %8d B/op  %6d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	for k, v := range rep.Speedups {
		fmt.Printf("  speedup %-16s %.2fx\n", k, v)
	}

	if *basePth != "" {
		bootstrapped, err := gate(rep, *basePth, *maxReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thermosc-bench: FAIL: %v\n", err)
			os.Exit(1)
		}
		if bootstrapped {
			fmt.Printf("no baseline at %s: wrote the current report as the new baseline\n", *basePth)
		} else {
			fmt.Printf("gate passed: no benchmark regressed more than %.1fx vs %s\n", *maxReg, *basePth)
		}
	}
}

// run executes the suite. Benchmark bodies intentionally mirror
// bench_test.go so `go test -bench` and CI measure the same code paths;
// testing.Benchmark grows b.N until each measurement covers ~1 s.
func run() (*Report, error) {
	md, err := thermal.Default(3, 3)
	if err != nil {
		return nil, err
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		return nil, err
	}
	aoProblem := func(workers int) solver.Problem {
		return solver.Problem{
			Model: md, Levels: ls, TmaxC: 55,
			Overhead: power.DefaultOverhead(), Workers: workers,
		}
	}
	specs := make([]schedule.TwoModeSpec, md.NumCores())
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.3 + 0.05*float64(i%8),
		}
	}
	sched, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		return nil, err
	}
	cache, err := sim.NewPeriodCache(md, sched.Period())
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(md)
	if _, _, err := engine.StepUpPeak(sched); err != nil {
		return nil, err
	}

	// Budget for the degraded-path benchmark: half the median full AO
	// solve time on THIS machine, so the deadline lands mid-search on
	// fast and slow hardware alike.
	times := make([]time.Duration, 5)
	for i := range times {
		start := time.Now()
		if _, err := solver.AO(aoProblem(1)); err != nil {
			return nil, err
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	halfBudget := times[len(times)/2] / 2
	if halfBudget <= 0 {
		halfBudget = time.Millisecond
	}

	suite := []struct {
		name string
		body func(b *testing.B)
	}{
		{"ao_search_seq", func(b *testing.B) {
			p := aoProblem(1)
			for i := 0; i < b.N; i++ {
				if _, err := solver.AO(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ao_search_par", func(b *testing.B) {
			p := aoProblem(runtime.GOMAXPROCS(0))
			for i := 0; i < b.N; i++ {
				if _, err := solver.AO(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ao_anytime_halfbudget", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := aoProblem(1)
				ctx, cancel := context.WithTimeout(context.Background(), halfBudget)
				p.Ctx = ctx
				res, err := solver.AO(p)
				switch {
				case err == nil && res.Schedule != nil:
					// Complete or tagged best-so-far: either is a valid
					// outcome of the anytime contract.
				case err != nil && errors.Is(err, solver.ErrDeadline):
					// Deadline before any incumbent: the chain's floor.
					if _, err := solver.SafeFloor(p); err != nil {
						cancel()
						b.Fatal(err)
					}
				default:
					cancel()
					b.Fatalf("anytime solve broke its contract: res=%+v err=%v", res, err)
				}
				cancel()
			}
		}},
		{"peak_eval_classic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := sim.NewStableCached(md, sched, cache)
				if err != nil {
					b.Fatal(err)
				}
				st.PeakEndOfPeriod()
			}
		}},
		{"peak_eval_engine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.StepUpPeak(sched); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"peak_eval_composed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.StepUpPeakComposed(sched); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	byName := make(map[string]Entry, len(suite))
	for _, bm := range suite {
		body := bm.body
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b)
		})
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark %s failed (zero iterations)", bm.name)
		}
		e := Entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		byName[e.Name] = e
	}

	rep.Speedups = map[string]float64{}
	if s, p := byName["ao_search_seq"], byName["ao_search_par"]; p.NsPerOp > 0 {
		rep.Speedups["ao_search"] = s.NsPerOp / p.NsPerOp
	}
	if c, e := byName["peak_eval_classic"], byName["peak_eval_engine"]; e.NsPerOp > 0 {
		rep.Speedups["peak_eval_engine"] = c.NsPerOp / e.NsPerOp
	}
	if c, co := byName["peak_eval_classic"], byName["peak_eval_composed"]; co.NsPerOp > 0 {
		rep.Speedups["peak_eval_composed"] = c.NsPerOp / co.NsPerOp
	}
	return rep, nil
}

// gate compares cur against the baseline report at baselinePath. A
// missing baseline is not a failure: the current report is written there
// as the new baseline and gate returns bootstrapped = true, so a fresh
// checkout's first CI run seeds the gate instead of breaking it.
func gate(cur *Report, baselinePath string, maxRegression float64) (bootstrapped bool, err error) {
	data, err := os.ReadFile(baselinePath)
	if errors.Is(err, os.ErrNotExist) {
		b, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return false, err
		}
		if err := os.WriteFile(baselinePath, append(b, '\n'), 0o644); err != nil {
			return false, fmt.Errorf("bootstrapping baseline: %w", err)
		}
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Schema != Schema {
		return false, fmt.Errorf("baseline schema %q, want %q", base.Schema, Schema)
	}
	baseBy := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	var failures []string
	for _, e := range cur.Benchmarks {
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("  (no baseline for %s — skipping gate)\n", e.Name)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		fmt.Printf("  gate %-24s %.2fx of baseline (%0.f vs %.0f ns/op)\n",
			e.Name, ratio, e.NsPerOp, b.NsPerOp)
		if ratio > maxRegression {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.2fx (limit %.1fx)", e.Name, ratio, maxRegression))
		}
	}
	if len(failures) > 0 {
		return false, fmt.Errorf("%d regression(s): %v", len(failures), failures)
	}
	return false, nil
}
