package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func syntheticReport(ns float64) *Report {
	return &Report{
		Schema: Schema,
		Benchmarks: []Entry{
			{Name: "ao_search_seq", N: 10, NsPerOp: 4 * ns},
			{Name: "peak_eval_engine", N: 100, NsPerOp: ns},
		},
	}
}

// The first gated run has no baseline: it must write one and pass, and
// the written baseline must gate the identical report cleanly.
func TestGateBootstrapsMissingBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ao.json")
	cur := syntheticReport(1000)

	bootstrapped, err := gate(cur, path, 2.0)
	if err != nil {
		t.Fatalf("missing baseline failed the gate: %v", err)
	}
	if !bootstrapped {
		t.Fatal("missing baseline did not bootstrap")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline written: %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("written baseline is not valid JSON: %v", err)
	}
	if base.Schema != Schema || len(base.Benchmarks) != len(cur.Benchmarks) {
		t.Fatalf("written baseline does not match the report: %+v", base)
	}

	bootstrapped, err = gate(cur, path, 2.0)
	if err != nil {
		t.Fatalf("identical report failed its own baseline: %v", err)
	}
	if bootstrapped {
		t.Fatal("existing baseline re-bootstrapped")
	}
}

// Regressions beyond the limit must fail; within the limit must pass;
// new/missing entries never fail the gate.
func TestGateRegressionDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ao.json")
	if _, err := gate(syntheticReport(1000), path, 2.0); err != nil {
		t.Fatal(err)
	}

	if _, err := gate(syntheticReport(1900), path, 2.0); err != nil {
		t.Fatalf("1.9x inside a 2x limit failed: %v", err)
	}
	err := gate2(t, syntheticReport(2500), path, 2.0)
	if err == nil {
		t.Fatal("2.5x regression passed a 2x gate")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate error does not name the regression: %v", err)
	}

	grown := syntheticReport(1000)
	grown.Benchmarks = append(grown.Benchmarks, Entry{Name: "brand_new", N: 1, NsPerOp: 1})
	if _, err := gate(grown, path, 2.0); err != nil {
		t.Fatalf("new benchmark without a baseline entry failed the gate: %v", err)
	}

	// A corrupt baseline is a hard error, not a bootstrap.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(1000), bad, 2.0); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
	wrongSchema := filepath.Join(t.TempDir(), "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(1000), wrongSchema, 2.0); err == nil {
		t.Fatal("wrong-schema baseline accepted")
	}
}

func gate2(t *testing.T, cur *Report, path string, maxReg float64) error {
	t.Helper()
	_, err := gate(cur, path, maxReg)
	return err
}
