package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func syntheticReport(ns float64) *Report {
	return &Report{
		Schema:     Schema,
		GOMAXPROCS: 4,
		Benchmarks: []Entry{
			{Name: "ao_search_seq", N: 10, NsPerOp: 4 * ns, AllocsPerOp: 600, BytesPerOp: 200_000},
			{Name: "peak_eval_engine", N: 100, NsPerOp: ns, AllocsPerOp: 4, BytesPerOp: 512},
		},
	}
}

func defaultLimits() limits { return limits{ns: 2.0, allocs: 1.5, bytes: 1.5} }

// The first gated run has no baseline: it must write one and pass, and
// the written baseline must gate the identical report cleanly.
func TestGateBootstrapsMissingBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ao.json")
	cur := syntheticReport(1000)

	bootstrapped, err := gate(cur, path, defaultLimits(), "")
	if err != nil {
		t.Fatalf("missing baseline failed the gate: %v", err)
	}
	if !bootstrapped {
		t.Fatal("missing baseline did not bootstrap")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline written: %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("written baseline is not valid JSON: %v", err)
	}
	if base.Schema != Schema || len(base.Benchmarks) != len(cur.Benchmarks) {
		t.Fatalf("written baseline does not match the report: %+v", base)
	}

	bootstrapped, err = gate(cur, path, defaultLimits(), "")
	if err != nil {
		t.Fatalf("identical report failed its own baseline: %v", err)
	}
	if bootstrapped {
		t.Fatal("existing baseline re-bootstrapped")
	}
}

// Regressions beyond the limit must fail on each dimension independently;
// within the limit must pass; new/missing entries never fail the gate.
func TestGateRegressionDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ao.json")
	if _, err := gate(syntheticReport(1000), path, defaultLimits(), ""); err != nil {
		t.Fatal(err)
	}

	if _, err := gate(syntheticReport(1900), path, defaultLimits(), ""); err != nil {
		t.Fatalf("1.9x inside a 2x limit failed: %v", err)
	}
	if _, err := gate(syntheticReport(2500), path, defaultLimits(), ""); err == nil {
		t.Fatal("2.5x ns regression passed a 2x gate")
	} else if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate error does not name the regression: %v", err)
	}

	// Allocation-count regression at identical wall time must fail.
	worse := syntheticReport(1000)
	worse.Benchmarks[0].AllocsPerOp = 1000 // 1.67x of 600
	if _, err := gate(worse, path, defaultLimits(), ""); err == nil {
		t.Fatal("1.67x allocs/op regression passed a 1.5x gate")
	} else if !strings.Contains(err.Error(), "allocs") {
		t.Fatalf("alloc regression not named: %v", err)
	}

	// Bytes regression at identical wall time and alloc count must fail.
	fat := syntheticReport(1000)
	fat.Benchmarks[1].BytesPerOp = 4096 // 8x of 512
	if _, err := gate(fat, path, defaultLimits(), ""); err == nil {
		t.Fatal("8x bytes/op regression passed a 1.5x gate")
	} else if !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("bytes regression not named: %v", err)
	}

	grown := syntheticReport(1000)
	grown.Benchmarks = append(grown.Benchmarks, Entry{Name: "brand_new", N: 1, NsPerOp: 1})
	if _, err := gate(grown, path, defaultLimits(), ""); err != nil {
		t.Fatalf("new benchmark without a baseline entry failed the gate: %v", err)
	}

	// A corrupt baseline is a hard error, not a bootstrap.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(1000), bad, defaultLimits(), ""); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
	wrongSchema := filepath.Join(t.TempDir(), "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(1000), wrongSchema, defaultLimits(), ""); err == nil {
		t.Fatal("wrong-schema baseline accepted")
	}
}

// A v1-schema baseline (pre-gomaxprocs, same per-entry fields) must still
// gate a v2 run — the bootstrap that seeded CI predates the schema bump.
func TestGateAcceptsV1Baseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ao.json")
	v1 := syntheticReport(1000)
	v1.Schema = SchemaV1
	b, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(1100), path, defaultLimits(), ""); err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if _, err := gate(syntheticReport(9000), path, defaultLimits(), ""); err == nil {
		t.Fatal("regression against a v1 baseline not caught")
	}
}

// The comparison artifact must be written (with both runs' numbers) even
// when the gate fails — a failing CI run still needs the explanation.
func TestCompareTableWrittenOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_ao.json")
	cmp := filepath.Join(dir, "compare.md")
	if _, err := gate(syntheticReport(1000), path, defaultLimits(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := gate(syntheticReport(5000), path, defaultLimits(), cmp); err == nil {
		t.Fatal("5x regression passed")
	}
	data, err := os.ReadFile(cmp)
	if err != nil {
		t.Fatalf("comparison table not written on gate failure: %v", err)
	}
	s := string(data)
	for _, want := range []string{"ao_search_seq", "| benchmark |", "4000", "20000", "GOMAXPROCS=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, s)
		}
	}
}
