// Command thermosc-opt maximizes throughput for one platform under a peak
// temperature constraint and prints the resulting schedule.
//
// Usage:
//
//	thermosc-opt [-rows R] [-cols C] [-tmax T] [-levels N|full]
//	             [-method LNS|EXS|AO|PCO|Ideal|all] [-period S] [-tau S]
//
// Example:
//
//	thermosc-opt -rows 3 -cols 2 -tmax 55 -levels 2 -method all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"thermosc"
)

func main() {
	var (
		rows    = flag.Int("rows", 3, "floorplan rows")
		cols    = flag.Int("cols", 1, "floorplan columns")
		tmax    = flag.Float64("tmax", 65, "peak temperature threshold [°C]")
		levels  = flag.String("levels", "2", "voltage levels: 2..5 (paper Table IV) or 'full' (15 levels)")
		method  = flag.String("method", "all", "LNS, EXS, AO, PCO, Ideal, or 'all'")
		period  = flag.Float64("period", 20e-3, "base schedule period [s]")
		tau     = flag.Float64("tau", 5e-6, "DVFS transition stall [s]")
		verbose = flag.Bool("v", false, "print the per-core schedule slices")
		asJSON  = flag.Bool("json", false, "emit the plan(s) as JSON (one object per line)")
		table   = flag.String("table", "", "comma-separated Tmax ladder: emit a governor table as JSON instead of single plans")
	)
	flag.Parse()

	opts := []thermosc.Option{
		thermosc.WithBasePeriod(*period),
		thermosc.WithTransitionOverhead(*tau),
	}
	if *levels != "full" {
		n, err := strconv.Atoi(*levels)
		if err != nil {
			fatal(fmt.Errorf("bad -levels %q: %w", *levels, err))
		}
		opts = append(opts, thermosc.WithPaperLevels(n))
	}
	plat, err := thermosc.New(*rows, *cols, opts...)
	if err != nil {
		fatal(err)
	}

	if *table != "" {
		var ladder []float64
		for _, part := range strings.Split(*table, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -table entry %q: %w", part, err))
			}
			ladder = append(ladder, v)
		}
		m := thermosc.Method(*method)
		if *method == "all" {
			m = thermosc.MethodAO
		}
		tbl, err := plat.BuildGovernorTable(m, ladder)
		if err != nil {
			fatal(err)
		}
		data, err := json.Marshal(tbl)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	methods := []thermosc.Method{thermosc.Method(*method)}
	if *method == "all" {
		methods = thermosc.Methods()
	}
	if !*asJSON {
		fmt.Printf("platform %dx%d (%d cores), Tmax %.1f °C, levels %s, t_p %.3gs, tau %.3gs\n\n",
			*rows, *cols, plat.NumCores(), *tmax, *levels, *period, *tau)
		fmt.Printf("%-6s  %-10s  %-9s  %-8s  %-3s  %s\n", "method", "throughput", "peak [°C]", "feasible", "m", "elapsed")
	}
	for _, m := range methods {
		plan, err := plat.Maximize(m, *tmax)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			data, err := json.Marshal(plan)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
			continue
		}
		fmt.Printf("%-6s  %-10.4f  %-9.3f  %-8v  %-3d  %v\n",
			plan.Method, plan.Throughput, plan.PeakC, plan.Feasible, plan.M, plan.Elapsed.Round(100_000))
		if *verbose && len(plan.Cores) > 0 {
			for i, slices := range plan.Cores {
				fmt.Printf("        core %d:", i)
				for _, sl := range slices {
					fmt.Printf(" %.2fV×%.4gms", sl.Voltage, sl.Seconds*1e3)
				}
				fmt.Println()
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermosc-opt:", err)
	os.Exit(1)
}
