package thermosc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestServeConcurrentRequests hammers one Server with 100 concurrent
// mixed maximize/simulate requests (run under -race in CI). Every
// maximize response for a given method — whether it was the cold solve,
// a singleflight joiner, or a cache hit — must carry byte-identical plan
// bytes, and those bytes must equal a cold solve performed by a fresh
// Server with an empty cache.
func TestServeConcurrentRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	methods := []string{"LNS", "EXS", "AO", "PCO"}

	// Pre-solve one plan on a throwaway server so simulate requests can
	// run from the first goroutine, concurrently with the cold maximizes.
	_, tsPre := newTestServer(t)
	status, b := postJSON(t, tsPre.URL+"/v1/maximize", maximizeBody("LNS"))
	if status != 200 {
		t.Fatalf("pre-solve: status %d: %s", status, b)
	}
	simBody := fmt.Sprintf(`{"platform":{"rows":2,"cols":1,"paper_levels":3},"plan":%s,"periods":2,"samples_per_period":8}`,
		decodeMaximize(t, b).Plan)

	const clients = 100
	plans := make([][]byte, clients) // per-client plan bytes, nil for simulate clients
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%5 == 4 { // every fifth client simulates instead of solving
				status, b := postJSON(t, ts.URL+"/v1/simulate", simBody)
				if status != 200 {
					t.Errorf("client %d simulate: status %d: %s", i, status, b)
				}
				return
			}
			method := methods[i%4]
			status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody(method))
			if status != 200 {
				t.Errorf("client %d %s: status %d: %s", i, method, status, b)
				return
			}
			plans[i] = decodeMaximize(t, b).Plan
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Cold reference solves on a fresh server (empty cache, no sharing).
	_, tsCold := newTestServer(t)
	for mi, method := range methods {
		status, b := postJSON(t, tsCold.URL+"/v1/maximize", maximizeBody(method))
		if status != 200 {
			t.Fatalf("cold %s: status %d: %s", method, status, b)
		}
		cold := decodeMaximize(t, b)
		if cold.Cached {
			t.Fatalf("cold %s reported cached=true", method)
		}
		for i := 0; i < clients; i++ {
			if i%5 == 4 || i%4 != mi {
				continue
			}
			if !bytes.Equal(plans[i], cold.Plan) {
				t.Fatalf("%s: client %d plan differs from cold solve:\n%s\n%s", method, i, plans[i], cold.Plan)
			}
		}
	}

	// Sanity on the counters: every maximize was a hit, a shared join,
	// or a miss that performed a solve; the cache ends holding all four.
	st := srv.Stats()
	if st.Cache.Size != len(methods) {
		t.Fatalf("plan cache holds %d entries, want %d: %+v", st.Cache.Size, len(methods), st.Cache)
	}
	if st.Cache.Hits+st.Cache.Misses != 80 { // 80 maximize clients
		t.Fatalf("hits+misses = %d, want 80: %+v", st.Cache.Hits+st.Cache.Misses, st.Cache)
	}
}

// TestServeSingleflightShares drives many concurrent identical requests
// at a slow method and asserts most of them joined the leader's flight
// (shared=true) or hit the cache, i.e. the solve ran far fewer times
// than it was asked for.
func TestServeSingleflightShares(t *testing.T) {
	_, ts := newTestServer(t)
	body := maximizeBody("PCO")
	const clients = 16
	responses := make([]MaximizeResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, b := postJSON(t, ts.URL+"/v1/maximize", body)
			if status != 200 {
				t.Errorf("client %d: status %d: %s", i, status, b)
				return
			}
			responses[i] = decodeMaximize(t, b)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var solved int
	for i, r := range responses {
		if !bytes.Equal(r.Plan, responses[0].Plan) {
			t.Fatalf("client %d plan differs from client 0", i)
		}
		if !r.Cached && !r.Shared {
			solved++
		}
	}
	if solved == 0 {
		t.Fatal("someone must have performed the cold solve")
	}
	// All identical concurrent requests collapse onto cache hits or
	// shared flights; a few leaders can race past the cache check, but
	// nothing near one solve per client.
	if solved > clients/2 {
		t.Fatalf("%d/%d clients performed a full solve; singleflight is not deduplicating", solved, clients)
	}
}
