//go:build !race

package thermosc

const raceDetectorEnabled = false
