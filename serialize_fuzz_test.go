package thermosc

import (
	"encoding/json"
	"testing"
)

// FuzzPlanUnmarshal drives the plan decoder with arbitrary bytes: it must
// never panic, and every accepted plan must satisfy the structural
// invariants and survive a re-encode round trip.
func FuzzPlanUnmarshal(f *testing.F) {
	f.Add([]byte(`{"version":1,"method":"AO","period_s":0.02,"feasible":true,"cores":[[{"Seconds":0.02,"Voltage":0.6}]]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"period_s":-1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"period_s":1e308,"cores":[[{"Seconds":1e308,"Voltage":1e308}]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var plan Plan
		if err := json.Unmarshal(data, &plan); err != nil {
			return // rejection is fine
		}
		if err := plan.validate(); err != nil {
			t.Fatalf("accepted an invalid plan: %v", err)
		}
		re, err := json.Marshal(&plan)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Plan
		if err := json.Unmarshal(re, &back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.PeriodS != plan.PeriodS || len(back.Cores) != len(plan.Cores) {
			t.Fatal("round trip changed the plan")
		}
	})
}
