package thermosc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"thermosc/internal/solver"
)

// Server is the concurrent planning service: an http.Handler exposing
// the solvers over JSON.
//
//	POST /v1/maximize  platform spec + Tmax + method → serialized plan
//	POST /v1/simulate  platform spec + plan → transient trace + verified peak
//	GET  /healthz      liveness + drain state
//	GET  /v1/stats     cache/latency/in-flight counters (also /metrics)
//
// Maximize requests are canonicalized (servereq.go), deduplicated by a
// singleflight layer, and answered from an LRU plan cache. Plans are
// deterministic functions of the canonical request — the solvers are
// bit-reproducible at any worker count and served plans carry
// solver_elapsed_s = 0 — so a cache or singleflight hit is byte-identical
// to a cold solve. Platforms are cached too: all in-flight solves against
// the same platform share one sim.Engine operator pool.
type Server struct {
	cfg       ServerConfig
	mux       *http.ServeMux
	stats     *serverStats
	plans     *lruCache[cachedPlan]
	platforms *lruCache[*Platform]
	flights   *flightGroup
	admit     *admission
	brk       *breaker
	// batch, when non-nil, coalesces concurrent full solves by platform
	// key on a shared engine (servebatch.go). Nil = batching disabled.
	batch *solver.Batcher
	// cluster is the fleet layer (servecluster.go): consistent-hash
	// routing, the replicated plan store, forwarding, and gossip. Nil in
	// single-process mode.
	cluster *serveCluster

	mu     sync.Mutex
	cond   *sync.Cond
	active int
	closed bool

	// Sampled post-solve auditing (ServerConfig.AuditEvery): solves
	// counts cold solves for the every-Nth sampling; auditWG tracks the
	// in-flight async audit goroutines so Shutdown (and tests) can wait
	// for them. refreshWG does the same for stale-while-revalidate
	// cache refreshes.
	solves    atomic.Uint64
	auditWG   sync.WaitGroup
	refreshWG sync.WaitGroup

	// solveHook, when set, runs inside the flight leader just before the
	// solve. Tests use it to inject latency and panics (chaos testing);
	// nil in production.
	solveHook func(Method)
}

// ServerConfig tunes a Server; zero values select the defaults.
type ServerConfig struct {
	// PlanCacheSize caps the LRU plan cache (default 256 plans).
	PlanCacheSize int
	// PlatformCacheSize caps the platform/engine cache (default 32).
	PlatformCacheSize int
	// MaxCores rejects larger platform requests with 400 (default 256) —
	// solve cost grows steeply with the core count, so the cap is the
	// service's overload valve. The default matches the largest platform
	// the sparse thermal backend solves inside the serve deadline budget
	// (see docs/SPARSE.md).
	MaxCores int
	// DefaultTimeout bounds solves whose request carries no timeout_s
	// (default 30 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_s (default 2 min).
	MaxTimeout time.Duration
	// Workers is the per-solve parallel fan-out width passed to the
	// solvers (0 = GOMAXPROCS). Plans are identical at any width.
	Workers int
	// MaxTraceSamples caps periods × samples_per_period in /v1/simulate
	// (default 131072).
	MaxTraceSamples int
	// AuditEvery, when > 0, audits every Nth cold solve asynchronously
	// with the independent verification oracle (Platform.Audit): the
	// request is answered immediately and a background goroutine
	// re-derives the plan's peak and invariants from first principles,
	// feeding the verify_pass/verify_fail counters in /v1/stats and
	// /metrics. 0 (the default) disables auditing. The audit verdicts
	// also feed the circuit breaker (Breaker* below).
	AuditEvery int

	// SolveConcurrency caps solves running at once (default GOMAXPROCS);
	// SolveQueue caps solves waiting for a slot (default 256). A request
	// is shed with 429 + Retry-After when the queue is full or the
	// estimated wait for a slot exceeds its own deadline.
	SolveConcurrency int
	SolveQueue       int

	// PlanTTL ages complete cached plans: a hit older than PlanTTL is
	// served immediately with stale:true while a background refresh
	// re-solves it (stale-while-revalidate). 0 (the default) means
	// complete plans never go stale — they are bit-reproducible, so age
	// cannot make them wrong. Degraded plans are ALWAYS stale.
	PlanTTL time.Duration

	// BatchWindow, when > 0, enables request-coalescing batching of cold
	// solves: concurrent /v1/maximize requests for the SAME platform
	// (same RC model, any tmax/method) are grouped inside a BatchWindow
	// wait, lease one shared sim.Engine, and dispatch leader-first so
	// the Propagator caches are built once per group (servebatch.go).
	// 0 (the default) disables batching — the serve path is then
	// byte-identical to previous releases.
	BatchWindow time.Duration
	// BatchMaxSize seals a batch group early once it holds this many
	// members (default 16 when batching is enabled).
	BatchMaxSize int

	// Circuit breaker over the async audit verdicts: when at least
	// BreakerMinSamples of the last BreakerWindow verdicts exist and the
	// failure rate reaches BreakerThreshold, the server answers every
	// solve with the oracle-checked constant safe floor until
	// BreakerCooloff elapses; then one full solve probes and its audit
	// verdict closes or re-opens the breaker. Defaults: window 20,
	// threshold 0.5, min samples 8, cooloff 30s. Inert unless
	// AuditEvery > 0 (no verdicts, no trips).
	BreakerWindow     int
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooloff    time.Duration

	// Cluster, when non-nil, joins this server to a replica fleet:
	// canonical request keys are placed on a consistent-hash ring, plans
	// replicate through a shared store with gossip anti-entropy, and
	// requests for keys owned elsewhere are proxied to their owner (see
	// docs/CLUSTER.md). Nil means single-process serving, byte-identical
	// to previous releases. An invalid cluster config (no Self) panics at
	// construction — a daemon must fail fast on a bad fleet topology, not
	// serve with silently-disabled replication.
	Cluster *ClusterConfig
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.PlatformCacheSize == 0 {
		c.PlatformCacheSize = 32
	}
	if c.MaxCores == 0 {
		c.MaxCores = 256
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxTraceSamples == 0 {
		c.MaxTraceSamples = 1 << 17
	}
	if c.SolveConcurrency == 0 {
		c.SolveConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.SolveQueue == 0 {
		c.SolveQueue = 256
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 20
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerMinSamples == 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerCooloff == 0 {
		c.BreakerCooloff = 30 * time.Second
	}
	return c
}

func (c ServerConfig) limits() serveLimits {
	return serveLimits{maxCores: c.MaxCores, maxVoltages: 64, maxTraceSamples: c.MaxTraceSamples}
}

// NewServer builds a planning service with the given configuration.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		stats:   newServerStats(),
		flights: newFlightGroup(),
	}
	s.plans = newLRUCache[cachedPlan](s.cfg.PlanCacheSize)
	s.platforms = newLRUCache[*Platform](s.cfg.PlatformCacheSize)
	s.admit = newAdmission(s.cfg.SolveConcurrency, s.cfg.SolveQueue)
	s.brk = newBreaker(s.cfg.BreakerWindow, s.cfg.BreakerThreshold, s.cfg.BreakerMinSamples, s.cfg.BreakerCooloff)
	s.batch = newBatcher(s.cfg)
	s.cond = sync.NewCond(&s.mu)
	if cfg.Cluster != nil {
		c, err := newServeCluster(*cfg.Cluster)
		if err != nil {
			panic(fmt.Sprintf("thermosc.NewServer: %v", err))
		}
		s.cluster = c
		c.startLoops()
	}
	s.mux.HandleFunc("POST /v1/maximize", s.handleMaximize)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterStatus)
	s.mux.HandleFunc("POST /v1/cluster/sync", s.handleClusterSync)
	s.mux.HandleFunc("GET /v1/cluster/snapshot", s.handleClusterSnapshot)
	s.mux.HandleFunc("POST /v1/cluster/restore", s.handleClusterRestore)
	s.mux.HandleFunc("POST /v1/cluster/drain", s.handleClusterDrain)
	return s
}

// ServeHTTP implements http.Handler. It is the per-request panic
// boundary: a panicking handler (a solver bug, or injected chaos)
// answers 500 and increments panics_recovered instead of killing the
// daemon. The handler's own deferred accounting (leave, in-flight
// gauge, latency observation) runs during the unwind, so the drain and
// stats stay consistent across panics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panicRecovered()
			writeJSON(w, http.StatusInternalServerError, errorResponse{
				Error: fmt.Sprintf("internal panic: %v", rec),
				Code:  "panic",
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() ServerStats {
	st := s.stats.snapshot(s.plans.Len(), s.cfg.PlanCacheSize)
	st.Resilience.QueueDepth = s.admit.depth()
	st.Resilience.BreakerState, st.Resilience.BreakerTrips = s.brk.status()
	st.Resilience.Draining = s.drainState()
	if s.cluster != nil {
		st.Cluster = s.cluster.statsSnapshot()
	}
	st.Batch = s.batchStatsSnapshot()
	return st
}

// Shutdown stops admitting new solve requests (they get 503) and blocks
// until every in-flight request has drained or ctx expires. Safe to call
// more than once. It does not close listeners — pair it with
// http.Server.Shutdown, which drains connections while this drains the
// solver work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.cluster != nil {
		s.cluster.stopLoops() // no new gossip or probes while draining
	}
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.active > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.auditWG.Wait()   // async post-solve audits drain with the requests
		s.refreshWG.Wait() // so do stale-plan refreshes
		close(done)
	}()
	select {
	case <-done:
		if s.cluster != nil {
			return s.cluster.closeStore() // drained: safe to release the store's log
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active++
	return true
}

func (s *Server) leave() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// maxBodyBytes bounds request bodies; a maximize/simulate request is a
// few KB, so 1 MiB is generous headroom for big plans.
const maxBodyBytes = 1 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, badRequestf("reading body: %v", err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error class: bad_request, infeasible,
	// shed, deadline, degraded, panic, internal.
	Code string `json:"code,omitempty"`
	// RetryAfterS mirrors the Retry-After header on shed (429) replies.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// writeError maps an error to its HTTP status and machine-readable
// code: requestErrors keep their 4xx (code bad_request); admission
// sheds become 429 with Retry-After; typed ErrInfeasible refusals 422
// (the platform cannot meet the threshold — retrying is futile);
// deadline/cancellation aborts 504; a flight whose leader panicked 500
// with code panic; everything else 500 internal.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *requestError
	var shed *shedError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, reqErr.status, errorResponse{Error: reqErr.msg, Code: "bad_request"})
	case errors.As(err, &shed):
		secs := int(math.Ceil(shed.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Code: "shed", RetryAfterS: secs})
	case errors.Is(err, ErrInfeasible):
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error(), Code: "infeasible"})
	case errors.Is(err, ErrDegraded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error(), Code: "degraded"})
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: fmt.Sprintf("solve aborted: %v", err), Code: "deadline"})
	case errors.Is(err, errFlightPanic):
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Code: "panic"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Code: "internal"})
	}
}

// timeoutFor resolves a request's solve deadline from its timeout_s.
func (s *Server) timeoutFor(timeoutS float64) time.Duration {
	if timeoutS <= 0 {
		return s.cfg.DefaultTimeout
	}
	// Cap in float space: a huge timeout_s (say 1e300) would overflow the
	// int64 nanosecond conversion into a negative Duration and, before
	// this guard, fall through as a 1ns deadline.
	if timeoutS >= s.cfg.MaxTimeout.Seconds() {
		return s.cfg.MaxTimeout
	}
	d := time.Duration(timeoutS * float64(time.Second))
	if d <= 0 { // sub-nanosecond timeouts round to an immediate deadline
		d = time.Nanosecond
	}
	return d
}

// platformFor returns the shared Platform for a canonical spec, building
// it at most once per cache residency. Sharing the Platform is what
// shares its sim.Engine across all in-flight solves on that platform.
func (s *Server) platformFor(platKey string, spec PlatformSpec) (*Platform, error) {
	return s.platforms.GetOrCreate(platKey, spec.platform)
}

func (s *Server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.leave()
	start := time.Now()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	failed := true
	defer func() { s.stats.observe("maximize", time.Since(start), failed) }()

	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	req, planKey, platKey, err := parseMaximizeRequest(body, s.cfg.limits())
	if err != nil {
		writeError(w, err)
		return
	}

	// Layer 1: the process-local LRU.
	if ent, ok := s.plans.Get(planKey); ok {
		failed = false
		s.serveCachedPlan(w, start, planKey, platKey, req, ent, serveSourceLocal)
		return
	}
	// Layer 2: the replicated plan store (cluster mode). A hit for a key
	// another replica owns means the bytes arrived via gossip or a
	// snapshot restore — a peer fetch in effect.
	if ent, src, ok := s.clusterStoreGet(planKey); ok {
		failed = false
		s.serveCachedPlan(w, start, planKey, platKey, req, ent, src)
		return
	}
	s.stats.cacheMiss()

	// Layer 3: the forwarding proxy — keys owned by another replica are
	// answered by their owner so the fleet solves each key once. The
	// owner comes from the HEALTHY ring view: suspect/dead owners are
	// skipped up front (their keys fall to the next healthy successor)
	// instead of being rediscovered via a timed-out forward on every
	// request. A request that already hopped once is always served here
	// (never re-forwarded), and an unreachable owner still falls through
	// to the local solve: the ring re-routes instead of failing the
	// request.
	if s.cluster != nil && r.Header.Get(clusterHopHeader) == "" {
		if owner := s.cluster.healthyOwner(planKey); owner != s.cluster.cfg.Self {
			if s.forwardMaximize(w, r, body, owner, planKey, start, &failed) {
				return
			}
		}
	}

	// Layer 4: solve locally.
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutS))
	defer cancel()
	ent, shared, err := s.flights.Do(ctx, planKey, func() (cachedPlan, error) {
		return s.solvePlan(ctx, planKey, platKey, req, false)
	})
	if shared {
		s.stats.sfShared()
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if ent.degraded {
		s.stats.degradedServed()
	}
	failed = false
	s.clusterServed(serveSourceLocal)
	writeJSON(w, http.StatusOK, MaximizeResponse{
		Plan:           ent.bytes,
		Shared:         shared,
		Degraded:       ent.degraded,
		DegradedReason: ent.reason,
		Key:            keyDigest(planKey),
		Source:         s.sourceLabel(serveSourceLocal),
		ElapsedS:       time.Since(start).Seconds(),
	})
}

// serveCachedPlan answers a maximize request from a cache layer (the
// local LRU or the replicated store), running the shared
// stale-while-revalidate and accounting machinery. The caller has
// already cleared its failed flag.
func (s *Server) serveCachedPlan(w http.ResponseWriter, start time.Time, planKey, platKey string, req MaximizeRequest, ent cachedPlan, source string) {
	stale := s.isStale(ent)
	if stale {
		s.stats.staleServed()
		s.refreshAsync(planKey, platKey, req)
	}
	if ent.degraded {
		s.stats.degradedServed()
	}
	s.stats.cacheHit()
	s.clusterServed(source)
	writeJSON(w, http.StatusOK, MaximizeResponse{
		Plan:           ent.bytes,
		Cached:         true,
		Stale:          stale,
		Degraded:       ent.degraded,
		DegradedReason: ent.reason,
		Key:            keyDigest(planKey),
		Source:         s.sourceLabel(source),
		ElapsedS:       time.Since(start).Seconds(),
	})
}

// solvePlan is the flight-leader body: admission control, breaker
// routing, the resilient solve, canonicalization, caching, and sampled
// audit dispatch. requireComplete is set by background refreshes — a
// degraded result is then discarded with ErrDegraded instead of
// re-caching another stale entry.
func (s *Server) solvePlan(ctx context.Context, planKey, platKey string, req MaximizeRequest, requireComplete bool) (cachedPlan, error) {
	plat, err := s.platformFor(platKey, req.Platform)
	if err != nil {
		return cachedPlan{}, badRequestf("building platform: %v", err)
	}
	if err := s.admit.acquire(ctx); err != nil {
		s.stats.shed()
		return cachedPlan{}, err
	}
	solveStart := time.Now()
	defer func() { s.admit.release(time.Since(solveStart)) }()
	if s.solveHook != nil {
		s.solveHook(req.Method)
	}
	var plan *Plan
	if s.brk.allowFull() {
		plan, err = s.solveFull(ctx, planKey, platKey, plat, req)
	} else {
		// Breaker open: the audit failure rate says full solves cannot be
		// trusted right now, so only the oracle-checked constant floor is
		// served until the cooloff elapses.
		plan, err = plat.SafeFloorPlan(req.TmaxC)
		if err == nil {
			plan.DegradedReason = "breaker-open"
		}
	}
	if err != nil {
		return cachedPlan{}, err
	}
	if requireComplete && plan.Degraded {
		return cachedPlan{}, fmt.Errorf("%w: refresh produced a %s plan", ErrDegraded, plan.DegradedReason)
	}
	// Canonicalize the served plan: zero the wall-clock timing so the
	// bytes are a pure function of the request (cache hits and golden
	// replays compare byte-identical).
	plan.Elapsed = 0
	b, err := json.Marshal(plan)
	if err != nil {
		return cachedPlan{}, err
	}
	ent := cachedPlan{bytes: b, degraded: plan.Degraded, reason: plan.DegradedReason, born: time.Now()}
	s.plans.Put(planKey, ent)
	s.clusterStorePut(planKey, ent) // complete plans replicate fleet-wide
	// Only complete plans enter the audit sampling: degraded plans were
	// already oracle-checked synchronously by the fallback chain.
	if !plan.Degraded && s.cfg.AuditEvery > 0 && s.solves.Add(1)%uint64(s.cfg.AuditEvery) == 0 {
		s.auditWG.Add(1)
		go s.runAudit(plat, plan, req.TmaxC)
	}
	return ent, nil
}

// isStale reports whether a cache hit should be served
// stale-while-revalidate. Degraded plans are always stale (a complete
// solve may well succeed now that the original deadline pressure is
// gone); complete plans only age out when PlanTTL is set.
func (s *Server) isStale(ent cachedPlan) bool {
	if ent.degraded {
		return true
	}
	return s.cfg.PlanTTL > 0 && time.Since(ent.born) > s.cfg.PlanTTL
}

// refreshAsync starts a background re-solve of a stale cache entry
// under the server's own deadline (not the triggering request's, which
// is about to return the stale bytes). The refresh joins the normal
// singleflight, so concurrent stale hits share one re-solve, and it
// demands a complete plan — a refresh that would only produce another
// degraded entry is dropped.
func (s *Server) refreshAsync(planKey, platKey string, req MaximizeRequest) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.refreshWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.refreshWG.Done()
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panicRecovered()
				s.stats.refreshDone(false)
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultTimeout)
		defer cancel()
		ent, _, err := s.flights.Do(ctx, planKey, func() (cachedPlan, error) {
			return s.solvePlan(ctx, planKey, platKey, req, true)
		})
		s.stats.refreshDone(err == nil && !ent.degraded)
	}()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.leave()
	start := time.Now()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	failed := true
	defer func() { s.stats.observe("simulate", time.Since(start), failed) }()

	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, plan, periods, samples, platKey, err := parseSimulateRequest(body, s.cfg.limits())
	if err != nil {
		writeError(w, err)
		return
	}
	plat, err := s.platformFor(platKey, spec)
	if err != nil {
		writeError(w, badRequestf("building platform: %v", err))
		return
	}
	trace, err := plat.Trace(plan, periods, samples)
	if err != nil {
		writeError(w, badRequestf("simulating plan: %v", err))
		return
	}
	peak, err := plat.VerifyPeakC(plan, 32)
	if err != nil {
		writeError(w, badRequestf("verifying plan: %v", err))
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, SimulateResponse{
		TimeS:         trace.TimeS,
		CoreTempC:     trace.CoreTempC,
		MaxC:          trace.MaxC(),
		VerifiedPeakC: peak,
		ElapsedS:      time.Since(start).Seconds(),
	})
}

// runAudit re-checks one served plan with the independent oracle and
// records the verdict. It runs on its own goroutine — a failed audit
// cannot delay or fail the request that produced the plan; it surfaces
// through the verify_fail counter (and last_failure detail) in /v1/stats
// and /metrics, where monitoring alerts on it.
// Audit verdicts also feed the circuit breaker: a failure streak trips
// the service to fallback-only planning (see ServerConfig.Breaker*).
func (s *Server) runAudit(plat *Platform, plan *Plan, tmaxC float64) {
	defer s.auditWG.Done()
	defer func() {
		if rec := recover(); rec != nil { // the oracle must never kill the daemon
			s.stats.panicRecovered()
			s.stats.auditResult(false, fmt.Sprintf("audit panicked: %v", rec))
			s.brk.record(false)
		}
	}()
	rep, err := plat.Audit(plan, tmaxC)
	ok := false
	switch {
	case err != nil:
		s.stats.auditResult(false, fmt.Sprintf("audit error: %v", err))
	case !rep.OK:
		s.stats.auditResult(false, rep.String())
	default:
		s.stats.auditResult(true, "")
		ok = true
	}
	s.brk.record(ok)
}

// waitAudits blocks until every in-flight async audit has finished
// (tests use it to observe the counters deterministically);
// waitRefreshes does the same for stale-plan refreshes.
func (s *Server) waitAudits() { s.auditWG.Wait() }

func (s *Server) waitRefreshes() { s.refreshWG.Wait() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Shutdown drain and cluster drain both report here: peer failure
	// detectors read /healthz, so flipping it is what makes the rest of
	// the fleet route around this replica.
	draining := s.drainState()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"uptime_s": time.Since(s.stats.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
