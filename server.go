package thermosc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the concurrent planning service: an http.Handler exposing
// the solvers over JSON.
//
//	POST /v1/maximize  platform spec + Tmax + method → serialized plan
//	POST /v1/simulate  platform spec + plan → transient trace + verified peak
//	GET  /healthz      liveness + drain state
//	GET  /v1/stats     cache/latency/in-flight counters (also /metrics)
//
// Maximize requests are canonicalized (servereq.go), deduplicated by a
// singleflight layer, and answered from an LRU plan cache. Plans are
// deterministic functions of the canonical request — the solvers are
// bit-reproducible at any worker count and served plans carry
// solver_elapsed_s = 0 — so a cache or singleflight hit is byte-identical
// to a cold solve. Platforms are cached too: all in-flight solves against
// the same platform share one sim.Engine operator pool.
type Server struct {
	cfg       ServerConfig
	mux       *http.ServeMux
	stats     *serverStats
	plans     *lruCache[[]byte]
	platforms *lruCache[*Platform]
	flights   *flightGroup

	mu     sync.Mutex
	cond   *sync.Cond
	active int
	closed bool

	// Sampled post-solve auditing (ServerConfig.AuditEvery): solves
	// counts cold solves for the every-Nth sampling; auditWG tracks the
	// in-flight async audit goroutines so Shutdown (and tests) can wait
	// for them.
	solves  atomic.Uint64
	auditWG sync.WaitGroup
}

// ServerConfig tunes a Server; zero values select the defaults.
type ServerConfig struct {
	// PlanCacheSize caps the LRU plan cache (default 256 plans).
	PlanCacheSize int
	// PlatformCacheSize caps the platform/engine cache (default 32).
	PlatformCacheSize int
	// MaxCores rejects larger platform requests with 400 (default 16) —
	// solve cost grows steeply with the core count, so the cap is the
	// service's overload valve.
	MaxCores int
	// DefaultTimeout bounds solves whose request carries no timeout_s
	// (default 30 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_s (default 2 min).
	MaxTimeout time.Duration
	// Workers is the per-solve parallel fan-out width passed to the
	// solvers (0 = GOMAXPROCS). Plans are identical at any width.
	Workers int
	// MaxTraceSamples caps periods × samples_per_period in /v1/simulate
	// (default 131072).
	MaxTraceSamples int
	// AuditEvery, when > 0, audits every Nth cold solve asynchronously
	// with the independent verification oracle (Platform.Audit): the
	// request is answered immediately and a background goroutine
	// re-derives the plan's peak and invariants from first principles,
	// feeding the verify_pass/verify_fail counters in /v1/stats and
	// /metrics. 0 (the default) disables auditing.
	AuditEvery int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.PlatformCacheSize == 0 {
		c.PlatformCacheSize = 32
	}
	if c.MaxCores == 0 {
		c.MaxCores = 16
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxTraceSamples == 0 {
		c.MaxTraceSamples = 1 << 17
	}
	return c
}

func (c ServerConfig) limits() serveLimits {
	return serveLimits{maxCores: c.MaxCores, maxVoltages: 64, maxTraceSamples: c.MaxTraceSamples}
}

// NewServer builds a planning service with the given configuration.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		stats:   newServerStats(),
		flights: newFlightGroup(),
	}
	s.plans = newLRUCache[[]byte](s.cfg.PlanCacheSize)
	s.platforms = newLRUCache[*Platform](s.cfg.PlatformCacheSize)
	s.cond = sync.NewCond(&s.mu)
	s.mux.HandleFunc("POST /v1/maximize", s.handleMaximize)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() ServerStats {
	return s.stats.snapshot(s.plans.Len(), s.cfg.PlanCacheSize)
}

// Shutdown stops admitting new solve requests (they get 503) and blocks
// until every in-flight request has drained or ctx expires. Safe to call
// more than once. It does not close listeners — pair it with
// http.Server.Shutdown, which drains connections while this drains the
// solver work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.active > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.auditWG.Wait() // async post-solve audits drain with the requests
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active++
	return true
}

func (s *Server) leave() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// maxBodyBytes bounds request bodies; a maximize/simulate request is a
// few KB, so 1 MiB is generous headroom for big plans.
const maxBodyBytes = 1 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, badRequestf("reading body: %v", err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError maps an error to its HTTP status: requestErrors keep their
// 4xx, timeouts and cancellations become 504, everything else 500.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *requestError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, reqErr.status, errorResponse{Error: reqErr.msg})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: fmt.Sprintf("solve aborted: %v", err)})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// timeoutFor resolves a request's solve deadline from its timeout_s.
func (s *Server) timeoutFor(timeoutS float64) time.Duration {
	if timeoutS <= 0 {
		return s.cfg.DefaultTimeout
	}
	// Cap in float space: a huge timeout_s (say 1e300) would overflow the
	// int64 nanosecond conversion into a negative Duration and, before
	// this guard, fall through as a 1ns deadline.
	if timeoutS >= s.cfg.MaxTimeout.Seconds() {
		return s.cfg.MaxTimeout
	}
	d := time.Duration(timeoutS * float64(time.Second))
	if d <= 0 { // sub-nanosecond timeouts round to an immediate deadline
		d = time.Nanosecond
	}
	return d
}

// platformFor returns the shared Platform for a canonical spec, building
// it at most once per cache residency. Sharing the Platform is what
// shares its sim.Engine across all in-flight solves on that platform.
func (s *Server) platformFor(platKey string, spec PlatformSpec) (*Platform, error) {
	return s.platforms.GetOrCreate(platKey, spec.platform)
}

func (s *Server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.leave()
	start := time.Now()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	failed := true
	defer func() { s.stats.observe("maximize", time.Since(start), failed) }()

	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	req, planKey, platKey, err := parseMaximizeRequest(body, s.cfg.limits())
	if err != nil {
		writeError(w, err)
		return
	}

	if cached, ok := s.plans.Get(planKey); ok {
		s.stats.cacheHit()
		failed = false
		writeJSON(w, http.StatusOK, MaximizeResponse{
			Plan:     cached,
			Cached:   true,
			Key:      keyDigest(planKey),
			ElapsedS: time.Since(start).Seconds(),
		})
		return
	}
	s.stats.cacheMiss()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutS))
	defer cancel()
	planBytes, shared, err := s.flights.Do(ctx, planKey, func() ([]byte, error) {
		plat, err := s.platformFor(platKey, req.Platform)
		if err != nil {
			return nil, badRequestf("building platform: %v", err)
		}
		plan, err := plat.MaximizeContext(ctx, req.Method, req.TmaxC, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
		// Canonicalize the served plan: zero the wall-clock timing so the
		// bytes are a pure function of the request (cache hits and golden
		// replays compare byte-identical).
		plan.Elapsed = 0
		b, err := json.Marshal(plan)
		if err != nil {
			return nil, err
		}
		s.plans.Put(planKey, b)
		if s.cfg.AuditEvery > 0 && s.solves.Add(1)%uint64(s.cfg.AuditEvery) == 0 {
			s.auditWG.Add(1)
			go s.runAudit(plat, plan, req.TmaxC)
		}
		return b, nil
	})
	if shared {
		s.stats.sfShared()
	}
	if err != nil {
		writeError(w, err)
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, MaximizeResponse{
		Plan:     planBytes,
		Shared:   shared,
		Key:      keyDigest(planKey),
		ElapsedS: time.Since(start).Seconds(),
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.leave()
	start := time.Now()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	failed := true
	defer func() { s.stats.observe("simulate", time.Since(start), failed) }()

	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, plan, periods, samples, platKey, err := parseSimulateRequest(body, s.cfg.limits())
	if err != nil {
		writeError(w, err)
		return
	}
	plat, err := s.platformFor(platKey, spec)
	if err != nil {
		writeError(w, badRequestf("building platform: %v", err))
		return
	}
	trace, err := plat.Trace(plan, periods, samples)
	if err != nil {
		writeError(w, badRequestf("simulating plan: %v", err))
		return
	}
	peak, err := plat.VerifyPeakC(plan, 32)
	if err != nil {
		writeError(w, badRequestf("verifying plan: %v", err))
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, SimulateResponse{
		TimeS:         trace.TimeS,
		CoreTempC:     trace.CoreTempC,
		MaxC:          trace.MaxC(),
		VerifiedPeakC: peak,
		ElapsedS:      time.Since(start).Seconds(),
	})
}

// runAudit re-checks one served plan with the independent oracle and
// records the verdict. It runs on its own goroutine — a failed audit
// cannot delay or fail the request that produced the plan; it surfaces
// through the verify_fail counter (and last_failure detail) in /v1/stats
// and /metrics, where monitoring alerts on it.
func (s *Server) runAudit(plat *Platform, plan *Plan, tmaxC float64) {
	defer s.auditWG.Done()
	rep, err := plat.Audit(plan, tmaxC)
	switch {
	case err != nil:
		s.stats.auditResult(false, fmt.Sprintf("audit error: %v", err))
	case !rep.OK:
		s.stats.auditResult(false, rep.String())
	default:
		s.stats.auditResult(true, "")
	}
}

// waitAudits blocks until every in-flight async audit has finished
// (tests use it to observe the counters deterministically).
func (s *Server) waitAudits() { s.auditWG.Wait() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"uptime_s": time.Since(s.stats.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
