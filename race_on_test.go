//go:build race

package thermosc

// raceDetectorEnabled reports whether the test binary was built with
// -race. The scale tests assert wall-clock contracts (a 2 s solve
// deadline, 30 s audit budgets) that race instrumentation slows by an
// order of magnitude; they skip under -race and run in the plain tier-1
// suite instead.
const raceDetectorEnabled = true
