package thermosc_test

// End-to-end smoke test for thermosc-serve: builds the real daemon,
// starts it on an ephemeral port, issues one maximize request per method
// and diffs the returned plan bytes against golden files. Because the
// solvers are bit-reproducible and served plans carry
// solver_elapsed_s = 0, the plan bytes are a stable function of the
// request and can be pinned exactly.
//
// The test is opt-in (it binds a TCP port and takes a few seconds):
//
//	THERMOSC_SERVE_E2E=1 go test -run TestServeE2EGolden .
//
// Regenerate the goldens after an intentional solver change with:
//
//	THERMOSC_SERVE_E2E=1 go test -run TestServeE2EGolden . -update-serve-golden

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var updateServeGolden = flag.Bool("update-serve-golden", false, "rewrite testdata/serve_golden files")

func TestServeE2EGolden(t *testing.T) {
	if os.Getenv("THERMOSC_SERVE_E2E") == "" {
		t.Skip("set THERMOSC_SERVE_E2E=1 to run the serve e2e smoke")
	}
	bin := buildCmd(t, "thermosc-serve")

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-grace", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	stopped := false
	defer func() {
		if !stopped {
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// The daemon prints "listening <addr>" once the socket is bound.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening "); ok {
				addrCh <- a
				break
			}
		}
		// Drain the rest so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-exited:
		t.Fatalf("thermosc-serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the listen address")
	}
	base := "http://" + addr

	for _, method := range []string{"LNS", "EXS", "AO", "PCO"} {
		t.Run(method, func(t *testing.T) {
			body := fmt.Sprintf(`{"platform":{"rows":3,"cols":1,"paper_levels":3},"tmax_c":65,"method":%q}`, method)
			resp, err := http.Post(base+"/v1/maximize", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			var mr struct {
				Plan json.RawMessage `json:"plan"`
			}
			if err := json.Unmarshal(raw, &mr); err != nil {
				t.Fatalf("decoding response: %v\n%s", err, raw)
			}

			golden := filepath.Join("testdata", "serve_golden", strings.ToLower(method)+".json")
			if *updateServeGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, append(bytes.Clone(mr.Plan), '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", golden, len(mr.Plan))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update-serve-golden): %v", err)
			}
			if !bytes.Equal(mr.Plan, bytes.TrimRight(want, "\n")) {
				t.Errorf("%s plan drifted from golden:\n got: %s\nwant: %s", method, mr.Plan, want)
			}
		})
	}
	if t.Failed() {
		t.FailNow()
	}

	// /healthz and /v1/stats answer over the real socket.
	for _, path := range []string{"/healthz", "/v1/stats"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	// SIGTERM drains gracefully and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		stopped = true
		if err != nil {
			t.Fatalf("thermosc-serve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("thermosc-serve did not exit within 15s of SIGTERM")
	}
}
