package thermosc

import (
	"sync"
	"sync/atomic"
	"time"
)

// serverStats aggregates the service's operational counters: per-endpoint
// request/error counts and latency histograms, plan-cache hit/miss and
// singleflight sharing counters, and the in-flight gauge. Everything is
// monotonic except the gauge; a snapshot is served as JSON by /v1/stats.
type serverStats struct {
	start    time.Time
	inFlight atomic.Int64

	mu        sync.Mutex
	hits      uint64
	misses    uint64
	shared    uint64
	endpoints map[string]*endpointStats

	// Sampled post-solve audit verdicts (ServerConfig.AuditEvery).
	auditPass        uint64
	auditFail        uint64
	lastAuditFailure string

	// Resilience counters: degraded/stale plans served, admission sheds,
	// panics recovered by the middleware, background cache refreshes.
	degraded     uint64
	stale        uint64
	sheds        uint64
	panics       uint64
	refreshes    uint64
	refreshFails uint64
}

type endpointStats struct {
	count   uint64
	errors  uint64
	latency latencyHist
}

// latencyBounds spans 1 ms (a cache hit) to 60 s (a big cold PCO solve).
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// latencyHist is a fixed-bucket latency histogram (seconds). Bounds are
// upper edges; the implicit last bucket is +Inf.
type latencyHist struct {
	counts [16]uint64 // len(latencyBounds) + 1 overflow bucket
	sumS   float64
}

func (h *latencyHist) observe(seconds float64) {
	i := 0
	for i < len(latencyBounds) && seconds > latencyBounds[i] {
		i++
	}
	h.counts[i]++
	h.sumS += seconds
}

func newServerStats() *serverStats {
	return &serverStats{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// observe records one finished request on an endpoint.
func (s *serverStats) observe(endpoint string, d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[endpoint]
	if !ok {
		ep = &endpointStats{}
		s.endpoints[endpoint] = ep
	}
	ep.count++
	if failed {
		ep.errors++
	}
	ep.latency.observe(d.Seconds())
}

// auditResult records one post-solve audit verdict; the detail of the
// most recent failure is kept for /v1/stats.
func (s *serverStats) auditResult(ok bool, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.auditPass++
		return
	}
	s.auditFail++
	s.lastAuditFailure = detail
}

func (s *serverStats) cacheHit()  { s.mu.Lock(); s.hits++; s.mu.Unlock() }
func (s *serverStats) cacheMiss() { s.mu.Lock(); s.misses++; s.mu.Unlock() }
func (s *serverStats) sfShared()  { s.mu.Lock(); s.shared++; s.mu.Unlock() }

func (s *serverStats) degradedServed() { s.mu.Lock(); s.degraded++; s.mu.Unlock() }
func (s *serverStats) staleServed()    { s.mu.Lock(); s.stale++; s.mu.Unlock() }
func (s *serverStats) shed()           { s.mu.Lock(); s.sheds++; s.mu.Unlock() }
func (s *serverStats) panicRecovered() { s.mu.Lock(); s.panics++; s.mu.Unlock() }

func (s *serverStats) refreshDone(ok bool) {
	s.mu.Lock()
	s.refreshes++
	if !ok {
		s.refreshFails++
	}
	s.mu.Unlock()
}

// ServerStats is the JSON schema of /v1/stats.
type ServerStats struct {
	UptimeS    float64                  `json:"uptime_s"`
	InFlight   int64                    `json:"in_flight"`
	Cache      CacheStats               `json:"cache"`
	Audit      AuditCounters            `json:"audit"`
	Resilience ResilienceStats          `json:"resilience"`
	Requests   map[string]EndpointStats `json:"requests"`
	// Cluster reports the fleet layer's counters (nil single-process, so
	// single-process stats stay schema-stable).
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Batch reports the request-coalescing batch scheduler's counters
	// (nil when batching is disabled; see ServerConfig.BatchWindow).
	Batch *BatchStats `json:"batch,omitempty"`
}

// ClusterStats is the per-node fleet block of /v1/stats. The request
// histograms and resilience counters above are per-process; this block
// classifies this node's successful maximize serves by source so the
// fleet's behavior is reconstructible:
//
//	served_local + served_peer_fetch + served_forwarded
//	    == this node's 200-status /v1/maximize responses
//
// (the sum invariant the regression tests pin). "local" is a local
// cache hit or solve, "peer_fetch" a replicated-store hit for a key
// another replica owns, "forwarded" a request proxied to its owner.
type ClusterStats struct {
	Self            string   `json:"self"`
	Nodes           []string `json:"nodes"`
	ServedLocal     uint64   `json:"served_local"`
	ServedPeerFetch uint64   `json:"served_peer_fetch"`
	ServedForwarded uint64   `json:"served_forwarded"`
	ForwardFailures uint64   `json:"forward_failures"`
	SyncRounds      uint64   `json:"sync_rounds"`
	SyncFailures    uint64   `json:"sync_failures"`
	EntriesSent     uint64   `json:"entries_sent"`
	EntriesReceived uint64   `json:"entries_received"`
	StoreSize       int      `json:"store_size"`
	StoreCapacity   int      `json:"store_capacity"`

	// Failure-detector view: how many peers this node currently holds
	// in each state, and the probe-loop counters feeding it.
	PeersAlive    int    `json:"peers_alive"`
	PeersSuspect  int    `json:"peers_suspect"`
	PeersDead     int    `json:"peers_dead"`
	ProbesSent    uint64 `json:"probes_sent"`
	ProbeFailures uint64 `json:"probe_failures"`

	// Hinted handoff: lifetime queued/dropped/replayed hint keys plus
	// the current backlog across all down peers.
	HintsQueued   uint64 `json:"hints_queued"`
	HintsDropped  uint64 `json:"hints_dropped"`
	HintsReplayed uint64 `json:"hints_replayed"`
	HintBacklog   int    `json:"hint_backlog"`

	// Draining mirrors POST /v1/cluster/drain (also visible on
	// /healthz).
	Draining bool `json:"draining"`
}

// ResilienceStats reports the overload/degradation machinery: how many
// degraded or stale plans were served, how many requests were shed by
// admission control, panics recovered without killing the daemon,
// background cache refreshes, and the circuit breaker's state.
type ResilienceStats struct {
	DegradedServed  uint64 `json:"degraded_served"`
	StaleServed     uint64 `json:"stale_served"`
	ShedTotal       uint64 `json:"shed_total"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	Refreshes       uint64 `json:"refreshes"`
	RefreshFails    uint64 `json:"refresh_fails"`
	QueueDepth      int64  `json:"queue_depth"`
	BreakerState    string `json:"breaker_state,omitempty"`
	BreakerTrips    uint64 `json:"breaker_trips"`
	// Draining reports shutdown or cluster drain in progress (see
	// Server.drainState; omitted while false so steady-state stats keep
	// their previous shape).
	Draining bool `json:"draining,omitempty"`
}

// AuditCounters reports the sampled post-solve verification verdicts
// (zero unless ServerConfig.AuditEvery enables auditing).
type AuditCounters struct {
	VerifyPass  uint64 `json:"verify_pass"`
	VerifyFail  uint64 `json:"verify_fail"`
	LastFailure string `json:"last_failure,omitempty"`
}

// CacheStats reports the plan cache and request-deduplication counters.
type CacheStats struct {
	Hits               uint64 `json:"hits"`
	Misses             uint64 `json:"misses"`
	SingleflightShared uint64 `json:"singleflight_shared"`
	Size               int    `json:"size"`
	Capacity           int    `json:"capacity"`
}

// EndpointStats reports one endpoint's volume and latency distribution.
type EndpointStats struct {
	Count   uint64         `json:"count"`
	Errors  uint64         `json:"errors"`
	Latency HistogramStats `json:"latency"`
}

// HistogramStats is a bucketed latency distribution; bucket counts are
// per-bucket (not cumulative), the last bucket having no upper bound.
type HistogramStats struct {
	Buckets []HistogramBucket `json:"buckets"`
	SumS    float64           `json:"sum_s"`
	Count   uint64            `json:"count"`
}

// HistogramBucket counts requests with latency in (prev bound, LeS];
// LeS = 0 marks the overflow bucket.
type HistogramBucket struct {
	LeS   float64 `json:"le_s,omitempty"`
	Count uint64  `json:"count"`
}

// snapshot renders the current counters (cacheSize/cacheCap come from
// the plan cache, which keeps its own lock).
func (s *serverStats) snapshot(cacheSize, cacheCap int) ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServerStats{
		UptimeS:  time.Since(s.start).Seconds(),
		InFlight: s.inFlight.Load(),
		Cache: CacheStats{
			Hits:               s.hits,
			Misses:             s.misses,
			SingleflightShared: s.shared,
			Size:               cacheSize,
			Capacity:           cacheCap,
		},
		Audit: AuditCounters{
			VerifyPass:  s.auditPass,
			VerifyFail:  s.auditFail,
			LastFailure: s.lastAuditFailure,
		},
		Resilience: ResilienceStats{
			DegradedServed:  s.degraded,
			StaleServed:     s.stale,
			ShedTotal:       s.sheds,
			PanicsRecovered: s.panics,
			Refreshes:       s.refreshes,
			RefreshFails:    s.refreshFails,
			// QueueDepth and Breaker* are overlaid by Server.Stats — they
			// live on the admission/breaker structs, not here.
		},
		Requests: make(map[string]EndpointStats, len(s.endpoints)),
	}
	for name, ep := range s.endpoints {
		var total uint64
		hs := HistogramStats{Buckets: make([]HistogramBucket, 0, len(ep.latency.counts)), SumS: ep.latency.sumS}
		for i, c := range ep.latency.counts {
			b := HistogramBucket{Count: c}
			if i < len(latencyBounds) {
				b.LeS = latencyBounds[i]
			}
			hs.Buckets = append(hs.Buckets, b)
			total += c
		}
		hs.Count = total
		out.Requests[name] = EndpointStats{Count: ep.count, Errors: ep.errors, Latency: hs}
	}
	return out
}
