package thermosc

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// planJSON is the stable on-disk representation of a Plan. Durations are
// seconds; temperatures absolute °C. The format is versioned so future
// revisions can migrate old files.
type planJSON struct {
	Version    int       `json:"version"`
	Method     Method    `json:"method"`
	Throughput float64   `json:"throughput"`
	PeakC      float64   `json:"peak_c"`
	Feasible   bool      `json:"feasible"`
	M          int       `json:"m"`
	PeriodS    float64   `json:"period_s"`
	Cores      [][]Slice `json:"cores,omitempty"`
	ElapsedS   float64   `json:"solver_elapsed_s"`
	// Anytime-planning fields; omitted for complete plans so the byte
	// representation of every pre-existing (non-degraded) plan — golden
	// files, cache entries — is unchanged.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

const planFormatVersion = 1

// MarshalJSON encodes the plan in the versioned interchange format.
func (plan *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Version:        planFormatVersion,
		Method:         plan.Method,
		Throughput:     plan.Throughput,
		PeakC:          plan.PeakC,
		Feasible:       plan.Feasible,
		M:              plan.M,
		PeriodS:        plan.PeriodS,
		Cores:          plan.Cores,
		ElapsedS:       plan.Elapsed.Seconds(),
		Degraded:       plan.Degraded,
		DegradedReason: plan.DegradedReason,
	})
}

// UnmarshalJSON decodes and validates a plan from the interchange format.
func (plan *Plan) UnmarshalJSON(data []byte) error {
	var pj planJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	if pj.Version != planFormatVersion {
		return fmt.Errorf("thermosc: unsupported plan format version %d", pj.Version)
	}
	out := Plan{
		Method:         pj.Method,
		Throughput:     pj.Throughput,
		PeakC:          pj.PeakC,
		Feasible:       pj.Feasible,
		M:              pj.M,
		PeriodS:        pj.PeriodS,
		Cores:          pj.Cores,
		Degraded:       pj.Degraded,
		DegradedReason: pj.DegradedReason,
	}
	out.Elapsed = secondsToDuration(pj.ElapsedS)
	if err := out.validate(); err != nil {
		return err
	}
	*plan = out
	return nil
}

// validate checks the structural invariants of a deserialized plan.
func (plan *Plan) validate() error {
	if len(plan.Cores) == 0 {
		return nil // infeasible plans legitimately carry no schedule
	}
	if plan.PeriodS <= 0 || math.IsNaN(plan.PeriodS) || math.IsInf(plan.PeriodS, 0) {
		return fmt.Errorf("thermosc: plan has invalid period %v", plan.PeriodS)
	}
	for i, slices := range plan.Cores {
		if len(slices) == 0 {
			return fmt.Errorf("thermosc: plan core %d has no slices", i)
		}
		var sum float64
		for _, sl := range slices {
			if sl.Seconds < 0 || math.IsNaN(sl.Seconds) || math.IsInf(sl.Seconds, 0) {
				return fmt.Errorf("thermosc: plan core %d has invalid slice length %v", i, sl.Seconds)
			}
			if sl.Voltage < 0 || math.IsNaN(sl.Voltage) || math.IsInf(sl.Voltage, 0) {
				return fmt.Errorf("thermosc: plan core %d has invalid voltage %v", i, sl.Voltage)
			}
			sum += sl.Seconds
		}
		if math.Abs(sum-plan.PeriodS) > 1e-9*math.Max(1, plan.PeriodS) {
			return fmt.Errorf("thermosc: plan core %d slices sum to %v, period %v", i, sum, plan.PeriodS)
		}
	}
	return nil
}

func secondsToDuration(s float64) time.Duration {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
