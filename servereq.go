package thermosc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// This file is the request surface of the planning service: the JSON
// platform/request schemas, their strict validation, and the canonical
// cache keying. Canonicalization is what makes the plan cache sound —
// two requests describing the same problem in different spellings
// (paper_levels vs the explicit voltage list, defaults omitted vs
// spelled out) normalize to the same key, and the key excludes knobs
// that cannot change the plan (timeouts).

// PlatformSpec is the wire description of a platform for the serving
// API. Zero-valued optional fields select the repository's calibrated
// defaults (the same ones New applies).
type PlatformSpec struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// PaperLevels selects the paper's Table IV level set (n ∈ {2..5});
	// mutually exclusive with Voltages. When both are empty the full
	// 0.6–1.3 V range in 0.05 V steps is used.
	PaperLevels int       `json:"paper_levels,omitempty"`
	Voltages    []float64 `json:"voltages,omitempty"`
	AmbientC    float64   `json:"ambient_c,omitempty"`    // 0 → 35 °C
	PeriodS     float64   `json:"period_s,omitempty"`     // 0 → 20 ms
	OverheadS   *float64  `json:"overhead_s,omitempty"`   // nil → 5 µs; 0 disables
	CoreEdgeM   float64   `json:"core_edge_m,omitempty"`  // 0 → 4 mm
	ConvectionR float64   `json:"convection_r,omitempty"` // 0 → package default
	StackLayers int       `json:"stack_layers,omitempty"` // 0/1 → planar
	CoreScales  []float64 `json:"core_scales,omitempty"`  // heterogeneity factors
	CoreLevel   bool      `json:"core_level,omitempty"`   // single-node-per-core model
}

// MaximizeRequest is the body of POST /v1/maximize.
type MaximizeRequest struct {
	Platform PlatformSpec `json:"platform"`
	TmaxC    float64      `json:"tmax_c"`
	Method   Method       `json:"method"`
	// TimeoutS bounds this request's solve in seconds (capped by the
	// server's MaxTimeout; 0 uses the server default). Not part of the
	// cache key — it cannot change the plan, only whether it arrives.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// MaximizeResponse is the body of a successful /v1/maximize reply. Plan
// bytes are a pure function of the canonicalized request: the solver is
// deterministic and served plans carry solver_elapsed_s = 0, so a cache
// hit is bit-identical to a cold solve.
type MaximizeResponse struct {
	Plan json.RawMessage `json:"plan"`
	// Cached reports whether the plan came from the LRU cache.
	Cached bool `json:"cached"`
	// Shared reports whether this request joined another in-flight solve
	// of the same key (singleflight) instead of solving itself.
	Shared bool `json:"shared"`
	// Key identifies the canonical request (truncated SHA-256, for
	// debugging and cache correlation).
	Key string `json:"key"`
	// ElapsedS is this request's wall-clock handling time.
	ElapsedS float64 `json:"elapsed_s"`
	// Degraded reports an anytime plan: the solve was truncated by its
	// deadline (or routed to the safe floor) and this is the best valid
	// plan available — thermally verified, but possibly below the
	// throughput a complete solve would reach. DegradedReason says which
	// stage was cut short. Both omitted for complete plans, so complete
	// responses are byte-stable against earlier releases.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Stale reports a stale-while-revalidate hit: the cached plan is
	// degraded (or past PlanTTL) and a background refresh is replacing
	// it; this response still carries the old, verified bytes.
	Stale bool `json:"stale,omitempty"`
	// Source reports which fleet layer answered: "local" (this replica's
	// cache or solver), "peer" (replicated-store entry that arrived from
	// another replica), or "forwarded" (proxied to the key's owner). Set
	// only in cluster mode, so single-process responses stay byte-stable
	// against earlier releases.
	Source string `json:"source,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: replay a plan on a
// platform and return the transient trace from ambient plus the
// verified stable-status peak.
type SimulateRequest struct {
	Platform         PlatformSpec    `json:"platform"`
	Plan             json.RawMessage `json:"plan"`
	Periods          int             `json:"periods,omitempty"`            // default 3
	SamplesPerPeriod int             `json:"samples_per_period,omitempty"` // default 64
}

// SimulateResponse is the body of a successful /v1/simulate reply.
type SimulateResponse struct {
	TimeS     []float64   `json:"time_s"`
	CoreTempC [][]float64 `json:"core_temp_c"`
	// MaxC is the hottest sampled temperature in the transient trace.
	MaxC float64 `json:"max_c"`
	// VerifiedPeakC is the dense stable-status peak of the plan's
	// schedule — the temperature the chip settles into, independent of
	// the trace's sampling.
	VerifiedPeakC float64 `json:"verified_peak_c"`
	ElapsedS      float64 `json:"elapsed_s"`
}

// requestError is a validation failure that maps to a 4xx status.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &requestError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// finite rejects NaN/±Inf — JSON itself cannot carry them as literals,
// but overflowing numbers and future decoders can.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// serveLimits are the resource caps the decoder enforces; oversized or
// degenerate requests are rejected before any thermal model is built.
type serveLimits struct {
	maxCores        int
	maxVoltages     int
	maxTraceSamples int
}

// normalizePlatform validates spec against the limits and returns its
// canonical form: every default spelled out, the level set expanded to
// an explicit ascending voltage list, all-ones core scales dropped.
// Building a Platform from the canonical spec is equivalent to building
// it from the original.
func normalizePlatform(spec PlatformSpec, lim serveLimits) (PlatformSpec, error) {
	c := spec
	if c.Rows < 1 || c.Cols < 1 {
		return c, badRequestf("platform: rows/cols must be >= 1, got %dx%d", c.Rows, c.Cols)
	}
	if c.StackLayers == 0 {
		c.StackLayers = 1
	}
	if c.StackLayers < 1 {
		return c, badRequestf("platform: invalid stack_layers %d", spec.StackLayers)
	}
	cores := c.Rows * c.Cols * c.StackLayers
	if c.Rows > lim.maxCores || c.Cols > lim.maxCores || c.StackLayers > lim.maxCores || cores > lim.maxCores {
		return c, badRequestf("platform: %d cores exceeds the server cap of %d", cores, lim.maxCores)
	}
	if c.CoreLevel && c.StackLayers > 1 {
		return c, badRequestf("platform: core_level and stack_layers are mutually exclusive")
	}
	if len(c.CoreScales) > 0 && c.CoreLevel {
		return c, badRequestf("platform: core_scales are not supported by the core-level model")
	}

	// Level set → explicit canonical voltages.
	switch {
	case c.PaperLevels != 0 && len(c.Voltages) > 0:
		return c, badRequestf("platform: paper_levels and voltages are mutually exclusive")
	case c.PaperLevels != 0:
		ls, err := power.PaperLevels(c.PaperLevels)
		if err != nil {
			return c, badRequestf("platform: %v", err)
		}
		c.Voltages = ls.Voltages()
	case len(c.Voltages) == 0:
		c.Voltages = power.FullRange().Voltages()
	default:
		if len(c.Voltages) > lim.maxVoltages {
			return c, badRequestf("platform: %d voltage levels exceeds the cap of %d", len(c.Voltages), lim.maxVoltages)
		}
		for _, v := range c.Voltages {
			// The 1 mV floor keeps subnormal/denormal voltages out of the
			// power model, where they would starve every downstream
			// quantity of float precision.
			if !finite(v) || v < 1e-3 || v > 10 {
				return c, badRequestf("platform: voltage %v outside [0.001, 10] V", v)
			}
		}
		ls, err := power.NewLevelSet(c.Voltages...)
		if err != nil {
			return c, badRequestf("platform: %v", err)
		}
		c.Voltages = ls.Voltages() // sorted, deduplicated canonical order
	}
	c.PaperLevels = 0

	// Scalar defaults (the same values New applies).
	if c.AmbientC == 0 {
		c.AmbientC = thermal.HotSpot65nm().AmbientC
	}
	if !finite(c.AmbientC) || c.AmbientC < -273.15 || c.AmbientC > 500 {
		return c, badRequestf("platform: ambient_c %v outside [-273.15, 500]", spec.AmbientC)
	}
	if c.PeriodS == 0 {
		c.PeriodS = 20e-3
	}
	if !finite(c.PeriodS) || c.PeriodS < 1e-6 || c.PeriodS > 3600 {
		// The 1 µs floor rejects subnormal periods at decode (400) rather
		// than letting the solver inherit a degenerate quantum (500).
		return c, badRequestf("platform: period_s %v outside [1e-6, 3600]", spec.PeriodS)
	}
	if c.OverheadS == nil {
		tau := power.DefaultOverhead().Tau
		c.OverheadS = &tau
	} else {
		tau := *c.OverheadS
		if !finite(tau) || tau < 0 || tau > c.PeriodS {
			return c, badRequestf("platform: overhead_s %v outside [0, period]", tau)
		}
		c.OverheadS = &tau // detach from the caller's pointer
	}
	if c.CoreEdgeM == 0 {
		c.CoreEdgeM = 4e-3
	}
	if !finite(c.CoreEdgeM) || c.CoreEdgeM < 1e-5 || c.CoreEdgeM > 1 {
		return c, badRequestf("platform: core_edge_m %v outside [1e-5, 1]", spec.CoreEdgeM)
	}
	if c.ConvectionR == 0 && cores <= thermal.ScalePackageRefCores {
		c.ConvectionR = thermal.HotSpot65nm().ConvectionR
	}
	// Past the package-calibration size, 0 stays canonical: it means the
	// automatically scaled package (New shrinks the convection resistance
	// with the core count), while an explicit value pins the convection
	// path and disables that scaling — genuinely different platforms.
	if c.ConvectionR != 0 && (!finite(c.ConvectionR) || c.ConvectionR < 1e-6 || c.ConvectionR > 1e3) {
		return c, badRequestf("platform: convection_r %v outside [1e-6, 1000]", spec.ConvectionR)
	}

	if len(c.CoreScales) > 0 {
		if len(c.CoreScales) != cores {
			return c, badRequestf("platform: %d core_scales for %d cores", len(c.CoreScales), cores)
		}
		uniform := true
		for _, s := range c.CoreScales {
			if !finite(s) || s <= 0 || s > 100 {
				return c, badRequestf("platform: core scale %v outside (0, 100]", s)
			}
			if s != 1 {
				uniform = false
			}
		}
		if uniform {
			c.CoreScales = nil // canonical: all-ones ≡ homogeneous
		} else {
			c.CoreScales = append([]float64(nil), c.CoreScales...)
		}
	}
	return c, nil
}

// platform builds the Platform a canonical spec describes.
func (spec PlatformSpec) platform() (*Platform, error) {
	opts := []Option{
		WithVoltageLevels(spec.Voltages...),
		WithAmbientC(spec.AmbientC),
		WithBasePeriod(spec.PeriodS),
		WithTransitionOverhead(*spec.OverheadS),
		WithCoreEdge(spec.CoreEdgeM),
	}
	if spec.ConvectionR != 0 {
		// 0 is the canonical "auto-scaled package" spelling on large
		// platforms (see normalizePlatform); an explicit value pins it.
		opts = append(opts, WithConvectionR(spec.ConvectionR))
	}
	if spec.StackLayers > 1 {
		opts = append(opts, WithStackedLayers(spec.StackLayers))
	}
	if spec.CoreLevel {
		opts = append(opts, WithCoreLevelModel())
	}
	if len(spec.CoreScales) > 0 {
		opts = append(opts, WithCoreScales(spec.CoreScales...))
	}
	return New(spec.Rows, spec.Cols, opts...)
}

// canonicalMaximize is the cache identity of a maximize request: the
// canonical platform, the threshold, and the method — nothing else.
type canonicalMaximize struct {
	Platform PlatformSpec `json:"platform"`
	TmaxC    float64      `json:"tmax_c"`
	Method   Method       `json:"method"`
}

// parseMaximizeRequest decodes and validates a /v1/maximize body and
// returns the normalized request plus its canonical cache keys: planKey
// identifies (platform, Tmax, method) and platKey the platform alone
// (the engine-sharing granularity). All failures are 4xx requestErrors.
func parseMaximizeRequest(body []byte, lim serveLimits) (req MaximizeRequest, planKey, platKey string, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, "", "", badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return req, "", "", badRequestf("trailing data after request object")
	}
	norm, err := normalizePlatform(req.Platform, lim)
	if err != nil {
		return req, "", "", err
	}
	req.Platform = norm

	req.Method = Method(strings.ToUpper(string(req.Method)))
	if req.Method == Method(strings.ToUpper(string(MethodIdeal))) {
		req.Method = MethodIdeal
	}
	switch req.Method {
	case MethodIdeal, MethodLNS, MethodEXS, MethodAO, MethodPCO:
	default:
		return req, "", "", badRequestf("unknown method %q (want one of Ideal, LNS, EXS, AO, PCO)", req.Method)
	}
	if !finite(req.TmaxC) {
		return req, "", "", badRequestf("tmax_c %v is not finite", req.TmaxC)
	}
	if req.TmaxC < norm.AmbientC+1e-3 {
		// A threshold within 1 mK of ambient leaves no thermal headroom
		// for any schedule; it would only send the solvers on a futile
		// search.
		return req, "", "", badRequestf("tmax_c %.4f not above ambient %.2f", req.TmaxC, norm.AmbientC)
	}
	if req.TmaxC > 1000 {
		return req, "", "", badRequestf("tmax_c %v outside the plausible range", req.TmaxC)
	}
	if !finite(req.TimeoutS) || req.TimeoutS < 0 {
		return req, "", "", badRequestf("invalid timeout_s %v", req.TimeoutS)
	}

	planKey, err = canonicalKey(canonicalMaximize{Platform: norm, TmaxC: req.TmaxC, Method: req.Method})
	if err != nil {
		return req, "", "", err
	}
	platKey, err = canonicalKey(norm)
	if err != nil {
		return req, "", "", err
	}
	return req, planKey, platKey, nil
}

// parseSimulateRequest decodes and validates a /v1/simulate body. The
// plan itself is validated by Plan.UnmarshalJSON (structural invariants:
// finite slice lengths/voltages, slices summing to the period).
func parseSimulateRequest(body []byte, lim serveLimits) (spec PlatformSpec, plan *Plan, periods, samples int, platKey string, err error) {
	var req SimulateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return spec, nil, 0, 0, "", badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return spec, nil, 0, 0, "", badRequestf("trailing data after request object")
	}
	spec, err = normalizePlatform(req.Platform, lim)
	if err != nil {
		return spec, nil, 0, 0, "", err
	}
	if len(req.Plan) == 0 {
		return spec, nil, 0, 0, "", badRequestf("missing plan")
	}
	plan = new(Plan)
	if err := json.Unmarshal(req.Plan, plan); err != nil {
		return spec, nil, 0, 0, "", badRequestf("decoding plan: %v", err)
	}
	if len(plan.Cores) == 0 {
		return spec, nil, 0, 0, "", badRequestf("plan carries no schedule (infeasible plans cannot be simulated)")
	}
	if len(plan.Cores) != spec.Rows*spec.Cols*spec.StackLayers {
		return spec, nil, 0, 0, "", badRequestf("plan has %d cores, platform %d",
			len(plan.Cores), spec.Rows*spec.Cols*spec.StackLayers)
	}
	periods, samples = req.Periods, req.SamplesPerPeriod
	if periods == 0 {
		periods = 3
	}
	if samples == 0 {
		samples = 64
	}
	if periods < 1 || samples < 1 {
		return spec, nil, 0, 0, "", badRequestf("invalid trace request (%d periods, %d samples)", req.Periods, req.SamplesPerPeriod)
	}
	if periods*samples > lim.maxTraceSamples {
		return spec, nil, 0, 0, "", badRequestf("trace of %d samples exceeds the cap of %d", periods*samples, lim.maxTraceSamples)
	}
	platKey, err = canonicalKey(spec)
	if err != nil {
		return spec, nil, 0, 0, "", err
	}
	return spec, plan, periods, samples, platKey, nil
}

// canonicalKey serializes v deterministically (fixed struct field order,
// shortest-roundtrip float encoding) into a cache key.
func canonicalKey(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", badRequestf("canonicalizing request: %v", err)
	}
	return string(b), nil
}

// keyDigest is the short request fingerprint exposed in responses and
// logs (the full canonical key stays server-internal).
func keyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}
