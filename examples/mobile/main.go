// Mobile / fanless device: a passively cooled dual-core SoC (high
// convection resistance, warm 45 °C skin-adjacent ambient) with only two
// DVFS modes must stay under a strict 60 °C junction cap. This is where
// the paper's frequency-oscillation idea shines: with so few discrete
// modes, constant-speed policies leave a large gap below the cap.
// The example also simulates the chosen schedule from a cold start to
// show the heat-up transient staying under the cap.
package main

import (
	"fmt"
	"log"
	"strings"

	"thermosc"
)

func main() {
	plat, err := thermosc.New(2, 1,
		thermosc.WithPaperLevels(2),            // only 0.6 V and 1.3 V
		thermosc.WithAmbientC(45),              // inside a warm enclosure
		thermosc.WithConvectionR(0.9),          // passive cooling: poor sink
		thermosc.WithTransitionOverhead(20e-6), // slower mobile VRM
		thermosc.WithBasePeriod(10e-3),
	)
	if err != nil {
		log.Fatal(err)
	}
	const tmax = 60.0

	fmt.Println("fanless dual-core SoC, ambient 45 °C, junction cap 60 °C, modes {0.6, 1.3} V")
	fmt.Println(strings.Repeat("-", 72))
	var ao *thermosc.Plan
	for _, m := range thermosc.Methods() {
		plan, err := plat.Maximize(m, tmax)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  throughput %.4f  peak %.2f °C  feasible=%v  m=%d\n",
			plan.Method, plan.Throughput, plan.PeakC, plan.Feasible, plan.M)
		if m == thermosc.MethodAO {
			ao = plan
		}
	}

	// Cold-start transient: confirm the device never crosses the cap on
	// the way to the stable status. The passive sink's dominant time
	// constant is minutes while the schedule period is 10 ms, so sample
	// once per period and cap the horizon at eight time constants.
	periods := int(8*plat.DominantTimeConstant()/ao.PeriodS) + 1
	tr, err := plat.Trace(ao, periods, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold-start transient over %d periods: max %.2f °C (cap %.0f °C)\n",
		periods, tr.MaxC(), tmax)
	if tr.MaxC() > tmax+1e-6 {
		log.Fatalf("transient exceeded the cap: %.3f °C", tr.MaxC())
	}

	// Show the heat-up profile at a glance (every ~10% of the run).
	n := len(tr.TimeS)
	fmt.Println("\n   time [s]   core0 [°C]  core1 [°C]")
	for k := 0; k < n; k += n / 10 {
		fmt.Printf("   %8.2f   %9.2f   %9.2f\n", tr.TimeS[k], tr.CoreTempC[0][k], tr.CoreTempC[1][k])
	}
}
