// Real-time admission control: an avionics-style mixed task set must be
// guaranteed schedulable on a 3-core flight computer whose junction
// temperature may never exceed 65 °C. The example partitions the tasks,
// derives the sustained speeds each scheduling policy can guarantee under
// the cap, and shows a load that constant-speed policies must reject but
// the paper's oscillating schedule admits.
package main

import (
	"fmt"
	"log"

	"thermosc"
)

func main() {
	plat, err := thermosc.New(3, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		log.Fatal(err)
	}
	const tmax = 65.0

	tasks := []thermosc.Task{
		{Name: "attitude-ctl", WCET: 18e-3, Period: 25e-3}, // u = 0.72
		{Name: "nav-fusion", WCET: 28e-3, Period: 40e-3},   // u = 0.70
		{Name: "telemetry", WCET: 24e-3, Period: 60e-3},    // u = 0.40
		{Name: "health-mon", WCET: 15e-3, Period: 50e-3},   // u = 0.30
	}
	var total float64
	fmt.Printf("task set (total utilization ")
	for _, t := range tasks {
		total += t.Utilization()
	}
	fmt.Printf("%.2f on 3 cores):\n", total)
	for _, t := range tasks {
		fmt.Printf("  %-13s WCET %5.1f ms  period %5.1f ms  u=%.2f\n",
			t.Name, t.WCET*1e3, t.Period*1e3, t.Utilization())
	}
	fmt.Println()

	for _, m := range []thermosc.Method{thermosc.MethodLNS, thermosc.MethodEXS, thermosc.MethodAO} {
		rep, err := plat.AdmitTasks(tasks, m, tmax)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECT"
		if rep.Admissible {
			verdict = "ADMIT"
		}
		fmt.Printf("%-4s → %-6s  core speeds %s  margins %s  (plan peak %.2f °C)\n",
			m, verdict, fmtVec(rep.CoreSpeed), fmtVec(rep.Margins), rep.Plan.PeakC)
	}

	fmt.Println("\nThe oscillating schedule admits the load that every constant-speed policy")
	fmt.Println("must reject — the real-time payoff of the paper's throughput gain.")
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%+.2f", x)
	}
	return s + "]"
}
