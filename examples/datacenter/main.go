// Datacenter capacity planning: a 3×3 server part must run as fast as the
// room's thermal envelope allows. This example sweeps the peak temperature
// budget (a proxy for rack inlet temperature policies) and shows how much
// sustained throughput each scheduling policy extracts from the same
// silicon — the paper's Fig. 7 story applied to a capacity decision.
package main

import (
	"fmt"
	"log"

	"thermosc"
)

func main() {
	plat, err := thermosc.New(3, 3,
		thermosc.WithPaperLevels(3), // 0.6 / 0.8 / 1.3 V
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("9-core server part, ambient %.0f °C, levels %v V\n\n",
		plat.AmbientC(), plat.VoltageLevels())

	fmt.Printf("%-10s  %-8s  %-8s  %-8s  %-8s  %s\n",
		"Tmax [°C]", "LNS", "EXS", "AO", "PCO", "AO uplift vs EXS")
	for _, tmax := range []float64{50, 55, 60, 65} {
		plans, err := plat.Compare(tmax)
		if err != nil {
			log.Fatal(err)
		}
		lns := plans[thermosc.MethodLNS]
		exs := plans[thermosc.MethodEXS]
		ao := plans[thermosc.MethodAO]
		pco := plans[thermosc.MethodPCO]
		uplift := "-"
		if exs.Throughput > 0 {
			uplift = fmt.Sprintf("%+.1f%%", 100*(ao.Throughput/exs.Throughput-1))
		}
		fmt.Printf("%-10.0f  %-8.4f  %-8.4f  %-8.4f  %-8.4f  %s\n",
			tmax, lns.Throughput, exs.Throughput, ao.Throughput, pco.Throughput, uplift)
	}

	// The planner's question: how much cooler can the room run while
	// keeping the throughput AO already achieves at 65 °C under EXS-style
	// constant modes? Binary-search the EXS-equivalent budget.
	target, err := plat.Maximize(thermosc.MethodAO, 60)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := 60.0, 90.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		exs, err := plat.Maximize(thermosc.MethodEXS, mid)
		if err != nil {
			log.Fatal(err)
		}
		if exs.Throughput >= target.Throughput {
			hi = mid
		} else {
			lo = mid
		}
	}
	fmt.Printf("\nAO at a 60 °C cap sustains %.4f; constant-mode EXS needs a %.1f °C cap for the same throughput —\n", target.Throughput, hi)
	fmt.Printf("oscillation buys %.1f K of thermal headroom on this part.\n", hi-60)
}
