// Design-space exploration: how many DVFS levels does the hardware team
// actually need to ship? Each extra level costs regulator complexity and
// validation time. This example sweeps the paper's level sets (2..5
// levels, Table IV) on a 3×2 part and compares how much throughput each
// policy recovers — reproducing the paper's core finding that frequency
// oscillation makes sparse level sets nearly as good as rich ones, so a
// cheaper regulator suffices.
package main

import (
	"fmt"
	"log"
	"strings"

	"thermosc"
)

func main() {
	const tmax = 55.0
	fmt.Printf("3×2 part, Tmax %.0f °C — throughput by DVFS level count\n\n", tmax)
	fmt.Printf("%-7s  %-22s  %-8s  %-8s  %-10s\n", "levels", "voltages [V]", "EXS", "AO", "AO recovers")

	// The continuous-hardware upper bound for reference.
	ref, err := thermosc.New(3, 2) // full 15-level range
	if err != nil {
		log.Fatal(err)
	}
	idealPlan, err := ref.Maximize(thermosc.MethodIdeal, tmax)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		levels  int
		exs, ao float64
	}
	var rows []row
	for n := 2; n <= 5; n++ {
		plat, err := thermosc.New(3, 2, thermosc.WithPaperLevels(n))
		if err != nil {
			log.Fatal(err)
		}
		exs, err := plat.Maximize(thermosc.MethodEXS, tmax)
		if err != nil {
			log.Fatal(err)
		}
		ao, err := plat.Maximize(thermosc.MethodAO, tmax)
		if err != nil {
			log.Fatal(err)
		}
		recovered := 100 * ao.Throughput / idealPlan.Throughput
		fmt.Printf("%-7d  %-22s  %-8.4f  %-8.4f  %6.1f%% of ideal\n",
			n, fmtVolts(plat.VoltageLevels()), exs.Throughput, ao.Throughput, recovered)
		rows = append(rows, row{n, exs.Throughput, ao.Throughput})
	}

	fmt.Printf("\ncontinuous-voltage ideal: %.4f\n\n", idealPlan.Throughput)

	// The design takeaway: the EXS (constant-mode) gap between 2 and 5
	// levels is large; the AO gap is small. Quantify both.
	exsGap := 100 * (rows[3].exs/rows[0].exs - 1)
	aoGap := 100 * (rows[3].ao/rows[0].ao - 1)
	fmt.Printf("going from 2 → 5 levels buys EXS %+.1f%% but AO only %+.1f%% —\n", exsGap, aoGap)
	fmt.Println("with oscillating schedules, a 2-level regulator is nearly as good as a 5-level one.")
}

func fmtVolts(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%.2g", v)
	}
	return strings.Join(parts, " ")
}
