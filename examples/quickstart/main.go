// Quickstart: build a 3×1 multi-core platform, maximize its throughput
// under a 65 °C peak temperature constraint with the paper's AO policy,
// and print the resulting oscillating schedule.
package main

import (
	"fmt"
	"log"

	"thermosc"
)

func main() {
	// A 3-core strip with only two DVFS modes (0.6 V and 1.3 V) — the
	// paper's motivation example. 5 µs transition stalls and a 20 ms base
	// period are the defaults.
	plat, err := thermosc.New(3, 1, thermosc.WithPaperLevels(2))
	if err != nil {
		log.Fatal(err)
	}

	// How hot does full throttle run? (Steady state, all cores at 1.3 V.)
	steady, err := plat.SteadyTempC([]float64{1.3, 1.3, 1.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full throttle steady state: %.1f / %.1f / %.1f °C — too hot for a 65 °C cap\n\n",
		steady[0], steady[1], steady[2])

	// Maximize throughput under the cap with aligned oscillation.
	plan, err := plat.Maximize(thermosc.MethodAO, 65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AO plan: throughput %.4f, peak %.2f °C, feasible=%v, m=%d oscillations\n",
		plan.Throughput, plan.PeakC, plan.Feasible, plan.M)
	for i, slices := range plan.Cores {
		fmt.Printf("  core %d:", i)
		for _, sl := range slices {
			fmt.Printf("  %.2f V for %.3f ms", sl.Voltage, sl.Seconds*1e3)
		}
		fmt.Println()
	}

	// Independently verify the peak with a dense stable-status search.
	peak, err := plat.VerifyPeakC(plan, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndense verification: peak %.3f °C (cap 65 °C)\n", peak)

	// Compare against the constant-speed baselines.
	for _, m := range []thermosc.Method{thermosc.MethodLNS, thermosc.MethodEXS} {
		base, err := plat.Maximize(m, 65)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s baseline: throughput %.4f (AO gains %.1f%%)\n",
			m, base.Throughput, 100*(plan.Throughput/base.Throughput-1))
	}
}
