// big.LITTLE thermal planning: a heterogeneous 2+2 part pairs two
// power-hungry performance cores (1.6× reference power at any voltage)
// with two efficient cores (0.75×). The example shows how the scheduler
// exploits the asymmetry without any configuration beyond the scales, and
// answers the dual question — how cool can the part run while holding a
// fixed performance contract?
package main

import (
	"fmt"
	"log"

	"thermosc"
)

func main() {
	plat, err := thermosc.New(2, 2,
		thermosc.WithPaperLevels(3),
		thermosc.WithCoreScales(1.6, 1.6, 0.75, 0.75), // big, big, LITTLE, LITTLE
	)
	if err != nil {
		log.Fatal(err)
	}
	const tmax = 60.0

	volts, err := plat.IdealVoltagesC(tmax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal continuous voltages at %.0f °C: big %.3f/%.3f V, LITTLE %.3f/%.3f V\n",
		tmax, volts[0], volts[1], volts[2], volts[3])

	plan, err := plat.Maximize(thermosc.MethodAO, tmax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAO at %.0f °C: throughput %.4f, peak %.2f °C, m=%d\n", tmax, plan.Throughput, plan.PeakC, plan.M)
	labels := []string{"big-0", "big-1", "LITTLE-0", "LITTLE-1"}
	for i, slices := range plan.Cores {
		var work float64
		for _, sl := range slices {
			work += sl.Voltage * sl.Seconds
		}
		fmt.Printf("  %-9s mean speed %.3f\n", labels[i], work/plan.PeriodS)
	}
	fmt.Println("\nThe LITTLE cores absorb the work the big cores' power draw makes too hot to host.")

	// The dual question: marketing promised sustained throughput 0.85 —
	// what junction temperature does that actually require?
	dual, tmin, err := plat.MinimizePeak(0.85, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nholding throughput 0.85 needs only a %.1f °C cap (plan peaks at %.2f °C) —\n", tmin, dual.PeakC)
	fmt.Printf("headroom for a quieter fan curve than the %.0f °C design point.\n", tmax)
}
