package thermosc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recently used
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Overwriting refreshes recency without growing the cache.
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a after overwrite = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", c.Len())
	}
	// A degenerate capacity clamps to 1.
	one := newLRUCache[int](0)
	one.Put("x", 1)
	one.Put("y", 2)
	if one.Len() != 1 {
		t.Fatalf("capacity-0 cache holds %d entries", one.Len())
	}
}

func TestLRUCacheGetOrCreate(t *testing.T) {
	c := newLRUCache[string](4)
	builds := 0
	build := func() (string, error) { builds++; return "built", nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCreate("k", build)
		if err != nil || v != "built" {
			t.Fatalf("GetOrCreate: %q, %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times", builds)
	}
	// Errors are not cached.
	boom := errors.New("boom")
	if _, err := c.GetOrCreate("bad", func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("failed build was cached")
	}
	// Concurrent creators: every caller sees one winning value.
	var wg sync.WaitGroup
	vals := make([]string, 8)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCreate("race", func() (string, error) { return fmt.Sprintf("v%d", i), nil })
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	winner, _ := c.Get("race")
	for i, v := range vals {
		if v != winner {
			t.Fatalf("caller %d got %q, cache holds %q", i, v, winner)
		}
	}
}

func TestFlightGroupSharesLeaderResult(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	var calls int
	var mu sync.Mutex

	type result struct {
		val    cachedPlan
		shared bool
		err    error
	}
	results := make(chan result, 9)
	go func() {
		v, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) {
			close(started)
			<-release
			mu.Lock()
			calls++
			mu.Unlock()
			return cachedPlan{bytes: []byte("plan")}, nil
		})
		results <- result{v, shared, err}
	}()
	<-started
	for i := 0; i < 8; i++ {
		go func() {
			v, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return cachedPlan{bytes: []byte("should not run")}, nil
			})
			results <- result{v, shared, err}
		}()
	}
	// Joiners block on the leader; give them a moment to attach, then let
	// the leader finish. (Attachment order does not matter for the
	// assertions — a late joiner would just start its own flight and trip
	// the calls counter.)
	time.Sleep(20 * time.Millisecond)
	close(release)

	var sharedCount int
	for i := 0; i < 9; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if string(r.val.bytes) != "plan" {
			t.Fatalf("val = %q", r.val.bytes)
		}
		if r.shared {
			sharedCount++
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	if sharedCount != 8 {
		t.Fatalf("%d joiners reported shared", sharedCount)
	}
}

// A joiner whose context expires abandons the wait with its ctx error;
// the flight keeps running and later callers still get the real result.
func TestFlightGroupJoinerTimeoutDoesNotCancelFlight(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (cachedPlan, error) {
			close(started)
			<-release
			return cachedPlan{bytes: []byte("plan")}, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", func() (cachedPlan, error) { return cachedPlan{}, nil })
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("impatient joiner: shared=%v err=%v", shared, err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader was disturbed by the joiner's timeout: %v", err)
	}
	// The key is free again: a new call runs fresh.
	v, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) { return cachedPlan{bytes: []byte("fresh")}, nil })
	if err != nil || shared || string(v.bytes) != "fresh" {
		t.Fatalf("post-flight call: %q shared=%v err=%v", v.bytes, shared, err)
	}
}

// A panicking leader must not strand its joiners or leak the flight:
// joiners receive errFlightPanic, the panic re-raises into the leader's
// caller, and the key is immediately reusable.
func TestFlightGroupLeaderPanicCleansUp(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	joinerErr := make(chan error, 1)
	go func() {
		<-started
		_, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) {
			t.Error("joiner ran its own fn during the leader's flight")
			return cachedPlan{}, nil
		})
		if !shared {
			t.Error("joiner did not report shared")
		}
		joinerErr <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed")
			}
		}()
		g.Do(context.Background(), "k", func() (cachedPlan, error) {
			close(started)
			// Give the joiner a moment to attach; a late joiner would just
			// run its own (trapped) fn and fail the test explicitly.
			time.Sleep(50 * time.Millisecond)
			panic("leader died")
		})
	}()
	select {
	case err := <-joinerErr:
		if !errors.Is(err, errFlightPanic) {
			t.Fatalf("joiner error %v, want errFlightPanic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner still waiting on a dead flight")
	}
	// The key is free again.
	v, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) {
		return cachedPlan{bytes: []byte("alive")}, nil
	})
	if err != nil || shared || string(v.bytes) != "alive" {
		t.Fatalf("post-panic flight: %q shared=%v err=%v", v.bytes, shared, err)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	if _, shared, err := g.Do(context.Background(), "k", func() (cachedPlan, error) { return cachedPlan{}, boom }); shared || !errors.Is(err, boom) {
		t.Fatalf("shared=%v err=%v", shared, err)
	}
}

func TestLatencyHistBuckets(t *testing.T) {
	var h latencyHist
	h.observe(0.0005) // first bucket (≤ 1 ms)
	h.observe(0.02)   // le 0.025
	h.observe(120)    // beyond the last bound → overflow
	if h.counts[0] != 1 {
		t.Fatalf("first bucket = %d", h.counts[0])
	}
	if h.counts[len(latencyBounds)] != 1 {
		t.Fatalf("overflow bucket = %d", h.counts[len(latencyBounds)])
	}
	var total uint64
	for _, c := range h.counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
	if h.sumS != 0.0005+0.02+120 {
		t.Fatalf("sum = %v", h.sumS)
	}
}

func TestServerStatsSnapshot(t *testing.T) {
	st := newServerStats()
	st.observe("maximize", 2*time.Millisecond, false)
	st.observe("maximize", 3*time.Second, true)
	st.cacheHit()
	st.cacheMiss()
	st.sfShared()
	snap := st.snapshot(5, 64)
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.SingleflightShared != 1 {
		t.Fatalf("cache stats: %+v", snap.Cache)
	}
	if snap.Cache.Size != 5 || snap.Cache.Capacity != 64 {
		t.Fatalf("cache size/cap: %+v", snap.Cache)
	}
	ep := snap.Requests["maximize"]
	if ep.Count != 2 || ep.Errors != 1 || ep.Latency.Count != 2 {
		t.Fatalf("endpoint stats: %+v", ep)
	}
	if ep.Latency.SumS < 3.0 || ep.Latency.SumS > 3.1 {
		t.Fatalf("latency sum: %v", ep.Latency.SumS)
	}
	// The overflow bucket is the only one without an upper bound.
	last := ep.Latency.Buckets[len(ep.Latency.Buckets)-1]
	if last.LeS != 0 {
		t.Fatalf("overflow bucket has a bound: %+v", last)
	}
}
