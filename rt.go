package thermosc

import (
	"fmt"

	"thermosc/internal/actuator"
	"thermosc/internal/rt"
)

// Task is a periodic implicit-deadline hard real-time task: WCET seconds
// of work at normalized speed 1.0, released every Period seconds.
type Task struct {
	Name   string
	WCET   float64 // seconds at unit speed
	Period float64 // seconds
}

// Utilization returns WCET/Period.
func (t Task) Utilization() float64 { return t.WCET / t.Period }

// AdmissionReport is the outcome of AdmitTasks.
type AdmissionReport struct {
	// Admissible is true when every core's sustained speed covers its
	// assigned utilization and the fluid approximation holds.
	Admissible bool
	// Plan is the thermally-feasible schedule whose sustained speeds were
	// tested.
	Plan *Plan
	// TaskCore[i] is the core index task i was assigned to.
	TaskCore []int
	// CoreUtil and CoreSpeed give the per-core demanded utilization and
	// sustained speed; Margins their difference.
	CoreUtil  []float64
	CoreSpeed []float64
	Margins   []float64
	// FluidOK reports whether the plan's oscillation cycle is fast enough
	// relative to the shortest task period for the uniform-speed (fluid)
	// EDF argument to apply.
	FluidOK bool
}

// AdmitTasks partitions the task set across the platform's cores
// (worst-fit decreasing, balancing thermal load), derives the sustained
// per-core speeds of the method's thermally-feasible schedule at tmaxC,
// and tests EDF admissibility per core. A task set is reported admissible
// only if the underlying plan is itself temperature-feasible.
func (p *Platform) AdmitTasks(tasks []Task, method Method, tmaxC float64) (*AdmissionReport, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("thermosc: empty task set")
	}
	internal := make([]rt.Task, len(tasks))
	for i, t := range tasks {
		internal[i] = rt.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	// Reject sets with an individual task beyond the fastest mode before
	// solving anything — no schedule can carry them.
	for _, t := range internal {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if t.Utilization() > p.levels.Max()+1e-12 {
			return nil, fmt.Errorf("thermosc: task %q utilization %.3f exceeds the top speed %.3f",
				t.Name, t.Utilization(), p.levels.Max())
		}
	}
	plan, err := p.Maximize(method, tmaxC)
	if err != nil {
		return nil, err
	}
	rep := &AdmissionReport{Plan: plan}
	if !plan.Feasible || len(plan.Cores) == 0 {
		// No thermally-feasible schedule: report against zero speeds.
		part, err := rt.PartitionBySpeeds(internal, make([]float64, p.NumCores()))
		if err != nil {
			return nil, err
		}
		rep.TaskCore = part.TaskCore
		rep.CoreUtil = part.CoreUtil
		rep.Margins = make([]float64, p.NumCores())
		for c := range rep.Margins {
			rep.Margins[c] = -part.CoreUtil[c]
		}
		rep.CoreSpeed = make([]float64, p.NumCores())
		return rep, nil
	}
	speeds := make([]float64, p.NumCores())
	var mean float64
	for c, slices := range plan.Cores {
		var work float64
		for _, sl := range slices {
			work += sl.Voltage * sl.Seconds
		}
		speeds[c] = work / plan.PeriodS
		mean += speeds[c]
	}
	mean /= float64(len(speeds))
	// The plan's timeline includes the overhead-extended high intervals;
	// part of that time is transition stall, not useful work. Rescale so
	// the per-core speeds are consistent with the plan's USEFUL
	// throughput (slightly conservative for the low-speed cores).
	if mean > 0 && plan.Throughput < mean {
		f := plan.Throughput / mean
		for c := range speeds {
			speeds[c] *= f
		}
	}
	rep.CoreSpeed = speeds
	// Partition against the plan's actual speed vector (slow or off cores
	// only receive load they can carry).
	part, err := rt.PartitionBySpeeds(internal, speeds)
	if err != nil {
		return nil, err
	}
	rep.TaskCore = part.TaskCore
	rep.CoreUtil = part.CoreUtil
	// Constant-mode plans have no oscillation cycle, so the fluid
	// approximation is moot for them.
	cycle := 0.0
	for _, slices := range plan.Cores {
		if len(slices) > 1 {
			cycle = plan.PeriodS
			break
		}
	}
	adm, err := rt.Admissible(part, speeds, cycle, rt.MinPeriod(internal))
	if err != nil {
		return nil, err
	}
	rep.Admissible = adm.Admissible
	rep.Margins = adm.Margins
	rep.FluidOK = adm.FluidOK
	return rep, nil
}

// EDFCheck is the job-level verdict of VerifyAdmissionByEDF.
type EDFCheck struct {
	// MissesPerCore[c] counts deadline misses simulated on core c.
	MissesPerCore []int
	// TotalMisses sums them; 0 confirms the admission verdict.
	TotalMisses  int
	JobsReleased int
}

// VerifyAdmissionByEDF re-checks an admission report with a job-level EDF
// simulation: each core's assigned tasks run on the plan's EXECUTED speed
// profile (DVFS transition windows deliver zero work) for the given
// horizon in seconds. An admitted report simulating with zero misses is
// end-to-end evidence; a rejected report often shows where the misses
// land. tasks must be the same set passed to AdmitTasks.
func (p *Platform) VerifyAdmissionByEDF(rep *AdmissionReport, tasks []Task, horizon float64) (*EDFCheck, error) {
	if rep == nil || rep.Plan == nil || len(rep.Plan.Cores) == 0 {
		return nil, fmt.Errorf("thermosc: report carries no executable plan")
	}
	if len(rep.TaskCore) != len(tasks) {
		return nil, fmt.Errorf("thermosc: %d task assignments for %d tasks", len(rep.TaskCore), len(tasks))
	}
	s, err := rep.Plan.internalSchedule(p)
	if err != nil {
		return nil, err
	}
	profiles, err := actuator.ExecutedSpeedProfiles(s, p.overhead)
	if err != nil {
		return nil, err
	}
	check := &EDFCheck{MissesPerCore: make([]int, p.NumCores())}
	for c := 0; c < p.NumCores(); c++ {
		var coreTasks []rt.Task
		for i, tc := range rep.TaskCore {
			if tc == c {
				coreTasks = append(coreTasks, rt.Task{
					Name:   tasks[i].Name,
					WCET:   tasks[i].WCET,
					Period: tasks[i].Period,
				})
			}
		}
		if len(coreTasks) == 0 {
			continue
		}
		res, err := rt.SimulateEDF(coreTasks, profiles[c], horizon)
		if err != nil {
			return nil, err
		}
		check.MissesPerCore[c] = res.DeadlineMiss
		check.TotalMisses += res.DeadlineMiss
		check.JobsReleased += res.JobsReleased
	}
	return check, nil
}
