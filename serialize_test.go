package thermosc

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Fatalf("missing version field: %s", data)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Method != plan.Method || back.M != plan.M || back.Feasible != plan.Feasible {
		t.Fatalf("metadata mismatch: %+v vs %+v", back, plan)
	}
	if math.Abs(back.Throughput-plan.Throughput) > 1e-12 ||
		math.Abs(back.PeakC-plan.PeakC) > 1e-12 ||
		math.Abs(back.PeriodS-plan.PeriodS) > 1e-12 {
		t.Fatal("numeric fields drifted through JSON")
	}
	if len(back.Cores) != len(plan.Cores) {
		t.Fatal("cores lost")
	}
	// The deserialized plan must remain usable: verify and trace it.
	// The plan's PeakC certifies the executed timeline, so the bare
	// schedule verifies at or slightly below it.
	peak, err := p.VerifyPeakC(&back, 16)
	if err != nil {
		t.Fatal(err)
	}
	if peak > plan.PeakC+0.05 || plan.PeakC-peak > 0.3 {
		t.Fatalf("reloaded plan peak %.4f vs original %.4f", peak, plan.PeakC)
	}
}

func TestPlanJSONRejectsBadData(t *testing.T) {
	cases := []string{
		`{"version":2}`, // unknown version
		`{"version":1,"period_s":-1,"cores":[[{"Seconds":1,"Voltage":0.6}]]}`,
		`{"version":1,"period_s":1,"cores":[[]]}`,
		`{"version":1,"period_s":1,"cores":[[{"Seconds":-1,"Voltage":0.6}]]}`,
		`{"version":1,"period_s":1,"cores":[[{"Seconds":1,"Voltage":-2}]]}`,
		`{"version":1,"period_s":1,"cores":[[{"Seconds":0.5,"Voltage":0.6}]]}`, // slices don't tile period
		`not json`,
	}
	for _, c := range cases {
		var plan Plan
		if err := json.Unmarshal([]byte(c), &plan); err == nil {
			t.Fatalf("expected rejection of %s", c)
		}
	}
	// Infeasible plan without schedule round-trips fine.
	var plan Plan
	if err := json.Unmarshal([]byte(`{"version":1,"method":"EXS","feasible":false}`), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Feasible || len(plan.Cores) != 0 {
		t.Fatalf("unexpected plan: %+v", plan)
	}
}

func TestSecondsToDuration(t *testing.T) {
	if secondsToDuration(1.5).Seconds() != 1.5 {
		t.Fatal("round trip failed")
	}
	if secondsToDuration(-1) != 0 || secondsToDuration(math.NaN()) != 0 {
		t.Fatal("invalid inputs should clamp to zero")
	}
}
