package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func maximizeBody(method string) string {
	return fmt.Sprintf(`{"platform":{"rows":2,"cols":1,"paper_levels":3},"tmax_c":65,"method":%q}`, method)
}

func decodeMaximize(t *testing.T, b []byte) MaximizeResponse {
	t.Helper()
	var mr MaximizeResponse
	if err := json.Unmarshal(b, &mr); err != nil {
		t.Fatalf("decoding response %s: %v", b, err)
	}
	return mr
}

// A cache hit must return the same plan bytes as the cold solve that
// populated it, and an independent cold solve (fresh server) must agree
// byte for byte too.
func TestServeMaximizeCacheHitBitIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	body := maximizeBody("AO")

	status, b1 := postJSON(t, ts.URL+"/v1/maximize", body)
	if status != 200 {
		t.Fatalf("cold solve: status %d: %s", status, b1)
	}
	r1 := decodeMaximize(t, b1)
	if r1.Cached {
		t.Fatal("first solve reported cached=true")
	}
	status, b2 := postJSON(t, ts.URL+"/v1/maximize", body)
	if status != 200 {
		t.Fatalf("cache hit: status %d: %s", status, b2)
	}
	r2 := decodeMaximize(t, b2)
	if !r2.Cached {
		t.Fatal("second solve missed the cache")
	}
	if !bytes.Equal(r1.Plan, r2.Plan) {
		t.Fatalf("cache hit differs from cold solve:\n%s\n%s", r1.Plan, r2.Plan)
	}

	_, ts2 := newTestServer(t)
	status, b3 := postJSON(t, ts2.URL+"/v1/maximize", body)
	if status != 200 {
		t.Fatalf("fresh server: status %d: %s", status, b3)
	}
	if r3 := decodeMaximize(t, b3); !bytes.Equal(r1.Plan, r3.Plan) {
		t.Fatalf("independent cold solve differs:\n%s\n%s", r1.Plan, r3.Plan)
	}

	// Spelling the defaults out must canonicalize to the same cache key.
	spelled := `{"platform":{"rows":2,"cols":1,"paper_levels":3,"ambient_c":35,"period_s":0.02},"tmax_c":65,"method":"ao","timeout_s":20}`
	status, b4 := postJSON(t, ts.URL+"/v1/maximize", spelled)
	if status != 200 {
		t.Fatalf("spelled-out request: status %d: %s", status, b4)
	}
	r4 := decodeMaximize(t, b4)
	if !r4.Cached || r4.Key != r1.Key {
		t.Fatalf("canonicalization failed: cached=%v key %s vs %s", r4.Cached, r4.Key, r1.Key)
	}
}

func TestServeMaximizeRejections(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"platform":`, 400},
		{"not json", `hello`, 400},
		{"unknown field", `{"platform":{"rows":2,"cols":1},"tmax":65,"method":"AO"}`, 400},
		{"zero rows", `{"platform":{"rows":0,"cols":1},"tmax_c":65,"method":"AO"}`, 400},
		{"oversized grid", `{"platform":{"rows":50,"cols":50},"tmax_c":65,"method":"AO"}`, 400},
		{"overflowing tmax", `{"platform":{"rows":2,"cols":1},"tmax_c":1e999,"method":"AO"}`, 400},
		{"tmax below ambient", `{"platform":{"rows":2,"cols":1},"tmax_c":10,"method":"AO"}`, 400},
		{"tmax as NaN string", `{"platform":{"rows":2,"cols":1},"tmax_c":"NaN","method":"AO"}`, 400},
		{"unknown method", `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"GREEDY"}`, 400},
		{"both level specs", `{"platform":{"rows":2,"cols":1,"paper_levels":3,"voltages":[0.6,1.3]},"tmax_c":65,"method":"AO"}`, 400},
		{"negative voltage", `{"platform":{"rows":2,"cols":1,"voltages":[-0.5,1.0]},"tmax_c":65,"method":"AO"}`, 400},
		{"negative timeout", `{"platform":{"rows":2,"cols":1},"tmax_c":65,"method":"AO","timeout_s":-1}`, 400},
		{"core scales mismatch", `{"platform":{"rows":2,"cols":1,"core_scales":[1,1,1]},"tmax_c":65,"method":"AO"}`, 400},
	}
	for _, tc := range cases {
		status, b := postJSON(t, ts.URL+"/v1/maximize", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.want, b)
		}
	}
	// Method not allowed on the route itself.
	resp, err := http.Get(ts.URL + "/v1/maximize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/maximize: status %d, want 405", resp.StatusCode)
	}
}

// A tiny per-request timeout must cancel the solver's search loops and
// still answer 200 — quickly, not after the full solve — with a plan
// tagged degraded: the anytime chain's best-so-far, or failing that the
// constant safe floor. The served plan must pass the independent
// verification oracle; a deadline is never an excuse for an unverified
// plan (or a useless 504).
func TestServeTimeoutCancelsSearch(t *testing.T) {
	// The small DefaultTimeout bounds the background stale-refresh this
	// test triggers below — the refresh degrades and is dropped instead
	// of running a full multi-second PCO solve after the test moves on.
	srv := NewServer(ServerConfig{DefaultTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	body := `{"platform":{"rows":3,"cols":3},"tmax_c":65,"method":"PCO","timeout_s":0.001}`
	start := time.Now()
	status, b := postJSON(t, ts.URL+"/v1/maximize", body)
	if status != 200 {
		t.Fatalf("status %d (want 200 degraded): %s", status, b)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timed-out request took %s — cancellation is not reaching the search loops", el)
	}
	mr := decodeMaximize(t, b)
	if !mr.Degraded || mr.DegradedReason == "" {
		t.Fatalf("deadline-truncated solve not tagged degraded: %s", b)
	}
	var plan Plan
	if err := json.Unmarshal(mr.Plan, &plan); err != nil {
		t.Fatalf("decoding degraded plan: %v", err)
	}
	if !plan.Degraded || !plan.Feasible || plan.Throughput <= 0 {
		t.Fatalf("degraded plan is not a usable fallback: degraded=%v feasible=%v tpt=%v",
			plan.Degraded, plan.Feasible, plan.Throughput)
	}
	// Re-verify the served plan against the oracle at its claimed Tmax.
	plat, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plat.Audit(&plan, 65)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("served degraded plan fails the verification oracle: %s", rep)
	}

	// The degraded entry is cached but always stale: a second hit serves
	// it immediately with stale:true while a background refresh runs.
	status, b = postJSON(t, ts.URL+"/v1/maximize", body)
	if status != 200 {
		t.Fatalf("stale hit: status %d: %s", status, b)
	}
	if mr2 := decodeMaximize(t, b); !mr2.Cached || !mr2.Stale || !mr2.Degraded {
		t.Fatalf("degraded cache hit not served stale-while-revalidate: %s", b)
	}
	srv.waitRefreshes()
	if st := srv.Stats(); st.Resilience.StaleServed < 1 || st.Resilience.DegradedServed < 2 || st.Resilience.Refreshes < 1 {
		t.Fatalf("resilience counters missed the degraded flow: %+v", st.Resilience)
	}
}

func TestServeSimulate(t *testing.T) {
	_, ts := newTestServer(t)
	status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("LNS"))
	if status != 200 {
		t.Fatalf("maximize: status %d: %s", status, b)
	}
	plan := decodeMaximize(t, b).Plan

	simBody := fmt.Sprintf(`{"platform":{"rows":2,"cols":1,"paper_levels":3},"plan":%s,"periods":2,"samples_per_period":16}`, plan)
	status, b = postJSON(t, ts.URL+"/v1/simulate", simBody)
	if status != 200 {
		t.Fatalf("simulate: status %d: %s", status, b)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.CoreTempC) != 2 || len(sr.TimeS) != 2*16+1 {
		t.Fatalf("trace shape: %d cores, %d samples", len(sr.CoreTempC), len(sr.TimeS))
	}
	if sr.MaxC <= 35 || sr.VerifiedPeakC <= 35 || sr.VerifiedPeakC > 66 {
		t.Fatalf("implausible temperatures: max %.2f, verified peak %.2f", sr.MaxC, sr.VerifiedPeakC)
	}

	// Plan/platform mismatch must be a 400, not a panic or a 500.
	status, b = postJSON(t, ts.URL+"/v1/simulate",
		fmt.Sprintf(`{"platform":{"rows":3,"cols":1,"paper_levels":3},"plan":%s}`, plan))
	if status != 400 {
		t.Fatalf("mismatched simulate: status %d: %s", status, b)
	}
	// Oversized traces are rejected up front.
	status, b = postJSON(t, ts.URL+"/v1/simulate",
		fmt.Sprintf(`{"platform":{"rows":2,"cols":1,"paper_levels":3},"plan":%s,"periods":100000,"samples_per_period":100000}`, plan))
	if status != 400 {
		t.Fatalf("oversized simulate: status %d: %s", status, b)
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	postJSON(t, ts.URL+"/v1/maximize", maximizeBody("LNS"))
	postJSON(t, ts.URL+"/v1/maximize", maximizeBody("LNS"))
	if status, b := postJSON(t, ts.URL+"/v1/maximize", `junk`); status != 400 {
		t.Fatalf("junk request: %d: %s", status, b)
	}

	var st ServerStats
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	ep := st.Requests["maximize"]
	if ep.Count != 3 || ep.Errors != 1 || ep.Latency.Count != 3 {
		t.Fatalf("maximize endpoint stats: %+v", ep)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge should be 0 at rest, got %d", st.InFlight)
	}
	// /metrics serves the same document.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	_ = srv
}

func TestServeShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t)
	// Prime one request so the server has seen traffic.
	if status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("LNS")); status != 200 {
		t.Fatalf("prime: %d: %s", status, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New solve requests are refused while draining/after drain.
	status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("LNS"))
	if status != 503 {
		t.Fatalf("post-shutdown request: status %d: %s", status, b)
	}
	// healthz reports the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
