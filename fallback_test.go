package thermosc

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// The fallback chain's terminal plan: constant, feasible, tagged, and
// pre-checked by the oracle — even under an expired deadline.
func TestSafeFloorPlan(t *testing.T) {
	plat, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := plat.SafeFloorPlan(60)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded || plan.DegradedReason != "safe-floor" {
		t.Fatalf("floor plan not tagged: degraded=%v reason=%q", plan.Degraded, plan.DegradedReason)
	}
	if plan.Method != MethodLNS || !plan.Feasible || plan.Throughput <= 0 || plan.M != 1 {
		t.Fatalf("floor plan degenerate: %+v", plan)
	}
	rep, err := plat.Audit(plan, 60)
	if err != nil || !rep.OK {
		t.Fatalf("floor plan fails its own oracle: %v %v", err, rep)
	}
}

// A complete solve passes through MaximizeResilient byte-identical to
// MaximizeContext — resilience must not perturb the deterministic path.
func TestMaximizeResilientCompletePassThrough(t *testing.T) {
	plat, err := New(2, 1, WithPaperLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := plat.MaximizeContext(context.Background(), MethodAO, 65, 0)
	if err != nil {
		t.Fatal(err)
	}
	resilient, err := plat.MaximizeResilient(context.Background(), MethodAO, 65, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resilient.Degraded {
		t.Fatalf("unpressured solve came back degraded: %q", resilient.DegradedReason)
	}
	direct.Elapsed, resilient.Elapsed = 0, 0
	db, _ := json.Marshal(direct)
	rb, _ := json.Marshal(resilient)
	if string(db) != string(rb) {
		t.Fatalf("resilient plan differs from the direct solve:\n%s\n%s", db, rb)
	}
}

// Under a deadline too short for any search, the chain still produces a
// verified plan — degraded best-so-far or the safe floor — never an
// error and never an unverified schedule.
func TestMaximizeResilientDeadlineFallsBack(t *testing.T) {
	plat, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both an expired context and a live-but-tiny deadline must land on a
	// valid plan.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	tiny, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	for name, ctx := range map[string]context.Context{"expired": expired, "tiny": tiny} {
		plan, err := plat.MaximizeResilient(ctx, MethodPCO, 65, 0)
		if err != nil {
			t.Fatalf("%s deadline: chain refused: %v", name, err)
		}
		if !plan.Degraded || !plan.Feasible || plan.Throughput <= 0 {
			t.Fatalf("%s deadline: fallback plan unusable: degraded=%v feasible=%v tpt=%v",
				name, plan.Degraded, plan.Feasible, plan.Throughput)
		}
		rep, err := plat.Audit(plan, 65)
		if err != nil || !rep.OK {
			t.Fatalf("%s deadline: served plan fails the oracle: %v %v", name, err, rep)
		}
	}
}

// A platform that cannot meet the threshold at all refuses with the
// typed ErrInfeasible — from every link of the chain.
func TestMaximizeResilientInfeasibleRefusal(t *testing.T) {
	plat, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tmax := plat.AmbientC() + 0.01 // no mode can stay this cool
	for _, m := range []Method{MethodLNS, MethodAO} {
		plan, err := plat.MaximizeResilient(context.Background(), m, tmax, 0)
		if err == nil {
			t.Fatalf("%s: impossible threshold produced a plan (tpt %v)", m, plan.Throughput)
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: refusal %v is not typed ErrInfeasible", m, err)
		}
	}
	if _, err := plat.SafeFloorPlan(tmax); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("floor refusal not typed: %v", err)
	}
}
