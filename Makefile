# thermosc — common development targets. Everything is stdlib-only Go;
# no tools beyond the Go toolchain are required.

GO ?= go
# Per-target fuzzing time; CI's smoke job overrides this to 10s.
FUZZTIME ?= 30s
# Minimum total statement coverage (percent) enforced by cover-check.
COVER_MIN ?= 83

.PHONY: all build vet lint test test-race bench bench-json experiments \
        fuzz fuzz-smoke serve-smoke serve-chaos cluster-soak cluster-churn \
        rig-soak rig-soak-starved verify-diff cover cover-check ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static hygiene: gofmt (fails on any unformatted file), go vet, and —
# when installed — staticcheck. The container has no network, so
# staticcheck is soft-gated locally; the CI lint job installs it and gets
# the full pass.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed — skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report + three-dimension regression gate
# (ns/op, allocs/op, bytes/op) against the checked-in baseline, plus a
# before/after comparison table for the CI artifact (see docs/PERF.md).
# The parallel-speedup floor only binds when GOMAXPROCS > 1 — CI's bench
# job runs on a multi-core runner and sets MIN_PAR_SPEEDUP.
MIN_PAR_SPEEDUP ?= 0
bench-json:
	$(GO) run ./cmd/thermosc-bench -out BENCH_ao.ci.json -baseline BENCH_ao.json \
		-min-par-speedup $(MIN_PAR_SPEEDUP) -compare-out bench_compare.md

# Regenerate every paper table/figure (text).
experiments:
	$(GO) run ./cmd/thermosc-experiments | tee docs/experiments_full_output.txt

# Short fuzzing passes over the parsers and transforms.
fuzz:
	$(GO) test ./internal/schedule -fuzz FuzzShiftRotate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schedule -fuzz FuzzMOscillateInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/floorplan -fuzz FuzzParseFLP -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rig -fuzz FuzzRigScenario -fuzztime $(FUZZTIME)
	$(GO) test . -fuzz FuzzPlanUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test . -fuzz FuzzServeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -fuzz FuzzPlanStoreSync -fuzztime $(FUZZTIME)

# Quick CI smoke pass over the same fuzz targets.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# End-to-end smoke of the planning daemon: build thermosc-serve, run it
# on an ephemeral port, solve once per method, and diff the plans against
# testdata/serve_golden. Regenerate the goldens after an intentional
# solver change by appending -update-serve-golden.
serve-smoke:
	THERMOSC_SERVE_E2E=1 $(GO) test -run TestServeE2EGolden -count=1 -v .

# PlanStore backends the chaos and soak suites run once each against
# (mem = replicated in-memory store, file = crash-safe append-only log).
STORE_BACKENDS ?= mem file

# Chaos storm against the planning daemon, race-enabled, once per plan
# store backend: concurrent requests under tiny deadlines with seeded
# random solver panics, through the request-coalescing batch scheduler.
# Zero daemon crashes allowed; every 200 body must pass the verification
# oracle. Each backend's final /v1/stats snapshot lands in
# serve_chaos_stats_<backend>.json.
CHAOS_REQUESTS ?= 400
serve-chaos:
	@for b in $(STORE_BACKENDS); do \
		echo "== serve-chaos [store=$$b] =="; \
		THERMOSC_CHAOS_STORE=$$b \
		THERMOSC_CHAOS_REQUESTS=$(CHAOS_REQUESTS) \
		THERMOSC_CHAOS_STATS=$(CURDIR)/serve_chaos_stats_$$b.json \
		$(GO) test -race -run TestServeChaos -count=1 -v . || exit 1; \
	done

# Fleet soak, race-enabled, once per plan store backend: a seed-pinned
# zipf workload through a 3-replica in-process cluster. Exact request
# accounting, zero transport errors, byte-identical plans per canonical
# key across every replica, and post-load anti-entropy convergence; each
# backend's load report lands in cluster_soak_report_<backend>.json. CI
# raises CLUSTER_REQUESTS to 100000.
CLUSTER_REQUESTS ?= 2500
cluster-soak:
	@for b in $(STORE_BACKENDS); do \
		echo "== cluster-soak [store=$$b] =="; \
		THERMOSC_CLUSTER_STORE=$$b \
		THERMOSC_CLUSTER_REQUESTS=$(CLUSTER_REQUESTS) \
		THERMOSC_CLUSTER_REPORT=$(CURDIR)/cluster_soak_report_$$b.json \
		$(GO) test -race -run TestClusterSoak -count=1 -v . || exit 1; \
	done

# Churn chaos battery, race-enabled, once per plan store backend: the
# self-healing suite (failure detection, health-aware re-routing, hinted
# handoff, drain) plus a seed-pinned kill/restart schedule and a rolling
# restart of every node under live load. Exact accounting, no 5xx to
# clients, bounded errors confined to kill windows, and post-heal
# byte-identical convergence; each backend's phase-split load report and
# per-peer health timeline land in cluster_churn_{report,timeline}_<b>.json.
CHURN_REQUESTS ?= 2000
cluster-churn:
	@for b in $(STORE_BACKENDS); do \
		echo "== cluster-churn [store=$$b] =="; \
		THERMOSC_CLUSTER_STORE=$$b \
		THERMOSC_CHURN_REQUESTS=$(CHURN_REQUESTS) \
		THERMOSC_CHURN_REPORT=$(CURDIR)/cluster_churn_report_$$b.json \
		THERMOSC_CHURN_TIMELINE=$(CURDIR)/cluster_churn_timeline_$$b.json \
		$(GO) test -race -run 'TestClusterChurnSoak|TestClusterRollingRestartUnderLoad|TestClusterDetectorReroutesAroundDeadPeer|TestClusterHintedHandoffReplay|TestClusterHintOverflowBounded|TestClusterDrainAndRejoin|TestClusterAsymmetricPartition|TestClusterFlappingPeer|TestClusterFleetStatusBoundedByHungPeers' -count=1 -v . || exit 1; \
	done

# Closed-loop soak: 20 seed-pinned fault scenarios under the guarded AO
# plan, each replayed twice. Exits nonzero on ANY thermal violation
# (true peak above Tmax + guard band) or nondeterministic trace; the JSON
# report lands in rig_soak.json for inspection.
RIG_SOAK_N ?= 20
RIG_SOAK_SEED ?= 1
rig-soak:
	$(GO) run ./cmd/thermosc-rig soak -n $(RIG_SOAK_N) -seed $(RIG_SOAK_SEED) > rig_soak.json
	@echo "rig-soak: $(RIG_SOAK_N) scenarios pass (report in rig_soak.json)"

# Same soak with the planner deadline-starved mid-scenario: at the
# horizon midpoint every scenario swaps to a replan solved under
# PLAN_BUDGET (degraded best-so-far or the constant safe floor). The
# guard band must hold regardless — degraded planning may cost
# throughput, never safety.
PLAN_BUDGET ?= 1ms
rig-soak-starved:
	$(GO) run ./cmd/thermosc-rig soak -n $(RIG_SOAK_N) -seed $(RIG_SOAK_SEED) \
		-plan-budget $(PLAN_BUDGET) > rig_soak_starved.json
	@echo "rig-soak-starved: $(RIG_SOAK_N) scenarios hold Tmax+guard under a $(PLAN_BUDGET) plan budget (report in rig_soak_starved.json)"

# Differential verification: solve N seeded random platforms with
# AO/PCO/EXS, re-check every plan against the independent oracle
# (internal/verify), then require K seeded mutations of verified plans to
# all be flagged. Exits nonzero on any divergence or missed mutation.
VERIFY_N ?= 50
VERIFY_SEED ?= 1
VERIFY_MUT ?= 20
verify-diff:
	$(GO) run ./cmd/thermosc-verify -sweep $(VERIFY_N) -seed $(VERIFY_SEED) -mutations $(VERIFY_MUT)

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

# Fail if total statement coverage drops below COVER_MIN percent.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	pass=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN{print (t >= m) ? 1 : 0}'); \
	if [ "$$pass" -ne 1 ]; then \
		echo "coverage $$total% is below the $(COVER_MIN)% gate"; exit 1; \
	fi; \
	echo "coverage $$total% >= $(COVER_MIN)% gate"

# Everything CI runs, in one target, for local pre-push verification.
ci: build lint test test-race fuzz-smoke serve-smoke serve-chaos \
    cluster-soak cluster-churn rig-soak rig-soak-starved verify-diff \
    cover-check bench-json

clean:
	rm -f cover.out test_output.txt bench_output.txt BENCH_ao.ci.json \
	      bench_compare.md rig_soak.json rig_soak_starved.json \
	      serve_chaos_stats_*.json cluster_soak_report_*.json \
	      cluster_churn_report_*.json cluster_churn_timeline_*.json
