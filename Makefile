# thermosc — common development targets. Everything is stdlib-only Go;
# no tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet test test-race bench experiments figures fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (text) and the SVG figures.
experiments:
	$(GO) run ./cmd/thermosc-experiments | tee docs/experiments_full_output.txt

figures:
	$(GO) run ./cmd/thermosc-figures -dir docs/figures

# Short fuzzing passes over the parsers and transforms.
fuzz:
	$(GO) test ./internal/schedule -fuzz FuzzShiftRotate -fuzztime 30s
	$(GO) test ./internal/schedule -fuzz FuzzMOscillateInvariants -fuzztime 30s
	$(GO) test ./internal/floorplan -fuzz FuzzParseFLP -fuzztime 30s
	$(GO) test . -fuzz FuzzPlanUnmarshal -fuzztime 30s

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
