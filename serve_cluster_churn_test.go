package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"thermosc/internal/cluster"
)

// The self-healing battery: failure detection driving health-aware
// routing, hinted handoff replaying missed writes into a restarted
// replica, graceful drain, flapping peers, an asymmetric partition, a
// rolling restart of every node under load, and the seed-pinned churn
// soak the CI job runs with -race.

// healthKnobsMutate pre-sets fast detector thresholds on every replica
// (startReplica preserves them while overriding the topology).
func healthKnobsMutate(suspect, dead, recover int) func(i int, cfg *ServerConfig) {
	return func(i int, cfg *ServerConfig) {
		cfg.Cluster = &ClusterConfig{SuspectAfter: suspect, DeadAfter: dead, RecoverAfter: recover}
	}
}

// probeUntil drives dedicated probes from src against peer until the
// detector reaches wantState (bounded).
func probeUntil(t *testing.T, src *Server, peer, wantState string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if src.cluster.health.State(peer) == wantState {
			return
		}
		src.cluster.probeOne(ctx, peer)
	}
	if got := src.cluster.health.State(peer); got != wantState {
		t.Fatalf("peer %s stuck in state %q after 20 probes, want %q", peer, got, wantState)
	}
}

// coldBodyOwnedBy finds a request body owned by the given replica that
// no replica has solved yet (distinct from bodiesByOwner's bodies).
func coldBodyOwnedBy(t *testing.T, tc *testCluster, owner string) string {
	t.Helper()
	ring := tc.srvs[0].cluster.ring
	for dt := 0; dt < 400; dt++ {
		b := clusterBody(3, 3, 3, 61+float64(dt)*0.0625)
		if ring.Owner(planKeyFor(t, b)) == owner {
			return b
		}
	}
	t.Fatalf("no probe body owned by %s", owner)
	return ""
}

// Killing a replica walks its detector entry alive → suspect → dead on
// consecutive probe failures; once down, the healthy ring view skips it
// so requests for its keys are answered WITHOUT burning a forward
// attempt, and the health surfaces on /v1/cluster and /v1/stats.
func TestClusterDetectorReroutesAroundDeadPeer(t *testing.T) {
	tc := startTestCluster(t, 3, 0, healthKnobsMutate(1, 2, 1))
	victim := 1
	victimURL := tc.urls[victim]
	tc.stopReplica(victim)

	// First failed probe: suspect (SuspectAfter=1) — already down for
	// routing. Second: dead.
	tc.srvs[0].cluster.probeOne(context.Background(), victimURL)
	if got := tc.srvs[0].cluster.health.State(victimURL); got != cluster.StateSuspect {
		t.Fatalf("after 1 failed probe: %q, want suspect", got)
	}
	if !tc.srvs[0].cluster.downForRouting(victimURL) {
		t.Fatal("suspect peer not routed around")
	}
	probeUntil(t, tc.srvs[0], victimURL, cluster.StateDead)

	// The live view hands the victim's keys to a healthy node — never the
	// victim — and agrees with removing the victim from the ring.
	body := coldBodyOwnedBy(t, tc, victimURL)
	key := planKeyFor(t, body)
	reduced := tc.srvs[0].cluster.ring.WithoutNode(victimURL)
	if got := tc.srvs[0].cluster.healthyOwner(key); got == victimURL || got != reduced.Owner(key) {
		t.Fatalf("healthyOwner %q, want removal-ring owner %q (not the victim)", got, reduced.Owner(key))
	}

	// Serving a victim-owned key costs no forward failure: the detector
	// already moved ownership, so there is no doomed proxy attempt.
	fails := tc.srvs[0].cluster.forwardFails.Load()
	status, mr := postMaximize(t, tc.urls[0], body)
	if status != http.StatusOK {
		t.Fatalf("victim-owned request: HTTP %d", status)
	}
	if mr.Source == serveSourceForwarded && tc.srvs[0].cluster.health.Down(reduced.Owner(key)) {
		t.Fatalf("request forwarded to a down successor")
	}
	if got := tc.srvs[0].cluster.forwardFails.Load(); got != fails {
		t.Fatalf("forward failures %d → %d: detection did not pre-empt the doomed forward", fails, got)
	}

	// The detector's view surfaces everywhere observability reads it.
	st := getStats(t, tc.urls[0])
	if st.Cluster.PeersDead != 1 || st.Cluster.PeersAlive != 1 || st.Cluster.ProbesSent == 0 || st.Cluster.ProbeFailures == 0 {
		t.Fatalf("stats detector block: %+v", st.Cluster)
	}
	resp, err := http.Get(tc.urls[0] + "/v1/cluster?timeline=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	var victimPS *PeerStatus
	for i := range cs.Peers {
		if cs.Peers[i].URL == victimURL {
			victimPS = &cs.Peers[i]
		}
	}
	if victimPS == nil || victimPS.Health != cluster.StateDead || victimPS.HealthTransitions < 2 || victimPS.LastProbeUnixS == 0 {
		t.Fatalf("victim peer status: %+v", victimPS)
	}
	if len(cs.Timeline) < 2 || cs.Timeline[len(cs.Timeline)-1].To != cluster.StateDead {
		t.Fatalf("timeline: %+v", cs.Timeline)
	}
}

// Writes for a dead owner queue as hints and replay the moment the
// detector re-admits it — with anti-entropy OFF, so replay alone must
// make the restarted replica byte-identical for the missed keys, before
// any gossip round.
func TestClusterHintedHandoffReplay(t *testing.T) {
	mutate := healthKnobsMutate(1, 2, 2) // probation: 2 successes to rejoin
	tc := startTestCluster(t, 3, 0, mutate)
	victim := 2
	victimURL := tc.urls[victim]

	tc.stopReplica(victim)
	probeUntil(t, tc.srvs[0], victimURL, cluster.StateDead)

	// Solve three victim-owned keys through replica 0. Each solved plan
	// is stored locally and its key queued as a hint for the dead owner.
	var bodies []string
	refPlans := make(map[string][]byte)
	ring := tc.srvs[0].cluster.ring
	for dt := 0; dt < 600 && len(bodies) < 3; dt++ {
		b := clusterBody(3, 3, 3, 61+float64(dt)*0.0625)
		if ring.Owner(planKeyFor(t, b)) == victimURL {
			bodies = append(bodies, b)
		}
	}
	if len(bodies) < 3 {
		t.Fatal("not enough victim-owned bodies")
	}
	for _, b := range bodies {
		status, mr := postMaximize(t, tc.urls[0], b)
		if status != http.StatusOK {
			t.Fatalf("solve with owner down: HTTP %d", status)
		}
		refPlans[b] = mr.Plan
	}
	if got := tc.srvs[0].cluster.hints.Pending(victimURL); got != len(bodies) {
		t.Fatalf("%d hints pending for the dead owner, want %d", got, len(bodies))
	}
	// Pending hints surface per peer on /v1/cluster.
	resp, err := http.Get(tc.urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterStatus
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range cs.Peers {
		if p.URL == victimURL {
			found = true
			if p.HintsPending != len(bodies) {
				t.Fatalf("peer status hints_pending %d, want %d", p.HintsPending, len(bodies))
			}
		}
	}
	if !found {
		t.Fatal("victim missing from peer status")
	}

	// Restart the victim cold. Probation: the first successful probe must
	// NOT replay (the peer could be flapping); the second re-admits and
	// replays synchronously.
	cfg := ServerConfig{}
	mutate(victim, &cfg)
	tc.restartReplica(t, victim, cfg, 0)
	if got := tc.srvs[victim].cluster.store.Len(); got != 0 {
		t.Fatalf("restarted replica store has %d entries before replay", got)
	}
	tc.srvs[0].cluster.probeOne(context.Background(), victimURL)
	if st := tc.srvs[0].cluster.health.Health(victimURL); !st.Recovering {
		t.Fatalf("victim not in probation after first good probe: %+v", st)
	}
	if got := tc.srvs[victim].cluster.store.Len(); got != 0 {
		t.Fatalf("replay fired during probation: %d entries", got)
	}
	tc.srvs[0].cluster.probeOne(context.Background(), victimURL)
	if got := tc.srvs[0].cluster.health.State(victimURL); got != cluster.StateAlive {
		t.Fatalf("victim state %q after probation, want alive", got)
	}

	// Replay (not anti-entropy — SyncInterval is 0 and no syncs ran)
	// delivered every missed entry, byte-identical.
	if got := tc.srvs[victim].cluster.store.Len(); got != len(bodies) {
		t.Fatalf("replayed store has %d entries, want %d", got, len(bodies))
	}
	if got := tc.srvs[0].cluster.hints.Pending(victimURL); got != 0 {
		t.Fatalf("%d hints still pending after replay", got)
	}
	hs := tc.srvs[0].cluster.hints.Stats()
	if hs.Replayed != uint64(len(bodies)) || hs.Backlog != 0 {
		t.Fatalf("hint stats after replay: %+v", hs)
	}
	for body, want := range refPlans {
		status, mr := postMaximize(t, tc.urls[victim], body)
		if status != http.StatusOK || !mr.Cached {
			t.Fatalf("replayed serve: HTTP %d cached=%v, want a store hit", status, mr.Cached)
		}
		if !bytes.Equal(mr.Plan, want) {
			t.Fatal("replayed plan differs from the plan served while the owner was down")
		}
	}
}

// The hint queue honors its cap under a down owner: overflow drops the
// oldest keys, counted, and the store itself still holds every plan.
func TestClusterHintOverflowBounded(t *testing.T) {
	mutate := func(i int, cfg *ServerConfig) {
		cfg.Cluster = &ClusterConfig{SuspectAfter: 1, DeadAfter: 1, RecoverAfter: 1, HintCap: 2}
	}
	tc := startTestCluster(t, 3, 0, mutate)
	victim := 1
	victimURL := tc.urls[victim]
	tc.stopReplica(victim)
	probeUntil(t, tc.srvs[0], victimURL, cluster.StateDead)

	solved := 0
	ring := tc.srvs[0].cluster.ring
	for dt := 0; dt < 600 && solved < 4; dt++ {
		b := clusterBody(3, 3, 3, 61+float64(dt)*0.0625)
		if ring.Owner(planKeyFor(t, b)) != victimURL {
			continue
		}
		if status, _ := postMaximize(t, tc.urls[0], b); status != http.StatusOK {
			t.Fatalf("solve: HTTP %d", status)
		}
		solved++
	}
	if solved < 4 {
		t.Fatal("not enough victim-owned solves")
	}
	hs := tc.srvs[0].cluster.hints.Stats()
	if tc.srvs[0].cluster.hints.Pending(victimURL) != 2 || hs.Dropped != uint64(solved-2) {
		t.Fatalf("hint bound not enforced: pending %d, stats %+v",
			tc.srvs[0].cluster.hints.Pending(victimURL), hs)
	}
	st := getStats(t, tc.urls[0])
	if st.Cluster.HintsDropped != hs.Dropped || st.Cluster.HintBacklog != 2 {
		t.Fatalf("stats hint block: %+v", st.Cluster)
	}
}

// POST /v1/cluster/drain: the replica reports draining on /healthz,
// pushes its owned entries to their live-view successors, keeps
// answering stragglers, and ?off=1 rejoins.
func TestClusterDrainAndRejoin(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	for owner, body := range byOwner {
		if status, _ := postMaximize(t, owner, body); status != http.StatusOK {
			t.Fatalf("seed solve on %s: HTTP %d", owner, status)
		}
	}

	drained := tc.urls[0]
	ownedBody := byOwner[drained]
	ownedKey := planKeyFor(t, ownedBody)
	resp, err := http.Post(drained+"/v1/cluster/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Draining     bool `json:"draining"`
		Pushed       int  `json:"pushed"`
		Targets      int  `json:"targets"`
		PushFailures int  `json:"push_failures"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: HTTP %d, %v", resp.StatusCode, err)
	}
	if !out.Draining || out.Pushed < 1 || out.PushFailures != 0 {
		t.Fatalf("drain result %+v, want a clean push of >=1 owned entries", out)
	}

	// The owned entry landed exactly where the drained replica's live
	// view re-routes it.
	successor := tc.srvs[0].cluster.healthyOwner(ownedKey)
	if successor == drained {
		t.Fatal("draining replica still owns its key in its own live view")
	}
	var si int
	for i, u := range tc.urls {
		if u == successor {
			si = i
		}
	}
	if _, ok := tc.srvs[si].cluster.store.Get(ownedKey); !ok {
		t.Fatalf("successor %s lacks the pushed entry", successor)
	}

	// /healthz flips to 503 "draining" — what peer probes key off — but
	// stragglers are still answered.
	hz, err := http.Get(drained + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzBody struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(hz.Body).Decode(&hzBody)
	hz.Body.Close()
	if err != nil || hz.StatusCode != http.StatusServiceUnavailable || hzBody.Status != "draining" {
		t.Fatalf("draining healthz: HTTP %d %+v", hz.StatusCode, hzBody)
	}
	if status, _ := postMaximize(t, drained, ownedBody); status != http.StatusOK {
		t.Fatalf("straggler during drain: HTTP %d", status)
	}
	st := getStats(t, drained)
	if !st.Cluster.Draining || !st.Resilience.Draining {
		t.Fatalf("drain not surfaced in stats: cluster=%v resilience=%v", st.Cluster.Draining, st.Resilience.Draining)
	}
	// A peer probing the draining replica marks it down and routes
	// around it.
	tc.srvs[1].cluster.probeOne(context.Background(), drained)
	tc.srvs[1].cluster.probeOne(context.Background(), drained)
	if !tc.srvs[1].cluster.health.Down(drained) {
		t.Fatal("peer probes did not mark the draining replica down")
	}

	// Rejoin: ?off=1 restores /healthz and the live view.
	offResp, err := http.Post(drained+"/v1/cluster/drain?off=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	offResp.Body.Close()
	hz2, err := http.Get(drained + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz2.Body.Close()
	if hz2.StatusCode != http.StatusOK {
		t.Fatalf("post-rejoin healthz: HTTP %d", hz2.StatusCode)
	}
	if got := tc.srvs[0].cluster.healthyOwner(ownedKey); got != drained {
		t.Fatalf("rejoined replica does not own its key: %q", got)
	}
}

// An asymmetric partition: B rejects A's syncs while B's own contacts
// keep working. A marks B down from the piggybacked gossip failures and
// routes around it; healing re-admits B through probation and the fleet
// converges.
func TestClusterAsymmetricPartition(t *testing.T) {
	tc := startTestCluster(t, 3, 0, healthKnobsMutate(1, 2, 2))
	a, b := 0, 1
	bURL, aURL := tc.urls[b], tc.urls[a]
	byOwner := bodiesByOwner(t, tc)
	if status, _ := postMaximize(t, aURL, byOwner[aURL]); status != http.StatusOK {
		t.Fatal("seed solve failed")
	}

	// B rejects inbound sync: A's gossip rounds against B fail, and each
	// failure is a detector observation (the piggyback path — no
	// dedicated probes are running).
	tc.srvs[b].cluster.rejectSync.Store(true)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := tc.srvs[a].SyncPeer(ctx, bURL); err == nil {
			t.Fatal("sync through the partition succeeded")
		}
	}
	if got := tc.srvs[a].cluster.health.State(bURL); got != cluster.StateDead {
		t.Fatalf("A's view of B after 2 failed gossips: %q, want dead", got)
	}
	// The asymmetry: B still reaches A fine and considers it alive.
	if err := tc.srvs[b].SyncPeer(ctx, aURL); err != nil {
		t.Fatalf("B→A sync failed: %v", err)
	}
	if got := tc.srvs[b].cluster.health.State(aURL); got != cluster.StateAlive {
		t.Fatalf("B's view of A: %q, want alive", got)
	}
	// A routes B-owned keys elsewhere while partitioned.
	bBody := coldBodyOwnedBy(t, tc, bURL)
	if got := tc.srvs[a].cluster.healthyOwner(planKeyFor(t, bBody)); got == bURL {
		t.Fatal("A still routes to the partitioned peer")
	}
	if status, _ := postMaximize(t, aURL, bBody); status != http.StatusOK {
		t.Fatalf("B-owned request during partition: HTTP %d", status)
	}
	if tc.srvs[a].cluster.hints.Pending(bURL) == 0 {
		t.Fatal("no hint queued for the partitioned owner")
	}

	// Heal: successful gossip rounds walk B through probation back to
	// alive, replaying the hints.
	tc.srvs[b].cluster.rejectSync.Store(false)
	for i := 0; i < 2; i++ {
		if err := tc.srvs[a].SyncPeer(ctx, bURL); err != nil {
			t.Fatalf("post-heal sync %d: %v", i, err)
		}
	}
	if got := tc.srvs[a].cluster.health.State(bURL); got != cluster.StateAlive {
		t.Fatalf("B not re-admitted after healing: %q", got)
	}
	if got := tc.srvs[a].cluster.hints.Pending(bURL); got != 0 {
		t.Fatalf("%d hints still pending after re-admission", got)
	}
	if _, ok := tc.srvs[b].cluster.store.Get(planKeyFor(t, bBody)); !ok {
		t.Fatal("hint replay did not deliver the missed write to B")
	}
	tc.syncAll(t)
	if !tc.converged() {
		t.Fatal("fleet did not converge after healing")
	}
}

// A flapping peer cycles dead→alive repeatedly; every cycle is recorded
// on the timeline, replays cleanly, and the fleet stays consistent.
func TestClusterFlappingPeer(t *testing.T) {
	mutate := healthKnobsMutate(1, 1, 1)
	tc := startTestCluster(t, 3, 0, mutate)
	flapper := 2
	fURL := tc.urls[flapper]
	ring := tc.srvs[0].cluster.ring

	solved := make(map[string][]byte)
	dt := 0
	nextFlapperBody := func() string {
		for ; dt < 2000; dt++ {
			b := clusterBody(3, 3, 3, 61+float64(dt)*0.0625)
			if _, used := solved[b]; !used && ring.Owner(planKeyFor(t, b)) == fURL {
				dt++
				return b
			}
		}
		t.Fatal("ran out of flapper-owned bodies")
		return ""
	}

	for cycle := 0; cycle < 3; cycle++ {
		tc.stopReplica(flapper)
		probeUntil(t, tc.srvs[0], fURL, cluster.StateDead)
		// A write misses the dead flapper each cycle.
		b := nextFlapperBody()
		status, mr := postMaximize(t, tc.urls[0], b)
		if status != http.StatusOK {
			t.Fatalf("cycle %d solve: HTTP %d", cycle, status)
		}
		solved[b] = mr.Plan

		cfg := ServerConfig{}
		mutate(flapper, &cfg)
		tc.restartReplica(t, flapper, cfg, 0)
		probeUntil(t, tc.srvs[0], fURL, cluster.StateAlive)
		if got := tc.srvs[0].cluster.hints.Pending(fURL); got != 0 {
			t.Fatalf("cycle %d: %d hints unplayed after recovery", cycle, got)
		}
	}
	// Every cycle's missed write reached the flapper via replay — its
	// CURRENT store holds the latest cycle's key (earlier incarnations
	// died with theirs; anti-entropy is their backstop, exercised next).
	h := tc.srvs[0].cluster.health.Health(fURL)
	if h.Transitions < 6 {
		t.Fatalf("flapper logged %d transitions, want >=6 (3 full cycles)", h.Transitions)
	}
	tc.syncAll(t)
	for b, want := range solved {
		status, mr := postMaximize(t, fURL, b)
		if status != http.StatusOK || !bytes.Equal(mr.Plan, want) {
			t.Fatalf("flapper serve after heal: HTTP %d, bytes equal=%v", status, bytes.Equal(mr.Plan, want))
		}
	}
	sumInvariant(t, tc)
}

// ?fleet=1 must be bounded by the slowest single peer, not the sum: a
// fleet status call against three hung peers returns within one poll
// deadline because the polls fan out concurrently.
func TestClusterFleetStatusBoundedByHungPeers(t *testing.T) {
	hung := make([]*httptest.Server, 3)
	peerURLs := make([]string, 3)
	for i := range hung {
		hung[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select { // hang until the poller gives up
			case <-r.Context().Done():
			case <-time.After(30 * time.Second):
			}
		}))
		peerURLs[i] = hung[i].URL
		defer hung[i].Close()
	}
	srv := NewServer(ServerConfig{Cluster: &ClusterConfig{Self: "http://self.invalid", Peers: peerURLs}})
	defer srv.Shutdown(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster?fleet=1", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet status: HTTP %d", rec.Code)
	}
	// Three sequential polls would take 3×fleetStatsTimeout; concurrent
	// fan-out keeps it near one.
	if elapsed > fleetStatsTimeout+2*time.Second {
		t.Fatalf("fleet status took %v with hung peers (sequential polling?)", elapsed)
	}
	var st ClusterStatus
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fleet == nil || st.Fleet.Reachable != 1 || len(st.Fleet.Unreachable) != 3 {
		t.Fatalf("fleet block: %+v", st.Fleet)
	}
}

// A rolling restart of EVERY node under live load: the fleet keeps
// serving, accounting stays exact, no 5xx ever reaches a client, and
// the healed fleet converges byte-identically.
func TestClusterRollingRestartUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("rolling restart battery is not a -short test")
	}
	mutate := func(i int, cfg *ServerConfig) {
		cfg.Cluster = &ClusterConfig{
			ProbeInterval: 25 * time.Millisecond,
			SuspectAfter:  1, DeadAfter: 2, RecoverAfter: 1,
		}
	}
	tc := startTestCluster(t, 3, 100*time.Millisecond, mutate)

	loadCfg := cluster.LoadConfig{
		Targets:  tc.urls,
		Requests: 900,
		RateHz:   300,
		Seed:     17,
		// Small platforms + wide deadlines: every solve is fast even under
		// -race, so errors can only be churn-induced transport failures.
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	}
	sched := loadCfg.Schedule()
	runDur := sched[len(sched)-1]
	events := cluster.RollingRestartSchedule(17, 3, runDur)
	loadCfg.Phases = cluster.PhasesFor(events)

	var report *cluster.LoadReport
	var loadErr error
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	go func() {
		defer wg.Done()
		report, loadErr = cluster.RunLoad(context.Background(), loadCfg)
	}()
	for _, ev := range events {
		if wait := ev.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		switch ev.Kind {
		case cluster.ChurnKill:
			tc.stopReplica(ev.Replica)
		case cluster.ChurnRestart:
			cfg := ServerConfig{}
			mutate(ev.Replica, &cfg)
			tc.restartReplica(t, ev.Replica, cfg, 100*time.Millisecond)
		}
	}
	wg.Wait()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	t.Logf("rolling restart: %d requests → %d served, %d shed, %d errors; statuses %v",
		report.Requests, report.Served, report.Shed, report.Errors, report.ByStatus)

	if sum := report.Served + report.Infeasible + report.Shed + report.Errors; sum != report.Requests {
		t.Fatalf("accounting drift: buckets sum to %d of %d", sum, report.Requests)
	}
	for status := range report.ByStatus {
		switch status {
		case "200", "422", "429", "transport_error":
		default:
			t.Fatalf("client saw status %q during the rolling restart: %v", status, report.ByStatus)
		}
	}
	// Errors are bounded to the victims' downtime: at most the requests
	// the generator aimed directly at a dead replica plus boundary
	// in-flight casualties — far under a third of the run.
	if report.Errors > report.Requests/3 {
		t.Fatalf("%d of %d requests errored — churn was not absorbed", report.Errors, report.Requests)
	}
	if report.Served == 0 || len(report.PlanMismatches) > 0 {
		t.Fatalf("served %d, mismatches %v", report.Served, report.PlanMismatches)
	}
	if len(report.Phases) != len(events)+1 {
		t.Fatalf("report has %d phases, want %d", len(report.Phases), len(events)+1)
	}

	// Post-heal: every replica answers, digests converge.
	tc.syncAll(t)
	for _, body := range bodiesByOwner(t, tc) {
		var ref []byte
		for i, url := range tc.urls {
			status, mr := postMaximize(t, url, body)
			if status != http.StatusOK {
				t.Fatalf("post-heal probe on replica %d: HTTP %d", i, status)
			}
			if ref == nil {
				ref = mr.Plan
			} else if !bytes.Equal(ref, mr.Plan) {
				t.Fatalf("replica %d plan diverges post-heal", i)
			}
		}
	}
	sumInvariant(t, tc)
}

// TestClusterChurnSoak is the flagship chaos battery CI runs with -race
// against both store backends: a seed-pinned kill/restart schedule under
// sustained zipf load, with phase-split accounting and the per-peer
// health timeline uploaded as artifacts.
//
// THERMOSC_CHURN_REQUESTS scales the request count;
// THERMOSC_CHURN_REPORT / THERMOSC_CHURN_TIMELINE name artifact files;
// THERMOSC_CLUSTER_STORE selects the PlanStore backend (mem or file).
func TestClusterChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak is not a -short test")
	}
	requests := 1200
	if v := os.Getenv("THERMOSC_CHURN_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad THERMOSC_CHURN_REQUESTS %q", v)
		}
		requests = n
	}
	rate := float64(requests) / 15
	if rate < 200 {
		rate = 200
	}
	if rate > 3000 {
		rate = 3000
	}

	backendMutate := storeBackendMutate(t)
	mutate := func(i int, cfg *ServerConfig) {
		if backendMutate != nil {
			backendMutate(i, cfg)
		}
		if cfg.Cluster == nil {
			cfg.Cluster = &ClusterConfig{}
		}
		cfg.Cluster.ProbeInterval = 25 * time.Millisecond
		cfg.Cluster.SuspectAfter = 1
		cfg.Cluster.DeadAfter = 2
		cfg.Cluster.RecoverAfter = 1
	}
	tc := startTestCluster(t, 3, 100*time.Millisecond, mutate)

	loadCfg := cluster.LoadConfig{
		Targets:     tc.urls,
		Requests:    requests,
		RateHz:      rate,
		Curve:       cluster.CurvePoisson,
		Seed:        1,
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	}
	sched := loadCfg.Schedule()
	runDur := sched[len(sched)-1]
	cycles := 3
	events := cluster.ChurnSchedule(1, 3, cycles, runDur)
	loadCfg.Phases = cluster.PhasesFor(events)
	for _, ev := range events {
		t.Logf("churn schedule: %-8s replica %d at %v", ev.Kind, ev.Replica, ev.At.Round(time.Millisecond))
	}

	var report *cluster.LoadReport
	var loadErr error
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	go func() {
		defer wg.Done()
		report, loadErr = cluster.RunLoad(context.Background(), loadCfg)
	}()
	for _, ev := range events {
		if wait := ev.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		switch ev.Kind {
		case cluster.ChurnKill:
			tc.stopReplica(ev.Replica)
		case cluster.ChurnRestart:
			cfg := ServerConfig{}
			mutate(ev.Replica, &cfg)
			tc.restartReplica(t, ev.Replica, cfg, 100*time.Millisecond)
		}
	}
	wg.Wait()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	t.Logf("churn soak: %d requests → %d served, %d shed, %d infeasible, %d errors; statuses %v",
		report.Requests, report.Served, report.Shed, report.Infeasible, report.Errors, report.ByStatus)
	for _, ph := range report.Phases {
		t.Logf("  phase %-10s start %6.2fs: %4d requests, %d errors, p99 %.3fs",
			ph.Name, ph.StartS, ph.Requests, ph.Errors, ph.LatencyP99S)
	}

	if out := os.Getenv("THERMOSC_CHURN_REPORT"); out != "" {
		rb, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(rb, '\n'), 0o644); err != nil {
			t.Fatalf("writing report artifact: %v", err)
		}
	}

	// 1. Zero accounting drift: every request in exactly one bucket, and
	// phase splits re-sum to the totals.
	if sum := report.Served + report.Infeasible + report.Shed + report.Errors; sum != requests {
		t.Fatalf("accounting sums to %d of %d", sum, requests)
	}
	var phSum int
	for _, ph := range report.Phases {
		phSum += ph.Requests
	}
	if phSum != requests {
		t.Fatalf("phase split sums to %d of %d", phSum, requests)
	}

	// 2. No server-generated failure ever reaches a client: the only
	// non-2xx outcomes are deterministic 422s, backpressure 429s, and
	// transport errors from connections into the kill window.
	for status := range report.ByStatus {
		switch status {
		case "200", "422", "429", "transport_error":
		default:
			t.Fatalf("client saw status %q: %v", status, report.ByStatus)
		}
	}
	// Errors bounded to the detection window: each cycle downs one
	// replica for ~1/3 of its segment, and only requests aimed straight
	// at it can fail.
	if report.Errors > report.Requests/3 {
		t.Fatalf("%d of %d requests errored", report.Errors, report.Requests)
	}
	if report.Served == 0 {
		t.Fatal("nothing served")
	}

	// 3. Replication soundness under churn: no key ever produced two
	// different complete plans, across kills, restarts, and replays.
	if len(report.PlanMismatches) > 0 {
		t.Fatalf("divergent plans for keys %v", report.PlanMismatches)
	}

	// 4. The health timeline artifact: every replica's detector saw the
	// churn, and the final state of every peer is alive.
	timelines := make(map[string]json.RawMessage, len(tc.urls))
	transitions := 0
	for i, url := range tc.urls {
		resp, err := http.Get(url + "/v1/cluster?timeline=1")
		if err != nil {
			t.Fatalf("timeline fetch %s: %v", url, err)
		}
		var cs ClusterStatus
		err = json.NewDecoder(resp.Body).Decode(&cs)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		transitions += len(cs.Timeline)
		raw, err := json.Marshal(cs.Timeline)
		if err != nil {
			t.Fatal(err)
		}
		timelines[url] = raw
		for _, p := range cs.Peers {
			if p.Health != cluster.StateAlive {
				t.Fatalf("replica %d still holds %s as %q after the run", i, p.URL, p.Health)
			}
		}
	}
	// Restarted replicas carry fresh detectors, but the survivors of the
	// last cycle must have witnessed it.
	if transitions == 0 {
		t.Fatal("no detector transitions recorded across the whole churn run")
	}
	if out := os.Getenv("THERMOSC_CHURN_TIMELINE"); out != "" {
		rb, err := json.MarshalIndent(timelines, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(rb, '\n'), 0o644); err != nil {
			t.Fatalf("writing timeline artifact: %v", err)
		}
	}

	// 5. Post-heal convergence and byte identity.
	tc.syncAll(t)
	for _, body := range bodiesByOwner(t, tc) {
		var ref []byte
		for i, url := range tc.urls {
			status, mr := postMaximize(t, url, body)
			if status != http.StatusOK {
				t.Fatalf("post-heal probe on replica %d: HTTP %d", i, status)
			}
			if ref == nil {
				ref = mr.Plan
			} else if !bytes.Equal(ref, mr.Plan) {
				t.Fatalf("replica %d plan diverges post-heal", i)
			}
		}
	}

	// 6. Per-node serve-source accounting (per current process).
	sumInvariant(t, tc)

	// 7. Hint accounting is self-consistent on every survivor.
	for i := range tc.srvs {
		hs := tc.srvs[i].cluster.hints.Stats()
		if hs.Queued < hs.Replayed+hs.Dropped {
			t.Fatalf("replica %d hint counters impossible: %+v", i, hs)
		}
	}
}
