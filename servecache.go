package thermosc

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// lruCache is a mutex-guarded LRU map from canonical keys to immutable
// values (cached plan bytes, shared platforms). Values must never be
// mutated after Put — hits hand out the same reference.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

func (c *lruCache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry[V]).key)
	}
}

func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Each calls fn for every cached value without disturbing recency
// order. fn must not call back into the cache (the lock is held) and
// must treat the value as immutable.
func (c *lruCache[V]) Each(fn func(V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*lruEntry[V]).val)
	}
}

// GetOrCreate returns the cached value for key, building and inserting
// it on a miss. Concurrent creators for the same key may both build;
// the first Put wins and is what subsequent Gets observe — acceptable
// for idempotent constructions (platforms), not for the plan cache,
// which goes through the singleflight group instead.
func (c *lruCache[V]) GetOrCreate(key string, build func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		var zero V
		return zero, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok { // lost the build race: keep the incumbent
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, nil
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry[V]).key)
	}
	return v, nil
}

// cachedPlan is the plan cache's (and flight group's) value: the
// serialized plan plus the serving metadata the handler needs without
// re-decoding the bytes. Complete plans are immortal cache entries
// (bit-reproducible, so never wrong); degraded plans are cached too —
// serving a verified best-so-far beats re-timing-out — but are always
// treated as stale, served with stale:true while a background refresh
// tries to replace them with the complete solve.
type cachedPlan struct {
	bytes    []byte
	degraded bool
	reason   string
	born     time.Time
}

// errFlightPanic is what joiners of a flight receive when the leader's
// fn panicked: the leader re-raises the panic into its own request's
// recovery middleware, and the joiners get a plain 500 error.
var errFlightPanic = errors.New("thermosc: solve failed: the flight leader panicked")

// flight is one in-progress computation other requests can join.
type flight struct {
	done chan struct{}
	val  cachedPlan
	err  error
}

// flightGroup deduplicates concurrent work by key (a minimal
// singleflight: the stdlib has none and the container bakes in no
// third-party modules). The first caller for a key becomes the leader
// and runs fn; callers arriving before the leader finishes join the
// flight and share its outcome. A joiner whose own context expires
// stops waiting and returns its ctx error WITHOUT canceling the flight —
// the leader's context governs the computation itself.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Do returns fn's result for key, running fn at most once per key at a
// time. shared reports whether this caller joined an existing flight.
//
// Do is panic-safe: if fn panics, the flight is still unregistered and
// its done channel closed (joiners get errFlightPanic instead of
// hanging forever), and the panic propagates to the leader's caller —
// the per-request recovery middleware in Server.ServeHTTP.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (cachedPlan, error)) (val cachedPlan, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return cachedPlan{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	finished := false
	defer func() {
		if !finished { // fn panicked mid-flight
			f.val, f.err = cachedPlan{}, errFlightPanic
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn()
	finished = true
	return f.val, false, f.err
}
