package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"thermosc/internal/cluster"
)

// The fault-tolerance suite: a static ring survives replica death by
// re-routing (every key stays answerable), a restarted replica warms
// back up from a snapshot, and a partitioned replica rejoins gossip and
// converges.

// Killing a replica must not take its keys down: forwarding fails over
// to a local solve on whichever replica got the request, and the whole
// fleet keeps answering with bounded latency.
func TestClusterReplicaFailureReroute(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	victim := 1
	victimBody := byOwner[tc.urls[victim]]

	// Healthy path first: replica 0 forwards to the victim.
	if status, mr := postMaximize(t, tc.urls[0], victimBody); status != http.StatusOK || mr.Source != "forwarded" {
		t.Fatalf("pre-kill forward: HTTP %d source %q", status, mr.Source)
	}

	tc.stopReplica(victim)

	// A fresh body owned by the dead replica (the previous one is cached
	// on replica 0 now). Probe until we find one.
	ring := tc.srvs[0].cluster.ring
	var coldBody string
	for dt := 0; dt < 400; dt++ {
		b := clusterBody(3, 3, 3, 61+float64(dt)*0.0625)
		if ring.Owner(planKeyFor(t, b)) == tc.urls[victim] {
			coldBody = b
			break
		}
	}
	if coldBody == "" {
		t.Fatal("no probe body owned by the victim")
	}
	before := tc.srvs[0].cluster.forwardFails.Load()
	status, mr := postMaximize(t, tc.urls[0], coldBody)
	if status != http.StatusOK {
		t.Fatalf("request for a dead replica's key: HTTP %d", status)
	}
	if mr.Source != "local" {
		t.Fatalf("re-routed request source %q, want local (fallback solve)", mr.Source)
	}
	if after := tc.srvs[0].cluster.forwardFails.Load(); after <= before {
		t.Fatalf("forward failure not counted: %d -> %d", before, after)
	}

	// The two survivors absorb a load burst with zero errors and a
	// bounded tail: every request gets a real answer well inside its
	// deadline even though a third of the ring is dark.
	report, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
		Targets:  []string{tc.urls[0], tc.urls[2]},
		Requests: 300,
		RateHz:   600,
		Seed:     11,
		// ≤9-core platforms + wide deadlines: solves stay fast under the
		// race detector, so any error is a real routing failure.
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors > 0 {
		t.Fatalf("%d errors with one replica down: %v", report.Errors, report.ByStatus)
	}
	if len(report.PlanMismatches) > 0 {
		t.Fatalf("plan mismatches with one replica down: %v", report.PlanMismatches)
	}
	if report.LatencyP99S > 20 {
		t.Fatalf("p99 %.3fs with one replica down exceeds the 20 s bound", report.LatencyP99S)
	}
	sumInvariant(t, tc)
}

// A restarted replica comes back cold; restoring a peer's warm-export
// snapshot refills its store so it serves cached plans immediately.
func TestClusterSnapshotRestoreAfterRestart(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	for owner, body := range byOwner {
		if status, _ := postMaximize(t, owner, body); status != http.StatusOK {
			t.Fatalf("seeding solve on %s failed", owner)
		}
	}
	tc.syncAll(t)

	snap, err := tc.srvs[0].ClusterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := tc.srvs[0].cluster.store.Len()
	if wantEntries < 3 {
		t.Fatalf("snapshot covers only %d entries", wantEntries)
	}
	refPlans := make(map[string][]byte)
	for owner, body := range byOwner {
		_, mr := postMaximize(t, owner, body)
		refPlans[body] = mr.Plan
	}

	victim := 2
	tc.stopReplica(victim)
	tc.restartReplica(t, victim, ServerConfig{}, 0)

	if got := tc.srvs[victim].cluster.store.Len(); got != 0 {
		t.Fatalf("restarted replica store has %d entries, want 0 (cold)", got)
	}
	resp, err := http.Post(tc.urls[victim]+"/v1/cluster/restore", "application/json", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: HTTP %d", resp.StatusCode)
	}
	if got := tc.srvs[victim].cluster.store.Len(); got != wantEntries {
		t.Fatalf("restored store has %d entries, want %d", got, wantEntries)
	}

	// Every seeded key now serves from the restored store — cached, and
	// byte-identical to the pre-restart plans.
	for body, want := range refPlans {
		status, mr := postMaximize(t, tc.urls[victim], body)
		if status != http.StatusOK {
			t.Fatalf("post-restore serve: HTTP %d", status)
		}
		if !mr.Cached {
			t.Fatal("post-restore serve was a cold solve, not a store hit")
		}
		if !bytes.Equal(mr.Plan, want) {
			t.Fatal("post-restore plan differs from the pre-restart plan")
		}
	}
}

// A partitioned replica rejects sync (503), the initiator counts the
// failure, and once the partition heals the fleet converges.
func TestClusterPartitionAndHeal(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	body := byOwner[tc.urls[0]]
	if status, _ := postMaximize(t, tc.urls[0], body); status != http.StatusOK {
		t.Fatal("seeding solve failed")
	}

	// Partition replica 2 out of gossip.
	tc.srvs[2].cluster.rejectSync.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	failsBefore := tc.srvs[0].cluster.syncFails.Load()
	if err := tc.srvs[0].SyncPeer(ctx, tc.urls[2]); err == nil {
		t.Fatal("sync against a partitioned replica succeeded")
	}
	if got := tc.srvs[0].cluster.syncFails.Load(); got <= failsBefore {
		t.Fatalf("sync failure not counted: %d -> %d", failsBefore, got)
	}
	if got := tc.srvs[2].cluster.store.Len(); got != 0 {
		t.Fatalf("partitioned replica received %d entries", got)
	}
	// Replica 1 still converges with replica 0.
	if err := tc.srvs[1].SyncPeer(ctx, tc.urls[0]); err != nil {
		t.Fatalf("healthy pair sync failed: %v", err)
	}
	if got := tc.srvs[1].cluster.store.Len(); got == 0 {
		t.Fatal("healthy peer did not replicate around the partition")
	}

	// Heal and converge.
	tc.srvs[2].cluster.rejectSync.Store(false)
	tc.syncAll(t)
	if got := tc.srvs[2].cluster.store.Len(); got != tc.srvs[0].cluster.store.Len() {
		t.Fatalf("healed replica has %d entries, origin %d", got, tc.srvs[0].cluster.store.Len())
	}
	// And the healed replica serves the replicated plan from its store.
	status, mr := postMaximize(t, tc.urls[2], body)
	if status != http.StatusOK || !mr.Cached || mr.Source != "peer" {
		t.Fatalf("healed serve: HTTP %d cached=%v source=%q, want a peer store hit", status, mr.Cached, mr.Source)
	}
}

// A persistently dead peer must not starve gossip: one tick fails over
// to the next peer in rotation, so the healthy pair still converges
// every tick, and the dead peer's failures are counted per peer.
func TestClusterGossipFailoverOnDeadPeer(t *testing.T) {
	tc := startTestCluster(t, 3, 0, nil)
	byOwner := bodiesByOwner(t, tc)
	if status, _ := postMaximize(t, tc.urls[0], byOwner[tc.urls[0]]); status != http.StatusOK {
		t.Fatal("seeding solve failed")
	}
	dead := 1
	tc.stopReplica(dead)

	c := tc.srvs[0].cluster
	// Point the rotation cursor at the dead peer: the starvation bug was
	// exactly this state, where every tick burned on the dead peer.
	c.mu.Lock()
	for c.cfg.Peers[c.peerIdx%len(c.cfg.Peers)] != tc.urls[dead] {
		c.peerIdx++
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for tick := 0; tick < 3; tick++ {
		c.syncTick(ctx)
	}
	// Every tick reached the healthy peer despite the dead one leading
	// the rotation each time.
	if got := tc.srvs[2].cluster.store.Len(); got == 0 {
		t.Fatal("healthy peer never synced: dead peer starved the rotation")
	}
	if c.syncFails.Load() < 3 {
		t.Fatalf("dead-peer attempts not counted: %d sync failures, want >=3", c.syncFails.Load())
	}
	c.mu.Lock()
	deadFails := c.peerSeen[tc.urls[dead]].fails
	healthyFails := c.peerSeen[tc.urls[2]].fails
	c.mu.Unlock()
	if deadFails < 3 || healthyFails != 0 {
		t.Fatalf("per-peer failures: dead=%d (want >=3), healthy=%d (want 0)", deadFails, healthyFails)
	}

	// The per-peer counter surfaces in GET /v1/cluster.
	resp, err := http.Get(tc.urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range st.Peers {
		if p.URL == tc.urls[dead] {
			found = true
			if p.SyncFailures < 3 || p.LastError == "" {
				t.Fatalf("dead peer status %+v lacks failures", p)
			}
		}
	}
	if !found {
		t.Fatal("dead peer missing from /v1/cluster peers")
	}
}

// The file-backed store survives kill-and-restart: a restarted replica
// recovers its replicated plans from its own log — no peer snapshot —
// and serves them byte-identical to the pre-kill plans.
func TestClusterFileStoreKillRestart(t *testing.T) {
	dir := t.TempDir()
	mutate := func(i int, cfg *ServerConfig) {
		cfg.Cluster = &ClusterConfig{
			StoreBackend: "file",
			StorePath:    filepath.Join(dir, fmt.Sprintf("replica%d.log", i)),
		}
	}
	tc := startTestCluster(t, 3, 0, mutate)
	byOwner := bodiesByOwner(t, tc)
	refPlans := make(map[string][]byte)
	for owner, body := range byOwner {
		status, mr := postMaximize(t, owner, body)
		if status != http.StatusOK {
			t.Fatalf("seeding solve on %s failed", owner)
		}
		refPlans[body] = mr.Plan
	}
	tc.syncAll(t)

	victim := 2
	wantLen := tc.srvs[victim].cluster.store.Len()
	if wantLen < 3 {
		t.Fatalf("victim replicated only %d entries before the kill", wantLen)
	}
	wantDigest := tc.srvs[victim].cluster.store.Digest()
	tc.stopReplica(victim)

	cfg := ServerConfig{}
	mutate(victim, &cfg)
	tc.restartReplica(t, victim, cfg, 0)

	got := tc.srvs[victim].cluster.store
	if got.Len() != wantLen {
		t.Fatalf("restarted store has %d entries, want %d", got.Len(), wantLen)
	}
	if !cluster.Converged(wantDigest, got.Digest()) {
		t.Fatal("restarted store diverges from the pre-kill state")
	}
	// Every seeded key serves from the recovered store — cached, and
	// byte-identical to the pre-kill plan. (The snapshot-restore path in
	// TestClusterSnapshotRestoreAfterRestart needed a peer for this;
	// here the replica recovers alone.)
	for body, want := range refPlans {
		status, mr := postMaximize(t, tc.urls[victim], body)
		if status != http.StatusOK {
			t.Fatalf("post-restart serve: HTTP %d", status)
		}
		if !mr.Cached {
			t.Fatal("post-restart serve was a cold solve, not a store hit")
		}
		if !bytes.Equal(mr.Plan, want) {
			t.Fatal("post-restart plan differs from the pre-kill plan")
		}
	}
}
