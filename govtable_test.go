package thermosc

import (
	"encoding/json"
	"testing"
)

func buildTable(t *testing.T) (*Platform, *GovernorTable) {
	t.Helper()
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := p.BuildGovernorTable(MethodAO, []float64{65, 50, 55, 60})
	if err != nil {
		t.Fatal(err)
	}
	return p, tbl
}

func TestGovernorTableBuildAndLookup(t *testing.T) {
	_, tbl := buildTable(t)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	ths := tbl.Thresholds()
	want := []float64{50, 55, 60, 65}
	for i := range want {
		if ths[i] != want[i] {
			t.Fatalf("thresholds = %v", ths)
		}
	}
	// Exact hit.
	plan, tmax, ok := tbl.PlanFor(60)
	if !ok || tmax != 60 || !plan.Feasible {
		t.Fatalf("PlanFor(60) = %v %v %v", plan, tmax, ok)
	}
	// Between rungs: round DOWN (the guarantee direction).
	_, tmax, ok = tbl.PlanFor(63.9)
	if !ok || tmax != 60 {
		t.Fatalf("PlanFor(63.9) chose %v", tmax)
	}
	// Above the ladder: hottest entry.
	_, tmax, ok = tbl.PlanFor(90)
	if !ok || tmax != 65 {
		t.Fatalf("PlanFor(90) chose %v", tmax)
	}
	// Below the ladder: no certificate.
	if _, _, ok := tbl.PlanFor(45); ok {
		t.Fatal("PlanFor(45) should have no entry")
	}
	// Monotone throughput across the ladder.
	prev := -1.0
	for _, e := range tbl.Entries {
		if e.Plan.Throughput < prev {
			t.Fatalf("throughput not monotone: %v", tbl.Entries)
		}
		prev = e.Plan.Throughput
	}
}

func TestGovernorTableJSONRoundTrip(t *testing.T) {
	p, tbl := buildTable(t)
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var back GovernorTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(tbl.Entries) {
		t.Fatal("entries lost")
	}
	// A reloaded plan still verifies on the platform.
	plan, tmax, ok := back.PlanFor(65)
	if !ok {
		t.Fatal("lookup failed after reload")
	}
	peak, err := p.VerifyPeakC(plan, 24)
	if err != nil {
		t.Fatal(err)
	}
	if peak > tmax+0.01 {
		t.Fatalf("reloaded plan peaks at %.3f above its %.1f threshold", peak, tmax)
	}
}

func TestGovernorTableSwitching(t *testing.T) {
	p, tbl := buildTable(t)
	infos, err := tbl.AnalyzeSwitching(p)
	if err != nil {
		t.Fatal(err)
	}
	// 4 entries → 3 adjacent pairs × 2 directions.
	if len(infos) != 6 {
		t.Fatalf("got %d switch analyses", len(infos))
	}
	for _, info := range infos {
		if !info.Safe {
			t.Fatalf("switch %.1f→%.1f unsafe: peak %.3f, settle %.3fs",
				info.FromC, info.ToC, info.TransientPeakC, info.SettleSeconds)
		}
		if info.ToC > info.FromC {
			// Ramping up: must never exceed the destination threshold.
			if info.TransientPeakC > info.ToC+0.05 {
				t.Fatalf("ramp-up overshoot: %+v", info)
			}
		} else {
			// Throttling down: bounded by the source, settles in finite
			// time commensurate with the thermal time constant.
			if info.TransientPeakC > info.FromC+0.05 {
				t.Fatalf("throttle-down overshoot: %+v", info)
			}
			if info.SettleSeconds < 0 || info.SettleSeconds > 12*p.DominantTimeConstant() {
				t.Fatalf("implausible settle time: %+v", info)
			}
		}
	}
}

func TestGovernorTableValidation(t *testing.T) {
	p, err := New(2, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BuildGovernorTable(MethodAO, nil); err == nil {
		t.Fatal("empty ladder must error")
	}
	if _, err := p.BuildGovernorTable(MethodAO, []float64{60, 60}); err == nil {
		t.Fatal("duplicate thresholds must error")
	}
	if _, err := p.BuildGovernorTable(MethodAO, []float64{30}); err == nil {
		t.Fatal("threshold below ambient must error")
	}
	// Corrupt tables are rejected on load.
	bad := []byte(`{"entries":[{"tmax_c":60,"plan":null}]}`)
	var tbl GovernorTable
	if err := json.Unmarshal(bad, &tbl); err == nil {
		t.Fatal("missing plan must be rejected")
	}
	bad = []byte(`{"entries":[]}`)
	if err := json.Unmarshal(bad, &tbl); err == nil {
		t.Fatal("empty table must be rejected")
	}
}
