package thermosc

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// N concurrent MaximizeContext solves on one shared Platform must never
// share or leak per-solve arena memory: every solve must return exactly
// the plan a lone solve returns, with the race detector watching the
// pooled-arena acquire/poison/release traffic (this test is part of the
// CI -race job).
func TestConcurrentMaximizeArenaIsolation(t *testing.T) {
	p, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	const tmaxC = 60.0
	methods := []Method{MethodAO, MethodPCO}
	refs := make(map[Method]*Plan, len(methods))
	for _, m := range methods {
		ref, err := p.Maximize(m, tmaxC)
		if err != nil {
			t.Fatal(err)
		}
		ref.Elapsed = 0
		refs[m] = ref
	}

	const solvers = 8
	var wg sync.WaitGroup
	wg.Add(solvers)
	for g := 0; g < solvers; g++ {
		go func(g int) {
			defer wg.Done()
			m := methods[g%len(methods)]
			for iter := 0; iter < 2; iter++ {
				plan, err := p.MaximizeContext(context.Background(), m, tmaxC, 2)
				if err != nil {
					t.Errorf("goroutine %d %s: %v", g, m, err)
					return
				}
				plan.Elapsed = 0
				if !reflect.DeepEqual(plan, refs[m]) {
					t.Errorf("goroutine %d %s iter %d: concurrent plan diverged from the lone solve:\n got %+v\nwant %+v",
						g, m, iter, plan, refs[m])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
