package thermosc

import (
	"context"
	"math"
	"testing"
	"time"

	"thermosc/internal/floorplan"
)

// genPlatform builds a root Platform from a generated floorplan spec,
// exercising the same option plumbing users go through (stacked layers,
// heterogeneous scales, automatic package scaling).
func genPlatform(t testing.TB, g floorplan.GenSpec, opts ...Option) *Platform {
	t.Helper()
	if g.Layers > 1 {
		opts = append(opts, WithStackedLayers(g.Layers))
	}
	if g.Scales != nil {
		opts = append(opts, WithCoreScales(g.Scales...))
	}
	p, err := New(g.Rows, g.Cols, opts...)
	if err != nil {
		t.Fatalf("%s: %v", g.Name, err)
	}
	if p.NumCores() != g.NumCores() {
		t.Fatalf("%s: platform has %d cores, want %d", g.Name, p.NumCores(), g.NumCores())
	}
	return p
}

// The headline scale contract: a 256-core stacked heterogeneous platform
// must complete an AO solve inside the serve deadline budget (2 s), with
// a feasible, non-degraded plan — the sparse backend plus the scale
// policy make this tractable; the dense path would need minutes.
func TestScale256AOWithinDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core solve in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("wall-clock deadline contract is meaningless under -race instrumentation")
	}
	g := floorplan.BigLittleStacked(8, 8, 4, 0.5, 4)
	p := genPlatform(t, g, WithPaperLevels(3))

	const tmaxC = 70.0
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	plan, err := p.MaximizeContext(ctx, MethodAO, tmaxC, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("AO on %s: %v", g.Name, err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("AO on %s took %s, budget 2s", g.Name, elapsed)
	}
	if plan.Degraded {
		t.Errorf("AO on %s degraded (%s) — the scale policy must fit the deadline", g.Name, plan.DegradedReason)
	}
	if !plan.Feasible {
		t.Fatalf("AO on %s infeasible: peak %.3f °C", g.Name, plan.PeakC)
	}
	if plan.PeakC > tmaxC+1e-6 {
		t.Errorf("AO on %s: peak %.6f °C exceeds Tmax %.1f", g.Name, plan.PeakC, tmaxC)
	}
	if plan.Throughput <= 0 {
		t.Errorf("AO on %s: throughput %v", g.Name, plan.Throughput)
	}
	if len(plan.Cores) != 256 {
		t.Errorf("AO on %s: plan has %d cores", g.Name, len(plan.Cores))
	}
	// The solver's claimed peak must agree with an independent re-simulation
	// of the emitted plan through the public verification entry point.
	peak, err := p.VerifyPeakC(plan, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-plan.PeakC) > 0.05 {
		t.Errorf("AO on %s: verified peak %.4f vs plan %.4f", g.Name, peak, plan.PeakC)
	}
}

// Every large sparse-backend platform class must produce AO plans that
// survive the independent first-principles oracle (dense Padé orbit +
// RK4, no shared caches): ≥8 seeded plans across planar, heterogeneous,
// and stacked large floorplans.
func TestScaleOracleAuditsLargeFloorplans(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle audits of large platforms in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("large-platform audit sweep exceeds its 30 s budgets under -race; covered by the plain suite")
	}
	cases := []struct {
		g     floorplan.GenSpec
		tmaxC []float64
	}{
		{floorplan.Mesh(8, 8), []float64{70, 80}},
		{floorplan.BigLittle(8, 8, 0.5, 2), []float64{70, 80}},
		{floorplan.Stacked3D(8, 8, 2), []float64{70, 80}},
		{floorplan.Mesh(12, 12), []float64{70, 80}},
	}
	audits := 0
	for _, tc := range cases {
		p := genPlatform(t, tc.g, WithPaperLevels(3))
		for _, tmaxC := range tc.tmaxC {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			plan, err := p.MaximizeContext(ctx, MethodAO, tmaxC, 0)
			cancel()
			if err != nil {
				t.Fatalf("AO on %s tmax=%g: %v", tc.g.Name, tmaxC, err)
			}
			if !plan.Feasible {
				t.Fatalf("AO on %s tmax=%g infeasible", tc.g.Name, tmaxC)
			}
			rep, err := p.Audit(plan, tmaxC)
			if err != nil {
				t.Fatalf("audit on %s tmax=%g: %v", tc.g.Name, tmaxC, err)
			}
			if !rep.OK {
				t.Errorf("audit on %s tmax=%g failed:\n%s", tc.g.Name, tmaxC, rep)
			}
			audits++
		}
	}
	if audits < 8 {
		t.Fatalf("only %d oracle audits ran, want ≥8", audits)
	}
}

// The automatic package scaling must kick in above 16 cores unless the
// caller pins ConvectionR explicitly: without it a 256-core die on the
// 16-core sink is thermally mis-designed and the model build fails or
// every plan collapses to near-zero throughput.
func TestScaleAutoPackage(t *testing.T) {
	small, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	rs := small.model.Package().ConvectionR
	rb := big.model.Package().ConvectionR
	if !(rb < rs) {
		t.Fatalf("256-core ConvectionR %v not below 16-core %v — package scaling missing", rb, rs)
	}
	// An explicit WithConvectionR disables the scaling: the pinned value
	// reaches the model verbatim instead of being divided by the chip-size
	// factor. (Pinning the 16-core resistance itself on a 256-core die is
	// rejected outright — the sink cannot shed the heat and the build fails
	// the stability certificate, which is the designed behavior.)
	if _, err := New(16, 16, WithConvectionR(rs)); err == nil {
		t.Fatal("256 cores on the unscaled 16-core sink built a stable model")
	}
	pin := rb * 1.5
	pinned, err := New(16, 16, WithConvectionR(pin))
	if err != nil {
		t.Fatal(err)
	}
	if got := pinned.model.Package().ConvectionR; got != pin {
		t.Fatalf("pinned ConvectionR %v, want %v", got, pin)
	}
}

// Stacked heterogeneous construction is first-class at the root API:
// layer-major scale vectors of the full core count, rejected when the
// length is wrong or combined with the core-level model.
func TestScaleStackedHeteroPlumbing(t *testing.T) {
	g := floorplan.BigLittleStacked(2, 2, 2, 0.5, 9)
	p := genPlatform(t, g)
	if p.NumCores() != 8 {
		t.Fatalf("cores = %d", p.NumCores())
	}
	if _, err := New(2, 2, WithStackedLayers(2), WithCoreScales(1, 2)); err == nil {
		t.Fatal("short stacked scale vector accepted")
	}
	if _, err := New(2, 2, WithCoreLevelModel(), WithCoreScales(1, 1, 1, 1)); err == nil {
		t.Fatal("core-level heterogeneity accepted")
	}
}
