package thermosc

import (
	"math"
	"testing"
)

func TestSimulateUnderAmbientRamp(t *testing.T) {
	p, tbl := buildTable(t) // ladder 50/55/60/65 °C on 3×1
	const cap = 65.0
	// Ambient climbs 35 → 50 °C over ten minutes: the rise allowance
	// shrinks from 30 K to 15 K and the governor must walk down the
	// ladder.
	ramp := func(sec float64) float64 { return 35 + 15*math.Min(1, sec/600) }

	res, err := tbl.SimulateUnderAmbient(p, cap, ramp, 900, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The table-driven governor keeps the absolute limit (small slack for
	// the decision-interval lag: ambient moves 0.25 K per 10 s decision).
	if res.PeakAbsC > cap+0.5 {
		t.Fatalf("table-driven governor peaked at %.2f °C (cap %v)", res.PeakAbsC, cap)
	}
	if res.ViolationFrac > 0.02 {
		t.Fatalf("violation fraction %.4f", res.ViolationFrac)
	}
	// It must actually adapt: several downward switches, throughput
	// between the hottest and coolest entries' claims.
	if res.Switches < 2 {
		t.Fatalf("governor never adapted: %d switches", res.Switches)
	}
	hi := tbl.Entries[len(tbl.Entries)-1].Plan.Throughput
	lo := tbl.Entries[0].Plan.Throughput
	if res.MeanThroughput >= hi || res.MeanThroughput <= lo*0.5 {
		t.Fatalf("mean throughput %.4f outside (%.4f, %.4f)", res.MeanThroughput, lo*0.5, hi)
	}

	// Counterfactual: pinning the hottest entry through the ramp violates
	// the REAL cap — the adaptation was necessary, not decorative. Pin by
	// simulating with a sky-high cap (the lookup then always certifies
	// the hottest entry) and judging the resulting peak against the real
	// limit.
	pinned := &GovernorTable{Entries: tbl.Entries[len(tbl.Entries)-1:]}
	resPinned, err := pinned.SimulateUnderAmbient(p, 200, ramp, 900, 10)
	if err != nil {
		t.Fatal(err)
	}
	if resPinned.PeakAbsC <= cap+0.5 {
		t.Fatalf("pinned hottest plan should violate under the ramp: peak %.2f", resPinned.PeakAbsC)
	}
}

func TestSimulateUnderAmbientHostile(t *testing.T) {
	p, tbl := buildTable(t)
	// Ambient so hot that even the coolest entry is uncertifiable: the
	// governor must power down rather than run uncertified.
	res, err := tbl.SimulateUnderAmbient(p, 52, func(float64) float64 { return 50 }, 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffTime < 119 {
		t.Fatalf("expected full shutdown, off for %.1f s", res.OffTime)
	}
	if res.MeanThroughput != 0 {
		t.Fatalf("shutdown throughput %v", res.MeanThroughput)
	}
}

func TestSimulateUnderAmbientValidation(t *testing.T) {
	p, tbl := buildTable(t)
	amb := func(float64) float64 { return 35 }
	if _, err := tbl.SimulateUnderAmbient(p, 65, amb, 0, 1); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := tbl.SimulateUnderAmbient(p, 65, amb, 10, 20); err == nil {
		t.Fatal("decision beyond horizon must error")
	}
	empty := &GovernorTable{}
	if _, err := empty.SimulateUnderAmbient(p, 65, amb, 10, 1); err == nil {
		t.Fatal("invalid table must error")
	}
}
