package thermosc

import (
	"fmt"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// config carries the adjustable pieces of a Platform under construction.
type config struct {
	coreEdge    float64
	pkg         thermal.PackageParams
	pwr         power.Model
	levels      *power.LevelSet
	overhead    power.TransitionOverhead
	period      float64
	coreLevel   *thermal.CoreLevelParams
	stackLayers int
	coreScales  []float64
	// convectionSet records an explicit WithConvectionR: it disables the
	// automatic package scaling New applies to >16-core platforms.
	convectionSet bool
}

// Option adjusts platform construction.
type Option func(*config) error

// WithVoltageLevels restricts the DVFS modes to the given supply voltages
// (volts; at least one positive value).
func WithVoltageLevels(volts ...float64) Option {
	return func(c *config) error {
		ls, err := power.NewLevelSet(volts...)
		if err != nil {
			return err
		}
		c.levels = ls
		return nil
	}
}

// WithPaperLevels selects the paper's Table IV level set for
// n ∈ {2, 3, 4, 5}.
func WithPaperLevels(n int) Option {
	return func(c *config) error {
		ls, err := power.PaperLevels(n)
		if err != nil {
			return err
		}
		c.levels = ls
		return nil
	}
}

// WithTransitionOverhead sets the DVFS transition stall τ in seconds
// (0 disables overhead modeling).
func WithTransitionOverhead(tauSeconds float64) Option {
	return func(c *config) error {
		if tauSeconds < 0 {
			return fmt.Errorf("thermosc: negative transition overhead %v", tauSeconds)
		}
		c.overhead = power.TransitionOverhead{Tau: tauSeconds}
		return nil
	}
}

// WithBasePeriod sets the schedule period t_p in seconds (default 20 ms).
func WithBasePeriod(seconds float64) Option {
	return func(c *config) error {
		if seconds <= 0 {
			return fmt.Errorf("thermosc: non-positive base period %v", seconds)
		}
		c.period = seconds
		return nil
	}
}

// WithAmbientC sets the ambient temperature in °C (default 35 °C).
func WithAmbientC(ambient float64) Option {
	return func(c *config) error {
		c.pkg.AmbientC = ambient
		return nil
	}
}

// WithCoreEdge sets the core side length in meters (default 4 mm).
func WithCoreEdge(meters float64) Option {
	return func(c *config) error {
		if meters <= 0 {
			return fmt.Errorf("thermosc: non-positive core edge %v", meters)
		}
		c.coreEdge = meters
		return nil
	}
}

// WithConvectionR scales the heat sink's convection resistance (K/W) —
// the single most effective knob for making a platform thermally tighter
// or looser.
func WithConvectionR(rKPerW float64) Option {
	return func(c *config) error {
		if rKPerW <= 0 {
			return fmt.Errorf("thermosc: non-positive convection resistance %v", rKPerW)
		}
		c.pkg.ConvectionR = rKPerW
		c.convectionSet = true
		return nil
	}
}

// WithPowerCoefficients overrides the power-model coefficients of
// P = alpha + alphaV·v + beta·ΔT + gamma·v³ (watts, volts, kelvin).
func WithPowerCoefficients(alpha, alphaV, beta, gamma float64) Option {
	return func(c *config) error {
		if gamma <= 0 {
			return fmt.Errorf("thermosc: non-positive dynamic power coefficient %v", gamma)
		}
		if beta < 0 {
			return fmt.Errorf("thermosc: negative leakage slope %v", beta)
		}
		c.pwr = power.Model{Alpha: alpha, AlphaV: alphaV, Beta: beta, Gamma: gamma}
		return nil
	}
}

// WithCoreLevelModel switches to the simplified single-node-per-core
// thermal model (the model class the paper's proofs assume exactly) with
// the repository's default parameters.
func WithCoreLevelModel() Option {
	return func(c *config) error {
		cl := thermal.DefaultCoreLevel()
		c.coreLevel = &cl
		return nil
	}
}

// WithCoreScales declares a heterogeneous platform: core i consumes
// scales[i] times the reference power at any voltage (big/LITTLE designs,
// process skew). Length must equal the total core count — rows×cols on a
// planar chip, layers×rows×cols (layer-major) with WithStackedLayers; all
// entries positive. The core-level model does not support heterogeneity.
func WithCoreScales(scales ...float64) Option {
	return func(c *config) error {
		if len(scales) == 0 {
			return fmt.Errorf("thermosc: empty core scales")
		}
		c.coreScales = append([]float64(nil), scales...)
		return nil
	}
}

// WithStackedLayers builds a 3D stack: the rows×cols floorplan is
// repeated in `layers` vertically bonded die layers (layer 0 next to the
// heat sink), so the platform has layers × rows × cols cores. Core
// indices are layer-major. layers must be ≥ 1; 1 is the planar model.
func WithStackedLayers(layers int) Option {
	return func(c *config) error {
		if layers < 1 {
			return fmt.Errorf("thermosc: invalid layer count %d", layers)
		}
		c.stackLayers = layers
		return nil
	}
}
