package thermosc

import (
	"context"
	"errors"
	"fmt"

	"thermosc/internal/solver"
)

// This file is the verified-safe fallback chain: the guarantee that a
// planning request always ends in a plan obeying Tmax or an explicit
// typed refusal, never a useless answer and never a plan whose safety
// rests on a truncated search. The chain is
//
//	full solve (AO/PCO/EXS/…) → degraded best-so-far (oracle-checked)
//	                          → constant safe floor  (oracle-checked)
//	                          → typed refusal (ErrInfeasible/ErrDeadline)
//
// Every degraded or floor plan is re-verified by the independent oracle
// (Platform.Audit, internal/verify) BEFORE being returned: a truncated
// search could in principle stop on an unluckily-evaluated state, so
// thermal safety is never taken from the solver's own claim alone.
// Complete (non-degraded) plans keep their existing contract — they are
// bit-reproducible, already covered by the sampled async audits, and are
// returned unmodified so cache determinism is preserved.

// Typed refusal sentinels, re-exported from internal/solver so callers
// can errors.Is against them without importing internal packages.
var (
	// ErrInfeasible: the platform cannot meet the threshold at all — even
	// the constant safe floor violates Tmax or shuts every core down.
	ErrInfeasible = solver.ErrInfeasible
	// ErrDeadline: the deadline expired before ANY valid plan was found
	// (wraps the context error, so errors.Is(err, context.DeadlineExceeded)
	// still works).
	ErrDeadline = solver.ErrDeadline
	// ErrDegraded: a complete plan was required but only a degraded one
	// was available (used by cache-refresh paths).
	ErrDegraded = solver.ErrDegraded
)

// SafeFloorPlan computes the fallback chain's terminal plan: the constant
// assignment from the ideal-speed step of Algorithm 2 rounded down to the
// nearest discrete mode (the LNS baseline), peak-checked by the
// independent oracle before being returned. It never observes a deadline
// — the solve is two linear evaluations. The plan carries Method LNS
// with Degraded=true and reason "safe-floor".
//
// Typed failures: ErrInfeasible when the floor violates Tmax or shuts
// every core down ("all modes too hot"); a plain error when the oracle
// rejects the floor's own peak claim (which would indicate a model bug,
// not an unlucky request).
func (p *Platform) SafeFloorPlan(tmaxC float64) (*Plan, error) {
	res, err := solver.SafeFloor(solver.Problem{
		Model:      p.model,
		Levels:     p.levels,
		TmaxC:      tmaxC,
		Overhead:   p.overhead,
		BasePeriod: p.period,
		Engine:     p.engine(),
	})
	if err != nil {
		return nil, err
	}
	plan := newPlan(p, MethodLNS, res)
	if err := p.auditPlan(plan, tmaxC); err != nil {
		return nil, fmt.Errorf("thermosc: safe floor rejected by the verification oracle: %w", err)
	}
	return plan, nil
}

// MaximizeResilient is MaximizeContext wrapped in the fallback chain:
//
//  1. Run the requested method. A complete feasible plan with useful
//     throughput is returned as-is (byte-identical to Maximize — safe to
//     cache).
//  2. A complete plan with zero throughput (every core shut down — the
//     threshold admits no mode at all) refuses with ErrInfeasible
//     instead of serving a plan that idles the chip.
//  3. A degraded (deadline-truncated) feasible plan is re-verified by
//     the independent oracle; if it passes, it is returned tagged
//     Degraded. If it fails the oracle or is infeasible, fall through.
//  4. ErrDeadline (no plan at all before the deadline) or a fallen-
//     through step 3 lands on the constant safe floor, oracle-checked.
//  5. If even the floor is infeasible: ErrInfeasible.
//
// Any non-deadline solver error propagates unchanged — the chain absorbs
// overload and truncation, not bugs.
func (p *Platform) MaximizeResilient(ctx context.Context, m Method, tmaxC float64, workers int) (*Plan, error) {
	plan, err := p.MaximizeContext(ctx, m, tmaxC, workers)
	switch {
	case err == nil && !plan.Degraded:
		if plan.Feasible && plan.Throughput <= 0 {
			return nil, fmt.Errorf("%w: all modes too hot at Tmax %.2f °C — %s shuts every core down",
				ErrInfeasible, tmaxC, m)
		}
		if plan.Feasible {
			return plan, nil
		}
		// Complete but infeasible (possible only without core shutdown in
		// the mode set): the floor is the last candidate.
	case err == nil && plan.Degraded:
		if plan.Feasible && plan.Throughput > 0 && p.auditPlan(plan, tmaxC) == nil {
			return plan, nil
		}
		// Truncated plan is infeasible, useless, or failed the oracle:
		// fall through to the floor.
	case isDeadlineErr(err):
		// No plan at all before the deadline: the floor still applies.
	default:
		return nil, err
	}
	return p.SafeFloorPlan(tmaxC)
}

// auditPlan runs the independent oracle on plan and reduces the report to
// pass/fail (nil error = the plan's peak and invariants all verified).
func (p *Platform) auditPlan(plan *Plan, tmaxC float64) error {
	rep, err := p.Audit(plan, tmaxC)
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("audit failed: %s", rep.String())
	}
	return nil
}

// isDeadlineErr reports whether err is a deadline/cancellation abort —
// the error class the fallback chain absorbs.
func isDeadlineErr(err error) bool {
	return errors.Is(err, ErrDeadline) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
