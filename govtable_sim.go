package thermosc

import (
	"fmt"
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

// AmbientSimResult summarizes a table-driven run under drifting ambient.
type AmbientSimResult struct {
	// MeanThroughput is the time-averaged chip throughput actually
	// scheduled over the horizon.
	MeanThroughput float64
	// PeakAbsC is the hottest absolute temperature reached (rise plus the
	// instantaneous ambient).
	PeakAbsC float64
	// ViolationFrac is the fraction of time the absolute limit was
	// exceeded.
	ViolationFrac float64
	// Switches counts plan changes.
	Switches int
	// OffTime is the time spent with no certified entry (all cores off).
	OffTime float64
}

// SimulateUnderAmbient drives the platform with the governor table while
// the ambient temperature drifts: every decision seconds the governor
// reads ambient(t), computes the rise allowance capC − ambient(t) +
// designAmbient, and programs the hottest table entry certified for it
// (or powers the chip down when even the coolest entry does not fit).
// The thermal state carries across switches exactly — the model is
// linear, so a changing ambient only shifts the absolute reference while
// rises evolve unchanged.
//
// This is the end-to-end story the ladder exists for: a proactive
// governor with per-entry offline guarantees, adapting at runtime without
// ever running an uncertified schedule. Phase is reset at each switch
// (the driver reprograms the command stream from its start); period-scale
// phase effects are negligible against the decision interval.
func (t *GovernorTable) SimulateUnderAmbient(p *Platform, capC float64,
	ambient func(sec float64) float64, horizon, decision float64) (*AmbientSimResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 || decision <= 0 || decision > horizon {
		return nil, fmt.Errorf("thermosc: invalid horizon %v / decision %v", horizon, decision)
	}
	md := p.model
	design := p.AmbientC()

	// Pre-convert entries to internal schedules.
	scheds := make([]*schedule.Schedule, len(t.Entries))
	for i, e := range t.Entries {
		s, err := e.Plan.internalSchedule(p)
		if err != nil {
			return nil, fmt.Errorf("thermosc: entry %.1f °C: %w", e.TmaxC, err)
		}
		scheds[i] = s
	}
	offModes := make([]power.Mode, p.NumCores())
	res := &AmbientSimResult{}
	state := md.ZeroState()
	current := -2 // force a "switch" on the first decision

	steps := int(math.Ceil(horizon / decision))
	for k := 0; k < steps; k++ {
		now := float64(k) * decision
		amb := ambient(now)
		allowance := capC - amb + design
		idx := -1
		for i, e := range t.Entries {
			if e.TmaxC <= allowance+1e-9 {
				idx = i
			} else {
				break
			}
		}
		if idx != current {
			res.Switches++
			current = idx
		}

		// Advance the state through this decision window; every advance of
		// dt seconds contributes dt of (possibly violating) time.
		winEnd := math.Min(horizon, now+decision)
		remaining := winEnd - now
		var violatedTime float64
		sampleAbs := func(st []float64, tAbsAt, dt float64) {
			hot, _ := mat.VecMax(md.CoreTemps(st))
			abs := hot + ambient(tAbsAt)
			if abs > res.PeakAbsC {
				res.PeakAbsC = abs
			}
			if abs > capC+1e-9 {
				violatedTime += dt
			}
		}
		if idx < 0 {
			// No certified entry: all off.
			sub := remaining / 8
			for s := 0; s < 8; s++ {
				state = md.Step(sub, state, offModes)
				sampleAbs(state, now+float64(s+1)*sub, sub)
			}
			res.OffTime += remaining
		} else {
			sch := scheds[idx]
			ivs := sch.Intervals()
			consumed := 0.0
			for consumed < remaining-1e-12 {
				for _, iv := range ivs {
					dt := math.Min(iv.Length, remaining-consumed)
					if dt <= 0 {
						break
					}
					state = md.StepToward(dt, state, md.SteadyState(iv.Modes))
					consumed += dt
					sampleAbs(state, now+consumed, dt)
				}
			}
			res.MeanThroughput += t.Entries[idx].Plan.Throughput * remaining
		}
		res.ViolationFrac += violatedTime
	}
	res.MeanThroughput /= horizon
	res.ViolationFrac /= horizon
	return res, nil
}
