package thermosc

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// With AuditEvery=1 every cold solve is audited; a genuine plan must land
// in verify_pass, and the counters must reach /v1/stats and /metrics.
func TestServeAuditHookPass(t *testing.T) {
	srv := NewServer(ServerConfig{AuditEvery: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if status, b := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("AO")); status != 200 {
		t.Fatalf("cold solve: status %d: %s", status, b)
	}
	srv.waitAudits()

	st := srv.Stats()
	if st.Audit.VerifyPass != 1 || st.Audit.VerifyFail != 0 {
		t.Fatalf("audit counters after a genuine solve: %+v", st.Audit)
	}

	// A cache hit is not a cold solve and must not trigger another audit.
	if status, _ := postJSON(t, ts.URL+"/v1/maximize", maximizeBody("AO")); status != 200 {
		t.Fatal("cache hit failed")
	}
	srv.waitAudits()
	if st := srv.Stats(); st.Audit.VerifyPass != 1 {
		t.Fatalf("cache hit triggered an audit: %+v", st.Audit)
	}

	for _, path := range []string{"/v1/stats", "/metrics"} {
		body := getBody(t, ts.URL+path)
		if !strings.Contains(body, `"verify_pass":1`) || !strings.Contains(body, `"verify_fail":0`) {
			t.Fatalf("%s does not export the audit counters: %s", path, body)
		}
	}
}

// A corrupted plan fed through the audit path must land in verify_fail
// with the divergence detail preserved.
func TestServeAuditHookFail(t *testing.T) {
	srv := NewServer(ServerConfig{AuditEvery: 1})

	plat, err := New(2, 1, WithPaperLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := plat.Maximize(MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	plan.PeakC += 1 // tamper: the oracle's differential must catch this

	srv.auditWG.Add(1)
	srv.runAudit(plat, plan, 65)
	srv.waitAudits()

	st := srv.Stats()
	if st.Audit.VerifyFail != 1 {
		t.Fatalf("tampered plan not counted as a failure: %+v", st.Audit)
	}
	if !strings.Contains(st.Audit.LastFailure, "peak-mismatch") {
		t.Fatalf("last_failure lacks the invariant detail: %q", st.Audit.LastFailure)
	}

	// An audit that cannot run at all (schedule-less plan) is a failure too.
	srv.auditWG.Add(1)
	srv.runAudit(plat, &Plan{Method: MethodAO, M: 1, Feasible: true}, 65)
	srv.waitAudits()
	if st := srv.Stats(); st.Audit.VerifyFail != 2 {
		t.Fatalf("schedule-less plan not counted: %+v", st.Audit)
	}
}
