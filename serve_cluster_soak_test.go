package thermosc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"thermosc/internal/cluster"
)

// TestClusterSoak drives a seed-pinned zipf workload through a 3-replica
// in-process fleet and asserts the invariants the cluster layer exists
// for:
//
//  1. exact accounting — every generated request lands in exactly one of
//     served/infeasible/shed/error, and errors are zero (sheds are
//     legitimate backpressure, transport failures are not);
//  2. replication soundness — no canonical key ever returns two
//     different complete plans, no matter which replica answered, and a
//     direct post-load probe of every replica returns byte-identical
//     plans;
//  3. the fleet converges — after the load the anti-entropy digests of
//     all three replicated stores are equal;
//  4. the serve-source accounting holds per node (the sum invariant).
//
// THERMOSC_CLUSTER_REQUESTS scales the request count (CI runs 100k);
// THERMOSC_CLUSTER_REPORT names a file for the load report artifact;
// THERMOSC_CLUSTER_STORE selects the PlanStore backend (mem or file —
// CI runs the soak once per backend).
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak is not a -short test")
	}
	requests := 1500
	if v := os.Getenv("THERMOSC_CLUSTER_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad THERMOSC_CLUSTER_REQUESTS %q", v)
		}
		requests = n
	}
	// Scale the arrival rate with the request count so the wall-clock
	// stays bounded: ~15 s of pure arrival time, clamped to [300, 3000]/s.
	rate := float64(requests) / 15
	if rate < 300 {
		rate = 300
	}
	if rate > 3000 {
		rate = 3000
	}

	tc := startTestCluster(t, 3, 100*time.Millisecond, storeBackendMutate(t))

	report, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
		Targets:  tc.urls,
		Requests: requests,
		RateHz:   rate,
		Curve:    cluster.CurvePoisson,
		Seed:     1,
		// The ≤9-core catalog keeps every cold solve fast even under the
		// race detector's ~10-20x slowdown (make cluster-soak runs -race),
		// and the deadlines sit far above that: a 504 here would be a real
		// failure, not load shaping.
		MaxCores:    9,
		TimeoutMinS: 60,
		TimeoutMaxS: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := os.Getenv("THERMOSC_CLUSTER_REPORT"); out != "" {
		rb, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(rb, '\n'), 0o644); err != nil {
			t.Fatalf("writing report artifact: %v", err)
		}
	}
	t.Logf("soak: %d requests → %d served, %d shed, %d infeasible, %d errors; hit ratio %.3f; p99 %.3fs; sources %v",
		report.Requests, report.Served, report.Shed, report.Infeasible, report.Errors,
		report.HitRatio, report.LatencyP99S, report.BySource)

	// 1. Exact accounting, zero errors.
	if sum := report.Served + report.Infeasible + report.Shed + report.Errors; sum != requests {
		t.Fatalf("accounting sums to %d of %d: %+v", sum, requests, report)
	}
	if report.Errors > 0 {
		t.Fatalf("%d requests errored: %v", report.Errors, report.ByStatus)
	}
	if report.Served == 0 {
		t.Fatal("nothing served")
	}

	// 2. Replication soundness over the whole run.
	if len(report.PlanMismatches) > 0 {
		t.Fatalf("divergent complete plans for keys %v", report.PlanMismatches)
	}

	// Zipf skew must make the cache earn its keep: with ~18 hot keys and
	// hundreds-to-thousands of requests, most serves are hits.
	if report.HitRatio < 0.8 {
		t.Fatalf("hit ratio %.3f below the 0.80 floor", report.HitRatio)
	}

	// 3. Post-load convergence: drive anti-entropy to quiescence and
	// compare digests (syncAll fails the test if they never equalize).
	tc.syncAll(t)

	// Direct probe: every replica must return byte-identical complete
	// plans for one body owned by each replica.
	for _, body := range bodiesByOwner(t, tc) {
		var ref []byte
		for i, url := range tc.urls {
			status, mr := postMaximize(t, url, body)
			if status != http.StatusOK {
				t.Fatalf("probe on replica %d: HTTP %d", i, status)
			}
			if mr.Degraded {
				t.Fatalf("probe on replica %d returned a degraded plan", i)
			}
			if ref == nil {
				ref = mr.Plan
			} else if !bytes.Equal(ref, mr.Plan) {
				t.Fatalf("replica %d plan differs from replica 0 for the same key", i)
			}
		}
	}

	// 4. Per-node serve-source accounting.
	sumInvariant(t, tc)
}
