package thermosc

import (
	"math"
	"testing"
)

func TestAdmitTasksAccepts(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	// Comfortably schedulable: total utilization 1.8 across 3 cores whose
	// AO plan sustains ≈3×1.07.
	tasks := []Task{
		{Name: "video", WCET: 30e-3, Period: 50e-3},  // 0.6
		{Name: "radio", WCET: 20e-3, Period: 40e-3},  // 0.5
		{Name: "ui", WCET: 21e-3, Period: 60e-3},     // 0.35
		{Name: "sensor", WCET: 14e-3, Period: 40e-3}, // 0.35
	}
	rep, err := p.AdmitTasks(tasks, MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible {
		t.Fatalf("expected admission: %+v", rep)
	}
	if !rep.FluidOK {
		t.Fatal("fluid approximation should hold (ms cycles vs 40+ ms periods)")
	}
	for c, m := range rep.Margins {
		if m < 0 {
			t.Fatalf("core %d margin negative: %v", c, m)
		}
		if math.Abs(rep.CoreSpeed[c]-rep.CoreUtil[c]-m) > 1e-9 {
			t.Fatal("margins inconsistent")
		}
	}
	if len(rep.TaskCore) != len(tasks) {
		t.Fatal("TaskCore length mismatch")
	}
}

func TestAdmitTasksRejectsOverload(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	// Total utilization 3.6 > anything 3 cores can sustain below 65 °C.
	tasks := []Task{
		{Name: "a", WCET: 12, Period: 10},
		{Name: "b", WCET: 12, Period: 10},
		{Name: "c", WCET: 12, Period: 10},
	}
	rep, err := p.AdmitTasks(tasks, MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admissible {
		t.Fatal("overload must be rejected")
	}
	neg := false
	for _, m := range rep.Margins {
		if m < 0 {
			neg = true
		}
	}
	if !neg {
		t.Fatal("expected at least one negative margin")
	}
}

func TestAdmitTasksRejectsUnpackable(t *testing.T) {
	p, err := New(2, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	// A single task above the top speed can never fit.
	if _, err := p.AdmitTasks([]Task{{Name: "x", WCET: 15, Period: 10}}, MethodAO, 65); err == nil {
		t.Fatal("unpackable task must error")
	}
	if _, err := p.AdmitTasks(nil, MethodAO, 65); err == nil {
		t.Fatal("empty task set must error")
	}
}

func TestAdmitTasksMethodComparison(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	// A load LNS cannot carry (0.75/core > 0.6) but AO can.
	tasks := []Task{
		{Name: "a", WCET: 75e-3, Period: 100e-3},
		{Name: "b", WCET: 75e-3, Period: 100e-3},
		{Name: "c", WCET: 75e-3, Period: 100e-3},
	}
	lns, err := p.AdmitTasks(tasks, MethodLNS, 65)
	if err != nil {
		t.Fatal(err)
	}
	ao, err := p.AdmitTasks(tasks, MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if lns.Admissible {
		t.Fatal("LNS should reject this load")
	}
	if !ao.Admissible {
		t.Fatalf("AO should admit this load: %+v", ao)
	}
}

func TestVerifyAdmissionByEDF(t *testing.T) {
	p, err := New(3, 1, WithPaperLevels(2))
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Name: "video", WCET: 30e-3, Period: 50e-3},
		{Name: "radio", WCET: 20e-3, Period: 40e-3},
		{Name: "ui", WCET: 21e-3, Period: 60e-3},
		{Name: "sensor", WCET: 14e-3, Period: 40e-3},
	}
	rep, err := p.AdmitTasks(tasks, MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Admissible {
		t.Fatal("expected admission")
	}
	check, err := p.VerifyAdmissionByEDF(rep, tasks, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if check.TotalMisses != 0 {
		t.Fatalf("admitted set missed %d deadlines (per core %v)", check.TotalMisses, check.MissesPerCore)
	}
	if check.JobsReleased == 0 {
		t.Fatal("no jobs simulated")
	}

	// A rejected overload should show misses at the job level too.
	heavy := []Task{
		{Name: "a", WCET: 120e-3, Period: 100e-3},
		{Name: "b", WCET: 120e-3, Period: 100e-3},
		{Name: "c", WCET: 120e-3, Period: 100e-3},
	}
	repH, err := p.AdmitTasks(heavy, MethodAO, 65)
	if err != nil {
		t.Fatal(err)
	}
	if repH.Admissible {
		t.Fatal("overload should be rejected")
	}
	checkH, err := p.VerifyAdmissionByEDF(repH, heavy, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if checkH.TotalMisses == 0 {
		t.Fatal("rejected overload should miss deadlines in simulation")
	}

	// Input validation.
	if _, err := p.VerifyAdmissionByEDF(rep, tasks[:2], 1); err == nil {
		t.Fatal("task-count mismatch must error")
	}
	if _, err := p.VerifyAdmissionByEDF(&AdmissionReport{}, tasks, 1); err == nil {
		t.Fatal("plan-less report must error")
	}
}

func TestTaskUtilization(t *testing.T) {
	if u := (Task{WCET: 1, Period: 4}).Utilization(); u != 0.25 {
		t.Fatalf("Utilization = %v", u)
	}
}
