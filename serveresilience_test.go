package thermosc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter may queue…
	queued := make(chan error, 1)
	go func() {
		err := a.acquire(context.Background())
		if err == nil {
			a.release(time.Millisecond)
		}
		queued <- err
	}()
	for a.depth() == 0 {
		time.Sleep(time.Millisecond)
	}
	// …but the next request must shed, not queue behind it.
	err := a.acquire(context.Background())
	var shed *shedError
	if !errors.As(err, &shed) {
		t.Fatalf("full queue did not shed: %v", err)
	}
	if shed.retryAfter < time.Second {
		t.Fatalf("Retry-After hint %v below the 1s floor", shed.retryAfter)
	}
	a.release(time.Millisecond)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter lost its slot: %v", err)
	}
}

func TestAdmissionShedsOnDeadlineEstimate(t *testing.T) {
	a := newAdmission(1, 16)
	// Teach the EWMA that solves take ~2s.
	a.sem <- struct{}{}
	a.release(2 * time.Second)
	// Occupy the slot and put one waiter in the queue.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() { waiterDone <- a.acquire(waiterCtx) }()
	for a.depth() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A request with 50ms left cannot possibly be served behind a ~2s
	// queue: it must shed immediately, not burn its deadline waiting.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.acquire(ctx)
	var shed *shedError
	if !errors.As(err, &shed) {
		t.Fatalf("doomed request was not shed: %v", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("shed decision waited instead of rejecting on the estimate")
	}
	cancelWaiter()
	if err := <-waiterDone; !errors.As(err, &shed) {
		t.Fatalf("waiter canceled while queued should shed: %v", err)
	}
	a.release(time.Millisecond)
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	b := newBreaker(4, 0.5, 2, 20*time.Millisecond)
	if !b.allowFull() {
		t.Fatal("fresh breaker not closed")
	}
	b.record(true)
	b.record(true)
	if st, _ := b.status(); st != breakerClosed {
		t.Fatalf("passing audits tripped the breaker: state %s", st)
	}
	b = newBreaker(4, 0.5, 2, 20*time.Millisecond)
	b.record(false)
	b.record(false)
	if st, trips := b.status(); st != breakerOpen || trips != 1 {
		t.Fatalf("failure streak did not trip: state %s trips %d", st, trips)
	}
	if b.allowFull() {
		t.Fatal("open breaker allowed a full solve before the cooloff")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allowFull() {
		t.Fatal("cooloff elapsed but the probe was refused")
	}
	if st, _ := b.status(); st != breakerHalfOpen {
		t.Fatalf("post-cooloff state %s, want half-open", st)
	}
	// The probe's verdict decides: a failure re-opens…
	b.record(false)
	if st, trips := b.status(); st != breakerOpen || trips != 2 {
		t.Fatalf("failed probe did not re-open: state %s trips %d", st, trips)
	}
	// …and after another cooloff a passing probe closes.
	time.Sleep(25 * time.Millisecond)
	if !b.allowFull() {
		t.Fatal("second cooloff refused the probe")
	}
	b.record(true)
	if st, _ := b.status(); st != breakerClosed {
		t.Fatalf("passing probe did not close the breaker: state %s", st)
	}
}

func resilienceBody(tmax float64) string {
	return fmt.Sprintf(`{"platform":{"rows":2,"cols":1,"paper_levels":3},"tmax_c":%g,"method":"LNS"}`, tmax)
}

// Saturated admission must answer 429 + Retry-After instead of queueing
// requests it cannot serve in time.
func TestServeShedsUnderSaturation(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock) // a Fatalf before the explicit unblock must not wedge ts.Close
	srv := NewServer(ServerConfig{SolveConcurrency: 1, SolveQueue: 1})
	srv.solveHook = func(Method) { <-release }
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	statuses := make(chan int, 2)
	// Distinct tmax values keep the three requests off each other's
	// singleflight keys: each must take its own solve slot.
	for i := 0; i < 2; i++ {
		body := resilienceBody(60 + float64(i))
		go func() {
			resp, err := http.Post(ts.URL+"/v1/maximize", "application/json", strings.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Wait until one request holds the (blocked) solve slot and the other
	// is queued behind it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Resilience.QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/maximize", "application/json", strings.NewReader(resilienceBody(62)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed reply carries no Retry-After")
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "shed" || er.RetryAfterS < 1 {
		t.Fatalf("shed reply: %+v", er)
	}
	if st := srv.Stats(); st.Resilience.ShedTotal < 1 {
		t.Fatalf("shed not counted: %+v", st.Resilience)
	}

	unblock()
	for i := 0; i < 2; i++ {
		if got := <-statuses; got != 200 {
			t.Fatalf("blocked request finished with %d", got)
		}
	}
}

// A solver panic answers that one request with 500 and leaves the
// daemon fully functional — including the very key whose flight the
// panic killed.
func TestServePanicRecovery(t *testing.T) {
	var once sync.Once
	srv := NewServer(ServerConfig{})
	srv.solveHook = func(Method) {
		once.Do(func() { panic("injected solver fault") })
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	status, b := postJSON(t, ts.URL+"/v1/maximize", resilienceBody(60))
	if status != 500 {
		t.Fatalf("panicking solve: status %d: %s", status, b)
	}
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "panic" {
		t.Fatalf("panic reply code %q: %s", er.Code, b)
	}
	// Same key again: the flight must have been cleaned up, and this
	// solve succeeds.
	status, b = postJSON(t, ts.URL+"/v1/maximize", resilienceBody(60))
	if status != 200 {
		t.Fatalf("post-panic solve: status %d: %s", status, b)
	}
	if st := srv.Stats(); st.Resilience.PanicsRecovered < 1 {
		t.Fatalf("panic not counted: %+v", st.Resilience)
	}
	if status, _ := getStatus(t, ts.URL+"/healthz"); status != 200 {
		t.Fatal("daemon unhealthy after a recovered panic")
	}
}

func getStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 12]byte
	n, _ := resp.Body.Read(buf[:])
	return resp.StatusCode, buf[:n]
}

// With the breaker open, every solve routes to the oracle-checked safe
// floor; after the cooloff a passing audit closes it again.
func TestServeBreakerFallbackOnly(t *testing.T) {
	srv := NewServer(ServerConfig{
		AuditEvery: 1, BreakerWindow: 4, BreakerMinSamples: 2,
		BreakerThreshold: 0.5, BreakerCooloff: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Force the trip through the breaker's own audit-verdict interface
	// (production verdicts come from runAudit; producing a genuinely
	// corrupt solve on demand is not possible from outside).
	srv.brk.record(false)
	srv.brk.record(false)
	if st := srv.Stats(); st.Resilience.BreakerState != breakerOpen || st.Resilience.BreakerTrips != 1 {
		t.Fatalf("breaker did not trip: %+v", st.Resilience)
	}

	status, b := postJSON(t, ts.URL+"/v1/maximize", resilienceBody(60))
	if status != 200 {
		t.Fatalf("breaker-open solve: status %d: %s", status, b)
	}
	mr := decodeMaximize(t, b)
	if !mr.Degraded || mr.DegradedReason != "breaker-open" {
		t.Fatalf("breaker-open solve not routed to the floor: %s", b)
	}
	var plan Plan
	if err := json.Unmarshal(mr.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodLNS || !plan.Feasible {
		t.Fatalf("breaker-open plan is not the safe floor: %+v", plan)
	}

	// After the cooloff, the next solve probes with a full solve; its
	// passing audit closes the breaker.
	time.Sleep(60 * time.Millisecond)
	status, b = postJSON(t, ts.URL+"/v1/maximize", resilienceBody(61))
	if status != 200 {
		t.Fatalf("probe solve: status %d: %s", status, b)
	}
	if mr := decodeMaximize(t, b); mr.Degraded {
		t.Fatalf("probe solve still degraded: %s", b)
	}
	srv.waitAudits()
	if st := srv.Stats(); st.Resilience.BreakerState != breakerClosed {
		t.Fatalf("passing probe audit did not close the breaker: %+v", st.Resilience)
	}
}

// A threshold the platform cannot meet at all is a typed 422 refusal —
// not a 200 with a useless plan, not a 500.
func TestServeInfeasibleRefusal(t *testing.T) {
	_, ts := newTestServer(t)
	status, b := postJSON(t, ts.URL+"/v1/maximize",
		`{"platform":{"rows":2,"cols":1,"paper_levels":3},"tmax_c":35.01,"method":"LNS"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible threshold: status %d (want 422): %s", status, b)
	}
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "infeasible" {
		t.Fatalf("refusal code %q: %s", er.Code, b)
	}
}

// Regression for the Retry-After rounding bug: retryAfter must be a
// WHOLE second, rounded up — a fractional estimate (say 2.3s) must
// become 3s everywhere (header, JSON, error text), and a sub-second
// estimate must become 1s, never 0.
func TestAdmissionRetryAfterRoundsUpWholeSeconds(t *testing.T) {
	cases := []struct {
		avgS    float64 // EWMA seed (one release of this duration)
		waiting int64
		want    time.Duration
	}{
		{avgS: 0.05, waiting: 1, want: time.Second}, // sub-second estimate → 1s, not 0
		{avgS: 0, waiting: 0, want: time.Second},    // no history → the 1s floor
		{avgS: 2.3, waiting: 1, want: 3 * time.Second},
		{avgS: 2.0, waiting: 2, want: 4 * time.Second},
	}
	for i, tc := range cases {
		a := newAdmission(1, 4)
		if tc.avgS > 0 {
			a.sem <- struct{}{}
			a.release(time.Duration(tc.avgS * float64(time.Second)))
		}
		a.waiting.Store(tc.waiting)
		got := a.retryAfter()
		if got != tc.want {
			t.Fatalf("case %d (avg %.2fs, %d waiting): retryAfter %v, want %v",
				i, tc.avgS, tc.waiting, got, tc.want)
		}
		if got%time.Second != 0 {
			t.Fatalf("case %d: retryAfter %v is not a whole second", i, got)
		}
	}
}
