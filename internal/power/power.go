// Package power models per-core power consumption and the discrete DVFS
// running modes of the paper:
//
//	P_i(t) = α(v_i) + β·T_i(t) + γ(v_i)·v_i³        (paper eq. (1))
//
// where the α term is the temperature-independent part of the leakage,
// β·T is the linearized leakage/temperature dependency, and γ·v³ is the
// dynamic power. The paper treats supply voltage v and working frequency f
// interchangeably as the normalized processing speed (its motivation
// example computes throughput directly as the time-average of voltages),
// so a Mode's Speed equals its voltage in volts.
//
// The default parameter values are abstracted from McPAT-class numbers for
// a 4×4 mm² core at 65 nm and calibrated (see internal/thermal and
// EXPERIMENTS.md) so that the paper's motivation example reproduces in
// shape: on the 3×1 platform with Tmax = 65 °C the ideal continuous
// voltages land near 1.17–1.21 V, all-cores-at-1.3 V is thermally
// infeasible, and 0.6 V everywhere is deeply feasible.
package power

import (
	"fmt"
	"math"
	"sort"
)

// Mode is one DVFS running mode. The paper characterizes a mode by a
// (v, f) pair and then uses v and f interchangeably as the processing
// speed; we keep both fields to make that explicit.
type Mode struct {
	Voltage float64 // supply voltage in volts; 0 means the core is off
	Freq    float64 // normalized working frequency (= Voltage by convention)
}

// ModeOff is the inactive mode (v = f = 0).
var ModeOff = Mode{}

// NewMode returns the running mode for supply voltage v with the paper's
// f ≡ v speed convention.
func NewMode(v float64) Mode { return Mode{Voltage: v, Freq: v} }

// Speed returns the normalized processing speed of the mode (work per unit
// time); the paper's throughput metric (eq. (5)) averages this quantity.
func (m Mode) Speed() float64 { return m.Freq }

// IsOff reports whether the mode is the inactive mode.
func (m Mode) IsOff() bool { return m.Voltage == 0 && m.Freq == 0 }

func (m Mode) String() string { return fmt.Sprintf("%.2fV", m.Voltage) }

// Model holds the coefficients of the per-core power equation (1).
// The same coefficients apply to every core (the platform is homogeneous,
// as in the paper's evaluation); heterogeneity can be modeled by giving
// cores distinct Models.
type Model struct {
	// Alpha is the temperature-independent leakage power in watts while
	// the core is active. The paper allows α(v); we use a constant plus a
	// small voltage-proportional term, which preserves the convexity
	// required by Theorem 3.
	Alpha float64
	// AlphaV scales the voltage-linear component of leakage (W/V).
	AlphaV float64
	// Beta is the leakage/temperature slope in W/K. Temperatures in this
	// codebase are normalized to ambient, so the β·T_amb part of the
	// absolute-temperature leakage is folded into Alpha by the caller
	// (see FoldAmbient).
	Beta float64
	// Gamma scales dynamic power: P_dyn = Gamma·v³ (W/V³).
	Gamma float64
}

// DefaultModel returns the calibrated 65 nm / 4×4 mm² core coefficients
// used throughout the experiments.
func DefaultModel() Model {
	return Model{
		Alpha:  0.8,  // W, leakage floor at ambient
		AlphaV: 0.9,  // W/V
		Beta:   0.05, // W/K of temperature rise above ambient
		Gamma:  6.2,  // W/V³ ⇒ ~13.6 W dynamic at 1.3 V
	}
}

// Static returns the temperature-independent power ψ(v) = α(v) + γ(v)·v³
// of an active core at voltage v, in watts. An off core consumes nothing.
// This is the Ψ vector entry of the thermal model's B(v) = C⁻¹Ψ(v).
func (p Model) Static(m Mode) float64 {
	if m.IsOff() {
		return 0
	}
	v := m.Voltage
	return p.Alpha + p.AlphaV*v + p.Gamma*v*v*v
}

// Total returns the full power of an active core at voltage v and
// temperature tRise above ambient: Static(v) + β·tRise.
func (p Model) Total(m Mode, tRise float64) float64 {
	if m.IsOff() {
		return 0
	}
	return p.Static(m) + p.Beta*tRise
}

// VoltageForStatic inverts Static: it returns the voltage v ≥ 0 such that
// ψ(v) = want. It returns an error if want is below the power floor of the
// lowest usable voltage (i.e. no non-negative voltage achieves it).
func (p Model) VoltageForStatic(want float64) (float64, error) {
	if want < p.Alpha {
		return 0, fmt.Errorf("power: static power %.4g W below leakage floor %.4g W", want, p.Alpha)
	}
	// ψ(v) = α + αv·v + γ·v³ is strictly increasing for v ≥ 0; bisect.
	lo, hi := 0.0, 2.0
	for p.Static(NewMode(hi)) < want {
		hi *= 2
		if hi > 64 {
			return 0, fmt.Errorf("power: static power %.4g W unreachable", want)
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if p.Static(NewMode(mid)) < want {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// LevelSet is an ordered set of available discrete supply voltages.
type LevelSet struct {
	volts []float64
}

// NewLevelSet returns a level set from the given voltages (deduplicated,
// sorted ascending). At least one positive voltage is required.
func NewLevelSet(volts ...float64) (*LevelSet, error) {
	if len(volts) == 0 {
		return nil, fmt.Errorf("power: empty level set")
	}
	vs := append([]float64(nil), volts...)
	sort.Float64s(vs)
	out := vs[:0]
	var prev float64 = math.Inf(-1)
	for _, v := range vs {
		if v <= 0 {
			return nil, fmt.Errorf("power: non-positive voltage %g in level set", v)
		}
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return &LevelSet{volts: out}, nil
}

// MustLevelSet is NewLevelSet that panics on error.
func MustLevelSet(volts ...float64) *LevelSet {
	ls, err := NewLevelSet(volts...)
	if err != nil {
		panic(err)
	}
	return ls
}

// PaperLevels returns the paper's Table IV level selections for
// n ∈ {2,3,4,5} voltage levels.
func PaperLevels(n int) (*LevelSet, error) {
	switch n {
	case 2:
		return NewLevelSet(0.6, 1.3)
	case 3:
		return NewLevelSet(0.6, 0.8, 1.3)
	case 4:
		return NewLevelSet(0.6, 0.8, 1.0, 1.3)
	case 5:
		return NewLevelSet(0.6, 0.8, 1.0, 1.2, 1.3)
	default:
		return nil, fmt.Errorf("power: paper defines level sets for 2..5 levels, not %d", n)
	}
}

// FullRange returns the paper's full DVFS range [0.6 V, 1.3 V] in 0.05 V
// steps (15 modes), used by the EXS scalability experiments.
func FullRange() *LevelSet {
	var vs []float64
	for v := 0.60; v <= 1.3+1e-9; v += 0.05 {
		vs = append(vs, math.Round(v*100)/100)
	}
	return MustLevelSet(vs...)
}

// Voltages returns the sorted voltages (copy).
func (l *LevelSet) Voltages() []float64 {
	return append([]float64(nil), l.volts...)
}

// Len returns the number of levels.
func (l *LevelSet) Len() int { return len(l.volts) }

// Min returns the lowest available voltage.
func (l *LevelSet) Min() float64 { return l.volts[0] }

// Max returns the highest available voltage.
func (l *LevelSet) Max() float64 { return l.volts[len(l.volts)-1] }

// Mode returns the i-th mode (ascending voltage order).
func (l *LevelSet) Mode(i int) Mode { return NewMode(l.volts[i]) }

// Contains reports whether v is one of the levels (within tol).
func (l *LevelSet) Contains(v, tol float64) bool {
	for _, lv := range l.volts {
		if math.Abs(lv-v) <= tol {
			return true
		}
	}
	return false
}

// Neighbors returns the two levels bracketing v: the greatest level ≤ v
// and the smallest level ≥ v. If v lies below Min (above Max) both returns
// equal Min (Max). If v coincides with a level (within 1e-9) both returns
// equal that level.
func (l *LevelSet) Neighbors(v float64) (lo, hi float64) {
	vs := l.volts
	if v <= vs[0] {
		return vs[0], vs[0]
	}
	if v >= vs[len(vs)-1] {
		return vs[len(vs)-1], vs[len(vs)-1]
	}
	i := sort.SearchFloat64s(vs, v)
	// vs[i-1] < v ≤ vs[i].
	if math.Abs(vs[i]-v) <= 1e-9 {
		return vs[i], vs[i]
	}
	return vs[i-1], vs[i]
}

// LowerNeighbor returns the greatest level ≤ v, or Min if v is below every
// level (the paper's LNS rounding).
func (l *LevelSet) LowerNeighbor(v float64) float64 {
	lo, _ := l.Neighbors(v)
	return lo
}

// TransitionOverhead captures the cost of a DVFS mode switch: the clock is
// halted for Tau seconds per transition (paper §V; 5 µs in the evaluation).
type TransitionOverhead struct {
	Tau float64 // seconds of stalled execution per voltage transition
}

// DefaultOverhead returns the paper's evaluation setting, τ = 5 µs.
func DefaultOverhead() TransitionOverhead { return TransitionOverhead{Tau: 5e-6} }

// Delta returns δ_i = (v_H+v_L)·τ/(v_H−v_L), the seconds by which the
// high-voltage interval must be extended (and the low-voltage interval
// shortened) per transition to keep the throughput unchanged (paper §V).
// It returns +Inf when v_H == v_L (no two-mode oscillation to repair).
func (o TransitionOverhead) Delta(vH, vL float64) float64 {
	if vH <= vL {
		return math.Inf(1)
	}
	return (vH + vL) * o.Tau / (vH - vL)
}

// MaxM returns M_i = ⌊t_L/(δ_i+τ)⌋, the largest oscillation count for
// which the low-voltage interval t_L can still absorb the transition
// overhead (paper §V). A non-oscillating core returns a very large M.
func (o TransitionOverhead) MaxM(tL, vH, vL float64) int {
	const unbounded = math.MaxInt32
	if vH <= vL || o.Tau <= 0 {
		return unbounded
	}
	d := o.Delta(vH, vL)
	m := int(math.Floor(tL / (d + o.Tau)))
	if m < 1 {
		return 1
	}
	if m > unbounded {
		return unbounded
	}
	return m
}
