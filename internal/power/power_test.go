package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModeBasics(t *testing.T) {
	m := NewMode(1.2)
	if m.Voltage != 1.2 || m.Freq != 1.2 || m.Speed() != 1.2 {
		t.Fatalf("mode = %+v", m)
	}
	if m.IsOff() {
		t.Fatal("active mode reported off")
	}
	if !ModeOff.IsOff() {
		t.Fatal("ModeOff not off")
	}
	if m.String() != "1.20V" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestStaticPowerMonotoneInVoltage(t *testing.T) {
	p := DefaultModel()
	prev := 0.0
	for v := 0.6; v <= 1.3; v += 0.05 {
		cur := p.Static(NewMode(v))
		if cur <= prev {
			t.Fatalf("Static not increasing at v=%v", v)
		}
		prev = cur
	}
	if p.Static(ModeOff) != 0 {
		t.Fatal("off core must consume no power")
	}
}

func TestTotalAddsLeakage(t *testing.T) {
	p := DefaultModel()
	m := NewMode(1.0)
	if got, want := p.Total(m, 20), p.Static(m)+20*p.Beta; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if p.Total(ModeOff, 50) != 0 {
		t.Fatal("off core must consume no power even when hot")
	}
}

func TestVoltageForStaticRoundTrip(t *testing.T) {
	p := DefaultModel()
	f := func(raw float64) bool {
		v := 0.3 + math.Mod(math.Abs(raw), 1.2) // 0.3..1.5 V
		want := p.Static(NewMode(v))
		got, err := p.VoltageForStatic(want)
		if err != nil {
			return false
		}
		return math.Abs(got-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVoltageForStaticUnreachable(t *testing.T) {
	p := DefaultModel()
	if _, err := p.VoltageForStatic(0.01); err == nil {
		t.Fatal("expected error below leakage floor")
	}
}

func TestLevelSetConstruction(t *testing.T) {
	ls, err := NewLevelSet(1.3, 0.6, 0.6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	got := ls.Voltages()
	want := []float64{0.6, 0.8, 1.3}
	if len(got) != len(want) {
		t.Fatalf("Voltages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Voltages = %v", got)
		}
	}
	if ls.Min() != 0.6 || ls.Max() != 1.3 || ls.Len() != 3 {
		t.Fatal("min/max/len wrong")
	}
	if !ls.Contains(0.8, 0) || ls.Contains(0.7, 1e-3) {
		t.Fatal("Contains wrong")
	}
	if ls.Mode(1).Voltage != 0.8 {
		t.Fatal("Mode wrong")
	}
}

func TestLevelSetErrors(t *testing.T) {
	if _, err := NewLevelSet(); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := NewLevelSet(0.6, -0.1); err == nil {
		t.Fatal("negative voltage must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLevelSet must panic")
		}
	}()
	MustLevelSet()
}

func TestPaperLevels(t *testing.T) {
	for n := 2; n <= 5; n++ {
		ls, err := PaperLevels(n)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Len() != n {
			t.Fatalf("PaperLevels(%d).Len = %d", n, ls.Len())
		}
		if ls.Min() != 0.6 || ls.Max() != 1.3 {
			t.Fatalf("PaperLevels(%d) range wrong", n)
		}
	}
	if _, err := PaperLevels(6); err == nil {
		t.Fatal("expected error for undefined level count")
	}
}

func TestFullRange(t *testing.T) {
	ls := FullRange()
	if ls.Len() != 15 {
		t.Fatalf("FullRange has %d levels, want 15", ls.Len())
	}
	if ls.Min() != 0.6 || ls.Max() != 1.3 {
		t.Fatalf("FullRange bounds [%v,%v]", ls.Min(), ls.Max())
	}
}

func TestNeighbors(t *testing.T) {
	ls := MustLevelSet(0.6, 0.8, 1.0, 1.3)
	cases := []struct {
		v, lo, hi float64
	}{
		{0.5, 0.6, 0.6},
		{0.6, 0.6, 0.6},
		{0.7, 0.6, 0.8},
		{0.8, 0.8, 0.8},
		{1.05, 1.0, 1.3},
		{1.3, 1.3, 1.3},
		{1.5, 1.3, 1.3},
	}
	for _, c := range cases {
		lo, hi := ls.Neighbors(c.v)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("Neighbors(%v) = (%v,%v), want (%v,%v)", c.v, lo, hi, c.lo, c.hi)
		}
	}
	if ls.LowerNeighbor(1.05) != 1.0 {
		t.Fatal("LowerNeighbor wrong")
	}
}

// Property: Neighbors always bracket the query and are actual levels.
func TestNeighborsBracketProperty(t *testing.T) {
	ls := FullRange()
	f := func(raw float64) bool {
		v := 0.4 + math.Mod(math.Abs(raw), 1.2)
		lo, hi := ls.Neighbors(v)
		if !ls.Contains(lo, 1e-12) || !ls.Contains(hi, 1e-12) {
			return false
		}
		if v <= ls.Min() {
			return lo == ls.Min() && hi == ls.Min()
		}
		if v >= ls.Max() {
			return lo == ls.Max() && hi == ls.Max()
		}
		return lo <= v+1e-9 && hi >= v-1e-9 && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransitionOverheadDelta(t *testing.T) {
	o := DefaultOverhead()
	d := o.Delta(1.3, 0.6)
	want := (1.3 + 0.6) * 5e-6 / (1.3 - 0.6)
	if math.Abs(d-want) > 1e-15 {
		t.Fatalf("Delta = %v, want %v", d, want)
	}
	if !math.IsInf(o.Delta(0.6, 0.6), 1) {
		t.Fatal("Delta must be +Inf for equal voltages")
	}
}

func TestMaxM(t *testing.T) {
	o := DefaultOverhead()
	// t_L = 10 ms, δ ≈ 13.57 µs ⇒ M = ⌊10e-3/18.57e-6⌋ = 538.
	m := o.MaxM(10e-3, 1.3, 0.6)
	d := o.Delta(1.3, 0.6)
	want := int(math.Floor(10e-3 / (d + o.Tau)))
	if m != want {
		t.Fatalf("MaxM = %d, want %d", m, want)
	}
	if o.MaxM(10e-3, 0.6, 0.6) != math.MaxInt32 {
		t.Fatal("constant-mode core should be unbounded")
	}
	if o.MaxM(1e-9, 1.3, 0.6) != 1 {
		t.Fatal("tiny low interval must clamp M to 1")
	}
	zero := TransitionOverhead{}
	if zero.MaxM(1e-3, 1.3, 0.6) != math.MaxInt32 {
		t.Fatal("zero overhead should be unbounded")
	}
}

func TestNeighborsRandomizedAgainstLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ls := MustLevelSet(0.6, 0.7, 0.9, 1.1, 1.25, 1.3)
	for k := 0; k < 500; k++ {
		v := 0.4 + r.Float64()*1.1
		lo, hi := ls.Neighbors(v)
		// Linear reference.
		wlo, whi := ls.Min(), ls.Max()
		if v <= ls.Min() {
			whi = ls.Min()
		} else if v >= ls.Max() {
			wlo = ls.Max()
		} else {
			for _, x := range ls.Voltages() {
				if x <= v {
					wlo = x
				}
			}
			for i := ls.Len() - 1; i >= 0; i-- {
				if x := ls.Voltages()[i]; x >= v {
					whi = x
				}
			}
		}
		if lo != wlo || hi != whi {
			t.Fatalf("Neighbors(%v) = (%v,%v), want (%v,%v)", v, lo, hi, wlo, whi)
		}
	}
}
