package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

func testModel(t testing.TB, rows, cols int) *Model {
	t.Helper()
	m, err := Default(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniformModes(n int, v float64) []power.Mode {
	modes := make([]power.Mode, n)
	for i := range modes {
		modes[i] = power.NewMode(v)
	}
	return modes
}

func TestModelShape(t *testing.T) {
	m := testModel(t, 3, 2)
	if m.NumCores() != 6 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	if m.NumNodes() != 13 {
		t.Fatalf("NumNodes = %d, want 2·6+1", m.NumNodes())
	}
	if m.Floorplan().NumCores() != 6 {
		t.Fatal("floorplan mismatch")
	}
}

func TestConductanceMatrixIsSymmetricLaplacianLike(t *testing.T) {
	m := testModel(t, 3, 3)
	g := m.Conductance()
	n := m.NumNodes()
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
				t.Fatalf("G not symmetric at (%d,%d)", i, j)
			}
			if i != j && g.At(i, j) > 0 {
				t.Fatalf("positive off-diagonal at (%d,%d)", i, j)
			}
			rowSum += g.At(i, j)
		}
		// Row sums are the conductances to ambient: ≥ 0, and > 0 for at
		// least the sink node.
		if rowSum < -1e-12 {
			t.Fatalf("row %d sums to %v < 0", i, rowSum)
		}
	}
}

func TestStabilityAndPositivity(t *testing.T) {
	for _, cfg := range [][2]int{{2, 1}, {3, 1}, {3, 2}, {3, 3}} {
		m := testModel(t, cfg[0], cfg[1])
		if !m.Eigen().Stable() {
			t.Fatalf("%v: model unstable", cfg)
		}
		if tc := m.DominantTimeConstant(); tc <= 0 || tc > 600 {
			t.Fatalf("%v: implausible dominant time constant %v s", cfg, tc)
		}
	}
}

func TestSteadyStateFixedPoint(t *testing.T) {
	m := testModel(t, 3, 1)
	modes := uniformModes(3, 1.0)
	tInf := m.SteadyState(modes)
	// Stepping from T∞ stays at T∞ for any dt.
	for _, dt := range []float64{1e-3, 0.1, 10} {
		next := m.Step(dt, tInf, modes)
		if !mat.VecEqual(next, tInf, 1e-9) {
			t.Fatalf("steady state not a fixed point at dt=%v", dt)
		}
	}
}

func TestStepSemigroup(t *testing.T) {
	m := testModel(t, 2, 1)
	modes := []power.Mode{power.NewMode(1.3), power.NewMode(0.6)}
	t0 := m.ZeroState()
	oneBig := m.Step(2.0, t0, modes)
	small := t0
	for i := 0; i < 20; i++ {
		small = m.Step(0.1, small, modes)
	}
	if !mat.VecEqual(oneBig, small, 1e-8) {
		t.Fatalf("semigroup violated: %v vs %v", oneBig, small)
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	m := testModel(t, 3, 1)
	modes := uniformModes(3, 1.2)
	tInf := m.SteadyState(modes)
	state := m.ZeroState()
	horizon := 12 * m.DominantTimeConstant()
	state = m.Step(horizon, state, modes)
	if !mat.VecEqual(state, tInf, 1e-3*math.Max(1, mat.VecNormInf(tInf))) {
		t.Fatalf("transient did not converge: %v vs %v", state, tInf)
	}
}

// Property 1 of the paper: with all cores shut down, temperatures decay
// monotonically (element-wise) from any non-negative starting state.
func TestProperty1MonotoneCooling(t *testing.T) {
	m := testModel(t, 3, 2)
	off := make([]power.Mode, 6)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		state := make([]float64, m.NumNodes())
		for i := range state {
			state[i] = r.Float64() * 40
		}
		// Start from a physically reachable state: heat under power first
		// so the state respects the network's internal structure.
		state = m.Step(5, state, uniformModes(6, 1.0))
		prev := state
		for k := 0; k < 12; k++ {
			next := m.Step(0.5, prev, off)
			for i := range next {
				if next[i] > prev[i]+1e-9 {
					return false
				}
				if next[i] < -1e-9 {
					return false
				}
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Superposition: T∞ is linear in the static power vector. The proof of
// Theorem 2 leans on exactly this LTI property.
func TestSteadyStateSuperposition(t *testing.T) {
	m := testModel(t, 3, 1)
	a := []power.Mode{power.NewMode(1.3), power.ModeOff, power.ModeOff}
	b := []power.Mode{power.ModeOff, power.NewMode(0.8), power.NewMode(0.6)}
	sum := mat.VecAdd(m.SteadyState(a), m.SteadyState(b))
	// Combined mode vector injects the same total Ψ.
	comb := []power.Mode{power.NewMode(1.3), power.NewMode(0.8), power.NewMode(0.6)}
	if !mat.VecEqual(sum, m.SteadyState(comb), 1e-9) {
		t.Fatal("steady-state superposition violated")
	}
}

// More power never cools any node (inverse positivity).
func TestMonotonicityInPower(t *testing.T) {
	m := testModel(t, 3, 3)
	lo := m.SteadyState(uniformModes(9, 0.6))
	hi := m.SteadyState(uniformModes(9, 1.3))
	if !mat.VecAllGE(hi, lo) {
		t.Fatal("raising all voltages lowered some node temperature")
	}
}

// Calibration: the repository defaults must reproduce the paper's
// motivation-example shape on the 3×1 platform with Tmax = 65 °C
// (30 K rise above the 35 °C ambient).
func TestCalibration3x1MotivationShape(t *testing.T) {
	m := testModel(t, 3, 1)
	const maxRise = 30 // 65 °C − 35 °C

	// (a) All cores at the top voltage must be thermally infeasible.
	hot := m.SteadyStateCores(uniformModes(3, 1.3))
	if maxT, _ := mat.VecMax(hot); maxT <= maxRise {
		t.Fatalf("all-1.3V steady rise %.2f K should exceed %v K", maxT, maxRise)
	}

	// (b) All cores at the bottom voltage must be deeply feasible.
	cold := m.SteadyStateCores(uniformModes(3, 0.6))
	if maxT, _ := mat.VecMax(cold); maxT >= 0.7*maxRise {
		t.Fatalf("all-0.6V steady rise %.2f K should be well below %v K", maxT, maxRise)
	}

	// (c) Under a uniform voltage the middle core is the hottest
	// (heat interference — the reason the paper's ideal middle-core
	// voltage 1.1748 V is below the end cores' 1.2085 V).
	uni := m.SteadyStateCores(uniformModes(3, 1.2))
	if !(uni[1] > uni[0] && uni[1] > uni[2]) {
		t.Fatalf("middle core not hottest: %v", uni)
	}
	if math.Abs(uni[0]-uni[2]) > 1e-9 {
		t.Fatalf("end cores should be symmetric: %v", uni)
	}

	// (d) A uniform voltage in the 1.1–1.25 V band should straddle the
	// 30 K budget, so the ideal per-core voltages land in that band.
	low := m.SteadyStateCores(uniformModes(3, 1.1))
	high := m.SteadyStateCores(uniformModes(3, 1.25))
	lowMax, _ := mat.VecMax(low)
	highMax, _ := mat.VecMax(high)
	if !(lowMax < maxRise && highMax > maxRise) {
		t.Fatalf("ideal band miscalibrated: rise(1.1V)=%.2f rise(1.25V)=%.2f budget=%v",
			lowMax, highMax, maxRise)
	}
}

func TestAbsoluteRiseRoundTrip(t *testing.T) {
	m := testModel(t, 2, 1)
	if m.Absolute(30) != 65 {
		t.Fatalf("Absolute(30) = %v", m.Absolute(30))
	}
	if m.Rise(65) != 30 {
		t.Fatalf("Rise(65) = %v", m.Rise(65))
	}
}

func TestAMatrixConsistency(t *testing.T) {
	m := testModel(t, 2, 1)
	// The eigendecomposition must reproduce A = C⁻¹(βE−G).
	if !m.Eigen().Matrix().Equal(m.A(), 1e-8) {
		t.Fatal("Eigen().Matrix() != A()")
	}
}

func TestUnitResponses(t *testing.T) {
	m := testModel(t, 3, 1)
	ur := m.UnitResponses()
	if r, c := ur.Dims(); r != m.NumNodes() || c != 3 {
		t.Fatalf("UnitResponses dims %d×%d", r, c)
	}
	// Composing unit responses with the Ψ vector must equal SteadyState.
	modes := []power.Mode{power.NewMode(0.6), power.NewMode(1.0), power.NewMode(1.3)}
	psiCores := make([]float64, 3)
	for i, md := range modes {
		psiCores[i] = m.Power().Static(md)
	}
	if !mat.VecEqual(ur.MulVec(psiCores), m.SteadyState(modes), 1e-9) {
		t.Fatal("UnitResponses inconsistent with SteadyState")
	}
}

func TestBVec(t *testing.T) {
	m := testModel(t, 2, 1)
	modes := uniformModes(2, 1.0)
	b := m.BVec(modes)
	psi := m.Psi(modes)
	c := m.Capacitances()
	for i := range b {
		if math.Abs(b[i]*c[i]-psi[i]) > 1e-12 {
			t.Fatalf("BVec[%d] inconsistent", i)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	m := testModel(t, 2, 1)
	mustPanic(t, func() { m.Psi(uniformModes(3, 1)) })
	mustPanic(t, func() { m.Step(1, make([]float64, 2), uniformModes(2, 1)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCoreLevelModel(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	m, err := NewCoreLevelModel(fp, DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 3 || m.NumCores() != 3 {
		t.Fatalf("core-level dims: %d nodes, %d cores", m.NumNodes(), m.NumCores())
	}
	if !m.Eigen().Stable() {
		t.Fatal("core-level model unstable")
	}
	uni := m.SteadyStateCores(uniformModes(3, 1.2))
	if !(uni[1] > uni[0]) {
		t.Fatalf("middle core should be hottest: %v", uni)
	}
	// Invalid parameters are rejected.
	if _, err := NewCoreLevelModel(fp, CoreLevelParams{}, power.DefaultModel()); err == nil {
		t.Fatal("expected error for zero parameters")
	}
}

func TestDefaultErrorPath(t *testing.T) {
	if _, err := Default(0, 1); err == nil {
		t.Fatal("expected error for invalid grid")
	}
}

func TestAccessorsAndStepToward(t *testing.T) {
	fp := floorplan.MustGrid(2, 1, 4e-3)
	md := MustModel(fp, HotSpot65nm(), power.DefaultModel())
	if md.Package().AmbientC != 35 {
		t.Fatalf("Package().AmbientC = %v", md.Package().AmbientC)
	}
	modes := uniformModes(2, 1.0)
	tinf := md.SteadyState(modes)
	// StepToward with the precomputed target equals Step.
	a := md.Step(0.1, md.ZeroState(), modes)
	b := md.StepToward(0.1, md.ZeroState(), tinf)
	if !mat.VecEqual(a, b, 1e-12) {
		t.Fatal("StepToward diverges from Step")
	}
	cores := md.CoreTemps(a)
	if len(cores) != 2 {
		t.Fatalf("CoreTemps length %d", len(cores))
	}
	cores[0] = 999
	if md.CoreTemps(a)[0] == 999 {
		t.Fatal("CoreTemps must return a copy")
	}
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pp := HotSpot65nm()
	pp.ConvectionR = -1 // breaks the conductance network
	MustModel(floorplan.MustGrid(2, 1, 4e-3), pp, power.Model{Alpha: 1, Beta: 100, Gamma: 6})
}
