package thermal

import (
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

func TestStackedValidation(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	pm := power.DefaultModel()
	if _, err := NewStackedModel(fp, StackParams{PackageParams: HotSpot65nm()}, pm); err == nil {
		t.Fatal("zero layers must error")
	}
	sp := DefaultStack(2)
	sp.BondThickness = 0
	if _, err := NewStackedModel(fp, sp, pm); err == nil {
		t.Fatal("zero bond thickness must error")
	}
}

func TestStackedShape(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	md, err := NewStackedModel(fp, DefaultStack(2), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if md.NumCores() != 6 {
		t.Fatalf("NumCores = %d, want 6 (2 layers × 3)", md.NumCores())
	}
	if md.NumNodes() != 6+3+1 {
		t.Fatalf("NumNodes = %d", md.NumNodes())
	}
	if !md.Eigen().Stable() {
		t.Fatal("stacked model unstable")
	}
}

func TestStackedSingleLayerMatchesPlanar(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	pm := power.DefaultModel()
	planar, err := NewModel(fp, HotSpot65nm(), pm)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := NewStackedModel(fp, DefaultStack(1), pm)
	if err != nil {
		t.Fatal(err)
	}
	modes := uniformModes(3, 1.1)
	if !mat.VecEqual(planar.SteadyStateCores(modes), stack.SteadyStateCores(modes), 1e-9) {
		t.Fatalf("1-layer stack deviates from planar:\n%v\n%v",
			planar.SteadyStateCores(modes), stack.SteadyStateCores(modes))
	}
}

func TestStackedUpperLayerRunsHotter(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	md, err := NewStackedModel(fp, DefaultStack(2), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	temps := md.SteadyStateCores(uniformModes(6, 1.0))
	for i := 0; i < 3; i++ {
		bottom, top := temps[i], temps[3+i]
		if top <= bottom {
			t.Fatalf("top-layer core %d (%.2f K) should run hotter than bottom (%.2f K)", i, top, bottom)
		}
		// The bond film is a serious barrier: expect a multi-kelvin gap.
		if top-bottom < 1 {
			t.Fatalf("stack gap implausibly small: %.3f K", top-bottom)
		}
	}
}

func TestStackedTighterThanPlanarSameCoreCount(t *testing.T) {
	pm := power.DefaultModel()
	planar, err := Default(3, 2) // 6 cores side by side
	if err != nil {
		t.Fatal(err)
	}
	stack, err := NewStackedModel(floorplan.MustGrid(3, 1, 4e-3), DefaultStack(2), pm) // 6 cores stacked
	if err != nil {
		t.Fatal(err)
	}
	modes := uniformModes(6, 1.0)
	pMax, _ := mat.VecMax(planar.SteadyStateCores(modes))
	sMax, _ := mat.VecMax(stack.SteadyStateCores(modes))
	if sMax <= pMax {
		t.Fatalf("stacking should be thermally tighter: stacked %.2f K vs planar %.2f K", sMax, pMax)
	}
}

func TestStackedMonotoneCooling(t *testing.T) {
	fp := floorplan.MustGrid(2, 1, 4e-3)
	md, err := NewStackedModel(fp, DefaultStack(3), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	off := make([]power.Mode, md.NumCores())
	state := md.Step(5, md.ZeroState(), uniformModes(md.NumCores(), 1.2))
	prev := state
	for k := 0; k < 10; k++ {
		next := md.Step(1, prev, off)
		for i := range next {
			if next[i] > prev[i]+1e-9 {
				t.Fatalf("cooling not monotone at node %d", i)
			}
		}
		prev = next
	}
}
