package thermal

import (
	"errors"
	"fmt"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

// CoreLevelParams parameterize the simplified single-layer thermal model
// (one node per core, as in Wang & Ranka's "simple thermal model" that the
// paper cites [27]): each core couples to ambient through RSelf and to each
// adjacent core through RLateral.
type CoreLevelParams struct {
	RSelf    float64 // K/W, core node to ambient
	RLateral float64 // K/W, between adjacent core nodes
	CCore    float64 // J/K, per-core lumped capacitance
	// GEdge adds ambient conductance proportional to a core's exposed die
	// boundary (W/(K·m)), so edge and corner cores run slightly cooler
	// than interior ones — the heat-interference asymmetry the layered
	// model produces through its shared spreader and sink.
	GEdge    float64
	AmbientC float64 // °C
}

// DefaultCoreLevel returns single-layer parameters producing time constants
// and steady temperatures comparable to the layered default — used by the
// model-ablation benchmarks.
func DefaultCoreLevel() CoreLevelParams {
	return CoreLevelParams{
		RSelf:    2.0,
		RLateral: 2.5,
		CCore:    4.0,
		GEdge:    20,
		AmbientC: 35,
	}
}

// NewCoreLevelModel assembles the single-layer model. The returned Model
// supports the full API; NumNodes == NumCores.
func NewCoreLevelModel(fp *floorplan.Floorplan, cp CoreLevelParams, pm power.Model) (*Model, error) {
	if cp.RSelf <= 0 || cp.RLateral <= 0 || cp.CCore <= 0 {
		return nil, errors.New("thermal: core-level parameters must be positive")
	}
	n := fp.NumCores()
	g := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		g.Add(i, i, 1/cp.RSelf+cp.GEdge*fp.BoundaryEdges(i))
		for _, j := range fp.Neighbors(i) {
			if j <= i {
				continue
			}
			c := 1 / cp.RLateral
			g.Add(i, i, c)
			g.Add(j, j, c)
			g.Add(i, j, -c)
			g.Add(j, i, -c)
		}
	}
	cDiag := mat.VecFill(n, cp.CCore)

	mm := g.Clone().Scale(-1)
	for i := 0; i < n; i++ {
		mm.Add(i, i, pm.Beta)
	}
	eig, err := mat.DecomposeSymmetrizable(cDiag, mm)
	if err != nil {
		return nil, fmt.Errorf("thermal: core-level eigendecomposition failed: %w", err)
	}
	if !eig.Stable() {
		return nil, errors.New("thermal: core-level model unstable")
	}
	// G − βE is symmetric positive definite for any physical calibration;
	// Cholesky halves the solve cost and doubles as the SPD sanity check.
	hFull, err := mat.InverseSPD(mm.Clone().Scale(-1))
	if err != nil {
		return nil, fmt.Errorf("thermal: core-level steady-state matrix singular: %w", err)
	}
	for _, v := range hFull.RawData() {
		if v < -1e-12 {
			return nil, errors.New("thermal: core-level inverse positivity violated")
		}
	}
	pp := PackageParams{AmbientC: cp.AmbientC}
	return &Model{
		fp: fp, pp: pp, pm: pm,
		n: n, dim: n,
		cDiag: cDiag, g: g, m: mm,
		eig: eig, hFull: hFull,
	}, nil
}
