package thermal

import (
	"math"
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

func TestHeteroValidation(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	pm := power.DefaultModel()
	if _, err := NewHeteroModel(fp, HotSpot65nm(), pm, []float64{1, 1}); err == nil {
		t.Fatal("wrong scale count must error")
	}
	if _, err := NewHeteroModel(fp, HotSpot65nm(), pm, []float64{1, 0, 1}); err == nil {
		t.Fatal("zero scale must error")
	}
}

func TestHeteroAllOnesMatchesHomogeneous(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	pm := power.DefaultModel()
	homo, err := NewModel(fp, HotSpot65nm(), pm)
	if err != nil {
		t.Fatal(err)
	}
	het, err := NewHeteroModel(fp, HotSpot65nm(), pm, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	modes := uniformModes(3, 1.1)
	if !mat.VecEqual(homo.SteadyStateCores(modes), het.SteadyStateCores(modes), 1e-12) {
		t.Fatal("unit scales deviate from the homogeneous model")
	}
	if het.CoreScale(0) != 1 || homo.CoreScale(2) != 1 {
		t.Fatal("CoreScale default wrong")
	}
}

func TestHeteroBigCoreRunsHotter(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	pm := power.DefaultModel()
	// A "big" core at an end position vs its mirror-image LITTLE core.
	md, err := NewHeteroModel(fp, HotSpot65nm(), pm, []float64{1.8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	temps := md.SteadyStateCores(uniformModes(3, 1.0))
	if temps[0] <= temps[2] {
		t.Fatalf("big core should run hotter than its mirror: %v", temps)
	}
	if temps[0] <= temps[1] {
		t.Fatalf("1.8× end core should out-heat the middle: %v", temps)
	}
	// Psi reflects the scale directly.
	psi := md.Psi(uniformModes(3, 1.0))
	if math.Abs(psi[0]/psi[2]-1.8) > 1e-12 {
		t.Fatalf("psi scaling wrong: %v", psi)
	}
}

func TestHeteroScaleIsolatedFromCaller(t *testing.T) {
	fp := floorplan.MustGrid(2, 1, 4e-3)
	scales := []float64{1, 2}
	md, err := NewHeteroModel(fp, HotSpot65nm(), power.DefaultModel(), scales)
	if err != nil {
		t.Fatal(err)
	}
	scales[1] = 99 // caller mutation must not leak in
	if md.CoreScale(1) != 2 {
		t.Fatalf("scale leaked: %v", md.CoreScale(1))
	}
}
