// Package thermal builds the compact RC thermal model of a multi-core
// package and exposes the linear time-invariant system the paper's
// analysis rests on:
//
//	dT/dt = A·T + B(v),   A = C⁻¹·(βE − G),   B(v) = C⁻¹·Ψ(v)     (eq. (2))
//
// where T is the vector of node temperature rises above ambient, G the
// symmetric thermal conductance matrix, C the diagonal capacitance matrix,
// E the diagonal indicator of core nodes (leakage/temperature dependency β
// lives only at cores), and Ψ(v) the per-node temperature-independent
// power injection.
//
// The network is HotSpot-5.02-flavoured (the paper's substrate): one node
// per core in the silicon die, one spreader block under each core, and a
// single heat-sink node coupled to ambient through a convection
// resistance. Lateral conductances connect adjacent die nodes and adjacent
// spreader blocks. The die boundary couples weakly to the package. This
// preserves everything the paper's theorems need — A is symmetrizable with
// real negative eigenvalues and (G−βE)⁻¹ ≥ 0 — while remaining a pure-Go,
// dependency-free substrate.
package thermal

// PackageParams are the geometric and material constants of the thermal
// package. Defaults follow HotSpot-5.02 at the 65 nm node with 4×4 mm²
// cores, with the convection resistance calibrated so that the paper's
// motivation example reproduces in shape (see EXPERIMENTS.md).
type PackageParams struct {
	// --- silicon die ---
	DieThickness float64 // m
	KSilicon     float64 // W/(m·K)
	VolHeatSi    float64 // volumetric heat capacity, J/(m³·K)

	// --- thermal interface material between die and spreader ---
	TIMThickness float64 // m
	KTIM         float64 // W/(m·K)

	// --- copper heat spreader (one block per core) ---
	SpreaderThickness float64 // m
	KCopper           float64 // W/(m·K)
	VolHeatCu         float64 // J/(m³·K)

	// --- heat sink ---
	SinkBaseR   float64 // K/W, spreading resistance from each spreader block into the sink
	SinkCap     float64 // J/K, lumped sink heat capacity
	ConvectionR float64 // K/W, sink to ambient

	// SpreaderRingFactor scales the extra spreader-to-sink conductance a
	// block gains per meter of die boundary it abuts: the copper spreader
	// extends past the die, so border cores shed heat through the
	// surrounding ring — the effect that makes interior cores run hotter
	// than border cores in HotSpot (and drives the paper's asymmetric
	// ideal voltages, 1.1748 V for the middle core vs 1.2085 V for the
	// ends on the 3×1 platform).
	SpreaderRingFactor float64

	// --- die edge ---
	// KEdge couples exposed die perimeter to ambient through the package
	// casing (weak; W/(m·K) equivalent conductivity of the encapsulant).
	KEdge float64

	// AmbientC is the absolute ambient temperature in °C. All model
	// temperatures are rises above this value.
	AmbientC float64
}

// HotSpot65nm returns the default package parameters used by every
// experiment in this repository (paper §VI: HotSpot-5.02 at 65 nm,
// 4×4 mm² cores, ambient 35 °C).
func HotSpot65nm() PackageParams {
	return PackageParams{
		DieThickness: 0.15e-3,
		KSilicon:     100,
		VolHeatSi:    1.75e6,

		TIMThickness: 20e-6,
		KTIM:         4,

		SpreaderThickness: 2e-3,
		KCopper:           400,
		VolHeatCu:         3.55e6,

		SinkBaseR:   0.30,
		SinkCap:     60,
		ConvectionR: 0.50,

		SpreaderRingFactor: 0.5,

		KEdge: 1.5,

		AmbientC: 35,
	}
}
