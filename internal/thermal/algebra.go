package thermal

import (
	"errors"
	"fmt"
	"math"

	"thermosc/internal/mat"
)

// Algebra selects the linear-algebra backend of a Model.
//
// The dense backend eigendecomposes A once at O(dim³) and then evaluates
// every exponential in the eigenbasis — unbeatable for the paper's tiny
// grids and the bit-exact reference everywhere. The sparse backend never
// factors anything dense: steady states go through a sparse Cholesky of
// (G−βE), transients through the Al-Mohy–Higham action of the matrix
// exponential, and the stability/positivity certificates through the
// SPD/M-matrix structure of the RC network (see docs/SPARSE.md). Both
// backends agree to ~1e-10 relative on every kernel; the differential
// suite in sparse_diff_test.go pins the 1e-8 contract.
type Algebra int

const (
	// AlgebraAuto picks dense below SparseCrossoverDim nodes and sparse at
	// or above it.
	AlgebraAuto Algebra = iota
	// AlgebraDense forces the eigendecomposition backend.
	AlgebraDense
	// AlgebraSparse forces the factorization-free sparse backend.
	AlgebraSparse
)

// SparseCrossoverDim is the node count at which AlgebraAuto switches to
// the sparse backend. The O(dim³) Jacobi eigensolve overtakes the sparse
// build cost around dim ≈ 100 (see docs/SPARSE.md for the measurement);
// every floorplan in the repository's historic test corpus (≤ 6×6 planar,
// dim 73) stays below it, so existing dense plans are bit-identical.
const SparseCrossoverDim = 100

func (a Algebra) String() string {
	switch a {
	case AlgebraAuto:
		return "auto"
	case AlgebraDense:
		return "dense"
	case AlgebraSparse:
		return "sparse"
	}
	return fmt.Sprintf("Algebra(%d)", int(a))
}

// modelConfig carries the optional knobs of model assembly.
type modelConfig struct {
	algebra Algebra
	scales  []float64
}

// ModelOpt adjusts model assembly (all constructors accept them).
type ModelOpt func(*modelConfig) error

// WithAlgebra forces the linear-algebra backend instead of the automatic
// dimension-based crossover.
func WithAlgebra(a Algebra) ModelOpt {
	return func(c *modelConfig) error {
		if a != AlgebraAuto && a != AlgebraDense && a != AlgebraSparse {
			return fmt.Errorf("thermal: unknown algebra %d", int(a))
		}
		c.algebra = a
		return nil
	}
}

// WithHeteroScales declares per-core power scales for constructors that
// do not take them positionally (NewStackedModel): core i consumes
// scales[i] times the reference power. Indices are layer-major on a
// stack. nil means homogeneous.
func WithHeteroScales(scales []float64) ModelOpt {
	return func(c *modelConfig) error {
		c.scales = scales
		return nil
	}
}

// applyOpts folds the options into a config.
func applyOpts(opts []ModelOpt) (modelConfig, error) {
	var c modelConfig
	for _, o := range opts {
		if err := o(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// checkScales validates a heterogeneity vector for n cores and returns a
// private copy (nil stays nil).
func checkScales(scales []float64, n int) ([]float64, error) {
	if scales == nil {
		return nil, nil
	}
	if len(scales) != n {
		return nil, fmt.Errorf("thermal: %d core scales for %d cores", len(scales), n)
	}
	for i, s := range scales {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("thermal: non-positive scale %v for core %d", s, i)
		}
	}
	return mat.VecClone(scales), nil
}

// finishModel runs the backend-dependent half of model assembly shared by
// the planar and stacked constructors: build M = βE − G from the
// assembled conductances, choose the algebra, establish the stability and
// inverse-positivity certificates, and wire the Model.
func finishModel(base Model, cfg modelConfig) (*Model, error) {
	md := base
	n, dim := md.n, md.dim

	mm := md.g.Clone().Scale(-1)
	for i := 0; i < n; i++ {
		beta := md.pm.Beta
		if md.scale != nil {
			beta *= md.scale[i]
		}
		mm.Add(i, i, beta)
	}
	md.m = mm

	alg := cfg.algebra
	if alg == AlgebraAuto {
		if dim >= SparseCrossoverDim {
			alg = AlgebraSparse
		} else {
			alg = AlgebraDense
		}
	}
	md.alg = alg

	if alg == AlgebraDense {
		eig, err := mat.DecomposeSymmetrizable(md.cDiag, mm)
		if err != nil {
			return nil, fmt.Errorf("thermal: eigendecomposition failed: %w", err)
		}
		if !eig.Stable() {
			return nil, errUnstable
		}
		// hFull = (G − βE)⁻¹ = (−M)⁻¹. G − βE is symmetric positive
		// definite for any physical calibration; Cholesky halves the solve
		// cost and doubles as the SPD sanity check.
		hFull, err := mat.InverseSPD(mm.Clone().Scale(-1))
		if err != nil {
			return nil, fmt.Errorf("thermal: steady-state matrix singular: %w", err)
		}
		// Inverse positivity is the physical sanity check behind the
		// paper's "−A⁻¹ is a constant matrix which contains all positive
		// elements" (proof of Theorem 3): more power anywhere never cools
		// any node.
		for _, v := range hFull.RawData() {
			if v < -1e-12 {
				return nil, errPositivity
			}
		}
		md.eig = eig
		md.hFull = hFull
		return &md, nil
	}

	// Sparse backend: factor G − βE once (O(nnz) fill for the mesh-plus-
	// sink ordering — the sink node is last, so the near-dense sink row
	// eliminates after the mesh rows). The certificates come for free:
	//
	//   - Cholesky success ⇔ G − βE ≻ 0 ⇔ A = −C⁻¹(G−βE) is Hurwitz, the
	//     same stability condition eig.Stable() checks densely.
	//   - G − βE has non-positive off-diagonals (β only touches the
	//     diagonal); an SPD matrix with non-positive off-diagonals is a
	//     Stieltjes M-matrix, whose inverse is elementwise non-negative —
	//     exactly the Theorem 3 inverse-positivity property, no dim²
	//     inverse scan needed.
	gmbDense := mm.Clone().Scale(-1)
	gmb := mat.NewCSRFromDense(gmbDense)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if i != j && gmbDense.At(i, j) > 0 {
				return nil, errPositivity
			}
		}
	}
	chol, err := mat.FactorizeSparseCholesky(gmb)
	if err != nil {
		return nil, errUnstable
	}
	// A = C⁻¹·M row-scaled into CSR form for the exponential action.
	inv := make([]float64, dim)
	for i, c := range md.cDiag {
		inv[i] = 1 / c
	}
	md.aSp = mat.NewCSRFromDense(mm.MulDiagLeft(inv))
	md.gmb = gmb
	md.chol = chol
	md.tauDom = sparseDominantTau(chol, md.cDiag)
	return &md, nil
}

var (
	errUnstable   = errors.New("thermal: model is unstable (leakage slope β too large for the conductance network)")
	errPositivity = errors.New("thermal: (G−βE)⁻¹ has negative entries; parameters break inverse positivity")
)

// sparseDominantTau computes the slowest thermal time constant by power
// iteration on H = (G−βE)⁻¹·C = −A⁻¹: H is self-adjoint in the C-inner
// product with positive eigenvalues equal to the time constants, so the
// iteration converges to τ_slow. Deterministic all-ones start.
func sparseDominantTau(chol *mat.SparseCholesky, cDiag []float64) float64 {
	dim := len(cDiag)
	v := make([]float64, dim)
	w := make([]float64, dim)
	for i := range v {
		v[i] = 1
	}
	tau := 0.0
	for iter := 0; iter < 500; iter++ {
		for i := range w {
			w[i] = cDiag[i] * v[i]
		}
		chol.SolveVecTo(w, w) // w = H·v
		var num, den float64
		for i := range v {
			num += v[i] * cDiag[i] * w[i]
			den += v[i] * cDiag[i] * v[i]
		}
		next := num / den
		// Normalize for the next round.
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range w {
			v[i] = w[i] / norm
		}
		if iter > 0 && math.Abs(next-tau) <= 1e-12*math.Abs(next) {
			return next
		}
		tau = next
	}
	return tau
}

// Algebra returns the effective linear-algebra backend.
func (md *Model) Algebra() Algebra { return md.alg }

// SparsePath reports whether the model runs on the sparse backend (no
// eigendecomposition: Eigen returns nil and callers must use the sparse
// stepping/solve primitives).
func (md *Model) SparsePath() bool { return md.alg == AlgebraSparse }

// ASparse returns the sparse system matrix A = C⁻¹(βE−G) (nil on the
// dense backend). Shared — treat as read-only.
func (md *Model) ASparse() *mat.CSR { return md.aSp }

// SolveSteadyTo solves (G−βE)·x = b into dst (sparse backend only; dst
// may alias b). This is the T∞ kernel: SolveSteadyTo(dst, Ψ) = T∞.
func (md *Model) SolveSteadyTo(dst, b []float64) []float64 {
	if md.chol == nil {
		panic("thermal: SolveSteadyTo on the dense backend")
	}
	return md.chol.SolveVecTo(dst, b)
}

// StepSparseTo advances the state by dt toward tInf on the sparse
// backend: dst = tInf + e^{A·dt}·(x − tInf). diff is caller scratch of
// node length (overwritten). dst may alias x (in-place stepping) but must
// alias neither tInf nor diff. ws may be nil.
func (md *Model) StepSparseTo(dst, diff []float64, dt float64, x, tInf []float64, ws *mat.ExpmvScratch) []float64 {
	if md.aSp == nil {
		panic("thermal: StepSparseTo on the dense backend")
	}
	for i := range diff {
		diff[i] = x[i] - tInf[i]
	}
	md.aSp.ExpActionTo(dst, dt, diff, ws)
	for i := range dst {
		dst[i] += tInf[i]
	}
	return dst
}
