package thermal

import (
	"math"
	"sync"
	"testing"

	"thermosc/internal/power"
)

// A cache hit must return exactly the bits a recomputation would produce —
// this is what lets the solvers adopt the cache without perturbing plans.
func TestPropagatorBitIdentical(t *testing.T) {
	md := testModel(t, 3, 2)
	prop := NewPropagator(md)
	modes := []power.Mode{
		power.NewMode(0.6), power.NewMode(1.3), power.ModeOff,
		power.NewMode(0.8), power.NewMode(0.6), power.NewMode(1.3),
	}
	direct := md.SteadyState(modes)
	for k := 0; k < 3; k++ { // first call misses, later calls hit
		cached := prop.SteadyState(modes)
		for i := range direct {
			if cached[i] != direct[i] {
				t.Fatalf("run %d: T∞[%d] = %v, want %v", k, i, cached[i], direct[i])
			}
		}
	}

	state := make([]float64, md.NumNodes())
	for i := range state {
		state[i] = 0.5 * float64(i+1)
	}
	tinf := md.SteadyState(modes)
	for _, dt := range []float64{1e-4, 2.5e-3, 20e-3, 1.0} {
		want := md.StepToward(dt, state, tinf)
		for k := 0; k < 2; k++ {
			got := prop.Step(dt, state, tinf)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dt=%v run %d: state[%d] = %v, want %v", dt, k, i, got[i], want[i])
				}
			}
		}
	}
}

// An off core and a (hypothetical) running core at 0 V have different
// static power; the canonical key must not conflate them.
func TestPropagatorKeyDistinguishesOff(t *testing.T) {
	md := testModel(t, 2, 1)
	prop := NewPropagator(md)
	off := []power.Mode{power.ModeOff, power.NewMode(0.6)}
	zeroV := []power.Mode{{Voltage: 0, Freq: 0.1}, power.NewMode(0.6)}
	a := prop.SteadyState(off)
	b := prop.SteadyState(zeroV)
	// The 0 V running core still burns its leakage floor α.
	if a[0] >= b[0] {
		t.Fatalf("off T∞ %v should be cooler than 0 V-active T∞ %v", a[0], b[0])
	}
}

func TestPropagatorHitMissAccounting(t *testing.T) {
	md := testModel(t, 2, 1)
	prop := NewPropagator(md)
	m1 := []power.Mode{power.NewMode(0.6), power.NewMode(1.3)}
	m2 := []power.Mode{power.NewMode(1.3), power.NewMode(0.6)}

	prop.SteadyState(m1)  // miss
	prop.SteadyState(m1)  // hit
	prop.SteadyState(m2)  // miss
	prop.SteadyState(m1)  // hit
	prop.ExpFactors(1e-3) // miss
	prop.ExpFactors(1e-3) // hit
	prop.ExpFactors(2e-3) // miss

	st := prop.Stats()
	if st.SteadyHits != 2 || st.SteadyMisses != 2 {
		t.Fatalf("steady hits/misses = %d/%d, want 2/2", st.SteadyHits, st.SteadyMisses)
	}
	if st.ExpHits != 1 || st.ExpMisses != 2 {
		t.Fatalf("exp hits/misses = %d/%d, want 1/2", st.ExpHits, st.ExpMisses)
	}
}

// Compose must realize the semigroup identity e^{A(s+t)} = e^{As}·e^{At}
// up to round-off of the elementwise product.
func TestPropagatorComposeSemigroup(t *testing.T) {
	md := testModel(t, 3, 1)
	prop := NewPropagator(md)
	s, dt := 3.7e-3, 8.3e-3
	composed := prop.Compose(prop.ExpFactors(s), prop.ExpFactors(dt))
	direct := md.Eigen().ExpLambda(s + dt)
	for i := range direct {
		if math.Abs(composed[i]-direct[i]) > 1e-14*math.Abs(direct[i])+1e-300 {
			t.Fatalf("factor %d: composed %v vs direct %v", i, composed[i], direct[i])
		}
	}
}

// Concurrent mixed-key access must be safe (run under -race in CI) and
// must converge on one shared slice per key.
func TestPropagatorConcurrent(t *testing.T) {
	md := testModel(t, 3, 2)
	prop := NewPropagator(md)
	modeSets := [][]power.Mode{
		{power.NewMode(0.6), power.NewMode(1.3), power.ModeOff, power.NewMode(0.8), power.NewMode(0.6), power.NewMode(1.3)},
		{power.NewMode(1.3), power.NewMode(1.3), power.NewMode(1.3), power.NewMode(0.6), power.NewMode(0.6), power.NewMode(0.6)},
		{power.ModeOff, power.ModeOff, power.NewMode(0.8), power.NewMode(0.8), power.NewMode(1.1), power.NewMode(0.7)},
	}
	state := make([]float64, md.NumNodes())
	for i := range state {
		state[i] = float64(i)
	}
	var wg sync.WaitGroup
	const workers = 8
	results := make([][]float64, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var last []float64
			for k := 0; k < 50; k++ {
				modes := modeSets[(w+k)%len(modeSets)]
				tinf := prop.SteadyState(modes)
				dt := float64(1+k%7) * 1e-3
				last = prop.Step(dt, state, tinf)
				prop.SteadyEigen(modes)
				prop.Compose(prop.ExpFactors(dt), prop.ExpFactors(2*dt))
			}
			results[w] = last
		}(w)
	}
	wg.Wait()
	st := prop.Stats()
	if total := st.SteadyMisses + st.SteadyHits; total < workers*50 {
		t.Fatalf("steady lookups %d, want ≥ %d", total, workers*50)
	}
	// Each distinct mode vector is computed once per racing goroutine at
	// worst; after that every lookup must hit.
	if st.SteadyMisses > int64(len(modeSets)*(workers+1)) {
		t.Fatalf("steady misses %d, want ≤ %d", st.SteadyMisses, len(modeSets)*(workers+1))
	}
	// Worker 0's final step used modeSets[49%3] at dt = 1 ms; it must match
	// an uncached recomputation exactly despite the concurrent churn.
	want := md.StepToward(1e-3, state, md.SteadyState(modeSets[49%len(modeSets)]))
	for i := range want {
		if results[0][i] != want[i] {
			t.Fatalf("concurrent result diverged at node %d: %v vs %v", i, results[0][i], want[i])
		}
	}
}
