package thermal

import (
	"errors"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

// StackParams extends the planar package with the inter-die bond of a 3D
// stack: each die layer couples to the next through a thin bond/underfill
// film (with through-silicon vias), a much poorer path than bulk silicon —
// the reason the paper's introduction calls 3D integration "substantially
// more challenging" thermally.
type StackParams struct {
	PackageParams
	// Layers is the number of stacked die layers (≥ 2 for an actual
	// stack; 1 degenerates to the planar model).
	Layers int
	// BondThickness and KBond characterize the inter-die bond film.
	BondThickness float64 // m
	KBond         float64 // W/(m·K)
}

// DefaultStack returns a two-layer stack over the standard 65 nm package
// with a 25 µm underfill bond at 1.5 W/(m·K) (TSV-enhanced).
func DefaultStack(layers int) StackParams {
	return StackParams{
		PackageParams: HotSpot65nm(),
		Layers:        layers,
		BondThickness: 25e-6,
		KBond:         1.5,
	}
}

// NewStackedModel assembles the thermal model of a 3D stack: Layers die
// layers with the same floorplan, layer 0 bonded to the spreader/sink
// package, layer k+1 stacked on top of layer k. Core indices are
// layer-major: core (L, i) has index L·fp.NumCores() + i, so NumCores =
// Layers × fp.NumCores(). All cores are DVFS-independent, exactly as in
// the planar model — every scheduler in this repository runs unmodified
// on the stacked model. Heterogeneous per-core power scales (layer-major)
// come in through WithHeteroScales.
func NewStackedModel(fp *floorplan.Floorplan, sp StackParams, pm power.Model, opts ...ModelOpt) (*Model, error) {
	cfg, err := applyOpts(opts)
	if err != nil {
		return nil, err
	}
	if sp.Layers < 1 {
		return nil, errors.New("thermal: stack needs at least one layer")
	}
	if sp.BondThickness <= 0 || sp.KBond <= 0 {
		return nil, errors.New("thermal: stack bond parameters must be positive")
	}
	nPer := fp.NumCores()
	n := sp.Layers * nPer // total cores
	scales, err := checkScales(cfg.scales, n)
	if err != nil {
		return nil, err
	}
	dim := n + nPer + 1 // + spreader blocks + sink
	sink := dim - 1
	spreaderBase := n

	pp := sp.PackageParams
	area := fp.CoreArea()
	g := mat.NewDense(dim, dim)
	connect := func(a, b int, cond float64) {
		if cond <= 0 {
			return
		}
		g.Add(a, a, cond)
		if b >= 0 {
			g.Add(b, b, cond)
			g.Add(a, b, -cond)
			g.Add(b, a, -cond)
		}
	}

	rDie := pp.DieThickness / (pp.KSilicon * area)
	rTIM := pp.TIMThickness / (pp.KTIM * area)
	rBond := sp.BondThickness / (sp.KBond * area)
	gLayer0 := 1 / (rDie + rTIM) // bottom layer to its spreader block
	gBond := 1 / (rDie + rBond)  // die k+1 to die k through the bond film
	rSpread := pp.SpreaderThickness / (pp.KCopper * area)
	gSpSink := 1 / (rSpread + pp.SinkBaseR)
	gConv := 1 / pp.ConvectionR

	for i := 0; i < nPer; i++ {
		// Vertical chain: top layer → … → layer 0 → spreader → sink.
		connect(i, spreaderBase+i, gLayer0)
		for l := 1; l < sp.Layers; l++ {
			connect(l*nPer+i, (l-1)*nPer+i, gBond)
		}
		connect(spreaderBase+i, sink, gSpSink)
		if be := fp.BoundaryEdges(i); be > 0 && pp.SpreaderRingFactor > 0 {
			gRing := pp.SpreaderRingFactor * pp.KCopper * pp.SpreaderThickness * be / fp.CoreEdge
			connect(spreaderBase+i, sink, gRing)
		}
		// Die-edge escape exists on every layer.
		if be := fp.BoundaryEdges(i); be > 0 && pp.KEdge > 0 {
			gEdge := pp.KEdge * be * pp.DieThickness / (fp.CoreEdge / 2)
			for l := 0; l < sp.Layers; l++ {
				connect(l*nPer+i, -1, gEdge)
			}
		}
	}
	connect(sink, -1, gConv)

	// Lateral conductances within every die layer and within the spreader.
	for i := 0; i < nPer; i++ {
		for _, j := range fp.Neighbors(i) {
			if j <= i {
				continue
			}
			shared := fp.SharedEdge(i, j)
			dist := fp.CenterDistance(i, j)
			gLatSi := pp.KSilicon * shared * pp.DieThickness / dist
			gLatCu := pp.KCopper * shared * pp.SpreaderThickness / dist
			for l := 0; l < sp.Layers; l++ {
				connect(l*nPer+i, l*nPer+j, gLatSi)
			}
			connect(spreaderBase+i, spreaderBase+j, gLatCu)
		}
	}

	cDiag := make([]float64, dim)
	cDie := pp.VolHeatSi * area * pp.DieThickness
	cSp := pp.VolHeatCu * area * pp.SpreaderThickness
	for i := 0; i < n; i++ {
		cDiag[i] = cDie
	}
	for i := 0; i < nPer; i++ {
		cDiag[spreaderBase+i] = cSp
	}
	cDiag[sink] = pp.SinkCap

	return finishModel(Model{
		fp: fp, pp: pp, pm: pm,
		n: n, dim: dim, scale: scales,
		cDiag: cDiag, g: g,
	}, cfg)
}
