package thermal

import (
	"fmt"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
)

// ScalePackageRefCores is the chip size the HotSpot65nm package numbers
// are calibrated for. Platforms at or below it keep the package
// bit-identical (so every historic plan and golden file is untouched);
// larger chips get a proportionally larger sink.
const ScalePackageRefCores = 16

// ScaledPackage adapts a package calibration to a chip with totalCores
// cores: the heat-sink convection resistance shrinks and the sink thermal
// mass grows in proportion to the heat the chip can produce. Without this
// a 256-core die drives the fixed 16-core sink past the β-feedback
// stability limit — no controller could save it, the hardware would be
// mis-designed. The factor is 1 (exact identity) up to
// ScalePackageRefCores.
func ScaledPackage(pp PackageParams, totalCores int) PackageParams {
	if totalCores <= ScalePackageRefCores {
		return pp
	}
	f := float64(totalCores) / float64(ScalePackageRefCores)
	pp.ConvectionR /= f
	pp.SinkCap *= f
	return pp
}

// BuildGen assembles the calibrated thermal model of a generated platform
// spec: planar or stacked, homogeneous or big.LITTLE, with the package
// scaled to the chip size. The algebra backend follows the model's
// automatic crossover unless overridden through opts.
func BuildGen(g floorplan.GenSpec, pm power.Model, opts ...ModelOpt) (*Model, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	fp, err := g.Floorplan()
	if err != nil {
		return nil, err
	}
	pp := ScaledPackage(HotSpot65nm(), g.NumCores())
	if g.Layers > 1 {
		sp := DefaultStack(g.Layers)
		sp.PackageParams = pp
		if g.Scales != nil {
			opts = append(opts, WithHeteroScales(g.Scales))
		}
		md, err := NewStackedModel(fp, sp, pm, opts...)
		if err != nil {
			return nil, fmt.Errorf("thermal: gen %q: %w", g.Name, err)
		}
		return md, nil
	}
	md, err := NewHeteroModel(fp, pp, pm, g.Scales, opts...)
	if err != nil {
		return nil, fmt.Errorf("thermal: gen %q: %w", g.Name, err)
	}
	return md, nil
}
