// Dense-vs-sparse differential suite: every generated floorplan up to
// the paper's 6x6 corpus is built on BOTH algebra backends and the three
// kernels the solver stack relies on — steady states, the action of the
// matrix exponential, and stable-orbit peak evaluation — must agree to
// 1e-8 relative. The sweep is seeded, so CI pins one deterministic set of
// mode vectors, states, and schedules forever.
//
// This is an external test package so it can drive internal/sim (which
// imports thermal) for the peak comparisons.
package thermal_test

import (
	"math"
	"math/rand"
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// diffTol is the dense/sparse differential contract. The backends differ
// algorithmically everywhere (eigenbasis vs Cholesky+Krylov), so exact
// equality is impossible; 1e-8 relative is ~6 orders tighter than any
// thermal decision threshold in the solver.
const diffTol = 1e-8

// diffCatalog is every catalog floorplan small enough that the dense
// eigendecomposition is still cheap — the ≤6x6-equivalent corpus the
// differential contract is pinned on.
func diffCatalog(t *testing.T) []floorplan.GenSpec {
	t.Helper()
	var specs []floorplan.GenSpec
	for _, g := range floorplan.Catalog() {
		if g.NumCores() <= 36 {
			specs = append(specs, g)
		}
	}
	if len(specs) < 5 {
		t.Fatalf("catalog has only %d small floorplans", len(specs))
	}
	return specs
}

// diffPair builds the same generated platform on both backends.
func diffPair(t *testing.T, g floorplan.GenSpec) (dense, sparse *thermal.Model) {
	t.Helper()
	pm := power.DefaultModel()
	dense, err := thermal.BuildGen(g, pm, thermal.WithAlgebra(thermal.AlgebraDense))
	if err != nil {
		t.Fatalf("%s dense: %v", g.Name, err)
	}
	sparse, err = thermal.BuildGen(g, pm, thermal.WithAlgebra(thermal.AlgebraSparse))
	if err != nil {
		t.Fatalf("%s sparse: %v", g.Name, err)
	}
	if dense.SparsePath() || !sparse.SparsePath() {
		t.Fatalf("%s: backend override ignored", g.Name)
	}
	return dense, sparse
}

// maxRel is the max entrywise relative difference, scale floored at 1
// (entries are temperature rises in kelvin; absolute 1e-8 agreement on
// near-zero entries satisfies the same contract).
func maxRel(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// randomModes draws a mode vector from the paper's voltage palette,
// including off cores.
func randomModes(r *rand.Rand, n int) []power.Mode {
	palette := []float64{0, 0.6, 0.8, 1.0, 1.2, 1.3}
	modes := make([]power.Mode, n)
	for i := range modes {
		modes[i] = power.NewMode(palette[r.Intn(len(palette))])
	}
	return modes
}

// Steady states: (G−βE)⁻¹Ψ through the sparse Cholesky must match the
// dense SPD inverse on every floorplan and random mode vector.
func TestDiffSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, g := range diffCatalog(t) {
		dm, sm := diffPair(t, g)
		for trial := 0; trial < 4; trial++ {
			modes := randomModes(r, dm.NumCores())
			d := maxRel(dm.SteadyState(modes), sm.SteadyState(modes))
			if d > diffTol {
				t.Errorf("%s trial %d: steady state diverges by %g", g.Name, trial, d)
			}
			dc := maxRel(dm.SteadyStateCores(modes), sm.SteadyStateCores(modes))
			if dc > diffTol {
				t.Errorf("%s trial %d: core steady state diverges by %g", g.Name, trial, dc)
			}
		}
	}
}

// Exponential action: the truncated-Taylor e^{A·dt}·x must match the
// eigenbasis propagation over the full range of interval lengths the
// solver uses — from microsecond overhead slices to multi-τ settles.
func TestDiffExpAction(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	dts := []float64{5e-6, 1e-3, 20e-3, 0.5, 5}
	for _, g := range diffCatalog(t) {
		dm, sm := diffPair(t, g)
		dim := dm.NumNodes()
		tInf := make([]float64, dim)
		for trial := 0; trial < 3; trial++ {
			x := make([]float64, dim)
			for i := range x {
				x[i] = 40 * (r.Float64() - 0.25)
			}
			for _, dt := range dts {
				want := dm.StepToward(dt, x, tInf) // eigenbasis e^{A·dt}·x
				got := sm.StepToward(dt, x, tInf)  // Krylov action
				if d := maxRel(want, got); d > diffTol {
					t.Errorf("%s trial %d dt=%g: exp action diverges by %g", g.Name, trial, dt, d)
				}
			}
		}
	}
}

// Unit responses feed EXS feasibility and the large-platform candidate
// pruning; both backends must produce the same sensitivity matrix.
func TestDiffUnitResponses(t *testing.T) {
	for _, g := range diffCatalog(t) {
		dm, sm := diffPair(t, g)
		ud, us := dm.UnitResponses(), sm.UnitResponses()
		worst := 0.0
		for i := 0; i < dm.NumNodes(); i++ {
			for j := 0; j < dm.NumCores(); j++ {
				a, b := ud.At(i, j), us.At(i, j)
				d := math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
				if d > worst {
					worst = d
				}
			}
		}
		if worst > diffTol {
			t.Errorf("%s: unit responses diverge by %g", g.Name, worst)
		}
	}
}

// Peak evaluation end to end: stable orbit start, Theorem-1 end-of-period
// peak, and the dense-sampled peak of a seeded random step-up schedule
// must agree across backends on every catalog floorplan.
func TestDiffStablePeak(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	palette := []float64{0.6, 0.8, 1.0, 1.2, 1.3}
	for _, g := range diffCatalog(t) {
		dm, sm := diffPair(t, g)
		n := dm.NumCores()
		for trial := 0; trial < 3; trial++ {
			// A two-mode step-up per core: low then high, seeded split.
			specs := make([]schedule.TwoModeSpec, n)
			for i := range specs {
				lo := palette[r.Intn(3)]
				hi := palette[3+r.Intn(2)]
				specs[i] = schedule.TwoModeSpec{
					Low: power.NewMode(lo), High: power.NewMode(hi),
					HighRatio: 0.25 + 0.5*r.Float64(),
				}
			}
			sched, err := schedule.TwoMode(20e-3, specs)
			if err != nil {
				t.Fatal(err)
			}
			std, err := sim.NewStable(dm, sched)
			if err != nil {
				t.Fatalf("%s dense stable: %v", g.Name, err)
			}
			sts, err := sim.NewStable(sm, sched)
			if err != nil {
				t.Fatalf("%s sparse stable: %v", g.Name, err)
			}
			if d := maxRel(std.Start(), sts.Start()); d > diffTol {
				t.Errorf("%s trial %d: stable start diverges by %g", g.Name, trial, d)
			}
			pd, cd := std.PeakEndOfPeriod()
			ps, cs := sts.PeakEndOfPeriod()
			if cd != cs || math.Abs(pd-ps) > diffTol*math.Max(1, pd) {
				t.Errorf("%s trial %d: end peak dense %v@%d sparse %v@%d",
					g.Name, trial, pd, cd, ps, cs)
			}
			pdd, _, _ := std.PeakDense(24)
			pds, _, _ := sts.PeakDense(24)
			if math.Abs(pdd-pds) > diffTol*math.Max(1, pdd) {
				t.Errorf("%s trial %d: dense-sampled peak %v vs %v", g.Name, trial, pdd, pds)
			}
		}
	}
}

// The automatic crossover must keep the historic corpus (≤ 6x6 planar,
// dim 73) on the bit-exact dense backend and move the large catalog
// entries to sparse.
func TestDiffAutoCrossover(t *testing.T) {
	pm := power.DefaultModel()
	for _, g := range floorplan.Catalog() {
		md, err := thermal.BuildGen(g, pm)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		wantSparse := md.NumNodes() >= thermal.SparseCrossoverDim
		if md.SparsePath() != wantSparse {
			t.Errorf("%s: dim %d on %s backend", g.Name, md.NumNodes(), md.Algebra())
		}
		if md.SparsePath() && md.Eigen() != nil {
			t.Errorf("%s: sparse model carries an eigendecomposition", g.Name)
		}
	}
}
