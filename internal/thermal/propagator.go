package thermal

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"thermosc/internal/power"
)

// Propagator is a concurrency-safe cache of the per-interval operators of
// the closed-form transient solution (paper eq. (3)). Every evaluation of
// a periodic schedule steps through its state intervals as
//
//	T(t+Δt) = e^{A·Δt}·T(t) + (I − e^{A·Δt})·T∞(v)
//
// and both operators depend only on the interval, not on the state: T∞(v)
// on the mode vector v, e^{A·Δt} on the length Δt. The solver's inner
// loops (the AO m-search and the TPT ratio adjustment, Algorithm 2)
// re-evaluate thousands of cycles whose intervals are drawn from a small
// quantized set — the high-ratio grid spaced t_unit apart — so both maps
// hit their caches almost always after the first evaluation.
//
// Cached values are produced by exactly the code paths Model.SteadyState
// and Symmetrizable.StepVec would run, so a cache hit is bit-identical to
// a recomputation; caching never perturbs solver decisions.
//
// The exponential factors are stored in the eigenbasis of A (diagonal
// vectors exp(λ·Δt), see mat.Symmetrizable), where the semigroup identity
// e^{A·(s+t)} = e^{A·s}·e^{A·t} reduces to an elementwise product —
// Compose derives the propagator of a concatenation of intervals, e.g.
// one full m-oscillated cycle from its m = 1 factors, without another
// exponential evaluation (see sim.Engine's composed peak path).
//
// Both caches grow without eviction; they are bounded in practice by the
// TPT adjustment grid (a few thousand distinct lengths and mode vectors
// per solver run) and each entry is one dim-length vector.
type Propagator struct {
	md *Model

	mu   sync.RWMutex
	tinf map[string][]float64  // mode-vector key → T∞ (treat as read-only)
	teig map[string][]float64  // mode-vector key → W⁻¹·T∞ (composed path)
	exps map[float64][]float64 // Δt → exp(λ·Δt) factors (treat as read-only)

	steadyHits, steadyMisses atomic.Int64
	expHits, expMisses       atomic.Int64
}

// PropagatorStats is a snapshot of the cache-hit accounting.
type PropagatorStats struct {
	SteadyHits, SteadyMisses int64 // T∞ lookups by mode vector
	ExpHits, ExpMisses       int64 // exp(λ·Δt) lookups by interval length
}

// NewPropagator returns an empty cache bound to md. The zero-value maps
// are sized for a typical AO run (hundreds of distinct entries).
func NewPropagator(md *Model) *Propagator {
	return &Propagator{
		md:   md,
		tinf: make(map[string][]float64, 256),
		teig: make(map[string][]float64, 256),
		exps: make(map[float64][]float64, 256),
	}
}

// Model returns the thermal model the cache is bound to.
func (p *Propagator) Model() *Model { return p.md }

// modeKey canonicalizes a mode vector into a byte key: the voltage bits
// plus an off flag per core. Static power depends only on the voltage and
// on whether the core is off (power.Model.Static), so two mode vectors
// with equal keys have identical Ψ and hence identical T∞.
func modeKey(modes []power.Mode) []byte {
	buf := make([]byte, 9*len(modes))
	for i, m := range modes {
		binary.LittleEndian.PutUint64(buf[9*i:], math.Float64bits(m.Voltage))
		if m.IsOff() {
			buf[9*i+8] = 1
		}
	}
	return buf
}

// ModeKeySize returns the byte length of the canonical key of an n-core
// mode vector, for callers sizing reusable key buffers.
func ModeKeySize(n int) int { return 9 * n }

// ModeKeyInto writes the canonical mode-vector key into buf (which must
// have length ModeKeySize(len(modes))) and returns it. Identical bytes to
// the internal key, so keyed lookups hit the same cache entries.
func ModeKeyInto(buf []byte, modes []power.Mode) []byte {
	for i, m := range modes {
		binary.LittleEndian.PutUint64(buf[9*i:], math.Float64bits(m.Voltage))
		if m.IsOff() {
			buf[9*i+8] = 1
		} else {
			buf[9*i+8] = 0
		}
	}
	return buf
}

// SteadyStateKeyed is SteadyState with the mode key precomputed into a
// caller-owned buffer (ModeKeyInto): a cache hit performs no allocation,
// which is what the per-solve arenas rely on. On a miss it falls through
// to SteadyState, which computes (and stores under) its own key copy — the
// caller's buffer never escapes into the cache.
func (p *Propagator) SteadyStateKeyed(key []byte, modes []power.Mode) []float64 {
	p.mu.RLock()
	v, ok := p.tinf[string(key)]
	p.mu.RUnlock()
	if ok {
		p.steadyHits.Add(1)
		return v
	}
	return p.SteadyState(modes)
}

// SteadyEigenKeyed is SteadyEigen with a precomputed key; allocation-free
// on a hit, like SteadyStateKeyed.
func (p *Propagator) SteadyEigenKeyed(key []byte, modes []power.Mode) []float64 {
	p.mu.RLock()
	v, ok := p.teig[string(key)]
	p.mu.RUnlock()
	if ok {
		return v
	}
	return p.SteadyEigen(modes)
}

// SteadyState returns T∞(modes), computing it once per distinct mode
// vector. The returned slice is shared with the cache: callers must treat
// it as read-only.
func (p *Propagator) SteadyState(modes []power.Mode) []float64 {
	key := modeKey(modes)
	p.mu.RLock()
	v, ok := p.tinf[string(key)]
	p.mu.RUnlock()
	if ok {
		p.steadyHits.Add(1)
		return v
	}
	p.steadyMisses.Add(1)
	tinf := p.md.SteadyState(modes)
	p.mu.Lock()
	if prev, ok := p.tinf[string(key)]; ok {
		tinf = prev // a concurrent miss computed the same bits; share one
	} else {
		p.tinf[string(key)] = tinf
	}
	p.mu.Unlock()
	return tinf
}

// SteadyEigen returns W⁻¹·T∞(modes) — the steady-state target expressed
// in the eigenbasis of A, which is what the composed (semigroup) peak
// evaluation consumes. Read-only, like SteadyState. Dense backend only.
func (p *Propagator) SteadyEigen(modes []power.Mode) []float64 {
	if p.md.SparsePath() {
		panic("thermal: SteadyEigen on the sparse backend (no eigenbasis)")
	}
	key := modeKey(modes)
	p.mu.RLock()
	v, ok := p.teig[string(key)]
	p.mu.RUnlock()
	if ok {
		return v
	}
	w := p.md.Eigen().Winv.MulVec(p.SteadyState(modes))
	p.mu.Lock()
	if prev, ok := p.teig[string(key)]; ok {
		w = prev
	} else {
		p.teig[string(key)] = w
	}
	p.mu.Unlock()
	return w
}

// ExpFactors returns the eigenbasis factors exp(λ·dt) of e^{A·dt},
// computing them once per distinct dt. The returned slice is shared with
// the cache: callers must treat it as read-only. Dense backend only —
// the sparse path steps through Model.StepSparseTo instead.
func (p *Propagator) ExpFactors(dt float64) []float64 {
	if p.md.SparsePath() {
		panic("thermal: ExpFactors on the sparse backend (no eigenbasis)")
	}
	p.mu.RLock()
	v, ok := p.exps[dt]
	p.mu.RUnlock()
	if ok {
		p.expHits.Add(1)
		return v
	}
	p.expMisses.Add(1)
	expL := p.md.Eigen().ExpLambda(dt)
	p.mu.Lock()
	if prev, ok := p.exps[dt]; ok {
		expL = prev
	} else {
		p.exps[dt] = expL
	}
	p.mu.Unlock()
	return expL
}

// Compose returns the propagator factors of two concatenated intervals:
// the diagonal form of the semigroup identity e^{A·(s+t)} = e^{A·s}·e^{A·t}
// is an elementwise product, so the factors of any composite interval —
// e.g. one full oscillation cycle assembled from its state intervals —
// follow from cached factors in O(dim) with no exponential evaluation.
func (p *Propagator) Compose(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Step advances the state by dt toward the steady-state target tInf using
// cached exponential factors. Bit-identical to Model.StepToward. On the
// sparse backend it falls through to the (uncached) exponential action —
// the T∞ cache still applies, the e^{A·dt} factors do not.
func (p *Propagator) Step(dt float64, x, tInf []float64) []float64 {
	p.md.checkState(x)
	if p.md.SparsePath() {
		return p.md.StepToward(dt, x, tInf)
	}
	return p.md.eig.StepVecExp(p.ExpFactors(dt), x, tInf)
}

// Stats returns a snapshot of the cache-hit accounting.
func (p *Propagator) Stats() PropagatorStats {
	return PropagatorStats{
		SteadyHits:   p.steadyHits.Load(),
		SteadyMisses: p.steadyMisses.Load(),
		ExpHits:      p.expHits.Load(),
		ExpMisses:    p.expMisses.Load(),
	}
}
