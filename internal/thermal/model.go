package thermal

import (
	"fmt"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
)

// Model is the assembled LTI thermal model of one multi-core platform.
// Temperatures throughout are rises above ambient (Kelvin); convert with
// Absolute.
type Model struct {
	fp  *floorplan.Floorplan
	pp  PackageParams
	pm  power.Model
	n   int // number of cores
	dim int // number of thermal nodes
	// scale[i] multiplies core i's power (dynamic, leakage floor and
	// leakage/temperature slope alike) relative to the reference core —
	// the heterogeneity knob (nil means homogeneous).
	scale []float64

	cDiag []float64  // node capacitances (diagonal of C)
	g     *mat.Dense // symmetric conductance matrix
	m     *mat.Dense // βE − G (the symmetric numerator of A)

	// Dense backend (alg == AlgebraDense): eigendecomposition of A plus
	// hFull = (G − βE)⁻¹, which maps static power injection to
	// steady-state temperature rise: T∞ = hFull·Ψ. Column i (i < n) is
	// the steady response of all nodes to 1 W injected at core i.
	eig   *mat.Symmetrizable
	hFull *mat.Dense

	// Sparse backend (alg == AlgebraSparse): CSR forms of G − βE and
	// A = C⁻¹(βE−G), the sparse Cholesky of the former, and the dominant
	// time constant from power iteration (see algebra.go).
	alg    Algebra
	gmb    *mat.CSR
	chol   *mat.SparseCholesky
	aSp    *mat.CSR
	tauDom float64
}

// NewModel assembles the layered thermal model for the given floorplan,
// package parameters and power model. It verifies the stability and
// positivity properties the paper's theorems require and returns an error
// if the parameters violate them.
func NewModel(fp *floorplan.Floorplan, pp PackageParams, pm power.Model, opts ...ModelOpt) (*Model, error) {
	return NewHeteroModel(fp, pp, pm, nil, opts...)
}

// NewHeteroModel is NewModel with per-core power scales: core i consumes
// scales[i] times the reference power at any voltage and temperature
// (bigger or process-skewed cores). nil or all-ones gives the homogeneous
// model. Speed semantics are unchanged — a scaled core still delivers
// speed v — so heterogeneity here is purely in power and heat.
func NewHeteroModel(fp *floorplan.Floorplan, pp PackageParams, pm power.Model, scales []float64, opts ...ModelOpt) (*Model, error) {
	cfg, err := applyOpts(opts)
	if err != nil {
		return nil, err
	}
	if scales == nil {
		scales = cfg.scales
	}
	n := fp.NumCores()
	scales, err = checkScales(scales, n)
	if err != nil {
		return nil, err
	}
	dim := 2*n + 1 // n die nodes, n spreader nodes, 1 sink node
	sink := 2 * n

	area := fp.CoreArea()
	g := mat.NewDense(dim, dim)

	// connect adds a conductance between nodes a and b (b == -1 means
	// ambient: only the diagonal term appears).
	connect := func(a, b int, cond float64) {
		if cond <= 0 {
			return
		}
		g.Add(a, a, cond)
		if b >= 0 {
			g.Add(b, b, cond)
			g.Add(a, b, -cond)
			g.Add(b, a, -cond)
		}
	}

	// Vertical path: die node -> spreader block (die conduction + TIM).
	rDie := pp.DieThickness / (pp.KSilicon * area)
	rTIM := pp.TIMThickness / (pp.KTIM * area)
	gVert := 1 / (rDie + rTIM)
	// Spreader block -> sink node.
	rSpread := pp.SpreaderThickness / (pp.KCopper * area)
	gSpSink := 1 / (rSpread + pp.SinkBaseR)
	// Sink -> ambient.
	gConv := 1 / pp.ConvectionR

	for i := 0; i < n; i++ {
		connect(i, n+i, gVert)
		connect(n+i, sink, gSpSink)
		// Border blocks shed extra heat into the sink through the copper
		// ring surrounding the die (the spreader is larger than the die).
		if be := fp.BoundaryEdges(i); be > 0 && pp.SpreaderRingFactor > 0 {
			gRing := pp.SpreaderRingFactor * pp.KCopper * pp.SpreaderThickness * be / fp.CoreEdge
			connect(n+i, sink, gRing)
		}
		// Weak die-edge escape to ambient through the package casing.
		if be := fp.BoundaryEdges(i); be > 0 && pp.KEdge > 0 {
			gEdge := pp.KEdge * be * pp.DieThickness / (fp.CoreEdge / 2)
			connect(i, -1, gEdge)
		}
	}
	connect(sink, -1, gConv)

	// Lateral conductances between adjacent cores (die layer) and between
	// the corresponding spreader blocks.
	for i := 0; i < n; i++ {
		for _, j := range fp.Neighbors(i) {
			if j <= i {
				continue // count each pair once
			}
			shared := fp.SharedEdge(i, j)
			dist := fp.CenterDistance(i, j)
			gLatSi := pp.KSilicon * shared * pp.DieThickness / dist
			gLatCu := pp.KCopper * shared * pp.SpreaderThickness / dist
			connect(i, j, gLatSi)
			connect(n+i, n+j, gLatCu)
		}
	}

	// Node capacitances.
	cDiag := make([]float64, dim)
	cDie := pp.VolHeatSi * area * pp.DieThickness
	cSp := pp.VolHeatCu * area * pp.SpreaderThickness
	for i := 0; i < n; i++ {
		cDiag[i] = cDie
		cDiag[n+i] = cSp
	}
	cDiag[sink] = pp.SinkCap

	return finishModel(Model{
		fp: fp, pp: pp, pm: pm,
		n: n, dim: dim, scale: scales,
		cDiag: cDiag, g: g,
	}, cfg)
}

// MustModel is NewModel that panics on error, for tests and examples with
// known-good parameters.
func MustModel(fp *floorplan.Floorplan, pp PackageParams, pm power.Model) *Model {
	m, err := NewModel(fp, pp, pm)
	if err != nil {
		panic(err)
	}
	return m
}

// Default builds the layered model for a rows×cols grid with the
// repository's calibrated defaults (HotSpot65nm package, DefaultModel
// power, 4 mm cores).
func Default(rows, cols int) (*Model, error) {
	fp, err := floorplan.Grid(rows, cols, 4e-3)
	if err != nil {
		return nil, err
	}
	return NewModel(fp, HotSpot65nm(), power.DefaultModel())
}

// NumCores returns the number of cores.
func (md *Model) NumCores() int { return md.n }

// NumNodes returns the total number of thermal nodes.
func (md *Model) NumNodes() int { return md.dim }

// Floorplan returns the underlying floorplan.
func (md *Model) Floorplan() *floorplan.Floorplan { return md.fp }

// Power returns the power model coefficients.
func (md *Model) Power() power.Model { return md.pm }

// Package returns the package parameters.
func (md *Model) Package() PackageParams { return md.pp }

// Eigen returns the eigendecomposition of A (shared; do not mutate).
// It is nil on the sparse backend — gate with SparsePath before use.
func (md *Model) Eigen() *mat.Symmetrizable { return md.eig }

// A reconstructs the dense system matrix A = C⁻¹(βE − G).
func (md *Model) A() *mat.Dense {
	inv := make([]float64, md.dim)
	for i, c := range md.cDiag {
		inv[i] = 1 / c
	}
	return md.m.MulDiagLeft(inv)
}

// Conductance returns a copy of the symmetric conductance matrix G.
func (md *Model) Conductance() *mat.Dense { return md.g.Clone() }

// Capacitances returns a copy of the node capacitances.
func (md *Model) Capacitances() []float64 { return mat.VecClone(md.cDiag) }

// Psi returns the node-length static power injection vector Ψ(v) for the
// given per-core modes: CoreScale(i)·Static(v_i) at core nodes, zero
// elsewhere.
func (md *Model) Psi(modes []power.Mode) []float64 {
	md.checkModes(modes)
	psi := make([]float64, md.dim)
	for i, m := range modes {
		psi[i] = md.CoreScale(i) * md.pm.Static(m)
	}
	return psi
}

// CoreScale returns core i's power scale (1 for homogeneous platforms).
func (md *Model) CoreScale(i int) float64 {
	if md.scale == nil {
		return 1
	}
	return md.scale[i]
}

// BVec returns B(v) = C⁻¹·Ψ(v).
func (md *Model) BVec(modes []power.Mode) []float64 {
	psi := md.Psi(modes)
	for i := range psi {
		psi[i] /= md.cDiag[i]
	}
	return psi
}

// SteadyState returns T∞ = (G−βE)⁻¹·Ψ(v), the temperature rise of every
// node if the mode vector were held forever (paper: T∞ = −A⁻¹B).
func (md *Model) SteadyState(modes []power.Mode) []float64 {
	if md.chol != nil {
		psi := md.Psi(modes)
		return md.chol.SolveVecTo(psi, psi)
	}
	return md.hFull.MulVec(md.Psi(modes))
}

// SteadyStateCores returns the core-node entries of SteadyState.
func (md *Model) SteadyStateCores(modes []power.Mode) []float64 {
	return md.SteadyState(modes)[:md.n]
}

// UnitResponses returns the dim×n matrix whose column i is the steady
// temperature response of all nodes to 1 W of static power injected at
// core i. EXS uses it for incremental feasibility checks; the solver's
// large-platform trial pruning uses it as a sensitivity proxy.
func (md *Model) UnitResponses() *mat.Dense {
	out := mat.NewDense(md.dim, md.n)
	if md.chol != nil {
		e := make([]float64, md.dim)
		for j := 0; j < md.n; j++ {
			for i := range e {
				e[i] = 0
			}
			e[j] = 1
			md.chol.SolveVecTo(e, e)
			for i := 0; i < md.dim; i++ {
				out.Set(i, j, e[i])
			}
		}
		return out
	}
	for j := 0; j < md.n; j++ {
		for i := 0; i < md.dim; i++ {
			out.Set(i, j, md.hFull.At(i, j))
		}
	}
	return out
}

// Step advances the temperature state by dt seconds with the given
// constant mode vector — exactly paper eq. (3) for one state interval:
//
//	T(t0+dt) = e^{A·dt}·T(t0) + (I − e^{A·dt})·T∞(v).
func (md *Model) Step(dt float64, t []float64, modes []power.Mode) []float64 {
	return md.StepToward(dt, t, md.SteadyState(modes))
}

// StepToward is Step with a precomputed steady-state target, avoiding the
// repeated SteadyState solve in inner loops.
func (md *Model) StepToward(dt float64, t, tInf []float64) []float64 {
	md.checkState(t)
	if md.aSp != nil {
		return md.StepSparseTo(make([]float64, md.dim), make([]float64, md.dim), dt, t, tInf, nil)
	}
	return md.eig.StepVec(dt, t, tInf)
}

// CoreTemps extracts the core-node entries from a full state vector.
func (md *Model) CoreTemps(t []float64) []float64 {
	return mat.VecClone(t[:md.n])
}

// Absolute converts a temperature rise to absolute °C.
func (md *Model) Absolute(rise float64) float64 { return rise + md.pp.AmbientC }

// Rise converts an absolute °C temperature to a rise above ambient.
func (md *Model) Rise(absC float64) float64 { return absC - md.pp.AmbientC }

// DominantTimeConstant returns the slowest thermal time constant of the
// platform in seconds.
func (md *Model) DominantTimeConstant() float64 {
	if md.SparsePath() {
		return md.tauDom
	}
	return md.eig.SlowestTimeConstant()
}

func (md *Model) checkModes(modes []power.Mode) {
	if len(modes) != md.n {
		panic(fmt.Sprintf("thermal: %d modes for %d cores", len(modes), md.n))
	}
}

func (md *Model) checkState(t []float64) {
	if len(t) != md.dim {
		panic(fmt.Sprintf("thermal: state length %d, want %d nodes", len(t), md.dim))
	}
}

// ZeroState returns the all-ambient initial state.
func (md *Model) ZeroState() []float64 { return make([]float64, md.dim) }
