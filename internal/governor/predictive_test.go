package governor

import (
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

func TestPredictiveHoldsConstraintWithCleanSensors(t *testing.T) {
	md, ls := testSetup(t)
	pol := NewPredictive(md, ls, 65, 0.5, 10e-3)
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePeakC > 65.05 {
		t.Fatalf("predictive governor violated the cap: %.3f", res.TruePeakC)
	}
	if res.ViolationFrac > 0.001 {
		t.Fatalf("violation fraction %.4f", res.ViolationFrac)
	}
	if res.Throughput <= 0.6 {
		t.Fatalf("predictive throughput %.4f too low", res.Throughput)
	}
	if res.Policy != "predictive" {
		t.Fatalf("name %q", res.Policy)
	}
}

func TestPredictiveBeatsGuardedStepWise(t *testing.T) {
	md, ls := testSetup(t)
	pred := NewPredictive(md, ls, 65, 0.5, 10e-3)
	resPred, err := Simulate(md, ls, pred, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guarded := &StepWise{TripC: 60, HystK: 2, Levels: ls.Len()}
	resStep, err := Simulate(md, ls, guarded, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The model-based governor should ride closer to the cap than a
	// blind step-wise with a 5 K guard band — higher throughput, no
	// violations.
	if resPred.Throughput <= resStep.Throughput {
		t.Fatalf("predictive %.4f should beat guarded step-wise %.4f",
			resPred.Throughput, resStep.Throughput)
	}
}

func TestPredictiveSurvivesNoisySensors(t *testing.T) {
	md, ls := testSetup(t)
	pol := NewPredictive(md, ls, 65, 2.0, 10e-3) // guard sized to the noise
	res, err := Simulate(md, ls, pol, DefaultSensor(), 65, 120, 40, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationFrac > 0.02 {
		t.Fatalf("noisy predictive violations %.4f beyond budget", res.ViolationFrac)
	}
}

func TestPredictiveFallsBackToFloor(t *testing.T) {
	md, ls := testSetup(t)
	// Impossibly tight budget: the governor must settle at the lowest
	// level rather than panic.
	pol := NewPredictive(md, ls, 36, 0.5, 10e-3)
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 36, 30, 10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 0.6+1e-9 {
		t.Fatalf("expected floor throughput, got %.4f", res.Throughput)
	}
}

func TestPredictiveDegenerateHorizonHoldsCurrent(t *testing.T) {
	md, ls := testSetup(t)
	cases := []struct {
		name     string
		horizonS float64
	}{
		{"zero", 0},
		{"negative", -1e-3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol := NewPredictive(md, ls, 65, 0.5, tc.horizonS)
			cur := []int{1, 0, -1}
			got := pol.Next([]float64{50, 50, 50}, cur)
			for i := range cur {
				if got[i] != cur[i] {
					t.Fatalf("zero-length interval must hold: core %d got %d want %d", i, got[i], cur[i])
				}
			}
			// The hold must not alias the caller's slice.
			got[0] = 99
			if cur[0] == 99 {
				t.Fatal("Next aliased the current-levels slice")
			}
		})
	}
}

func TestPredictiveSingleModePlatform(t *testing.T) {
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.NewLevelSet(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, latency := range []float64{0, 5e-3, 50e-3} {
		pol := NewPredictive(md, ls, 65, 0.5, 10e-3)
		pol.LatencyS = latency
		// Cool die: the only level is feasible and must be chosen.
		got := pol.Next([]float64{45, 45, 45}, []int{0, 0, 0})
		for i, l := range got {
			if l != 0 {
				t.Fatalf("latency %v: core %d got level %d, single-mode platform has only 0", latency, i, l)
			}
		}
		// Scorching die: level 0 is still the floor — the governor must
		// settle there, not panic or index out of range.
		got = pol.Next([]float64{80, 80, 80}, []int{0, 0, 0})
		for i, l := range got {
			if l != 0 {
				t.Fatalf("latency %v hot: core %d got %d", latency, i, l)
			}
		}
	}
}

func TestPredictiveZeroLatencyMatchesClassic(t *testing.T) {
	md, ls := testSetup(t)
	a := NewPredictive(md, ls, 65, 0.5, 10e-3)
	b := NewPredictive(md, ls, 65, 0.5, 10e-3)
	b.LatencyS = 0
	sensed := []float64{52, 54, 53}
	cur := []int{1, 1, 1}
	for step := 0; step < 25; step++ {
		ga := a.Next(sensed, cur)
		gb := b.Next(sensed, cur)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("step %d: zero latency diverged from classic: %v vs %v", step, ga, gb)
			}
		}
		cur = ga
		for i := range sensed {
			sensed[i] += 0.1 // drift upward so the decision eventually flips
		}
	}
}

// TestPredictiveLatencyBeyondPeriod is the boundary the LatencyS field
// exists for: the DVFS rail takes several control periods to settle, so a
// candidate's post-transition heat is invisible inside a naive horizon.
// The latency-aware prediction must stay conservative — no more optimistic
// near the cap than the instantaneous-actuation governor — and must never
// let the closed loop violate the constraint.
func TestPredictiveLatencyBeyondPeriod(t *testing.T) {
	md, ls := testSetup(t)
	cases := []struct {
		name     string
		latencyS float64
	}{
		{"half-period", 5e-3},
		{"one-period", 10e-3},
		{"three-periods", 30e-3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol := NewPredictive(md, ls, 65, 0.5, 10e-3)
			pol.LatencyS = tc.latencyS
			res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.TruePeakC > 65.1 {
				t.Fatalf("latency %v: predictive peak %.3f violates the cap", tc.latencyS, res.TruePeakC)
			}
			if res.Throughput <= 0.5 {
				t.Fatalf("latency %v: throughput %.4f collapsed", tc.latencyS, res.Throughput)
			}
		})
	}
}

// Near the cap with a slow rail the latency-aware governor must not pick a
// HIGHER level than the instantaneous one: the stall phase burns at the
// max of the two voltages, so feasibility can only shrink.
func TestPredictiveLatencyIsConservative(t *testing.T) {
	md, ls := testSetup(t)
	for _, sensedPeak := range []float64{58, 60, 62, 64, 64.8} {
		fast := NewPredictive(md, ls, 65, 0.5, 10e-3)
		slow := NewPredictive(md, ls, 65, 0.5, 10e-3)
		slow.LatencyS = 25e-3
		sensed := []float64{sensedPeak - 1, sensedPeak, sensedPeak - 0.5}
		cur := []int{0, 0, 0}
		gf := fast.Next(sensed, cur)
		gs := slow.Next(sensed, cur)
		if gs[0] > gf[0] {
			t.Fatalf("sensed %.1f: slow rail picked level %d above instantaneous %d",
				sensedPeak, gs[0], gf[0])
		}
	}
}

// A governor attached to an already-hot chip cannot learn the hidden
// package temperatures from its core sensors: the observer correction
// only touches core nodes, so a cold-started observer under-predicts and
// over-clocks a hot plant for a package time constant. SeedState closes
// that hole — the seeded governor throttles where the cold one picks the
// top level at the very same sensor readings.
func TestPredictiveSeedState(t *testing.T) {
	md, ls := testSetup(t)
	n := md.NumCores()

	// Heat the plant at the top level until the core peak sits just
	// below the prediction budget: the cores alone look safe, the hot
	// package underneath does not.
	modes := make([]power.Mode, n)
	for i := range modes {
		modes[i] = ls.Mode(ls.Len() - 1)
	}
	budget := 65.0 - 0.5
	hot := md.ZeroState()
	for i := 0; i < 4000; i++ {
		next := md.Step(0.1, hot, modes)
		peak := 0.0
		for _, r := range md.CoreTemps(next) {
			if md.Absolute(r) > peak {
				peak = md.Absolute(r)
			}
		}
		if peak > budget-0.1 {
			break
		}
		hot = next
	}
	sensedC := make([]float64, n)
	for i, r := range md.CoreTemps(hot) {
		sensedC[i] = md.Absolute(r)
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = ls.Len() - 1
	}

	// A 1 s horizon makes the divergence visible in ONE decision: from
	// the true (hot-package) state the cores climb ~0.3 K/s through the
	// budget, from a cold-package state the model predicts them falling.
	cold := NewPredictive(md, ls, 65, 0.5, 1.0)
	seeded := NewPredictive(md, ls, 65, 0.5, 1.0)
	if err := seeded.SeedState(make([]float64, 1)); err == nil {
		t.Fatal("want dimension-mismatch error from SeedState")
	}
	if err := seeded.SeedState(hot); err != nil {
		t.Fatal(err)
	}

	a := cold.Next(sensedC, cur)
	b := seeded.Next(sensedC, cur)
	if a[0] != ls.Len()-1 {
		t.Fatalf("cold observer should stay optimistic at level %d, picked %d", ls.Len()-1, a[0])
	}
	if b[0] >= a[0] {
		t.Fatalf("seeded observer picked level %d, cold %d — seeding changed nothing", b[0], a[0])
	}
}
