package governor

import (
	"testing"
)

func TestPredictiveHoldsConstraintWithCleanSensors(t *testing.T) {
	md, ls := testSetup(t)
	pol := NewPredictive(md, ls, 65, 0.5, 10e-3)
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePeakC > 65.05 {
		t.Fatalf("predictive governor violated the cap: %.3f", res.TruePeakC)
	}
	if res.ViolationFrac > 0.001 {
		t.Fatalf("violation fraction %.4f", res.ViolationFrac)
	}
	if res.Throughput <= 0.6 {
		t.Fatalf("predictive throughput %.4f too low", res.Throughput)
	}
	if res.Policy != "predictive" {
		t.Fatalf("name %q", res.Policy)
	}
}

func TestPredictiveBeatsGuardedStepWise(t *testing.T) {
	md, ls := testSetup(t)
	pred := NewPredictive(md, ls, 65, 0.5, 10e-3)
	resPred, err := Simulate(md, ls, pred, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guarded := &StepWise{TripC: 60, HystK: 2, Levels: ls.Len()}
	resStep, err := Simulate(md, ls, guarded, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The model-based governor should ride closer to the cap than a
	// blind step-wise with a 5 K guard band — higher throughput, no
	// violations.
	if resPred.Throughput <= resStep.Throughput {
		t.Fatalf("predictive %.4f should beat guarded step-wise %.4f",
			resPred.Throughput, resStep.Throughput)
	}
}

func TestPredictiveSurvivesNoisySensors(t *testing.T) {
	md, ls := testSetup(t)
	pol := NewPredictive(md, ls, 65, 2.0, 10e-3) // guard sized to the noise
	res, err := Simulate(md, ls, pol, DefaultSensor(), 65, 120, 40, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationFrac > 0.02 {
		t.Fatalf("noisy predictive violations %.4f beyond budget", res.ViolationFrac)
	}
}

func TestPredictiveFallsBackToFloor(t *testing.T) {
	md, ls := testSetup(t)
	// Impossibly tight budget: the governor must settle at the lowest
	// level rather than panic.
	pol := NewPredictive(md, ls, 36, 0.5, 10e-3)
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 36, 30, 10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 0.6+1e-9 {
		t.Fatalf("expected floor throughput, got %.4f", res.Throughput)
	}
}
