package governor

import (
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// Predictive is a one-step model-predictive governor: it maintains a
// full-state observer of the thermal network (core entries corrected from
// the sensors each period, package nodes propagated open-loop) and picks
// the highest uniform level whose PREDICTED peak over the next control
// interval stays below Tmax − Guard. It is the strongest online baseline
// here — it uses the same exact model as the offline schedulers — yet it
// still trails AO: deciding one uniform level per sensor period cannot
// shape the sub-interval high/low oscillation the offline schedule uses
// to ride the constraint.
type Predictive struct {
	md     *thermal.Model
	levels *power.LevelSet
	// TmaxC is the absolute threshold; GuardK the safety margin the
	// prediction must respect (absorbs sensor noise re-injected through
	// the observer correction).
	TmaxC  float64
	GuardK float64
	// HorizonS is the prediction horizon; set it to the sensor period.
	HorizonS float64

	state []float64 // full-node temperature-rise estimate
}

// NewPredictive builds the governor for the given model and level set.
func NewPredictive(md *thermal.Model, levels *power.LevelSet, tmaxC, guardK, horizonS float64) *Predictive {
	return &Predictive{
		md:     md,
		levels: levels,
		TmaxC:  tmaxC, GuardK: guardK, HorizonS: horizonS,
		state: md.ZeroState(),
	}
}

// Name implements Policy.
func (g *Predictive) Name() string { return "predictive" }

// Next implements Policy.
func (g *Predictive) Next(sensedC []float64, current []int) []int {
	// Observer correction: trust the sensors at the core nodes.
	for i := range sensedC {
		g.state[i] = math.Max(0, g.md.Rise(sensedC[i]))
	}
	budget := g.md.Rise(g.TmaxC) - g.GuardK

	modes := make([]power.Mode, len(sensedC))
	chosen := 0
	var chosenState []float64
	for k := g.levels.Len() - 1; k >= 0; k-- {
		for i := range modes {
			modes[i] = g.levels.Mode(k)
		}
		// Predict the end and the midpoint of the next interval (the
		// midpoint guards fast die-node overshoot within the interval).
		mid := g.md.Step(g.HorizonS/2, g.state, modes)
		end := g.md.Step(g.HorizonS/2, mid, modes)
		pm, _ := mat.VecMax(g.md.CoreTemps(mid))
		pe, _ := mat.VecMax(g.md.CoreTemps(end))
		if math.Max(pm, pe) <= budget || k == 0 {
			chosen = k
			chosenState = end
			break
		}
	}
	// Advance the observer with the decision actually taken.
	g.state = chosenState

	next := make([]int, len(current))
	for i := range next {
		next[i] = chosen
	}
	return next
}
