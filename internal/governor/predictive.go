package governor

import (
	"fmt"
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// Predictive is a one-step model-predictive governor: it maintains a
// full-state observer of the thermal network (core entries corrected from
// the sensors each period, package nodes propagated open-loop) and picks
// the highest uniform level whose PREDICTED peak over the next control
// interval stays below Tmax − Guard. It is the strongest online baseline
// here — it uses the same exact model as the offline schedulers — yet it
// still trails AO: deciding one uniform level per sensor period cannot
// shape the sub-interval high/low oscillation the offline schedule uses
// to ride the constraint.
type Predictive struct {
	md     *thermal.Model
	levels *power.LevelSet
	// TmaxC is the absolute threshold; GuardK the safety margin the
	// prediction must respect (absorbs sensor noise re-injected through
	// the observer correction).
	TmaxC  float64
	GuardK float64
	// HorizonS is the prediction horizon; set it to the sensor period.
	// A non-positive horizon degenerates to "hold the current levels" —
	// there is nothing to predict over a zero-length interval.
	HorizonS float64
	// LatencyS models the DVFS actuation delay: a commanded change only
	// takes effect LatencyS seconds into the interval, with the stall
	// window burning power at the HIGHER of the outgoing and incoming
	// voltages (the internal/actuator convention). When LatencyS exceeds
	// the control period — slow rails against a fast loop, the boundary
	// this field exists for — the prediction window extends to
	// LatencyS + HorizonS so a candidate's post-transition behaviour is
	// evaluated instead of staying invisible beyond the horizon: without
	// the extension every candidate predicts only its stall phase, the
	// check trivially passes at the hottest rail voltage, and the
	// governor pins the top level while the plant overheats LatencyS
	// seconds later. Zero preserves the classic instantaneous-actuation
	// prediction bit-for-bit.
	LatencyS float64

	state []float64 // full-node temperature-rise estimate
}

// NewPredictive builds the governor for the given model and level set
// with instantaneous actuation; set LatencyS afterwards for slow rails.
func NewPredictive(md *thermal.Model, levels *power.LevelSet, tmaxC, guardK, horizonS float64) *Predictive {
	return &Predictive{
		md:     md,
		levels: levels,
		TmaxC:  tmaxC, GuardK: guardK, HorizonS: horizonS,
		state: md.ZeroState(),
	}
}

// Name implements Policy.
func (g *Predictive) Name() string { return "predictive" }

// SeedState initializes the observer's full-node temperature-rise
// estimate, for attaching the governor to an already-hot chip. The
// sensed-core correction in Next cannot see hidden package nodes, so a
// cold-started observer under-predicts a hot plant for a package time
// constant and over-clocks it the whole while; seeding from the known
// regime removes that transient. The slice is copied and must match the
// model's node count.
func (g *Predictive) SeedState(rise []float64) error {
	if len(rise) != len(g.state) {
		return fmt.Errorf("governor: seed state has %d nodes, model has %d", len(rise), len(g.state))
	}
	copy(g.state, rise)
	return nil
}

// Next implements Policy.
func (g *Predictive) Next(sensedC []float64, current []int) []int {
	next := make([]int, len(current))
	if g.HorizonS <= 0 || math.IsNaN(g.HorizonS) {
		copy(next, current) // zero-length interval: nothing to predict
		return next
	}
	// Observer correction: trust the sensors at the core nodes.
	for i := range sensedC {
		g.state[i] = math.Max(0, g.md.Rise(sensedC[i]))
	}
	budget := g.md.Rise(g.TmaxC) - g.GuardK

	// The stall burns at the higher of the two rails; use the hottest
	// currently-applied voltage as the outgoing side.
	var curV float64
	for _, l := range current {
		if l >= 0 && g.levels.Mode(l).Voltage > curV {
			curV = g.levels.Mode(l).Voltage
		}
	}
	latency := g.LatencyS
	if latency < 0 || math.IsNaN(latency) {
		latency = 0
	}

	modes := make([]power.Mode, len(sensedC))
	stallModes := make([]power.Mode, len(sensedC))
	chosen := 0
	var chosenState []float64
	for k := g.levels.Len() - 1; k >= 0; k-- {
		cand := g.levels.Mode(k)
		for i := range modes {
			modes[i] = cand
		}
		base := g.state
		peak := math.Inf(-1)
		if latency > 0 && cand.Voltage != curV {
			// Phase A: the rail settles for LatencyS at the stall
			// voltage; check its midpoint and end like the main phase.
			for i := range stallModes {
				stallModes[i] = power.NewMode(math.Max(curV, cand.Voltage))
			}
			sm := g.md.Step(latency/2, base, stallModes)
			se := g.md.Step(latency/2, sm, stallModes)
			pm, _ := mat.VecMax(g.md.CoreTemps(sm))
			pe, _ := mat.VecMax(g.md.CoreTemps(se))
			peak = math.Max(pm, pe)
			base = se
		}
		// Phase B: the candidate level for a full horizon past the
		// transition (the midpoint guards fast die-node overshoot).
		mid := g.md.Step(g.HorizonS/2, base, modes)
		end := g.md.Step(g.HorizonS/2, mid, modes)
		pm, _ := mat.VecMax(g.md.CoreTemps(mid))
		pe, _ := mat.VecMax(g.md.CoreTemps(end))
		peak = math.Max(peak, math.Max(pm, pe))
		if peak <= budget || k == 0 {
			chosen = k
			if latency > 0 && cand.Voltage != curV {
				// Observer: the next control period really is a stall of
				// min(latency, period) followed by the remainder at the
				// chosen level.
				stall := math.Min(latency, g.HorizonS)
				adv := g.md.Step(stall, g.state, stallModes)
				if rem := g.HorizonS - stall; rem > 0 {
					adv = g.md.Step(rem, adv, modes)
				}
				chosenState = adv
			} else {
				chosenState = end
			}
			break
		}
	}
	// Advance the observer with the decision actually taken.
	g.state = chosenState

	for i := range next {
		next[i] = chosen
	}
	return next
}
