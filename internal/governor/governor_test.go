package governor

import (
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

func testSetup(t testing.TB) (*thermal.Model, *power.LevelSet) {
	t.Helper()
	md, err := thermal.Default(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	return md, ls
}

func TestSimulateValidation(t *testing.T) {
	md, ls := testSetup(t)
	pol := &StepWise{TripC: 65, HystK: 3, Levels: ls.Len()}
	if _, err := Simulate(md, ls, pol, Sensor{}, 65, 10, 1, 4, 1); err == nil {
		t.Fatal("zero sensor period must error")
	}
	if _, err := Simulate(md, ls, pol, DefaultSensor(), 65, 1, 2, 4, 1); err == nil {
		t.Fatal("horizon below warmup must error")
	}
}

func TestStepWiseRegulatesNearTrip(t *testing.T) {
	md, ls := testSetup(t)
	pol := &StepWise{TripC: 65, HystK: 3, Levels: ls.Len()}
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 60, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With a noiseless sensor the governor should hold temperatures in a
	// band around the trip point and achieve intermediate throughput.
	if res.TruePeakC < 60 || res.TruePeakC > 72 {
		t.Fatalf("true peak %.2f outside the regulation band", res.TruePeakC)
	}
	if res.Throughput <= 0.6 || res.Throughput >= 1.3 {
		t.Fatalf("throughput %.4f not intermediate", res.Throughput)
	}
	if res.Switches == 0 {
		t.Fatal("step-wise governor should switch levels")
	}
	if res.Policy != "step-wise" {
		t.Fatalf("policy name %q", res.Policy)
	}
}

func TestStepWiseReactsAfterTheFact(t *testing.T) {
	md, ls := testSetup(t)
	// Trip AT the threshold: a reactive governor only throttles after
	// crossing, so true violations are structural, not sensor artifacts.
	pol := &StepWise{TripC: 65, HystK: 2, Levels: ls.Len()}
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 50e-3}, 65, 60, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePeakC <= 65 {
		t.Fatalf("expected the reactive governor to overshoot the cap, peak %.3f", res.TruePeakC)
	}
	if res.ViolationFrac <= 0 {
		t.Fatal("expected nonzero violation time")
	}
}

func TestGuardBandTradesThroughput(t *testing.T) {
	md, ls := testSetup(t)
	tight, err := Simulate(md, ls, &StepWise{TripC: 65, HystK: 2, Levels: ls.Len()},
		Sensor{PeriodS: 10e-3}, 65, 60, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Simulate(md, ls, &StepWise{TripC: 60, HystK: 2, Levels: ls.Len()},
		Sensor{PeriodS: 10e-3}, 65, 60, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.ViolationFrac > tight.ViolationFrac {
		t.Fatalf("guard band should reduce violations: %v vs %v",
			guarded.ViolationFrac, tight.ViolationFrac)
	}
	if guarded.Throughput >= tight.Throughput {
		t.Fatalf("guard band should cost throughput: %v vs %v",
			guarded.Throughput, tight.Throughput)
	}
}

func TestOnOffOscillatesCrudely(t *testing.T) {
	md, ls := testSetup(t)
	pol := &OnOff{TripC: 64, ResumeC: 65 - 8, Levels: ls.Len()}
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 60, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatal("on-off governor should bang between levels")
	}
	if res.Throughput <= 0.6 {
		t.Fatalf("on-off throughput %.4f should beat the floor", res.Throughput)
	}
}

func TestPIHoldsSetpoint(t *testing.T) {
	md, ls := testSetup(t)
	pol := NewPI(62, 0.05, 0.002, ls)
	res, err := Simulate(md, ls, pol, Sensor{PeriodS: 10e-3}, 65, 120, 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePeakC > 68 {
		t.Fatalf("PI lost control: peak %.2f", res.TruePeakC)
	}
	if res.Throughput <= 0.6 {
		t.Fatalf("PI throughput %.4f too low", res.Throughput)
	}
	if res.Policy != "PI" {
		t.Fatalf("policy name %q", res.Policy)
	}
}

func TestSensorNoiseCausesViolationsAtTightTrips(t *testing.T) {
	md, ls := testSetup(t)
	noisy := DefaultSensor() // ±1 K noise, 1 K quantization
	pol := &StepWise{TripC: 65, HystK: 1, Levels: ls.Len()}
	res, err := Simulate(md, ls, pol, noisy, 65, 60, 20, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePeakC <= 65 {
		t.Fatalf("noisy reactive control at a tight trip should overshoot; peak %.3f", res.TruePeakC)
	}
}

func TestSensorQuantizationAndNoise(t *testing.T) {
	s := Sensor{NoiseStdK: 0, StepK: 2}
	got := s.read([]float64{64.9, 66.1}, nil)
	if got[0] != 64 || got[1] != 66 {
		t.Fatalf("quantization wrong: %v", got)
	}
}

func TestPIAntiWindup(t *testing.T) {
	ls := power.MustLevelSet(0.6, 1.3)
	pol := NewPI(60, 0.05, 0.01, ls)
	// Feed a long stretch of cold readings; the integrator must clamp so
	// a subsequent hot reading still drops the command promptly.
	cur := []int{1, 1}
	for k := 0; k < 10000; k++ {
		pol.Next([]float64{35, 35}, cur)
	}
	// Now a severe overshoot: command must fall to the bottom level in a
	// bounded number of steps.
	steps := 0
	for ; steps < 200; steps++ {
		next := pol.Next([]float64{95, 95}, cur)
		if next[0] == 0 {
			break
		}
	}
	if steps >= 200 {
		t.Fatal("integrator wind-up: PI failed to throttle after saturation")
	}
}
