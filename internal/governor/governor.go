// Package governor implements reactive (online) dynamic thermal
// management baselines — the class of techniques the paper's introduction
// contrasts against its proactive approach: policies that observe
// temperature sensors at run time and throttle after the fact. They are
// flexible but, as the paper notes, "there is no guarantee of avoiding
// peak temperature violations or maximizing throughputs" because they
// depend on sensor accuracy and sampling latency.
//
// The closed-loop simulator advances the exact LTI thermal model between
// sensor samples, injects configurable sensor noise and quantization, and
// records the true (not sensed) temperature trajectory, so violation
// statistics are honest.
package governor

import (
	"fmt"
	"math"
	"math/rand"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// Sensor models the run-time temperature telemetry a reactive policy acts
// on: sampled every PeriodS seconds, with zero-mean Gaussian noise of
// NoiseStdK kelvins and optional quantization to StepK increments.
type Sensor struct {
	PeriodS   float64
	NoiseStdK float64
	StepK     float64 // 0 disables quantization
}

// DefaultSensor reflects commodity on-die thermal diodes: 10 ms polling,
// ±1 K (1σ) error, 1 K readout quantization.
func DefaultSensor() Sensor {
	return Sensor{PeriodS: 10e-3, NoiseStdK: 1.0, StepK: 1.0}
}

// read produces the sensed absolute temperatures for the true core
// temperatures (absolute °C).
func (s Sensor) read(trueC []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(trueC))
	for i, t := range trueC {
		v := t
		if s.NoiseStdK > 0 {
			v += rng.NormFloat64() * s.NoiseStdK
		}
		if s.StepK > 0 {
			v = math.Round(v/s.StepK) * s.StepK
		}
		out[i] = v
	}
	return out
}

// Policy decides, from the sensed absolute core temperatures and the
// current per-core level indices, the level indices for the next control
// interval. Implementations must not retain the slices they are given.
type Policy interface {
	Name() string
	// Next returns the new per-core level indices (into the LevelSet,
	// ascending). Indices of -1 mean the core is powered off.
	Next(sensedC []float64, current []int) []int
}

// StepWise mimics the Linux "step_wise" thermal governor: a core above
// TripC steps one level down each control period; a core below
// TripC − HystK steps one level up.
type StepWise struct {
	TripC  float64
	HystK  float64
	Levels int // number of available levels
}

// Name implements Policy.
func (g *StepWise) Name() string { return "step-wise" }

// Next implements Policy.
func (g *StepWise) Next(sensedC []float64, current []int) []int {
	next := make([]int, len(current))
	for i, cur := range current {
		switch {
		case sensedC[i] > g.TripC && cur > -1:
			next[i] = cur - 1
		case sensedC[i] < g.TripC-g.HystK && cur < g.Levels-1:
			next[i] = cur + 1
		default:
			next[i] = cur
		}
	}
	return next
}

// OnOff is the crude clamp governor: a core above TripC drops to the
// lowest level; once it cools below ResumeC it jumps back to the highest.
type OnOff struct {
	TripC   float64
	ResumeC float64
	Levels  int
}

// Name implements Policy.
func (g *OnOff) Name() string { return "on-off" }

// Next implements Policy.
func (g *OnOff) Next(sensedC []float64, current []int) []int {
	next := make([]int, len(current))
	for i, cur := range current {
		switch {
		case sensedC[i] > g.TripC:
			next[i] = 0
		case sensedC[i] < g.ResumeC:
			next[i] = g.Levels - 1
		default:
			next[i] = cur
		}
	}
	return next
}

// PI is a chip-level proportional-integral feedback governor (the
// control-theoretic family of Ebi et al. [15]): the hottest sensed
// temperature is regulated toward SetC by moving a continuous chip-wide
// speed command, which is then quantized per core to the nearest level.
type PI struct {
	SetC   float64
	Kp, Ki float64
	Min    float64 // lowest commandable speed (volts)
	Max    float64 // highest commandable speed (volts)
	levels *power.LevelSet

	integ float64
	cmd   float64
}

// NewPI builds a PI governor over the given level set.
func NewPI(setC, kp, ki float64, levels *power.LevelSet) *PI {
	return &PI{
		SetC: setC, Kp: kp, Ki: ki,
		Min: levels.Min(), Max: levels.Max(),
		levels: levels,
		cmd:    levels.Max(),
	}
}

// Name implements Policy.
func (g *PI) Name() string { return "PI" }

// Next implements Policy.
func (g *PI) Next(sensedC []float64, current []int) []int {
	hottest, _ := mat.VecMax(sensedC)
	err := g.SetC - hottest // positive = headroom
	g.integ += err
	// Anti-windup clamp on the integrator.
	if lim := (g.Max - g.Min) / math.Max(g.Ki, 1e-12); g.integ > lim {
		g.integ = lim
	} else if g.integ < -lim {
		g.integ = -lim
	}
	g.cmd = g.Min + g.Kp*err + g.Ki*g.integ
	if g.cmd > g.Max {
		g.cmd = g.Max
	}
	if g.cmd < g.Min {
		g.cmd = g.Min
	}
	// Quantize down (conservative) to an available level.
	lvl := 0
	for k := 0; k < g.levels.Len(); k++ {
		if g.levels.Mode(k).Voltage <= g.cmd+1e-12 {
			lvl = k
		}
	}
	next := make([]int, len(current))
	for i := range next {
		next[i] = lvl
	}
	return next
}

// Result summarizes one closed-loop run.
type Result struct {
	Policy string
	// Throughput is the time-averaged chip-wide speed (eq. (5) over the
	// simulated horizon, excluding the warm-up window).
	Throughput float64
	// TruePeakC is the hottest TRUE core temperature observed (absolute
	// °C), sampled at sub-interval resolution.
	TruePeakC float64
	// ViolationFrac is the fraction of (post-warm-up) time the true
	// hottest temperature exceeded the threshold.
	ViolationFrac float64
	// Switches counts total per-core level changes (DVFS transitions).
	Switches int
}

// Simulate runs the policy in closed loop for horizon seconds on the
// model, starting from ambient at the highest level. warmup seconds are
// excluded from the throughput/violation statistics (but not from the
// true peak). subSamples ≥ 1 true-temperature samples are taken inside
// every control interval to catch intra-interval peaks.
func Simulate(md *thermal.Model, levels *power.LevelSet, pol Policy, sensor Sensor,
	tmaxC, horizon, warmup float64, subSamples int, seed int64) (*Result, error) {
	if sensor.PeriodS <= 0 {
		return nil, fmt.Errorf("governor: non-positive sensor period %v", sensor.PeriodS)
	}
	if horizon <= warmup {
		return nil, fmt.Errorf("governor: horizon %v must exceed warmup %v", horizon, warmup)
	}
	if subSamples < 1 {
		subSamples = 1
	}
	n := md.NumCores()
	rng := rand.New(rand.NewSource(seed))

	lvl := make([]int, n)
	for i := range lvl {
		lvl[i] = levels.Len() - 1 // start flat out, like a naive OS
	}
	modes := make([]power.Mode, n)
	state := md.ZeroState()

	res := &Result{Policy: pol.Name()}
	var work, active, violation float64
	truePeak := math.Inf(-1)

	steps := int(math.Ceil(horizon / sensor.PeriodS))
	for k := 0; k < steps; k++ {
		now := float64(k) * sensor.PeriodS
		for i, l := range lvl {
			if l < 0 {
				modes[i] = power.ModeOff
			} else {
				modes[i] = levels.Mode(l)
			}
		}
		tinf := md.SteadyState(modes)
		// Advance through the control interval, sampling true temps.
		sub := sensor.PeriodS / float64(subSamples)
		for s := 0; s < subSamples; s++ {
			state = md.StepToward(sub, state, tinf)
			hot, _ := mat.VecMax(md.CoreTemps(state))
			hotC := md.Absolute(hot)
			if hotC > truePeak {
				truePeak = hotC
			}
			if now+float64(s+1)*sub > warmup && hotC > tmaxC {
				violation += sub
			}
		}
		if now >= warmup {
			var speed float64
			for _, m := range modes {
				speed += m.Speed()
			}
			work += speed * sensor.PeriodS
			active += sensor.PeriodS
		}
		// Sense and decide the next interval's levels.
		trueC := make([]float64, n)
		for i, rise := range md.CoreTemps(state) {
			trueC[i] = md.Absolute(rise)
		}
		next := pol.Next(sensor.read(trueC, rng), lvl)
		for i := range next {
			if next[i] != lvl[i] {
				res.Switches++
			}
		}
		lvl = next
	}

	res.Throughput = work / (active * float64(n))
	res.TruePeakC = truePeak
	res.ViolationFrac = violation / (horizon - warmup)
	return res, nil
}
