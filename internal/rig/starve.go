package rig

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

// PlanAnytime solves the scenario's AO plan under a hard wall-clock
// budget, walking the same degradation chain the serving layer uses:
// a complete AO solve if the budget allows, the solver's tagged
// best-so-far plan when the deadline truncates the search, and the
// oracle-checked constant safe floor when the deadline expires before
// any incumbent exists. The returned reason is solver.DegradedNone for
// a complete solve. Degraded plans are timing-dependent; callers that
// need replay determinism must solve once and reuse the schedule (see
// starvedPlanCache).
func PlanAnytime(r *Rig, budget time.Duration) (*schedule.Schedule, solver.DegradedReason, error) {
	sc := r.Scenario()
	prob := solver.Problem{
		Model:    r.PlannerModel(),
		Levels:   r.Levels(),
		TmaxC:    sc.TmaxC - sc.PlanMarginK,
		Overhead: power.DefaultOverhead(),
		MaxM:     sc.MaxM,
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	prob.Ctx = ctx
	res, err := solver.AO(prob)
	switch {
	case err == nil && res.Feasible && res.Schedule != nil:
		return res.Schedule, res.Degraded, nil
	case err != nil && !errors.Is(err, solver.ErrDeadline):
		return nil, solver.DegradedNone, fmt.Errorf("rig: anytime AO plan: %w", err)
	case err == nil && res.Degraded == solver.DegradedNone:
		// A complete solve that found nothing feasible: the floor cannot
		// do better, so this is a genuine refusal, not starvation.
		return nil, solver.DegradedNone, fmt.Errorf("rig: AO found no feasible plan at %.1f °C", prob.TmaxC)
	}
	// Deadline before any feasible incumbent: the safe floor completes
	// regardless of the (expired) context.
	floor, err := solver.SafeFloor(prob)
	if err != nil {
		return nil, solver.DegradedNone, fmt.Errorf("rig: safe floor: %w", err)
	}
	return floor.Schedule, floor.Degraded, nil
}

// starvedPlanCache memoizes budget-bounded PlanAnytime solves. Degraded
// plans are timing-dependent, so solving once per key and replaying the
// cached schedule is what keeps the soak's replay-twice determinism
// check meaningful under starvation.
type starvedPlanCache struct {
	budget time.Duration
	mu     sync.Mutex
	m      map[planKey]*starvedEntry
}

type starvedEntry struct {
	once   sync.Once
	sched  *schedule.Schedule
	reason solver.DegradedReason
	err    error
}

func newStarvedPlanCache(budget time.Duration) *starvedPlanCache {
	return &starvedPlanCache{budget: budget, m: make(map[planKey]*starvedEntry)}
}

func (c *starvedPlanCache) plan(r *Rig) (*schedule.Schedule, solver.DegradedReason, error) {
	sc := r.Scenario()
	key := planKey{sc.Rows, sc.Cols, sc.PaperLevels, sc.MaxM, sc.TmaxC - sc.PlanMarginK}
	c.mu.Lock()
	ent, ok := c.m[key]
	if !ok {
		ent = &starvedEntry{}
		c.m[key] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() { ent.sched, ent.reason, ent.err = PlanAnytime(r, c.budget) })
	return ent.sched, ent.reason, ent.err
}

// starvedReplanGuard models a mid-scenario replan under planner
// starvation: the full AO plan runs until switchS, then the
// deadline-starved plan (degraded best-so-far or the safe floor) is
// swapped in. Both watchdogs track the telemetry for the whole run, so
// the replan's level cap is already wound down to the thermal reality
// at the instant of the swap — exactly what a deployed replanner that
// inherits the watchdog state would see.
type starvedReplanGuard struct {
	full    *PlanGuard
	starved *PlanGuard
	switchS float64
}

// Name implements Controller.
func (g *starvedReplanGuard) Name() string { return "plan-guard/starved-replan" }

// Decide implements Controller: both watchdogs observe every sample.
func (g *starvedReplanGuard) Decide(now float64, sensedC []float64, applied []int) {
	g.full.Decide(now, sensedC, applied)
	g.starved.Decide(now, sensedC, applied)
}

// Want implements Controller: the full plan before the swap, the
// starved replan after.
func (g *starvedReplanGuard) Want(t float64, out []int) {
	if t < g.switchS {
		g.full.Want(t, out)
		return
	}
	g.starved.Want(t, out)
}

// InitialLevels implements InitialLeveler: start on the full plan.
func (g *starvedReplanGuard) InitialLevels(n int) []int { return g.full.InitialLevels(n) }

// WarmStart implements WarmStarter: the full plan's stable regime.
func (g *starvedReplanGuard) WarmStart(plant *thermal.Model) ([]float64, error) {
	return g.full.WarmStart(plant)
}

// SoakStarved is Soak with the planner deadline-starved mid-scenario:
// every scenario runs the full AO plan to the horizon midpoint, then
// swaps to a plan solved under the given wall-clock budget — the
// degraded best-so-far when the budget truncates the search, the
// constant safe floor when it expires before any incumbent. Pass still
// requires zero violations of Tmax + guard band and byte-identical
// replays: degraded planning may cost throughput, never safety.
func SoakStarved(base *Scenario, n int, seed int64, workers int, budget time.Duration) (*SoakReport, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("rig: starved soak needs a positive plan budget")
	}
	return soak(base, n, seed, workers, budget)
}
