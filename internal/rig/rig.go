package rig

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// Controller closes the loop: the rig calls Decide once per control step
// with the latest delivered sensor readings, then samples Want at substep
// resolution to learn the desired per-core levels.
type Controller interface {
	Name() string
	// Decide observes the sensed absolute core temperatures (°C) and the
	// currently applied level indices at control-step boundaries. The
	// slices are the controller's to keep.
	Decide(now float64, sensedC []float64, applied []int)
	// Want fills out with the desired level index per core at time t
	// (-1 requests the core off). Called at substep resolution, so a
	// plan-playback controller can switch faster than the sensor period.
	Want(t float64, out []int)
}

// WarmStarter is an optional Controller extension: the rig starts the
// plant from the returned full-node state (temperature rise above the
// PLANT's ambient) instead of all-ambient, so soak runs begin in the hot
// regime the controller will actually have to defend.
type WarmStarter interface {
	WarmStart(plant *thermal.Model) ([]float64, error)
}

// InitialLeveler is an optional Controller extension fixing the level
// indices applied at t = 0 (default: every core at the highest level).
type InitialLeveler interface {
	InitialLevels(n int) []int
}

// spike is one active transient power disturbance.
type spike struct {
	core     int
	from, to float64
	watts    float64
}

// StepRecord is one control step of the recorded trace.
type StepRecord struct {
	T           float64 `json:"t"`
	TruePeakC   float64 `json:"true_peak_c"`
	SensedPeakC float64 `json:"sensed_peak_c"`
	Levels      []int   `json:"levels"`
	Violation   bool    `json:"violation"`
}

// Stats is a point-in-time snapshot of the run counters, safe to scrape
// concurrently with stepping.
type Stats struct {
	Step              int     `json:"step"`
	TimeS             float64 `json:"time_s"`
	TruePeakC         float64 `json:"true_peak_c"`
	ViolationS        float64 `json:"violation_s"`
	Transitions       int     `json:"transitions"`
	FailedTransitions int     `json:"failed_transitions"`
	DroppedSamples    int     `json:"dropped_samples"`
	StuckSamples      int     `json:"stuck_samples"`
	Spikes            int     `json:"spikes"`
	StallS            float64 `json:"stall_s"`
	Done              bool    `json:"done"`
}

// Report summarizes one completed run.
type Report struct {
	Name              string  `json:"name"`
	Controller        string  `json:"controller"`
	Seed              int64   `json:"seed"`
	Steps             int     `json:"steps"`
	HorizonS          float64 `json:"horizon_s"`
	Throughput        float64 `json:"throughput"`
	TruePeakC         float64 `json:"true_peak_c"`
	LimitC            float64 `json:"limit_c"`
	ExcessK           float64 `json:"excess_k"`
	ViolationS        float64 `json:"violation_s"`
	ViolationEpochs   int     `json:"violation_epochs"`
	StallS            float64 `json:"stall_s"`
	Transitions       int     `json:"transitions"`
	FailedTransitions int     `json:"failed_transitions"`
	DroppedSamples    int     `json:"dropped_samples"`
	StuckSamples      int     `json:"stuck_samples"`
	Spikes            int     `json:"spikes"`
	TraceSHA256       string  `json:"trace_sha256"`
}

// Rig is one closed-loop emulation instance. All exported methods are
// safe for concurrent use: Run steps the plant under the rig lock, and
// readers (SensedC, TrueTempsC, Stats) snapshot between steps.
type Rig struct {
	sc      Scenario
	planner *thermal.Model
	plant   *thermal.Model
	levels  *power.LevelSet
	prop    *thermal.Propagator // plant operator cache
	unit    *mat.Dense          // plant steady response to 1 W per core

	mu      sync.Mutex
	running bool

	ctrl    Controller
	step    int
	steps   int
	subDt   float64
	state   []float64 // plant node temperatures (rise above plant ambient)
	applied []int     // level index per core, -1 = off

	pendActive []bool
	pendTarget []int
	pendUntil  []float64

	sensed    []float64 // last delivered absolute readings (°C)
	stuckLeft []float64
	stuckVal  []float64
	spikes    []spike

	// Independent per-family fault streams, all derived from the scenario
	// seed: the sensor-noise and spike-arrival sequences are identical
	// across controllers on the same scenario, so comparisons are
	// apples-to-apples; only the actuation-failure draws depend on how
	// often the controller actually commands transitions.
	rngSensor, rngActuator, rngPower *rand.Rand

	work              float64
	stallS            float64
	truePeakC         float64
	violS             float64
	violEpochs        int
	inViol            bool
	transitions       int
	failedTransitions int
	dropped           int
	stuckSamples      int
	spikeCount        int
	trace             []StepRecord

	wantBuf  []int
	extraBuf []float64
	modesBuf []power.Mode
}

// Seed salts for the independent fault streams and the plant draw.
const (
	saltPlant    = 0x706c616e74 // "plant"
	saltSensor   = 0x73656e73   // "sens"
	saltActuator = 0x61637475   // "actu"
	saltPower    = 0x706f7765   // "powe"
)

// New builds the rig for a canonical copy of sc: the planner's nominal
// model, the (possibly perturbed) true plant, and the seeded fault
// streams. The plant perturbation itself is seed-pinned — the same
// scenario always yields the same plant.
func New(sc *Scenario) (*Rig, error) {
	cp := *sc
	if err := cp.Canon(); err != nil {
		return nil, err
	}
	fp, err := floorplan.Grid(cp.Rows, cp.Cols, 4e-3)
	if err != nil {
		return nil, fmt.Errorf("rig: %w", err)
	}
	pm := power.DefaultModel()
	planner, err := thermal.NewModel(fp, thermal.HotSpot65nm(), pm)
	if err != nil {
		return nil, fmt.Errorf("rig: planner model: %w", err)
	}
	ppPlant := thermal.HotSpot65nm()
	ppPlant.ConvectionR *= cp.Mismatch.ConvFactor
	ppPlant.AmbientC += cp.Mismatch.AmbientOffsetC
	var scales []float64
	if s := cp.Mismatch.CoreScaleSpread; s > 0 {
		r := rand.New(rand.NewSource(cp.Seed ^ saltPlant))
		scales = make([]float64, fp.NumCores())
		for i := range scales {
			scales[i] = 1 + s*(2*r.Float64()-1)
		}
	}
	plant, err := thermal.NewHeteroModel(fp, ppPlant, pm, scales)
	if err != nil {
		return nil, fmt.Errorf("rig: plant model: %w", err)
	}
	levels, err := power.PaperLevels(cp.PaperLevels)
	if err != nil {
		return nil, fmt.Errorf("rig: %w", err)
	}
	n := plant.NumCores()
	r := &Rig{
		sc:      cp,
		planner: planner,
		plant:   plant,
		levels:  levels,
		prop:    thermal.NewPropagator(plant),
		unit:    plant.UnitResponses(),

		steps:      int(math.Ceil(cp.HorizonS / cp.StepS)),
		subDt:      cp.StepS / float64(cp.SubSteps),
		state:      plant.ZeroState(),
		applied:    make([]int, n),
		pendActive: make([]bool, n),
		pendTarget: make([]int, n),
		pendUntil:  make([]float64, n),
		sensed:     make([]float64, n),
		stuckLeft:  make([]float64, n),
		stuckVal:   make([]float64, n),

		rngSensor:   rand.New(rand.NewSource(cp.Seed ^ saltSensor)),
		rngActuator: rand.New(rand.NewSource(cp.Seed ^ saltActuator)),
		rngPower:    rand.New(rand.NewSource(cp.Seed ^ saltPower)),

		wantBuf:  make([]int, n),
		extraBuf: make([]float64, n),
		modesBuf: make([]power.Mode, n),
	}
	return r, nil
}

// Scenario returns the canonical scenario the rig runs (copy).
func (r *Rig) Scenario() Scenario { return r.sc }

// PlannerModel returns the nominal model controllers should plan and
// predict on (the plant may differ).
func (r *Rig) PlannerModel() *thermal.Model { return r.planner }

// PlantModel returns the true plant model.
func (r *Rig) PlantModel() *thermal.Model { return r.plant }

// Levels returns the platform's DVFS level set.
func (r *Rig) Levels() *power.LevelSet { return r.levels }

// LimitC returns the violation threshold: TmaxC + GuardK.
func (r *Rig) LimitC() float64 { return r.sc.TmaxC + r.sc.GuardK }

// Run drives ctrl in closed loop for the scenario horizon and returns the
// run report. A Rig runs at most once; build a fresh Rig to repeat.
func (r *Rig) Run(ctrl Controller) (*Report, error) {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return nil, fmt.Errorf("rig: Run called twice on one Rig")
	}
	r.running = true
	r.ctrl = ctrl

	n := r.plant.NumCores()
	if il, ok := ctrl.(InitialLeveler); ok {
		init := il.InitialLevels(n)
		if len(init) != n {
			r.mu.Unlock()
			return nil, fmt.Errorf("rig: controller initial levels: %d for %d cores", len(init), n)
		}
		copy(r.applied, init)
	} else {
		for i := range r.applied {
			r.applied[i] = r.levels.Len() - 1
		}
	}
	for i, l := range r.applied {
		if l < -1 || l >= r.levels.Len() {
			r.mu.Unlock()
			return nil, fmt.Errorf("rig: initial level %d for core %d outside [-1,%d)", l, i, r.levels.Len())
		}
	}
	if ws, ok := ctrl.(WarmStarter); ok {
		st, err := ws.WarmStart(r.plant)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("rig: warm start: %w", err)
		}
		if len(st) != r.plant.NumNodes() {
			r.mu.Unlock()
			return nil, fmt.Errorf("rig: warm-start state has %d nodes, want %d", len(st), r.plant.NumNodes())
		}
		copy(r.state, st)
	}
	// Initial telemetry: a clean read so the first Decide sees the real
	// starting temperatures rather than zeros.
	for i := 0; i < n; i++ {
		r.sensed[i] = r.plant.Absolute(r.state[i])
	}
	r.trackPeak()
	r.mu.Unlock()

	for {
		r.mu.Lock()
		done := r.step >= r.steps
		if !done {
			r.stepLocked()
		}
		r.mu.Unlock()
		if done {
			break
		}
	}
	return r.report(), nil
}

// stepLocked advances one control step. Caller holds r.mu.
func (r *Rig) stepLocked() {
	n := r.plant.NumCores()
	t0 := float64(r.step) * r.sc.StepS

	r.ctrl.Decide(t0, append([]float64(nil), r.sensed...), append([]int(nil), r.applied...))

	// Spike arrival (one Bernoulli per control step).
	if p := r.sc.Power.SpikeProb; p > 0 {
		if r.rngPower.Float64() < p {
			core := r.rngPower.Intn(n)
			r.spikes = append(r.spikes, spike{
				core: core, from: t0, to: t0 + r.sc.Power.SpikeDurS, watts: r.sc.Power.SpikeW,
			})
			r.spikeCount++
		}
	}

	violated := false
	for s := 0; s < r.sc.SubSteps; s++ {
		ts := t0 + float64(s)*r.subDt

		// Land completed transitions.
		for i := 0; i < n; i++ {
			if r.pendActive[i] && ts >= r.pendUntil[i]-1e-12 {
				r.applied[i] = r.pendTarget[i]
				r.pendActive[i] = false
			}
		}
		// Issue new commands where the controller's wish differs. A core
		// mid-transition ignores further commands until its rail settles.
		r.ctrl.Want(ts, r.wantBuf)
		for i := 0; i < n; i++ {
			want := r.wantBuf[i]
			if want < -1 || want >= r.levels.Len() {
				want = clampLevel(want, r.levels.Len())
			}
			if r.pendActive[i] || want == r.applied[i] {
				continue
			}
			r.transitions++
			if p := r.sc.Actuator.FailProb; p > 0 && r.rngActuator.Float64() < p {
				r.failedTransitions++
				continue
			}
			if r.sc.Actuator.LatencyS <= 0 {
				r.applied[i] = want
				continue
			}
			r.pendActive[i] = true
			r.pendTarget[i] = want
			r.pendUntil[i] = ts + r.sc.Actuator.LatencyS
		}

		// Effective modes and work for this substep: stalled cores burn
		// at the higher of the two voltages and complete no work.
		var speed float64
		for i := 0; i < n; i++ {
			if r.pendActive[i] {
				v := math.Max(levelVoltage(r.levels, r.applied[i]), levelVoltage(r.levels, r.pendTarget[i]))
				r.modesBuf[i] = power.NewMode(v)
				r.stallS += r.subDt
				continue
			}
			if r.applied[i] < 0 {
				r.modesBuf[i] = power.ModeOff
			} else {
				m := r.levels.Mode(r.applied[i])
				r.modesBuf[i] = m
				speed += m.Speed()
			}
		}
		r.work += speed * r.subDt

		// Extra power: leakage drift plus active spikes.
		anyExtra := false
		drift := math.Min(r.sc.Power.LeakDriftWPerS*ts, r.sc.Power.LeakDriftMaxW)
		for i := 0; i < n; i++ {
			r.extraBuf[i] = drift
			if drift > 0 {
				anyExtra = true
			}
		}
		live := r.spikes[:0]
		for _, sp := range r.spikes {
			if ts >= sp.to {
				continue
			}
			live = append(live, sp)
			if ts >= sp.from {
				r.extraBuf[sp.core] += sp.watts
				anyExtra = true
			}
		}
		r.spikes = live

		tinf := r.prop.SteadyState(r.modesBuf)
		if anyExtra {
			// T∞ responds linearly to injected watts: add the unit
			// responses scaled by the extra power. Clone first — the
			// propagator's slice is shared cache state.
			shifted := mat.VecClone(tinf)
			for j := 0; j < n; j++ {
				if w := r.extraBuf[j]; w != 0 {
					for d := 0; d < r.plant.NumNodes(); d++ {
						shifted[d] += w * r.unit.At(d, j)
					}
				}
			}
			tinf = shifted
		}
		r.state = r.prop.Step(r.subDt, r.state, tinf)

		if r.trackPeak() {
			violated = true
			r.violS += r.subDt
			if !r.inViol {
				r.inViol = true
				r.violEpochs++
			}
		} else {
			r.inViol = false
		}
	}

	r.readSensors(t0 + r.sc.StepS)

	sensedPeak := r.sensed[0]
	for _, v := range r.sensed[1:] {
		if v > sensedPeak {
			sensedPeak = v
		}
	}
	truePeak := r.plant.Absolute(r.state[0])
	for i := 1; i < n; i++ {
		if c := r.plant.Absolute(r.state[i]); c > truePeak {
			truePeak = c
		}
	}
	r.trace = append(r.trace, StepRecord{
		T:           roundT(t0 + r.sc.StepS),
		TruePeakC:   truePeak,
		SensedPeakC: sensedPeak,
		Levels:      append([]int(nil), r.applied...),
		Violation:   violated,
	})
	r.step++
}

// trackPeak updates the true-peak statistic and reports whether the
// current state violates TmaxC + GuardK.
func (r *Rig) trackPeak() bool {
	limit := r.LimitC()
	viol := false
	for i := 0; i < r.plant.NumCores(); i++ {
		c := r.plant.Absolute(r.state[i])
		if c > r.truePeakC {
			r.truePeakC = c
		}
		if c > limit {
			viol = true
		}
	}
	return viol
}

// readSensors produces the per-core telemetry for the step ending at t:
// noise and quantization first, then stuck-at, then dropout (a stuck
// sensor keeps reporting its frozen value; a dropped sample re-delivers
// the previous reading).
func (r *Rig) readSensors(t float64) {
	sf := r.sc.Sensor
	for i := 0; i < r.plant.NumCores(); i++ {
		raw := r.plant.Absolute(r.state[i])
		if sf.NoiseStdK > 0 {
			raw += r.rngSensor.NormFloat64() * sf.NoiseStdK
		}
		if sf.QuantStepK > 0 {
			raw = math.Round(raw/sf.QuantStepK) * sf.QuantStepK
		}
		if r.stuckLeft[i] > 0 {
			r.stuckLeft[i] -= r.sc.StepS
			r.sensed[i] = r.stuckVal[i]
			r.stuckSamples++
			continue
		}
		if sf.StuckProb > 0 && r.rngSensor.Float64() < sf.StuckProb {
			r.stuckLeft[i] = sf.StuckDurS - r.sc.StepS
			r.stuckVal[i] = raw
			r.sensed[i] = raw
			r.stuckSamples++
			continue
		}
		if sf.DropoutProb > 0 && r.rngSensor.Float64() < sf.DropoutProb {
			r.dropped++
			continue // hold the last delivered value
		}
		r.sensed[i] = raw
	}
}

// SensedC returns the latest delivered sensor readings (absolute °C).
func (r *Rig) SensedC() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.sensed...)
}

// TrueTempsC returns the plant's true core temperatures (absolute °C).
func (r *Rig) TrueTempsC() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, r.plant.NumCores())
	for i := range out {
		out[i] = r.plant.Absolute(r.state[i])
	}
	return out
}

// Stats snapshots the run counters.
func (r *Rig) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Step:              r.step,
		TimeS:             float64(r.step) * r.sc.StepS,
		TruePeakC:         r.truePeakC,
		ViolationS:        r.violS,
		Transitions:       r.transitions,
		FailedTransitions: r.failedTransitions,
		DroppedSamples:    r.dropped,
		StuckSamples:      r.stuckSamples,
		Spikes:            r.spikeCount,
		StallS:            r.stallS,
		Done:              r.step >= r.steps,
	}
}

// TraceJSON renders the recorded per-step trace as deterministic JSON:
// the same scenario seed always produces byte-identical output.
func (r *Rig) TraceJSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Marshal(r.trace)
}

// report builds the final Report (called after the run loop ends).
func (r *Rig) report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	tj, err := json.Marshal(r.trace)
	if err != nil {
		tj = nil // cannot happen for these types; keep the hash empty
	}
	sum := sha256.Sum256(tj)
	n := float64(r.plant.NumCores())
	horizon := float64(r.steps) * r.sc.StepS
	return &Report{
		Name:              r.sc.Name,
		Controller:        r.ctrl.Name(),
		Seed:              r.sc.Seed,
		Steps:             r.steps,
		HorizonS:          horizon,
		Throughput:        r.work / (n * horizon),
		TruePeakC:         r.truePeakC,
		LimitC:            r.LimitC(),
		ExcessK:           math.Max(0, r.truePeakC-r.LimitC()),
		ViolationS:        r.violS,
		ViolationEpochs:   r.violEpochs,
		StallS:            r.stallS,
		Transitions:       r.transitions,
		FailedTransitions: r.failedTransitions,
		DroppedSamples:    r.dropped,
		StuckSamples:      r.stuckSamples,
		Spikes:            r.spikeCount,
		TraceSHA256:       hex.EncodeToString(sum[:]),
	}
}

func levelVoltage(ls *power.LevelSet, idx int) float64 {
	if idx < 0 {
		return 0
	}
	return ls.Mode(idx).Voltage
}

func clampLevel(l, n int) int {
	if l < -1 {
		return -1
	}
	if l >= n {
		return n - 1
	}
	return l
}

// roundT snaps a trace timestamp to nanosecond resolution so the JSON
// stays tidy; the value is derived deterministically either way.
func roundT(t float64) float64 { return math.Round(t*1e9) / 1e9 }
