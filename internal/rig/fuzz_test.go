package rig

import (
	"reflect"
	"testing"
)

// FuzzRigScenario drives the scenario decoder with arbitrary bytes. The
// contract: never panic; reject malformed or out-of-range configs with an
// error (never silently zero them); and canonicalize idempotently — the
// encode→decode round trip of an accepted scenario reproduces it exactly.
func FuzzRigScenario(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 42}`))
	f.Add([]byte(`{"seed": 1, "rows": 2, "cols": 2, "paper_levels": 3}`))
	f.Add([]byte(`{"sensor": {"noise_std_k": 0.5, "dropout_prob": 0.01}}`))
	f.Add([]byte(`{"actuator": {"latency_s": 0.001, "fail_prob": 0.05}}`))
	f.Add([]byte(`{"power": {"spike_prob": 0.01, "spike_w": 1}}`))
	f.Add([]byte(`{"mismatch": {"conv_factor": 1.05, "ambient_offset_c": -1}}`))
	f.Add([]byte(`{"tmax_c": 9000}`))
	f.Add([]byte(`{"rows": -3}`))
	f.Add([]byte(`{"step_s": 1e-9, "horizon_s": 3600}`))
	f.Add([]byte(`{"seed": 1, "unknown_knob": true}`))
	f.Add([]byte(`{"seed": 1} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"sensor": {"noise_std_k": 1e308}}`))
	f.Add([]byte(`{"horizon_s": -1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScenario(data)
		if err != nil {
			return // rejection with an error is the correct failure mode
		}
		// Accepted ⇒ canonical and in range: re-canonicalizing must be a
		// no-op and must not error.
		again := *sc
		if err := again.Canon(); err != nil {
			t.Fatalf("accepted scenario fails re-canonicalization: %v", err)
		}
		if !reflect.DeepEqual(*sc, again) {
			t.Fatalf("Canon not idempotent:\n%+v\n%+v", *sc, again)
		}
		// Round trip: encode → decode reproduces the scenario exactly.
		out, err := EncodeScenario(sc)
		if err != nil {
			t.Fatalf("encoding accepted scenario: %v", err)
		}
		back, err := DecodeScenario(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip drifted:\n%+v\n%+v", sc, back)
		}
		// Spot-check the invariants the rig relies on.
		if sc.Rows*sc.Cols < 1 || sc.Rows*sc.Cols > 16 {
			t.Fatalf("accepted core count %d", sc.Rows*sc.Cols)
		}
		if sc.StepS <= 0 || sc.HorizonS <= 0 || sc.SubSteps < 1 {
			t.Fatalf("accepted degenerate resolution %+v", sc)
		}
	})
}
