package rig

import (
	"fmt"
	"math"

	"thermosc/internal/actuator"
	"thermosc/internal/governor"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/thermal"
)

// PlanGuard replays an offline plan (an AO/PCO oscillation cycle) through
// its compiled DVFS command stream while a thermal watchdog supplies the
// closed-loop correction: a level cap that steps down whenever the sensed
// peak crosses TripC and recovers once it cools below TripC − HystK. The
// plan provides the throughput-optimal shape; the cap defends the
// constraint when sensors, actuators, or the plant misbehave.
type PlanGuard struct {
	sched  *schedule.Schedule
	tl     *actuator.Timeline
	levels *power.LevelSet
	tripC  float64
	hystK  float64

	cap     int
	panic   bool
	voltBuf []float64
	// lvlOf maps each timeline voltage to its level index; built once at
	// construction so Want stays allocation-free.
	lvlOf map[float64]int
}

// NewPlanGuard compiles the schedule into its command stream and attaches
// the watchdog. Every voltage appearing in the schedule must be a level
// of ls (or 0 for an inactive core), and the trip point must lie below
// the hysteresis-recovered band's ceiling.
func NewPlanGuard(sched *schedule.Schedule, ls *power.LevelSet, tripC, hystK float64) (*PlanGuard, error) {
	if sched == nil {
		return nil, fmt.Errorf("rig: plan guard needs a schedule")
	}
	if hystK <= 0 || math.IsNaN(hystK) {
		return nil, fmt.Errorf("rig: plan guard hysteresis %v must be positive", hystK)
	}
	if math.IsNaN(tripC) || math.IsInf(tripC, 0) {
		return nil, fmt.Errorf("rig: plan guard trip %v invalid", tripC)
	}
	tl, err := actuator.NewTimeline(actuator.Compile(sched), sched.Period(), sched.NumCores())
	if err != nil {
		return nil, err
	}
	lvlOf := map[float64]int{0: -1}
	for i := 0; i < sched.NumCores(); i++ {
		for _, seg := range sched.CoreSegments(i) {
			v := seg.Mode.Voltage
			if _, ok := lvlOf[v]; ok {
				continue
			}
			idx, err := levelIndex(ls, v)
			if err != nil {
				return nil, err
			}
			lvlOf[v] = idx
		}
	}
	return &PlanGuard{
		sched:   sched,
		tl:      tl,
		levels:  ls,
		tripC:   tripC,
		hystK:   hystK,
		cap:     ls.Len() - 1,
		voltBuf: make([]float64, sched.NumCores()),
		lvlOf:   lvlOf,
	}, nil
}

// Name implements Controller.
func (g *PlanGuard) Name() string { return "plan-guard" }

// Decide implements Controller: the watchdog updates the level cap from
// the hottest sensed temperature. The cap sheds proportionally — one
// level per HystK of overshoot past the trip point, so a fast transient
// (a power spike landing on an already-hot core) pulls several levels in
// a single period instead of chasing it one step per period — and
// recovers one level at a time once the die cools below TripC − HystK.
// Past TripC + HystK the lowest level may still be too much heat (a
// two-level platform has almost no cap authority), so the guard clock-
// gates: every core goes off until the die cools back below the
// recovery threshold. That last resort is what bounds the worst-case
// excess under model mismatch.
func (g *PlanGuard) Decide(now float64, sensedC []float64, applied []int) {
	hottest := sensedC[0]
	for _, v := range sensedC[1:] {
		if v > hottest {
			hottest = v
		}
	}
	switch {
	case hottest > g.tripC:
		drop := 1 + int((hottest-g.tripC)/g.hystK)
		if g.cap -= drop; g.cap < 0 {
			g.cap = 0
		}
		if hottest > g.tripC+g.hystK {
			g.panic = true
		}
	case hottest < g.tripC-g.hystK:
		g.panic = false
		if g.cap < g.levels.Len()-1 {
			g.cap++
		}
	}
}

// Want implements Controller: the plan's programmed level at t, clamped
// by the watchdog cap; all cores off while the panic gate is tripped.
func (g *PlanGuard) Want(t float64, out []int) {
	if g.panic {
		for i := range out[:g.sched.NumCores()] {
			out[i] = -1
		}
		return
	}
	g.tl.Voltages(t, g.voltBuf)
	for i, v := range g.voltBuf {
		lvl := g.lvlOf[v]
		if lvl > g.cap {
			lvl = g.cap
		}
		out[i] = lvl
	}
}

// InitialLevels implements InitialLeveler: start on the plan.
func (g *PlanGuard) InitialLevels(n int) []int {
	out := make([]int, n)
	g.Want(0, out)
	return out
}

// WarmStart implements WarmStarter: the plant's thermally stable state
// under the unperturbed plan — the hot regime a long-running deployment
// actually sits in.
func (g *PlanGuard) WarmStart(plant *thermal.Model) ([]float64, error) {
	if plant.NumCores() != g.sched.NumCores() {
		return nil, fmt.Errorf("rig: plan has %d cores, plant %d", g.sched.NumCores(), plant.NumCores())
	}
	st, err := sim.NewStable(plant, g.sched)
	if err != nil {
		return nil, err
	}
	return st.Start(), nil
}

// Cap returns the watchdog's current level cap (for tests and traces).
func (g *PlanGuard) Cap() int { return g.cap }

func levelIndex(ls *power.LevelSet, v float64) (int, error) {
	for k := 0; k < ls.Len(); k++ {
		if math.Abs(ls.Mode(k).Voltage-v) <= 1e-9 {
			return k, nil
		}
	}
	return 0, fmt.Errorf("rig: schedule voltage %v is not a platform level", v)
}

// policyCtrl adapts an internal/governor Policy (step-wise, on-off, PI,
// predictive) to the rig's Controller interface: the policy decides once
// per control step and the wish holds for the whole step.
type policyCtrl struct {
	pol  governor.Policy
	want []int
}

// FromPolicy wraps a reactive/predictive governor policy as a rig
// Controller.
func FromPolicy(pol governor.Policy) Controller {
	return &policyCtrl{pol: pol}
}

func (c *policyCtrl) Name() string { return c.pol.Name() }

func (c *policyCtrl) Decide(now float64, sensedC []float64, applied []int) {
	c.want = c.pol.Next(sensedC, applied)
}

func (c *policyCtrl) Want(t float64, out []int) {
	if c.want == nil {
		return // before the first Decide (unreachable in the rig loop): hold
	}
	copy(out, c.want)
}

// stateSeeder is implemented by controllers whose internal observer can
// be initialized from a known plant state (rise above ambient, full node
// vector).
type stateSeeder interface {
	SeedState(rise []float64) error
}

// SeedState forwards the plant state to the wrapped policy's observer
// when it has one (the predictive governor does; step-wise is stateless).
func (c *policyCtrl) SeedState(rise []float64) error {
	if s, ok := c.pol.(stateSeeder); ok {
		return s.SeedState(rise)
	}
	return nil
}

// WithPlanWarmStart gives any controller the same warm start a PlanGuard
// gets: the plant's stable state under the reference plan. Comparing a
// warm-started plan replay against cold-started reactive baselines would
// measure the sink's minutes-long heat-up transient, not the controllers;
// wrapping the baselines with the plan's regime makes Compare
// apples-to-apples. Controllers with an internal observer are seeded with
// the same state — a deployed governor's observer would long since have
// converged.
type planWarm struct {
	Controller
	sched *schedule.Schedule
}

func WithPlanWarmStart(c Controller, sched *schedule.Schedule) Controller {
	return &planWarm{Controller: c, sched: sched}
}

func (w *planWarm) WarmStart(plant *thermal.Model) ([]float64, error) {
	if plant.NumCores() != w.sched.NumCores() {
		return nil, fmt.Errorf("rig: plan has %d cores, plant %d", w.sched.NumCores(), plant.NumCores())
	}
	st, err := sim.NewStable(plant, w.sched)
	if err != nil {
		return nil, err
	}
	start := st.Start()
	if s, ok := w.Controller.(stateSeeder); ok {
		if err := s.SeedState(start); err != nil {
			return nil, err
		}
	}
	return start, nil
}
