// Package rig is a deterministic closed-loop chip emulator with fault
// injection: it wraps the exact LTI thermal model as a virtual plant —
// quantized, noisy sensor readout; slow DVFS actuation; power-model
// perturbation and leakage drift — and drives a controller (an AO plan
// under a thermal watchdog, or one of the internal/governor policies)
// against it while recording the TRUE temperature trajectory.
//
// The paper's guarantees (Theorems 1–5) hold for the idealized RC model
// with free, instantaneous actuation and perfect knowledge. The rig
// manufactures the regimes the paper abstracts away — sensor dropout and
// stuck-at faults, transition failures, transient power spikes, and
// planner/plant model mismatch — and turns them into repeatable,
// seed-pinned tests: the same scenario seed always reproduces the same
// fault sequence and therefore byte-identical trace JSON.
package rig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Scenario is the declarative description of one closed-loop run: the
// platform, the thermal contract, the emulation resolution, and the fault
// plan. Zero-valued knobs take the documented defaults when the scenario
// is canonicalized; fault blocks left zero mean "no such faults".
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed pins every random draw of the run: plant perturbation, sensor
	// noise, fault arrival. Same seed ⇒ identical trace bytes.
	Seed int64 `json:"seed"`

	// Rows×Cols selects the grid floorplan (defaults 3×1).
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// PaperLevels selects the paper's Table IV level set (2..5, default 2).
	PaperLevels int `json:"paper_levels"`

	// TmaxC is the absolute thermal contract in °C (default 65). A
	// violation is any TRUE core temperature above TmaxC + GuardK.
	TmaxC float64 `json:"tmax_c"`
	// GuardK is the guard band (K, default 2) the closed loop must keep
	// the plant within despite the injected faults.
	GuardK float64 `json:"guard_k"`
	// PlanMarginK derates the planner's threshold: plans are solved for
	// TmaxC − PlanMarginK (default 2) so the open-loop schedule does not
	// start exactly on the constraint it must defend under perturbation.
	// The default absorbs the soak fault envelope: a +6 % convection
	// mismatch plus a warm ambient alone cost ≈2 K of true headroom.
	PlanMarginK float64 `json:"plan_margin_k"`

	// HorizonS is the emulated wall-clock length (default 20 s).
	HorizonS float64 `json:"horizon_s"`
	// StepS is the control/sensor period (default 10 ms).
	StepS float64 `json:"step_s"`
	// SubSteps is the plant integration resolution per control step
	// (default 8): actuation latency and plan playback quantize to
	// StepS/SubSteps.
	SubSteps int `json:"substeps"`
	// MaxM caps the AO oscillation count for plan-guided runs (default
	// 16), keeping the plan's switching period resolvable by the
	// emulation grid.
	MaxM int `json:"max_m"`

	Sensor   SensorFaults   `json:"sensor"`
	Actuator ActuatorFaults `json:"actuator"`
	Power    PowerFaults    `json:"power"`
	Mismatch PlantMismatch  `json:"mismatch"`
}

// SensorFaults perturbs the temperature telemetry the controller sees.
type SensorFaults struct {
	// NoiseStdK is zero-mean Gaussian read noise (K, 1σ).
	NoiseStdK float64 `json:"noise_std_k"`
	// QuantStepK quantizes readings to multiples of this step (0 = off).
	QuantStepK float64 `json:"quant_step_k"`
	// DropoutProb is the per-core per-step probability that a sample is
	// lost; the controller then sees the last delivered value.
	DropoutProb float64 `json:"dropout_prob"`
	// StuckProb is the per-core per-step probability that the sensor
	// freezes at its current reading for StuckDurS seconds.
	StuckProb float64 `json:"stuck_prob"`
	// StuckDurS is the length of a stuck-at episode (default 0.2 s when
	// StuckProb > 0).
	StuckDurS float64 `json:"stuck_dur_s"`
}

// ActuatorFaults perturbs DVFS actuation.
type ActuatorFaults struct {
	// LatencyS delays every commanded level change: the core stalls
	// (zero work, power at the higher of the two voltages — the
	// conservative convention of internal/actuator) until the rail
	// settles. Rounded up to the emulation substep.
	LatencyS float64 `json:"latency_s"`
	// FailProb is the probability that a commanded transition silently
	// fails (the level does not change; the controller only learns by
	// watching temperatures).
	FailProb float64 `json:"fail_prob"`
}

// PowerFaults injects workload-side power disturbances.
type PowerFaults struct {
	// SpikeProb is the per-step probability that a transient power spike
	// starts on a random core.
	SpikeProb float64 `json:"spike_prob"`
	// SpikeW is the spike magnitude in watts.
	SpikeW float64 `json:"spike_w"`
	// SpikeDurS is the spike duration (default 0.5 s when SpikeProb > 0).
	SpikeDurS float64 `json:"spike_dur_s"`
	// LeakDriftWPerS grows every core's leakage floor linearly with time
	// (aging / electromigration drift), saturating at LeakDriftMaxW.
	LeakDriftWPerS float64 `json:"leak_drift_w_per_s"`
	// LeakDriftMaxW caps the accumulated drift (default 0.5 W when the
	// rate is positive).
	LeakDriftMaxW float64 `json:"leak_drift_max_w"`
}

// PlantMismatch separates the TRUE plant from the planner's model: the
// controller plans and predicts on the nominal model; the rig integrates
// the perturbed one.
type PlantMismatch struct {
	// CoreScaleSpread draws each plant core's power scale uniformly from
	// [1−s, 1+s] (process variation the planner did not calibrate).
	CoreScaleSpread float64 `json:"core_scale_spread"`
	// ConvFactor multiplies the plant's convection resistance (≥ 1 models
	// a dusty heatsink; default 1).
	ConvFactor float64 `json:"conv_factor"`
	// AmbientOffsetC shifts the plant's true ambient in °C (the planner
	// still believes the nominal ambient).
	AmbientOffsetC float64 `json:"ambient_offset_c"`
}

// Scenario limits: everything a decoded scenario must satisfy after
// canonicalization. The caps bound soak cost, not physics.
const (
	maxCores     = 16
	maxSteps     = 1 << 20
	maxNoiseStdK = 10
	maxSpikeW    = 20
)

// Canon fills defaults into zero-valued knobs and validates the result.
// It is idempotent: Canon(Canon(s)) == Canon(s), and re-decoding the JSON
// encoding of a canonical scenario reproduces it exactly — the property
// FuzzRigScenario pins so scenario files never fragment across tools.
func (s *Scenario) Canon() error {
	if s.Rows == 0 {
		s.Rows = 3
	}
	if s.Cols == 0 {
		s.Cols = 1
	}
	if s.PaperLevels == 0 {
		s.PaperLevels = 2
	}
	if s.TmaxC == 0 {
		s.TmaxC = 65
	}
	if s.GuardK == 0 {
		s.GuardK = 2
	}
	if s.PlanMarginK == 0 {
		s.PlanMarginK = 2
	}
	if s.HorizonS == 0 {
		s.HorizonS = 20
	}
	if s.StepS == 0 {
		s.StepS = 10e-3
	}
	if s.SubSteps == 0 {
		s.SubSteps = 8
	}
	if s.MaxM == 0 {
		s.MaxM = 16
	}
	if s.Sensor.StuckProb > 0 && s.Sensor.StuckDurS == 0 {
		s.Sensor.StuckDurS = 0.2
	}
	if s.Power.SpikeProb > 0 && s.Power.SpikeDurS == 0 {
		s.Power.SpikeDurS = 0.5
	}
	if s.Power.LeakDriftWPerS > 0 && s.Power.LeakDriftMaxW == 0 {
		s.Power.LeakDriftMaxW = 0.5
	}
	if s.Mismatch.ConvFactor == 0 {
		s.Mismatch.ConvFactor = 1
	}
	return s.validate()
}

func (s *Scenario) validate() error {
	if s.Rows < 1 || s.Cols < 1 || s.Rows*s.Cols > maxCores {
		return fmt.Errorf("rig: grid %dx%d outside [1,%d] cores", s.Rows, s.Cols, maxCores)
	}
	if s.PaperLevels < 2 || s.PaperLevels > 5 {
		return fmt.Errorf("rig: paper_levels %d outside 2..5", s.PaperLevels)
	}
	if !finite(s.TmaxC) || s.TmaxC < 40 || s.TmaxC > 150 {
		return fmt.Errorf("rig: tmax_c %v outside [40,150]", s.TmaxC)
	}
	if !finite(s.GuardK) || s.GuardK < 0 || s.GuardK > 20 {
		return fmt.Errorf("rig: guard_k %v outside [0,20]", s.GuardK)
	}
	if !finite(s.PlanMarginK) || s.PlanMarginK < 0 || s.PlanMarginK > 10 {
		return fmt.Errorf("rig: plan_margin_k %v outside [0,10]", s.PlanMarginK)
	}
	if !finite(s.HorizonS) || s.HorizonS <= 0 || s.HorizonS > 3600 {
		return fmt.Errorf("rig: horizon_s %v outside (0,3600]", s.HorizonS)
	}
	if !finite(s.StepS) || s.StepS <= 0 || s.StepS > 1 {
		return fmt.Errorf("rig: step_s %v outside (0,1]", s.StepS)
	}
	if steps := s.HorizonS / s.StepS; steps > maxSteps {
		return fmt.Errorf("rig: %d control steps exceed the %d cap", int(steps), maxSteps)
	}
	if s.SubSteps < 1 || s.SubSteps > 64 {
		return fmt.Errorf("rig: substeps %d outside [1,64]", s.SubSteps)
	}
	if s.MaxM < 1 || s.MaxM > 4096 {
		return fmt.Errorf("rig: max_m %d outside [1,4096]", s.MaxM)
	}
	if err := s.Sensor.validate(); err != nil {
		return err
	}
	if err := s.Actuator.validate(s.StepS); err != nil {
		return err
	}
	if err := s.Power.validate(); err != nil {
		return err
	}
	return s.Mismatch.validate()
}

func (f *SensorFaults) validate() error {
	if !finite(f.NoiseStdK) || f.NoiseStdK < 0 || f.NoiseStdK > maxNoiseStdK {
		return fmt.Errorf("rig: sensor noise_std_k %v outside [0,%d]", f.NoiseStdK, maxNoiseStdK)
	}
	if !finite(f.QuantStepK) || f.QuantStepK < 0 || f.QuantStepK > 10 {
		return fmt.Errorf("rig: sensor quant_step_k %v outside [0,10]", f.QuantStepK)
	}
	if err := prob("sensor dropout_prob", f.DropoutProb); err != nil {
		return err
	}
	if err := prob("sensor stuck_prob", f.StuckProb); err != nil {
		return err
	}
	if !finite(f.StuckDurS) || f.StuckDurS < 0 || f.StuckDurS > 10 {
		return fmt.Errorf("rig: sensor stuck_dur_s %v outside [0,10]", f.StuckDurS)
	}
	if f.StuckProb > 0 && f.StuckDurS == 0 {
		return fmt.Errorf("rig: stuck_prob %v with zero stuck_dur_s", f.StuckProb)
	}
	return nil
}

func (f *ActuatorFaults) validate(stepS float64) error {
	if !finite(f.LatencyS) || f.LatencyS < 0 || f.LatencyS > 1 {
		return fmt.Errorf("rig: actuator latency_s %v outside [0,1]", f.LatencyS)
	}
	if f.LatencyS > 100*stepS {
		return fmt.Errorf("rig: actuator latency_s %v exceeds 100 control steps", f.LatencyS)
	}
	return prob("actuator fail_prob", f.FailProb)
}

func (f *PowerFaults) validate() error {
	if err := prob("power spike_prob", f.SpikeProb); err != nil {
		return err
	}
	if !finite(f.SpikeW) || f.SpikeW < 0 || f.SpikeW > maxSpikeW {
		return fmt.Errorf("rig: power spike_w %v outside [0,%d]", f.SpikeW, maxSpikeW)
	}
	if !finite(f.SpikeDurS) || f.SpikeDurS < 0 || f.SpikeDurS > 30 {
		return fmt.Errorf("rig: power spike_dur_s %v outside [0,30]", f.SpikeDurS)
	}
	if f.SpikeProb > 0 && (f.SpikeW == 0 || f.SpikeDurS == 0) {
		return fmt.Errorf("rig: spike_prob %v with zero magnitude or duration", f.SpikeProb)
	}
	if !finite(f.LeakDriftWPerS) || f.LeakDriftWPerS < 0 || f.LeakDriftWPerS > 1 {
		return fmt.Errorf("rig: power leak_drift_w_per_s %v outside [0,1]", f.LeakDriftWPerS)
	}
	if !finite(f.LeakDriftMaxW) || f.LeakDriftMaxW < 0 || f.LeakDriftMaxW > 5 {
		return fmt.Errorf("rig: power leak_drift_max_w %v outside [0,5]", f.LeakDriftMaxW)
	}
	if f.LeakDriftWPerS > 0 && f.LeakDriftMaxW == 0 {
		return fmt.Errorf("rig: leak drift rate %v with zero cap", f.LeakDriftWPerS)
	}
	return nil
}

func (m *PlantMismatch) validate() error {
	if !finite(m.CoreScaleSpread) || m.CoreScaleSpread < 0 || m.CoreScaleSpread > 0.2 {
		return fmt.Errorf("rig: mismatch core_scale_spread %v outside [0,0.2]", m.CoreScaleSpread)
	}
	if !finite(m.ConvFactor) || m.ConvFactor < 0.5 || m.ConvFactor > 1.5 {
		return fmt.Errorf("rig: mismatch conv_factor %v outside [0.5,1.5]", m.ConvFactor)
	}
	if !finite(m.AmbientOffsetC) || m.AmbientOffsetC < -10 || m.AmbientOffsetC > 10 {
		return fmt.Errorf("rig: mismatch ambient_offset_c %v outside [-10,10]", m.AmbientOffsetC)
	}
	return nil
}

func prob(name string, p float64) error {
	if !finite(p) || p < 0 || p > 1 {
		return fmt.Errorf("rig: %s %v outside [0,1]", name, p)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DecodeScenario parses and canonicalizes a scenario from strict JSON:
// unknown fields, trailing garbage, and out-of-range knobs are rejected
// with errors, never silently zeroed.
func DecodeScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("rig: decoding scenario: %w", err)
	}
	// Reject trailing non-whitespace so concatenated/truncated configs
	// fail loudly.
	if dec.More() {
		return nil, fmt.Errorf("rig: trailing data after scenario object")
	}
	if err := s.Canon(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeScenario renders the canonical JSON form (stable field order,
// two-space indent) — the round-trip inverse of DecodeScenario.
func EncodeScenario(s *Scenario) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
