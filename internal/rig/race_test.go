package rig

import (
	"bytes"
	"sync"
	"testing"
)

// TestRigConcurrentReaders steps a rig while goroutines hammer the
// concurrent read surface. Run with -race (the repo's test-race target
// does): the assertion here is freedom from data races plus an unchanged
// deterministic trace — concurrent scraping must never perturb the run.
func TestRigConcurrentReaders(t *testing.T) {
	sc := faultySc(21)
	sc.HorizonS = 1

	run := func(readers int) *Report {
		r, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanAO(r)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := GuardFor(r.Scenario(), plan, r.Levels())
		if err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					st := r.Stats()
					if st.Step < 0 || st.Step > 100 {
						panic("stats snapshot out of range")
					}
					for _, c := range r.SensedC() {
						_ = c
					}
					for _, c := range r.TrueTempsC() {
						if c > 500 {
							panic("implausible temperature snapshot")
						}
					}
					if _, err := r.TraceJSON(); err != nil {
						panic(err)
					}
				}
			}()
		}
		rep, err := r.Run(guard)
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	loud := run(4)  // scraped by 4 goroutines
	quiet := run(0) // no readers at all
	if loud.TraceSHA256 != quiet.TraceSHA256 {
		t.Fatalf("concurrent readers perturbed the trace: %s vs %s",
			loud.TraceSHA256, quiet.TraceSHA256)
	}
}

// Concurrent independent rigs on the same scenario must not share state:
// byte-identical traces from parallel runs.
func TestRigParallelRunsDeterministic(t *testing.T) {
	sc := faultySc(33)
	sc.HorizonS = 1

	const n = 4
	traces := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			r, err := New(sc)
			if err != nil {
				panic(err)
			}
			plan, err := PlanAO(r)
			if err != nil {
				panic(err)
			}
			guard, err := GuardFor(r.Scenario(), plan, r.Levels())
			if err != nil {
				panic(err)
			}
			if _, err := r.Run(guard); err != nil {
				panic(err)
			}
			tj, err := r.TraceJSON()
			if err != nil {
				panic(err)
			}
			traces[slot] = tj
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(traces[0], traces[i]) {
			t.Fatalf("parallel run %d diverged from run 0", i)
		}
	}
}

// The soak worker pool itself must be race-free and order-stable.
func TestSoakParallelWorkers(t *testing.T) {
	base := &Scenario{HorizonS: 1}
	one, err := Soak(base, 6, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Soak(base, 6, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Scenarios {
		a, b := one.Scenarios[i].Report, many.Scenarios[i].Report
		if a.TraceSHA256 != b.TraceSHA256 {
			t.Fatalf("scenario %d: worker count changed the trace", i)
		}
	}
}
