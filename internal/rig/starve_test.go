package rig

import (
	"testing"
	"time"

	"thermosc/internal/solver"
)

// A nanosecond budget expires before AO produces any incumbent: the
// anytime planner must land on the constant safe floor, tagged as such,
// and the floor must be a real schedule.
func TestPlanAnytimeStarvedLandsOnFloor(t *testing.T) {
	sc := &Scenario{}
	r, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	sched, reason, err := PlanAnytime(r, time.Nanosecond)
	if err != nil {
		t.Fatalf("starved plan refused: %v", err)
	}
	if reason != solver.DegradedFallback {
		t.Fatalf("reason %q, want the safe floor", reason)
	}
	if sched == nil || sched.NumCores() != r.Scenario().Rows*r.Scenario().Cols {
		t.Fatalf("floor schedule degenerate: %+v", sched)
	}
	// A generous budget completes and is NOT degraded.
	sched, reason, err = PlanAnytime(r, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if reason != solver.DegradedNone || sched == nil {
		t.Fatalf("unpressured plan degraded: %q", reason)
	}
}

// The starved soak is the tentpole's closing claim: with the planner
// deadline-starved mid-scenario — every replan forced onto the degraded
// chain — PlanGuard plus the degraded plan still hold Tmax + guard
// across seed-pinned fault streams, and the replays stay byte-identical.
func TestSoakStarvedHoldsGuardBand(t *testing.T) {
	if testing.Short() {
		t.Skip("starved soak is a multi-scenario closed-loop run")
	}
	rep, err := SoakStarved(nil, 4, 1, 0, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("starved soak failed: %d violations, %d nondeterministic", rep.Violations, rep.NonDeterministic)
	}
	if rep.Controller != "plan-guard/starved-replan" {
		t.Fatalf("controller %q", rep.Controller)
	}
	if rep.PlanBudgetS <= 0 {
		t.Fatalf("report does not carry the plan budget: %+v", rep)
	}
	// A nanosecond budget cannot complete any AO solve: every scenario
	// must have run on a degraded replan, and the report must say so.
	if rep.DegradedPlans != rep.N {
		t.Fatalf("%d/%d scenarios on degraded replans, want all", rep.DegradedPlans, rep.N)
	}
	for i, oc := range rep.Scenarios {
		if oc.PlanDegraded != string(solver.DegradedFallback) {
			t.Fatalf("scenario %d replan reason %q", i, oc.PlanDegraded)
		}
		if oc.Report.ViolationS > 0 {
			t.Fatalf("scenario %d violated Tmax+guard on the starved replan: %+v", i, oc.Report)
		}
	}

	// The budget knob is validated.
	if _, err := SoakStarved(nil, 1, 1, 0, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}
