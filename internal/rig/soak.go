package rig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"thermosc/internal/governor"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/solver"
)

// PlanAO solves the AO plan a plan-guard run replays: the planner's
// nominal model, the paper level set, and a threshold derated by the
// scenario's plan margin. MaxM is capped by the scenario so the resulting
// oscillation cycle stays resolvable on the emulation grid.
func PlanAO(r *Rig) (*schedule.Schedule, error) {
	sc := r.Scenario()
	res, err := solver.AO(solver.Problem{
		Model:    r.PlannerModel(),
		Levels:   r.Levels(),
		TmaxC:    sc.TmaxC - sc.PlanMarginK,
		Overhead: power.DefaultOverhead(),
		MaxM:     sc.MaxM,
	})
	if err != nil {
		return nil, fmt.Errorf("rig: AO plan: %w", err)
	}
	if !res.Feasible || res.Schedule == nil {
		return nil, fmt.Errorf("rig: AO found no feasible plan at %.1f °C", sc.TmaxC-sc.PlanMarginK)
	}
	return res.Schedule, nil
}

// GuardFor builds the default watchdog for a scenario's plan: trip three
// quarters of a plan margin below Tmax — early enough that a spike
// landing on an already-perturbed plant still leaves the guard band
// intact — and recover one kelvin cooler.
func GuardFor(sc Scenario, plan *schedule.Schedule, ls *power.LevelSet) (*PlanGuard, error) {
	return NewPlanGuard(plan, ls, sc.TmaxC-0.75*sc.PlanMarginK, 1.0)
}

// planKey identifies scenarios that share one AO plan: everything the
// solve depends on, nothing the fault injection touches.
type planKey struct {
	rows, cols, levels, maxM int
	planTmaxC                float64
}

// planCache memoizes AO solves across a soak run; entries build at most
// once even when workers race (the sync.Once pattern of sim.Engine).
type planCache struct {
	mu sync.Mutex
	m  map[planKey]*planEntry
}

type planEntry struct {
	once  sync.Once
	sched *schedule.Schedule
	err   error
}

func newPlanCache() *planCache { return &planCache{m: make(map[planKey]*planEntry)} }

func (c *planCache) plan(r *Rig) (*schedule.Schedule, error) {
	sc := r.Scenario()
	key := planKey{sc.Rows, sc.Cols, sc.PaperLevels, sc.MaxM, sc.TmaxC - sc.PlanMarginK}
	c.mu.Lock()
	ent, ok := c.m[key]
	if !ok {
		ent = &planEntry{}
		c.m[key] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() { ent.sched, ent.err = PlanAO(r) })
	return ent.sched, ent.err
}

// RandomScenarios derives n randomized fault scenarios from a base
// template, seed-pinned: the same (base, n, seed) always yields the same
// scenario list. Fault magnitudes are drawn inside the envelope the
// plan-guard's guard band is calibrated to absorb — the soak then asserts
// the closed loop actually absorbs them.
func RandomScenarios(base *Scenario, n int, seed int64) ([]*Scenario, error) {
	tmpl := Scenario{}
	if base != nil {
		tmpl = *base
	}
	if err := tmpl.Canon(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]*Scenario, 0, n)
	for i := 0; i < n; i++ {
		sc := tmpl
		sc.Name = fmt.Sprintf("soak-%03d", i)
		sc.Seed = r.Int63()
		sc.Sensor.NoiseStdK = 1.5 * r.Float64()
		sc.Sensor.QuantStepK = []float64{0, 0.5, 1}[r.Intn(3)]
		sc.Sensor.DropoutProb = 0.05 * r.Float64()
		sc.Sensor.StuckProb = 0.002 * r.Float64()
		sc.Sensor.StuckDurS = 0.1 + 0.2*r.Float64()
		sc.Actuator.LatencyS = 2e-3 * r.Float64()
		sc.Actuator.FailProb = 0.05 * r.Float64()
		sc.Power.SpikeProb = 0.01 * r.Float64()
		// A spike couples through the core's self thermal resistance
		// faster than DVFS can shed it; 1.2 W is the largest transient
		// the default plan margin + guard band can absorb on top of the
		// worst-case model mismatch below.
		sc.Power.SpikeW = 0.4 + 0.8*r.Float64()
		sc.Power.SpikeDurS = 0.2 + 0.3*r.Float64()
		sc.Power.LeakDriftWPerS = 0.01 * r.Float64()
		sc.Power.LeakDriftMaxW = 0.3
		sc.Mismatch.CoreScaleSpread = 0.03 * r.Float64()
		sc.Mismatch.ConvFactor = 1 + 0.06*r.Float64()
		sc.Mismatch.AmbientOffsetC = 2*r.Float64() - 1
		if err := sc.Canon(); err != nil {
			return nil, fmt.Errorf("rig: derived scenario %d invalid: %w", i, err)
		}
		out = append(out, &sc)
	}
	return out, nil
}

// ScenarioOutcome is one soak scenario's verdict.
type ScenarioOutcome struct {
	Scenario      *Scenario `json:"scenario"`
	Report        *Report   `json:"report"`
	Deterministic bool      `json:"deterministic"`
	// PlanDegraded tags a starved-soak scenario whose mid-run replan was
	// truncated (the solver.DegradedReason) — empty in plain soaks and
	// when the budget sufficed for a complete replan.
	PlanDegraded string `json:"plan_degraded,omitempty"`
}

// SoakReport aggregates a soak run.
type SoakReport struct {
	N                int     `json:"n"`
	Seed             int64   `json:"seed"`
	Controller       string  `json:"controller"`
	Violations       int     `json:"violations"`
	NonDeterministic int     `json:"non_deterministic"`
	WorstPeakC       float64 `json:"worst_peak_c"`
	WorstExcessK     float64 `json:"worst_excess_k"`
	MinThroughput    float64 `json:"min_throughput"`
	Pass             bool    `json:"pass"`
	// PlanBudgetS and DegradedPlans describe a starved soak (SoakStarved):
	// the wall-clock budget the mid-scenario replanner was held to, and
	// how many scenarios actually ran on a degraded/floor replan. Absent
	// in plain soaks.
	PlanBudgetS   float64            `json:"plan_budget_s,omitempty"`
	DegradedPlans int                `json:"degraded_plans,omitempty"`
	Scenarios     []*ScenarioOutcome `json:"scenarios"`
}

// Soak runs n randomized fault scenarios (derived from base, seed-pinned)
// under AO plans with plan-guard closed-loop correction. Every scenario
// runs TWICE from a fresh rig; a byte-level mismatch between the two
// trace hashes marks it non-deterministic. Pass requires zero violations
// of Tmax + guard band and full determinism. Workers ≤ 0 uses
// GOMAXPROCS; the outcome order is by scenario index regardless of
// worker interleaving.
func Soak(base *Scenario, n int, seed int64, workers int) (*SoakReport, error) {
	return soak(base, n, seed, workers, 0)
}

// soak is the shared engine behind Soak (budget 0: full planning) and
// SoakStarved (budget > 0: mid-scenario replan under that budget).
func soak(base *Scenario, n int, seed int64, workers int, budget time.Duration) (*SoakReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("rig: soak needs at least one scenario")
	}
	scens, err := RandomScenarios(base, n, seed)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	plans := newPlanCache()
	var starved *starvedPlanCache
	if budget > 0 {
		starved = newStarvedPlanCache(budget)
	}
	outcomes := make([]*ScenarioOutcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i], errs[i] = runGuardedTwice(scens[i], plans, starved)
			}
		}()
	}
	for i := range scens {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rig: scenario %d (%s): %w", i, scens[i].Name, err)
		}
	}

	rep := &SoakReport{N: n, Seed: seed, Scenarios: outcomes, MinThroughput: 1e18, PlanBudgetS: budget.Seconds()}
	for _, oc := range outcomes {
		rep.Controller = oc.Report.Controller
		if oc.Report.ViolationS > 0 {
			rep.Violations++
		}
		if !oc.Deterministic {
			rep.NonDeterministic++
		}
		if oc.PlanDegraded != "" {
			rep.DegradedPlans++
		}
		if oc.Report.TruePeakC > rep.WorstPeakC {
			rep.WorstPeakC = oc.Report.TruePeakC
		}
		if oc.Report.ExcessK > rep.WorstExcessK {
			rep.WorstExcessK = oc.Report.ExcessK
		}
		if oc.Report.Throughput < rep.MinThroughput {
			rep.MinThroughput = oc.Report.Throughput
		}
	}
	rep.Pass = rep.Violations == 0 && rep.NonDeterministic == 0
	return rep, nil
}

// runGuardedTwice executes one scenario under the guarded AO plan twice
// and checks the runs agree byte-for-byte. A non-nil starved cache adds
// the mid-scenario replan: both replays reuse the same cached
// budget-bounded plan, so starvation does not perturb the determinism
// check.
func runGuardedTwice(sc *Scenario, plans *planCache, starved *starvedPlanCache) (*ScenarioOutcome, error) {
	rep1, reason, err := runGuarded(sc, plans, starved)
	if err != nil {
		return nil, err
	}
	rep2, _, err := runGuarded(sc, plans, starved)
	if err != nil {
		return nil, err
	}
	b1, err := json.Marshal(rep1)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(rep2)
	if err != nil {
		return nil, err
	}
	return &ScenarioOutcome{
		Scenario:      sc,
		Report:        rep1,
		Deterministic: rep1.TraceSHA256 == rep2.TraceSHA256 && bytes.Equal(b1, b2),
		PlanDegraded:  string(reason),
	}, nil
}

func runGuarded(sc *Scenario, plans *planCache, starved *starvedPlanCache) (*Report, solver.DegradedReason, error) {
	r, err := New(sc)
	if err != nil {
		return nil, solver.DegradedNone, err
	}
	plan, err := plans.plan(r)
	if err != nil {
		return nil, solver.DegradedNone, err
	}
	guard, err := GuardFor(r.Scenario(), plan, r.Levels())
	if err != nil {
		return nil, solver.DegradedNone, err
	}
	var ctrl Controller = guard
	reason := solver.DegradedNone
	if starved != nil {
		replan, rr, err := starved.plan(r)
		if err != nil {
			return nil, solver.DegradedNone, err
		}
		reason = rr
		replanGuard, err := GuardFor(r.Scenario(), replan, r.Levels())
		if err != nil {
			return nil, solver.DegradedNone, err
		}
		ctrl = &starvedReplanGuard{full: guard, starved: replanGuard, switchS: r.Scenario().HorizonS / 2}
	}
	rep, err := r.Run(ctrl)
	return rep, reason, err
}

// CompareReport holds one scenario evaluated under several controllers.
type CompareReport struct {
	Scenario *Scenario `json:"scenario"`
	Runs     []*Report `json:"runs"`
}

// Compare runs the guarded AO plan against the reactive and predictive
// baselines on the SAME scenario. The per-family fault streams make the
// comparison honest: every controller sees the identical sensor-noise
// and power-spike sequences, and every controller warm-starts from the
// plan's stable state — the hot regime a deployment sits in — so a
// cold-start transient cannot flatter the baselines.
func Compare(sc *Scenario) (*CompareReport, error) {
	probe, err := New(sc)
	if err != nil {
		return nil, err
	}
	canon := probe.Scenario()
	plan, err := PlanAO(probe)
	if err != nil {
		return nil, err
	}
	build := []func(r *Rig) (Controller, error){
		func(r *Rig) (Controller, error) { return GuardFor(r.Scenario(), plan, r.Levels()) },
		func(r *Rig) (Controller, error) {
			sw := &governor.StepWise{TripC: canon.TmaxC, HystK: 2, Levels: r.Levels().Len()}
			return WithPlanWarmStart(FromPolicy(sw), plan), nil
		},
		func(r *Rig) (Controller, error) {
			pred := governor.NewPredictive(r.PlannerModel(), r.Levels(), canon.TmaxC, 1.0, canon.StepS)
			pred.LatencyS = canon.Actuator.LatencyS
			return WithPlanWarmStart(FromPolicy(pred), plan), nil
		},
	}
	out := &CompareReport{Scenario: &canon}
	for _, mk := range build {
		r, err := New(sc)
		if err != nil {
			return nil, err
		}
		ctrl, err := mk(r)
		if err != nil {
			return nil, err
		}
		rep, err := r.Run(ctrl)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, rep)
	}
	return out, nil
}
