package rig

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// faultySc is a short, fully loaded scenario exercising every fault
// family at once.
func faultySc(seed int64) *Scenario {
	return &Scenario{
		Seed:     seed,
		HorizonS: 2,
		Sensor:   SensorFaults{NoiseStdK: 0.8, QuantStepK: 0.5, DropoutProb: 0.02, StuckProb: 0.001},
		Actuator: ActuatorFaults{LatencyS: 1.5e-3, FailProb: 0.02},
		Power:    PowerFaults{SpikeProb: 0.01, SpikeW: 1, SpikeDurS: 0.3, LeakDriftWPerS: 0.05, LeakDriftMaxW: 0.3},
		Mismatch: PlantMismatch{CoreScaleSpread: 0.02, ConvFactor: 1.03, AmbientOffsetC: 0.5},
	}
}

func guardedReport(t *testing.T, sc *Scenario) *Report {
	t.Helper()
	r, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanAO(r)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := GuardFor(r.Scenario(), plan, r.Levels())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(guard)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Same seed ⇒ byte-identical trace JSON and identical report; a different
// seed must actually change the run.
func TestRigDeterminism(t *testing.T) {
	rep1 := guardedReport(t, faultySc(7))
	rep2 := guardedReport(t, faultySc(7))
	if rep1.TraceSHA256 != rep2.TraceSHA256 {
		t.Fatalf("same seed, different traces: %s vs %s", rep1.TraceSHA256, rep2.TraceSHA256)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different reports:\n%s\n%s", b1, b2)
	}
	rep3 := guardedReport(t, faultySc(8))
	if rep3.TraceSHA256 == rep1.TraceSHA256 {
		t.Fatal("different seeds produced identical traces")
	}
}

// The trace JSON itself (not just its hash) must be reproducible.
func TestRigTraceJSONDeterministic(t *testing.T) {
	run := func() []byte {
		sc := faultySc(11)
		r, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanAO(r)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := GuardFor(r.Scenario(), plan, r.Levels())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(guard); err != nil {
			t.Fatal(err)
		}
		tj, err := r.TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return tj
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("trace JSON differs between identical runs")
	}
	var trace []StepRecord
	if err := json.Unmarshal(a, &trace); err != nil {
		t.Fatalf("trace JSON malformed: %v", err)
	}
	if len(trace) != 200 { // 2 s at 10 ms
		t.Fatalf("trace has %d steps, want 200", len(trace))
	}
}

// Each fault family must leave its fingerprint: counters move, and the
// trajectory diverges from the clean run.
func TestRigFaultsLeaveFingerprints(t *testing.T) {
	clean := guardedReport(t, &Scenario{Seed: 7, HorizonS: 2})
	faulty := guardedReport(t, faultySc(7))
	if clean.TraceSHA256 == faulty.TraceSHA256 {
		t.Fatal("fault injection did not change the trajectory")
	}
	if clean.Spikes != 0 || clean.DroppedSamples != 0 || clean.StuckSamples != 0 || clean.FailedTransitions != 0 {
		t.Fatalf("clean run shows fault counters: %+v", clean)
	}
	if clean.StallS != 0 {
		t.Fatalf("clean run stalled %v s with zero latency", clean.StallS)
	}
	if faulty.DroppedSamples == 0 {
		t.Fatal("dropout fault never dropped a sample")
	}
	if faulty.StallS == 0 {
		t.Fatal("actuation latency never stalled a core")
	}
	if faulty.Transitions == 0 {
		t.Fatal("plan playback issued no transitions")
	}
}

// The headline soak property in miniature: a guarded AO plan keeps the
// true peak inside Tmax + guard band despite the full fault family.
func TestGuardedAOHoldsGuardBand(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rep := guardedReport(t, faultySc(seed))
		if rep.ViolationS > 0 || rep.ExcessK > 0 {
			t.Fatalf("seed %d: violated %v s, excess %.3f K (peak %.3f, limit %.3f)",
				seed, rep.ViolationS, rep.ExcessK, rep.TruePeakC, rep.LimitC)
		}
		if rep.Throughput <= 0 {
			t.Fatalf("seed %d: throughput %v", seed, rep.Throughput)
		}
	}
}

func TestRigRunsOnce(t *testing.T) {
	sc := &Scenario{Seed: 1, HorizonS: 0.1}
	r, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := FromPolicy(constPolicy{})
	if _, err := r.Run(ctrl); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctrl); err == nil {
		t.Fatal("second Run must fail")
	}
}

// constPolicy always asks for the lowest level.
type constPolicy struct{}

func (constPolicy) Name() string { return "const" }
func (constPolicy) Next(sensedC []float64, current []int) []int {
	return make([]int, len(current))
}

func TestRigRejectsInvalidScenario(t *testing.T) {
	if _, err := New(&Scenario{Rows: 100}); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

// The caller's scenario must not be mutated by New (it canonicalizes a
// copy).
func TestNewDoesNotMutateCaller(t *testing.T) {
	sc := &Scenario{Seed: 5}
	if _, err := New(sc); err != nil {
		t.Fatal(err)
	}
	if sc.Rows != 0 || sc.TmaxC != 0 {
		t.Fatalf("New mutated the caller's scenario: %+v", sc)
	}
}

func TestRandomScenariosPinned(t *testing.T) {
	a, err := RandomScenarios(nil, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomScenarios(nil, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomScenarios is not seed-pinned")
	}
	c, err := RandomScenarios(nil, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different soak seeds produced identical scenarios")
	}
	seen := map[int64]bool{}
	for _, sc := range a {
		if seen[sc.Seed] {
			t.Fatalf("duplicate scenario seed %d", sc.Seed)
		}
		seen[sc.Seed] = true
	}
}

// A small soak end to end: pass, deterministic, outcomes in index order.
func TestSoakSmall(t *testing.T) {
	base := &Scenario{HorizonS: 2}
	rep, err := Soak(base, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("small soak failed: %d violations, %d nondeterministic",
			rep.Violations, rep.NonDeterministic)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("%d outcomes", len(rep.Scenarios))
	}
	for i, oc := range rep.Scenarios {
		if want := "soak-00" + string(rune('0'+i)); oc.Scenario.Name != want {
			t.Fatalf("outcome %d is %q, want %q (order lost)", i, oc.Scenario.Name, want)
		}
		if !oc.Deterministic {
			t.Fatalf("scenario %d nondeterministic", i)
		}
	}
	if _, err := Soak(nil, 0, 1, 1); err == nil {
		t.Fatal("zero-scenario soak must error")
	}
}

// Compare pits three controllers against identical fault streams; the
// spike/noise sequences must match across runs.
func TestCompareControllers(t *testing.T) {
	sc := faultySc(9)
	rep, err := Compare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("%d runs", len(rep.Runs))
	}
	names := map[string]bool{}
	for _, run := range rep.Runs {
		names[run.Controller] = true
		if run.Steps != 200 {
			t.Fatalf("%s ran %d steps", run.Controller, run.Steps)
		}
	}
	for _, want := range []string{"plan-guard", "step-wise", "predictive"} {
		if !names[want] {
			t.Fatalf("missing controller %q in %v", want, names)
		}
	}
	// Identical fault streams: the spike count is controller-independent.
	for _, run := range rep.Runs[1:] {
		if run.Spikes != rep.Runs[0].Spikes {
			t.Fatalf("spike streams diverge: %d vs %d (%s)",
				run.Spikes, rep.Runs[0].Spikes, run.Controller)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	sc := &Scenario{Seed: 1, HorizonS: 0.5}
	r, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(FromPolicy(constPolicy{})); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if !st.Done || st.Step != 50 || st.TimeS != 0.5 {
		t.Fatalf("stats after run: %+v", st)
	}
	temps := r.TrueTempsC()
	sensed := r.SensedC()
	if len(temps) != 3 || len(sensed) != 3 {
		t.Fatalf("reader lengths %d/%d", len(temps), len(sensed))
	}
	for i, c := range temps {
		if c < 20 || c > 100 {
			t.Fatalf("core %d true temp %.2f implausible", i, c)
		}
	}
}

// wildPolicy asks for out-of-range levels; the rig must clamp, not panic.
type wildPolicy struct{ n int }

func (wildPolicy) Name() string { return "wild" }
func (w wildPolicy) Next(sensedC []float64, current []int) []int {
	out := make([]int, len(current))
	for i := range out {
		switch (w.n + i) % 3 {
		case 0:
			out[i] = 99 // above the top level
		case 1:
			out[i] = -7 // below "off"
		default:
			out[i] = 0
		}
	}
	return out
}

func TestRigClampsWildController(t *testing.T) {
	r, err := New(&Scenario{Seed: 3, HorizonS: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(FromPolicy(wildPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.TrueTempsC() {
		if c < 0 || c > 200 {
			t.Fatalf("clamped run diverged: %v °C", c)
		}
	}
	if rep.Steps != 20 {
		t.Fatalf("steps %d", rep.Steps)
	}
}

func TestRigAccessors(t *testing.T) {
	r, err := New(&Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlannerModel() == nil || r.PlantModel() == nil || r.Levels() == nil {
		t.Fatal("nil accessor")
	}
	if r.LimitC() != 67 { // default 65 + 2
		t.Fatalf("limit %v", r.LimitC())
	}
	plan, err := PlanAO(r)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := GuardFor(r.Scenario(), plan, r.Levels())
	if err != nil {
		t.Fatal(err)
	}
	if got := guard.Cap(); got != r.Levels().Len()-1 {
		t.Fatalf("fresh guard cap %d", got)
	}
	// The watchdog trips on a hot reading and recovers on a cold one.
	hot := make([]float64, 3)
	for i := range hot {
		hot[i] = 80
	}
	guard.Decide(0, hot, []int{0, 0, 0})
	if guard.Cap() != 0 {
		t.Fatalf("cap after hot reading: %d", guard.Cap())
	}
	cold := []float64{30, 30, 30}
	guard.Decide(0, cold, []int{0, 0, 0})
	if guard.Cap() != 1 {
		t.Fatalf("cap after cold reading: %d", guard.Cap())
	}
}

// Every compared controller shares the plan's hot warm start. Over a
// 1 s window a cold start could never reach the thermal band, so hot
// peaks prove the warm start took for the baselines too — and the seeded
// observer keeps the predictive baseline from violating while its hidden
// package nodes would otherwise converge from a fictitious cold state.
func TestCompareWarmStartsBaselines(t *testing.T) {
	sc := &Scenario{Seed: 5, HorizonS: 1}
	rep, err := Compare(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.TruePeakC < 60 {
			t.Fatalf("%s peaked at %.2f °C over %gs — cold start leaked into Compare",
				run.Controller, run.TruePeakC, sc.HorizonS)
		}
		if run.ViolationS != 0 {
			t.Fatalf("%s violated for %gs on a fault-free scenario",
				run.Controller, run.ViolationS)
		}
	}
}
