package rig

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCanonDefaults(t *testing.T) {
	var s Scenario
	if err := s.Canon(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 3 || s.Cols != 1 || s.PaperLevels != 2 {
		t.Fatalf("platform defaults: %dx%d levels %d", s.Rows, s.Cols, s.PaperLevels)
	}
	if s.TmaxC != 65 || s.GuardK != 2 || s.PlanMarginK != 2 {
		t.Fatalf("thermal defaults: tmax %v guard %v margin %v", s.TmaxC, s.GuardK, s.PlanMarginK)
	}
	if s.HorizonS != 20 || s.StepS != 10e-3 || s.SubSteps != 8 || s.MaxM != 16 {
		t.Fatalf("resolution defaults: %v %v %d %d", s.HorizonS, s.StepS, s.SubSteps, s.MaxM)
	}
	if s.Mismatch.ConvFactor != 1 {
		t.Fatalf("conv factor default %v", s.Mismatch.ConvFactor)
	}
}

func TestCanonConditionalDefaults(t *testing.T) {
	s := Scenario{
		Sensor: SensorFaults{StuckProb: 0.01},
		Power:  PowerFaults{SpikeProb: 0.01, SpikeW: 1, LeakDriftWPerS: 0.01},
	}
	if err := s.Canon(); err != nil {
		t.Fatal(err)
	}
	if s.Sensor.StuckDurS != 0.2 {
		t.Fatalf("stuck duration default %v", s.Sensor.StuckDurS)
	}
	if s.Power.SpikeDurS != 0.5 {
		t.Fatalf("spike duration default %v", s.Power.SpikeDurS)
	}
	if s.Power.LeakDriftMaxW != 0.5 {
		t.Fatalf("drift cap default %v", s.Power.LeakDriftMaxW)
	}
}

func TestCanonIdempotent(t *testing.T) {
	s := Scenario{Seed: 7, Sensor: SensorFaults{NoiseStdK: 0.5, StuckProb: 0.01}}
	if err := s.Canon(); err != nil {
		t.Fatal(err)
	}
	again := s
	if err := again.Canon(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("Canon not idempotent:\n%+v\n%+v", s, again)
	}
}

func TestScenarioValidationRejects(t *testing.T) {
	mk := func(mut func(*Scenario)) Scenario {
		s := Scenario{}
		mut(&s)
		return s
	}
	cases := []struct {
		name string
		s    Scenario
		frag string
	}{
		{"grid too large", mk(func(s *Scenario) { s.Rows = 5; s.Cols = 4 }), "grid"},
		{"negative rows", mk(func(s *Scenario) { s.Rows = -1 }), "grid"},
		{"paper levels", mk(func(s *Scenario) { s.PaperLevels = 9 }), "paper_levels"},
		{"tmax low", mk(func(s *Scenario) { s.TmaxC = 10 }), "tmax_c"},
		{"tmax NaN", mk(func(s *Scenario) { s.TmaxC = math.NaN() }), "tmax_c"},
		{"guard negative", mk(func(s *Scenario) { s.GuardK = -1 }), "guard_k"},
		{"horizon negative", mk(func(s *Scenario) { s.HorizonS = -5 }), "horizon_s"},
		{"step too long", mk(func(s *Scenario) { s.StepS = 2 }), "step_s"},
		{"too many steps", mk(func(s *Scenario) { s.HorizonS = 3600; s.StepS = 1e-6 }), "control steps"},
		{"substeps", mk(func(s *Scenario) { s.SubSteps = 100 }), "substeps"},
		{"max_m", mk(func(s *Scenario) { s.MaxM = 100000 }), "max_m"},
		{"noise", mk(func(s *Scenario) { s.Sensor.NoiseStdK = 99 }), "noise_std_k"},
		{"noise NaN", mk(func(s *Scenario) { s.Sensor.NoiseStdK = math.NaN() }), "noise_std_k"},
		{"dropout prob", mk(func(s *Scenario) { s.Sensor.DropoutProb = 1.5 }), "dropout_prob"},
		{"stuck duration", mk(func(s *Scenario) { s.Sensor.StuckProb = 0.1; s.Sensor.StuckDurS = -1 }), "stuck_dur_s"},
		{"latency", mk(func(s *Scenario) { s.Actuator.LatencyS = 2 }), "latency_s"},
		{"latency vs step", mk(func(s *Scenario) { s.StepS = 1e-3; s.Actuator.LatencyS = 0.5 }), "latency_s"},
		{"fail prob", mk(func(s *Scenario) { s.Actuator.FailProb = -0.1 }), "fail_prob"},
		{"spike watts", mk(func(s *Scenario) { s.Power.SpikeProb = 0.1; s.Power.SpikeW = 100 }), "spike_w"},
		{"spike zero magnitude", mk(func(s *Scenario) { s.Power.SpikeProb = 0.1; s.Power.SpikeDurS = 1 }), "spike"},
		{"drift", mk(func(s *Scenario) { s.Power.LeakDriftWPerS = 5 }), "leak_drift"},
		{"spread", mk(func(s *Scenario) { s.Mismatch.CoreScaleSpread = 0.9 }), "core_scale_spread"},
		{"conv", mk(func(s *Scenario) { s.Mismatch.ConvFactor = 3 }), "conv_factor"},
		{"ambient", mk(func(s *Scenario) { s.Mismatch.AmbientOffsetC = 99 }), "ambient_offset_c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Canon()
			if err == nil {
				t.Fatalf("want error, got nil (scenario %+v)", tc.s)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestDecodeScenarioStrict(t *testing.T) {
	good := []byte(`{"seed": 42, "sensor": {"noise_std_k": 0.5}}`)
	s, err := DecodeScenario(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Sensor.NoiseStdK != 0.5 || s.Rows != 3 {
		t.Fatalf("decoded %+v", s)
	}

	bad := []struct {
		name string
		data string
	}{
		{"unknown field", `{"seed": 1, "turbo": true}`},
		{"trailing garbage", `{"seed": 1} {"seed": 2}`},
		{"not json", `seed=1`},
		{"truncated", `{"seed": 1`},
		{"wrong type", `{"seed": "one"}`},
		{"out of range", `{"tmax_c": 9000}`},
		{"array", `[1,2,3]`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeScenario([]byte(tc.data)); err == nil {
				t.Fatalf("want error for %q", tc.data)
			}
		})
	}
}

// The encode→decode round trip of a canonical scenario must reproduce it
// exactly — scenario files written by one tool never fragment in another.
func TestScenarioRoundTrip(t *testing.T) {
	s := Scenario{
		Seed: 99,
		Rows: 2, Cols: 2,
		Sensor:   SensorFaults{NoiseStdK: 0.7, QuantStepK: 0.5, DropoutProb: 0.01, StuckProb: 0.001},
		Actuator: ActuatorFaults{LatencyS: 1e-3, FailProb: 0.02},
		Power:    PowerFaults{SpikeProb: 0.005, SpikeW: 1, LeakDriftWPerS: 0.01},
		Mismatch: PlantMismatch{CoreScaleSpread: 0.02, ConvFactor: 1.03, AmbientOffsetC: -0.5},
	}
	if err := s.Canon(); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeScenario(&s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, *back) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", s, *back)
	}
}
