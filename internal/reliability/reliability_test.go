package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReversals(t *testing.T) {
	got := reversals([]float64{1, 3, 2, 4, 0, 5})
	want := []float64{1, 3, 2, 4, 0, 5}
	if len(got) != len(want) {
		t.Fatalf("reversals = %v", got)
	}
	// Monotone series reduces to its endpoints.
	got = reversals([]float64{1, 2, 3, 4, 5})
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("monotone reversals = %v", got)
	}
	if reversals(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestRainflowSimpleWave(t *testing.T) {
	// A pure triangle wave 50→70→50→70→50 should count full cycles of
	// amplitude 10 K around mean 60 °C.
	series := []float64{50, 70, 50, 70, 50}
	cycles := Rainflow(series)
	var total, amp float64
	for _, c := range cycles {
		total += c.Count
		amp += c.Count * c.AmplitudeK
		if math.Abs(c.MeanC-60) > 1e-9 {
			t.Fatalf("cycle mean = %v", c.MeanC)
		}
	}
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total cycle count = %v, want 2", total)
	}
	if math.Abs(amp/total-10) > 1e-9 {
		t.Fatalf("mean amplitude = %v, want 10", amp/total)
	}
}

func TestRainflowTextbookSequence(t *testing.T) {
	// Classic ASTM E1049 example: peaks [-2, 1, -3, 5, -1, 3, -4, 4, -2]
	// yields full/half cycles with known ranges.
	series := []float64{-2, 1, -3, 5, -1, 3, -4, 4, -2}
	cycles := Rainflow(series)
	// Count-weighted total range must be conserved within the residual
	// accounting: every reversal pair appears exactly once.
	var totalCount float64
	for _, c := range cycles {
		totalCount += c.Count
	}
	// 8 intervals between 9 reversals → 4 "cycle equivalents".
	if math.Abs(totalCount-4) > 1e-9 {
		t.Fatalf("total count = %v, want 4", totalCount)
	}
	// The largest extracted amplitude must correspond to the -4..5 swing
	// (amplitude 4.5).
	SortByAmplitude(cycles)
	if math.Abs(cycles[0].AmplitudeK-4.5) > 1e-9 {
		t.Fatalf("largest amplitude = %v, want 4.5", cycles[0].AmplitudeK)
	}
}

func TestRainflowPeriodic(t *testing.T) {
	// One period of a sawtooth: 55→65→55 sampled mid-phase so the series
	// neither starts nor ends at the max.
	series := []float64{60, 65, 60, 55, 58}
	cycles := RainflowPeriodic(series)
	var total float64
	var maxAmp float64
	for _, c := range cycles {
		total += c.Count
		if c.AmplitudeK > maxAmp {
			maxAmp = c.AmplitudeK
		}
	}
	// The deep 55↔65 cycle must be recovered at full amplitude 5
	// regardless of the sampling phase.
	if math.Abs(maxAmp-5) > 1e-9 {
		t.Fatalf("periodic max amplitude = %v, want 5", maxAmp)
	}
	if total < 1 {
		t.Fatalf("total cycle equivalents = %v", total)
	}
	if RainflowPeriodic([]float64{60}) != nil {
		t.Fatal("single sample should produce no cycles")
	}
}

func TestRainflowFlatSeries(t *testing.T) {
	if got := Rainflow([]float64{60, 60, 60}); len(got) != 0 {
		t.Fatalf("flat series should produce no cycles: %v", got)
	}
}

// Property: count-weighted cycle equivalents equal half the number of
// reversal intervals (rainflow conservation).
func TestRainflowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(60)
		series := make([]float64, n)
		for i := range series {
			series[i] = 40 + r.Float64()*40
		}
		peaks := reversals(series)
		cycles := Rainflow(series)
		var total float64
		for _, c := range cycles {
			total += c.Count
		}
		return math.Abs(total-float64(len(peaks)-1)/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCoffinMansonDamage(t *testing.T) {
	cm := CoffinManson{Q: 2, MinAmplitudeK: 0}
	cycles := []Cycle{{AmplitudeK: 5, Count: 1}, {AmplitudeK: 10, Count: 0.5}}
	// (2·5)² + 0.5·(2·10)² = 100 + 200 = 300.
	if d := cm.Damage(cycles); math.Abs(d-300) > 1e-9 {
		t.Fatalf("Damage = %v, want 300", d)
	}
	// Amplitude floor screens micro-cycles.
	cm.MinAmplitudeK = 6
	if d := cm.Damage(cycles); math.Abs(d-200) > 1e-9 {
		t.Fatalf("floored Damage = %v, want 200", d)
	}
}

// The key defense of m-oscillation: with Q > 1, splitting one big cycle
// into m smaller ones REDUCES total damage.
func TestCoffinMansonFavorsManySmallCycles(t *testing.T) {
	cm := DefaultCoffinManson()
	big := []Cycle{{AmplitudeK: 10, Count: 1}}
	many := []Cycle{{AmplitudeK: 1, Count: 10}}
	if cm.Damage(many) >= cm.Damage(big) {
		t.Fatalf("many small cycles should damage less: %v vs %v",
			cm.Damage(many), cm.Damage(big))
	}
}

func TestArrhenius(t *testing.T) {
	ar := DefaultArrhenius()
	if f := ar.AccelerationFactor(55, 55); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self acceleration = %v", f)
	}
	// The paper's rule of thumb: ~10-15 K hotter halves the lifetime —
	// the acceleration factor over +12 K near 60 °C should be ≈ 2.
	f := ar.AccelerationFactor(72, 60)
	if f < 1.7 || f < 1 || f > 3.2 {
		t.Fatalf("acceleration over +12 K = %v, expected ≈2", f)
	}
	if ar.MeanAcceleration(nil, 60) != 0 {
		t.Fatal("empty trace should yield 0")
	}
	m := ar.MeanAcceleration([]float64{60, 60, 60}, 60)
	if math.Abs(m-1) > 1e-12 {
		t.Fatalf("mean acceleration at reference = %v", m)
	}
}

func TestAnalyze(t *testing.T) {
	series := []float64{55, 65, 55, 65, 55}
	rep, err := Analyze(series, 2.0, 35, DefaultCoffinManson(), DefaultArrhenius())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakC != 65 {
		t.Fatalf("PeakC = %v", rep.PeakC)
	}
	if math.Abs(rep.CyclesPerSecond-1) > 1e-9 { // 2 cycles per 2 s
		t.Fatalf("CyclesPerSecond = %v", rep.CyclesPerSecond)
	}
	if math.Abs(rep.MeanAmplitudeK-5) > 1e-9 {
		t.Fatalf("MeanAmplitudeK = %v", rep.MeanAmplitudeK)
	}
	if rep.MaxAmplitudeK != 5 || rep.FatigueRate <= 0 || rep.EMAcceleration <= 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := Analyze([]float64{1}, 1, 35, DefaultCoffinManson(), DefaultArrhenius()); err == nil {
		t.Fatal("short series must error")
	}
	if _, err := Analyze(series, 0, 35, DefaultCoffinManson(), DefaultArrhenius()); err == nil {
		t.Fatal("zero period must error")
	}
}
