// Package reliability quantifies the wear-out implications of thermal
// schedules. The paper motivates thermal management with lifetime ("every
// 10–15 °C temperature increment could result in 50% reduction in the
// device's lifespan") but does not analyze the one obvious cost of its
// own proposal: frequency oscillation induces *thermal cycling*, and
// cycling fatigue (solder joints, metal lines) follows a Coffin–Manson
// law in the cycle amplitude. This package provides:
//
//   - rainflow cycle counting over a temperature trace (ASTM E1049-style
//     three-point algorithm), the standard way to decompose an irregular
//     load history into closed cycles;
//   - a Coffin–Manson damage model mapping counted cycles to a relative
//     damage rate;
//   - an Arrhenius-style electromigration acceleration factor for the
//     sustained temperature component.
//
// The companion experiment shows the paper's implicit defense: as the
// oscillation count m grows, the per-cycle amplitude shrinks faster than
// the cycle count grows (for Coffin–Manson exponents q > 1), so higher m
// is *better* for cycling fatigue, not worse.
package reliability

import (
	"fmt"
	"math"
	"sort"
)

// Cycle is one closed thermal cycle extracted by rainflow counting.
type Cycle struct {
	AmplitudeK float64 // half the peak-to-valley range, in kelvins
	MeanC      float64 // cycle mean temperature, absolute °C
	Count      float64 // 1 for full cycles, 0.5 for residual half cycles
}

// Rainflow extracts cycles from a temperature series (absolute °C) using
// the ASTM E1049 three-point rainflow algorithm: ranges enclosing the
// history's starting point count as half cycles, interior closed ranges
// as full cycles, and the unresolved residual as half cycles.
func Rainflow(series []float64) []Cycle {
	peaks := reversals(series)
	if len(peaks) < 2 {
		return nil
	}
	var cycles []Cycle
	emit := func(a, b, count float64) {
		amp := math.Abs(a-b) / 2
		if amp == 0 {
			return
		}
		cycles = append(cycles, Cycle{
			AmplitudeK: amp,
			MeanC:      (a + b) / 2,
			Count:      count,
		})
	}
	var stack []float64
	for _, p := range peaks {
		stack = append(stack, p)
		for {
			n := len(stack)
			if n < 3 {
				break
			}
			x := math.Abs(stack[n-1] - stack[n-2])
			y := math.Abs(stack[n-2] - stack[n-3])
			if x < y {
				break
			}
			if n == 3 {
				// Range Y contains the starting point: half cycle, and
				// the start is consumed.
				emit(stack[0], stack[1], 0.5)
				stack = stack[1:]
			} else {
				emit(stack[n-3], stack[n-2], 1)
				stack = append(stack[:n-3], stack[n-1])
			}
		}
	}
	for i := 0; i+1 < len(stack); i++ {
		emit(stack[i], stack[i+1], 0.5)
	}
	return cycles
}

// RainflowPeriodic counts cycles of one period of a PERIODIC series
// (e.g. a stable-status temperature trace). The series is rotated to
// start at its global maximum and closed back onto it, which makes every
// extracted cycle a full cycle — the standard treatment for repeating
// load histories.
func RainflowPeriodic(series []float64) []Cycle {
	if len(series) < 2 {
		return nil
	}
	argmax := 0
	for i, v := range series {
		if v > series[argmax] {
			argmax = i
		}
	}
	rotated := make([]float64, 0, len(series)+1)
	rotated = append(rotated, series[argmax:]...)
	rotated = append(rotated, series[:argmax]...)
	rotated = append(rotated, series[argmax])
	// Starting and ending at the global maximum, the residual reduces to
	// the max→min→max sweep, whose two half-cycles sum to the one full
	// deep cycle of the period — so the plain count is already correct.
	return Rainflow(rotated)
}

// reversals reduces a series to its alternating local extrema (including
// the endpoints).
func reversals(series []float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	out := []float64{series[0]}
	for i := 1; i+1 < len(series); i++ {
		a, b, c := series[i-1], series[i], series[i+1]
		if (b > a && b >= c) || (b < a && b <= c) {
			if b != out[len(out)-1] {
				out = append(out, b)
			}
		}
	}
	if last := series[len(series)-1]; last != out[len(out)-1] {
		out = append(out, last)
	}
	return out
}

// CoffinManson parameterizes cycling fatigue: cycles to failure at
// amplitude ΔT is Nf = C0 · ΔT^(−Q). Only relative damage matters here,
// so C0 is normalized away.
type CoffinManson struct {
	// Q is the fatigue exponent; 2–2.5 is typical for solder fatigue.
	Q float64
	// MinAmplitudeK ignores micro-cycles below this amplitude (sub-kelvin
	// ripple does not propagate cracks).
	MinAmplitudeK float64
}

// DefaultCoffinManson returns Q = 2.35 with a 0.5 K floor.
func DefaultCoffinManson() CoffinManson {
	return CoffinManson{Q: 2.35, MinAmplitudeK: 0.5}
}

// Damage returns the relative fatigue damage of the counted cycles:
// Σ count_i · (2·amplitude_i)^Q. Divide by the trace duration for a rate.
func (cm CoffinManson) Damage(cycles []Cycle) float64 {
	var d float64
	for _, c := range cycles {
		if c.AmplitudeK < cm.MinAmplitudeK {
			continue
		}
		d += c.Count * math.Pow(2*c.AmplitudeK, cm.Q)
	}
	return d
}

// Arrhenius parameterizes sustained-temperature wear (electromigration,
// TDDB): the acceleration factor between two temperatures is
// exp(Ea/k · (1/T1 − 1/T2)) with absolute temperatures in kelvin.
type Arrhenius struct {
	// ActivationEV is the activation energy in electron-volts
	// (electromigration ≈ 0.7 eV).
	ActivationEV float64
}

// DefaultArrhenius returns the electromigration default, Ea = 0.7 eV.
func DefaultArrhenius() Arrhenius { return Arrhenius{ActivationEV: 0.7} }

// boltzmannEVPerK is the Boltzmann constant in eV/K.
const boltzmannEVPerK = 8.617333262e-5

// AccelerationFactor returns how much faster wear accrues at tempC than
// at refC (both absolute °C).
func (a Arrhenius) AccelerationFactor(tempC, refC float64) float64 {
	t := tempC + 273.15
	r := refC + 273.15
	return math.Exp(a.ActivationEV / boltzmannEVPerK * (1/r - 1/t))
}

// MeanAcceleration integrates the acceleration factor over a trace
// relative to refC (time-weighted mean over equally spaced samples).
func (a Arrhenius) MeanAcceleration(series []float64, refC float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var s float64
	for _, t := range series {
		s += a.AccelerationFactor(t, refC)
	}
	return s / float64(len(series))
}

// Report summarizes the reliability profile of one steady periodic
// schedule from a per-period stable-status temperature trace.
type Report struct {
	CyclesPerSecond float64 // rainflow cycles per second (count-weighted)
	MeanAmplitudeK  float64 // count-weighted mean cycle amplitude
	MaxAmplitudeK   float64
	FatigueRate     float64 // Coffin–Manson damage per second (relative)
	EMAcceleration  float64 // Arrhenius mean acceleration vs reference
	PeakC           float64
}

// Analyze builds a Report from one stable-status period of a core's
// temperature series (absolute °C), sampled uniformly over periodS
// seconds. refC anchors the Arrhenius acceleration (e.g. the ambient or a
// datasheet rating).
func Analyze(series []float64, periodS, refC float64, cm CoffinManson, ar Arrhenius) (*Report, error) {
	if len(series) < 2 || periodS <= 0 {
		return nil, fmt.Errorf("reliability: need ≥2 samples over a positive period")
	}
	cycles := Rainflow(series)
	var count, ampSum, maxAmp float64
	for _, c := range cycles {
		if c.AmplitudeK < cm.MinAmplitudeK {
			continue
		}
		count += c.Count
		ampSum += c.Count * c.AmplitudeK
		if c.AmplitudeK > maxAmp {
			maxAmp = c.AmplitudeK
		}
	}
	mean := 0.0
	if count > 0 {
		mean = ampSum / count
	}
	peak := series[0]
	for _, t := range series {
		if t > peak {
			peak = t
		}
	}
	return &Report{
		CyclesPerSecond: count / periodS,
		MeanAmplitudeK:  mean,
		MaxAmplitudeK:   maxAmp,
		FatigueRate:     cm.Damage(cycles) / periodS,
		EMAcceleration:  ar.MeanAcceleration(series, refC),
		PeakC:           peak,
	}, nil
}

// SortByAmplitude orders cycles by descending amplitude (for reporting).
func SortByAmplitude(cycles []Cycle) {
	sort.Slice(cycles, func(i, j int) bool {
		return cycles[i].AmplitudeK > cycles[j].AmplitudeK
	})
}
