// Package verify is the independent plan-verification oracle: a slow,
// obviously-correct re-derivation of everything the fast evaluation
// engine claims about a plan. It shares no caches, no eigendecomposition,
// and no Theorem-1 shortcut with internal/sim — every operator is built
// from the dense system matrices with the Padé matrix exponential, the
// stable orbit is solved as the fixed point of the full period map, the
// peak is confirmed by an independent fixed-step RK4 integration, and the
// paper's structural invariants (Definition 1 step-up ordering, Theorem 1
// peak placement, work preservation across the m-split, the overhead
// bound m ≤ M) are audited symbolically on the emitted timeline.
//
// The oracle is deliberately O(samples · dim³) per plan — orders of
// magnitude slower than sim.Engine — and is meant for differential
// sweeps (cmd/thermosc-verify), sampled post-solve audits (the server's
// verify_pass/verify_fail counters), and CI fault-injection gates, not
// for the solver hot path.
package verify

import (
	"fmt"
	"math"
	"strings"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// Params are the claims a plan makes, to be checked against the oracle's
// own derivation. Method gates the structural invariants: the two-mode
// checks (step-up, work recovery, overhead bound) only apply to the
// solvers that emit two-mode timelines; an empty Method limits the audit
// to the generic thermal invariants.
type Params struct {
	Method string // "AO", "PCO", "EXS", "LNS", "Ideal" (case-insensitive); "" = generic
	// M is the claimed oscillation count; the plan schedule is one cycle,
	// so its period must equal BasePeriod/M.
	M int
	// TmaxRise is the peak threshold as a rise above ambient (K).
	TmaxRise float64
	// BasePeriod is the m=1 period t_p in seconds; 0 skips the m-split
	// and overhead-bound checks.
	BasePeriod float64
	Overhead   power.TransitionOverhead
	PeakRise   float64 // claimed stable-status peak rise (K)
	Throughput float64 // claimed chip-wide useful throughput (eq. (5))
	Feasible   bool    // claimed feasibility verdict
}

// Options are the oracle tolerances. The defaults are documented in
// docs/VERIFY.md; zero values select them.
type Options struct {
	// Samples is the per-interval dense-sampling resolution used for the
	// differential against the claimed peak. Default 24 — the solvers'
	// PeakSamples default, so the comparison isolates arithmetic (Padé
	// exponential vs eigenbasis), not grid placement.
	Samples int
	// FineSamples is the denser grid used for the Tmax and Theorem-1
	// audits (default 96).
	FineSamples int
	// RelTol bounds |oracle peak − claimed peak| relative to the claimed
	// rise (default 1e-6).
	RelTol float64
	// PeakTolK is the absolute slack (K) allowed on the Tmax audit,
	// absorbing feasTol and the crest the solver's coarser grid can miss
	// between samples (default 5e-3 K).
	PeakTolK float64
	// Theorem1TolK bounds the dense peak's excess over the period-end
	// value when every core strictly steps up (default 1e-6 K);
	// ConstCoreTolK applies instead when some core holds a constant mode
	// (the documented post-wrap overshoot, default 0.05 K).
	Theorem1TolK  float64
	ConstCoreTolK float64
	// WorkRelTol bounds the recovered-vs-claimed throughput disagreement
	// (default 1e-9 relative).
	WorkRelTol float64
	// PeriodRelTol bounds |m·tc − t_p| relative to t_p (default 1e-9).
	PeriodRelTol float64
	// RK4TolK bounds the fixed-step RK4 cross-check against the expm
	// dense peak and the orbit's periodicity residual (default 1e-3 K).
	RK4TolK float64
	// MaxRK4Steps caps the RK4 step count per period (default 1<<20).
	MaxRK4Steps int
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 24
	}
	if o.FineSamples == 0 {
		o.FineSamples = 96
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.PeakTolK == 0 {
		o.PeakTolK = 5e-3
	}
	if o.Theorem1TolK == 0 {
		o.Theorem1TolK = 1e-6
	}
	if o.ConstCoreTolK == 0 {
		o.ConstCoreTolK = 0.05
	}
	if o.WorkRelTol == 0 {
		o.WorkRelTol = 1e-9
	}
	if o.PeriodRelTol == 0 {
		o.PeriodRelTol = 1e-9
	}
	if o.RK4TolK == 0 {
		o.RK4TolK = 1e-3
	}
	if o.MaxRK4Steps == 0 {
		o.MaxRK4Steps = 1 << 20
	}
	return o
}

// Violation is one failed invariant.
type Violation struct {
	Invariant string // "tmax", "step-up", "theorem-1", "work", "m-split", "m-bound", "peak-mismatch", "structure", "feasible-flag", "oracle"
	Detail    string
}

// Report is the oracle's verdict on one plan.
type Report struct {
	Method string
	M      int
	// PeakEmitRise is the stable dense peak of the bare emitted schedule.
	PeakEmitRise float64
	// PeakExecRise is the stable dense peak of the executed timeline
	// (emitted schedule + τ-long high-voltage stall windows) on the
	// solver-matching grid — the value compared against the claim.
	PeakExecRise float64
	// PeakFineRise is the same peak on the FineSamples grid (Tmax audit).
	PeakFineRise float64
	// PeakEndRise is the stable rise at the period boundary — Theorem 1's
	// peak for step-up schedules.
	PeakEndRise float64
	// RK4PeakRise is the fixed-step RK4 peak over one stable period.
	RK4PeakRise float64
	RK4Steps    int
	// ThroughputRecovered is the useful throughput reconstructed from the
	// emitted interval lengths (inverting the 2δ work-preservation pad).
	ThroughputRecovered float64
	Violations          []Violation
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) addf(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// String renders the divergence report (docs/VERIFY.md explains how to
// read one).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify %s m=%d: peak exec=%.9g fine=%.9g end=%.9g rk4=%.9g emit=%.9g thr=%.9g",
		r.Method, r.M, r.PeakExecRise, r.PeakFineRise, r.PeakEndRise, r.RK4PeakRise, r.PeakEmitRise, r.ThroughputRecovered)
	if r.OK() {
		sb.WriteString(" OK")
		return sb.String()
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "\n  FAIL [%s] %s", v.Invariant, v.Detail)
	}
	return sb.String()
}

// twoModeMethods are the solvers whose plans must be two-mode step-up
// timelines with work-preserving overhead padding. PCO timelines are
// two-mode but phase-rotated, so the step-up check is waived for it.
func twoModeMethod(m string) (known, stepUp bool) {
	switch strings.ToUpper(m) {
	case "AO", "EXS", "LNS", "IDEAL":
		return true, true
	case "PCO":
		return true, false
	default:
		return false, false
	}
}

// Check audits sched against the claims in pr from first principles and
// returns the full report. An error means the oracle itself could not run
// (nil model, unsolvable orbit); a plan failing its invariants is NOT an
// error — it is a report with violations.
func Check(md *thermal.Model, sched *schedule.Schedule, pr Params, opt Options) (*Report, error) {
	if md == nil || sched == nil {
		return nil, fmt.Errorf("verify: nil model or schedule")
	}
	if sched.NumCores() != md.NumCores() {
		return nil, fmt.Errorf("verify: schedule has %d cores, model %d", sched.NumCores(), md.NumCores())
	}
	opt = opt.withDefaults()
	r := &Report{Method: pr.Method, M: pr.M}
	known, wantStepUp := twoModeMethod(pr.Method)

	orc, err := newOracle(md)
	if err != nil {
		return nil, err
	}

	// Executed timeline: the emitted plan plus the τ-long high-voltage
	// stall each high→low transition produces. The solvers certify this
	// view (see solver.cycleThermal); structural failures here mean the
	// plan is not a recognizable two-mode timeline.
	exec := sched
	if known && pr.Overhead.Tau > 0 {
		ev, sErr := ExecView(sched, pr.Overhead)
		if sErr != nil {
			r.addf("structure", "executed-view reconstruction: %v", sErr)
		} else {
			exec = ev
		}
	}

	// Independent stable orbit + dense peaks of the executed timeline.
	ob, err := orc.solveOrbit(exec)
	if err != nil {
		return nil, err
	}
	r.PeakEndRise, _ = mat.VecMax(md.CoreTemps(ob.start))
	r.PeakExecRise, err = orc.densePeak(ob, opt.Samples, r)
	if err != nil {
		return nil, err
	}
	r.PeakFineRise, err = orc.densePeak(ob, opt.FineSamples, nil)
	if err != nil {
		return nil, err
	}

	// The bare emitted schedule's peak, for the report (the executed view
	// is the certified one; the emit peak shows what the pad costs).
	if exec != sched {
		obEmit, err := orc.solveOrbit(sched)
		if err != nil {
			return nil, err
		}
		r.PeakEmitRise, err = orc.densePeak(obEmit, opt.Samples, nil)
		if err != nil {
			return nil, err
		}
	} else {
		r.PeakEmitRise = r.PeakExecRise
	}

	// RK4 cross-check: integrate the stable orbit with a method that
	// shares nothing with the closed-form path, and demand the same peak
	// and a closed orbit.
	rk4Peak, endResid, steps := orc.rk4Peak(ob, opt.MaxRK4Steps)
	r.RK4PeakRise, r.RK4Steps = rk4Peak, steps
	if d := math.Abs(rk4Peak - r.PeakFineRise); d > opt.RK4TolK {
		r.addf("oracle", "RK4 peak %.9g disagrees with expm peak %.9g by %.3g K (> %.3g)", rk4Peak, r.PeakFineRise, d, opt.RK4TolK)
	}
	if endResid > opt.RK4TolK {
		r.addf("oracle", "RK4 orbit not closed: periodicity residual %.3g K (> %.3g)", endResid, opt.RK4TolK)
	}

	// Invariant: stable peak respects Tmax whenever the plan claims
	// feasibility — and an infeasible verdict on a comfortably-cool plan
	// is equally wrong.
	if pr.Feasible && r.PeakFineRise > pr.TmaxRise+opt.PeakTolK {
		r.addf("tmax", "claimed feasible but stable peak rise %.6f K exceeds Tmax rise %.6f K by %.3g",
			r.PeakFineRise, pr.TmaxRise, r.PeakFineRise-pr.TmaxRise)
	}
	if !pr.Feasible && r.PeakFineRise < pr.TmaxRise-opt.ConstCoreTolK {
		r.addf("feasible-flag", "claimed infeasible but stable peak rise %.6f K sits %.3g K under Tmax rise %.6f K",
			r.PeakFineRise, pr.TmaxRise-r.PeakFineRise, pr.TmaxRise)
	}

	// Invariant: the claimed peak matches the oracle's (the differential
	// that catches engine arithmetic/caching bugs).
	if pr.PeakRise > 0 {
		rel := math.Abs(r.PeakExecRise-pr.PeakRise) / math.Max(1, math.Abs(pr.PeakRise))
		if rel > opt.RelTol {
			r.addf("peak-mismatch", "claimed peak rise %.12g vs oracle %.12g (rel %.3g > %.3g)",
				pr.PeakRise, r.PeakExecRise, rel, opt.RelTol)
		}
	}

	// Invariant: Definition 1 step-up ordering on the emitted timeline.
	if wantStepUp && !sched.IsStepUp() {
		r.addf("step-up", "emitted schedule violates the step-up ordering (Definition 1): %v", sched)
	}

	// Invariant: Theorem 1 — for a step-up executed timeline the stable
	// peak occurs at the period boundary. Constant-mode cores are allowed
	// the documented post-wrap overshoot.
	if exec.IsStepUp() {
		tol := opt.Theorem1TolK
		for i := 0; i < exec.NumCores(); i++ {
			if len(exec.CoreSegments(i)) < 2 {
				tol = opt.ConstCoreTolK
				break
			}
		}
		if d := r.PeakFineRise - r.PeakEndRise; d > tol {
			r.addf("theorem-1", "dense peak %.9g exceeds the period-end value %.9g by %.3g K (> %.3g)",
				r.PeakFineRise, r.PeakEndRise, d, tol)
		}
	}

	// Structural invariants of the two-mode decomposition: work
	// preservation, the m-split, and the overhead bound.
	if known {
		orc.checkTwoMode(sched, pr, opt, r)
	}
	return r, nil
}

// checkTwoMode recovers each core's high-mode ratio from the emitted
// interval lengths (inverting the 2δ pad of eq. (11) + §V), then audits
// work preservation, the m-split period identity, and m ≤ M.
func (o *oracle) checkTwoMode(sched *schedule.Schedule, pr Params, opt Options, r *Report) {
	tc := sched.Period()
	n := sched.NumCores()
	var speedSum float64
	minM := math.MaxInt32
	structural := false
	for i := 0; i < n; i++ {
		segs := sched.CoreSegments(i)
		lo, hi, nv := voltageSpan(segs)
		switch {
		case nv == 1:
			speedSum += power.NewMode(hi).Speed()
			continue
		case nv > 2:
			r.addf("structure", "core %d has %d distinct voltages; two-mode plans carry at most 2", i, nv)
			structural = true
			continue
		}
		var lH float64
		for _, s := range segs {
			if s.Mode.Voltage == hi {
				lH += s.Length
			}
		}
		rh := lH / tc
		if pr.Overhead.Tau > 0 {
			rh = (lH - 2*pr.Overhead.Delta(hi, lo)) / tc
		}
		if rh < -1e-9 || rh > 1+1e-9 {
			r.addf("structure", "core %d recovered high-ratio %.6g outside [0,1] (lH=%.6g tc=%.6g)", i, rh, lH, tc)
			structural = true
			continue
		}
		rh = math.Min(1, math.Max(0, rh))
		speedSum += (1-rh)*power.NewMode(lo).Speed() + rh*power.NewMode(hi).Speed()
		if pr.Overhead.Tau > 0 && pr.BasePeriod > 0 && hi > lo {
			if mi := pr.Overhead.MaxM((1-rh)*pr.BasePeriod, hi, lo); mi < minM {
				minM = mi
			}
		}
	}
	r.ThroughputRecovered = speedSum / float64(n)

	if !structural && pr.Throughput > 0 {
		rel := math.Abs(r.ThroughputRecovered-pr.Throughput) / math.Max(1e-12, pr.Throughput)
		if rel > opt.WorkRelTol {
			r.addf("work", "claimed throughput %.12g vs recovered %.12g (rel %.3g > %.3g): the m-split or the 2δ pad lost work",
				pr.Throughput, r.ThroughputRecovered, rel, opt.WorkRelTol)
		}
	}
	if pr.BasePeriod > 0 && pr.M >= 1 {
		if d := math.Abs(float64(pr.M)*tc - pr.BasePeriod); d > opt.PeriodRelTol*pr.BasePeriod {
			r.addf("m-split", "m·tc = %d·%.9g = %.9g != base period %.9g (|Δ| %.3g)",
				pr.M, tc, float64(pr.M)*tc, pr.BasePeriod, d)
		}
	}
	if pr.M > minM {
		r.addf("m-bound", "m=%d exceeds the overhead bound M = min_i ⌊t_L/(δ_i+τ)⌋ = %d", pr.M, minM)
	}
	if pr.M < 1 {
		r.addf("m-bound", "m=%d below 1", pr.M)
	}
}

// voltageSpan returns the lowest and highest voltage in segs and the
// number of distinct voltages.
func voltageSpan(segs []schedule.Segment) (lo, hi float64, distinct int) {
	seen := make(map[float64]bool, 2)
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range segs {
		if !seen[s.Mode.Voltage] {
			seen[s.Mode.Voltage] = true
			distinct++
		}
		lo = math.Min(lo, s.Mode.Voltage)
		hi = math.Max(hi, s.Mode.Voltage)
	}
	return lo, hi, distinct
}

// ExecView returns the executed timeline of an emitted two-mode plan:
// switching a core from its high to its low voltage stalls the first τ of
// the low interval at the high voltage while the rail settles (the
// solver's cycleThermal view), so that τ-window moves across each
// oscillating core's cyclic high→low boundary. Constant cores and τ = 0
// leave the schedule unchanged. The result equals the solver's thermal
// view up to a global time-rotation, under which stable-status peaks are
// invariant.
func ExecView(sched *schedule.Schedule, o power.TransitionOverhead) (*schedule.Schedule, error) {
	if o.Tau <= 0 {
		return sched, nil
	}
	cores := make([][]schedule.Segment, sched.NumCores())
	for i := 0; i < sched.NumCores(); i++ {
		segs := sched.CoreSegments(i)
		_, hi, nv := voltageSpan(segs)
		if nv != 2 {
			if nv > 2 {
				return nil, fmt.Errorf("verify: core %d has %d distinct voltages", i, nv)
			}
			cores[i] = segs
			continue
		}
		// Locate the unique cyclic high→low boundary of the two-mode
		// cycle (possibly phase-rotated, so the high run may wrap).
		idx := -1
		for j := range segs {
			next := (j + 1) % len(segs)
			if segs[j].Mode.Voltage == hi && segs[next].Mode.Voltage != hi {
				if idx >= 0 {
					return nil, fmt.Errorf("verify: core %d oscillates more than once per cycle", i)
				}
				idx = j
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("verify: core %d has no high→low boundary", i)
		}
		next := (idx + 1) % len(segs)
		if segs[next].Length <= o.Tau {
			return nil, fmt.Errorf("verify: core %d low interval %.3g s cannot absorb the τ=%.3g s stall", i, segs[next].Length, o.Tau)
		}
		segs[idx].Length += o.Tau
		segs[next].Length -= o.Tau
		cores[i] = segs
	}
	return schedule.New(cores)
}
