package verify

import (
	"fmt"
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// oracle holds the dense first-principles operators: the reconstructed
// system matrix A = C⁻¹(βE−G) and its LU factorization (for per-mode
// steady states via the exact linear solve −A·T∞ = B, sidestepping both
// the model's Cholesky-based hFull path and the eigenbasis).
type oracle struct {
	md  *thermal.Model
	a   *mat.Dense
	alu *mat.LU
}

func newOracle(md *thermal.Model) (*oracle, error) {
	a := md.A()
	alu, err := mat.Factorize(a)
	if err != nil {
		return nil, fmt.Errorf("verify: system matrix singular: %w", err)
	}
	return &oracle{md: md, a: a, alu: alu}, nil
}

// tinf solves T∞(modes) = −A⁻¹·B directly.
func (o *oracle) tinf(modes []power.Mode) ([]float64, error) {
	b := o.md.BVec(modes)
	nb := make([]float64, len(b))
	for i := range b {
		nb[i] = -b[i]
	}
	return o.alu.SolveVec(nb)
}

// orbit is the oracle's stable periodic solution of one schedule: the
// merged intervals, their steady targets and full-length Padé
// propagators, and the start-of-period fixed point.
type orbit struct {
	ivs   []schedule.Interval
	tinfs [][]float64
	phis  []*mat.Dense
	start []float64
}

// solveOrbit derives the thermally stable status from first principles:
// per-interval propagators Φ_q = e^{A·l_q} by the Padé scaling-and-
// squaring exponential, steady targets by exact linear solves, and the
// stable start as the fixed point x* of the affine period map,
// (I − Φ_z···Φ_1)·x* = x(t_p | x(0)=0).
func (o *oracle) solveOrbit(sched *schedule.Schedule) (*orbit, error) {
	ivs := sched.Intervals()
	dim := o.md.NumNodes()
	ob := &orbit{ivs: ivs, tinfs: make([][]float64, len(ivs)), phis: make([]*mat.Dense, len(ivs))}
	x := make([]float64, dim) // end-of-period state from the all-ambient start
	mtot := mat.Eye(dim)
	for q, iv := range ivs {
		tinf, err := o.tinf(iv.Modes)
		if err != nil {
			return nil, fmt.Errorf("verify: steady state of interval %d: %w", q, err)
		}
		phi, err := mat.ExpmScaled(o.a, iv.Length)
		if err != nil {
			return nil, fmt.Errorf("verify: propagator of interval %d: %w", q, err)
		}
		ob.tinfs[q], ob.phis[q] = tinf, phi
		x = affineStep(phi, x, tinf)
		mtot = phi.Mul(mtot)
	}
	imk := mat.Eye(dim).SubInPlace(mtot)
	lu, err := mat.Factorize(imk)
	if err != nil {
		return nil, fmt.Errorf("verify: period map has no unique fixed point: %w", err)
	}
	start, err := lu.SolveVec(x)
	if err != nil {
		return nil, err
	}
	ob.start = start
	return ob, nil
}

// affineStep advances x by one interval: x' = T∞ + Φ·(x − T∞).
func affineStep(phi *mat.Dense, x, tinf []float64) []float64 {
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - tinf[i]
	}
	out := phi.MulVec(d)
	for i := range out {
		out[i] += tinf[i]
	}
	return out
}

// densePeak samples every interval of the stable orbit at `samples`
// uniform sub-steps (each its own Padé sub-propagator) plus the exact
// interval boundaries, and returns the hottest core temperature rise.
// When r is non-nil the orbit's periodicity residual is self-checked into
// it. The sampling offsets match sim.Stable.PeakDense so the differential
// against the fast engine isolates arithmetic, not grid placement.
func (o *oracle) densePeak(ob *orbit, samples int, r *Report) (float64, error) {
	if samples < 1 {
		samples = 1
	}
	peak, _ := mat.VecMax(o.md.CoreTemps(ob.start))
	cur := ob.start
	for q, iv := range ob.ivs {
		sub, err := mat.ExpmScaled(o.a, iv.Length/float64(samples))
		if err != nil {
			return 0, fmt.Errorf("verify: sub-propagator of interval %d: %w", q, err)
		}
		x := cur
		for k := 0; k < samples; k++ {
			x = affineStep(sub, x, ob.tinfs[q])
			if p, _ := mat.VecMax(o.md.CoreTemps(x)); p > peak {
				peak = p
			}
		}
		// Advance by the exact full-length propagator so sub-step
		// round-off does not accumulate across intervals.
		cur = affineStep(ob.phis[q], cur, ob.tinfs[q])
		if p, _ := mat.VecMax(o.md.CoreTemps(cur)); p > peak {
			peak = p
		}
	}
	if r != nil {
		var resid float64
		for i := range cur {
			resid = math.Max(resid, math.Abs(cur[i]-ob.start[i]))
		}
		if resid > 1e-7*math.Max(1, peak) {
			r.addf("oracle", "expm orbit not closed: periodicity residual %.3g K", resid)
		}
	}
	return peak, nil
}

// rk4Peak integrates one period of the stable orbit with a classic
// fixed-step fourth-order Runge–Kutta scheme on ẋ = A·x + B_q — a method
// sharing nothing with the closed-form exponential path — and returns the
// sampled peak rise, the periodicity residual ‖x(t_p) − x(0)‖∞, and the
// step count. The step size targets h·‖A‖∞ ≤ 1/4 (well inside the RK4
// stability region for this dissipative system) and is widened only if
// the per-period budget would otherwise be exceeded.
func (o *oracle) rk4Peak(ob *orbit, maxSteps int) (peak, endResid float64, steps int) {
	h := 0.25 / math.Max(o.a.NormInf(), 1e-300)
	var total int
	for _, iv := range ob.ivs {
		n := int(math.Ceil(iv.Length / h))
		if n < 1 {
			n = 1
		}
		total += n
	}
	if total > maxSteps {
		h *= float64(total) / float64(maxSteps)
	}
	dim := len(ob.start)
	x := mat.VecClone(ob.start)
	peak, _ = mat.VecMax(o.md.CoreTemps(x))
	k2buf := make([]float64, dim)
	deriv := func(x, b []float64) []float64 {
		d := o.a.MulVec(x)
		for i := range d {
			d[i] += b[i]
		}
		return d
	}
	for _, iv := range ob.ivs {
		b := o.md.BVec(iv.Modes)
		n := int(math.Ceil(iv.Length / h))
		if n < 1 {
			n = 1
		}
		dt := iv.Length / float64(n)
		for s := 0; s < n; s++ {
			k1 := deriv(x, b)
			for i := range k2buf {
				k2buf[i] = x[i] + 0.5*dt*k1[i]
			}
			k2 := deriv(k2buf, b)
			for i := range k2buf {
				k2buf[i] = x[i] + 0.5*dt*k2[i]
			}
			k3 := deriv(k2buf, b)
			for i := range k2buf {
				k2buf[i] = x[i] + dt*k3[i]
			}
			k4 := deriv(k2buf, b)
			for i := range x {
				x[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			}
			if p, _ := mat.VecMax(o.md.CoreTemps(x)); p > peak {
				peak = p
			}
			steps++
		}
	}
	for i := range x {
		endResid = math.Max(endResid, math.Abs(x[i]-ob.start[i]))
	}
	return peak, endResid, steps
}
