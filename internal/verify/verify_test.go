package verify

import (
	"math"
	"strings"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/sim"
	"thermosc/internal/solver"
	"thermosc/internal/thermal"
)

func model(t testing.TB, rows, cols int) *thermal.Model {
	t.Helper()
	md, err := thermal.Default(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// The oracle's stable orbit and dense peak must agree with the fast
// engine's (eigenbasis) path to near machine precision on identical
// schedules — the two share no code beyond the model matrices.
func TestOracleMatchesSimStable(t *testing.T) {
	md := model(t, 2, 1)
	for name, sched := range map[string]*schedule.Schedule{
		"constant": schedule.Constant(20e-3, []power.Mode{power.NewMode(1.0), power.NewMode(1.1)}),
		"two-mode": schedule.Must([][]schedule.Segment{
			{{Length: 6e-3, Mode: power.NewMode(0.9)}, {Length: 14e-3, Mode: power.NewMode(1.2)}},
			{{Length: 12e-3, Mode: power.NewMode(0.8)}, {Length: 8e-3, Mode: power.NewMode(1.1)}},
		}),
		"off-core": schedule.Must([][]schedule.Segment{
			{{Length: 10e-3, Mode: power.ModeOff}, {Length: 10e-3, Mode: power.NewMode(1.0)}},
			{{Length: 20e-3, Mode: power.NewMode(1.2)}},
		}),
	} {
		orc, err := newOracle(md)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := orc.solveOrbit(sched)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := sim.NewStable(md, sched)
		if err != nil {
			t.Fatal(err)
		}
		fast := st.Start()
		for i := range fast {
			if d := math.Abs(fast[i] - ob.start[i]); d > 1e-8 {
				t.Errorf("%s: stable start node %d differs by %.3g (oracle %v, sim %v)", name, i, d, ob.start[i], fast[i])
			}
		}
		oraclePeak, err := orc.densePeak(ob, 24, nil)
		if err != nil {
			t.Fatal(err)
		}
		simPeak, _, _ := st.PeakDense(24)
		if d := math.Abs(oraclePeak - simPeak); d > 1e-8 {
			t.Errorf("%s: dense peak differs by %.3g (oracle %v, sim %v)", name, d, oraclePeak, simPeak)
		}
	}
}

// The RK4 cross-check must reproduce the expm peak and close the orbit.
func TestOracleRK4Agreement(t *testing.T) {
	md := model(t, 2, 1)
	sched := schedule.Must([][]schedule.Segment{
		{{Length: 4e-3, Mode: power.NewMode(0.8)}, {Length: 6e-3, Mode: power.NewMode(1.2)}},
		{{Length: 10e-3, Mode: power.NewMode(1.0)}},
	})
	orc, err := newOracle(md)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := orc.solveOrbit(sched)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := orc.densePeak(ob, 96, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak, resid, steps := orc.rk4Peak(ob, 1<<20)
	if steps < 1 {
		t.Fatal("RK4 took no steps")
	}
	if d := math.Abs(peak - exact); d > 1e-3 {
		t.Fatalf("RK4 peak %v vs expm %v (Δ %.3g)", peak, exact, d)
	}
	if resid > 1e-3 {
		t.Fatalf("RK4 periodicity residual %.3g", resid)
	}
}

// The RK4 step budget must widen the step size, not blow the budget.
func TestOracleRK4StepBudget(t *testing.T) {
	md := model(t, 1, 1)
	sched := schedule.Constant(20e-3, []power.Mode{power.NewMode(1.0)})
	orc, err := newOracle(md)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := orc.solveOrbit(sched)
	if err != nil {
		t.Fatal(err)
	}
	_, _, steps := orc.rk4Peak(ob, 64)
	if steps > 64+len(ob.ivs) {
		t.Fatalf("RK4 used %d steps with a budget of 64", steps)
	}
}

func aoPlanForVerify(t *testing.T) (solver.Problem, *solver.Result) {
	t.Helper()
	md := model(t, 2, 1)
	ls, err := power.PaperLevels(3)
	if err != nil {
		t.Fatal(err)
	}
	p := solver.Problem{Model: md, Levels: ls, TmaxC: 60, Overhead: power.DefaultOverhead()}
	res, err := solver.AO(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func paramsFor(p solver.Problem, res *solver.Result) Params {
	return Params{
		Method:     res.Name,
		M:          res.M,
		TmaxRise:   p.Model.Rise(p.TmaxC),
		BasePeriod: 20e-3,
		Overhead:   p.Overhead,
		PeakRise:   res.PeakRise,
		Throughput: res.Throughput,
		Feasible:   res.Feasible,
	}
}

// A genuine AO plan must pass every invariant.
func TestCheckPassesGenuineAOPlan(t *testing.T) {
	p, res := aoPlanForVerify(t)
	rep, err := Check(p.Model, res.Schedule, paramsFor(p, res), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("genuine AO plan flagged:\n%s", rep)
	}
	if rep.RK4Steps == 0 {
		t.Fatal("RK4 cross-check did not run")
	}
}

// Genuine EXS and PCO plans must pass too (constant and phase-rotated
// timelines exercise different ExecView branches).
func TestCheckPassesGenuineEXSAndPCO(t *testing.T) {
	md := model(t, 2, 1)
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	p := solver.Problem{Model: md, Levels: ls, TmaxC: 62, Overhead: power.DefaultOverhead()}
	for _, run := range []func(solver.Problem) (*solver.Result, error){solver.EXS, solver.PCO} {
		res, err := run(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule == nil {
			t.Fatal("no schedule to verify")
		}
		rep, err := Check(md, res.Schedule, paramsFor(p, res), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("genuine %s plan flagged:\n%s", res.Name, rep)
		}
	}
}

// Mutations of a verified plan must be flagged, each by the matching
// invariant.
func TestCheckFlagsMutations(t *testing.T) {
	p, res := aoPlanForVerify(t)
	pr := paramsFor(p, res)
	md := p.Model

	check := func(t *testing.T, sched *schedule.Schedule, pr Params, wantInvariant string) {
		t.Helper()
		rep, err := Check(md, sched, pr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatalf("mutation not flagged (wanted %q):\n%s", wantInvariant, rep)
		}
		for _, v := range rep.Violations {
			if v.Invariant == wantInvariant {
				return
			}
		}
		t.Fatalf("no %q violation in:\n%s", wantInvariant, rep)
	}

	t.Run("level swap breaks step-up", func(t *testing.T) {
		cores := make([][]schedule.Segment, res.Schedule.NumCores())
		swapped := false
		for i := range cores {
			segs := res.Schedule.CoreSegments(i)
			if !swapped && len(segs) == 2 {
				segs[0], segs[1] = segs[1], segs[0]
				swapped = true
			}
			cores[i] = segs
		}
		if !swapped {
			t.Skip("plan has no oscillating core")
		}
		check(t, schedule.Must(cores), pr, "step-up")
	})

	t.Run("m beyond the overhead bound", func(t *testing.T) {
		mut := pr
		mut.M = 1 << 20
		check(t, res.Schedule, mut, "m-bound")
	})

	t.Run("peak tampered", func(t *testing.T) {
		mut := pr
		mut.PeakRise += 1
		check(t, res.Schedule, mut, "peak-mismatch")
	})

	t.Run("throughput tampered", func(t *testing.T) {
		mut := pr
		mut.Throughput *= 1.05
		check(t, res.Schedule, mut, "work")
	})

	t.Run("interval stretched", func(t *testing.T) {
		cores := make([][]schedule.Segment, res.Schedule.NumCores())
		stretched := false
		for i := range cores {
			segs := res.Schedule.CoreSegments(i)
			if !stretched && len(segs) == 2 {
				segs[1].Length *= 1.25
				segs[0].Length = res.Schedule.Period() - segs[1].Length
				stretched = true
			}
			cores[i] = segs
		}
		if !stretched {
			t.Skip("plan has no oscillating core")
		}
		check(t, schedule.Must(cores), pr, "work")
	})

	t.Run("infeasible verdict on a cool plan", func(t *testing.T) {
		mut := pr
		mut.Feasible = false
		mut.TmaxRise += 10
		check(t, res.Schedule, mut, "feasible-flag")
	})

	t.Run("feasible verdict on a hot plan", func(t *testing.T) {
		mut := pr
		mut.Feasible = true
		mut.TmaxRise -= 10
		check(t, res.Schedule, mut, "tmax")
	})
}

// ExecView must move exactly τ across each oscillating core's high→low
// boundary — including on phase-rotated timelines — and reject timelines
// whose low run cannot absorb the stall.
func TestExecView(t *testing.T) {
	tau := power.TransitionOverhead{Tau: 5e-6}
	base := schedule.Must([][]schedule.Segment{
		{{Length: 6e-3, Mode: power.NewMode(0.9)}, {Length: 14e-3, Mode: power.NewMode(1.2)}},
		{{Length: 20e-3, Mode: power.NewMode(1.0)}},
	})
	ev, err := ExecView(base, tau)
	if err != nil {
		t.Fatal(err)
	}
	segs := ev.CoreSegments(0)
	if len(segs) != 2 || math.Abs(segs[0].Length-(6e-3-tau.Tau)) > 1e-15 || math.Abs(segs[1].Length-(14e-3+tau.Tau)) > 1e-15 {
		t.Fatalf("exec view segments %+v", segs)
	}
	if got := ev.CoreSegments(1); len(got) != 1 || got[0].Length != 20e-3 {
		t.Fatalf("constant core modified: %+v", got)
	}

	// A rotated core: the high run wraps, the unique boundary is interior.
	rot := base.Shift(0, 3e-3)
	ev2, err := ExecView(rot, tau)
	if err != nil {
		t.Fatal(err)
	}
	var lowTotal float64
	for _, s := range ev2.CoreSegments(0) {
		if s.Mode.Voltage == 0.9 {
			lowTotal += s.Length
		}
	}
	if math.Abs(lowTotal-(6e-3-tau.Tau)) > 1e-15 {
		t.Fatalf("rotated exec view low total %v", lowTotal)
	}

	// Low run shorter than τ: must refuse.
	tight := schedule.Must([][]schedule.Segment{
		{{Length: 2e-6, Mode: power.NewMode(0.9)}, {Length: 20e-3 - 2e-6, Mode: power.NewMode(1.2)}},
	})
	if _, err := ExecView(tight, tau); err == nil {
		t.Fatal("ExecView accepted a low run shorter than the stall")
	}

	// τ = 0 is the identity.
	same, err := ExecView(base, power.TransitionOverhead{})
	if err != nil || same != base {
		t.Fatalf("τ=0 should return the schedule unchanged (err %v)", err)
	}
}

// The report must render violations for humans.
func TestReportString(t *testing.T) {
	r := &Report{Method: "AO", M: 3}
	if !strings.Contains(r.String(), "OK") {
		t.Fatalf("clean report should say OK: %s", r)
	}
	r.addf("tmax", "boom")
	if s := r.String(); !strings.Contains(s, "FAIL [tmax] boom") {
		t.Fatalf("violation not rendered: %s", s)
	}
}
