package floorplan

import (
	"fmt"
	"math/rand"
)

// GenSpec describes one generated platform geometry: a rows×cols mesh,
// optionally stacked in identical die layers, optionally with per-core
// big.LITTLE power scales. It is pure geometry plus numbers — the thermal
// layer (thermal.BuildGen) turns a GenSpec into a calibrated model with a
// chip-size-scaled package.
type GenSpec struct {
	Name     string
	Rows     int
	Cols     int
	CoreEdge float64 // m; 0 means the 4 mm default
	Layers   int     // die layers; 0 or 1 is planar
	// Scales is the per-core power-scale vector (layer-major on stacks;
	// nil means homogeneous). Length Layers×Rows×Cols when non-nil.
	Scales []float64
}

// NumCores returns the total core count (all layers).
func (g GenSpec) NumCores() int {
	l := g.Layers
	if l < 1 {
		l = 1
	}
	return l * g.Rows * g.Cols
}

// Floorplan builds the per-layer floorplan of the spec.
func (g GenSpec) Floorplan() (*Floorplan, error) {
	edge := g.CoreEdge
	if edge == 0 {
		edge = 4e-3
	}
	return Grid(g.Rows, g.Cols, edge)
}

// Validate performs the structural checks shared by every consumer.
func (g GenSpec) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("floorplan: gen %q has %dx%d mesh", g.Name, g.Rows, g.Cols)
	}
	if g.Layers < 0 {
		return fmt.Errorf("floorplan: gen %q has %d layers", g.Name, g.Layers)
	}
	if g.Scales != nil && len(g.Scales) != g.NumCores() {
		return fmt.Errorf("floorplan: gen %q has %d scales for %d cores", g.Name, len(g.Scales), g.NumCores())
	}
	return nil
}

// Mesh returns a planar rows×cols mesh spec.
func Mesh(rows, cols int) GenSpec {
	return GenSpec{Name: fmt.Sprintf("mesh-%dx%d", rows, cols), Rows: rows, Cols: cols}
}

// Stacked3D returns a rows×cols mesh repeated in `layers` bonded die
// layers (layer-major core indices, layer 0 at the heat sink).
func Stacked3D(rows, cols, layers int) GenSpec {
	return GenSpec{
		Name: fmt.Sprintf("stack-%dx%dx%d", rows, cols, layers),
		Rows: rows, Cols: cols, Layers: layers,
	}
}

// BigLittle power-scale classes: big cores burn ~1.6× the reference
// power, LITTLE cores ~0.45× — the asymmetry ratio of contemporary
// big.LITTLE designs.
const (
	BigScale    = 1.6
	LittleScale = 0.45
)

// BigLittle returns a planar rows×cols mesh whose cores are split into
// big and LITTLE power classes by a seeded deterministic assignment
// (bigFrac of the cores are big, rounded down, at seeded-random mesh
// positions). The same seed always yields the same assignment.
func BigLittle(rows, cols int, bigFrac float64, seed int64) GenSpec {
	g := GenSpec{
		Name: fmt.Sprintf("biglittle-%dx%d-s%d", rows, cols, seed),
		Rows: rows, Cols: cols,
		Scales: bigLittleScales(rows*cols, bigFrac, seed),
	}
	return g
}

// BigLittleStacked is BigLittle on a 3D stack (layer-major scales).
func BigLittleStacked(rows, cols, layers int, bigFrac float64, seed int64) GenSpec {
	g := Stacked3D(rows, cols, layers)
	g.Name = fmt.Sprintf("biglittle-%dx%dx%d-s%d", rows, cols, layers, seed)
	g.Scales = bigLittleScales(layers*rows*cols, bigFrac, seed)
	return g
}

func bigLittleScales(n int, bigFrac float64, seed int64) []float64 {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = LittleScale
	}
	nBig := int(bigFrac * float64(n))
	// Clamp instead of panicking on out-of-range fractions (NaN yields 0):
	// every mix from all-LITTLE to all-big is a valid platform.
	if nBig < 0 {
		nBig = 0
	} else if nBig > n {
		nBig = n
	}
	rng := rand.New(rand.NewSource(seed))
	for _, idx := range rng.Perm(n)[:nBig] {
		scales[idx] = BigScale
	}
	return scales
}

// Catalog returns the pinned generated-platform suite the differential
// and scale tests sweep: planar meshes from the paper's sizes up to
// 16×16, 3D stacks, and big.LITTLE mixes, all deterministic. Entries are
// ordered small to large so tests can cut off by core count.
func Catalog() []GenSpec {
	return []GenSpec{
		Mesh(2, 1),
		Mesh(3, 3),
		BigLittle(4, 4, 0.25, 1),
		Stacked3D(3, 3, 2),
		Mesh(6, 6),
		Mesh(8, 8),
		BigLittle(8, 8, 0.5, 2),
		Stacked3D(8, 8, 2),
		Mesh(12, 12),
		Stacked3D(8, 8, 4),                // 256 cores
		Mesh(16, 16),                      // 256 cores
		BigLittle(16, 16, 0.5, 3),         // 256 cores, hetero
		BigLittleStacked(8, 8, 4, 0.5, 4), // 256 cores, stacked + hetero
	}
}
