package floorplan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseFLP drives the .flp parser with arbitrary text: it must never
// panic, and whenever it accepts an input, writing the result back and
// re-parsing must reproduce the same grid (idempotence).
func FuzzParseFLP(f *testing.F) {
	f.Add("core_0 4e-3 4e-3 0 0\n")
	f.Add("# comment\na 1e-3 1e-3 0 0\nb 1e-3 1e-3 1e-3 0\n")
	f.Add("a 1 1 0 0\nb 1 1 0 1\nc 1 1 1 0\nd 1 1 1 1\n")
	f.Add("x -1 2 0 0\n")
	f.Add("junk\n")
	f.Add("a NaN 1 0 0\n")
	f.Add("a 1e308 1e308 1e308 1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		fp, err := ParseFLP(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if fp.NumCores() <= 0 || fp.CoreEdge <= 0 {
			t.Fatalf("accepted a degenerate floorplan: %s", fp)
		}
		var buf bytes.Buffer
		if err := fp.WriteFLP(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ParseFLP(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.RowsN != fp.RowsN || back.ColsN != fp.ColsN {
			t.Fatalf("round trip changed shape: %s vs %s", back, fp)
		}
	})
}
