package floorplan

import (
	"math"
	"testing"
)

// FuzzGenSpec drives the generated-platform constructors with arbitrary
// geometry: degenerate meshes (1xN strips, zero or negative dimensions,
// single or absurd stack depths), zero-area cores, and out-of-range
// big.LITTLE fractions must never panic — Validate/Floorplan either
// reject them or produce a structurally consistent spec.
func FuzzGenSpec(f *testing.F) {
	f.Add(2, 1, 1, 4e-3, 0.5, int64(1))
	f.Add(1, 16, 1, 4e-3, 0.25, int64(2)) // 1xN strip
	f.Add(8, 8, 4, 4e-3, 0.5, int64(4))   // 256-core stacked hetero
	f.Add(16, 16, 1, 2e-3, 1.0, int64(3)) // all-big 256-core mesh
	f.Add(3, 3, 1, 0.0, 0.5, int64(5))    // zero edge → 4 mm default
	f.Add(2, 2, 0, 4e-3, 0.0, int64(6))   // layers 0 → planar
	f.Add(0, 4, 1, 4e-3, 0.5, int64(7))   // zero rows → reject
	f.Add(4, 4, -1, 4e-3, 0.5, int64(8))  // negative layers → reject
	f.Add(2, 2, 1, -1e-3, 0.5, int64(9))  // zero-area cores → reject
	f.Add(2, 2, 1, math.NaN(), 2.0, int64(10))
	f.Add(2, 2, 1, 4e-3, -3.5, int64(11)) // bigFrac < 0 → all LITTLE
	f.Add(1, 1, 20, 4e-3, 99.0, int64(12))

	f.Fuzz(func(t *testing.T, rows, cols, layers int, edge, bigFrac float64, seed int64) {
		if rows > 64 || cols > 64 || layers > 16 {
			t.Skip("beyond any supported platform size")
		}
		g := Stacked3D(rows, cols, layers)
		g.CoreEdge = edge
		n := g.NumCores()
		if n > 0 && n <= 4096 {
			g.Scales = bigLittleScales(n, bigFrac, seed)
			for _, s := range g.Scales {
				if s != BigScale && s != LittleScale {
					t.Fatalf("scale %v is neither big nor LITTLE", s)
				}
			}
		}
		if err := g.Validate(); err != nil {
			return // rejection is fine; panics are not
		}
		fp, err := g.Floorplan()
		if err != nil {
			return
		}
		if fp.NumCores() != rows*cols {
			t.Fatalf("per-layer floorplan has %d cores, want %d", fp.NumCores(), rows*cols)
		}
		if !(fp.CoreEdge > 0) {
			t.Fatalf("accepted zero-area cores: edge %v", fp.CoreEdge)
		}
	})
}
