package floorplan

import (
	"bytes"
	"strings"
	"testing"
)

func TestFLPRoundTrip(t *testing.T) {
	for _, cfg := range [][2]int{{1, 1}, {2, 1}, {3, 2}, {3, 3}} {
		f := MustGrid(cfg[0], cfg[1], 4e-3)
		var buf bytes.Buffer
		if err := f.WriteFLP(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseFLP(&buf)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if back.RowsN != f.RowsN || back.ColsN != f.ColsN || back.CoreEdge != f.CoreEdge {
			t.Fatalf("%v: round trip gave %s", cfg, back)
		}
	}
}

func TestFLPOutputFormat(t *testing.T) {
	f := MustGrid(2, 1, 4e-3)
	var buf bytes.Buffer
	if err := f.WriteFLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core_0") || !strings.Contains(out, "core_1") {
		t.Fatalf("missing unit names:\n%s", out)
	}
	// HotSpot y grows upward: row 0 (top) has the larger bottom-y.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var c0, c1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "core_0") {
			c0 = l
		}
		if strings.HasPrefix(l, "core_1") {
			c1 = l
		}
	}
	if !strings.Contains(c0, "4.000000e-03") || !strings.HasSuffix(strings.TrimSpace(c1), "0.000000e+00") {
		t.Fatalf("y coordinates wrong:\n%s\n%s", c0, c1)
	}
}

func TestParseFLPAcceptsCommentsAndOffsets(t *testing.T) {
	// A 2×2 grid offset from the origin, with comments and blank lines.
	in := `
# a hotspot floorplan
a 1e-3 1e-3 5e-3 5e-3
b 1e-3 1e-3 6e-3 5e-3

c 1e-3 1e-3 5e-3 6e-3
d 1e-3 1e-3 6e-3 6e-3
`
	f, err := ParseFLP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.RowsN != 2 || f.ColsN != 2 || f.CoreEdge != 1e-3 {
		t.Fatalf("parsed %s", f)
	}
}

func TestParseFLPRejections(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"short line":    "a 1e-3 1e-3 0\n",
		"bad number":    "a x 1e-3 0 0\n",
		"non-square":    "a 1e-3 2e-3 0 0\n",
		"mixed sizes":   "a 1e-3 1e-3 0 0\nb 2e-3 2e-3 1e-3 0\n",
		"off grid":      "a 1e-3 1e-3 0 0\nb 1e-3 1e-3 1.5e-3 0\n",
		"overlap":       "a 1e-3 1e-3 0 0\nb 1e-3 1e-3 0 0\n",
		"gap (L-shape)": "a 1e-3 1e-3 0 0\nb 1e-3 1e-3 1e-3 0\nc 1e-3 1e-3 0 1e-3\n",
	}
	for name, in := range cases {
		if _, err := ParseFLP(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected rejection", name)
		}
	}
}
