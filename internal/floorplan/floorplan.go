// Package floorplan models the physical layout of a multi-core die: a
// rectangular grid of identical square cores, as in the paper's evaluated
// 2×1, 3×1, 3×2 and 3×3 configurations with 4×4 mm² cores at the 65 nm
// node. The floorplan supplies the geometry (areas, shared-edge lengths,
// adjacency) that the compact RC thermal model turns into conductances.
package floorplan

import (
	"fmt"
	"math"
)

// Floorplan describes a grid of identical square cores.
type Floorplan struct {
	// RowsN and ColsN give the grid shape; cores are numbered row-major,
	// core index = r*ColsN + c.
	RowsN, ColsN int
	// CoreEdge is the side length of each (square) core in meters.
	CoreEdge float64
}

// Grid returns a rows×cols floorplan of square cores with the given edge
// length in meters.
func Grid(rows, cols int, coreEdge float64) (*Floorplan, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("floorplan: invalid grid %d×%d", rows, cols)
	}
	if !(coreEdge > 0) || math.IsInf(coreEdge, 0) { // rejects NaN and ±Inf too
		return nil, fmt.Errorf("floorplan: invalid core edge %g m", coreEdge)
	}
	return &Floorplan{RowsN: rows, ColsN: cols, CoreEdge: coreEdge}, nil
}

// MustGrid is Grid that panics on error, for tests and static tables.
func MustGrid(rows, cols int, coreEdge float64) *Floorplan {
	f, err := Grid(rows, cols, coreEdge)
	if err != nil {
		panic(err)
	}
	return f
}

// NumCores returns the total number of cores.
func (f *Floorplan) NumCores() int { return f.RowsN * f.ColsN }

// CoreArea returns the area of a single core in m².
func (f *Floorplan) CoreArea() float64 { return f.CoreEdge * f.CoreEdge }

// ChipArea returns the total die area in m².
func (f *Floorplan) ChipArea() float64 { return f.CoreArea() * float64(f.NumCores()) }

// Position returns the grid row and column of core i.
func (f *Floorplan) Position(i int) (row, col int) {
	f.checkIndex(i)
	return i / f.ColsN, i % f.ColsN
}

// Index returns the core index at grid position (row, col).
func (f *Floorplan) Index(row, col int) int {
	if row < 0 || row >= f.RowsN || col < 0 || col >= f.ColsN {
		panic(fmt.Sprintf("floorplan: position (%d,%d) outside %d×%d grid", row, col, f.RowsN, f.ColsN))
	}
	return row*f.ColsN + col
}

// Neighbors returns the indices of cores sharing an edge with core i,
// in ascending order.
func (f *Floorplan) Neighbors(i int) []int {
	r, c := f.Position(i)
	var out []int
	if r > 0 {
		out = append(out, f.Index(r-1, c))
	}
	if c > 0 {
		out = append(out, f.Index(r, c-1))
	}
	if c < f.ColsN-1 {
		out = append(out, f.Index(r, c+1))
	}
	if r < f.RowsN-1 {
		out = append(out, f.Index(r+1, c))
	}
	return out
}

// Adjacent reports whether cores i and j share an edge.
func (f *Floorplan) Adjacent(i, j int) bool {
	ri, ci := f.Position(i)
	rj, cj := f.Position(j)
	dr, dc := ri-rj, ci-cj
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// SharedEdge returns the length (meters) of the boundary shared by cores
// i and j, or 0 if they are not adjacent. For a grid of identical square
// cores every shared edge has length CoreEdge.
func (f *Floorplan) SharedEdge(i, j int) float64 {
	if f.Adjacent(i, j) {
		return f.CoreEdge
	}
	return 0
}

// CenterDistance returns the distance between the centers of cores i and j
// in meters.
func (f *Floorplan) CenterDistance(i, j int) float64 {
	ri, ci := f.Position(i)
	rj, cj := f.Position(j)
	dr := float64(ri - rj)
	dc := float64(ci - cj)
	return f.CoreEdge * math.Sqrt(dr*dr+dc*dc)
}

// BoundaryEdges returns, for core i, the total length of its perimeter not
// shared with any other core (exposed to the die edge), in meters. It is
// used to model slightly better lateral heat escape for edge/corner cores.
func (f *Floorplan) BoundaryEdges(i int) float64 {
	return float64(4-len(f.Neighbors(i))) * f.CoreEdge
}

// String renders the floorplan shape, e.g. "3x2 grid (4.0 mm cores)".
func (f *Floorplan) String() string {
	return fmt.Sprintf("%dx%d grid (%.1f mm cores)", f.RowsN, f.ColsN, f.CoreEdge*1e3)
}

func (f *Floorplan) checkIndex(i int) {
	if i < 0 || i >= f.NumCores() {
		panic(fmt.Sprintf("floorplan: core index %d outside [0,%d)", i, f.NumCores()))
	}
}
