package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HotSpot floorplan (.flp) interop. The format is line-oriented:
//
//	<unit-name> <width> <height> <left-x> <bottom-y>
//
// in meters, with '#' comments and blank lines ignored — the files
// HotSpot-5.02 consumes. WriteFLP emits this repository's grid floorplans
// in that format; ParseFLP accepts any .flp whose units form a regular
// grid of identical squares (the model class this package supports) and
// reports a descriptive error otherwise.

// WriteFLP serializes the floorplan as a HotSpot .flp document. Cores are
// named core_<index> in this package's row-major order; the y axis grows
// upward as in HotSpot, so grid row 0 is the TOP row of the die.
func (f *Floorplan) WriteFLP(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# thermosc grid floorplan: %s\n", f)
	fmt.Fprintf(bw, "# <unit-name> <width> <height> <left-x> <bottom-y>\n")
	for i := 0; i < f.NumCores(); i++ {
		r, c := f.Position(i)
		x := float64(c) * f.CoreEdge
		y := float64(f.RowsN-1-r) * f.CoreEdge
		fmt.Fprintf(bw, "core_%d\t%.6e\t%.6e\t%.6e\t%.6e\n", i, f.CoreEdge, f.CoreEdge, x, y)
	}
	return bw.Flush()
}

// flpUnit is one parsed .flp line.
type flpUnit struct {
	name       string
	w, h, x, y float64
}

// ParseFLP reads a HotSpot floorplan and reconstructs the grid it
// describes. Requirements (with specific errors when violated): every
// unit square and of identical size, positions on an exact grid with no
// gaps or overlaps.
func ParseFLP(r io.Reader) (*Floorplan, error) {
	var units []flpUnit
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 5 {
			return nil, fmt.Errorf("floorplan: line %d: want 5 fields, have %d", line, len(fields))
		}
		vals := make([]float64, 4)
		for k := 0; k < 4; k++ {
			v, err := strconv.ParseFloat(fields[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d: bad number %q: %w", line, fields[k+1], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("floorplan: line %d: non-finite value %v", line, v)
			}
			if k < 2 && v <= 0 {
				return nil, fmt.Errorf("floorplan: line %d: non-positive dimension %v", line, v)
			}
			vals[k] = v
		}
		units = append(units, flpUnit{fields[0], vals[0], vals[1], vals[2], vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("floorplan: empty .flp")
	}

	edge := units[0].w
	tol := 1e-9 * math.Max(1, edge)
	for _, u := range units {
		if math.Abs(u.w-edge) > tol || math.Abs(u.h-edge) > tol {
			return nil, fmt.Errorf("floorplan: unit %q is %gx%g, not a %g square (only uniform square grids are supported)",
				u.name, u.w, u.h, edge)
		}
	}

	// Snap positions to grid indices.
	cols := map[int]bool{}
	rows := map[int]bool{}
	occupied := map[[2]int]string{}
	for _, u := range units {
		cf, rf := u.x/edge, u.y/edge
		c, r := int(math.Round(cf)), int(math.Round(rf))
		if math.Abs(cf-float64(c)) > 1e-6 || math.Abs(rf-float64(r)) > 1e-6 {
			return nil, fmt.Errorf("floorplan: unit %q at (%g, %g) is off the %g grid", u.name, u.x, u.y, edge)
		}
		key := [2]int{r, c}
		if prev, dup := occupied[key]; dup {
			return nil, fmt.Errorf("floorplan: units %q and %q overlap at grid (%d,%d)", prev, u.name, r, c)
		}
		occupied[key] = u.name
		cols[c] = true
		rows[r] = true
	}
	minR, maxR := extent(rows)
	minC, maxC := extent(cols)
	nR, nC := maxR-minR+1, maxC-minC+1
	if nR*nC != len(units) {
		return nil, fmt.Errorf("floorplan: %d units do not tile the %dx%d bounding grid (gaps)", len(units), nR, nC)
	}
	for r := minR; r <= maxR; r++ {
		for c := minC; c <= maxC; c++ {
			if _, ok := occupied[[2]int{r, c}]; !ok {
				return nil, fmt.Errorf("floorplan: grid position (%d,%d) is empty", r, c)
			}
		}
	}
	return Grid(nR, nC, edge)
}

func extent(set map[int]bool) (lo, hi int) {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys[0], keys[len(keys)-1]
}
