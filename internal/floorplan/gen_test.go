package floorplan

import "testing"

func TestGenConstructors(t *testing.T) {
	m := Mesh(5, 3)
	if m.Name != "mesh-5x3" || m.NumCores() != 15 || m.Scales != nil {
		t.Fatalf("mesh: %+v", m)
	}
	s := Stacked3D(2, 3, 4)
	if s.NumCores() != 24 || s.Layers != 4 {
		t.Fatalf("stack: %+v", s)
	}
	bl := BigLittle(4, 4, 0.25, 1)
	if len(bl.Scales) != 16 {
		t.Fatalf("biglittle scales: %d", len(bl.Scales))
	}
	big := 0
	for _, sc := range bl.Scales {
		switch sc {
		case BigScale:
			big++
		case LittleScale:
		default:
			t.Fatalf("unexpected scale %v", sc)
		}
	}
	if big != 4 { // floor(0.25 * 16)
		t.Fatalf("big cores = %d, want 4", big)
	}
	// Same seed, same assignment — the catalog must be reproducible.
	if got := BigLittle(4, 4, 0.25, 1); !equalScales(got.Scales, bl.Scales) {
		t.Fatal("seeded assignment not deterministic")
	}
	bls := BigLittleStacked(2, 2, 2, 0.5, 9)
	if bls.NumCores() != 8 || len(bls.Scales) != 8 || bls.Layers != 2 {
		t.Fatalf("stacked hetero: %+v", bls)
	}
}

func equalScales(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	seen := map[string]bool{}
	prev := 0
	max := 0
	for _, g := range cat {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if _, err := g.Floorplan(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if seen[g.Name] {
			t.Fatalf("duplicate catalog name %q", g.Name)
		}
		seen[g.Name] = true
		n := g.NumCores()
		if n < prev {
			t.Fatalf("%s: catalog not ordered by size (%d after %d)", g.Name, n, prev)
		}
		prev = n
		if n > max {
			max = n
		}
	}
	if max < 256 {
		t.Fatalf("catalog tops out at %d cores, want 256", max)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []GenSpec{
		{Name: "zero-rows", Rows: 0, Cols: 3},
		{Name: "neg-cols", Rows: 3, Cols: -1},
		{Name: "neg-layers", Rows: 2, Cols: 2, Layers: -1},
		{Name: "short-scales", Rows: 2, Cols: 2, Scales: []float64{1}},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("%s: accepted", g.Name)
		}
	}
}
