package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridValidation(t *testing.T) {
	if _, err := Grid(0, 3, 4e-3); err == nil {
		t.Fatal("expected error for zero rows")
	}
	if _, err := Grid(3, -1, 4e-3); err == nil {
		t.Fatal("expected error for negative cols")
	}
	if _, err := Grid(3, 3, 0); err == nil {
		t.Fatal("expected error for zero core edge")
	}
	if _, err := Grid(3, 3, 4e-3); err != nil {
		t.Fatal(err)
	}
}

func TestMustGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGrid(0, 0, 1)
}

func TestAreasAndCounts(t *testing.T) {
	f := MustGrid(3, 2, 4e-3)
	if f.NumCores() != 6 {
		t.Fatalf("NumCores = %d", f.NumCores())
	}
	if math.Abs(f.CoreArea()-16e-6) > 1e-12 {
		t.Fatalf("CoreArea = %v", f.CoreArea())
	}
	if math.Abs(f.ChipArea()-96e-6) > 1e-12 {
		t.Fatalf("ChipArea = %v", f.ChipArea())
	}
}

func TestPositionIndexRoundTrip(t *testing.T) {
	f := MustGrid(3, 3, 4e-3)
	for i := 0; i < f.NumCores(); i++ {
		r, c := f.Position(i)
		if f.Index(r, c) != i {
			t.Fatalf("round trip failed for core %d", i)
		}
	}
}

func TestNeighbors3x3(t *testing.T) {
	f := MustGrid(3, 3, 4e-3)
	// Center core (index 4) has all four neighbors.
	got := f.Neighbors(4)
	want := []int{1, 3, 5, 7}
	if len(got) != 4 {
		t.Fatalf("center neighbors = %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("center neighbors = %v, want %v", got, want)
		}
	}
	// Corner core 0 has two neighbors.
	if n := f.Neighbors(0); len(n) != 2 || n[0] != 1 || n[1] != 3 {
		t.Fatalf("corner neighbors = %v", n)
	}
	// Edge core 1 has three neighbors.
	if n := f.Neighbors(1); len(n) != 3 {
		t.Fatalf("edge neighbors = %v", n)
	}
}

func TestAdjacency(t *testing.T) {
	f := MustGrid(2, 2, 4e-3)
	if !f.Adjacent(0, 1) || !f.Adjacent(0, 2) {
		t.Fatal("expected adjacency for touching cores")
	}
	if f.Adjacent(0, 3) {
		t.Fatal("diagonal cores are not adjacent")
	}
	if f.Adjacent(1, 1) {
		t.Fatal("a core is not adjacent to itself")
	}
}

func TestSharedEdgeAndBoundary(t *testing.T) {
	f := MustGrid(3, 1, 4e-3)
	if f.SharedEdge(0, 1) != 4e-3 {
		t.Fatalf("SharedEdge = %v", f.SharedEdge(0, 1))
	}
	if f.SharedEdge(0, 2) != 0 {
		t.Fatal("non-adjacent cores must share no edge")
	}
	// In a 3×1 strip, end cores have 3 exposed edges, the middle has 2.
	if f.BoundaryEdges(0) != 3*4e-3 {
		t.Fatalf("BoundaryEdges(0) = %v", f.BoundaryEdges(0))
	}
	if f.BoundaryEdges(1) != 2*4e-3 {
		t.Fatalf("BoundaryEdges(1) = %v", f.BoundaryEdges(1))
	}
}

func TestCenterDistance(t *testing.T) {
	f := MustGrid(2, 2, 4e-3)
	if math.Abs(f.CenterDistance(0, 1)-4e-3) > 1e-12 {
		t.Fatalf("adjacent distance = %v", f.CenterDistance(0, 1))
	}
	if math.Abs(f.CenterDistance(0, 3)-4e-3*math.Sqrt2) > 1e-12 {
		t.Fatalf("diagonal distance = %v", f.CenterDistance(0, 3))
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	f := MustGrid(2, 2, 4e-3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Position(4)
}

// Property: adjacency is symmetric and consistent with Neighbors.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(4), 1+r.Intn(4)
		fp := MustGrid(rows, cols, 4e-3)
		n := fp.NumCores()
		for i := 0; i < n; i++ {
			neigh := map[int]bool{}
			for _, j := range fp.Neighbors(i) {
				neigh[j] = true
			}
			for j := 0; j < n; j++ {
				if fp.Adjacent(i, j) != fp.Adjacent(j, i) {
					return false
				}
				if fp.Adjacent(i, j) != neigh[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the sum of shared edges plus boundary edges equals the
// perimeter for every core.
func TestPerimeterConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fp := MustGrid(1+r.Intn(4), 1+r.Intn(4), 4e-3)
		for i := 0; i < fp.NumCores(); i++ {
			var shared float64
			for _, j := range fp.Neighbors(i) {
				shared += fp.SharedEdge(i, j)
			}
			if math.Abs(shared+fp.BoundaryEdges(i)-4*fp.CoreEdge) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	f := MustGrid(3, 2, 4e-3)
	if f.String() != "3x2 grid (4.0 mm cores)" {
		t.Fatalf("String = %q", f.String())
	}
}
