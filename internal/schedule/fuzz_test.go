package schedule

import (
	"math"
	"testing"

	"thermosc/internal/power"
)

// FuzzShiftRotate drives Shift with arbitrary segment lengths and offsets
// and checks its invariants: period, work, and pointwise correspondence
// survive any rotation, including cuts landing exactly on boundaries.
func FuzzShiftRotate(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 0.5)
	f.Add(0.1, 0.1, 0.1, 0.3)
	f.Add(5.0, 0.0, 1.0, 6.0) // zero-length middle segment, full-period shift
	f.Add(1.0, 1.0, 1.0, 1.0) // cut exactly on a boundary
	f.Fuzz(func(t *testing.T, l1, l2, l3, off float64) {
		for _, v := range []float64{l1, l2, l3, off} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e6 {
				t.Skip()
			}
		}
		if l1+l2+l3 <= 1e-9 {
			t.Skip()
		}
		s, err := New([][]Segment{{
			{Length: l1, Mode: power.NewMode(0.6)},
			{Length: l2, Mode: power.NewMode(1.0)},
			{Length: l3, Mode: power.NewMode(1.3)},
		}})
		if err != nil {
			t.Skip()
		}
		sh := s.Shift(0, off)
		if math.Abs(sh.Period()-s.Period()) > 1e-9*math.Max(1, s.Period()) {
			t.Fatalf("period changed: %v vs %v", sh.Period(), s.Period())
		}
		if math.Abs(sh.CoreWork(0)-s.CoreWork(0)) > 1e-6*math.Max(1, s.CoreWork(0)) {
			t.Fatalf("work changed: %v vs %v", sh.CoreWork(0), s.CoreWork(0))
		}
		// Pointwise: shifted(t) == original(t−off) away from boundaries.
		for _, frac := range []float64{0.13, 0.41, 0.77} {
			tq := frac * s.Period()
			if nearBoundary(s, tq-off) || nearBoundary(sh, tq) {
				continue
			}
			if sh.ModeAt(0, tq) != s.ModeAt(0, tq-off) {
				t.Fatalf("pointwise mismatch at t=%v (off=%v)", tq, off)
			}
		}
	})
}

func nearBoundary(s *Schedule, t float64) bool {
	t = math.Mod(t, s.Period())
	if t < 0 {
		t += s.Period()
	}
	var acc float64
	eps := 1e-7 * math.Max(1, s.Period())
	for _, seg := range s.CoreSegments(0) {
		if math.Abs(t-acc) < eps {
			return true
		}
		acc += seg.Length
	}
	return math.Abs(t-acc) < eps
}

// FuzzMOscillateInvariants drives the m-oscillation transform with
// arbitrary inputs and validates the definition's invariants.
func FuzzMOscillateInvariants(f *testing.F) {
	f.Add(1.0, 1.0, uint8(2))
	f.Add(0.01, 3.0, uint8(17))
	f.Fuzz(func(t *testing.T, lLow, lHigh float64, m8 uint8) {
		m := int(m8%32) + 1
		for _, v := range []float64{lLow, lHigh} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 1e6 {
				t.Skip()
			}
		}
		s, err := New([][]Segment{{
			{Length: lLow, Mode: power.NewMode(0.6)},
			{Length: lHigh, Mode: power.NewMode(1.3)},
		}})
		if err != nil {
			t.Skip()
		}
		o := s.MOscillate(m)
		if math.Abs(o.Period()-s.Period()) > 1e-9*s.Period() {
			t.Fatalf("period changed under m=%d", m)
		}
		if math.Abs(o.Throughput()-s.Throughput()) > 1e-9 {
			t.Fatalf("throughput changed under m=%d", m)
		}
		c := s.Cycle(m)
		if math.Abs(c.Period()*float64(m)-s.Period()) > 1e-9*s.Period() {
			t.Fatalf("cycle period wrong under m=%d", m)
		}
	})
}
