// Package schedule represents periodic multi-core DVFS schedules and the
// two transformations at the heart of the paper: the step-up rearrangement
// (Definition 2) and the m-Oscillating subdivision (Definition 3).
//
// A Schedule stores one piecewise-constant voltage timeline per core, all
// with the same period. The merged "state interval" view of the paper
// (intervals within which every core holds a single mode) is derived on
// demand by Intervals.
package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"thermosc/internal/power"
)

// Segment is a stretch of time during which one core holds one mode.
type Segment struct {
	Length float64 // seconds, ≥ 0
	Mode   power.Mode
}

// Interval is one state interval of the merged multi-core schedule: a
// duration during which every core holds a single mode (paper notation
// I_q with voltage vector v_q).
type Interval struct {
	Length float64
	Modes  []power.Mode // one per core
}

// Schedule is a periodic multi-core schedule.
type Schedule struct {
	period float64
	cores  [][]Segment // cores[i] sums to period
}

// relTol is the relative tolerance used when validating that per-core
// timelines span exactly one period and when merging breakpoints.
const relTol = 1e-9

// RelTol exports the breakpoint-merging tolerance so evaluators that
// assemble the merged state-interval view without a Schedule value (the
// per-solve arenas in internal/sim) reproduce Intervals bit for bit.
const RelTol = relTol

// New builds a schedule from per-core segment timelines. Every core's
// segment lengths must sum to the same period (within a relative
// tolerance); zero-length segments are dropped and adjacent equal-mode
// segments merged.
func New(cores [][]Segment) (*Schedule, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("schedule: no cores")
	}
	var period float64
	norm := make([][]Segment, len(cores))
	for i, segs := range cores {
		if len(segs) == 0 {
			return nil, fmt.Errorf("schedule: core %d has no segments", i)
		}
		var sum float64
		for _, s := range segs {
			if s.Length < 0 || math.IsNaN(s.Length) || math.IsInf(s.Length, 0) {
				return nil, fmt.Errorf("schedule: core %d has invalid segment length %v", i, s.Length)
			}
			sum += s.Length
		}
		if sum <= 0 {
			return nil, fmt.Errorf("schedule: core %d has zero total length", i)
		}
		if i == 0 {
			period = sum
		} else if math.Abs(sum-period) > relTol*math.Max(1, period) {
			return nil, fmt.Errorf("schedule: core %d period %v != core 0 period %v", i, sum, period)
		}
		norm[i] = normalize(segs)
	}
	return &Schedule{period: period, cores: norm}, nil
}

// Must is New that panics on error, for tests and static construction.
func Must(cores [][]Segment) *Schedule {
	s, err := New(cores)
	if err != nil {
		panic(err)
	}
	return s
}

// Constant returns a schedule in which every core holds a single mode for
// the whole period.
func Constant(period float64, modes []power.Mode) *Schedule {
	cores := make([][]Segment, len(modes))
	for i, m := range modes {
		cores[i] = []Segment{{Length: period, Mode: m}}
	}
	return Must(cores)
}

// TwoModeSpec describes one core of a two-mode (low-then-high) schedule.
type TwoModeSpec struct {
	Low, High power.Mode
	HighRatio float64 // fraction of the period spent in High, in [0,1]
}

// TwoMode builds the canonical per-core low-then-high schedule the AO
// algorithm produces: each core runs Low for (1−HighRatio)·period and then
// High for HighRatio·period. Cores with HighRatio 0 or 1 degenerate to a
// single constant segment. The result is a step-up schedule by
// construction.
func TwoMode(period float64, specs []TwoModeSpec) (*Schedule, error) {
	if period <= 0 {
		return nil, fmt.Errorf("schedule: non-positive period %v", period)
	}
	cores := make([][]Segment, len(specs))
	for i, sp := range specs {
		if sp.HighRatio < -relTol || sp.HighRatio > 1+relTol {
			return nil, fmt.Errorf("schedule: core %d HighRatio %v outside [0,1]", i, sp.HighRatio)
		}
		r := math.Min(1, math.Max(0, sp.HighRatio))
		switch {
		case r == 0:
			cores[i] = []Segment{{Length: period, Mode: sp.Low}}
		case r == 1:
			cores[i] = []Segment{{Length: period, Mode: sp.High}}
		default:
			cores[i] = []Segment{
				{Length: (1 - r) * period, Mode: sp.Low},
				{Length: r * period, Mode: sp.High},
			}
		}
	}
	return New(cores)
}

// Period returns the schedule period in seconds.
func (s *Schedule) Period() float64 { return s.period }

// NumCores returns the number of cores.
func (s *Schedule) NumCores() int { return len(s.cores) }

// CoreSegments returns a copy of core i's timeline.
func (s *Schedule) CoreSegments(i int) []Segment {
	return append([]Segment(nil), s.cores[i]...)
}

// ModeAt returns core i's mode at time offset t into the period
// (t is wrapped into [0, period)). Segment q covers [start_q, end_q).
func (s *Schedule) ModeAt(i int, t float64) power.Mode {
	t = wrap(t, s.period)
	var acc float64
	segs := s.cores[i]
	for _, seg := range segs {
		acc += seg.Length
		if t < acc {
			return seg.Mode
		}
	}
	return segs[len(segs)-1].Mode
}

// CoreWork returns the work (∫ speed dt) completed by core i per period.
func (s *Schedule) CoreWork(i int) float64 {
	var w float64
	for _, seg := range s.cores[i] {
		w += seg.Mode.Speed() * seg.Length
	}
	return w
}

// Throughput returns the chip-wide throughput of the schedule — the
// paper's eq. (5): total work per period divided by N·t_p.
func (s *Schedule) Throughput() float64 {
	var total float64
	for i := range s.cores {
		total += s.CoreWork(i)
	}
	return total / (float64(len(s.cores)) * s.period)
}

// Intervals returns the merged state-interval view: the union of all
// cores' switching points partitions the period into intervals within
// which every core holds a single mode.
func (s *Schedule) Intervals() []Interval {
	eps := relTol * math.Max(1, s.period)
	// Collect breakpoints.
	pts := []float64{0, s.period}
	for _, segs := range s.cores {
		var acc float64
		for _, seg := range segs[:len(segs)-1] {
			acc += seg.Length
			pts = append(pts, acc)
		}
	}
	sort.Float64s(pts)
	merged := pts[:1]
	for _, p := range pts[1:] {
		if p-merged[len(merged)-1] > eps {
			merged = append(merged, p)
		}
	}
	// Ensure the final breakpoint is exactly the period.
	merged[len(merged)-1] = s.period

	out := make([]Interval, 0, len(merged)-1)
	for k := 0; k+1 < len(merged); k++ {
		mid := 0.5 * (merged[k] + merged[k+1])
		modes := make([]power.Mode, len(s.cores))
		for i := range s.cores {
			modes[i] = s.ModeAt(i, mid)
		}
		out = append(out, Interval{Length: merged[k+1] - merged[k], Modes: modes})
	}
	return out
}

// IsStepUp reports whether the schedule satisfies Definition 1: for the
// merged state intervals, the voltage vector is element-wise non-decreasing
// from the first to the last interval — equivalently, every core's own
// timeline is non-decreasing in voltage.
func (s *Schedule) IsStepUp() bool {
	for _, segs := range s.cores {
		for q := 0; q+1 < len(segs); q++ {
			if segs[q].Mode.Voltage > segs[q+1].Mode.Voltage+1e-15 {
				return false
			}
		}
	}
	return true
}

// StepUp returns the corresponding step-up schedule of Definition 2: each
// core's segments reordered by non-decreasing supply voltage. Workload per
// core (and hence throughput) is preserved exactly.
func (s *Schedule) StepUp() *Schedule {
	cores := make([][]Segment, len(s.cores))
	for i, segs := range s.cores {
		cp := append([]Segment(nil), segs...)
		sort.SliceStable(cp, func(a, b int) bool {
			return cp[a].Mode.Voltage < cp[b].Mode.Voltage
		})
		cores[i] = cp
	}
	return Must(cores)
}

// MOscillate returns the m-Oscillating schedule of Definition 3: every
// state interval's length divided by m with voltages unchanged, the whole
// pattern repeated m times so the period is preserved. m must be ≥ 1.
func (s *Schedule) MOscillate(m int) *Schedule {
	if m < 1 {
		panic(fmt.Sprintf("schedule: MOscillate with m=%d", m))
	}
	if m == 1 {
		return s
	}
	cores := make([][]Segment, len(s.cores))
	for i, segs := range s.cores {
		cycle := make([]Segment, len(segs))
		for q, seg := range segs {
			cycle[q] = Segment{Length: seg.Length / float64(m), Mode: seg.Mode}
		}
		rep := make([]Segment, 0, len(cycle)*m)
		for k := 0; k < m; k++ {
			rep = append(rep, cycle...)
		}
		cores[i] = rep
	}
	return Must(cores)
}

// Cycle returns the single-cycle schedule of an m-oscillated pattern:
// period/m with each core's segment lengths divided by m. Simulating the
// cycle as its own periodic schedule is equivalent to simulating the full
// m-oscillating schedule in the thermally stable status.
func (s *Schedule) Cycle(m int) *Schedule {
	if m < 1 {
		panic(fmt.Sprintf("schedule: Cycle with m=%d", m))
	}
	if m == 1 {
		return s
	}
	cores := make([][]Segment, len(s.cores))
	for i, segs := range s.cores {
		cycle := make([]Segment, len(segs))
		for q, seg := range segs {
			cycle[q] = Segment{Length: seg.Length / float64(m), Mode: seg.Mode}
		}
		cores[i] = cycle
	}
	return Must(cores)
}

// Shift returns a schedule in which core i's timeline is delayed by
// offset seconds (wrapped around the period); other cores are unchanged.
// PCO uses this to interleave high-voltage intervals spatially.
func (s *Schedule) Shift(i int, offset float64) *Schedule {
	offset = wrap(offset, s.period)
	cores := make([][]Segment, len(s.cores))
	for j := range s.cores {
		if j != i || offset == 0 {
			cores[j] = s.cores[j]
			continue
		}
		cores[j] = rotate(s.cores[j], s.period-offset)
	}
	return Must(cores)
}

// Scale returns a schedule with every segment length multiplied by k > 0
// (changing the period, preserving ratios and throughput).
func (s *Schedule) Scale(k float64) *Schedule {
	if k <= 0 {
		panic(fmt.Sprintf("schedule: Scale by %v", k))
	}
	cores := make([][]Segment, len(s.cores))
	for i, segs := range s.cores {
		cp := make([]Segment, len(segs))
		for q, seg := range segs {
			cp[q] = Segment{Length: seg.Length * k, Mode: seg.Mode}
		}
		cores[i] = cp
	}
	return Must(cores)
}

// MaxVoltage returns the highest voltage appearing anywhere in the
// schedule.
func (s *Schedule) MaxVoltage() float64 {
	var v float64
	for _, segs := range s.cores {
		for _, seg := range segs {
			if seg.Mode.Voltage > v {
				v = seg.Mode.Voltage
			}
		}
	}
	return v
}

// String renders a compact description for logs and test failures.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "period %.4gs:", s.period)
	for i, segs := range s.cores {
		fmt.Fprintf(&sb, " core%d[", i)
		for q, seg := range segs {
			if q > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%s×%.3g", seg.Mode, seg.Length)
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// rotate returns segs rotated so the returned timeline starts at offset
// `cut` of the original (0 ≤ cut < period).
func rotate(segs []Segment, cut float64) []Segment {
	if cut == 0 {
		return segs
	}
	var acc float64
	out := make([]Segment, 0, len(segs)+1)
	var tail []Segment
	for _, seg := range segs {
		end := acc + seg.Length
		switch {
		case end <= cut+1e-15:
			tail = append(tail, seg)
		case acc >= cut:
			out = append(out, seg)
		default:
			// The segment straddles the cut: split it.
			out = append(out, Segment{Length: end - cut, Mode: seg.Mode})
			tail = append(tail, Segment{Length: cut - acc, Mode: seg.Mode})
		}
		acc = end
	}
	return normalize(append(out, tail...))
}

// normalize drops zero-length segments and merges adjacent equal-mode
// segments.
func normalize(segs []Segment) []Segment {
	out := make([]Segment, 0, len(segs))
	for _, seg := range segs {
		if seg.Length <= 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Mode == seg.Mode {
			out[len(out)-1].Length += seg.Length
			continue
		}
		out = append(out, seg)
	}
	if len(out) == 0 {
		// Entire timeline was zero-length; keep one empty marker so the
		// caller's validation reports the problem instead of indexing nil.
		out = append(out, Segment{})
	}
	return out
}

func wrap(t, period float64) float64 {
	t = math.Mod(t, period)
	if t < 0 {
		t += period
	}
	return t
}
