package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/power"
)

func seg(l, v float64) Segment { return Segment{Length: l, Mode: power.NewMode(v)} }

func randomSchedule(r *rand.Rand, n int, period float64) *Schedule {
	cores := make([][]Segment, n)
	for i := range cores {
		k := 1 + r.Intn(4)
		cuts := make([]float64, k-1)
		for j := range cuts {
			cuts[j] = r.Float64() * period
		}
		// Build k segments with random voltages from a small palette.
		lens := splitPeriod(period, cuts)
		for _, l := range lens {
			v := []float64{0.6, 0.8, 1.0, 1.3}[r.Intn(4)]
			cores[i] = append(cores[i], seg(l, v))
		}
	}
	return Must(cores)
}

func splitPeriod(period float64, cuts []float64) []float64 {
	pts := append([]float64{0}, cuts...)
	pts = append(pts, period)
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	out := make([]float64, 0, len(pts)-1)
	for i := 0; i+1 < len(pts); i++ {
		out = append(out, pts[i+1]-pts[i])
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("no cores must error")
	}
	if _, err := New([][]Segment{{}}); err == nil {
		t.Fatal("empty timeline must error")
	}
	if _, err := New([][]Segment{{seg(-1, 0.6)}}); err == nil {
		t.Fatal("negative length must error")
	}
	if _, err := New([][]Segment{{seg(1, 0.6)}, {seg(2, 0.6)}}); err == nil {
		t.Fatal("mismatched periods must error")
	}
	if _, err := New([][]Segment{{seg(0, 0.6)}}); err == nil {
		t.Fatal("zero total length must error")
	}
	if _, err := New([][]Segment{{seg(math.NaN(), 0.6)}}); err == nil {
		t.Fatal("NaN length must error")
	}
}

func TestNormalizeMergesAndDrops(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(0, 1.3), seg(2, 0.6), seg(1, 1.3)}})
	segs := s.CoreSegments(0)
	if len(segs) != 2 {
		t.Fatalf("normalize failed: %v", segs)
	}
	if segs[0].Length != 3 || segs[1].Length != 1 {
		t.Fatalf("merged lengths wrong: %v", segs)
	}
}

func TestConstant(t *testing.T) {
	s := Constant(2, []power.Mode{power.NewMode(1.0), power.NewMode(0.6)})
	if s.Period() != 2 || s.NumCores() != 2 {
		t.Fatal("Constant shape wrong")
	}
	if got := s.Throughput(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Throughput = %v, want 0.8", got)
	}
	if !s.IsStepUp() {
		t.Fatal("constant schedule is trivially step-up")
	}
}

func TestTwoMode(t *testing.T) {
	specs := []TwoModeSpec{
		{Low: power.NewMode(0.6), High: power.NewMode(1.3), HighRatio: 0.25},
		{Low: power.NewMode(0.6), High: power.NewMode(1.3), HighRatio: 0},
		{Low: power.NewMode(0.6), High: power.NewMode(1.3), HighRatio: 1},
	}
	s, err := TwoMode(4, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CoreSegments(0); len(got) != 2 || got[0].Length != 3 || got[1].Length != 1 {
		t.Fatalf("core0 segments = %v", got)
	}
	if got := s.CoreSegments(1); len(got) != 1 || got[0].Mode.Voltage != 0.6 {
		t.Fatalf("core1 segments = %v", got)
	}
	if got := s.CoreSegments(2); len(got) != 1 || got[0].Mode.Voltage != 1.3 {
		t.Fatalf("core2 segments = %v", got)
	}
	// Throughput: (0.6·3 + 1.3·1 + 0.6·4 + 1.3·4)/(3·4).
	want := (0.6*3 + 1.3*1 + 0.6*4 + 1.3*4) / 12
	if math.Abs(s.Throughput()-want) > 1e-12 {
		t.Fatalf("Throughput = %v, want %v", s.Throughput(), want)
	}
	if _, err := TwoMode(-1, specs); err == nil {
		t.Fatal("negative period must error")
	}
	if _, err := TwoMode(1, []TwoModeSpec{{HighRatio: 2}}); err == nil {
		t.Fatal("ratio > 1 must error")
	}
}

func TestModeAt(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(2, 1.3)}})
	cases := []struct {
		t float64
		v float64
	}{
		{0, 0.6}, {0.99, 0.6}, {1.0, 1.3}, {2.9, 1.3},
		{3.0, 0.6}, // wraps
		{-0.5, 1.3},
	}
	for _, c := range cases {
		if got := s.ModeAt(0, c.t).Voltage; got != c.v {
			t.Fatalf("ModeAt(%v) = %v, want %v", c.t, got, c.v)
		}
	}
}

func TestIntervalsMerge(t *testing.T) {
	s := Must([][]Segment{
		{seg(1, 0.6), seg(2, 1.3)},
		{seg(2, 0.8), seg(1, 1.0)},
	})
	ivs := s.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("Intervals = %d, want 3", len(ivs))
	}
	wantLens := []float64{1, 1, 1}
	wantV0 := []float64{0.6, 1.3, 1.3}
	wantV1 := []float64{0.8, 0.8, 1.0}
	for k, iv := range ivs {
		if math.Abs(iv.Length-wantLens[k]) > 1e-12 {
			t.Fatalf("interval %d length %v", k, iv.Length)
		}
		if iv.Modes[0].Voltage != wantV0[k] || iv.Modes[1].Voltage != wantV1[k] {
			t.Fatalf("interval %d modes %v", k, iv.Modes)
		}
	}
}

func TestIsStepUp(t *testing.T) {
	up := Must([][]Segment{{seg(1, 0.6), seg(1, 1.3)}, {seg(2, 0.8)}})
	if !up.IsStepUp() {
		t.Fatal("should be step-up")
	}
	down := Must([][]Segment{{seg(1, 1.3), seg(1, 0.6)}, {seg(2, 0.8)}})
	if down.IsStepUp() {
		t.Fatal("should not be step-up")
	}
}

func TestStepUpPreservesWork(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchedule(r, 1+r.Intn(4), 1+r.Float64()*5)
		u := s.StepUp()
		if !u.IsStepUp() {
			return false
		}
		if math.Abs(u.Period()-s.Period()) > 1e-9 {
			return false
		}
		for i := 0; i < s.NumCores(); i++ {
			if math.Abs(u.CoreWork(i)-s.CoreWork(i)) > 1e-9 {
				return false
			}
		}
		return math.Abs(u.Throughput()-s.Throughput()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMOscillatePreservesThroughputAndPeriod(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchedule(r, 1+r.Intn(3), 0.5+r.Float64()*3)
		m := 1 + r.Intn(8)
		o := s.MOscillate(m)
		if math.Abs(o.Period()-s.Period()) > 1e-9 {
			return false
		}
		if math.Abs(o.Throughput()-s.Throughput()) > 1e-9 {
			return false
		}
		// A step-up schedule oscillated is still per-cycle step-up; check
		// the cycle view.
		c := s.Cycle(m)
		if math.Abs(c.Period()*float64(m)-s.Period()) > 1e-9 {
			return false
		}
		return math.Abs(c.Throughput()-s.Throughput()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMOscillateM1Identity(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(1, 1.3)}})
	if s.MOscillate(1) != s || s.Cycle(1) != s {
		t.Fatal("m=1 should return the same schedule")
	}
	mustPanicSched(t, func() { s.MOscillate(0) })
	mustPanicSched(t, func() { s.Cycle(0) })
}

func TestMOscillateSegmentStructure(t *testing.T) {
	s := Must([][]Segment{{seg(2, 0.6), seg(2, 1.3)}})
	o := s.MOscillate(2)
	segs := o.CoreSegments(0)
	// [0.6×1, 1.3×1, 0.6×1, 1.3×1]
	if len(segs) != 4 {
		t.Fatalf("oscillated segments = %v", segs)
	}
	for _, sg := range segs {
		if math.Abs(sg.Length-1) > 1e-12 {
			t.Fatalf("segment length %v, want 1", sg.Length)
		}
	}
	if segs[0].Mode.Voltage != 0.6 || segs[1].Mode.Voltage != 1.3 {
		t.Fatalf("mode order wrong: %v", segs)
	}
}

func TestShift(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(3, 1.3)}})
	sh := s.Shift(0, 1)
	// shifted(t) = original(t−1): at t=0 original(−1)=original(3)=1.3;
	// at t=1 original(0)=0.6; at t=2 original(1)=1.3.
	if got := sh.ModeAt(0, 0).Voltage; got != 1.3 {
		t.Fatalf("shifted ModeAt(0) = %v", got)
	}
	if got := sh.ModeAt(0, 1.5).Voltage; got != 0.6 {
		t.Fatalf("shifted ModeAt(1.5) = %v", got)
	}
	if got := sh.ModeAt(0, 2.5).Voltage; got != 1.3 {
		t.Fatalf("shifted ModeAt(2.5) = %v", got)
	}
	if math.Abs(sh.Throughput()-s.Throughput()) > 1e-12 {
		t.Fatal("shift changed throughput")
	}
	// Shifting by the full period is the identity.
	id := s.Shift(0, s.Period())
	if math.Abs(id.CoreWork(0)-s.CoreWork(0)) > 1e-12 {
		t.Fatal("full-period shift changed work")
	}
}

func TestShiftPreservesWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchedule(r, 1+r.Intn(3), 0.5+r.Float64()*4)
		i := r.Intn(s.NumCores())
		off := r.Float64() * s.Period() * 1.5
		sh := s.Shift(i, off)
		for j := 0; j < s.NumCores(); j++ {
			if math.Abs(sh.CoreWork(j)-s.CoreWork(j)) > 1e-9 {
				return false
			}
		}
		// Pointwise: shifted core i at t equals original at t−off.
		for k := 0; k < 10; k++ {
			tq := r.Float64() * s.Period()
			if sh.ModeAt(i, tq) != s.ModeAt(i, tq-off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(1, 1.3)}})
	sc := s.Scale(2.5)
	if math.Abs(sc.Period()-5) > 1e-12 {
		t.Fatalf("scaled period = %v", sc.Period())
	}
	if math.Abs(sc.Throughput()-s.Throughput()) > 1e-12 {
		t.Fatal("scale changed throughput")
	}
	mustPanicSched(t, func() { s.Scale(0) })
}

func TestMaxVoltageAndString(t *testing.T) {
	s := Must([][]Segment{{seg(1, 0.6), seg(1, 1.25)}, {seg(2, 0.8)}})
	if s.MaxVoltage() != 1.25 {
		t.Fatalf("MaxVoltage = %v", s.MaxVoltage())
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

// The intervals view must tile the period exactly and agree with ModeAt.
func TestIntervalsConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchedule(r, 1+r.Intn(4), 0.5+r.Float64()*4)
		ivs := s.Intervals()
		var acc float64
		for _, iv := range ivs {
			mid := acc + iv.Length/2
			for i := 0; i < s.NumCores(); i++ {
				if s.ModeAt(i, mid) != iv.Modes[i] {
					return false
				}
			}
			acc += iv.Length
		}
		return math.Abs(acc-s.Period()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mustPanicSched(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
