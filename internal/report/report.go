// Package report renders experiment outputs: aligned text tables, CSV
// emission, and minimal ASCII line plots for temperature traces — the
// textual equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values: each argument is rendered
// with %v except float64, which uses %.4f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// WriteTo renders the table in aligned text form.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w2 := range widths {
		total += w2 + 2
	}
	sb.WriteString(strings.Repeat("-", max(0, total-2)))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	sb.WriteString("\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (naive quoting: cells
// containing commas or quotes are double-quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// ASCIIPlot renders series as a crude terminal line plot: one rune per
// series ('0'-'9' then letters), y auto-scaled, x compressed to width.
// All series share the x axis and must have equal length.
func ASCIIPlot(title string, x []float64, series [][]float64, width, height int) string {
	if len(series) == 0 || len(x) == 0 || width < 8 || height < 3 {
		return ""
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("0123456789abcdef")
	for si, s := range series {
		m := marks[si%len(marks)]
		for k, v := range s {
			col := int(float64(k) / (float64(len(s)-1) + 1e-12) * float64(width-1))
			row := height - 1 - int((v-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s  [y: %.3g..%.3g, x: %.3g..%.3g]\n", title, ymin, ymax, x[0], x[len(x)-1])
	}
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("\n")
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteString("\n")
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
