package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", 7)
	s := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "2.5000", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `quote"inside`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quote""inside"`) {
		t.Fatalf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("missing header: %q", csv)
	}
}

func TestASCIIPlot(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	s1 := []float64{0, 1, 2, 3}
	s2 := []float64{3, 2, 1, 0}
	out := ASCIIPlot("ramp", x, [][]float64{s1, s2}, 20, 6)
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 { // title + 6 rows + axis
		t.Fatalf("plot has %d lines:\n%s", len(lines), out)
	}
	// Degenerate inputs return empty rather than panicking.
	if ASCIIPlot("", nil, nil, 20, 6) != "" {
		t.Fatal("empty input should render nothing")
	}
	if ASCIIPlot("", x, [][]float64{s1}, 2, 2) != "" {
		t.Fatal("tiny canvas should render nothing")
	}
	// Constant series must not divide by zero.
	flat := ASCIIPlot("flat", x, [][]float64{{1, 1, 1, 1}}, 16, 4)
	if flat == "" {
		t.Fatal("flat series should still render")
	}
}
