package report

import (
	"fmt"
	"math"
	"strings"
)

// SVGSeries is one named line in an SVG chart.
type SVGSeries struct {
	Name string
	X, Y []float64
}

// SVGOptions tune chart geometry.
type SVGOptions struct {
	Width, Height int // pixels; zero takes defaults 720×440
	XLabel        string
	YLabel        string
	// LogX plots the x axis on a log10 scale (for m-sweeps).
	LogX bool
}

// seriesPalette holds distinguishable stroke colors (Okabe–Ito).
var seriesPalette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// SVGLineChart renders a multi-series line chart as a standalone SVG
// document: axes with ticks, legend, one polyline per series. It is
// deliberately dependency-free — the experiments write these files so a
// reader can open the paper's figures directly from the repository.
func SVGLineChart(title string, series []SVGSeries, opt SVGOptions) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("report: no series")
	}
	w, h := opt.Width, opt.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}
	const (
		left, right = 70.0, 24.0
		top, bottom = 44.0, 56.0
	)
	plotW := float64(w) - left - right
	plotH := float64(h) - top - bottom

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("report: series %q has %d x values for %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("report: series %q is empty", s.Name)
		}
		for i := range s.X {
			x := s.X[i]
			if opt.LogX {
				if x <= 0 {
					return "", fmt.Errorf("report: LogX with non-positive x %v", x)
				}
				x = math.Log10(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad y range 5% each side.
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 {
		if opt.LogX {
			x = math.Log10(x)
		}
		return left + (x-xmin)/(xmax-xmin)*plotW
	}
	py := func(y float64) float64 {
		return top + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%g" y="24" font-size="15" font-weight="bold">%s</text>`, left, xmlEscape(title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#444"/>`, left, top, left, top+plotH)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#444"/>`, left, top+plotH, left+plotW, top+plotH)

	// Ticks: 5 per axis.
	for k := 0; k <= 5; k++ {
		fy := ymin + (ymax-ymin)*float64(k)/5
		yy := py(fy)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`, left, yy, left+plotW, yy)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="end">%s</text>`, left-6, yy+4, trimFloat(fy))

		fxv := xmin + (xmax-xmin)*float64(k)/5
		label := fxv
		if opt.LogX {
			label = math.Pow(10, fxv)
		}
		xx := left + plotW*float64(k)/5
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`, xx, top, xx, top+plotH)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="middle">%s</text>`, xx, top+plotH+16, trimFloat(label))
	}
	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="middle">%s</text>`,
		left+plotW/2, float64(h)-14, xmlEscape(opt.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`,
		top+plotH/2, top+plotH/2, xmlEscape(opt.YLabel))

	// Series.
	for si, s := range series {
		color := seriesPalette[si%len(seriesPalette)]
		var pts strings.Builder
		for i := range s.X {
			if i > 0 {
				pts.WriteString(" ")
			}
			fmt.Fprintf(&pts, "%.2f,%.2f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, pts.String(), color)
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="2.6" fill="%s"/>`, px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		lx := left + plotW - 150
		ly := top + 10 + float64(si)*18
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`, lx, ly, lx+22, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12">%s</text>`, lx+28, ly+4, xmlEscape(s.Name))
	}
	sb.WriteString(`</svg>`)
	return sb.String(), nil
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimFloat(v float64) string {
	if math.Abs(v) >= 1000 || (math.Abs(v) < 0.01 && v != 0) {
		return fmt.Sprintf("%.2g", v)
	}
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
