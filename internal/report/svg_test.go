package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestSVGLineChartWellFormed(t *testing.T) {
	svg, err := SVGLineChart("Peak vs m", []SVGSeries{
		{Name: "peak", X: []float64{1, 2, 4, 8}, Y: []float64{100, 99.5, 99.1, 98.9}},
		{Name: "bound", X: []float64{1, 2, 4, 8}, Y: []float64{101, 100.5, 100.2, 100.0}},
	}, SVGOptions{XLabel: "m", YLabel: "°C", LogX: true})
	if err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "Peak vs m", "peak", "bound", "circle"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGLineChartValidation(t *testing.T) {
	if _, err := SVGLineChart("x", nil, SVGOptions{}); err == nil {
		t.Fatal("empty series must error")
	}
	if _, err := SVGLineChart("x", []SVGSeries{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}, SVGOptions{}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := SVGLineChart("x", []SVGSeries{{Name: "a"}}, SVGOptions{}); err == nil {
		t.Fatal("empty points must error")
	}
	if _, err := SVGLineChart("x", []SVGSeries{{Name: "a", X: []float64{0}, Y: []float64{1}}}, SVGOptions{LogX: true}); err == nil {
		t.Fatal("LogX with x=0 must error")
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	svg, err := SVGLineChart(`a<b>&"c"`, []SVGSeries{
		{Name: "s<1>", X: []float64{0, 1}, Y: []float64{0, 1}},
	}, SVGOptions{XLabel: "<x>", YLabel: "&y"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b>") || strings.Contains(svg, "s<1>") {
		t.Fatal("markup not escaped")
	}
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("escaped SVG not well-formed: %v", err)
		}
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	// Flat series and single points must not divide by zero.
	svg, err := SVGLineChart("flat", []SVGSeries{
		{Name: "c", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}},
	}, SVGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "polyline") {
		t.Fatal("flat chart should still render")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.25:   "0.25",
		1234.5: "1.2e+03",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
