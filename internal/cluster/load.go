package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"thermosc/internal/floorplan"
)

// This file is the fleet load generator: an open-loop request driver
// for a thermosc-serve fleet. The workload is seed-pinned — the arrival
// schedule, the per-request platform/threshold/method pick, the target
// replica, and the per-request deadline all come from one seeded RNG —
// so a soak failure replays exactly. The popularity of the request
// catalog is zipf-skewed, which is what makes the cache/replication
// layers earn their keep: a handful of hot keys dominate while a long
// tail keeps producing cold solves.

// Arrival curves.
const (
	// CurvePoisson draws exponential interarrival gaps at RateHz — the
	// classical open-loop arrival process.
	CurvePoisson = "poisson"
	// CurveRamp sweeps the arrival rate linearly from 0.5×RateHz to
	// 1.5×RateHz over the run (mean RateHz) — a deterministic rush-hour
	// shape that exercises admission control at the tail.
	CurveRamp = "ramp"
)

// LoadConfig describes one load-generation run.
type LoadConfig struct {
	// Targets are the replica base URLs requests are spread across
	// (uniformly, seed-pinned). Required.
	Targets []string `json:"targets"`
	// Requests is the total request count (default 1000).
	Requests int `json:"requests"`
	// RateHz is the mean arrival rate (default 200/s).
	RateHz float64 `json:"rate_hz"`
	// Curve is the arrival shape: CurvePoisson (default) or CurveRamp.
	Curve string `json:"curve"`
	// ZipfS/ZipfV shape the catalog popularity skew (defaults 1.2 / 1;
	// rank 0 — the smallest platform — is the most popular key).
	ZipfS float64 `json:"zipf_s"`
	ZipfV float64 `json:"zipf_v"`
	// Seed pins the whole workload (default 1).
	Seed int64 `json:"seed"`
	// MaxCores filters the floorplan catalog (default 16, which keeps
	// every cold solve in the low milliseconds).
	MaxCores int `json:"max_cores"`
	// TmaxC are the thermal thresholds crossed with the catalog
	// (default 60, 70, 80 °C).
	TmaxC []float64 `json:"tmax_c"`
	// Methods are the solver methods crossed with the catalog (default
	// AO and LNS).
	Methods []string `json:"methods"`
	// PaperLevels is the voltage level set for every platform (default
	// 3 — small level sets keep solves fast).
	PaperLevels int `json:"paper_levels"`
	// TimeoutMinS/TimeoutMaxS bound the per-request deadline drawn
	// uniformly for each request (defaults 1 s / 10 s); the deadline is
	// sent as the request's timeout_s AND enforced client-side.
	TimeoutMinS float64 `json:"timeout_min_s"`
	TimeoutMaxS float64 `json:"timeout_max_s"`
	// RelatedBurst, when > 1, groups the workload into same-platform
	// bursts: that many consecutive requests share one zipf-picked
	// platform, one target, and one arrival instant, while the threshold
	// and method vary across the platform's variants. This is the shape
	// the server's batch scheduler coalesces (same platform key,
	// different plan keys), so the batch win is measurable under load.
	// 0 (the default) keeps the classic per-request zipf pick.
	RelatedBurst int `json:"related_burst"`
	// Concurrency bounds in-flight requests (default 256). An open-loop
	// generator never waits for a response to send the next request, but
	// it must not exhaust file descriptors; when the bound is hit the
	// dispatcher blocks and the delay shows up as schedule lag.
	Concurrency int `json:"concurrency"`
	// Phases, when non-empty, splits the report's accounting by PLANNED
	// send time: a request belongs to the last phase whose Start is at
	// or before its scheduled At. Used with PhasesFor(churn schedule) to
	// attribute errors and latency to the fleet state that produced
	// them. A phase starting after 0 leaves earlier requests in an
	// implicit "pre" phase.
	Phases []LoadPhase `json:"phases,omitempty"`

	// Client serves the requests (default: a pooled client sized for
	// Concurrency). Tests inject their own.
	Client *http.Client `json:"-"`
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.RateHz <= 0 {
		c.RateHz = 200
	}
	if c.Curve == "" {
		c.Curve = CurvePoisson
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 16
	}
	if len(c.TmaxC) == 0 {
		c.TmaxC = []float64{60, 70, 80}
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"AO", "LNS"}
	}
	if c.PaperLevels <= 0 {
		c.PaperLevels = 3
	}
	if c.TimeoutMinS <= 0 {
		c.TimeoutMinS = 1
	}
	if c.TimeoutMaxS < c.TimeoutMinS {
		c.TimeoutMaxS = c.TimeoutMinS + 9
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 256
	}
	return c
}

// LoadPhase names a half-open window [Start, next phase's Start) of the
// run for split reporting.
type LoadPhase struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
}

// LoadRequest is one generated request: when to send it, where, and
// what.
type LoadRequest struct {
	// At is the planned send offset from the run's start.
	At time.Duration
	// Target is the replica base URL.
	Target string
	// Body is the /v1/maximize JSON body.
	Body []byte
	// Platform names the catalog platform (for per-platform reporting).
	Platform string
	// Rank is the popularity rank of the catalog item this request drew
	// (0 = hottest).
	Rank int
}

// wire-format request body (mirrors the server's schema without
// importing it — internal/cluster must stay importable by the root
// package).
type wirePlatform struct {
	Rows        int       `json:"rows"`
	Cols        int       `json:"cols"`
	PaperLevels int       `json:"paper_levels,omitempty"`
	StackLayers int       `json:"stack_layers,omitempty"`
	CoreScales  []float64 `json:"core_scales,omitempty"`
	CoreEdgeM   float64   `json:"core_edge_m,omitempty"`
}

type wireMaximize struct {
	Platform wirePlatform `json:"platform"`
	TmaxC    float64      `json:"tmax_c"`
	Method   string       `json:"method"`
	TimeoutS float64      `json:"timeout_s,omitempty"`
}

// catalogItem is one distinct canonical request the workload can draw.
type catalogItem struct {
	platform wirePlatform
	name     string
	tmaxC    float64
	method   string
}

// buildCatalog crosses the floorplan catalog (filtered to MaxCores)
// with the configured thresholds and methods, in deterministic order:
// catalog order × tmax × method, so rank 0 is the smallest platform at
// the lowest threshold with the first method.
func buildCatalog(cfg LoadConfig) []catalogItem {
	var items []catalogItem
	for _, g := range floorplan.Catalog() {
		if g.NumCores() > cfg.MaxCores {
			continue
		}
		wp := wirePlatform{
			Rows:        g.Rows,
			Cols:        g.Cols,
			PaperLevels: cfg.PaperLevels,
			CoreEdgeM:   g.CoreEdge,
		}
		if g.Layers > 1 {
			wp.StackLayers = g.Layers
		}
		if len(g.Scales) > 0 {
			wp.CoreScales = g.Scales
		}
		for _, tmax := range cfg.TmaxC {
			for _, m := range cfg.Methods {
				items = append(items, catalogItem{platform: wp, name: g.Name, tmaxC: tmax, method: m})
			}
		}
	}
	return items
}

// Schedule returns the planned arrival offsets for the configured
// curve: len == Requests, ascending, seed-pinned.
func (c LoadConfig) Schedule() []time.Duration {
	cfg := c.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]time.Duration, cfg.Requests)
	var t float64 // seconds
	for i := range out {
		rate := cfg.RateHz
		if cfg.Curve == CurveRamp {
			// Linear sweep 0.5×→1.5× by request index (mean RateHz).
			frac := 0.5
			if cfg.Requests > 1 {
				frac = float64(i) / float64(cfg.Requests-1)
			}
			rate = cfg.RateHz * (0.5 + frac)
		}
		gap := 1 / rate
		if cfg.Curve == CurvePoisson {
			gap = rng.ExpFloat64() / rate
		}
		t += gap
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// Workload generates the full seed-pinned request sequence.
func (c LoadConfig) Workload() ([]LoadRequest, error) {
	cfg := c.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("cluster: load config has no targets")
	}
	items := buildCatalog(cfg)
	if len(items) == 0 {
		return nil, fmt.Errorf("cluster: catalog is empty (max_cores %d filters everything)", cfg.MaxCores)
	}
	schedule := cfg.Schedule()
	// A separate RNG stream for the picks: the schedule must not shift
	// when the pick logic changes, and vice versa.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	if cfg.RelatedBurst > 1 {
		return relatedWorkload(cfg, items, schedule, rng)
	}
	var zipf *rand.Zipf
	if len(items) > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(len(items)-1))
	}
	reqs := make([]LoadRequest, cfg.Requests)
	for i := range reqs {
		rank := 0
		if zipf != nil {
			rank = int(zipf.Uint64())
		}
		item := items[rank]
		timeout := cfg.TimeoutMinS + rng.Float64()*(cfg.TimeoutMaxS-cfg.TimeoutMinS)
		body, err := json.Marshal(wireMaximize{
			Platform: item.platform,
			TmaxC:    item.tmaxC,
			Method:   item.method,
			TimeoutS: timeout,
		})
		if err != nil {
			return nil, err
		}
		reqs[i] = LoadRequest{
			At:       schedule[i],
			Target:   cfg.Targets[rng.Intn(len(cfg.Targets))],
			Body:     body,
			Platform: item.name,
			Rank:     rank,
		}
	}
	return reqs, nil
}

// relatedWorkload emits the RelatedBurst shape: bursts of same-platform
// requests landing at one instant. buildCatalog is platform-major
// (catalog order × tmax × method), so each platform owns a contiguous
// block of variants; the burst draws its members uniformly from one
// zipf-picked platform's block.
func relatedWorkload(cfg LoadConfig, items []catalogItem, schedule []time.Duration, rng *rand.Rand) ([]LoadRequest, error) {
	variants := len(cfg.TmaxC) * len(cfg.Methods)
	numPlats := len(items) / variants
	var zipf *rand.Zipf
	if numPlats > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(numPlats-1))
	}
	reqs := make([]LoadRequest, cfg.Requests)
	for i := 0; i < cfg.Requests; {
		plat := 0
		if zipf != nil {
			plat = int(zipf.Uint64())
		}
		target := cfg.Targets[rng.Intn(len(cfg.Targets))]
		at := schedule[i]
		n := cfg.RelatedBurst
		if i+n > cfg.Requests {
			n = cfg.Requests - i // final partial burst
		}
		for j := 0; j < n; j++ {
			item := items[plat*variants+rng.Intn(variants)]
			timeout := cfg.TimeoutMinS + rng.Float64()*(cfg.TimeoutMaxS-cfg.TimeoutMinS)
			body, err := json.Marshal(wireMaximize{
				Platform: item.platform,
				TmaxC:    item.tmaxC,
				Method:   item.method,
				TimeoutS: timeout,
			})
			if err != nil {
				return nil, err
			}
			reqs[i+j] = LoadRequest{
				At:       at,
				Target:   target,
				Body:     body,
				Platform: item.name,
				Rank:     plat,
			}
		}
		i += n
	}
	return reqs, nil
}

// LoadReport is the run's result artifact (JSON-stable: the soak CI
// job uploads it).
type LoadReport struct {
	// Exact accounting: every generated request lands in exactly one of
	// these four buckets, and their sum equals Requests.
	Requests   int `json:"requests"`
	Served     int `json:"served"`     // HTTP 200
	Infeasible int `json:"infeasible"` // HTTP 422 (no feasible plan)
	Shed       int `json:"shed"`       // HTTP 429 (admission control)
	Errors     int `json:"errors"`     // transport failures + any other status

	ByStatus map[string]int `json:"by_status"`
	ByTarget map[string]int `json:"by_target"`
	// BySource classifies served responses by the fleet layer that
	// answered (the response's source field; "" single-process).
	BySource map[string]int `json:"by_source,omitempty"`

	// Cache behavior over served responses.
	CacheHits int     `json:"cache_hits"`
	HitRatio  float64 `json:"hit_ratio"`
	Degraded  int     `json:"degraded"`
	Stale     int     `json:"stale"`

	// Latency over ALL completed requests (seconds).
	LatencyP50S float64 `json:"latency_p50_s"`
	LatencyP95S float64 `json:"latency_p95_s"`
	LatencyP99S float64 `json:"latency_p99_s"`
	LatencyMaxS float64 `json:"latency_max_s"`

	// PlanMismatches lists canonical keys that returned two different
	// complete plans — a replication-soundness violation (degraded plans
	// are deadline-dependent and excluded). Must be empty.
	PlanMismatches []string `json:"plan_mismatches,omitempty"`
	// DistinctKeys counts distinct canonical keys observed in served
	// responses.
	DistinctKeys int `json:"distinct_keys"`

	// MaxScheduleLagS is the worst planned-vs-actual send-time gap — an
	// open-loop health signal (a saturated Concurrency bound or a slow
	// dispatcher shows up here, not in latency).
	MaxScheduleLagS float64 `json:"max_schedule_lag_s"`
	ElapsedS        float64 `json:"elapsed_s"`

	// Phases is the per-phase split of the same accounting when
	// LoadConfig.Phases was set (phase sums equal the run totals).
	Phases []PhaseReport `json:"phases,omitempty"`
}

// PhaseReport is one phase's slice of the accounting: requests are
// attributed by PLANNED send time, so a churn run shows exactly which
// fleet state each error belongs to.
type PhaseReport struct {
	Name       string  `json:"name"`
	StartS     float64 `json:"start_s"`
	Requests   int     `json:"requests"`
	Served     int     `json:"served"`
	Infeasible int     `json:"infeasible"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`

	LatencyP50S float64 `json:"latency_p50_s"`
	LatencyP99S float64 `json:"latency_p99_s"`
	LatencyMaxS float64 `json:"latency_max_s"`
}

// loadResponse is the subset of the serve response the generator
// inspects (lenient decode: the generator must not break when the
// server grows fields).
type loadResponse struct {
	Plan     json.RawMessage `json:"plan"`
	Cached   bool            `json:"cached"`
	Degraded bool            `json:"degraded"`
	Stale    bool            `json:"stale"`
	Key      string          `json:"key"`
	Source   string          `json:"source"`
}

type loadOutcome struct {
	status   int // 0 = transport error
	latency  time.Duration
	target   string
	lag      time.Duration
	resp     loadResponse
	complete bool // 200 with a decodable body
}

// RunLoad executes the configured workload and aggregates the report.
// The context cancels the run early (requests already in flight finish;
// unsent requests are counted as errors).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	reqs, err := cfg.Workload()
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency,
				MaxIdleConnsPerHost: cfg.Concurrency,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}

	outcomes := make([]loadOutcome, len(reqs))
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
dispatch:
	for i := range reqs {
		// Open-loop pacing: sleep until the planned send time, then fire
		// regardless of how many requests are still in flight (up to the
		// fd-safety bound).
		wait := reqs[i].At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[i] = fire(ctx, client, reqs[i], start)
		}(i)
	}
	wg.Wait()
	report := aggregate(reqs, outcomes, cfg.Phases)
	report.ElapsedS = time.Since(start).Seconds()
	return report, nil
}

func fire(ctx context.Context, client *http.Client, lr LoadRequest, start time.Time) loadOutcome {
	out := loadOutcome{target: lr.Target, lag: time.Since(start) - lr.At}
	var timeoutS float64
	var probe struct {
		TimeoutS float64 `json:"timeout_s"`
	}
	if json.Unmarshal(lr.Body, &probe) == nil {
		timeoutS = probe.TimeoutS
	}
	if timeoutS > 0 {
		// Client-side deadline = request deadline + grace for transport
		// and queuing.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration((timeoutS+30)*float64(time.Second)))
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, lr.Target+"/v1/maximize", bytes.NewReader(lr.Body))
	if err != nil {
		return out
	}
	hreq.Header.Set("Content-Type", "application/json")
	sent := time.Now()
	hresp, err := client.Do(hreq)
	out.latency = time.Since(sent)
	if err != nil {
		return out
	}
	defer hresp.Body.Close()
	out.status = hresp.StatusCode
	var lresp loadResponse
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hresp.Body).Decode(&lresp); err == nil {
			out.resp = lresp
			out.complete = true
		} else {
			out.status = 0 // undecodable 200 is a transport-class error
		}
	}
	out.latency = time.Since(sent)
	return out
}

func aggregate(reqs []LoadRequest, outcomes []loadOutcome, phases []LoadPhase) *LoadReport {
	r := &LoadReport{
		Requests: len(reqs),
		ByStatus: make(map[string]int),
		ByTarget: make(map[string]int),
		BySource: make(map[string]int),
	}
	split := newPhaseSplit(phases)
	planHash := make(map[string]string)
	mismatched := make(map[string]bool)
	var lat []float64
	for i := range outcomes {
		o := &outcomes[i]
		ph := split.phaseFor(reqs[i].At)
		r.ByTarget[o.target]++
		if o.latency > 0 {
			lat = append(lat, o.latency.Seconds())
			if ph != nil {
				ph.lat = append(ph.lat, o.latency.Seconds())
			}
		}
		if lag := o.lag.Seconds(); lag > r.MaxScheduleLagS {
			r.MaxScheduleLagS = lag
		}
		if ph != nil {
			ph.rep.Requests++
			switch {
			case o.status == http.StatusOK && o.complete:
				ph.rep.Served++
			case o.status == http.StatusUnprocessableEntity:
				ph.rep.Infeasible++
			case o.status == http.StatusTooManyRequests:
				ph.rep.Shed++
			default:
				ph.rep.Errors++
			}
		}
		switch {
		case o.status == http.StatusOK && o.complete:
			r.Served++
			r.ByStatus["200"]++
			if o.resp.Source != "" {
				r.BySource[o.resp.Source]++
			}
			if o.resp.Cached {
				r.CacheHits++
			}
			if o.resp.Degraded {
				r.Degraded++
			} else if o.resp.Key != "" {
				// Complete plans must be byte-identical per canonical key,
				// no matter which replica answered.
				h := PlanHash(o.resp.Plan)
				if prev, ok := planHash[o.resp.Key]; ok && prev != h {
					mismatched[o.resp.Key] = true
				} else {
					planHash[o.resp.Key] = h
				}
			}
			if o.resp.Stale {
				r.Stale++
			}
		case o.status == http.StatusUnprocessableEntity:
			r.Infeasible++
			r.ByStatus["422"]++
		case o.status == http.StatusTooManyRequests:
			r.Shed++
			r.ByStatus["429"]++
		case o.status == 0:
			r.Errors++
			r.ByStatus["transport_error"]++
		default:
			r.Errors++
			r.ByStatus[fmt.Sprintf("%d", o.status)]++
		}
	}
	if r.Served > 0 {
		r.HitRatio = float64(r.CacheHits) / float64(r.Served)
	}
	r.DistinctKeys = len(planHash) // degraded-only keys excluded by design
	for k := range mismatched {
		r.PlanMismatches = append(r.PlanMismatches, k)
	}
	sort.Strings(r.PlanMismatches)
	if len(lat) > 0 {
		sort.Float64s(lat)
		r.LatencyP50S = percentile(lat, 0.50)
		r.LatencyP95S = percentile(lat, 0.95)
		r.LatencyP99S = percentile(lat, 0.99)
		r.LatencyMaxS = lat[len(lat)-1]
	}
	if len(r.BySource) == 0 {
		r.BySource = nil
	}
	r.Phases = split.reports()
	return r
}

// phaseSplit attributes requests to phases by planned send time. An
// implicit "pre" phase at Start 0 catches requests scheduled before the
// first configured phase; phases are matched by binary search over the
// sorted starts.
type phaseSplit struct {
	starts  []time.Duration
	buckets []*phaseBucket
}

type phaseBucket struct {
	rep PhaseReport
	lat []float64
}

func newPhaseSplit(phases []LoadPhase) *phaseSplit {
	if len(phases) == 0 {
		return &phaseSplit{}
	}
	sorted := append([]LoadPhase(nil), phases...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	if sorted[0].Start > 0 {
		sorted = append([]LoadPhase{{Name: "pre", Start: 0}}, sorted...)
	}
	s := &phaseSplit{}
	for _, p := range sorted {
		s.starts = append(s.starts, p.Start)
		s.buckets = append(s.buckets, &phaseBucket{rep: PhaseReport{Name: p.Name, StartS: p.Start.Seconds()}})
	}
	return s
}

func (s *phaseSplit) phaseFor(at time.Duration) *phaseBucket {
	if len(s.buckets) == 0 {
		return nil
	}
	// Last phase with Start <= at.
	i := sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > at }) - 1
	if i < 0 {
		i = 0
	}
	return s.buckets[i]
}

func (s *phaseSplit) reports() []PhaseReport {
	if len(s.buckets) == 0 {
		return nil
	}
	out := make([]PhaseReport, len(s.buckets))
	for i, b := range s.buckets {
		if len(b.lat) > 0 {
			sort.Float64s(b.lat)
			b.rep.LatencyP50S = percentile(b.lat, 0.50)
			b.rep.LatencyP99S = percentile(b.lat, 0.99)
			b.rep.LatencyMaxS = b.lat[len(b.lat)-1]
		}
		out[i] = b.rep
	}
	return out
}

// percentile reads the p-quantile from a sorted sample with the
// standard nearest-rank rule, rank = ceil(p·n): the smallest value with
// at least a p-fraction of the sample at or below it. Clamps keep
// degenerate inputs (p<=0, p>1) in bounds.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
