package cluster

import (
	"sync"
	"time"
)

// This file is the fleet's failure detector: a per-peer health state
// machine driven by probe observations (dedicated /healthz probes plus
// piggybacked gossip and forward outcomes). The detector is purely
// local — no peer ever votes on another peer's health — because the
// serving layer only needs a LIVE VIEW of the static ring to route
// around trouble, not consensus: a complete plan is a deterministic
// function of its key, so two replicas that briefly disagree about who
// is alive can at worst both solve the same key and produce identical
// bytes.
//
// State machine, per peer:
//
//	alive --SuspectAfter consecutive failures--> suspect
//	alive/suspect --DeadAfter consecutive failures--> dead
//	suspect --1 success--> alive
//	dead --RecoverAfter consecutive successes--> alive   (probation)
//
// Suspect exists so one dropped probe (GC pause, packet loss) downgrades
// routing preference without declaring the peer dead; probation keeps a
// flapping peer from being re-admitted (and flooded with hint replays)
// on its first lucky probe.

// Health states.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// Detector thresholds; zero values select the defaults.
const (
	DefaultSuspectAfter = 2
	DefaultDeadAfter    = 4
	DefaultRecoverAfter = 2
)

// maxTransitionLog bounds the detector's global transition timeline
// (oldest entries are dropped) — enough to reconstruct a churn soak,
// small enough to serve inline from a status endpoint.
const maxTransitionLog = 512

// DetectorConfig tunes the failure detector's state machine.
type DetectorConfig struct {
	// SuspectAfter is the consecutive-failure count that moves an alive
	// peer to suspect (default DefaultSuspectAfter).
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that moves a peer to
	// dead (default DefaultDeadAfter; clamped to >= SuspectAfter).
	DeadAfter int
	// RecoverAfter is the consecutive-success count a DEAD peer must
	// accumulate before re-admission to alive — the probation window
	// (default DefaultRecoverAfter). A suspect peer recovers on its
	// first success.
	RecoverAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = DefaultDeadAfter
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = DefaultRecoverAfter
	}
	return c
}

// PeerHealth is one peer's externally visible health snapshot.
type PeerHealth struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	// Recovering marks a dead peer inside its probation window: probes
	// are succeeding but fewer than RecoverAfter in a row so far.
	Recovering bool `json:"recovering,omitempty"`
	// ConsecFails / ConsecOKs are the current streaks feeding the state
	// machine.
	ConsecFails int `json:"consec_fails,omitempty"`
	ConsecOKs   int `json:"consec_oks,omitempty"`
	// Transitions counts this peer's state changes since startup.
	Transitions uint64 `json:"transitions"`
	// LastProbeUnixS / LastProbeLatencyS describe the most recent
	// observation (0 = never observed).
	LastProbeUnixS    float64 `json:"last_probe_unix_s,omitempty"`
	LastProbeLatencyS float64 `json:"last_probe_latency_s,omitempty"`
	// LastChangeUnixS is when the peer last changed state.
	LastChangeUnixS float64 `json:"last_change_unix_s,omitempty"`
}

// HealthTransition is one entry of the detector's timeline log.
type HealthTransition struct {
	Peer    string  `json:"peer"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	AtUnixS float64 `json:"at_unix_s"`
}

type peerHealth struct {
	state       string
	consecFails int
	consecOKs   int
	transitions uint64
	lastProbe   time.Time
	lastLatency time.Duration
	lastChange  time.Time
}

// Detector is the thread-safe per-peer health state machine. Peers are
// registered up front (NewDetector) or lazily on first observation;
// unknown peers are alive until observed otherwise.
type Detector struct {
	cfg DetectorConfig

	mu    sync.Mutex
	peers map[string]*peerHealth
	log   []HealthTransition
}

// NewDetector builds a detector over the given peers (all initially
// alive).
func NewDetector(peers []string, cfg DetectorConfig) *Detector {
	d := &Detector{cfg: cfg.withDefaults(), peers: make(map[string]*peerHealth, len(peers))}
	for _, p := range peers {
		d.peers[p] = &peerHealth{state: StateAlive}
	}
	return d
}

func (d *Detector) peerLocked(peer string) *peerHealth {
	ph, ok := d.peers[peer]
	if !ok {
		ph = &peerHealth{state: StateAlive}
		d.peers[peer] = ph
	}
	return ph
}

// Observe folds one probe outcome into peer's state machine and returns
// the resulting state plus whether this observation caused a
// transition. Callers use the (StateAlive, true) return to trigger
// hinted-handoff replay exactly once per recovery.
func (d *Detector) Observe(peer string, ok bool, latency time.Duration) (state string, transitioned bool) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	ph := d.peerLocked(peer)
	ph.lastProbe = now
	ph.lastLatency = latency
	prev := ph.state
	if ok {
		ph.consecFails = 0
		ph.consecOKs++
		switch ph.state {
		case StateSuspect:
			ph.state = StateAlive
		case StateDead:
			if ph.consecOKs >= d.cfg.RecoverAfter {
				ph.state = StateAlive
			}
		}
	} else {
		ph.consecOKs = 0
		ph.consecFails++
		switch {
		case ph.consecFails >= d.cfg.DeadAfter:
			ph.state = StateDead
		case ph.consecFails >= d.cfg.SuspectAfter && ph.state == StateAlive:
			ph.state = StateSuspect
		}
	}
	if ph.state != prev {
		ph.transitions++
		ph.lastChange = now
		d.log = append(d.log, HealthTransition{
			Peer: peer, From: prev, To: ph.state, AtUnixS: float64(now.UnixNano()) / 1e9,
		})
		if len(d.log) > maxTransitionLog {
			d.log = append(d.log[:0], d.log[len(d.log)-maxTransitionLog:]...)
		}
		return ph.state, true
	}
	return ph.state, false
}

// State returns peer's current state (alive for never-observed peers).
func (d *Detector) State(peer string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ph, ok := d.peers[peer]; ok {
		return ph.state
	}
	return StateAlive
}

// Down reports whether peer should be routed around (suspect or dead).
func (d *Detector) Down(peer string) bool { return d.State(peer) != StateAlive }

// Counts returns how many registered peers are in each state.
func (d *Detector) Counts() (alive, suspect, dead int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ph := range d.peers {
		switch ph.state {
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		default:
			alive++
		}
	}
	return
}

// Health returns peer's full snapshot.
func (d *Detector) Health(peer string) PeerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	ph, ok := d.peers[peer]
	if !ok {
		return PeerHealth{Peer: peer, State: StateAlive}
	}
	out := PeerHealth{
		Peer:        peer,
		State:       ph.state,
		Recovering:  ph.state == StateDead && ph.consecOKs > 0,
		ConsecFails: ph.consecFails,
		ConsecOKs:   ph.consecOKs,
		Transitions: ph.transitions,
	}
	if !ph.lastProbe.IsZero() {
		out.LastProbeUnixS = float64(ph.lastProbe.UnixNano()) / 1e9
		out.LastProbeLatencyS = ph.lastLatency.Seconds()
	}
	if !ph.lastChange.IsZero() {
		out.LastChangeUnixS = float64(ph.lastChange.UnixNano()) / 1e9
	}
	return out
}

// Timeline returns a copy of the bounded transition log, oldest first —
// the per-peer health timeline the churn soak uploads as a CI artifact.
func (d *Detector) Timeline() []HealthTransition {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]HealthTransition(nil), d.log...)
}
