package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func entry(i int) Entry {
	return Entry{
		Key:          fmt.Sprintf(`{"platform":{"rows":%d,"cols":1},"tmax_c":65}`, i+1),
		Plan:         []byte(fmt.Sprintf(`{"throughput":%d.5}`, i)),
		BornUnixNano: int64(1000 + i),
	}
}

func TestMemStorePutGetValidation(t *testing.T) {
	st := NewMemStore(8)
	e := entry(0)
	if !st.Put(e) {
		t.Fatal("valid entry rejected")
	}
	if st.Put(e) {
		t.Fatal("duplicate key accepted (first-write-wins violated)")
	}
	got, ok := st.Get(e.Key)
	if !ok || !bytes.Equal(got.Plan, e.Plan) || got.BornUnixNano != e.BornUnixNano {
		t.Fatalf("get mismatch: %+v", got)
	}
	// The incumbent's bytes survive a conflicting Put.
	if st.Put(Entry{Key: e.Key, Plan: []byte("other")}) {
		t.Fatal("conflicting Put accepted")
	}
	got, _ = st.Get(e.Key)
	if !bytes.Equal(got.Plan, e.Plan) {
		t.Fatal("conflicting Put replaced the incumbent")
	}

	bad := []Entry{
		{Key: "", Plan: []byte("x")},
		{Key: "k", Plan: nil},
		{Key: strings.Repeat("k", MaxKeyBytes+1), Plan: []byte("x")},
		{Key: "k", Plan: bytes.Repeat([]byte("x"), MaxPlanBytes+1)},
	}
	for i, e := range bad {
		if e.Validate() == nil {
			t.Fatalf("bad entry %d passed Validate", i)
		}
		if st.Put(e) {
			t.Fatalf("bad entry %d accepted", i)
		}
	}
	if st.Len() != 1 {
		t.Fatalf("store len %d, want 1", st.Len())
	}
}

func TestMemStoreFIFOEviction(t *testing.T) {
	st := NewMemStore(3)
	for i := 0; i < 5; i++ {
		if !st.Put(entry(i)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	if st.Len() != 3 {
		t.Fatalf("len %d, want cap 3", st.Len())
	}
	for i := 0; i < 2; i++ { // oldest two evicted
		if _, ok := st.Get(entry(i).Key); ok {
			t.Fatalf("entry %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := st.Get(entry(i).Key); !ok {
			t.Fatalf("entry %d evicted out of order", i)
		}
	}
}

func TestMemStoreImmutableAndSorted(t *testing.T) {
	st := NewMemStore(0)
	plan := []byte(`{"v":1}`)
	st.Put(Entry{Key: "b", Plan: plan})
	st.Put(Entry{Key: "a", Plan: []byte(`{"v":2}`)})
	plan[1] = 'X' // caller mutates its buffer after Put
	got, _ := st.Get("b")
	if !bytes.Equal(got.Plan, []byte(`{"v":1}`)) {
		t.Fatal("store aliased the caller's plan buffer")
	}
	ents := st.Entries()
	if len(ents) != 2 || ents[0].Key != "a" || ents[1].Key != "b" {
		t.Fatalf("entries not key-sorted: %+v", ents)
	}
	d := st.Digest()
	if len(d) != 2 || d["b"] != PlanHash([]byte(`{"v":1}`)) {
		t.Fatalf("digest mismatch: %v", d)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := NewMemStore(0)
	for i := 0; i < 7; i++ {
		st.Put(entry(i))
	}
	b, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewMemStore(0)
	n, err := Restore(st2, b)
	if err != nil || n != 7 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	if !Converged(st.Digest(), st2.Digest()) {
		t.Fatal("restored store diverges from the original")
	}
	// Canonical: converged stores export byte-identical snapshots.
	b2, err := EncodeSnapshot(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("snapshot encoding is not canonical across stores")
	}
	// Restoring into a warm store only adds what is missing.
	st3 := NewMemStore(0)
	st3.Put(entry(0))
	if n, err := Restore(st3, b); err != nil || n != 6 {
		t.Fatalf("warm restore: n=%d err=%v", n, err)
	}
}

func TestDecodeSnapshotStrict(t *testing.T) {
	cases := map[string]string{
		"garbage":        `not json`,
		"trailing":       `{"version":1,"entries":[]}{"x":1}`,
		"unknown field":  `{"version":1,"entries":[],"extra":true}`,
		"bad version":    `{"version":2,"entries":[]}`,
		"empty key":      `{"version":1,"entries":[{"key":"","plan":"eA=="}]}`,
		"no plan":        `{"version":1,"entries":[{"key":"k"}]}`,
		"duplicate keys": `{"version":1,"entries":[{"key":"k","plan":"eA=="},{"key":"k","plan":"eA=="}]}`,
	}
	for name, body := range cases {
		if _, err := DecodeSnapshot([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %q", name, body)
		}
	}
	if got, err := DecodeSnapshot([]byte(`{"version":1,"entries":[]}`)); err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot: %v %v", got, err)
	}
}

func TestDecodeSyncRequestStrict(t *testing.T) {
	cases := map[string]string{
		"garbage":           `[`,
		"trailing":          `{}{}`,
		"unknown field":     `{"bogus":1}`,
		"empty digest key":  `{"digest":{"":"abcd"}}`,
		"empty digest hash": `{"digest":{"k":""}}`,
		"bad entry":         `{"entries":[{"key":"","plan":"eA=="}]}`,
	}
	for name, body := range cases {
		if _, err := DecodeSyncRequest([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %q", name, body)
		}
	}
	req, err := DecodeSyncRequest([]byte(`{"from":"a","digest":{"k":"abcd"}}`))
	if err != nil || req.From != "a" || req.Digest["k"] != "abcd" {
		t.Fatalf("valid request rejected: %+v %v", req, err)
	}
}

// Two stores with disjoint-and-overlapping contents converge in one
// pull-push round, in both directions.
func TestHandleSyncConvergence(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	for i := 0; i < 6; i++ {
		a.Put(entry(i))
	}
	for i := 4; i < 10; i++ {
		b.Put(entry(i))
	}

	// Pull phase: A sends its digest to B.
	resp := HandleSync(b, SyncRequest{From: "a", Digest: a.Digest()})
	if len(resp.Entries) != 4 { // entries 6..9
		t.Fatalf("pull returned %d entries, want 4", len(resp.Entries))
	}
	if len(resp.Want) != 4 { // entries 0..3
		t.Fatalf("want list has %d keys, want 4", len(resp.Want))
	}
	for _, e := range resp.Entries {
		a.Put(e)
	}
	// Push phase: A sends what B asked for.
	push := HandleSync(b, SyncRequest{From: "a", Entries: MissingEntries(a, resp.Want)})
	if push.Applied != 4 {
		t.Fatalf("push applied %d, want 4", push.Applied)
	}
	if !Converged(a.Digest(), b.Digest()) {
		t.Fatal("stores did not converge after one round")
	}
	// Converged stores: a further round is a no-op.
	resp = HandleSync(b, SyncRequest{From: "a", Digest: a.Digest()})
	if len(resp.Entries) != 0 || len(resp.Want) != 0 || resp.Applied != 0 {
		t.Fatalf("converged round not a no-op: %+v", resp)
	}
}
