package cluster

import "sync"

// Hinted handoff: when a replication write targets a peer the detector
// currently considers down, the write's KEY is queued here instead of
// vanishing; when the peer is re-admitted the queued keys are resolved
// back to entries through the local PlanStore and pushed in one
// push-only sync round. Queuing keys rather than plan bytes keeps the
// queue's memory footprint tiny and bounded — the bytes already live in
// the local store (which may itself be the crash-safe file backend, so
// hints survive exactly as long as the data they point at). A key whose
// entry was evicted before replay is simply skipped: anti-entropy is
// the backstop for that tail.
//
// Each per-peer queue is a FIFO of at most cap keys with O(1) dedup;
// overflow drops the OLDEST hint (the newest write is the one most
// worth replaying fast, and the dropped key still converges via
// gossip). Drops are counted so the soak can assert the bound was never
// silently hit.

// DefaultHintCap is the default per-peer bound on queued hint keys.
const DefaultHintCap = 1024

// HintStats are lifetime counters for one HintQueue.
type HintStats struct {
	// Queued counts hints accepted (dedup'd re-adds not included).
	Queued uint64 `json:"queued"`
	// Dropped counts oldest-first overflow evictions.
	Dropped uint64 `json:"dropped"`
	// Replayed counts keys handed out via Take and not requeued.
	Replayed uint64 `json:"replayed"`
	// Backlog is the current total queued keys across all peers.
	Backlog int `json:"backlog"`
}

type peerHints struct {
	keys []string
	seen map[string]struct{}
}

// HintQueue is a thread-safe, per-peer bounded queue of plan keys
// awaiting replay.
type HintQueue struct {
	cap int

	mu       sync.Mutex
	peers    map[string]*peerHints
	queued   uint64
	dropped  uint64
	replayed uint64
}

// NewHintQueue builds a queue with the given per-peer cap (<=0 selects
// DefaultHintCap).
func NewHintQueue(capPerPeer int) *HintQueue {
	if capPerPeer <= 0 {
		capPerPeer = DefaultHintCap
	}
	return &HintQueue{cap: capPerPeer, peers: make(map[string]*peerHints)}
}

// Cap returns the per-peer bound.
func (q *HintQueue) Cap() int { return q.cap }

// Add queues key for peer. Re-adding a queued key is a no-op; at cap,
// the oldest hint is dropped to admit the new one.
func (q *HintQueue) Add(peer, key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ph, ok := q.peers[peer]
	if !ok {
		ph = &peerHints{seen: make(map[string]struct{})}
		q.peers[peer] = ph
	}
	if _, dup := ph.seen[key]; dup {
		return
	}
	if len(ph.keys) >= q.cap {
		oldest := ph.keys[0]
		ph.keys = ph.keys[1:]
		delete(ph.seen, oldest)
		q.dropped++
	}
	ph.keys = append(ph.keys, key)
	ph.seen[key] = struct{}{}
	q.queued++
}

// Take drains and returns all queued keys for peer, oldest first. The
// caller replays them; keys that fail to reach the peer should be
// handed back via Requeue so they are not counted as replayed.
func (q *HintQueue) Take(peer string) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	ph, ok := q.peers[peer]
	if !ok || len(ph.keys) == 0 {
		return nil
	}
	keys := ph.keys
	delete(q.peers, peer)
	q.replayed += uint64(len(keys))
	return keys
}

// Requeue returns keys taken via Take that could not be delivered
// (oldest first), undoing their replayed accounting. Requeued keys do
// not re-count as Queued; cap overflow still drops oldest-first.
func (q *HintQueue) Requeue(peer string, keys []string) {
	if len(keys) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.replayed >= uint64(len(keys)) {
		q.replayed -= uint64(len(keys))
	} else {
		q.replayed = 0
	}
	ph, ok := q.peers[peer]
	if !ok {
		ph = &peerHints{seen: make(map[string]struct{})}
		q.peers[peer] = ph
	}
	for _, k := range keys {
		if _, dup := ph.seen[k]; dup {
			continue
		}
		if len(ph.keys) >= q.cap {
			oldest := ph.keys[0]
			ph.keys = ph.keys[1:]
			delete(ph.seen, oldest)
			q.dropped++
		}
		ph.keys = append(ph.keys, k)
		ph.seen[k] = struct{}{}
	}
}

// Pending returns how many keys are queued for peer.
func (q *HintQueue) Pending(peer string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ph, ok := q.peers[peer]; ok {
		return len(ph.keys)
	}
	return 0
}

// Stats returns lifetime counters plus the current backlog.
func (q *HintQueue) Stats() HintStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := HintStats{Queued: q.queued, Dropped: q.dropped, Replayed: q.replayed}
	for _, ph := range q.peers {
		s.Backlog += len(ph.keys)
	}
	return s
}
