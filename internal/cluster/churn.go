package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Seed-pinned churn schedules: the rolling-restart script that both the
// `thermosc-load -churn` flag and the Go churn soak replay. Like the
// load schedule, a churn schedule is a pure function of its inputs —
// a failing run names a seed and replays exactly.

// Churn event kinds.
const (
	ChurnKill    = "kill"
	ChurnRestart = "restart"
)

// ChurnEvent is one scripted fleet mutation: at offset At from the run
// start, kill or restart replica index Replica.
type ChurnEvent struct {
	At      time.Duration `json:"at_ns"`
	Kind    string        `json:"kind"`
	Replica int           `json:"replica"`
}

// ChurnSchedule builds a seed-pinned kill/restart script over a run of
// duration runDur against a fleet of `replicas` nodes: `cycles`
// kill-then-restart pairs, each confined to its own equal slice of the
// run (killed at 1/3 of the slice, restarted at 2/3), victims drawn
// from a seeded RNG with no immediate repeats. At most one replica is
// ever down at a time — the script models a rolling restart, not a
// correlated outage. Returns nil if the inputs can't fit a cycle.
func ChurnSchedule(seed int64, replicas, cycles int, runDur time.Duration) []ChurnEvent {
	if replicas < 1 || cycles < 1 || runDur <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	seg := runDur / time.Duration(cycles)
	events := make([]ChurnEvent, 0, 2*cycles)
	prev := -1
	for i := 0; i < cycles; i++ {
		victim := rng.Intn(replicas)
		if victim == prev && replicas > 1 {
			victim = (victim + 1) % replicas
		}
		prev = victim
		base := seg * time.Duration(i)
		events = append(events,
			ChurnEvent{At: base + seg/3, Kind: ChurnKill, Replica: victim},
			ChurnEvent{At: base + 2*seg/3, Kind: ChurnRestart, Replica: victim},
		)
	}
	return events
}

// RollingRestartSchedule scripts one kill+restart of EVERY replica in
// seeded order — the "rolling restart of every node" battery. Same
// slicing as ChurnSchedule with cycles = replicas, but the victim
// sequence is a seeded permutation, so each node goes down exactly
// once.
func RollingRestartSchedule(seed int64, replicas int, runDur time.Duration) []ChurnEvent {
	if replicas < 1 || runDur <= 0 {
		return nil
	}
	perm := rand.New(rand.NewSource(seed)).Perm(replicas)
	seg := runDur / time.Duration(replicas)
	events := make([]ChurnEvent, 0, 2*replicas)
	for i, victim := range perm {
		base := seg * time.Duration(i)
		events = append(events,
			ChurnEvent{At: base + seg/3, Kind: ChurnKill, Replica: victim},
			ChurnEvent{At: base + 2*seg/3, Kind: ChurnRestart, Replica: victim},
		)
	}
	return events
}

// PhasesFor converts a churn script into load-report phases: a "steady"
// phase from t=0, then one phase per event boundary, named after the
// event that opens it (e.g. "kill-1", "restart-1"). Feeding these to
// LoadConfig.Phases splits the report's error/latency accounting at
// exactly the instants the fleet changed shape.
func PhasesFor(events []ChurnEvent) []LoadPhase {
	phases := []LoadPhase{{Name: "steady", Start: 0}}
	sorted := append([]ChurnEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, ev := range sorted {
		phases = append(phases, LoadPhase{
			Name:  fmt.Sprintf("%s-%d", ev.Kind, ev.Replica),
			Start: ev.At,
		})
	}
	return phases
}
