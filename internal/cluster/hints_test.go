package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// FIFO order, dedup, and the Take/Stats accounting identity.
func TestHintQueueBasics(t *testing.T) {
	q := NewHintQueue(0)
	if q.Cap() != DefaultHintCap {
		t.Fatalf("default cap %d, want %d", q.Cap(), DefaultHintCap)
	}
	q.Add("peer", "k1")
	q.Add("peer", "k2")
	q.Add("peer", "k1") // dup: no-op
	q.Add("other", "k1")
	if got := q.Pending("peer"); got != 2 {
		t.Fatalf("pending %d, want 2 (dedup failed)", got)
	}
	st := q.Stats()
	if st.Queued != 3 || st.Dropped != 0 || st.Replayed != 0 || st.Backlog != 3 {
		t.Fatalf("stats %+v, want 3 queued / 3 backlog", st)
	}
	keys := q.Take("peer")
	if !reflect.DeepEqual(keys, []string{"k1", "k2"}) {
		t.Fatalf("take order %v, want FIFO [k1 k2]", keys)
	}
	if q.Pending("peer") != 0 || q.Pending("other") != 1 {
		t.Fatalf("pending after take: peer=%d other=%d", q.Pending("peer"), q.Pending("other"))
	}
	st = q.Stats()
	if st.Replayed != 2 || st.Backlog != 1 {
		t.Fatalf("post-take stats %+v", st)
	}
	if q.Take("peer") != nil || q.Take("nobody") != nil {
		t.Fatal("empty takes returned keys")
	}
	// A key taken once can be queued again (the peer died again).
	q.Add("peer", "k1")
	if q.Pending("peer") != 1 {
		t.Fatal("re-add after take rejected")
	}
}

// At the cap the queue drops the OLDEST hint and counts the drop; the
// newest writes always survive.
func TestHintQueueOverflowDropsOldest(t *testing.T) {
	q := NewHintQueue(3)
	for i := 0; i < 5; i++ {
		q.Add("p", fmt.Sprintf("k%d", i))
	}
	if got := q.Take("p"); !reflect.DeepEqual(got, []string{"k2", "k3", "k4"}) {
		t.Fatalf("survivors %v, want the 3 newest", got)
	}
	st := q.Stats()
	if st.Dropped != 2 || st.Queued != 5 {
		t.Fatalf("stats %+v, want 5 queued / 2 dropped", st)
	}
	// The bound is per peer: another peer has the full cap.
	q.Add("q", "x")
	if q.Stats().Dropped != 2 {
		t.Fatal("per-peer cap leaked across peers")
	}
}

// Requeue undoes the replayed accounting and restores the keys without
// re-counting them as queued — a failed replay must leave the lifetime
// counters exactly where a never-attempted replay would.
func TestHintQueueRequeueAccounting(t *testing.T) {
	q := NewHintQueue(10)
	q.Add("p", "a")
	q.Add("p", "b")
	keys := q.Take("p")
	if st := q.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed %d after take", st.Replayed)
	}
	q.Requeue("p", keys)
	st := q.Stats()
	if st.Replayed != 0 || st.Queued != 2 || st.Backlog != 2 {
		t.Fatalf("post-requeue stats %+v, want replayed back to 0, queued still 2", st)
	}
	if got := q.Take("p"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("requeued order %v", got)
	}
	// Requeue of nothing is a no-op; over-undo clamps at zero.
	q.Requeue("p", nil)
	q.Requeue("p", []string{"z1", "z2", "z3"})
	if st := q.Stats(); st.Replayed != 0 {
		t.Fatalf("replayed underflowed: %+v", st)
	}
}

// Requeue still honors the cap (a recovered-then-dead-again peer can
// have accumulated fresh hints while the replay batch was in flight).
func TestHintQueueRequeueRespectsCap(t *testing.T) {
	q := NewHintQueue(2)
	q.Add("p", "a")
	q.Add("p", "b")
	taken := q.Take("p")
	q.Add("p", "c") // fresh hint arrives mid-replay
	q.Requeue("p", taken)
	if got := q.Pending("p"); got != 2 {
		t.Fatalf("pending %d, want cap 2", got)
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("overflow during requeue not counted: %+v", q.Stats())
	}
}

// Concurrent producers/consumers must not race (run under -race).
func TestHintQueueConcurrent(t *testing.T) {
	q := NewHintQueue(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			peer := fmt.Sprintf("p%d", g%2)
			for i := 0; i < 200; i++ {
				q.Add(peer, fmt.Sprintf("g%d-k%d", g, i))
				if i%17 == 0 {
					q.Requeue(peer, q.Take(peer))
				}
				q.Pending(peer)
				q.Stats()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
