package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	rng := rand.New(rand.NewSource(42))
	for i := range keys {
		// Canonical request keys are JSON blobs; approximate their shape
		// with structured strings plus some seeded entropy.
		keys[i] = fmt.Sprintf(`{"platform":{"rows":%d,"cols":%d},"tmax_c":%d,"nonce":%d}`,
			1+i%16, 1+i%7, 40+i%50, rng.Int63())
	}
	return keys
}

var ringNodes = []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}

// Placement must be a pure function of the membership SET: node order,
// duplicates, and empties must not change any owner.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(ringNodes, 128)
	shuffled := []string{ringNodes[2], ringNodes[0], "", ringNodes[1], ringNodes[0]}
	b := NewRing(shuffled, 128)
	if got, want := a.Size(), 3; got != want {
		t.Fatalf("ring size %d, want %d", got, want)
	}
	for _, k := range testKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	for i, n := range a.Nodes() {
		if b.Nodes()[i] != n {
			t.Fatalf("membership differs: %v vs %v", a.Nodes(), b.Nodes())
		}
	}
}

// With 128 virtual points per node, 1k keys must spread across 3 nodes
// with the max share within 2x of the min share.
func TestRingBalance(t *testing.T) {
	r := NewRing(ringNodes, 128)
	counts := map[string]int{}
	keys := testKeys(1000)
	for _, k := range keys {
		owner := r.Owner(k)
		if !r.Contains(owner) {
			t.Fatalf("owner %q is not a ring member", owner)
		}
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("keys landed on %d of 3 nodes: %v", len(counts), counts)
	}
	minC, maxC := len(keys), 0
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC > 2*minC {
		t.Fatalf("imbalanced placement: shares %v (max %d > 2×min %d)", counts, maxC, minC)
	}
}

// Consistent hashing's defining property, exactly: adding a node only
// moves keys TO the new node; removing one only moves keys AWAY from
// it. The moved fraction must be near 1/n.
func TestRingChurnMovesOnlyExpectedKeys(t *testing.T) {
	keys := testKeys(1000)
	r3 := NewRing(ringNodes, 128)
	added := "http://10.0.0.4:8080"
	r4 := r3.WithNode(added)

	moved := 0
	for _, k := range keys {
		before, after := r3.Owner(k), r4.Owner(k)
		if before != after {
			if after != added {
				t.Fatalf("adding %q moved key to %q (not the new node)", added, after)
			}
			moved++
		}
	}
	// Expected share ≈ 1/4 of the keys; allow a wide deterministic band.
	if moved < 100 || moved > 450 {
		t.Fatalf("adding a 4th node moved %d/1000 keys (want ≈250)", moved)
	}

	back := r4.WithoutNode(added)
	for _, k := range keys {
		if back.Owner(k) != r3.Owner(k) {
			t.Fatalf("add+remove is not the identity for key %q", k)
		}
	}
	r2 := r3.WithoutNode(ringNodes[1])
	for _, k := range keys {
		before, after := r3.Owner(k), r2.Owner(k)
		if before == ringNodes[1] {
			if after == ringNodes[1] {
				t.Fatalf("removed node still owns key %q", k)
			}
		} else if before != after {
			t.Fatalf("removing %q moved key %q owned by %q", ringNodes[1], k, before)
		}
	}
}

// The live-view routing equivalence the self-healing layer rests on:
// OwnerSkipping with k down nodes must equal the owner on a ring with
// those k nodes REMOVED (WithoutNode applied k times), for every key.
// Point removal preserves the (hash, node)-sorted order of the
// surviving virtual points, so the equality is exact, not approximate.
func TestRingOwnerSkippingEqualsRemoval(t *testing.T) {
	keys := testKeys(500)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed)%4 // fleets of 2..5 nodes
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://10.1.%d.%d:8080", seed, i)
		}
		r := NewRing(nodes, 64)
		// Every subset of down nodes, including none and all.
		for mask := 0; mask < 1<<n; mask++ {
			down := make(map[string]bool)
			reduced := r
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					down[nodes[i]] = true
					reduced = reduced.WithoutNode(nodes[i])
				}
			}
			isDown := func(node string) bool { return down[node] }
			// Cheap shuffle of which keys we test per mask to keep the
			// subset sweep fast but seed-varied.
			for _, ki := range rng.Perm(len(keys))[:50] {
				k := keys[ki]
				got := r.OwnerSkipping(k, isDown)
				want := reduced.Owner(k)
				if got != want {
					t.Fatalf("seed %d mask %b key %q: OwnerSkipping=%q, removal ring owner=%q",
						seed, mask, k, got, want)
				}
			}
		}
	}
	// Degenerate predicates: nil skips nothing, everything-down yields "".
	r := NewRing(ringNodes, 64)
	for _, k := range keys[:20] {
		if r.OwnerSkipping(k, nil) != r.Owner(k) {
			t.Fatalf("nil predicate diverges from Owner for %q", k)
		}
		if got := r.OwnerSkipping(k, func(string) bool { return true }); got != "" {
			t.Fatalf("all-down ring returned owner %q", got)
		}
	}
	empty := NewRing(nil, 0)
	if got := empty.OwnerSkipping("k", nil); got != "" {
		t.Fatalf("empty ring OwnerSkipping = %q", got)
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if empty.Size() != 0 || empty.Contains("x") {
		t.Fatalf("empty ring reports membership")
	}
	single := NewRing([]string{"only"}, 0) // vnodes <= 0 → default
	for _, k := range testKeys(50) {
		if single.Owner(k) != "only" {
			t.Fatalf("single-node ring routed %q elsewhere", k)
		}
	}
	if r := single.WithNode("only"); r.Size() != 1 {
		t.Fatalf("re-adding a member changed the ring: %v", r.Nodes())
	}
	if r := single.WithoutNode("only"); r.Size() != 0 || r.Owner("k") != "" {
		t.Fatalf("removing the last node left owners behind")
	}
}
