package cluster

import (
	"fmt"
	"testing"
)

// observeN folds n identical observations for peer and returns the last
// (state, transitioned) pair.
func observeN(d *Detector, peer string, ok bool, n int) (string, bool) {
	var state string
	var trans bool
	for i := 0; i < n; i++ {
		state, trans = d.Observe(peer, ok, 0)
	}
	return state, trans
}

// The full state machine walk the detector exists for:
// alive → suspect → dead → (probation) → alive, with every transition
// reported exactly once.
func TestDetectorStateMachine(t *testing.T) {
	d := NewDetector([]string{"p"}, DetectorConfig{SuspectAfter: 2, DeadAfter: 4, RecoverAfter: 2})

	if d.State("p") != StateAlive || d.Down("p") {
		t.Fatalf("initial state %q down=%v, want alive/up", d.State("p"), d.Down("p"))
	}
	// One failure is a blip: still alive, no transition.
	if state, trans := d.Observe("p", false, 0); state != StateAlive || trans {
		t.Fatalf("after 1 failure: %q trans=%v, want alive/false", state, trans)
	}
	// The second consecutive failure crosses SuspectAfter.
	if state, trans := d.Observe("p", false, 0); state != StateSuspect || !trans {
		t.Fatalf("after 2 failures: %q trans=%v, want suspect/true", state, trans)
	}
	if !d.Down("p") {
		t.Fatal("suspect peer not reported down")
	}
	// Third failure: still suspect, no new transition.
	if state, trans := d.Observe("p", false, 0); state != StateSuspect || trans {
		t.Fatalf("after 3 failures: %q trans=%v, want suspect/false", state, trans)
	}
	// Fourth crosses DeadAfter.
	if state, trans := d.Observe("p", false, 0); state != StateDead || !trans {
		t.Fatalf("after 4 failures: %q trans=%v, want dead/true", state, trans)
	}

	// Probation: a single success does NOT re-admit a dead peer, but it
	// is visible as "recovering".
	if state, trans := d.Observe("p", true, 0); state != StateDead || trans {
		t.Fatalf("first success after death: %q trans=%v, want dead/false (probation)", state, trans)
	}
	if h := d.Health("p"); !h.Recovering || h.ConsecOKs != 1 {
		t.Fatalf("probation snapshot: %+v, want recovering with 1 consecutive OK", h)
	}
	// A failure during probation resets the streak.
	if state, _ := d.Observe("p", false, 0); state != StateDead {
		t.Fatalf("failure during probation: %q, want dead", state)
	}
	if h := d.Health("p"); h.Recovering || h.ConsecOKs != 0 {
		t.Fatalf("post-probation-failure snapshot: %+v, want streak reset", h)
	}
	// RecoverAfter consecutive successes re-admit, reported once.
	if state, trans := d.Observe("p", true, 0); state != StateDead || trans {
		t.Fatalf("probation success 1: %q trans=%v", state, trans)
	}
	if state, trans := d.Observe("p", true, 0); state != StateAlive || !trans {
		t.Fatalf("probation success 2: %q trans=%v, want alive/true", state, trans)
	}
	if d.Down("p") {
		t.Fatal("recovered peer still reported down")
	}
}

// A suspect peer recovers on its FIRST success — suspect models a blip,
// not a death, so no probation applies.
func TestDetectorSuspectRecoversImmediately(t *testing.T) {
	d := NewDetector([]string{"p"}, DetectorConfig{SuspectAfter: 2, DeadAfter: 4, RecoverAfter: 3})
	observeN(d, "p", false, 2)
	if d.State("p") != StateSuspect {
		t.Fatalf("state %q, want suspect", d.State("p"))
	}
	if state, trans := d.Observe("p", true, 0); state != StateAlive || !trans {
		t.Fatalf("suspect + 1 success: %q trans=%v, want alive/true", state, trans)
	}
	// And the failure streak restarts from zero: it takes SuspectAfter
	// NEW failures to suspect again.
	if state, _ := d.Observe("p", false, 0); state != StateAlive {
		t.Fatalf("one failure after recovery: %q, want alive", state)
	}
}

// Defaults and clamping: zero config selects the documented defaults,
// and DeadAfter can never undercut SuspectAfter.
func TestDetectorConfigDefaults(t *testing.T) {
	cfg := DetectorConfig{}.withDefaults()
	if cfg.SuspectAfter != DefaultSuspectAfter || cfg.DeadAfter != DefaultDeadAfter || cfg.RecoverAfter != DefaultRecoverAfter {
		t.Fatalf("defaults: %+v", cfg)
	}
	clamped := DetectorConfig{SuspectAfter: 5, DeadAfter: 2}.withDefaults()
	if clamped.DeadAfter != 5 {
		t.Fatalf("DeadAfter %d not clamped up to SuspectAfter 5", clamped.DeadAfter)
	}
	// With defaults, a peer walks alive→suspect at 2 and →dead at 4.
	d := NewDetector([]string{"p"}, DetectorConfig{})
	if state, _ := observeN(d, "p", false, DefaultSuspectAfter); state != StateSuspect {
		t.Fatalf("default suspect threshold: %q", state)
	}
	if state, _ := observeN(d, "p", false, DefaultDeadAfter-DefaultSuspectAfter); state != StateDead {
		t.Fatalf("default dead threshold: %q", state)
	}
}

// Counts, unknown peers, and lazy registration.
func TestDetectorCountsAndUnknownPeers(t *testing.T) {
	d := NewDetector([]string{"a", "b", "c"}, DetectorConfig{SuspectAfter: 1, DeadAfter: 2})
	if a, s, x := d.Counts(); a != 3 || s != 0 || x != 0 {
		t.Fatalf("initial counts %d/%d/%d", a, s, x)
	}
	observeN(d, "a", false, 1) // suspect
	observeN(d, "b", false, 2) // dead
	if a, s, x := d.Counts(); a != 1 || s != 1 || x != 1 {
		t.Fatalf("counts %d/%d/%d, want 1/1/1", a, s, x)
	}
	// Unknown peers read alive and don't register...
	if d.State("ghost") != StateAlive || d.Down("ghost") {
		t.Fatal("unknown peer not optimistically alive")
	}
	if h := d.Health("ghost"); h.State != StateAlive || h.Transitions != 0 {
		t.Fatalf("unknown peer snapshot: %+v", h)
	}
	if a, _, _ := d.Counts(); a != 1 {
		t.Fatal("reading an unknown peer registered it")
	}
	// ...until observed, which registers them lazily.
	observeN(d, "ghost", false, 1)
	if a, s, _ := d.Counts(); a != 1 || s != 2 {
		t.Fatalf("lazy registration counts %d alive %d suspect", a, s)
	}
}

// The transition timeline records every state change in order and stays
// bounded at maxTransitionLog entries (oldest dropped).
func TestDetectorTimelineBounded(t *testing.T) {
	d := NewDetector([]string{"p"}, DetectorConfig{SuspectAfter: 1, DeadAfter: 1, RecoverAfter: 1})
	// Each flap cycle is two transitions: alive→dead, dead→alive.
	for i := 0; i < maxTransitionLog; i++ {
		d.Observe("p", false, 0)
		d.Observe("p", true, 0)
	}
	tl := d.Timeline()
	if len(tl) != maxTransitionLog {
		t.Fatalf("timeline length %d, want bound %d", len(tl), maxTransitionLog)
	}
	for i, tr := range tl {
		if tr.Peer != "p" {
			t.Fatalf("entry %d peer %q", i, tr.Peer)
		}
		want := StateDead
		if i%2 == 1 {
			want = StateAlive
		}
		if tr.To != want {
			t.Fatalf("entry %d: %s→%s, want →%s (flap order lost)", i, tr.From, tr.To, want)
		}
		if i > 0 && tr.AtUnixS < tl[i-1].AtUnixS {
			t.Fatalf("timeline not chronological at %d", i)
		}
	}
	// Transition counter survives the log truncation.
	if h := d.Health("p"); h.Transitions != 2*maxTransitionLog {
		t.Fatalf("transitions %d, want %d", h.Transitions, 2*maxTransitionLog)
	}
}

// Concurrent observers must not race or lose observations (run under
// -race in CI).
func TestDetectorConcurrentObserve(t *testing.T) {
	peers := make([]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("p%d", i)
	}
	d := NewDetector(peers, DetectorConfig{})
	done := make(chan struct{})
	for _, p := range peers {
		go func(p string) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				d.Observe(p, i%3 == 0, 0)
				d.State(p)
				d.Counts()
			}
		}(p)
	}
	for range peers {
		<-done
	}
	d.Timeline()
}
