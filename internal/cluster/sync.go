package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// The anti-entropy protocol. Replication is pull-push gossip over full
// key digests:
//
//  1. A sends B a SyncRequest carrying A's Digest (key → plan hash).
//  2. B applies nothing yet; it answers with the Entries B has that A's
//     digest lacks, and a Want list of keys A has that B lacks.
//  3. A stores the received entries, then (if Want was non-empty) sends
//     B a second SyncRequest carrying just those Entries; B stores them.
//
// One round therefore converges the PAIR in both directions with two
// messages. Rounds are cheap — a digest is ~50 bytes per entry — so
// replicas run them on a timer against peers in round-robin, and a
// 3-node cluster converges within two intervals of any write. Plans are
// deterministic per key, so conflicting hashes for the same key cannot
// occur between honest replicas; if they ever do (bit-rot, version
// skew), first-write-wins keeps each replica internally stable and the
// divergence stays visible in the digests instead of flapping.

// SyncRequest is one gossip message: a digest (pull phase), entries
// (push phase), or both.
type SyncRequest struct {
	// From identifies the sender (its ring node name); informational.
	From string `json:"from,omitempty"`
	// Digest is the sender's key → PlanHash map; the receiver answers
	// with what the sender is missing and asks for what it lacks itself.
	// Nil means "no pull" (a push-only message); an EMPTY map is a real
	// pull from an empty store and must survive the wire — hence no
	// omitempty (nil marshals as null, empty as {}).
	Digest map[string]string `json:"digest"`
	// Entries are pushed plans the receiver should store.
	Entries []Entry `json:"entries,omitempty"`
}

// SyncResponse answers one SyncRequest.
type SyncResponse struct {
	// Entries are the plans the receiver has and the sender's digest
	// lacked, sorted by key.
	Entries []Entry `json:"entries,omitempty"`
	// Want lists the keys in the sender's digest the receiver lacks,
	// sorted; the sender follows up with a push.
	Want []string `json:"want,omitempty"`
	// Applied is how many pushed entries were newly stored.
	Applied int `json:"applied"`
}

// DecodeSyncRequest strictly parses a gossip message: unknown fields,
// trailing data, oversized digests/entry lists, and invalid entries are
// all errors, and decoding never panics on arbitrary input.
func DecodeSyncRequest(b []byte) (SyncRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req SyncRequest
	if err := dec.Decode(&req); err != nil {
		return SyncRequest{}, fmt.Errorf("cluster: decoding sync request: %w", err)
	}
	if dec.More() {
		return SyncRequest{}, errors.New("cluster: trailing data after sync request")
	}
	if len(req.Digest) > MaxSyncEntries {
		return SyncRequest{}, fmt.Errorf("cluster: sync digest of %d keys exceeds the %d cap", len(req.Digest), MaxSyncEntries)
	}
	if len(req.Entries) > MaxSyncEntries {
		return SyncRequest{}, fmt.Errorf("cluster: sync push of %d entries exceeds the %d cap", len(req.Entries), MaxSyncEntries)
	}
	for k, h := range req.Digest {
		if k == "" || len(k) > MaxKeyBytes || h == "" || len(h) > 64 {
			return SyncRequest{}, errors.New("cluster: sync digest carries a malformed key or hash")
		}
	}
	for i, e := range req.Entries {
		if err := e.Validate(); err != nil {
			return SyncRequest{}, fmt.Errorf("cluster: sync entry %d: %w", i, err)
		}
	}
	return req, nil
}

// HandleSync applies one gossip message against the local store and
// computes the reply. It is the pure protocol core — transport, auth,
// and counters live in the serving layer.
func HandleSync(st PlanStore, req SyncRequest) SyncResponse {
	var resp SyncResponse
	for _, e := range req.Entries {
		if st.Put(e) {
			resp.Applied++
		}
	}
	if req.Digest == nil {
		return resp
	}
	for _, e := range st.Entries() { // already key-sorted
		if _, ok := req.Digest[e.Key]; !ok {
			resp.Entries = append(resp.Entries, e)
		}
	}
	local := st.Digest()
	for k := range req.Digest {
		if _, ok := local[k]; !ok {
			resp.Want = append(resp.Want, k)
		}
	}
	sort.Strings(resp.Want)
	return resp
}

// MissingEntries returns the store's entries for the given keys (the
// push phase of a round), skipping keys the store no longer holds.
func MissingEntries(st PlanStore, keys []string) []Entry {
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		if e, ok := st.Get(k); ok {
			out = append(out, e)
		}
	}
	return out
}

// Converged reports whether two digests are identical — the
// anti-entropy fixed point.
func Converged(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, h := range a {
		if b[k] != h {
			return false
		}
	}
	return true
}
