package cluster

import (
	"bytes"
	"testing"
)

// FuzzPlanStoreSync proves the cluster's two network decode surfaces —
// warm-export snapshots and gossip sync messages — never panic on
// arbitrary bytes, and that accepted snapshots round-trip exactly:
// decode → restore → re-encode reproduces the canonical encoding of the
// decoded entries.
func FuzzPlanStoreSync(f *testing.F) {
	st := NewMemStore(0)
	for i := 0; i < 4; i++ {
		st.Put(entry(i))
	}
	if snap, err := EncodeSnapshot(st); err == nil {
		f.Add(snap)
	}
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"key":"k","plan":"eyJ2IjoxfQ==","born_unix_nano":12}]}`))
	f.Add([]byte(`{"from":"a","digest":{"k":"abcd1234"}}`))
	f.Add([]byte(`{"entries":[{"key":"k","plan":"eA=="}],"digest":{"q":"ffff"}}`))
	f.Add([]byte(`{"version":9,"entries":null}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":1,"entries":[{"key":"","plan":""}]}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		// Snapshot surface: decode must never panic; a successful decode
		// must restore and re-encode to the identical canonical bytes.
		if entries, err := DecodeSnapshot(b); err == nil {
			st := NewMemStore(0)
			for _, e := range entries {
				if !st.Put(e) {
					t.Fatalf("decoded snapshot entry rejected by the store: %+v", e)
				}
			}
			if st.Len() != len(entries) {
				t.Fatalf("restore dropped entries: %d of %d", st.Len(), len(entries))
			}
			enc, err := EncodeSnapshot(st)
			if err != nil {
				t.Fatalf("re-encoding a decoded snapshot: %v", err)
			}
			back, err := DecodeSnapshot(enc)
			if err != nil {
				t.Fatalf("canonical snapshot does not decode: %v", err)
			}
			if len(back) != len(entries) {
				t.Fatalf("round trip changed the entry count: %d vs %d", len(back), len(entries))
			}
			byKey := make(map[string]Entry, len(entries))
			for _, e := range entries {
				byKey[e.Key] = e
			}
			for _, e := range back {
				orig, ok := byKey[e.Key]
				if !ok || !bytes.Equal(orig.Plan, e.Plan) || orig.BornUnixNano != e.BornUnixNano {
					t.Fatalf("round trip mutated entry %q", shortKey(e.Key))
				}
			}
			enc2, err := EncodeSnapshot(st)
			if err != nil || !bytes.Equal(enc, enc2) {
				t.Fatal("canonical encoding is not stable")
			}
		}

		// Gossip surface: decode + protocol application must never panic.
		if req, err := DecodeSyncRequest(b); err == nil {
			st := NewMemStore(8)
			st.Put(entry(0))
			resp := HandleSync(st, req)
			if resp.Applied < 0 || resp.Applied > len(req.Entries) {
				t.Fatalf("applied %d of %d pushed entries", resp.Applied, len(req.Entries))
			}
			for _, e := range resp.Entries {
				if err := e.Validate(); err != nil {
					t.Fatalf("sync response carries an invalid entry: %v", err)
				}
			}
			HandleSync(st, SyncRequest{Entries: MissingEntries(st, resp.Want)})
		}
	})
}
