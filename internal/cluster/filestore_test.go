package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeBackends enumerates every PlanStore implementation; the
// conformance tests below run once per backend so a new store cannot
// drift from MemStore semantics silently.
func storeBackends(t *testing.T) map[string]func(t *testing.T, capacity int) PlanStore {
	return map[string]func(t *testing.T, capacity int) PlanStore{
		"mem": func(t *testing.T, capacity int) PlanStore { return NewMemStore(capacity) },
		"file": func(t *testing.T, capacity int) PlanStore {
			st, err := NewFileStore(filepath.Join(t.TempDir(), "plans.log"), capacity)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			return st
		},
	}
}

func TestPlanStoreConformancePutGetValidation(t *testing.T) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := mk(t, 8)
			e := entry(0)
			if !st.Put(e) {
				t.Fatal("valid entry rejected")
			}
			if st.Put(e) {
				t.Fatal("duplicate key accepted (first-write-wins violated)")
			}
			got, ok := st.Get(e.Key)
			if !ok || !bytes.Equal(got.Plan, e.Plan) || got.BornUnixNano != e.BornUnixNano {
				t.Fatalf("get mismatch: %+v", got)
			}
			if st.Put(Entry{Key: e.Key, Plan: []byte("other")}) {
				t.Fatal("conflicting Put accepted")
			}
			got, _ = st.Get(e.Key)
			if !bytes.Equal(got.Plan, e.Plan) {
				t.Fatal("conflicting Put replaced the incumbent")
			}
			bad := []Entry{
				{Key: "", Plan: []byte("x")},
				{Key: "k", Plan: nil},
				{Key: strings.Repeat("k", MaxKeyBytes+1), Plan: []byte("x")},
				{Key: "k", Plan: bytes.Repeat([]byte("x"), MaxPlanBytes+1)},
			}
			for i, e := range bad {
				if st.Put(e) {
					t.Fatalf("bad entry %d accepted", i)
				}
			}
			if st.Len() != 1 || st.Cap() != 8 {
				t.Fatalf("len %d cap %d, want 1/8", st.Len(), st.Cap())
			}
		})
	}
}

func TestPlanStoreConformanceFIFOEviction(t *testing.T) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := mk(t, 3)
			for i := 0; i < 5; i++ {
				if !st.Put(entry(i)) {
					t.Fatalf("put %d rejected", i)
				}
			}
			if st.Len() != 3 {
				t.Fatalf("len %d, want cap 3", st.Len())
			}
			for i := 0; i < 2; i++ {
				if _, ok := st.Get(entry(i).Key); ok {
					t.Fatalf("entry %d survived eviction", i)
				}
			}
			for i := 2; i < 5; i++ {
				if _, ok := st.Get(entry(i).Key); !ok {
					t.Fatalf("entry %d evicted out of order", i)
				}
			}
		})
	}
}

func TestPlanStoreConformanceImmutableSortedDigest(t *testing.T) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := mk(t, 0)
			plan := []byte(`{"v":1}`)
			st.Put(Entry{Key: "b", Plan: plan})
			st.Put(Entry{Key: "a", Plan: []byte(`{"v":2}`)})
			plan[1] = 'X' // caller mutates its buffer after Put
			got, _ := st.Get("b")
			if !bytes.Equal(got.Plan, []byte(`{"v":1}`)) {
				t.Fatal("store aliased the caller's plan buffer")
			}
			ents := st.Entries()
			if len(ents) != 2 || ents[0].Key != "a" || ents[1].Key != "b" {
				t.Fatalf("entries not key-sorted: %+v", ents)
			}
			d := st.Digest()
			if len(d) != 2 || d["b"] != PlanHash([]byte(`{"v":1}`)) {
				t.Fatalf("digest mismatch: %v", d)
			}
			if st.Cap() != DefaultStoreCap {
				t.Fatalf("cap %d, want default %d", st.Cap(), DefaultStoreCap)
			}
		})
	}
}

func TestPlanStoreConformanceSnapshotRoundTrip(t *testing.T) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := mk(t, 0)
			for i := 0; i < 7; i++ {
				st.Put(entry(i))
			}
			b, err := EncodeSnapshot(st)
			if err != nil {
				t.Fatal(err)
			}
			st2 := mk(t, 0)
			if n, err := Restore(st2, b); err != nil || n != 7 {
				t.Fatalf("restore: n=%d err=%v", n, err)
			}
			if !Converged(st.Digest(), st2.Digest()) {
				t.Fatal("restored store diverges from the original")
			}
			b2, err := EncodeSnapshot(st2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatal("snapshot encoding is not canonical across stores")
			}
		})
	}
}

// Cross-backend anti-entropy: a MemStore and a FileStore with partially
// overlapping contents converge through the same HandleSync path the
// gossip loop uses.
func TestPlanStoreConformanceSyncAcrossBackends(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "plans.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore(0)
	for i := 0; i < 6; i++ {
		ms.Put(entry(i))
	}
	for i := 4; i < 10; i++ {
		fs.Put(entry(i))
	}
	resp := HandleSync(fs, SyncRequest{From: "m", Digest: ms.Digest()})
	for _, e := range resp.Entries {
		ms.Put(e)
	}
	if push := HandleSync(fs, SyncRequest{From: "m", Entries: MissingEntries(ms, resp.Want)}); push.Applied != 4 {
		t.Fatalf("push applied %d, want 4", push.Applied)
	}
	if !Converged(ms.Digest(), fs.Digest()) {
		t.Fatal("mixed backends did not converge")
	}
}

// --- FileStore-specific durability behavior ---

// Reopening a log restores byte-identical entries.
func TestFileStoreReopenRestores(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	st, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if !st.Put(entry(i)) {
			t.Fatalf("put %d rejected", i)
		}
	}
	want := st.Digest()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !Converged(want, re.Digest()) {
		t.Fatal("reopened store diverges")
	}
	got, ok := re.Get(entry(3).Key)
	if !ok || !bytes.Equal(got.Plan, entry(3).Plan) || got.BornUnixNano != entry(3).BornUnixNano {
		t.Fatalf("restored entry mismatch: %+v", got)
	}
	// The reopened store keeps accepting writes.
	if !re.Put(entry(100)) {
		t.Fatal("reopened store rejected a fresh put")
	}
}

// Replay goes through the Put path, so a log longer than the cap
// reconstructs the exact FIFO end state, eviction order included.
func TestFileStoreReopenReplaysEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	st, err := NewFileStore(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Put(entry(i))
	}
	want := st.Digest()
	st.Close()
	re, err := NewFileStore(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 || !Converged(want, re.Digest()) {
		t.Fatalf("evicted replay diverges: len %d", re.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := re.Get(entry(i).Key); ok {
			t.Fatalf("evicted entry %d resurrected on replay", i)
		}
	}
}

// A torn final line (crash mid-append) is truncated away; everything
// before it survives, and the next Put appends cleanly.
func TestFileStoreTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	st, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(entry(0))
	st.Put(entry(1))
	st.Close()
	// Simulate a crash mid-write: append half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","pl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("len %d after torn-tail recovery, want 2", re.Len())
	}
	if _, ok := re.Get("torn"); ok {
		t.Fatal("torn record leaked into the store")
	}
	if !re.Put(entry(2)) {
		t.Fatal("post-recovery put rejected")
	}
	re.Close()
	re2, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 3 {
		t.Fatalf("len %d after second reopen, want 3", re2.Len())
	}
}

// Corruption BEFORE the tail is a hard error — never serve from a
// silently-partial store.
func TestFileStoreMidFileCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	st, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(entry(0))
	st.Put(entry(1))
	st.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("log has %d lines, want >=3", len(lines))
	}
	lines[1] = []byte("{broken json}\n") // first entry line
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(path, 0); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// A log whose header is wrong (different format or version) is a hard
// error; a torn header (crash during the very first write) resets to an
// empty store.
func TestFileStoreHeaderHandling(t *testing.T) {
	dir := t.TempDir()
	badHeader := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(badHeader, []byte(`{"format":"other","version":1,"cap":4}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(badHeader, 0); err == nil {
		t.Fatal("foreign header accepted")
	}

	torn := filepath.Join(dir, "torn.log")
	if err := os.WriteFile(torn, []byte(`{"format":"thermosc-pl`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := NewFileStore(torn, 0)
	if err != nil {
		t.Fatalf("torn header must reset, got %v", err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatalf("len %d after torn-header reset, want 0", st.Len())
	}
	if !st.Put(entry(0)) {
		t.Fatal("put after reset rejected")
	}
}

// Close is idempotent and stops writes; reads keep serving from memory.
func TestFileStoreCloseSemantics(t *testing.T) {
	st, err := NewFileStore(filepath.Join(t.TempDir(), "plans.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(entry(0))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if st.Put(entry(1)) {
		t.Fatal("put accepted after close")
	}
	if _, ok := st.Get(entry(0).Key); !ok {
		t.Fatal("read failed after close")
	}
}

// Concurrent writers against one FileStore stay race-clean and the log
// replays to the same digest.
func TestFileStoreConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	st, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				st.Put(Entry{Key: fmt.Sprintf("w%d-i%d", w, i), Plan: []byte("p")})
				st.Get(fmt.Sprintf("w%d-i%d", (w+1)%4, i))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	want := st.Digest()
	st.Close()
	re, err := NewFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !Converged(want, re.Digest()) {
		t.Fatal("concurrent log replay diverges")
	}
}
