package cluster

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Entry is one replicated plan: the full canonical request key and the
// serialized plan bytes. Only COMPLETE plans belong in the store — a
// complete plan is a deterministic function of its canonical key (the
// solvers are bit-reproducible and served plans zero their wall-clock
// field), which is what makes cross-replica byte-identity a testable
// invariant. Degraded plans are deadline-dependent and stay in each
// process's local LRU.
type Entry struct {
	Key  string `json:"key"`
	Plan []byte `json:"plan"`
	// BornUnixNano is when the plan was first solved (staleness input for
	// the serving layer's PlanTTL machinery). It is carried, not trusted:
	// replicas only use it to age entries, never to order writes —
	// first-write-wins suffices because plans are deterministic.
	BornUnixNano int64 `json:"born_unix_nano,omitempty"`
}

// Wire caps: a snapshot or sync payload exceeding these is rejected at
// decode, before any allocation proportional to the claimed size.
const (
	// MaxKeyBytes bounds one canonical request key (canonical platform
	// JSON for 256 cores with per-core scales is ~10 KiB; 64 KiB is
	// generous headroom).
	MaxKeyBytes = 64 << 10
	// MaxPlanBytes bounds one serialized plan (mirrors the server's 1 MiB
	// request-body cap).
	MaxPlanBytes = 1 << 20
	// MaxSyncEntries bounds the entries in one snapshot or sync message.
	MaxSyncEntries = 1 << 17
)

// Validate checks the structural invariants every store implementation
// and every network decode path enforces.
func (e Entry) Validate() error {
	if e.Key == "" {
		return errors.New("cluster: entry has an empty key")
	}
	if len(e.Key) > MaxKeyBytes {
		return fmt.Errorf("cluster: entry key of %d bytes exceeds the %d cap", len(e.Key), MaxKeyBytes)
	}
	if len(e.Plan) == 0 {
		return fmt.Errorf("cluster: entry %q has no plan bytes", shortKey(e.Key))
	}
	if len(e.Plan) > MaxPlanBytes {
		return fmt.Errorf("cluster: entry %q plan of %d bytes exceeds the %d cap", shortKey(e.Key), len(e.Plan), MaxPlanBytes)
	}
	return nil
}

func shortKey(k string) string {
	if len(k) > 32 {
		return k[:32] + "…"
	}
	return k
}

// PlanHash is the content fingerprint gossip digests compare: SHA-256
// of the plan bytes, truncated to 16 hex characters. Deterministic
// plans make hash equality equivalent to byte equality in practice.
func PlanHash(plan []byte) string {
	sum := sha256.Sum256(plan)
	return hex.EncodeToString(sum[:8])
}

// PlanStore is the pluggable replicated plan store. Implementations
// must be safe for concurrent use and must treat plans as immutable:
// Put keeps the incumbent when the key already exists (first-write-wins
// — complete plans for the same key are byte-identical by construction,
// so overwriting buys nothing and losing that property should be loud
// in tests, not silently papered over).
type PlanStore interface {
	// Get returns the entry for key, if present.
	Get(key string) (Entry, bool)
	// Put inserts an entry and reports whether it was newly added.
	// Invalid entries and duplicate keys return false.
	Put(e Entry) bool
	// Len returns the number of stored entries.
	Len() int
	// Entries returns every entry sorted by key (the snapshot and sync
	// source of truth).
	Entries() []Entry
	// Digest returns the key → PlanHash map anti-entropy rounds compare.
	Digest() map[string]string
	// Cap returns the store's entry capacity (FIFO eviction bound).
	Cap() int
}

// MemStore is the in-memory PlanStore: a mutex-guarded map with
// insertion-order (FIFO) eviction at cap. FIFO rather than LRU because
// the store is the replication substrate, not the hot cache — the
// server's LRU in front of it handles recency; the store just has to
// hold the fleet's working set deterministically.
type MemStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = oldest
	items map[string]*list.Element
}

type storeEntry struct{ e Entry }

// DefaultStoreCap is the entry cap used when NewMemStore is given
// cap <= 0.
const DefaultStoreCap = 4096

// NewMemStore builds an in-memory store holding at most cap entries
// (cap <= 0 selects DefaultStoreCap).
func NewMemStore(capacity int) *MemStore {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	return &MemStore{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Cap returns the store's entry capacity.
func (s *MemStore) Cap() int { return s.cap }

func (s *MemStore) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		return el.Value.(*storeEntry).e, true
	}
	return Entry{}, false
}

func (s *MemStore) Put(e Entry) bool {
	if e.Validate() != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[e.Key]; ok {
		return false // first write wins; see PlanStore
	}
	// Detach the plan bytes from the caller's buffer — entries are
	// immutable once stored.
	e.Plan = append([]byte(nil), e.Plan...)
	s.items[e.Key] = s.order.PushBack(&storeEntry{e: e})
	for s.order.Len() > s.cap {
		oldest := s.order.Front()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).e.Key)
	}
	return true
}

func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

func (s *MemStore) Entries() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (s *MemStore) Digest() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := make(map[string]string, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry).e
		d[e.Key] = PlanHash(e.Plan)
	}
	return d
}

// SnapshotVersion is the warm-export format version. Decoders reject
// any other version loudly instead of guessing.
const SnapshotVersion = 1

// snapshot is the warm-export wire format: a versioned, key-sorted
// entry list. JSON (with base64 plan bytes) keeps the artifact
// greppable and the decode path strict.
type snapshot struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// EncodeSnapshot serializes the store's entries into the warm-export
// format. The output is canonical: entries sorted by key, so two
// converged replicas export byte-identical snapshots.
func EncodeSnapshot(st PlanStore) ([]byte, error) {
	return json.Marshal(snapshot{Version: SnapshotVersion, Entries: st.Entries()})
}

// DecodeSnapshot strictly parses a warm-export payload: unknown fields,
// trailing data, bad versions, invalid entries, oversized entry lists,
// and duplicate keys are all errors. It never panics on arbitrary input
// (FuzzPlanStoreSync proves it).
func DecodeSnapshot(b []byte) ([]Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("cluster: decoding snapshot: %w", err)
	}
	if dec.More() {
		return nil, errors.New("cluster: trailing data after snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("cluster: snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	if len(snap.Entries) > MaxSyncEntries {
		return nil, fmt.Errorf("cluster: snapshot of %d entries exceeds the %d cap", len(snap.Entries), MaxSyncEntries)
	}
	seen := make(map[string]bool, len(snap.Entries))
	for i, e := range snap.Entries {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: snapshot entry %d: %w", i, err)
		}
		if seen[e.Key] {
			return nil, fmt.Errorf("cluster: snapshot entry %d duplicates key %q", i, shortKey(e.Key))
		}
		seen[e.Key] = true
	}
	return snap.Entries, nil
}

// Restore decodes a warm-export payload into the store and returns how
// many entries were newly added (already-present keys keep their
// incumbent bytes).
func Restore(st PlanStore, b []byte) (int, error) {
	entries, err := DecodeSnapshot(b)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, e := range entries {
		if st.Put(e) {
			added++
		}
	}
	return added, nil
}
