package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// ChurnSchedule is a pure function of its inputs, keeps every
// kill/restart pair ordered inside its own slice of the run, and never
// has two replicas down at once.
func TestChurnScheduleDeterministicAndRolling(t *testing.T) {
	const run = 12 * time.Second
	a := ChurnSchedule(7, 3, 4, run)
	b := ChurnSchedule(7, 3, 4, run)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 8 {
		t.Fatalf("schedule has %d events, want 2×4", len(a))
	}
	if c := ChurnSchedule(8, 3, 4, run); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}

	down := -1 // replica currently down, or -1
	last := time.Duration(-1)
	for i, ev := range a {
		if ev.At <= last {
			t.Fatalf("event %d at %v not after %v", i, ev.At, last)
		}
		last = ev.At
		if ev.At < 0 || ev.At > run {
			t.Fatalf("event %d at %v outside the run", i, ev.At)
		}
		if ev.Replica < 0 || ev.Replica >= 3 {
			t.Fatalf("event %d names replica %d of 3", i, ev.Replica)
		}
		switch ev.Kind {
		case ChurnKill:
			if down != -1 {
				t.Fatalf("event %d kills %d while %d is still down — correlated outage", i, ev.Replica, down)
			}
			down = ev.Replica
		case ChurnRestart:
			if down != ev.Replica {
				t.Fatalf("event %d restarts %d but %d is down", i, ev.Replica, down)
			}
			down = -1
		default:
			t.Fatalf("event %d kind %q", i, ev.Kind)
		}
	}
	if down != -1 {
		t.Fatalf("schedule ends with replica %d still down", down)
	}

	// Consecutive cycles never hit the same victim twice in a row.
	prev := -1
	for _, ev := range a {
		if ev.Kind != ChurnKill {
			continue
		}
		if ev.Replica == prev {
			t.Fatalf("victim %d repeated back to back", ev.Replica)
		}
		prev = ev.Replica
	}

	// Degenerate inputs yield no schedule rather than a panic.
	if ChurnSchedule(1, 0, 2, run) != nil || ChurnSchedule(1, 3, 0, run) != nil || ChurnSchedule(1, 3, 2, 0) != nil {
		t.Fatal("degenerate inputs produced a schedule")
	}
}

// RollingRestartSchedule restarts EVERY replica exactly once, in a
// seed-pinned order, with the same at-most-one-down invariant.
func TestRollingRestartScheduleCoversEveryReplica(t *testing.T) {
	const replicas = 5
	a := RollingRestartSchedule(3, replicas, 10*time.Second)
	if !reflect.DeepEqual(a, RollingRestartSchedule(3, replicas, 10*time.Second)) {
		t.Fatal("not deterministic")
	}
	killed := make(map[int]int)
	down := -1
	for i, ev := range a {
		switch ev.Kind {
		case ChurnKill:
			if down != -1 {
				t.Fatalf("event %d overlaps outages", i)
			}
			down = ev.Replica
			killed[ev.Replica]++
		case ChurnRestart:
			if down != ev.Replica {
				t.Fatalf("event %d restart/kill mismatch", i)
			}
			down = -1
		}
	}
	if len(killed) != replicas {
		t.Fatalf("only %d of %d replicas cycled: %v", len(killed), replicas, killed)
	}
	for r, n := range killed {
		if n != 1 {
			t.Fatalf("replica %d cycled %d times, want exactly once", r, n)
		}
	}
}

// PhasesFor opens with "steady" at t=0 and then one phase per event, in
// time order, named after the event.
func TestPhasesForChurnEvents(t *testing.T) {
	events := []ChurnEvent{
		{At: 3 * time.Second, Kind: ChurnRestart, Replica: 1},
		{At: 1 * time.Second, Kind: ChurnKill, Replica: 1},
	}
	phases := PhasesFor(events)
	want := []LoadPhase{
		{Name: "steady", Start: 0},
		{Name: "kill-1", Start: 1 * time.Second},
		{Name: "restart-1", Start: 3 * time.Second},
	}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	if got := PhasesFor(nil); !reflect.DeepEqual(got, []LoadPhase{{Name: "steady", Start: 0}}) {
		t.Fatalf("empty schedule phases: %v", got)
	}
}

// The phase split must partition the run's accounting exactly: each
// request lands in the phase covering its PLANNED send time, and the
// per-phase sums equal the run totals.
func TestRunLoadPhaseSplit(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%5 == 0 {
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprint(w, `{"error":"infeasible","code":"infeasible"}`)
			return
		}
		fmt.Fprint(w, `{"plan":{"p":1},"cached":true,"shared":false,"key":"k","elapsed_s":0.001}`)
	}))
	defer stub.Close()

	cfg := LoadConfig{
		Targets:  []string{stub.URL},
		Requests: 200,
		RateHz:   2000,
		Seed:     5,
	}
	// Split the ~100 ms run down the middle, plus a late never-reached
	// phase and a deliberately unsorted input order.
	sched := cfg.Schedule()
	mid := sched[len(sched)/2]
	cfg.Phases = []LoadPhase{
		{Name: "late", Start: sched[len(sched)-1] + time.Hour},
		{Name: "second", Start: mid},
		{Name: "first", Start: 0},
	}
	rep, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases: %+v", len(rep.Phases), rep.Phases)
	}
	names := []string{rep.Phases[0].Name, rep.Phases[1].Name, rep.Phases[2].Name}
	if !reflect.DeepEqual(names, []string{"first", "second", "late"}) {
		t.Fatalf("phase order %v", names)
	}
	var reqSum, servedSum, infSum, shedSum, errSum int
	for _, ph := range rep.Phases {
		reqSum += ph.Requests
		servedSum += ph.Served
		infSum += ph.Infeasible
		shedSum += ph.Shed
		errSum += ph.Errors
	}
	if reqSum != rep.Requests || servedSum != rep.Served || infSum != rep.Infeasible || shedSum != rep.Shed || errSum != rep.Errors {
		t.Fatalf("phase sums (%d/%d/%d/%d/%d) disagree with totals (%d/%d/%d/%d/%d)",
			reqSum, servedSum, infSum, shedSum, errSum,
			rep.Requests, rep.Served, rep.Infeasible, rep.Shed, rep.Errors)
	}
	// The split lands on the schedule midpoint: the first phase holds the
	// requests planned before mid, exactly.
	wantFirst := sort.Search(len(sched), func(i int) bool { return sched[i] >= mid })
	if rep.Phases[0].Requests != wantFirst {
		t.Fatalf("first phase holds %d requests, want %d (planned before the midpoint)", rep.Phases[0].Requests, wantFirst)
	}
	if rep.Phases[2].Requests != 0 {
		t.Fatalf("never-reached phase accumulated %d requests", rep.Phases[2].Requests)
	}
	// Per-phase latency percentiles exist where requests landed.
	if rep.Phases[0].LatencyP50S <= 0 || rep.Phases[0].LatencyMaxS < rep.Phases[0].LatencyP99S {
		t.Fatalf("first phase latency block malformed: %+v", rep.Phases[0])
	}
	// And an implicit "pre" phase appears when the first configured phase
	// starts late.
	cfg2 := cfg
	cfg2.Phases = []LoadPhase{{Name: "tail", Start: mid}}
	rep2, err := RunLoad(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Phases) != 2 || rep2.Phases[0].Name != "pre" || rep2.Phases[0].Requests != wantFirst {
		t.Fatalf("implicit pre phase: %+v", rep2.Phases)
	}
}
