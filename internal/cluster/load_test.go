package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleShapes(t *testing.T) {
	base := LoadConfig{Targets: []string{"http://x"}, Requests: 500, RateHz: 1000, Seed: 7}

	poisson := base
	poisson.Curve = CurvePoisson
	sp := poisson.Schedule()
	if len(sp) != 500 {
		t.Fatalf("schedule length %d", len(sp))
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Fatalf("arrival %d (%v) before %d (%v)", i, sp[i], i-1, sp[i-1])
		}
	}
	// Mean rate must land near RateHz: 500 requests at 1000/s ≈ 0.5 s.
	total := sp[len(sp)-1].Seconds()
	if total < 0.3 || total > 0.8 {
		t.Fatalf("poisson run spans %.3f s, want ~0.5 s", total)
	}
	// Seed-pinned.
	again := poisson.Schedule()
	for i := range sp {
		if sp[i] != again[i] {
			t.Fatalf("poisson schedule not deterministic at %d: %v vs %v", i, sp[i], again[i])
		}
	}

	ramp := base
	ramp.Curve = CurveRamp
	sr := ramp.Schedule()
	// The ramp accelerates: the first half must take longer than the
	// second half.
	mid := sr[len(sr)/2]
	first, second := mid, sr[len(sr)-1]-mid
	if first <= second {
		t.Fatalf("ramp not accelerating: first half %v, second half %v", first, second)
	}
	// And its mean rate still lands near RateHz.
	if tot := sr[len(sr)-1].Seconds(); tot < 0.3 || tot > 0.8 {
		t.Fatalf("ramp run spans %.3f s, want ~0.5 s", tot)
	}
}

func TestWorkloadDeterministicAndZipfSkewed(t *testing.T) {
	cfg := LoadConfig{Targets: []string{"http://a", "http://b"}, Requests: 2000, RateHz: 1e6, Seed: 42}
	w1, err := cfg.Workload()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cfg.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 2000 {
		t.Fatalf("workload length %d", len(w1))
	}
	rankCount := make(map[int]int)
	bodyByRank := make(map[int]string)
	for i := range w1 {
		if w1[i].At != w2[i].At || w1[i].Target != w2[i].Target || string(w1[i].Body) != string(w2[i].Body) {
			t.Fatalf("workload not deterministic at %d", i)
		}
		rankCount[w1[i].Rank]++
		// Same rank → same canonical request modulo the timeout knob.
		var m map[string]any
		if err := json.Unmarshal(w1[i].Body, &m); err != nil {
			t.Fatalf("request %d body: %v", i, err)
		}
		delete(m, "timeout_s")
		canon, _ := json.Marshal(m)
		if prev, ok := bodyByRank[w1[i].Rank]; ok && prev != string(canon) {
			t.Fatalf("rank %d maps to two different requests", w1[i].Rank)
		}
		bodyByRank[w1[i].Rank] = string(canon)
	}
	// Zipf skew: rank 0 must dominate.
	if rankCount[0] < 2000/4 {
		t.Fatalf("rank 0 drew only %d of 2000 requests — not zipf-skewed", rankCount[0])
	}
	if len(rankCount) < 3 {
		t.Fatalf("only %d distinct ranks drawn", len(rankCount))
	}
	// Catalog bodies must be valid wire requests with the configured
	// level set.
	var req struct {
		Platform struct {
			Rows        int `json:"rows"`
			Cols        int `json:"cols"`
			PaperLevels int `json:"paper_levels"`
		} `json:"platform"`
		TmaxC    float64 `json:"tmax_c"`
		Method   string  `json:"method"`
		TimeoutS float64 `json:"timeout_s"`
	}
	if err := json.Unmarshal(w1[0].Body, &req); err != nil {
		t.Fatal(err)
	}
	if req.Platform.Rows < 1 || req.Platform.PaperLevels != 3 || req.TmaxC == 0 || req.Method == "" {
		t.Fatalf("malformed request body: %s", w1[0].Body)
	}
	if req.TimeoutS < 1 || req.TimeoutS > 10 {
		t.Fatalf("timeout %v outside the default [1, 10] s window", req.TimeoutS)
	}
}

func TestWorkloadRespectsMaxCores(t *testing.T) {
	cfg := LoadConfig{Targets: []string{"http://a"}, Requests: 200, RateHz: 1e6, MaxCores: 2}
	w, err := cfg.Workload()
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range w {
		var req struct {
			Platform struct {
				Rows        int `json:"rows"`
				Cols        int `json:"cols"`
				StackLayers int `json:"stack_layers"`
			} `json:"platform"`
		}
		if err := json.Unmarshal(lr.Body, &req); err != nil {
			t.Fatal(err)
		}
		layers := req.Platform.StackLayers
		if layers == 0 {
			layers = 1
		}
		if cores := req.Platform.Rows * req.Platform.Cols * layers; cores > 2 {
			t.Fatalf("request uses %d cores, cap 2: %s", cores, lr.Body)
		}
	}
	if _, err := (LoadConfig{Targets: []string{"x"}, MaxCores: 1}).Workload(); err == nil {
		t.Fatal("an unsatisfiable core cap must error, not generate an empty run")
	}
	if _, err := (LoadConfig{}).Workload(); err == nil {
		t.Fatal("a config without targets must error")
	}
}

// A stub server exercises the full accounting path: 200s with plan
// bodies, 422s, 429s, and 500s, keyed off the request count.
func TestRunLoadAccounting(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		switch {
		case i%10 == 0:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shed","code":"overloaded"}`)
		case i%17 == 0:
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprint(w, `{"error":"infeasible","code":"infeasible"}`)
		case i%23 == 0:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			cached := i%2 == 0
			fmt.Fprintf(w, `{"plan":{"p":1},"cached":%v,"shared":false,"key":"k1","elapsed_s":0.001,"source":"local"}`, cached)
		}
	}))
	defer stub.Close()

	cfg := LoadConfig{
		Targets:  []string{stub.URL},
		Requests: 400,
		RateHz:   5000,
		Seed:     3,
	}
	rep, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Served + rep.Infeasible + rep.Shed + rep.Errors; got != 400 {
		t.Fatalf("accounting does not sum: %d served + %d infeasible + %d shed + %d errors = %d, want 400",
			rep.Served, rep.Infeasible, rep.Shed, rep.Errors, got)
	}
	if rep.Served == 0 || rep.Shed == 0 || rep.Infeasible == 0 || rep.Errors == 0 {
		t.Fatalf("expected every bucket populated: %+v", rep)
	}
	if rep.ByStatus["200"] != rep.Served || rep.ByStatus["429"] != rep.Shed || rep.ByStatus["422"] != rep.Infeasible {
		t.Fatalf("by_status disagrees with buckets: %v", rep.ByStatus)
	}
	if rep.ByTarget[stub.URL] != 400 {
		t.Fatalf("by_target: %v", rep.ByTarget)
	}
	if rep.CacheHits == 0 || rep.HitRatio <= 0 || rep.HitRatio >= 1 {
		t.Fatalf("hit ratio %v of %d hits implausible", rep.HitRatio, rep.CacheHits)
	}
	if rep.BySource["local"] != rep.Served {
		t.Fatalf("by_source: %v, want %d local", rep.BySource, rep.Served)
	}
	if rep.DistinctKeys != 1 {
		t.Fatalf("distinct keys %d, want 1 (stub serves one key)", rep.DistinctKeys)
	}
	if len(rep.PlanMismatches) != 0 {
		t.Fatalf("stub serves identical plans; mismatches: %v", rep.PlanMismatches)
	}
	if rep.LatencyP50S <= 0 || rep.LatencyMaxS < rep.LatencyP99S || rep.LatencyP99S < rep.LatencyP50S {
		t.Fatalf("latency percentiles disordered: p50=%v p99=%v max=%v", rep.LatencyP50S, rep.LatencyP99S, rep.LatencyMaxS)
	}
	if rep.ElapsedS <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

// Two different plans under one key must be flagged as a replication
// violation — this is the detector the soak relies on.
func TestRunLoadDetectsPlanMismatch(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		fmt.Fprintf(w, `{"plan":{"p":%d},"cached":false,"shared":false,"key":"same-key","elapsed_s":0}`, i%2)
	}))
	defer stub.Close()
	rep, err := RunLoad(context.Background(), LoadConfig{Targets: []string{stub.URL}, Requests: 20, RateHz: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PlanMismatches) != 1 || rep.PlanMismatches[0] != "same-key" {
		t.Fatalf("mismatch not detected: %v", rep.PlanMismatches)
	}
	// Degraded responses are exempt: deadline-dependent plans may differ.
	var m atomic.Int64
	stub2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := m.Add(1)
		fmt.Fprintf(w, `{"plan":{"p":%d},"cached":false,"shared":false,"key":"deg-key","elapsed_s":0,"degraded":true,"degraded_reason":"deadline"}`, i%2)
	}))
	defer stub2.Close()
	rep2, err := RunLoad(context.Background(), LoadConfig{Targets: []string{stub2.URL}, Requests: 20, RateHz: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.PlanMismatches) != 0 {
		t.Fatalf("degraded plans flagged as mismatches: %v", rep2.PlanMismatches)
	}
	if rep2.Degraded != 20 {
		t.Fatalf("degraded count %d, want 20", rep2.Degraded)
	}
}

func TestRunLoadCancellation(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"plan":{"p":1},"cached":false,"shared":false,"key":"k","elapsed_s":0}`)
	}))
	defer stub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// 10 req/s × 1000 requests would run 100 s; the context cuts it off.
	rep, err := RunLoad(ctx, LoadConfig{Targets: []string{stub.URL}, Requests: 1000, RateHz: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedS > 5 {
		t.Fatalf("cancelled run took %.1f s", rep.ElapsedS)
	}
	if rep.Served >= 1000 {
		t.Fatal("cancelled run completed every request")
	}
}

// Nearest-rank percentile, pinned property-style over n = 1..20: the
// result must be the smallest sample value with at least a p-fraction
// of the sample at or below it (rank ceil(p·n)), for boundary and
// interior quantiles alike.
func TestPercentileNearestRank(t *testing.T) {
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}
	for n := 1; n <= 20; n++ {
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = float64(i + 1) // value == rank, so answers are readable
		}
		for _, p := range quantiles {
			got := percentile(sorted, p)
			// Independent nearest-rank oracle: smallest v with
			// count(x <= v) >= p*n.
			want := sorted[n-1]
			for _, v := range sorted {
				count := 0
				for _, x := range sorted {
					if x <= v {
						count++
					}
				}
				if float64(count) >= p*float64(n) {
					want = v
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d p=%v: got %v, want %v", n, p, got, want)
			}
		}
	}
	// Degenerate inputs stay in bounds.
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample: %v", got)
	}
	if got := percentile([]float64{7}, 0); got != 7 {
		t.Fatalf("p=0 must clamp to the first value: %v", got)
	}
	if got := percentile([]float64{1, 2}, 2); got != 2 {
		t.Fatalf("p>1 must clamp to the last value: %v", got)
	}
}

// RelatedBurst groups the workload into same-platform bursts sharing
// one arrival instant and one target, deterministically.
func TestWorkloadRelatedBurst(t *testing.T) {
	cfg := LoadConfig{
		Targets:      []string{"http://a", "http://b"},
		Requests:     240,
		RateHz:       1e6,
		Seed:         9,
		RelatedBurst: 8,
	}
	w1, err := cfg.Workload()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cfg.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 240 {
		t.Fatalf("workload length %d", len(w1))
	}
	distinctBodies := 0
	for b := 0; b < len(w1); b += 8 {
		burst := w1[b : b+8]
		seen := map[string]bool{}
		for j, r := range burst {
			if r.At != burst[0].At || r.Target != burst[0].Target || r.Platform != burst[0].Platform || r.Rank != burst[0].Rank {
				t.Fatalf("burst %d member %d breaks burst invariants: %+v vs %+v", b/8, j, r, burst[0])
			}
			if w2[b+j].At != r.At || string(w2[b+j].Body) != string(r.Body) {
				t.Fatalf("related workload not deterministic at %d", b+j)
			}
			seen[string(r.Body)] = true
		}
		if len(seen) > 1 {
			distinctBodies++
		}
	}
	// The variants must actually vary within bursts (default catalog has
	// 6 tmax×method variants per platform, bursts of 8 draw uniformly).
	if distinctBodies == 0 {
		t.Fatal("no burst drew more than one variant — batching has nothing to coalesce")
	}
}
