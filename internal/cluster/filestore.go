package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is the durable PlanStore: MemStore semantics (mutex-guarded
// map, first-write-wins, FIFO eviction at cap) backed by an append-only
// log, so a restarted replica recovers its replicated plans without a
// peer snapshot.
//
// Log format — one JSON document per line:
//
//	{"format":"thermosc-planstore","version":1,"cap":4096}   (header)
//	{"key":"…","plan":"<base64>","born_unix_nano":…}          (one per Put)
//
// Entry lines reuse the snapshot wire format (Entry), so the log is
// greppable with the same tooling as warm exports. Each accepted Put is
// a single write+fsync; eviction is memory-only (the log keeps the
// evicted line — replaying the full Put sequence through the same FIFO
// cap reconstructs the exact end state, eviction order included).
//
// Crash safety: recovery replays entry lines in order through the
// in-memory Put path. A torn final line (the crash landed mid-write) is
// truncated away with the preceding state intact; corruption anywhere
// ELSE is a hard error — a mid-file bad line means the log was edited
// or the disk lied, and serving from a silently-partial store would
// break the fleet's byte-identity invariant.
type FileStore struct {
	mu     sync.Mutex
	mem    *MemStore
	f      *os.File
	closed bool
}

// fileStoreFormat identifies the log header; fileStoreVersion gates the
// line layout.
const (
	fileStoreFormat  = "thermosc-planstore"
	fileStoreVersion = 1
)

type fileStoreHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Cap     int    `json:"cap"`
}

// NewFileStore opens (or creates) the append-only store at path with
// the given capacity (cap <= 0 selects DefaultStoreCap). An existing
// log is replayed; its recorded capacity is informational — the
// caller's capacity wins, matching how MemStore treats restarts.
func NewFileStore(path string, capacity int) (*FileStore, error) {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening plan store %s: %w", path, err)
	}
	st := &FileStore{mem: NewMemStore(capacity), f: f}
	if err := st.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// recover replays the log into the in-memory store, truncating a torn
// tail and writing the header into a fresh log.
func (s *FileStore) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("cluster: plan store stat: %w", err)
	}
	if info.Size() == 0 {
		return s.writeHeader()
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	// Scan line-wise, remembering where each complete line ends so a torn
	// tail can be truncated to the last good byte.
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off, goodEnd int64
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		off += int64(len(line))
		complete := err == nil
		switch {
		case err != nil && err != io.EOF:
			return fmt.Errorf("cluster: reading plan store log: %w", err)
		case len(line) == 0: // clean EOF
			return s.finishRecover(goodEnd)
		}
		lineNo++
		if lineNo == 1 {
			var hdr fileStoreHeader
			if jerr := strictUnmarshal(line, &hdr); jerr != nil || hdr.Format != fileStoreFormat || hdr.Version != fileStoreVersion {
				if !complete {
					// Torn header: the crash hit the very first write. The
					// log holds no entries; start over.
					return s.reset()
				}
				return fmt.Errorf("cluster: plan store log has a bad header (format %q version %d): %v", hdr.Format, hdr.Version, jerr)
			}
		} else {
			var e Entry
			jerr := strictUnmarshal(line, &e)
			if jerr == nil {
				jerr = e.Validate()
			}
			if jerr != nil {
				if !complete {
					// Torn tail: drop the partial record, keep everything
					// before it.
					return s.finishRecover(goodEnd)
				}
				return fmt.Errorf("cluster: plan store log line %d is corrupt: %v", lineNo, jerr)
			}
			s.mem.Put(e) // replay = the live Put sequence (dups/evictions included)
		}
		if complete {
			goodEnd = off
		} else { // valid JSON but no trailing newline: a torn write that parsed
			return s.finishRecover(goodEnd)
		}
	}
}

// finishRecover truncates the log to the last complete line and
// positions the handle for appends.
func (s *FileStore) finishRecover(goodEnd int64) error {
	if goodEnd == 0 {
		return s.reset()
	}
	if err := s.f.Truncate(goodEnd); err != nil {
		return fmt.Errorf("cluster: truncating torn plan store tail: %w", err)
	}
	_, err := s.f.Seek(0, io.SeekEnd)
	return err
}

// reset wipes the log and writes a fresh header (empty or torn-header
// recovery).
func (s *FileStore) reset() error {
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return s.writeHeader()
}

func (s *FileStore) writeHeader() error {
	b, err := json.Marshal(fileStoreHeader{Format: fileStoreFormat, Version: fileStoreVersion, Cap: s.mem.Cap()})
	if err != nil {
		return err
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("cluster: writing plan store header: %w", err)
	}
	return s.f.Sync()
}

// strictUnmarshal decodes one log line rejecting unknown fields and
// trailing garbage (mirrors the snapshot decoder's strictness).
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data on log line")
	}
	return nil
}

// Get implements PlanStore.
func (s *FileStore) Get(key string) (Entry, bool) { return s.mem.Get(key) }

// Put implements PlanStore: an accepted entry is appended and fsynced
// BEFORE it becomes visible, so a Put that returned true survives a
// crash. A failed append drops the entry entirely (memory and disk stay
// in agreement) — the caller sees false and gossip re-delivers later.
func (s *FileStore) Put(e Entry) bool {
	if e.Validate() != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if _, ok := s.mem.Get(e.Key); ok {
		return false // first write wins, no duplicate log line
	}
	b, err := json.Marshal(e)
	if err != nil {
		return false
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return false
	}
	if err := s.f.Sync(); err != nil {
		return false
	}
	return s.mem.Put(e)
}

// Len implements PlanStore.
func (s *FileStore) Len() int { return s.mem.Len() }

// Entries implements PlanStore.
func (s *FileStore) Entries() []Entry { return s.mem.Entries() }

// Digest implements PlanStore.
func (s *FileStore) Digest() map[string]string { return s.mem.Digest() }

// Cap implements PlanStore.
func (s *FileStore) Cap() int { return s.mem.Cap() }

// Close fsyncs and closes the log. Further Puts return false; reads
// keep serving from memory (a draining server may still answer).
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
