// Package cluster is the fleet layer of the planning service: a
// consistent-hash ring that assigns every canonical request key a single
// owning replica, a replicated plan store with a versioned warm-export
// snapshot format, a gossip-style anti-entropy sync protocol, and an
// open-loop load generator that drives a cluster to soak-test scale.
//
// Everything here is deliberately deterministic: the ring hashes with
// SHA-256 (no process-seeded map iteration leaks into placement), store
// snapshots are sorted by key, and the load generator is seed-pinned —
// so cluster tests can assert exact invariants instead of probabilistic
// ones.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node virtual point count used when a
// ring is built with vnodes <= 0. 64 points per node keeps the key-share
// spread of a small cluster within ~2x (see TestRingBalance) while the
// ring stays tiny enough to rebuild on every membership change.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over node identifiers
// (replica base URLs in the serving layer). Each node contributes
// `vnodes` virtual points at deterministic hash positions; a key is
// owned by the node whose virtual point follows the key's hash
// clockwise. Placement depends only on the node set and vnodes — never
// on insertion order — so every replica computes the same owner for
// every key.
type Ring struct {
	vnodes int
	nodes  []string // sorted, deduplicated
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256,
// big-endian. SHA-256 (rather than FNV) keeps virtual points uniformly
// spread even for adversarially similar node names like
// "http://10.0.0.1:8080" vs "http://10.0.0.2:8080".
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given nodes. Nodes are deduplicated
// and sorted; empty node names are dropped. vnodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit hash collision between virtual points is vanishingly
		// rare but must not make placement order-dependent: break ties on
		// the node name.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	// First virtual point clockwise from the key's hash; wrap to the
	// ring's first point past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnerSkipping returns the node that owns key in the LIVE VIEW of the
// ring: the first node clockwise of the key's hash for which down
// returns false. It returns "" on an empty ring or when every member is
// down.
//
// Skipping a down node's virtual points while scanning is exactly
// equivalent to rebuilding the ring without that node: removal deletes
// the node's points and leaves the remaining (hash, node)-sorted order
// intact, so the first surviving point clockwise is the same either
// way. TestRingOwnerSkippingEqualsRemoval pins this equivalence — it is
// what keeps health-aware routing deterministic and loop-free without
// any replica agreeing on membership.
func (r *Ring) OwnerSkipping(key string, down func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if down == nil || !down(p.node) {
			return p.node
		}
	}
	return ""
}

// Nodes returns the ring's membership in sorted order (a copy).
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// WithNode returns a new ring with node added (the receiver is
// unchanged). Adding an existing member returns an equivalent ring.
func (r *Ring) WithNode(node string) *Ring {
	return NewRing(append(r.Nodes(), node), r.vnodes)
}

// WithoutNode returns a new ring with node removed (the receiver is
// unchanged).
func (r *Ring) WithoutNode(node string) *Ring {
	kept := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	return NewRing(kept, r.vnodes)
}
