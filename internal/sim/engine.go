package sim

import (
	"sync"

	"thermosc/internal/mat"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// Engine is the shared peak-temperature evaluation context of the
// solvers' inner loops. It bundles one thermal model with
//
//   - a thermal.Propagator memoizing the per-interval operators (T∞ per
//     mode vector, eigenbasis exponential factors per interval length),
//   - a pool of PeriodCache stable-status operators keyed by the exact
//     period value, so the AO m-search builds each candidate period's
//     O(dim³) operators once — across both AO seeds, the TPT adjustment,
//     and PCO's continuation.
//
// All methods are safe for concurrent use; the parallel m-search and
// trial scans in internal/solver share one Engine across their workers.
// Everything the Engine returns is bit-identical to the uncached
// NewStable/NewPeriodCache path, so adopting it never changes a plan.
type Engine struct {
	md   *thermal.Model
	prop *thermal.Propagator

	mu      sync.Mutex
	periods map[float64]*periodEntry

	coreW *mat.Dense // core-node rows of W, for composed core temps (nil on the sparse backend)

	// arenas pools per-solve evaluation scratch (see EvalArena): acquired
	// per worker, poisoned with NaN on release so stale references fail
	// loudly instead of leaking one solve's state into another.
	arenas sync.Pool
}

// periodEntry builds its PeriodCache at most once; the sync.Once keeps
// the O(dim³) construction outside the Engine lock so concurrent m-search
// workers building different periods do not serialize.
type periodEntry struct {
	once sync.Once
	pc   *PeriodCache
	err  error
}

// NewEngine returns an evaluation engine with empty caches bound to md.
func NewEngine(md *thermal.Model) *Engine {
	n, dim := md.NumCores(), md.NumNodes()
	var coreW *mat.Dense
	if eig := md.Eigen(); eig != nil {
		coreW = mat.NewDense(n, dim)
		for i := 0; i < n; i++ {
			for j := 0; j < dim; j++ {
				coreW.Set(i, j, eig.W.At(i, j))
			}
		}
	}
	e := &Engine{
		md:      md,
		prop:    thermal.NewPropagator(md),
		periods: make(map[float64]*periodEntry, 64),
		coreW:   coreW,
	}
	e.arenas.New = func() any { return newEvalArena(e) }
	return e
}

// Model returns the thermal model the engine evaluates against.
func (e *Engine) Model() *thermal.Model { return e.md }

// Propagator exposes the shared operator cache (for stats and direct
// stepping).
func (e *Engine) Propagator() *thermal.Propagator { return e.prop }

// PeriodCache returns the stable-status operators for period tp, building
// them on first use and memoizing by the exact float64 period value. The
// returned cache carries the engine's propagator, so stable solves
// through it hit the shared operator cache.
func (e *Engine) PeriodCache(tp float64) (*PeriodCache, error) {
	e.mu.Lock()
	ent, ok := e.periods[tp]
	if !ok {
		ent = &periodEntry{}
		e.periods[tp] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.pc, ent.err = newPeriodCacheProp(e.md, tp, e.prop)
	})
	return ent.pc, ent.err
}

// Stable solves for the thermally stable status of sched with all caches
// applied — the drop-in replacement for NewStable in repeated-evaluation
// loops.
func (e *Engine) Stable(sched *schedule.Schedule) (*Stable, error) {
	cache, err := e.PeriodCache(sched.Period())
	if err != nil {
		return nil, err
	}
	return NewStableCached(e.md, sched, cache)
}

// StepUpPeak computes the Theorem-1 peak of a step-up schedule through
// the engine's caches. Identical to the package-level StepUpPeak.
func (e *Engine) StepUpPeak(sched *schedule.Schedule) (float64, int, error) {
	st, err := e.Stable(sched)
	if err != nil {
		return 0, 0, err
	}
	p, c := st.PeakEndOfPeriod()
	return p, c, nil
}

// StepUpPeakComposed evaluates the Theorem-1 peak of a step-up schedule
// entirely in the eigenbasis of A. Each state interval is a diagonal
// affine map
//
//	y ← E_q ⊙ y + (1 − E_q) ⊙ w_q,   E_q = exp(λ·l_q),  w_q = W⁻¹·T∞(v_q),
//
// the full-period propagator composes by the semigroup identity
// E = ⊙_q E_q (thermal.Propagator.Compose), and the stable start is the
// diagonal solve y*_i = c_i/(1 − E_i) — no dense LU, no O(dim²) steps.
// One evaluation costs O(z·dim) plus one n×dim core-temperature
// extraction, versus O(z·dim²) + an O(dim²) LU solve for the classic
// path.
//
// The result agrees with StepUpPeak far below the solver's 1e-6 K
// feasibility tolerance (≲1e-8 K; the diagonal solve of the slowest mode
// is the conditioning bottleneck) but is
// NOT bit-identical — the association order of the arithmetic differs.
// AO/PCO therefore keep the classic path for reproducible plans; use this
// evaluator for screening sweeps, dashboards, and throughput-oriented
// services where last-ulp reproducibility is not required.
func (e *Engine) StepUpPeakComposed(sched *schedule.Schedule) (float64, int, error) {
	if e.md.SparsePath() {
		// No eigenbasis to compose in — the exact classic path is the
		// screening evaluator on the sparse backend.
		return e.StepUpPeak(sched)
	}
	ivs := sched.Intervals()
	dim := e.md.NumNodes()
	etot := make([]float64, dim) // composed propagator ⊙_q E_q
	c := make([]float64, dim)    // accumulated affine term in eigenbasis
	for i := range etot {
		etot[i] = 1
	}
	for _, iv := range ivs {
		eq := e.prop.ExpFactors(iv.Length)
		wq := e.prop.SteadyEigen(iv.Modes)
		for i := 0; i < dim; i++ {
			c[i] = eq[i]*c[i] + (1-eq[i])*wq[i]
			etot[i] *= eq[i]
		}
	}
	// Stable fixed point y* = E·y* + c. Stability (λ < 0) guarantees
	// E_i < 1 for any positive period, so the diagonal solve is regular.
	for i := 0; i < dim; i++ {
		c[i] /= 1 - etot[i]
	}
	temps := e.coreW.MulVec(c)
	peak, core := mat.VecMax(temps)
	return peak, core, nil
}
