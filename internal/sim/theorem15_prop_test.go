package sim

import (
	"math/rand"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

// Property tests for the paper's Theorem 1 (peak of a step-up schedule
// at the period end) and Theorem 5 (peak non-increasing in the
// oscillation count m), plus the Fig. 2 single-core counterexample that
// shows why Theorem 5 needs ALL cores to oscillate together.

// randomStrictStepUp builds a schedule in which EVERY core's voltage
// strictly increases across 2–4 segments — the class for which
// Theorem 1 is exact (a constant-mode core may drift ≤ ~0.02 K past the
// period wrap; see Stable.PeakEndOfPeriod).
func randomStrictStepUp(r *rand.Rand, n int, period float64) *schedule.Schedule {
	palette := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}
	cores := make([][]schedule.Segment, n)
	for i := range cores {
		k := 2 + r.Intn(3)
		idx := r.Perm(len(palette))[:k]
		for a := 0; a < len(idx); a++ {
			for b := a + 1; b < len(idx); b++ {
				if idx[b] < idx[a] {
					idx[a], idx[b] = idx[b], idx[a]
				}
			}
		}
		rem := period
		for a, vi := range idx {
			var l float64
			if a == len(idx)-1 {
				l = rem
			} else {
				l = rem * (0.2 + 0.6*r.Float64()) / float64(len(idx)-a)
				rem -= l
			}
			cores[i] = append(cores[i], seg(l, palette[vi]))
		}
	}
	return schedule.Must(cores)
}

// Theorem 1: in the thermally stable status of a step-up schedule the
// peak temperature occurs at the period end. Across randomized strictly
// step-up schedules on the 2×1, 3×2 and 3×3 seed platforms, the O(z)
// end-of-period evaluation must agree with a dense scan of the whole
// period to 1e-9 K.
func TestTheorem1PeakAtPeriodEndProperty(t *testing.T) {
	grids := []struct {
		rows, cols int
		seed       int64
	}{
		{2, 1, 101},
		{3, 2, 202},
		{3, 3, 303},
	}
	const perGrid = 20 // 60 schedules total (≥ 50)
	for _, g := range grids {
		md := model(t, g.rows, g.cols)
		r := rand.New(rand.NewSource(g.seed))
		for it := 0; it < perGrid; it++ {
			period := 0.02 + r.Float64()*0.5
			s := randomStrictStepUp(r, md.NumCores(), period)
			if !s.IsStepUp() {
				t.Fatalf("%dx%d it=%d: generator produced a non-step-up schedule", g.rows, g.cols, it)
			}
			st, err := NewStable(md, s)
			if err != nil {
				t.Fatalf("%dx%d it=%d: %v", g.rows, g.cols, it, err)
			}
			endPeak, _ := st.PeakEndOfPeriod()
			densePeak, _, at := st.PeakDense(200)
			// The dense scan includes the period end, so densePeak ≥
			// endPeak always; Theorem 1 says the difference is zero.
			if diff := densePeak - endPeak; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%dx%d it=%d: dense peak %.12f (at t=%.6f/%.6f) vs end-of-period %.12f, diff %.3e",
					g.rows, g.cols, it, densePeak, at, s.Period(), endPeak, diff)
			}
		}
	}
}

// randomAOSplit draws a per-core two-neighboring-mode oscillation spec:
// every core genuinely oscillates (vH > vL, ratio in (0.05, 0.95)).
func randomAOSplit(r *rand.Rand, n int) []schedule.TwoModeSpec {
	specs := make([]schedule.TwoModeSpec, n)
	for i := range specs {
		vL := 0.6 + r.Float64()*0.5
		vH := vL + 0.1 + r.Float64()*(1.3-vL-0.1)
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(vL),
			High:      power.NewMode(vH),
			HighRatio: 0.05 + 0.9*r.Float64(),
		}
	}
	return specs
}

// Theorem 5: when ALL cores oscillate together (aligned two-mode splits,
// no transition overhead), the stable-status peak temperature is
// non-increasing in the oscillation count m. Evaluating one cycle of the
// m-oscillating schedule as its own periodic schedule is equivalent to
// the full pattern (schedule.Cycle), and each cycle is strictly step-up,
// so Theorem 1's end-of-period evaluation applies at every m.
func TestTheorem5PeakNonIncreasingInM(t *testing.T) {
	grids := []struct {
		rows, cols int
		seed       int64
	}{
		{2, 1, 11},
		{3, 1, 22},
		{2, 2, 33},
	}
	const perGrid = 17 // 51 splits total (≥ 50)
	const maxM = 16
	for _, g := range grids {
		md := model(t, g.rows, g.cols)
		r := rand.New(rand.NewSource(g.seed))
		for it := 0; it < perGrid; it++ {
			period := 0.05 + r.Float64()*0.95
			specs := randomAOSplit(r, md.NumCores())
			base, err := schedule.TwoMode(period, specs)
			if err != nil {
				t.Fatalf("%dx%d it=%d: %v", g.rows, g.cols, it, err)
			}
			prev := 0.0
			for m := 1; m <= maxM; m++ {
				st, err := NewStable(md, base.Cycle(m))
				if err != nil {
					t.Fatalf("%dx%d it=%d m=%d: %v", g.rows, g.cols, it, m, err)
				}
				peak, _ := st.PeakEndOfPeriod()
				if m > 1 && peak > prev+1e-9 {
					t.Fatalf("%dx%d it=%d: peak increased with m: T(m=%d)=%.12f > T(m=%d)=%.12f",
						g.rows, g.cols, it, m, peak, m-1, prev)
				}
				prev = peak
			}
		}
	}
}

// Pinned regression for the Fig. 2 counterexample (§IV-C): oscillating a
// SINGLE core faster — the other core's schedule unchanged — RAISES the
// stable-status peak, while doubling both cores together lowers it
// (Theorem 5). This is the asymmetry that makes per-core frequency
// tuning unsound and motivates the chip-wide m of AO.
func TestTheorem5Fig2SingleCoreCounterexample(t *testing.T) {
	md := model(t, 2, 1)
	hi, lo := power.NewMode(1.3), power.NewMode(0.6)
	mkseg := func(l float64, m power.Mode) schedule.Segment {
		return schedule.Segment{Length: l, Mode: m}
	}
	base := schedule.Must([][]schedule.Segment{
		{mkseg(50e-3, hi), mkseg(50e-3, lo)},
		{mkseg(50e-3, lo), mkseg(50e-3, hi)},
	})
	oneCore := schedule.Must([][]schedule.Segment{
		{mkseg(25e-3, hi), mkseg(25e-3, lo), mkseg(25e-3, hi), mkseg(25e-3, lo)},
		{mkseg(50e-3, lo), mkseg(50e-3, hi)},
	})
	bothCores := base.Cycle(2)

	peakOf := func(s *schedule.Schedule) float64 {
		st, err := NewStable(md, s)
		if err != nil {
			t.Fatal(err)
		}
		p, _, _ := st.PeakDense(96)
		return p
	}
	basePeak := peakOf(base)
	onePeak := peakOf(oneCore)
	bothPeak := peakOf(bothCores)

	if onePeak <= basePeak+1e-6 {
		t.Fatalf("Fig. 2 counterexample lost: single-core oscillation should raise the peak (base %.6f, one-core %.6f)",
			basePeak, onePeak)
	}
	// The paper reports ≈ +1.3 °C on its calibration; this repository's
	// reproduction measures +0.067 K (docs/experiments_full_output.txt).
	// Pin a floor just under that so the effect stays quantitatively
	// visible, not merely nonzero.
	if onePeak-basePeak < 0.05 {
		t.Fatalf("Fig. 2 effect degraded below 0.05 K: base %.6f, one-core %.6f", basePeak, onePeak)
	}
	if bothPeak > basePeak+1e-9 {
		t.Fatalf("Theorem 5 violated in Fig. 2 setting: both-cores ×2 raised the peak (base %.6f, both %.6f)",
			basePeak, bothPeak)
	}
}
