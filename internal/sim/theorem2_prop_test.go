package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/schedule"
)

// randomPeriodicSchedule draws an arbitrary (not step-up) periodic
// schedule: per core 1–3 segments with random lengths summing to a common
// random period, voltages from the paper's palette.
func randomPeriodicSchedule(r *rand.Rand, cores int) *schedule.Schedule {
	palette := []float64{0.6, 0.8, 1.0, 1.3}
	period := 1 + r.Float64()*5
	segs := make([][]schedule.Segment, cores)
	for i := range segs {
		k := 1 + r.Intn(3)
		rem := period
		for a := 0; a < k; a++ {
			var l float64
			if a == k-1 {
				l = rem
			} else {
				l = rem * r.Float64()
				rem -= l
			}
			segs[i] = append(segs[i], seg(l, palette[r.Intn(len(palette))]))
		}
	}
	return schedule.Must(segs)
}

// TestTheorem2StepUpBoundAcrossGrids is the randomized Theorem 2 property
// on the grids the 3×1 suite does not cover: the two-core column (weakest
// lateral coupling) and the 3×2 grid (strongest — every core has 2–3
// neighbors). For ~50 random periodic schedules total, the step-up
// rearrangement's stable-state TRUE peak (dense scan, 32 samples/segment)
// must bound the original's to within the documented cross-coupling
// margin. The margin is the same 0.15 K the 3×1 tests pin: more neighbors
// widen the family of couplings, not the worst single-pair error.
func TestTheorem2StepUpBoundAcrossGrids(t *testing.T) {
	grids := []struct {
		name       string
		rows, cols int
		trials     int
	}{
		{"2x1", 2, 1, 25},
		{"3x2", 3, 2, 25},
	}
	for _, g := range grids {
		g := g
		t.Run(g.name, func(t *testing.T) {
			md := model(t, g.rows, g.cols)
			cores := g.rows * g.cols
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				s := randomPeriodicSchedule(r, cores)
				up := s.StepUp()
				stS, err := NewStable(md, s)
				if err != nil {
					return false
				}
				stU, err := NewStable(md, up)
				if err != nil {
					return false
				}
				peakS, _, _ := stS.PeakDense(32)
				peakU, _, _ := stU.PeakDense(32)
				if peakS > peakU+0.15 {
					t.Logf("%s: original peak %.4f exceeds step-up %.4f by %.4f K (period %.3f)",
						g.name, peakS, peakU, peakS-peakU, s.Period())
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: g.trials}); err != nil {
				t.Error(err)
			}
		})
	}
}

// The step-up rearrangement must preserve each core's workload exactly —
// Theorem 2 compares equal-throughput schedules, so the property test
// only means something if the rearrangement really is a permutation.
func TestStepUpPreservesWorkAcrossGrids(t *testing.T) {
	for _, cores := range []int{2, 6} {
		r := rand.New(rand.NewSource(int64(cores)))
		for trial := 0; trial < 10; trial++ {
			s := randomPeriodicSchedule(r, cores)
			up := s.StepUp()
			if d := up.Period() - s.Period(); d > 1e-9 || d < -1e-9 {
				t.Fatalf("%d cores: step-up changed the period %v → %v", cores, s.Period(), up.Period())
			}
			for i := 0; i < cores; i++ {
				var wS, wU float64
				for _, sg := range s.CoreSegments(i) {
					wS += sg.Length * sg.Mode.Speed()
				}
				for _, sg := range up.CoreSegments(i) {
					wU += sg.Length * sg.Mode.Speed()
				}
				if diff := wS - wU; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%d cores, core %d: step-up changed work %v → %v", cores, i, wS, wU)
				}
			}
		}
	}
}
