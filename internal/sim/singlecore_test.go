package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/floorplan"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// The classic single-core result the paper builds on (its refs. [25],
// [31]): on a SINGLE-node platform the stable-status peak of any periodic
// schedule occurs at a scheduling point (an interval boundary) — the
// temperature inside an interval moves monotonically toward that
// interval's T∞, so interior maxima are impossible. The multi-core heat
// interference that breaks this (paper §IV) is exactly what the step-up
// machinery was invented for.
func TestSingleCorePeakAtSchedulingPoints(t *testing.T) {
	fp := floorplan.MustGrid(1, 1, 4e-3)
	md, err := thermal.NewCoreLevelModel(fp, thermal.DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	palette := []float64{0.6, 0.8, 1.0, 1.2, 1.3}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		period := 0.2 + r.Float64()*4
		k := 2 + r.Intn(5)
		var segs []schedule.Segment
		rem := period
		for a := 0; a < k; a++ {
			var l float64
			if a == k-1 {
				l = rem
			} else {
				l = rem * r.Float64()
				rem -= l
			}
			segs = append(segs, schedule.Segment{
				Length: l,
				Mode:   power.NewMode(palette[r.Intn(len(palette))]),
			})
		}
		s := schedule.Must([][]schedule.Segment{segs})
		st, err := NewStable(md, s)
		if err != nil {
			return false
		}
		boundary, _ := st.PeakAtIntervalEnds()
		dense, _, _ := st.PeakDense(64)
		// On one node the dense search can never beat the boundaries.
		return dense <= boundary+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On the LAYERED single-core model (die + spreader + sink) the same
// boundary property still holds for the core node: the extra package
// nodes carry no power steps of their own, so the die node still moves
// monotonically toward a fixed quasi-equilibrium within each interval...
// except it does NOT in general — the slow spreader keeps drifting, so
// interior maxima of the die node are possible in principle. This test
// documents the measured reality: any interior excess over the boundary
// peak stays within the same small margin as the multi-core overshoot.
func TestSingleCoreLayeredBoundaryMargin(t *testing.T) {
	md, err := thermal.Default(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	palette := []float64{0.6, 0.9, 1.3}
	r := rand.New(rand.NewSource(5))
	worst := 0.0
	for trial := 0; trial < 40; trial++ {
		period := 0.2 + r.Float64()*4
		var segs []schedule.Segment
		rem := period
		for a := 0; a < 3; a++ {
			l := rem / float64(3-a)
			if a < 2 {
				l = rem * r.Float64()
			}
			rem -= l
			if a == 2 {
				l += rem
			}
			segs = append(segs, schedule.Segment{Length: l, Mode: power.NewMode(palette[r.Intn(3)])})
		}
		s := schedule.Must([][]schedule.Segment{segs})
		st, err := NewStable(md, s)
		if err != nil {
			continue
		}
		boundary, _ := st.PeakAtIntervalEnds()
		dense, _, _ := st.PeakDense(64)
		if d := dense - boundary; d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Fatalf("layered single-core interior excess %.4f K beyond the documented margin", worst)
	}
}
