package sim

import (
	"fmt"
	"math"

	"thermosc/internal/mat"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// RK45Options tune the adaptive Dormand–Prince integrator.
type RK45Options struct {
	// AbsTol and RelTol form the per-step error budget
	// tol_i = AbsTol + RelTol·|T_i|.
	AbsTol, RelTol float64
	// InitialStep seeds the controller; MinStep aborts runaway rejection;
	// MaxStep caps growth (all seconds). Zero values take defaults.
	InitialStep, MinStep, MaxStep float64
}

// DefaultRK45 returns tolerances suited to milli-kelvin validation.
func DefaultRK45() RK45Options {
	return RK45Options{AbsTol: 1e-7, RelTol: 1e-7}
}

// dormandPrince holds the Butcher tableau of the Dormand–Prince 5(4)
// pair (the classic ode45 coefficients).
var dpA = [7][6]float64{
	{},
	{1.0 / 5},
	{3.0 / 40, 9.0 / 40},
	{44.0 / 45, -56.0 / 15, 32.0 / 9},
	{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
	{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
	{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
}

var dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
var dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}

// RK45 integrates nPeriods of sched from t0 with adaptive Dormand–Prince
// steps, restarting cleanly at every state-interval boundary (where B(v)
// jumps). It returns the state at the end of the horizon and the number
// of accepted steps — the adaptive cross-validator for the closed-form
// solver at user-chosen tolerances.
func RK45(md *thermal.Model, sched *schedule.Schedule, t0 []float64, nPeriods int, opt RK45Options) ([]float64, int, error) {
	if nPeriods < 1 {
		return nil, 0, fmt.Errorf("sim: RK45 with %d periods", nPeriods)
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-7
	}
	if opt.RelTol <= 0 {
		opt.RelTol = 1e-7
	}
	if opt.InitialStep <= 0 {
		opt.InitialStep = sched.Period() / 256
	}
	if opt.MinStep <= 0 {
		opt.MinStep = sched.Period() * 1e-12
	}
	if opt.MaxStep <= 0 {
		opt.MaxStep = sched.Period()
	}

	a := md.A()
	ivs := sched.Intervals()
	bvecs := make([][]float64, len(ivs))
	for q, iv := range ivs {
		bvecs[q] = md.BVec(iv.Modes)
	}
	n := len(t0)
	deriv := func(state, b []float64) []float64 {
		d := a.MulVec(state)
		return mat.VecAddInPlace(d, b)
	}

	state := mat.VecClone(t0)
	accepted := 0
	h := opt.InitialStep
	for p := 0; p < nPeriods; p++ {
		for q := range ivs {
			remaining := ivs[q].Length
			b := bvecs[q]
			for remaining > 1e-15 {
				step := math.Min(h, math.Min(remaining, opt.MaxStep))
				// Dormand–Prince stages.
				var k [7][]float64
				k[0] = deriv(state, b)
				for s := 1; s < 7; s++ {
					y := mat.VecClone(state)
					for j := 0; j < s; j++ {
						if dpA[s][j] != 0 {
							mat.VecAXPY(y, step*dpA[s][j], k[j])
						}
					}
					k[s] = deriv(y, b)
				}
				y5 := mat.VecClone(state)
				y4 := mat.VecClone(state)
				for s := 0; s < 7; s++ {
					if dpB5[s] != 0 {
						mat.VecAXPY(y5, step*dpB5[s], k[s])
					}
					if dpB4[s] != 0 {
						mat.VecAXPY(y4, step*dpB4[s], k[s])
					}
				}
				// Error estimate against the mixed tolerance.
				var errNorm float64
				for i := 0; i < n; i++ {
					tol := opt.AbsTol + opt.RelTol*math.Abs(y5[i])
					e := math.Abs(y5[i]-y4[i]) / tol
					if e > errNorm {
						errNorm = e
					}
				}
				if errNorm <= 1 {
					state = y5
					remaining -= step
					accepted++
					// Grow the step (5th-order controller, capped).
					if errNorm == 0 {
						h = step * 4
					} else {
						h = step * math.Min(4, 0.9*math.Pow(errNorm, -0.2))
					}
				} else {
					h = step * math.Max(0.1, 0.9*math.Pow(errNorm, -0.2))
					if h < opt.MinStep {
						return nil, accepted, fmt.Errorf("sim: RK45 step collapsed below %g s", opt.MinStep)
					}
				}
			}
		}
	}
	return state, accepted, nil
}
