package sim

import (
	"testing"

	"thermosc/internal/schedule"
)

func TestSwitchUpNeverOvershootsDestination(t *testing.T) {
	md := model(t, 3, 1)
	cool := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6)}, {seg(10e-3, 0.6)}, {seg(10e-3, 0.6)},
	})
	hot := schedule.Must([][]schedule.Segment{
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
	})
	stHot, err := NewStable(md, hot)
	if err != nil {
		t.Fatal(err)
	}
	hotPeak, _, _ := stHot.PeakDense(48)

	// Ramping UP from the cool stable state: the transient approaches the
	// hot stable trajectory from below and must not overshoot its peak.
	rep, err := Switch(md, cool, hot, hotPeak, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakRise > hotPeak+1e-6 {
		t.Fatalf("ramp-up overshot: %.4f vs destination peak %.4f", rep.PeakRise, hotPeak)
	}
	if rep.SettlePeriods < 0 {
		t.Fatal("ramp-up never settled below the destination peak")
	}
}

func TestSwitchDownDecaysAndSettles(t *testing.T) {
	md := model(t, 3, 1)
	hot := schedule.Must([][]schedule.Segment{
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
		{seg(5e-3, 0.6), seg(5e-3, 1.3)},
	})
	cool := schedule.Must([][]schedule.Segment{
		{seg(10e-3, 0.6)}, {seg(10e-3, 0.6)}, {seg(10e-3, 0.6)},
	})
	stHot, err := NewStable(md, hot)
	if err != nil {
		t.Fatal(err)
	}
	hotPeak, _, _ := stHot.PeakDense(48)
	stCool, err := NewStable(md, cool)
	if err != nil {
		t.Fatal(err)
	}
	coolPeak, _, _ := stCool.PeakDense(48)

	rep, err := Switch(md, hot, cool, coolPeak+0.1, 100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Throttling down never exceeds where we already were.
	if rep.PeakRise > hotPeak+1e-6 {
		t.Fatalf("throttle-down transient %.4f above the source peak %.4f", rep.PeakRise, hotPeak)
	}
	if rep.SettlePeriods < 0 {
		t.Fatal("never settled to the cool envelope")
	}
	// Settling takes a physically meaningful time: at least one period,
	// and within a few dominant time constants.
	maxPeriods := int(8*md.DominantTimeConstant()/cool.Period()) + 1
	if rep.SettlePeriods < 1 || rep.SettlePeriods > maxPeriods {
		t.Fatalf("settle periods %d outside (1, %d)", rep.SettlePeriods, maxPeriods)
	}
}

func TestSwitchValidation(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	if _, err := Switch(md, s, s, 10, 0, 4); err == nil {
		t.Fatal("zero periods must error")
	}
	if _, err := Switch(md, s, s, 10, 4, 0); err == nil {
		t.Fatal("zero samples must error")
	}
	// Self-switch settles immediately at its own stable peak.
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := st.PeakDense(48)
	rep, err := Switch(md, s, s, peak+1e-6, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SettlePeriods != 0 {
		t.Fatalf("self switch should settle in period 0, got %d", rep.SettlePeriods)
	}
}
