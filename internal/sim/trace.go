package sim

import (
	"fmt"

	"thermosc/internal/mat"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// Trace is a sampled temperature trajectory. Temps[k] holds the full node
// state (temperature rise above ambient) at Times[k].
type Trace struct {
	Times []float64
	Temps [][]float64
}

// CoreSeries extracts core i's absolute temperature series in °C.
func (tr *Trace) CoreSeries(md *thermal.Model, i int) []float64 {
	out := make([]float64, len(tr.Times))
	for k, t := range tr.Temps {
		out[k] = md.Absolute(t[i])
	}
	return out
}

// MaxCoreRise returns the hottest core temperature rise seen anywhere in
// the trace and the index at which it occurs.
func (tr *Trace) MaxCoreRise(md *thermal.Model) (peak float64, sample, core int) {
	for k, t := range tr.Temps {
		if p, c := mat.VecMax(md.CoreTemps(t)); p > peak || k == 0 {
			peak, sample, core = p, k, c
		}
	}
	return peak, sample, core
}

// Transient simulates nPeriods repetitions of sched from state t0 with the
// exact closed-form solution, sampling samplesPerPeriod points per period
// (plus the initial point).
func Transient(md *thermal.Model, sched *schedule.Schedule, t0 []float64, nPeriods, samplesPerPeriod int) *Trace {
	if nPeriods < 1 || samplesPerPeriod < 1 {
		panic(fmt.Sprintf("sim: Transient with nPeriods=%d samples=%d", nPeriods, samplesPerPeriod))
	}
	ivs := sched.Intervals()
	tinfs := make([][]float64, len(ivs))
	for q, iv := range ivs {
		tinfs[q] = md.SteadyState(iv.Modes)
	}
	tp := sched.Period()
	dt := tp / float64(samplesPerPeriod)

	tr := &Trace{
		Times: []float64{0},
		Temps: [][]float64{mat.VecClone(t0)},
	}
	state := mat.VecClone(t0)
	for p := 0; p < nPeriods; p++ {
		base := float64(p) * tp
		q := 0            // current interval
		var ivAcc float64 // time already consumed in the current interval
		startOfIv := state
		for k := 1; k <= samplesPerPeriod; k++ {
			target := float64(k) * dt
			// Advance whole intervals that end before the sample point.
			for q < len(ivs)-1 && ivAcc+ivs[q].Length <= target+1e-15 {
				startOfIv = md.StepToward(ivs[q].Length-(0), startOfIv, tinfs[q])
				// We stepped from the interval start; account for any
				// partial progress made within it by earlier samples.
				ivAcc += ivs[q].Length
				q++
			}
			st := md.StepToward(target-ivAcc, startOfIv, tinfs[q])
			tr.Times = append(tr.Times, base+target)
			tr.Temps = append(tr.Temps, st)
		}
		// State at the end of the period: finish the remaining intervals.
		state = startOfIv
		for ; q < len(ivs); q++ {
			rem := ivs[q].Length
			if q == len(ivs)-1 {
				rem = tp - ivAcc
			}
			state = md.StepToward(rem, state, tinfs[q])
			ivAcc += ivs[q].Length
		}
	}
	return tr
}

// RK4 simulates nPeriods of sched from t0 with a fixed-step fourth-order
// Runge-Kutta integration of dT/dt = A·T + B(v). It is the numerical
// reference ("HotSpot-lite") used to cross-validate the closed-form
// solutions; dt must resolve the fastest time constant.
func RK4(md *thermal.Model, sched *schedule.Schedule, t0 []float64, nPeriods int, dt float64) *Trace {
	if dt <= 0 || nPeriods < 1 {
		panic(fmt.Sprintf("sim: RK4 with dt=%v nPeriods=%d", dt, nPeriods))
	}
	a := md.A()
	ivs := sched.Intervals()
	bvecs := make([][]float64, len(ivs))
	for q, iv := range ivs {
		bvecs[q] = md.BVec(iv.Modes)
	}
	deriv := func(state, b []float64) []float64 {
		d := a.MulVec(state)
		return mat.VecAddInPlace(d, b)
	}
	rkStep := func(state, b []float64, h float64) []float64 {
		k1 := deriv(state, b)
		k2 := deriv(mat.VecAdd(state, mat.VecScale(h/2, k1)), b)
		k3 := deriv(mat.VecAdd(state, mat.VecScale(h/2, k2)), b)
		k4 := deriv(mat.VecAdd(state, mat.VecScale(h, k3)), b)
		out := mat.VecClone(state)
		mat.VecAXPY(out, h/6, k1)
		mat.VecAXPY(out, h/3, k2)
		mat.VecAXPY(out, h/3, k3)
		mat.VecAXPY(out, h/6, k4)
		return out
	}

	tr := &Trace{Times: []float64{0}, Temps: [][]float64{mat.VecClone(t0)}}
	state := mat.VecClone(t0)
	now := 0.0
	for p := 0; p < nPeriods; p++ {
		for q, iv := range ivs {
			remaining := iv.Length
			for remaining > 1e-15 {
				h := dt
				if h > remaining {
					h = remaining
				}
				state = rkStep(state, bvecs[q], h)
				remaining -= h
				now += h
			}
			tr.Times = append(tr.Times, now)
			tr.Temps = append(tr.Temps, mat.VecClone(state))
		}
	}
	return tr
}
