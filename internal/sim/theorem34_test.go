package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

// Theorem 3: among schedules completing the same work on core i within
// the period (other cores fixed), the constant-voltage schedule has the
// lowest stable-status peak; any same-work two-mode split peaks higher.
func TestTheorem3ConstantBeatsTwoMode(t *testing.T) {
	md := model(t, 3, 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		period := 0.05 + r.Float64()*2
		// Core 0 oscillates vL/vH with ratio x; cores 1..2 hold fixed
		// voltages — step-up by construction.
		vL := 0.6 + r.Float64()*0.3
		vH := vL + 0.1 + r.Float64()*(1.3-vL-0.1)
		x := 0.1 + 0.8*r.Float64() // low-mode fraction
		ve := x*vL + (1-x)*vH      // same-work constant voltage

		fixed1 := power.NewMode(0.6 + r.Float64()*0.7)
		fixed2 := power.NewMode(0.6 + r.Float64()*0.7)

		twoMode := schedule.Must([][]schedule.Segment{
			{
				{Length: x * period, Mode: power.NewMode(vL)},
				{Length: (1 - x) * period, Mode: power.NewMode(vH)},
			},
			{{Length: period, Mode: fixed1}},
			{{Length: period, Mode: fixed2}},
		})
		constant := schedule.Must([][]schedule.Segment{
			{{Length: period, Mode: power.NewMode(ve)}},
			{{Length: period, Mode: fixed1}},
			{{Length: period, Mode: fixed2}},
		})
		stTwo, err := NewStable(md, twoMode)
		if err != nil {
			return false
		}
		stConst, err := NewStable(md, constant)
		if err != nil {
			return false
		}
		peakTwo, _, _ := stTwo.PeakDense(48)
		peakConst, _, _ := stConst.PeakDense(48)
		// Work is identical; the constant schedule must not peak higher
		// (up to the cross-coupling margin documented in EXPERIMENTS.md).
		return peakConst <= peakTwo+2e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 3's convexity root: with the cubic dynamic-power law, the
// same-work two-mode split injects at least as much average power as the
// constant voltage — strictly more for a genuine split.
func TestTheorem3PowerConvexity(t *testing.T) {
	pm := power.DefaultModel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vL := 0.4 + r.Float64()*0.5
		vH := vL + 0.05 + r.Float64()*0.5
		x := r.Float64()
		ve := x*vL + (1-x)*vH
		avgSplit := x*pm.Static(power.NewMode(vL)) + (1-x)*pm.Static(power.NewMode(vH))
		return pm.Static(power.NewMode(ve)) <= avgSplit+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Theorem 4: among same-work two-mode splits, the pair of NEIGHBORING
// voltages (tightest bracket around the target) yields the lowest peak;
// widening the bracket can only heat the chip.
func TestTheorem4NeighboringModesBeatWiderModes(t *testing.T) {
	md := model(t, 3, 1)
	const period = 0.5
	target := 0.95 // effective voltage to realize on core 0

	peakFor := func(vL, vH float64) float64 {
		t.Helper()
		x := (vH - target) / (vH - vL) // low-mode fraction for same work
		s := schedule.Must([][]schedule.Segment{
			{
				{Length: x * period, Mode: power.NewMode(vL)},
				{Length: (1 - x) * period, Mode: power.NewMode(vH)},
			},
			{{Length: period, Mode: power.NewMode(0.8)}},
			{{Length: period, Mode: power.NewMode(0.8)}},
		})
		st, err := NewStable(md, s)
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _ := st.PeakDense(48)
		return peak
	}

	neighboring := peakFor(0.9, 1.0)
	wider := peakFor(0.8, 1.1)
	widest := peakFor(0.6, 1.3)
	if !(neighboring <= wider+2e-3 && wider <= widest+2e-3) {
		t.Fatalf("Theorem 4 ordering violated: %.4f (0.9/1.0) vs %.4f (0.8/1.1) vs %.4f (0.6/1.3)",
			neighboring, wider, widest)
	}
	if widest-neighboring < 0.05 {
		t.Fatalf("bracket widening should cost measurably: %.4f vs %.4f", neighboring, widest)
	}
}

// Randomized Theorem 4: for any same-work nested brackets, the inner pair
// never peaks above the outer pair.
func TestTheorem4NestedBracketsProperty(t *testing.T) {
	md := model(t, 2, 1)
	const period = 0.4
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		target := 0.8 + r.Float64()*0.3
		// Inner bracket around the target.
		innerL := target - (0.02 + r.Float64()*0.1)
		innerH := target + (0.02 + r.Float64()*0.1)
		// Outer bracket strictly containing the inner one.
		outerL := innerL - (0.02 + r.Float64()*(innerL-0.4))
		outerH := innerH + (0.02 + r.Float64()*(1.4-innerH))

		build := func(vL, vH float64) *schedule.Schedule {
			x := (vH - target) / (vH - vL)
			return schedule.Must([][]schedule.Segment{
				{
					{Length: x * period, Mode: power.NewMode(vL)},
					{Length: (1 - x) * period, Mode: power.NewMode(vH)},
				},
				{{Length: period, Mode: power.NewMode(0.7)}},
			})
		}
		stInner, err := NewStable(md, build(innerL, innerH))
		if err != nil {
			return false
		}
		stOuter, err := NewStable(md, build(outerL, outerH))
		if err != nil {
			return false
		}
		pi, _, _ := stInner.PeakDense(32)
		po, _, _ := stOuter.PeakDense(32)
		return pi <= po+2e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The motivation example's quantitative anchor: the same-throughput
// two-mode split of the ideal voltages peaks ABOVE Tmax (Table II → the
// 79.69 °C observation), so ratio adjustment is genuinely required.
func TestTwoModeSplitOverheatsWithoutAdjustment(t *testing.T) {
	md := model(t, 3, 1)
	// Use the calibrated ideal band ≈1.15–1.18 V split into 0.6/1.3 V.
	specs := make([]schedule.TwoModeSpec, 3)
	for i, v := range []float64{1.1755, 1.1501, 1.1755} {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: (v - 0.6) / 0.7,
		}
	}
	s, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := st.PeakEndOfPeriod()
	if md.Absolute(peak) <= 65 {
		t.Fatalf("expected the unadjusted split to exceed 65 °C, got %.2f", md.Absolute(peak))
	}
	if math.IsNaN(peak) {
		t.Fatal("NaN peak")
	}
}
