package sim

import (
	"math"
	"sync"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

func arenaSpecs(n int) []schedule.TwoModeSpec {
	specs := make([]schedule.TwoModeSpec, n)
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.2 + 0.07*float64(i%8),
		}
	}
	// Exercise the degenerate branches of the segment normalization too.
	if n > 2 {
		specs[1].HighRatio = 0 // constant low
		specs[2].HighRatio = 1 // constant high
	}
	return specs
}

// The arena's evaluation of the canonical two-mode cycle must be
// bit-identical to the Schedule-based path: same stable end temperatures,
// same dense peak, on both cold and warm operator caches.
func TestArenaBitIdenticalToSchedulePath(t *testing.T) {
	md, _ := engineSchedule(t, 6)
	eng := NewEngine(md)
	const tc = 20e-3
	specs := arenaSpecs(6)
	sched, err := schedule.TwoMode(tc, specs)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := eng.PeriodCache(sched.Period())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStableCached(md, sched, cache)
	if err != nil {
		t.Fatal(err)
	}
	refEnd := md.CoreTemps(ref.End(ref.NumIntervals() - 1))
	refPeak, _, _ := ref.PeakDense(24)

	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	for run := 0; run < 2; run++ { // second run exercises warm caches
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		end := make([]float64, md.NumCores())
		if err := a.StableEndTempsInto(end, cache); err != nil {
			t.Fatal(err)
		}
		for i := range refEnd {
			if end[i] != refEnd[i] {
				t.Fatalf("run %d: end temp %d: arena %v != schedule %v", run, i, end[i], refEnd[i])
			}
		}
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		dp, err := a.StableDensePeak(cache, 24)
		if err != nil {
			t.Fatal(err)
		}
		if dp != refPeak {
			t.Fatalf("run %d: dense peak: arena %v != schedule %v", run, dp, refPeak)
		}
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		sp, err := a.SchedStableDensePeak(cache, sched, 24)
		if err != nil {
			t.Fatal(err)
		}
		if sp != refPeak {
			t.Fatalf("run %d: sched dense peak: arena %v != schedule %v", run, sp, refPeak)
		}
	}
}

// The composed screening evaluator must agree with the classic Theorem-1
// evaluation to the documented tolerance (see Engine.StepUpPeakComposed)
// and exactly match the engine's own composed evaluator.
func TestArenaComposedMatchesEngine(t *testing.T) {
	md, _ := engineSchedule(t, 6)
	eng := NewEngine(md)
	const tc = 10e-3
	specs := arenaSpecs(6)
	sched, err := schedule.TwoMode(tc, specs)
	if err != nil {
		t.Fatal(err)
	}
	engPeak, _, err := eng.StepUpPeakComposed(sched)
	if err != nil {
		t.Fatal(err)
	}
	classic, _, err := eng.StepUpPeak(sched)
	if err != nil {
		t.Fatal(err)
	}
	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	if err := a.SetTwoMode(tc, specs); err != nil {
		t.Fatal(err)
	}
	cp, err := a.ComposedEndPeak()
	if err != nil {
		t.Fatal(err)
	}
	if cp != engPeak {
		t.Fatalf("arena composed peak %v != engine composed peak %v", cp, engPeak)
	}
	if d := math.Abs(cp - classic); d > 1e-6 {
		t.Fatalf("composed peak %v diverges from classic %v by %v K", cp, classic, d)
	}
}

// Releasing an arena must poison every owned buffer (NaN) and make any
// further use panic; cache-shared operator slices must be dropped, not
// poisoned.
func TestArenaPoisonOnRelease(t *testing.T) {
	md, _ := engineSchedule(t, 3)
	eng := NewEngine(md)
	a := eng.AcquireArena()
	if err := a.SetTwoMode(20e-3, arenaSpecs(3)); err != nil {
		t.Fatal(err)
	}
	cache, err := eng.PeriodCache(a.period)
	if err != nil {
		t.Fatal(err)
	}
	end := make([]float64, md.NumCores())
	if err := a.StableEndTempsInto(end, cache); err != nil {
		t.Fatal(err)
	}
	tinf := a.tinfs[0] // shared with the propagator cache
	eng.ReleaseArena(a)

	if !a.Released() {
		t.Fatal("arena not marked released")
	}
	for name, buf := range map[string][]float64{
		"state": a.state, "start": a.start, "diff": a.diff,
		"ymode": a.ymode, "sample": a.sample, "etot": a.etot,
		"cacc": a.cacc, "expBuf": a.expBuf, "temps": a.temps,
	} {
		for i, v := range buf {
			if !math.IsNaN(v) {
				t.Fatalf("released arena %s[%d] = %v, want NaN poison", name, i, v)
			}
		}
	}
	for q := range a.tinfs {
		if a.tinfs[q] != nil || a.expLs[q] != nil {
			t.Fatalf("released arena still references shared operator slices at interval %d", q)
		}
	}
	for _, v := range tinf {
		if math.IsNaN(v) {
			t.Fatal("release poisoned a propagator-cache-shared slice")
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("use of a released arena did not panic")
		}
	}()
	_ = a.SetTwoMode(20e-3, arenaSpecs(3))
}

// An arena must refuse to be released to an engine it does not belong to:
// its buffers are sized and keyed for its own engine's model.
func TestArenaForeignReleasePanics(t *testing.T) {
	md, _ := engineSchedule(t, 3)
	eng1, eng2 := NewEngine(md), NewEngine(md)
	a := eng1.AcquireArena()
	defer eng1.ReleaseArena(a)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign release did not panic")
		}
	}()
	eng2.ReleaseArena(a)
}

// Arena evaluations must reject caches from other engines and periods —
// the guards that keep a pooled arena from silently mixing solves.
func TestArenaCacheGuards(t *testing.T) {
	md, _ := engineSchedule(t, 3)
	eng, other := NewEngine(md), NewEngine(md)
	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	if err := a.SetTwoMode(20e-3, arenaSpecs(3)); err != nil {
		t.Fatal(err)
	}
	end := make([]float64, md.NumCores())
	foreign, err := other.PeriodCache(a.period)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StableEndTempsInto(end, foreign); err == nil {
		t.Fatal("foreign-engine cache accepted")
	}
	wrong, err := eng.PeriodCache(a.period / 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StableEndTempsInto(end, wrong); err == nil {
		t.Fatal("wrong-period cache accepted")
	}
}

// Concurrent workers on one engine must never share arena memory: every
// goroutine acquires its own arena, evaluates the same cycle, and must see
// exactly the reference temperatures (run under -race in CI).
func TestArenaConcurrentSolvesIsolated(t *testing.T) {
	md, _ := engineSchedule(t, 6)
	eng := NewEngine(md)
	const tc = 20e-3
	specs := arenaSpecs(6)
	sched, err := schedule.TwoMode(tc, specs)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := eng.PeriodCache(sched.Period())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStableCached(md, sched, cache)
	if err != nil {
		t.Fatal(err)
	}
	refEnd := md.CoreTemps(ref.End(ref.NumIntervals() - 1))

	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				a := eng.AcquireArena()
				if err := a.SetTwoMode(tc, specs); err != nil {
					errs[w] = err
					eng.ReleaseArena(a)
					return
				}
				end := make([]float64, md.NumCores())
				if err := a.StableEndTempsInto(end, cache); err != nil {
					errs[w] = err
					eng.ReleaseArena(a)
					return
				}
				for i := range refEnd {
					if end[i] != refEnd[i] {
						t.Errorf("worker %d iter %d: end[%d] %v != %v (arena memory shared across solves?)",
							w, iter, i, end[i], refEnd[i])
						eng.ReleaseArena(a)
						return
					}
				}
				eng.ReleaseArena(a)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
