package sim

import (
	"fmt"
	"math"
	"sort"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// EvalArena is the per-solve scratch memory of the solvers' inner loops:
// one arena per worker goroutine holds every buffer a cycle evaluation
// needs — the merged state-interval structure of the canonical AO
// two-mode cycle, precomputed propagator keys, and the state/eigenmode
// work vectors — so the hot paths (the m-search screening sweep, the TPT
// and refill trial scans, and the dense verification) run without
// allocating.
//
// Evaluation results are bit-identical to the schedule-based path: the
// interval construction mirrors schedule.TwoMode → New → Intervals
// operation for operation (same clamping, the same RelTol breakpoint
// merge, the same midpoint mode resolution), and the numeric kernels are
// the *To variants of exactly the primitives NewStableCached and
// PeakDense call, with shared-cache operator lookups hitting the same
// thermal.Propagator entries. The one intentionally non-identical
// evaluator is ComposedEndPeak, the screening path (see
// Engine.StepUpPeakComposed for its documented ≲1e-8 K tolerance).
//
// Arenas are NOT safe for concurrent use; acquire one per worker from
// Engine.AcquireArena and return it with Engine.ReleaseArena, which
// poisons every owned buffer with NaN so a retained reference fails loudly
// instead of silently corrupting a later solve.
type EvalArena struct {
	eng  *Engine
	md   *thermal.Model
	n    int // cores
	dim  int // thermal nodes
	maxZ int // interval capacity (2n+2 covers shifted two-mode cycles)

	// Two-mode cycle structure (SetTwoMode). Per core at most two
	// normalized segments; per interval a mode vector, its propagator key,
	// and lazily-resolved shared-cache operators.
	period  float64
	z       int
	segLen  [][2]float64
	segMode [][2]power.Mode
	segCnt  []int
	bps     []float64
	ivLen   []float64
	ivModes [][]power.Mode
	keys    [][]byte
	tinfs   [][]float64 // shared propagator slices — never poisoned
	expLs   [][]float64 // shared propagator slices — never poisoned

	// Numeric scratch, all arena-owned.
	state  []float64 // dim
	start  []float64 // dim
	diff   []float64 // dim
	ymode  []float64 // dim
	sample []float64 // dim
	etot   []float64 // dim
	cacc   []float64 // dim
	expBuf []float64 // dim
	temps  []float64 // n

	// spWS is the sparse-backend stepping and stable-solve workspace
	// (nil on the dense backend).
	spWS *sparseScratch

	released bool
}

func newEvalArena(e *Engine) *EvalArena {
	md := e.md
	n, dim := md.NumCores(), md.NumNodes()
	maxZ := 2*n + 2
	a := &EvalArena{eng: e, md: md, n: n, dim: dim, maxZ: maxZ}
	a.segLen = make([][2]float64, n)
	a.segMode = make([][2]power.Mode, n)
	a.segCnt = make([]int, n)
	a.bps = make([]float64, 0, n+2)
	a.ivLen = make([]float64, maxZ)
	modesBuf := make([]power.Mode, maxZ*n)
	a.ivModes = make([][]power.Mode, maxZ)
	for q := range a.ivModes {
		a.ivModes[q] = modesBuf[q*n : (q+1)*n]
	}
	ks := thermal.ModeKeySize(n)
	keysBuf := make([]byte, maxZ*ks)
	a.keys = make([][]byte, maxZ)
	for q := range a.keys {
		a.keys[q] = keysBuf[q*ks : (q+1)*ks]
	}
	a.tinfs = make([][]float64, maxZ)
	a.expLs = make([][]float64, maxZ)
	a.state = make([]float64, dim)
	a.start = make([]float64, dim)
	a.diff = make([]float64, dim)
	a.ymode = make([]float64, dim)
	a.sample = make([]float64, dim)
	a.etot = make([]float64, dim)
	a.cacc = make([]float64, dim)
	a.expBuf = make([]float64, dim)
	a.temps = make([]float64, n)
	if md.SparsePath() {
		a.spWS = newSparseScratch(dim)
	}
	return a
}

// AcquireArena returns a per-worker evaluation arena drawn from the
// engine's pool (allocating one on first use).
func (e *Engine) AcquireArena() *EvalArena {
	a := e.arenas.Get().(*EvalArena)
	a.released = false
	return a
}

// ReleaseArena poisons every arena-owned buffer with NaN and returns the
// arena to the engine's pool. Any evaluation through a stale reference
// after release panics or yields NaN temperatures — never a silently
// plausible plan built on another solve's memory.
func (e *Engine) ReleaseArena(a *EvalArena) {
	if a.eng != e {
		panic("sim: EvalArena released to a foreign engine")
	}
	a.poison()
	e.arenas.Put(a)
}

func (a *EvalArena) poison() {
	a.released = true
	nan := math.NaN()
	bufs := [][]float64{
		a.state, a.start, a.diff, a.ymode, a.sample,
		a.etot, a.cacc, a.expBuf, a.temps, a.ivLen,
	}
	if a.spWS != nil {
		bufs = append(bufs, a.spWS.r, a.spWS.z, a.spWS.p, a.spWS.q, a.spWS.kx)
	}
	for _, buf := range bufs {
		for i := range buf {
			buf[i] = nan
		}
	}
	for i := range a.segLen {
		a.segLen[i][0], a.segLen[i][1] = nan, nan
		a.segCnt[i] = 0
	}
	for q := range a.tinfs {
		a.tinfs[q] = nil // cache-shared slices are not ours to poison
		a.expLs[q] = nil
	}
	a.period = nan
	a.z = 0
}

// Released reports whether the arena is currently checked back into the
// pool (used by the poison-on-release tests).
func (a *EvalArena) Released() bool { return a.released }

func (a *EvalArena) checkLive() {
	if a.released {
		panic("sim: use of a released EvalArena")
	}
}

// SetTwoMode assembles the merged state-interval view of the canonical AO
// low-then-high cycle directly in arena storage — the allocation-free
// equivalent of schedule.TwoMode followed by Intervals, mirrored operation
// for operation so every derived float (period, breakpoints, interval
// lengths, midpoint mode resolution) is bit-identical to the Schedule
// path. It must be called before the evaluation methods.
func (a *EvalArena) SetTwoMode(tc float64, specs []schedule.TwoModeSpec) error {
	a.checkLive()
	if len(specs) != a.n {
		return fmt.Errorf("sim: %d two-mode specs for %d cores", len(specs), a.n)
	}
	if tc <= 0 {
		return fmt.Errorf("sim: non-positive cycle length %v", tc)
	}
	// Per-core normalized segments (TwoMode's clamp + normalize's
	// zero-drop and equal-mode merge).
	for i, sp := range specs {
		if sp.HighRatio < -schedule.RelTol || sp.HighRatio > 1+schedule.RelTol {
			return fmt.Errorf("sim: core %d HighRatio %v outside [0,1]", i, sp.HighRatio)
		}
		r := math.Min(1, math.Max(0, sp.HighRatio))
		switch {
		case r == 0:
			a.segCnt[i] = 1
			a.segLen[i][0] = tc
			a.segMode[i][0] = sp.Low
		case r == 1:
			a.segCnt[i] = 1
			a.segLen[i][0] = tc
			a.segMode[i][0] = sp.High
		default:
			l1, l2 := (1-r)*tc, r*tc
			switch {
			case sp.Low == sp.High:
				// normalize merges adjacent equal modes.
				a.segCnt[i] = 1
				a.segLen[i][0] = l1 + l2
				a.segMode[i][0] = sp.Low
			case l1 <= 0:
				// normalize drops zero-length segments.
				a.segCnt[i] = 1
				a.segLen[i][0] = l2
				a.segMode[i][0] = sp.High
			case l2 <= 0:
				a.segCnt[i] = 1
				a.segLen[i][0] = l1
				a.segMode[i][0] = sp.Low
			default:
				a.segCnt[i] = 2
				a.segLen[i][0], a.segLen[i][1] = l1, l2
				a.segMode[i][0], a.segMode[i][1] = sp.Low, sp.High
			}
		}
	}
	// schedule.New derives the period from core 0's pre-normalization
	// segment sum — (1−r)·tc + r·tc for an oscillating core 0, which can
	// differ from tc in the last ulp, and everything downstream keys off
	// that exact value.
	r0 := math.Min(1, math.Max(0, specs[0].HighRatio))
	if r0 == 0 || r0 == 1 {
		a.period = tc
	} else {
		a.period = (1-r0)*tc + r0*tc
	}

	// Breakpoints: 0, the period, and every interior segment boundary;
	// sorted, RelTol-merged, final point snapped to the period (exactly
	// Schedule.Intervals).
	eps := schedule.RelTol * math.Max(1, a.period)
	pts := append(a.bps[:0], 0, a.period)
	for i := 0; i < a.n; i++ {
		var acc float64
		for s := 0; s < a.segCnt[i]-1; s++ {
			acc += a.segLen[i][s]
			pts = append(pts, acc)
		}
	}
	sort.Float64s(pts)
	merged := pts[:1]
	for _, p := range pts[1:] {
		if p-merged[len(merged)-1] > eps {
			merged = append(merged, p)
		}
	}
	merged[len(merged)-1] = a.period
	a.bps = pts[:0]

	a.z = len(merged) - 1
	for q := 0; q < a.z; q++ {
		mid := 0.5 * (merged[q] + merged[q+1])
		a.ivLen[q] = merged[q+1] - merged[q]
		modes := a.ivModes[q]
		for i := 0; i < a.n; i++ {
			modes[i] = a.modeAt(i, mid)
		}
		thermal.ModeKeyInto(a.keys[q], modes)
		a.tinfs[q] = nil
		a.expLs[q] = nil
	}
	return nil
}

// modeAt mirrors Schedule.ModeAt for 0 < t < period (no wrap needed; the
// interval midpoints are strictly interior).
func (a *EvalArena) modeAt(core int, t float64) power.Mode {
	var acc float64
	cnt := a.segCnt[core]
	for s := 0; s < cnt; s++ {
		acc += a.segLen[core][s]
		if t < acc {
			return a.segMode[core][s]
		}
	}
	return a.segMode[core][cnt-1]
}

// checkCache validates that cache belongs to this arena's engine and
// matches the assembled cycle period, mirroring NewStableCached's guards.
func (a *EvalArena) checkCache(cache *PeriodCache) error {
	if cache.md != a.md {
		return fmt.Errorf("sim: PeriodCache built for a different model")
	}
	if cache.prop != a.eng.prop {
		return fmt.Errorf("sim: EvalArena requires a cache from its own engine")
	}
	if d := cache.tp - a.period; d > 1e-9*a.period || d < -1e-9*a.period {
		return fmt.Errorf("sim: PeriodCache period %v != cycle period %v", cache.tp, a.period)
	}
	return nil
}

// resolveOps fills the per-interval steady-state targets and exponential
// factors from the shared propagator cache (allocation-free on hits). The
// sparse backend has no eigenbasis factors — only the T∞ cache applies;
// stepping goes through the exponential action instead.
func (a *EvalArena) resolveOps(prop *thermal.Propagator) {
	sparse := a.md.SparsePath()
	for q := 0; q < a.z; q++ {
		if a.tinfs[q] == nil {
			a.tinfs[q] = prop.SteadyStateKeyed(a.keys[q], a.ivModes[q])
		}
		if !sparse && a.expLs[q] == nil {
			a.expLs[q] = prop.ExpFactors(a.ivLen[q])
		}
	}
}

// stablePasses runs the two stable-status passes of NewStableCached over
// the assembled cycle: the zero-start propagation, the (I−K)⁻¹ solve into
// a.start, and the stable walk leaving the end-of-period state in a.state.
// Bit-identical to the Schedule-based solve on both backends (the sparse
// branch runs exactly the kernels NewStableCached reaches through
// Propagator.Step and PeriodCache.StableStart, in the same order).
func (a *EvalArena) stablePasses(cache *PeriodCache) error {
	a.resolveOps(cache.prop)
	if a.md.SparsePath() {
		return a.stablePassesSparse(cache)
	}
	eig := a.md.Eigen()
	state := a.state
	for i := range state {
		state[i] = 0
	}
	for q := 0; q < a.z; q++ {
		eig.StepVecExpTo(state, a.diff, a.ymode, a.expLs[q], state, a.tinfs[q])
	}
	if _, err := cache.lu.SolveVecTo(a.start, state); err != nil {
		return err
	}
	copy(state, a.start)
	for q := 0; q < a.z; q++ {
		eig.StepVecExpTo(state, a.diff, a.ymode, a.expLs[q], state, a.tinfs[q])
	}
	return nil
}

// stablePassesSparse is the sparse-backend body of stablePasses: in-place
// exponential-action stepping plus the PCG stable solve, all through the
// arena's sparseScratch.
func (a *EvalArena) stablePassesSparse(cache *PeriodCache) error {
	state := a.state
	for i := range state {
		state[i] = 0
	}
	for q := 0; q < a.z; q++ {
		a.md.StepSparseTo(state, a.diff, a.ivLen[q], state, a.tinfs[q], &a.spWS.exp)
	}
	if err := cache.stableStartSparseTo(a.start, state, a.spWS); err != nil {
		return err
	}
	copy(state, a.start)
	for q := 0; q < a.z; q++ {
		a.md.StepSparseTo(state, a.diff, a.ivLen[q], state, a.tinfs[q], &a.spWS.exp)
	}
	return nil
}

// StableEndTempsInto evaluates the stable end-of-period core temperature
// rises of the assembled cycle into dst (length NumCores) — the Theorem-1
// peak evaluation of the AO inner loops, bit-identical to NewStableCached
// + CoreTemps(End(last)).
func (a *EvalArena) StableEndTempsInto(dst []float64, cache *PeriodCache) error {
	a.checkLive()
	if err := a.checkCache(cache); err != nil {
		return err
	}
	if err := a.stablePasses(cache); err != nil {
		return err
	}
	copy(dst, a.state[:a.n])
	return nil
}

// StableDensePeak evaluates the dense-sampled stable peak of the assembled
// cycle — bit-identical to NewStableCached + PeakDense(samples).
func (a *EvalArena) StableDensePeak(cache *PeriodCache, samples int) (float64, error) {
	a.checkLive()
	if err := a.checkCache(cache); err != nil {
		return 0, err
	}
	if err := a.stablePasses(cache); err != nil {
		return 0, err
	}
	return a.densePeakScan(cache.prop, samples), nil
}

// densePeakScan replicates Stable.PeakDense over the arena cycle, assuming
// stablePasses just ran (a.start holds the stable start). It re-walks the
// period, sampling each interval at `samples` interior points plus its end.
func (a *EvalArena) densePeakScan(prop *thermal.Propagator, samples int) float64 {
	if samples < 1 {
		samples = 1
	}
	if a.md.SparsePath() {
		return a.densePeakScanSparse(samples)
	}
	eig := a.md.Eigen()
	cur := a.state
	copy(cur, a.start)
	peak, _ := mat.VecMax(a.start[:a.n])
	for q := 0; q < a.z; q++ {
		for k := 1; k <= samples; k++ {
			frac := float64(k) / float64(samples)
			expS := prop.ExpFactors(a.ivLen[q] * frac)
			eig.StepVecExpTo(a.sample, a.diff, a.ymode, expS, cur, a.tinfs[q])
			if p, _ := mat.VecMax(a.sample[:a.n]); p > peak {
				peak = p
			}
		}
		eig.StepVecExpTo(cur, a.diff, a.ymode, a.expLs[q], cur, a.tinfs[q])
	}
	return peak
}

// densePeakScanSparse mirrors densePeakScan through the exponential
// action: the same fractional sample offsets, the same end-of-interval
// walk, the same values as Stable.PeakDense on the sparse backend.
func (a *EvalArena) densePeakScanSparse(samples int) float64 {
	cur := a.state
	copy(cur, a.start)
	peak, _ := mat.VecMax(a.start[:a.n])
	for q := 0; q < a.z; q++ {
		for k := 1; k <= samples; k++ {
			frac := float64(k) / float64(samples)
			a.md.StepSparseTo(a.sample, a.diff, a.ivLen[q]*frac, cur, a.tinfs[q], &a.spWS.exp)
			if p, _ := mat.VecMax(a.sample[:a.n]); p > peak {
				peak = p
			}
		}
		a.md.StepSparseTo(cur, a.diff, a.ivLen[q], cur, a.tinfs[q], &a.spWS.exp)
	}
	return peak
}

// ComposedEndPeak evaluates the Theorem-1 peak of the assembled cycle
// entirely in the eigenbasis — the screening evaluator of the incremental
// m-search. Identical mathematics to Engine.StepUpPeakComposed (and the
// same ≲1e-8 K agreement with the classic path; see that method), with the
// exponential factors computed into arena scratch so screening sweeps do
// not flood the shared length cache with never-again-seen candidate
// lengths.
func (a *EvalArena) ComposedEndPeak() (float64, error) {
	a.checkLive()
	if a.md.SparsePath() {
		// No eigenbasis to compose in. The solver's sparse scale policy
		// screens with exact stable evaluations instead (solver/search.go).
		return 0, fmt.Errorf("sim: ComposedEndPeak requires the dense eigenbasis backend")
	}
	eig := a.md.Eigen()
	prop := a.eng.prop
	etot, c := a.etot, a.cacc
	for i := range etot {
		etot[i] = 1
		c[i] = 0
	}
	for q := 0; q < a.z; q++ {
		eq := eig.ExpLambdaTo(a.expBuf, a.ivLen[q])
		wq := prop.SteadyEigenKeyed(a.keys[q], a.ivModes[q])
		for i := 0; i < a.dim; i++ {
			c[i] = eq[i]*c[i] + (1-eq[i])*wq[i]
			etot[i] *= eq[i]
		}
	}
	for i := 0; i < a.dim; i++ {
		d := 1 - etot[i]
		if d <= 0 {
			// The classic path's (I−K) factorization is singular in the
			// same regime; fail the candidate rather than divide by zero.
			return 0, fmt.Errorf("sim: composed propagator singular for cycle period %v", a.period)
		}
		c[i] /= d
	}
	a.eng.coreW.MulVecTo(a.temps, c)
	peak, _ := mat.VecMax(a.temps)
	return peak, nil
}

// SchedStableDensePeak evaluates the dense-sampled stable peak of an
// arbitrary schedule (PCO's phase-shifted candidates) through arena
// scratch — bit-identical to NewStableCached + PeakDense(samples), without
// the per-step state allocations. Schedules whose merged interval count
// exceeds the arena capacity fall back to the allocating path (same
// values).
func (a *EvalArena) SchedStableDensePeak(cache *PeriodCache, sched *schedule.Schedule, samples int) (float64, error) {
	a.checkLive()
	if cache.md != a.md {
		return 0, fmt.Errorf("sim: PeriodCache built for a different model")
	}
	if cache.prop != a.eng.prop {
		return 0, fmt.Errorf("sim: EvalArena requires a cache from its own engine")
	}
	if d := cache.tp - sched.Period(); d > 1e-9*sched.Period() || d < -1e-9*sched.Period() {
		return 0, fmt.Errorf("sim: PeriodCache period %v != schedule period %v", cache.tp, sched.Period())
	}
	ivs := sched.Intervals()
	if len(ivs) > a.maxZ {
		st, err := NewStableCached(a.md, sched, cache)
		if err != nil {
			return 0, err
		}
		peak, _, _ := st.PeakDense(samples)
		return peak, nil
	}
	a.period = sched.Period()
	a.z = len(ivs)
	for q, iv := range ivs {
		a.ivLen[q] = iv.Length
		copy(a.ivModes[q], iv.Modes)
		thermal.ModeKeyInto(a.keys[q], iv.Modes)
		a.tinfs[q] = nil
		a.expLs[q] = nil
	}
	if err := a.stablePasses(cache); err != nil {
		return 0, err
	}
	return a.densePeakScan(cache.prop, samples), nil
}
