package sim

import (
	"math"
	"sync"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

func engineSchedule(t testing.TB, n int) (*thermal.Model, *schedule.Schedule) {
	t.Helper()
	rows, cols := 3, n/3
	if n < 4 {
		rows, cols = n, 1
	}
	md, err := thermal.Default(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]schedule.TwoModeSpec, n)
	for i := range specs {
		specs[i] = schedule.TwoModeSpec{
			Low:       power.NewMode(0.6),
			High:      power.NewMode(1.3),
			HighRatio: 0.25 + 0.06*float64(i%7),
		}
	}
	s, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		t.Fatal(err)
	}
	return md, s
}

// Engine.Stable must be bit-identical to the uncached NewStable — start,
// every interval end, and dense samples alike.
func TestEngineStableBitIdentical(t *testing.T) {
	md, s := engineSchedule(t, 6)
	eng := NewEngine(md)
	direct, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ { // second run exercises warm caches
		cached, err := eng.Stable(s)
		if err != nil {
			t.Fatal(err)
		}
		a, b := direct.Start(), cached.Start()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d: start[%d] %v != %v", run, i, b[i], a[i])
			}
		}
		for q := 0; q < direct.NumIntervals(); q++ {
			a, b = direct.End(q), cached.End(q)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("run %d: end[%d][%d] %v != %v", run, q, i, b[i], a[i])
				}
			}
		}
		dp, dc, dat := direct.PeakDense(24)
		cp, cc, cat := cached.PeakDense(24)
		if dp != cp || dc != cc || dat != cat {
			t.Fatalf("run %d: PeakDense (%v,%d,%v) != (%v,%d,%v)", run, cp, cc, cat, dp, dc, dat)
		}
	}
}

// The period pool must hand back one shared PeriodCache per distinct
// period and keep distinct periods apart.
func TestEnginePeriodCachePooled(t *testing.T) {
	md, s := engineSchedule(t, 3)
	eng := NewEngine(md)
	a, err := eng.PeriodCache(s.Period())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.PeriodCache(s.Period())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same period built twice")
	}
	c, err := eng.PeriodCache(s.Period() / 2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct periods shared one cache")
	}
	if _, err := eng.PeriodCache(-1); err == nil {
		t.Fatal("negative period must error")
	}
}

// The composed (semigroup) evaluator must agree with the classic
// Theorem-1 path to solver tolerance on step-up schedules.
func TestStepUpPeakComposedMatchesClassic(t *testing.T) {
	for _, n := range []int{2, 3, 6, 9} {
		md, s := engineSchedule(t, n)
		eng := NewEngine(md)
		classic, coreA, err := eng.StepUpPeak(s)
		if err != nil {
			t.Fatal(err)
		}
		composed, coreB, err := eng.StepUpPeakComposed(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(classic-composed) > 1e-7 {
			t.Fatalf("n=%d: composed peak %v vs classic %v", n, composed, classic)
		}
		if coreA != coreB {
			t.Fatalf("n=%d: hottest core %d vs %d", n, coreB, coreA)
		}
	}
}

// Concurrent period construction and stable solves must be safe (-race)
// and deterministic.
func TestEngineConcurrent(t *testing.T) {
	md, s := engineSchedule(t, 6)
	eng := NewEngine(md)
	want, _, err := eng.StepUpPeak(s)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	errs := make([]error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 1; k <= 20; k++ {
				cyc := s.Cycle(1 + (w+k)%5)
				if _, err := eng.Stable(cyc); err != nil {
					errs[w] = err
					return
				}
			}
			got, _, err := eng.StepUpPeak(s)
			if err != nil {
				errs[w] = err
				return
			}
			if got != want {
				errs[w] = errMismatch{got, want}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

type errMismatch struct{ got, want float64 }

func (e errMismatch) Error() string {
	return "peak mismatch under concurrency"
}
