package sim

import (
	"math"
	"testing"

	"thermosc/internal/mat"
	"thermosc/internal/schedule"
)

func TestRK45MatchesClosedForm(t *testing.T) {
	md := model(t, 3, 1)
	s := schedule.Must([][]schedule.Segment{
		{seg(0.3, 0.6), seg(0.7, 1.3)},
		{seg(1.0, 0.9)},
		{seg(0.5, 0.6), seg(0.5, 1.2)},
	})
	exact := md.ZeroState()
	for p := 0; p < 2; p++ {
		exact = PeriodEnd(md, s, exact)
	}
	got, steps, err := RK45(md, s, md.ZeroState(), 2, DefaultRK45())
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 {
		t.Fatal("no steps accepted")
	}
	if !mat.VecEqual(got, exact, 1e-5*math.Max(1, mat.VecNormInf(exact))) {
		t.Fatalf("RK45 deviates from closed form:\n%v\n%v", got, exact)
	}
}

func TestRK45AdaptsToTolerance(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	loose := RK45Options{AbsTol: 1e-3, RelTol: 1e-3}
	tight := RK45Options{AbsTol: 1e-9, RelTol: 1e-9}
	_, stepsLoose, err := RK45(md, s, md.ZeroState(), 1, loose)
	if err != nil {
		t.Fatal(err)
	}
	_, stepsTight, err := RK45(md, s, md.ZeroState(), 1, tight)
	if err != nil {
		t.Fatal(err)
	}
	if stepsTight <= stepsLoose {
		t.Fatalf("tighter tolerance should need more steps: %d vs %d", stepsTight, stepsLoose)
	}
	// And the tight run should be closer to the closed form.
	exact := PeriodEnd(md, s, md.ZeroState())
	gotTight, _, err := RK45(md, s, md.ZeroState(), 1, tight)
	if err != nil {
		t.Fatal(err)
	}
	errTight := mat.VecNormInf(mat.VecSub(gotTight, exact))
	if errTight > 1e-6 {
		t.Fatalf("tight tolerance error %v", errTight)
	}
}

func TestRK45CheaperThanFixedStepAtEqualAccuracy(t *testing.T) {
	// The adaptive integrator should need far fewer derivative
	// evaluations than a fixed-step RK4 resolving the fastest node.
	md := model(t, 2, 1)
	s := twoCoreSched()
	_, steps, err := RK45(md, s, md.ZeroState(), 1, DefaultRK45())
	if err != nil {
		t.Fatal(err)
	}
	fixedSteps := int(s.Period() / 1e-4) // the dt RK4 needs (see its test)
	if steps*7 >= fixedSteps*4 {
		t.Fatalf("adaptive (%d×7 evals) not cheaper than fixed (%d×4 evals)", steps, fixedSteps)
	}
}

func TestRK45Validation(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	if _, _, err := RK45(md, s, md.ZeroState(), 0, DefaultRK45()); err == nil {
		t.Fatal("zero periods must error")
	}
}
