// Package sim evaluates the thermal behaviour of periodic multi-core
// schedules on a compact RC model: exact piecewise-exponential transients
// (paper eq. (3)), the thermally stable status (eq. (4)), and peak
// temperature identification — the O(z) end-of-period evaluation that
// Theorem 1 licenses for step-up schedules, and a dense-sampling search
// for arbitrary schedules. A classic RK4 integrator cross-validates the
// closed-form solutions (standing in for HotSpot transient simulation).
package sim

import (
	"errors"
	"fmt"

	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// PeriodEnd propagates the state t0 through exactly one period of sched
// using the closed-form per-interval solution and returns the state at the
// end of the period.
func PeriodEnd(md *thermal.Model, sched *schedule.Schedule, t0 []float64) []float64 {
	state := mat.VecClone(t0)
	for _, iv := range sched.Intervals() {
		state = md.Step(iv.Length, state, iv.Modes)
	}
	return state
}

// PeriodCache holds the period-dependent operators of the stable-status
// equation — on the dense backend K = e^{A·t_p} and an LU factorization
// of (I−K), so repeated stable solves over schedules with the same period
// (the AO inner loops) share the O(n³) setup. On the sparse backend
// neither K nor a factorization of (I−K) is ever formed: StableStart runs
// the preconditioned CG of sparse.go, and the cache only pins the node
// capacitances that define its inner product.
type PeriodCache struct {
	md *thermal.Model
	tp float64
	lu *mat.LU // dense backend; nil on the sparse path
	// cDiag is the C diagonal of the sparse-backend PCG inner product
	// (nil on the dense path).
	cDiag []float64
	// prop, when set, memoizes the per-interval operators (T∞ per mode
	// vector, exp(λ·Δt) per length) across every solve that shares this
	// cache. Cached values are bit-identical to recomputation, so the
	// stable status is unchanged — only cheaper. See thermal.Propagator
	// and Engine.
	prop *thermal.Propagator
}

// NewPeriodCache prepares the stable-status operators for period tp.
func NewPeriodCache(md *thermal.Model, tp float64) (*PeriodCache, error) {
	return newPeriodCacheProp(md, tp, nil)
}

func newPeriodCacheProp(md *thermal.Model, tp float64, prop *thermal.Propagator) (*PeriodCache, error) {
	if tp <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", tp)
	}
	if md.SparsePath() {
		return &PeriodCache{md: md, tp: tp, cDiag: md.Capacitances(), prop: prop}, nil
	}
	k := md.Eigen().ExpAt(tp)
	imk := mat.Eye(md.NumNodes()).SubInPlace(k)
	lu, err := mat.Factorize(imk)
	if err != nil {
		return nil, fmt.Errorf("sim: (I−K) singular for period %v: %w", tp, err)
	}
	return &PeriodCache{md: md, tp: tp, lu: lu, prop: prop}, nil
}

// steadyState resolves T∞(modes) through the propagator cache when one is
// attached, and directly otherwise. Either way the result is the exact
// Model.SteadyState output (cache hits are bit-identical).
func (c *PeriodCache) steadyState(modes []power.Mode) []float64 {
	if c.prop != nil {
		return c.prop.SteadyState(modes)
	}
	return c.md.SteadyState(modes)
}

// StableStart maps the end-of-period state reached from the all-ambient
// start (T(0)=0) to the start-of-period state in the thermally stable
// status: T* = (I−K)⁻¹·T(t_p) — the closed form of paper eq. (4) at q = z.
// Dense backend: one LU solve. Sparse backend: the preconditioned CG of
// sparse.go (allocating its own scratch; the arenas reuse theirs).
func (c *PeriodCache) StableStart(endFromZero []float64) ([]float64, error) {
	if c.lu == nil {
		dst := make([]float64, len(endFromZero))
		if err := c.stableStartSparseTo(dst, endFromZero, newSparseScratch(c.md.NumNodes())); err != nil {
			return nil, err
		}
		return dst, nil
	}
	return c.lu.SolveVec(endFromZero)
}

// Stable is the thermally-stable-status view of one periodic schedule.
type Stable struct {
	md    *thermal.Model
	prop  *thermal.Propagator // optional operator cache (from PeriodCache)
	sched *schedule.Schedule
	ivs   []schedule.Interval
	tinfs [][]float64 // per-interval steady-state targets T∞(v_q)
	start []float64   // stable state at the start of the period
	ends  [][]float64 // stable state at the end of every interval
}

// step advances by dt toward tInf, through the propagator cache when one
// is attached. Both paths produce bit-identical states.
func (s *Stable) step(dt float64, x, tInf []float64) []float64 {
	if s.prop != nil {
		return s.prop.Step(dt, x, tInf)
	}
	return s.md.StepToward(dt, x, tInf)
}

// NewStable solves for the stable status of sched on md.
func NewStable(md *thermal.Model, sched *schedule.Schedule) (*Stable, error) {
	cache, err := NewPeriodCache(md, sched.Period())
	if err != nil {
		return nil, err
	}
	return NewStableCached(md, sched, cache)
}

// NewStableCached is NewStable reusing a PeriodCache whose period must
// match the schedule's.
func NewStableCached(md *thermal.Model, sched *schedule.Schedule, cache *PeriodCache) (*Stable, error) {
	if cache.md != md {
		return nil, errors.New("sim: PeriodCache built for a different model")
	}
	if d := cache.tp - sched.Period(); d > 1e-9*sched.Period() || d < -1e-9*sched.Period() {
		return nil, fmt.Errorf("sim: PeriodCache period %v != schedule period %v", cache.tp, sched.Period())
	}
	st := &Stable{md: md, prop: cache.prop, sched: sched, ivs: sched.Intervals()}
	st.tinfs = make([][]float64, len(st.ivs))
	state := md.ZeroState()
	for q, iv := range st.ivs {
		st.tinfs[q] = cache.steadyState(iv.Modes)
		state = st.step(iv.Length, state, st.tinfs[q])
	}
	start, err := cache.StableStart(state)
	if err != nil {
		return nil, err
	}
	st.start = start
	st.ends = make([][]float64, len(st.ivs))
	cur := start
	for q, iv := range st.ivs {
		cur = st.step(iv.Length, cur, st.tinfs[q])
		st.ends[q] = cur
	}
	return st, nil
}

// Start returns the stable state at the start of the period (copy).
func (s *Stable) Start() []float64 { return mat.VecClone(s.start) }

// End returns the stable state at the end of interval q (copy).
func (s *Stable) End(q int) []float64 { return mat.VecClone(s.ends[q]) }

// NumIntervals returns the number of merged state intervals.
func (s *Stable) NumIntervals() int { return len(s.ivs) }

// At returns the stable-status state at offset t into the period.
func (s *Stable) At(t float64) []float64 {
	if t <= 0 {
		return s.Start()
	}
	var acc float64
	cur := s.start
	for q, iv := range s.ivs {
		if t <= acc+iv.Length || q == len(s.ivs)-1 {
			return s.step(t-acc, cur, s.tinfs[q])
		}
		cur = s.ends[q]
		acc += iv.Length
	}
	return mat.VecClone(cur) // unreachable
}

// PeakEndOfPeriod returns the hottest core temperature rise at the end of
// the period in the stable status, and which core attains it.
//
// By the paper's Theorem 1 this is the peak temperature of a step-up
// schedule. Reproduction finding (see EXPERIMENTS.md): the statement is
// exact when every core's voltage strictly increases over the period, but
// when some core holds a constant mode while others step up, that core's
// temperature derivative is continuous across the period wrap and it keeps
// rising briefly past the period end — the true peak then exceeds this
// value by a small margin (≤ ~0.02 K in the repository calibrations).
// Use PeakDense for a sampling-verified peak; AO verifies its final
// schedules densely for exactly this reason.
func (s *Stable) PeakEndOfPeriod() (peak float64, core int) {
	temps := s.md.CoreTemps(s.ends[len(s.ends)-1])
	return mat.VecMax(temps)
}

// PeakAtIntervalEnds returns the hottest core temperature over all
// interval boundaries in the stable status (the classic "scheduling
// points" heuristic, exact for single cores but not for multi-core
// platforms — see paper §IV).
func (s *Stable) PeakAtIntervalEnds() (peak float64, core int) {
	peak, core = mat.VecMax(s.md.CoreTemps(s.start))
	for _, end := range s.ends {
		if p, c := mat.VecMax(s.md.CoreTemps(end)); p > peak {
			peak, core = p, c
		}
	}
	return peak, core
}

// PeakDense searches for the peak core temperature anywhere in the stable
// period by sampling each state interval at `samples` interior points plus
// its boundaries. It returns the peak rise, the core attaining it, and the
// period offset. Use for arbitrary (non-step-up) schedules such as PCO's
// phase-shifted candidates.
func (s *Stable) PeakDense(samples int) (peak float64, core int, at float64) {
	if samples < 1 {
		samples = 1
	}
	peak, core = mat.VecMax(s.md.CoreTemps(s.start))
	at = 0
	var acc float64
	cur := s.start
	for q, iv := range s.ivs {
		for k := 1; k <= samples; k++ {
			frac := float64(k) / float64(samples)
			st := s.step(iv.Length*frac, cur, s.tinfs[q])
			if p, c := mat.VecMax(s.md.CoreTemps(st)); p > peak {
				peak, core, at = p, c, acc+iv.Length*frac
			}
		}
		cur = s.ends[q]
		acc += iv.Length
	}
	return peak, core, at
}

// StepUpPeak computes the peak temperature of a step-up schedule in O(z)
// via Theorem 1, using (and validating against) the provided cache.
func StepUpPeak(md *thermal.Model, sched *schedule.Schedule, cache *PeriodCache) (float64, int, error) {
	st, err := NewStableCached(md, sched, cache)
	if err != nil {
		return 0, 0, err
	}
	p, c := st.PeakEndOfPeriod()
	return p, c, nil
}
