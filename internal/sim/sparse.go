package sim

import (
	"fmt"

	"thermosc/internal/mat"
)

// This file is the sparse-backend stable-start solver. The dense backend
// factors (I−K) with a dense LU once per period; on the sparse backend
// K = e^{A·t_p} is never formed — the solve runs a preconditioned
// conjugate gradient whose only contact with K is the Al-Mohy–Higham
// exponential action.
//
// CG applies because (I−K) is self-adjoint positive definite in the
// C-inner product ⟨x,y⟩_C = xᵀ·C·y: A = C⁻¹(βE−G) is similar to the
// symmetric C^{-1/2}(βE−G)C^{-1/2}, so C·e^{A·t} is symmetric and the
// eigenvalues of (I−K), 1−e^{λ·t_p} with λ < 0, are all positive.
//
// Conditioning is the real problem: the platform's dominant time constant
// τ is thousands of periods (τ ≈ 30–120 s against t_p = 20 ms), so the
// slow modes give 1−e^{−t_p/τ} ≈ t_p/τ ≈ 10⁻⁴ and plain CG would need
// hundreds of iterations. The resolvent preconditioner
//
//	P⁻¹ = I + (1/t_p)·(G−βE)⁻¹·C = I − (1/t_p)·A⁻¹
//
// (one sparse Cholesky solve, already factored for steady states) maps a
// mode with decay rate u = t_p/τ_k to r(u) = (1 + 1/u)·(1−e^{−u}), which
// lies in [1, 1.3] over the entire spectrum: the slow modes' 1/u blow-up
// exactly cancels the 1−e^{−u} ≈ u collapse. Condition number ≤ 1.3
// means ~10–15 CG iterations to 1e-13 regardless of platform size.
const (
	// stableSolveTol is the relative C-norm residual at which the PCG
	// stable-start solve stops — comfortably below the 1e-8 dense/sparse
	// differential contract and the solver's 1e-6 K feasibility tolerance.
	stableSolveTol = 1e-13
	// stableSolveMaxIter bounds the PCG iteration count. The resolvent
	// preconditioner needs ~10–15 iterations; hitting the bound means the
	// model violates the spectral assumptions and the solve fails loudly.
	stableSolveMaxIter = 200
)

// sparseScratch owns every vector of one PCG stable-start solve plus the
// exponential-action workspace, so arena-driven solves allocate nothing.
type sparseScratch struct {
	r, z, p, q []float64 // PCG residual, preconditioned residual, direction, operator image
	kx         []float64 // K·x scratch of the (I−K) application
	exp        mat.ExpmvScratch
}

func newSparseScratch(dim int) *sparseScratch {
	return &sparseScratch{
		r:  make([]float64, dim),
		z:  make([]float64, dim),
		p:  make([]float64, dim),
		q:  make([]float64, dim),
		kx: make([]float64, dim),
	}
}

// dotC is the C-inner product ⟨x,y⟩_C = Σ c_i·x_i·y_i.
func dotC(c, x, y []float64) float64 {
	var acc float64
	for i, ci := range c {
		acc += ci * x[i] * y[i]
	}
	return acc
}

// applyIMKTo computes dst = (I − e^{A·t_p})·x; dst must not alias x.
func (c *PeriodCache) applyIMKTo(dst, x []float64, ws *sparseScratch) {
	c.md.ASparse().ExpActionTo(ws.kx, c.tp, x, &ws.exp)
	for i := range dst {
		dst[i] = x[i] - ws.kx[i]
	}
}

// precondTo applies the resolvent preconditioner
// dst = r + (1/t_p)·(G−βE)⁻¹·(C∘r); dst must not alias r.
func (c *PeriodCache) precondTo(dst, r []float64) {
	for i := range dst {
		dst[i] = c.cDiag[i] * r[i]
	}
	c.md.SolveSteadyTo(dst, dst)
	inv := 1 / c.tp
	for i := range dst {
		dst[i] = r[i] + inv*dst[i]
	}
}

// stableStartSparseTo solves (I−K)·dst = b by preconditioned CG in the
// C-inner product — the sparse-backend equivalent of the dense LU solve
// in StableStart. dst must not alias b. The iteration is deterministic
// (zero start, fixed order), so identical inputs produce identical
// stable starts on every worker.
func (c *PeriodCache) stableStartSparseTo(dst, b []float64, ws *sparseScratch) error {
	cd := c.cDiag
	r, z, p, q := ws.r, ws.z, ws.p, ws.q

	for i := range dst {
		dst[i] = 0
	}
	copy(r, b)
	bnorm := dotC(cd, r, r)
	if bnorm == 0 {
		return nil
	}
	tol2 := stableSolveTol * stableSolveTol * bnorm
	c.precondTo(z, r)
	copy(p, z)
	rz := dotC(cd, r, z)
	for iter := 0; iter < stableSolveMaxIter; iter++ {
		c.applyIMKTo(q, p, ws)
		pq := dotC(cd, p, q)
		if !(pq > 0) {
			// (I−K) is C-SPD for any stable model; a non-positive curvature
			// means the exponential action diverged (NaN propagation).
			return fmt.Errorf("sim: sparse stable solve broke down for period %v", c.tp)
		}
		alpha := rz / pq
		for i := range dst {
			dst[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		if dotC(cd, r, r) <= tol2 {
			return nil
		}
		c.precondTo(z, r)
		rz2 := dotC(cd, r, z)
		beta := rz2 / rz
		rz = rz2
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return fmt.Errorf("sim: sparse stable solve did not converge in %d iterations for period %v", stableSolveMaxIter, c.tp)
}
