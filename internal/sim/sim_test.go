package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

func model(t testing.TB, rows, cols int) *thermal.Model {
	t.Helper()
	md, err := thermal.Default(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

func seg(l, v float64) schedule.Segment {
	return schedule.Segment{Length: l, Mode: power.NewMode(v)}
}

// twoCoreSched: core0 low-then-high, core1 high-then-low, period 2 s.
func twoCoreSched() *schedule.Schedule {
	return schedule.Must([][]schedule.Segment{
		{seg(1, 0.6), seg(1, 1.3)},
		{seg(1, 1.3), seg(1, 0.6)},
	})
}

func randomStepUp(r *rand.Rand, n int, period float64, maxSegs int) *schedule.Schedule {
	palette := []float64{0.6, 0.8, 1.0, 1.2, 1.3}
	cores := make([][]schedule.Segment, n)
	for i := range cores {
		k := 1 + r.Intn(maxSegs)
		// Choose k ascending voltages.
		idx := r.Perm(len(palette))[:k]
		for a := 0; a < len(idx); a++ {
			for b := a + 1; b < len(idx); b++ {
				if idx[b] < idx[a] {
					idx[a], idx[b] = idx[b], idx[a]
				}
			}
		}
		rem := period
		for a, vi := range idx {
			var l float64
			if a == len(idx)-1 {
				l = rem
			} else {
				l = rem * (0.2 + 0.6*r.Float64()) / float64(len(idx)-a)
				rem -= l
			}
			cores[i] = append(cores[i], seg(l, palette[vi]))
		}
	}
	return schedule.Must(cores)
}

func TestPeriodEndMatchesManualStep(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	t0 := md.ZeroState()
	got := PeriodEnd(md, s, t0)
	ivs := s.Intervals()
	want := t0
	for _, iv := range ivs {
		want = md.Step(iv.Length, want, iv.Modes)
	}
	if !mat.VecEqual(got, want, 1e-12) {
		t.Fatal("PeriodEnd mismatch")
	}
}

func TestStableIsFixedPointOfPeriodMap(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	start := st.Start()
	end := PeriodEnd(md, s, start)
	if !mat.VecEqual(start, end, 1e-8) {
		t.Fatalf("stable start is not a fixed point: %v vs %v", start, end)
	}
}

func TestStableMatchesLongTransient(t *testing.T) {
	md := model(t, 3, 1)
	s := schedule.Must([][]schedule.Segment{
		{seg(0.5, 0.6), seg(0.5, 1.3)},
		{seg(1, 0.8)},
		{seg(0.3, 0.6), seg(0.7, 1.2)},
	})
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	// Repeat the period until convergence.
	state := md.ZeroState()
	periods := int(20*md.DominantTimeConstant()/s.Period()) + 5
	for p := 0; p < periods; p++ {
		state = PeriodEnd(md, s, state)
	}
	if !mat.VecEqual(state, st.Start(), 1e-5) {
		t.Fatalf("transient does not converge to stable start:\n%v\n%v", state, st.Start())
	}
}

func TestStableAtBoundaries(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(st.At(0), st.Start(), 1e-12) {
		t.Fatal("At(0) != Start")
	}
	if !mat.VecEqual(st.At(s.Period()), st.End(st.NumIntervals()-1), 1e-9) {
		t.Fatal("At(period) != last interval end")
	}
	// Interior continuity: At just before and after an interval boundary.
	b := 1.0 // boundary between the two intervals
	lo := st.At(b - 1e-9)
	hi := st.At(b + 1e-9)
	if !mat.VecEqual(lo, hi, 1e-5) {
		t.Fatal("temperature discontinuous at interval boundary")
	}
}

func TestRK4MatchesClosedForm(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	t0 := md.ZeroState()
	// Closed form at end of 3 periods.
	exact := t0
	for p := 0; p < 3; p++ {
		exact = PeriodEnd(md, s, exact)
	}
	tr := RK4(md, s, t0, 3, 1e-4)
	num := tr.Temps[len(tr.Temps)-1]
	if !mat.VecEqual(exact, num, 1e-4*math.Max(1, mat.VecNormInf(exact))) {
		t.Fatalf("RK4 deviates from closed form:\n%v\n%v", exact, num)
	}
}

func TestTransientTraceShape(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	tr := Transient(md, s, md.ZeroState(), 2, 8)
	if len(tr.Times) != 1+2*8 {
		t.Fatalf("trace has %d samples", len(tr.Times))
	}
	if tr.Times[0] != 0 || math.Abs(tr.Times[len(tr.Times)-1]-2*s.Period()) > 1e-9 {
		t.Fatalf("trace time range [%v,%v]", tr.Times[0], tr.Times[len(tr.Times)-1])
	}
	// Times strictly increasing.
	for k := 1; k < len(tr.Times); k++ {
		if tr.Times[k] <= tr.Times[k-1] {
			t.Fatalf("times not increasing at %d", k)
		}
	}
}

func TestTransientMatchesPeriodEnd(t *testing.T) {
	md := model(t, 3, 1)
	s := schedule.Must([][]schedule.Segment{
		{seg(0.7, 0.6), seg(1.3, 1.3)},
		{seg(2, 0.8)},
		{seg(1, 1.0), seg(1, 0.6)},
	})
	tr := Transient(md, s, md.ZeroState(), 1, 16)
	want := PeriodEnd(md, s, md.ZeroState())
	got := tr.Temps[len(tr.Temps)-1]
	if !mat.VecEqual(got, want, 1e-8) {
		t.Fatalf("transient end %v != period end %v", got, want)
	}
}

func TestTraceHelpers(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	tr := Transient(md, s, md.ZeroState(), 1, 4)
	series := tr.CoreSeries(md, 0)
	if len(series) != len(tr.Times) {
		t.Fatal("CoreSeries length mismatch")
	}
	if series[0] != md.Absolute(0) {
		t.Fatalf("initial absolute temp = %v", series[0])
	}
	peak, sample, core := tr.MaxCoreRise(md)
	if peak <= 0 || sample < 0 || core < 0 || core >= 2 {
		t.Fatalf("MaxCoreRise = %v,%d,%d", peak, sample, core)
	}
}

// Theorem 1 on the layered model: for step-up schedules the stable-status
// peak occurs at the end of the period, within a small multi-time-scale
// tolerance. The paper proves the theorem for models with one RC node per
// core; in the layered (die+spreader+sink) model a fast die node can
// overshoot its period-end value by a sub-milli-Kelvin margin just after
// the wrap, while the slow spreader layer still lags (documented in
// EXPERIMENTS.md). TestTheorem1ExactOnCoreLevelModel below asserts the
// exact statement on the paper's single-node-per-core model class.
func TestTheorem1StepUpPeakAtPeriodEnd(t *testing.T) {
	md := model(t, 3, 2)
	const layeredTol = 2e-3 // K
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomStepUp(r, 6, 0.5+r.Float64()*4, 3)
		st, err := NewStable(md, s)
		if err != nil {
			return false
		}
		endPeak, _ := st.PeakEndOfPeriod()
		densePeak, _, at := st.PeakDense(24)
		if densePeak > endPeak+layeredTol {
			return false
		}
		return at > 0.95*s.Period() || math.Abs(densePeak-endPeak) < layeredTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// strictStepUp generates schedules where every core's voltage STRICTLY
// increases over the period (no constant-mode cores) — the hypothesis
// under which Theorem 1 is exact (see the reproduction finding documented
// on Stable.PeakEndOfPeriod).
func strictStepUp(r *rand.Rand, n int, period float64) *schedule.Schedule {
	palette := []float64{0.6, 0.8, 1.0, 1.2, 1.3}
	cores := make([][]schedule.Segment, n)
	for i := range cores {
		k := 2 + r.Intn(2)
		start := r.Intn(len(palette) - k + 1)
		rem := period
		for a := 0; a < k; a++ {
			var l float64
			if a == k-1 {
				l = rem
			} else {
				l = rem * (0.2 + 0.6*r.Float64()) / float64(k-a)
				rem -= l
			}
			cores[i] = append(cores[i], seg(l, palette[start+a]))
		}
	}
	return schedule.Must(cores)
}

// Theorem 1, exact form: when every core strictly steps up, the
// dense-search peak never exceeds the period-end peak beyond round-off —
// on both the layered and the core-level model.
func TestTheorem1ExactForStrictStepUp(t *testing.T) {
	fp := floorplan.MustGrid(3, 2, 4e-3)
	mdCL, err := thermal.NewCoreLevelModel(fp, thermal.DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	mdLay := model(t, 3, 2)
	for _, md := range []*thermal.Model{mdCL, mdLay} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			s := strictStepUp(r, 6, 0.3+r.Float64()*4)
			st, err := NewStable(md, s)
			if err != nil {
				return false
			}
			endPeak, _ := st.PeakEndOfPeriod()
			densePeak, _, _ := st.PeakDense(32)
			return densePeak <= endPeak+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	}
}

// The documented exception: a constant-mode core alongside stepping
// neighbors CAN exceed the period-end value — the overshoot exists, is
// positive, and stays well under the documented 0.02 K bound.
func TestTheorem1ConstantCoreOvershoot(t *testing.T) {
	fp := floorplan.MustGrid(3, 2, 4e-3)
	md, err := thermal.NewCoreLevelModel(fp, thermal.DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 constant-hot; others step up late (reproduces the failure
	// family found during calibration).
	s := schedule.Must([][]schedule.Segment{
		{seg(4.2, 1.3)},
		{seg(0.9, 0.8), seg(3.3, 1.2)},
		{seg(4.2, 1.3)},
		{seg(1.8, 0.8), seg(2.4, 1.2)},
		{seg(1.6, 0.6), seg(2.6, 1.2)},
		{seg(1.1, 0.6), seg(3.1, 1.2)},
	})
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	endPeak, _ := st.PeakEndOfPeriod()
	densePeak, _, at := st.PeakDense(64)
	over := densePeak - endPeak
	if over <= 0 {
		t.Skip("this calibration does not exhibit the overshoot for the canned schedule")
	}
	if over > 0.02 {
		t.Fatalf("overshoot %.4f K exceeds the documented 0.02 K bound", over)
	}
	if at > 0.5*s.Period() {
		t.Fatalf("overshoot expected early in the period, found at %.3f/%.3f s", at, s.Period())
	}
}

// Theorem 2: the step-up rearrangement bounds the peak of the original —
// within the small cross-coupling margin documented in EXPERIMENTS.md.
// (The paper's omitted proof treats per-core contributions as if moving a
// high interval later always raises every end temperature; the cross-core
// kernel e^{As}[i][j] is non-monotone in the lag s, so neighbors can be
// heated MORE by an intermediate placement. Measured violations stay
// below ~0.15 K on ~15-25 K rises across both model classes.)
func TestTheorem2StepUpBound(t *testing.T) {
	md := model(t, 3, 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random (not necessarily step-up) schedule.
		palette := []float64{0.6, 0.8, 1.0, 1.3}
		period := 1 + r.Float64()*5
		cores := make([][]schedule.Segment, 3)
		for i := range cores {
			k := 1 + r.Intn(3)
			rem := period
			for a := 0; a < k; a++ {
				var l float64
				if a == k-1 {
					l = rem
				} else {
					l = rem * r.Float64()
					rem -= l
				}
				cores[i] = append(cores[i], seg(l, palette[r.Intn(len(palette))]))
			}
		}
		s := schedule.Must(cores)
		up := s.StepUp()
		stS, err := NewStable(md, s)
		if err != nil {
			return false
		}
		stU, err := NewStable(md, up)
		if err != nil {
			return false
		}
		peakS, _, _ := stS.PeakDense(32)
		peakU, _, _ := stU.PeakDense(32)
		return peakS <= peakU+0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Theorem 2 on the single-node-per-core model: the step-up bound holds to
// within the documented cross-coupling margin when comparing the TRUE
// (densely searched) peaks, and the margin is small relative to the rise.
func TestTheorem2BoundedOnCoreLevelModel(t *testing.T) {
	fp := floorplan.MustGrid(3, 1, 4e-3)
	md, err := thermal.NewCoreLevelModel(fp, thermal.DefaultCoreLevel(), power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	palette := []float64{0.6, 0.8, 1.0, 1.3}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		period := 1 + r.Float64()*5
		cores := make([][]schedule.Segment, 3)
		for i := range cores {
			k := 1 + r.Intn(3)
			rem := period
			for a := 0; a < k; a++ {
				var l float64
				if a == k-1 {
					l = rem
				} else {
					l = rem * r.Float64()
					rem -= l
				}
				cores[i] = append(cores[i], seg(l, palette[r.Intn(len(palette))]))
			}
		}
		s := schedule.Must(cores)
		stS, err := NewStable(md, s)
		if err != nil {
			return false
		}
		stU, err := NewStable(md, s.StepUp())
		if err != nil {
			return false
		}
		peakS, _, _ := stS.PeakDense(32)
		peakU, _, _ := stU.PeakDense(32)
		return peakS <= peakU+0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 5: oscillating all cores monotonically lowers the peak.
func TestTheorem5MOscillatingMonotone(t *testing.T) {
	md := model(t, 3, 1)
	r := rand.New(rand.NewSource(17))
	s := randomStepUp(r, 3, 2.0, 3)
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8, 16} {
		cyc := s.Cycle(m)
		st, err := NewStable(md, cyc)
		if err != nil {
			t.Fatal(err)
		}
		peak, _ := st.PeakEndOfPeriod()
		if peak > prev+1e-9 {
			t.Fatalf("peak rose from %v to %v at m=%d", prev, peak, m)
		}
		prev = peak
	}
}

// Fig. 2 behaviour: oscillating only ONE core can RAISE the peak.
func TestFig2SingleCoreOscillationCanRaisePeak(t *testing.T) {
	md := model(t, 2, 1)
	base := schedule.Must([][]schedule.Segment{
		{seg(0.05, 1.3), seg(0.05, 0.6)},
		{seg(0.05, 0.6), seg(0.05, 1.3)},
	})
	stBase, err := NewStable(md, base)
	if err != nil {
		t.Fatal(err)
	}
	basePeak, _, _ := stBase.PeakDense(64)

	// Double only core 0's oscillation frequency.
	oneCore := schedule.Must([][]schedule.Segment{
		{seg(0.025, 1.3), seg(0.025, 0.6), seg(0.025, 1.3), seg(0.025, 0.6)},
		{seg(0.05, 0.6), seg(0.05, 1.3)},
	})
	stOne, err := NewStable(md, oneCore)
	if err != nil {
		t.Fatal(err)
	}
	onePeak, _, _ := stOne.PeakDense(64)
	if onePeak <= basePeak {
		t.Fatalf("expected single-core oscillation to raise peak: base %.4f, one-core %.4f", basePeak, onePeak)
	}

	// Whereas oscillating BOTH cores lowers it (Theorem 5).
	both := base.Cycle(2)
	stBoth, err := NewStable(md, both)
	if err != nil {
		t.Fatal(err)
	}
	bothPeak, _, _ := stBoth.PeakDense(64)
	if bothPeak > basePeak+1e-9 {
		t.Fatalf("joint oscillation should not raise peak: base %.4f, both %.4f", basePeak, bothPeak)
	}
}

func TestPeriodCacheValidation(t *testing.T) {
	md := model(t, 2, 1)
	if _, err := NewPeriodCache(md, 0); err == nil {
		t.Fatal("zero period must error")
	}
	cache, err := NewPeriodCache(md, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s := twoCoreSched() // period 2
	if _, err := NewStableCached(md, s, cache); err == nil {
		t.Fatal("period mismatch must error")
	}
	other := model(t, 2, 1)
	cache2, err := NewPeriodCache(other, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStableCached(md, s, cache2); err == nil {
		t.Fatal("model mismatch must error")
	}
}

func TestStepUpPeakHelper(t *testing.T) {
	md := model(t, 2, 1)
	s := schedule.Must([][]schedule.Segment{
		{seg(1, 0.6), seg(1, 1.3)},
		{seg(1, 0.6), seg(1, 1.3)},
	})
	cache, err := NewPeriodCache(md, s.Period())
	if err != nil {
		t.Fatal(err)
	}
	peak, core, err := StepUpPeak(md, s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 0 || core < 0 || core > 1 {
		t.Fatalf("StepUpPeak = %v, %d", peak, core)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	md := model(t, 2, 1)
	s := twoCoreSched()
	mustPanic(t, func() { Transient(md, s, md.ZeroState(), 0, 4) })
	mustPanic(t, func() { RK4(md, s, md.ZeroState(), 1, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
