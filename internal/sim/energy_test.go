package sim

import (
	"math"
	"testing"

	"thermosc/internal/power"
	"thermosc/internal/schedule"
)

func TestEnergyMatchesNumericQuadrature(t *testing.T) {
	md := model(t, 2, 1)
	s := schedule.Must([][]schedule.Segment{
		{seg(0.4, 0.6), seg(0.6, 1.3)},
		{seg(1.0, 0.9)},
	})
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Energy()

	// Numeric reference: sample the stable trajectory finely and
	// integrate P(t) = ψ(v) + β·T per core with the trapezoid rule.
	const N = 4000
	pm := md.Power()
	numeric := make([]float64, 2)
	dt := s.Period() / N
	for k := 0; k <= N; k++ {
		tt := float64(k) * dt
		state := st.At(tt)
		w := dt
		if k == 0 || k == N {
			w = dt / 2
		}
		for i := 0; i < 2; i++ {
			m := s.ModeAt(i, math.Min(tt, s.Period()-1e-12))
			if m.IsOff() {
				continue
			}
			numeric[i] += w * (pm.Static(m) + pm.Beta*state[i])
		}
	}
	for i := 0; i < 2; i++ {
		if math.Abs(rep.PerCore[i]-numeric[i]) > 1e-3*numeric[i] {
			t.Fatalf("core %d energy %.6f J vs numeric %.6f J", i, rep.PerCore[i], numeric[i])
		}
	}
	if math.Abs(rep.TotalJ()-(rep.StaticJ+rep.LeakageJ)) > 1e-12 {
		t.Fatal("total split inconsistent")
	}
	wantWork := s.CoreWork(0) + s.CoreWork(1)
	if math.Abs(rep.WorkUnits-wantWork) > 1e-9 {
		t.Fatalf("work units %v, want %v", rep.WorkUnits, wantWork)
	}
	if rep.EnergyPerWork() <= 0 {
		t.Fatal("energy per work must be positive")
	}
}

func TestEnergyIdleIsZero(t *testing.T) {
	md := model(t, 2, 1)
	s := schedule.Constant(1.0, []power.Mode{power.ModeOff, power.ModeOff})
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Energy()
	if rep.TotalJ() != 0 || rep.WorkUnits != 0 || rep.EnergyPerWork() != 0 {
		t.Fatalf("idle platform should consume nothing: %+v", rep)
	}
}

func TestEnergyHigherSpeedCostsMorePerWork(t *testing.T) {
	md := model(t, 2, 1)
	slow := schedule.Constant(1.0, []power.Mode{power.NewMode(0.8), power.NewMode(0.8)})
	fast := schedule.Constant(1.0, []power.Mode{power.NewMode(1.3), power.NewMode(1.3)})
	stSlow, err := NewStable(md, slow)
	if err != nil {
		t.Fatal(err)
	}
	stFast, err := NewStable(md, fast)
	if err != nil {
		t.Fatal(err)
	}
	if stFast.Energy().EnergyPerWork() <= stSlow.Energy().EnergyPerWork() {
		t.Fatal("cubic power law should make the fast mode less efficient per work unit")
	}
}

func TestPeakRefinedImprovesOnDense(t *testing.T) {
	md := model(t, 2, 1)
	// Non-step-up schedule with an interior peak.
	s := schedule.Must([][]schedule.Segment{
		{seg(0.5, 1.3), seg(0.5, 0.6)},
		{seg(0.5, 0.6), seg(0.5, 1.3)},
	})
	st, err := NewStable(md, s)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _, _ := st.PeakDense(6)
	refined, core, at := st.PeakRefined(6, 40)
	if refined < coarse-1e-12 {
		t.Fatalf("refinement lost ground: %.8f vs %.8f", refined, coarse)
	}
	// Against a very dense reference.
	reference, _, _ := st.PeakDense(2000)
	if refined < reference-1e-5 {
		t.Fatalf("refined %.8f below dense reference %.8f", refined, reference)
	}
	if at < 0 || at > s.Period() || core < 0 || core > 1 {
		t.Fatalf("refined location malformed: core %d at %v", core, at)
	}
	// iters < 1 degrades gracefully to PeakDense.
	p0, _, _ := st.PeakRefined(6, 0)
	if math.Abs(p0-coarse) > 1e-12 {
		t.Fatal("zero-iteration refinement should equal dense")
	}
}
