package sim

import (
	"math"

	"thermosc/internal/mat"
)

// EnergyReport accounts the electrical energy of one stable-status period
// of a schedule, split into the temperature-independent component (ψ:
// dynamic power plus leakage floor) and the leakage/temperature feedback
// component (β·T integrated along the exact trajectory).
type EnergyReport struct {
	// PerCore[i] is core i's total energy per period in joules.
	PerCore []float64
	// StaticJ and LeakageJ split the chip total.
	StaticJ, LeakageJ float64
	// WorkUnits is the chip's useful work per period (Σ speed·dt), so
	// EnergyPerWork = TotalJ() / WorkUnits is the J-per-work-unit
	// efficiency metric.
	WorkUnits float64
}

// TotalJ returns the chip's total energy per period.
func (e *EnergyReport) TotalJ() float64 { return e.StaticJ + e.LeakageJ }

// EnergyPerWork returns joules per unit of completed work (0 when idle).
func (e *EnergyReport) EnergyPerWork() float64 {
	if e.WorkUnits == 0 {
		return 0
	}
	return e.TotalJ() / e.WorkUnits
}

// Energy integrates each core's power over one stable-status period using
// the closed-form trajectory: within an interval of length l starting
// from state x with target T∞,
//
//	∫₀ˡ T(t) dt = T∞·l + A⁻¹·(e^{A·l} − I)·(x − T∞),
//
// evaluated through the eigendecomposition on the dense backend and, on
// the sparse backend, through the exponential action plus one sparse
// steady solve per interval (A⁻¹ = −(G−βE)⁻¹·C, so the A⁻¹ application
// is a capacitance scaling followed by the already-factored Cholesky).
func (s *Stable) Energy() *EnergyReport {
	md := s.md
	eig := md.Eigen()
	n := md.NumCores()
	pm := md.Power()
	rep := &EnergyReport{PerCore: make([]float64, n)}
	var cd []float64
	var ws mat.ExpmvScratch
	if md.SparsePath() {
		cd = md.Capacitances()
	}

	cur := s.start
	for q, iv := range s.ivs {
		l := iv.Length
		// ∫ T dt for all nodes over this interval.
		diff := mat.VecSub(cur, s.tinfs[q])
		var intT []float64
		if md.SparsePath() {
			// (e^{A·l} − I)·diff, then −(G−βE)⁻¹·C applied to it.
			intT = md.ASparse().ExpActionTo(make([]float64, len(diff)), l, diff, &ws)
			for i := range intT {
				intT[i] = cd[i] * (intT[i] - diff[i])
			}
			md.SolveSteadyTo(intT, intT)
			for i := 0; i < n; i++ {
				intT[i] = s.tinfs[q][i]*l - intT[i]
			}
		} else {
			y := eig.Winv.MulVec(diff)
			for k, lam := range eig.Lambda {
				// (e^{λl} − 1)/λ, with the λ→0 limit l.
				if math.Abs(lam*l) < 1e-12 {
					y[k] *= l
				} else {
					y[k] *= math.Expm1(lam*l) / lam
				}
			}
			intT = eig.W.MulVec(y)
			for i := 0; i < n; i++ {
				intT[i] += s.tinfs[q][i] * l
			}
		}
		for i := 0; i < n; i++ {
			m := iv.Modes[i]
			scale := md.CoreScale(i)
			staticJ := scale * pm.Static(m) * l
			leakJ := 0.0
			if !m.IsOff() {
				leakJ = scale * pm.Beta * intT[i]
			}
			rep.PerCore[i] += staticJ + leakJ
			rep.StaticJ += staticJ
			rep.LeakageJ += leakJ
			rep.WorkUnits += m.Speed() * l
		}
		cur = s.ends[q]
	}
	return rep
}

// PeakRefined sharpens PeakDense with golden-section refinement around
// the best sample: within the bracketing sub-interval the core's
// temperature is smooth (a sum of exponentials), so a few golden-section
// iterations recover the continuous-time peak to high precision.
func (s *Stable) PeakRefined(samples, iters int) (peak float64, core int, at float64) {
	peak, core, at = s.PeakDense(samples)
	if iters < 1 {
		return peak, core, at
	}
	// Bracket: one dense-sample spacing on either side of the argmax.
	step := s.sched.Period() / float64(max(1, samples*len(s.ivs)))
	lo := math.Max(0, at-step)
	hi := math.Min(s.sched.Period(), at+step)

	tempAt := func(t float64) float64 {
		return s.At(t)[core]
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := tempAt(c), tempAt(d)
	for k := 0; k < iters; k++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = tempAt(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = tempAt(d)
		}
	}
	best := 0.5 * (a + b)
	if v := tempAt(best); v > peak {
		peak, at = v, best
	}
	return peak, core, at
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
