package sim

import (
	"fmt"

	"thermosc/internal/mat"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// SwitchReport characterizes the transient of abandoning one periodic
// schedule (at its thermally stable state) for another.
type SwitchReport struct {
	// PeakRise is the hottest core temperature rise observed during the
	// transition window (K above ambient).
	PeakRise float64
	// SettlePeriods is the first destination period after which the
	// per-period maximum stays at or below settleRise; -1 if it never
	// settles within the analyzed horizon.
	SettlePeriods int
}

// Switch analyzes the transition from `from` (in stable status) to `to`:
// it propagates up to maxPeriods of `to` starting from `from`'s stable
// start-of-period state, sampling samplesPerPeriod points per period, and
// reports the transient peak plus how many periods the hottest core needs
// to settle at or below settleRise (K above ambient).
//
// Governor ladders use this to certify entry hopping: switching DOWN the
// ladder (hot plan → cool plan) starts above the cool threshold by
// construction and decays — SettlePeriods bounds how long the governor
// must wait before trusting the cooler certificate; switching UP starts
// below the hot threshold and must never overshoot it.
func Switch(md *thermal.Model, from, to *schedule.Schedule, settleRise float64,
	maxPeriods, samplesPerPeriod int) (*SwitchReport, error) {
	if maxPeriods < 1 || samplesPerPeriod < 1 {
		return nil, fmt.Errorf("sim: Switch with %d periods, %d samples", maxPeriods, samplesPerPeriod)
	}
	stFrom, err := NewStable(md, from)
	if err != nil {
		return nil, err
	}
	state := stFrom.Start()

	ivs := to.Intervals()
	tinfs := make([][]float64, len(ivs))
	for q, iv := range ivs {
		tinfs[q] = md.SteadyState(iv.Modes)
	}
	rep := &SwitchReport{SettlePeriods: -1}
	for p := 0; p < maxPeriods; p++ {
		periodMax := 0.0
		for q, iv := range ivs {
			sub := iv.Length / float64(samplesPerPeriod)
			for s := 0; s < samplesPerPeriod; s++ {
				state = md.StepToward(sub, state, tinfs[q])
				if hot, _ := mat.VecMax(md.CoreTemps(state)); hot > periodMax {
					periodMax = hot
				}
			}
		}
		if periodMax > rep.PeakRise {
			rep.PeakRise = periodMax
		}
		if rep.SettlePeriods < 0 && periodMax <= settleRise {
			rep.SettlePeriods = p
			// The transient decays monotonically in envelope from here;
			// the peak cannot grow again above what we have seen plus the
			// destination's own stable peak, which settleRise covers.
			break
		}
	}
	return rep, nil
}
