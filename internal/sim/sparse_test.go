package sim

import (
	"math"
	"math/rand"
	"testing"

	"thermosc/internal/floorplan"
	"thermosc/internal/mat"
	"thermosc/internal/power"
	"thermosc/internal/schedule"
	"thermosc/internal/thermal"
)

// backendPair builds the same planar platform on both algebra backends.
func backendPair(t testing.TB, rows, cols int) (dense, sparse *thermal.Model) {
	t.Helper()
	fp, err := floorplan.Grid(rows, cols, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	pp := thermal.HotSpot65nm()
	pm := power.DefaultModel()
	dense, err = thermal.NewModel(fp, pp, pm, thermal.WithAlgebra(thermal.AlgebraDense))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err = thermal.NewModel(fp, pp, pm, thermal.WithAlgebra(thermal.AlgebraSparse))
	if err != nil {
		t.Fatal(err)
	}
	return dense, sparse
}

// maxRelVec is the maximum entrywise relative difference with the scale
// floored at 1 (the states are temperature rises of tens of K; sub-1e-8
// absolute agreement on near-zero entries is equally acceptable).
func maxRelVec(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// The sparse stable status must match the dense reference within the
// repository's 1e-8 dense/sparse differential contract on every stable
// quantity: start state, interval ends, Theorem-1 peak, dense-sampled
// peak, and the energy accounting.
func TestSparseStableMatchesDense(t *testing.T) {
	dm, sm := backendPair(t, 4, 4)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		s := randomStepUp(r, dm.NumCores(), 0.5+r.Float64(), 3)
		std, err := NewStable(dm, s)
		if err != nil {
			t.Fatal(err)
		}
		sts, err := NewStable(sm, s)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxRelVec(std.Start(), sts.Start()); d > 1e-8 {
			t.Fatalf("trial %d: stable start diverges by %g", trial, d)
		}
		last := std.NumIntervals() - 1
		if d := maxRelVec(std.End(last), sts.End(last)); d > 1e-8 {
			t.Fatalf("trial %d: stable end diverges by %g", trial, d)
		}
		pd, cd := std.PeakEndOfPeriod()
		ps, cs := sts.PeakEndOfPeriod()
		if cd != cs || math.Abs(pd-ps) > 1e-8*math.Max(1, pd) {
			t.Fatalf("trial %d: end peak dense %v@%d sparse %v@%d", trial, pd, cd, ps, cs)
		}
		pdd, _, _ := std.PeakDense(8)
		pds, _, _ := sts.PeakDense(8)
		if math.Abs(pdd-pds) > 1e-8*math.Max(1, pdd) {
			t.Fatalf("trial %d: dense-sampled peak %v vs %v", trial, pdd, pds)
		}
		ed, es := std.Energy(), sts.Energy()
		for i := range ed.PerCore {
			if d := math.Abs(ed.PerCore[i]-es.PerCore[i]) / math.Max(1, ed.PerCore[i]); d > 1e-8 {
				t.Fatalf("trial %d: core %d energy diverges by %g", trial, i, d)
			}
		}
	}
}

// The PCG stable start must actually solve (I−K)·x = b: pushing the
// solution through one more exponential action must land back on x − b.
func TestSparseStableStartResidual(t *testing.T) {
	_, sm := backendPair(t, 4, 4)
	cache, err := NewPeriodCache(sm, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	b := make([]float64, sm.NumNodes())
	for i := range b {
		b[i] = r.Float64() * 5
	}
	x, err := cache.StableStart(b)
	if err != nil {
		t.Fatal(err)
	}
	kx := sm.ASparse().ExpActionTo(make([]float64, len(x)), 20e-3, x, nil)
	worst := 0.0
	scale := mat.VecNormInf(x)
	for i := range x {
		res := math.Abs(x[i] - kx[i] - b[i])
		if res > worst {
			worst = res
		}
	}
	if worst > 1e-9*math.Max(1, scale) {
		t.Fatalf("stable-start residual %g (state scale %g)", worst, scale)
	}
}

// On the sparse backend the arena evaluation must stay bit-identical to
// the Schedule-based path, exactly as on the dense backend: same stepping
// kernels, same PCG, same order.
func TestSparseArenaBitIdenticalToSchedulePath(t *testing.T) {
	_, sm := backendPair(t, 4, 4)
	eng := NewEngine(sm)
	const tc = 20e-3
	specs := arenaSpecs(sm.NumCores())
	sched, err := schedule.TwoMode(tc, specs)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := eng.PeriodCache(sched.Period())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStableCached(sm, sched, cache)
	if err != nil {
		t.Fatal(err)
	}
	refEnd := sm.CoreTemps(ref.End(ref.NumIntervals() - 1))
	refPeak, _, _ := ref.PeakDense(24)

	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	for run := 0; run < 2; run++ {
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		end := make([]float64, sm.NumCores())
		if err := a.StableEndTempsInto(end, cache); err != nil {
			t.Fatal(err)
		}
		for i := range end {
			if end[i] != refEnd[i] {
				t.Fatalf("run %d: arena end temp %d = %v, schedule path %v", run, i, end[i], refEnd[i])
			}
		}
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		peak, err := a.StableDensePeak(cache, 24)
		if err != nil {
			t.Fatal(err)
		}
		if peak != refPeak {
			t.Fatalf("run %d: arena dense peak %v, schedule path %v", run, peak, refPeak)
		}
	}
}

// Arena evaluations on the sparse backend must be allocation-free after
// warm-up, like the dense path: the PR 6 arena discipline carries over.
func TestSparseArenaEvalAllocFree(t *testing.T) {
	_, sm := backendPair(t, 4, 4)
	eng := NewEngine(sm)
	const tc = 20e-3
	specs := arenaSpecs(sm.NumCores())
	sched, err := schedule.TwoMode(tc, specs)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := eng.PeriodCache(sched.Period())
	if err != nil {
		t.Fatal(err)
	}
	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	end := make([]float64, sm.NumCores())
	// Warm up the T∞ cache and the expmv scratch.
	if err := a.SetTwoMode(tc, specs); err != nil {
		t.Fatal(err)
	}
	if err := a.StableEndTempsInto(end, cache); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := a.SetTwoMode(tc, specs); err != nil {
			t.Fatal(err)
		}
		if err := a.StableEndTempsInto(end, cache); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("sparse arena evaluation allocates %v times per run", allocs)
	}
}

// StepUpPeakComposed has no eigenbasis to compose in on the sparse
// backend; it must fall back to the exact classic evaluation.
func TestSparseComposedFallsBackToClassic(t *testing.T) {
	_, sm := backendPair(t, 4, 4)
	eng := NewEngine(sm)
	specs := arenaSpecs(sm.NumCores())
	sched, err := schedule.TwoMode(20e-3, specs)
	if err != nil {
		t.Fatal(err)
	}
	pc, cc, err := eng.StepUpPeakComposed(sched)
	if err != nil {
		t.Fatal(err)
	}
	pu, cu, err := eng.StepUpPeak(sched)
	if err != nil {
		t.Fatal(err)
	}
	if pc != pu || cc != cu {
		t.Fatalf("composed fallback %v@%d != classic %v@%d", pc, cc, pu, cu)
	}
	a := eng.AcquireArena()
	defer eng.ReleaseArena(a)
	if err := a.SetTwoMode(20e-3, specs); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ComposedEndPeak(); err == nil {
		t.Fatal("arena ComposedEndPeak should refuse the sparse backend")
	}
}
