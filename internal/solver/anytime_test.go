package solver

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"thermosc/internal/power"
	"thermosc/internal/thermal"
)

// countingCtx counts how many times the solver consults the context —
// the truncation points an anytime solve can be cut at.
type countingCtx struct {
	context.Context
	calls atomic.Int64
}

func (c *countingCtx) Err() error { c.calls.Add(1); return nil }

// countdownCtx reports no cancellation for its first n Err() calls and
// context.Canceled forever after: a deterministic way to land a cancel
// at an exact truncation point (with Workers=1 the poll order is the
// sequential scan order, so runs are reproducible).
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func anytimeProblem(t *testing.T) Problem {
	t.Helper()
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Model: md, Levels: ls, TmaxC: 60,
		Overhead: power.DefaultOverhead(), Workers: 1}
}

// checkAnytime asserts the anytime contract for one truncated run:
// either a typed deadline refusal, or a result that is internally
// consistent — degraded results carry a reason and a real schedule when
// feasible; complete results must match the untruncated baseline bit
// for bit (truncation may degrade, never silently change the answer).
func checkAnytime(t *testing.T, res *Result, err error, baseline *Result, n int64) (degraded bool) {
	t.Helper()
	if err != nil {
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("countdown %d: error %v is not a typed ErrDeadline", n, err)
		}
		return false
	}
	if res.Degraded == DegradedNone {
		if res.Throughput != baseline.Throughput || res.PeakRise != baseline.PeakRise || res.M != baseline.M {
			t.Fatalf("countdown %d: complete result differs from baseline: tpt %v vs %v, peak %v vs %v, m %d vs %d",
				n, res.Throughput, baseline.Throughput, res.PeakRise, baseline.PeakRise, res.M, baseline.M)
		}
		return false
	}
	if res.MEvaluated < 0 {
		t.Fatalf("countdown %d: negative MEvaluated %d", n, res.MEvaluated)
	}
	if res.Feasible && (res.Schedule == nil || res.Throughput <= 0 || res.M < 1) {
		t.Fatalf("countdown %d: degraded feasible result is unusable: %+v", n, res)
	}
	return true
}

// solverAnytimeSweep truncates solve at every k-th context poll from the
// first to past the last and asserts the anytime contract at each point.
func solverAnytimeSweep(t *testing.T, solve func(Problem) (*Result, error)) {
	p := anytimeProblem(t)

	baseline, err := solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Feasible || baseline.Degraded != DegradedNone {
		t.Fatalf("baseline solve degenerate: feasible=%v degraded=%q", baseline.Feasible, baseline.Degraded)
	}

	// Count the truncation points of a full run.
	counter := &countingCtx{Context: context.Background()}
	p.Ctx = counter
	if _, err := solve(p); err != nil {
		t.Fatal(err)
	}
	calls := counter.calls.Load()
	if calls < 2 {
		t.Fatalf("solver consulted the context only %d times — nothing to truncate", calls)
	}

	step := calls / 25
	if step < 1 {
		step = 1
	}
	sawDegraded := false
	for n := int64(0); n <= calls; n += step {
		p.Ctx = newCountdownCtx(n)
		res, err := solve(p)
		if checkAnytime(t, res, err, baseline, n) {
			sawDegraded = true
		}
	}
	// Past the last poll the countdown never fires: complete result.
	p.Ctx = newCountdownCtx(calls + 1)
	res, err := solve(p)
	if err != nil || res.Degraded != DegradedNone {
		t.Fatalf("untruncated countdown run: err=%v degraded=%q", err, res.Degraded)
	}
	if !sawDegraded {
		t.Fatal("no truncation point produced a degraded best-so-far result — the anytime path is dead code")
	}
}

func TestAOAnytimeSweep(t *testing.T)  { solverAnytimeSweep(t, AO) }
func TestPCOAnytimeSweep(t *testing.T) { solverAnytimeSweep(t, PCO) }

// EXS keeps its incumbent: a cancel landing mid-search returns the best
// fully-evaluated feasible assignment tagged DegradedEXS, not an error.
func TestEXSDegradedIncumbent(t *testing.T) {
	md, err := thermal.Default(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Model: md, Levels: power.FullRange(), TmaxC: 65,
		Overhead: power.DefaultOverhead(), Workers: 1}

	// The sequential EXS polls the context every 1024 nodes; by then the
	// high-first descent has long since produced an incumbent.
	p.Ctx = newCountdownCtx(0)
	res, err := EXS(p)
	if err != nil {
		t.Fatalf("canceled EXS with an incumbent errored: %v", err)
	}
	if res.Degraded != DegradedEXS {
		t.Fatalf("truncated EXS not tagged: degraded=%q", res.Degraded)
	}
	if !res.Feasible || res.Throughput <= 0 || res.Schedule == nil {
		t.Fatalf("degraded EXS incumbent is unusable: feasible=%v tpt=%v", res.Feasible, res.Throughput)
	}

	// The incumbent must never beat the true optimum.
	p.Ctx = nil
	full, err := EXS(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > full.Throughput+1e-12 {
		t.Fatalf("degraded incumbent %v beats the proven optimum %v", res.Throughput, full.Throughput)
	}
}

// A cancel must land within one evaluation's worth of work inside the
// parallel EXS inner loop — not after a whole subtree unwinds. The test
// pins the latency: on a search space that takes far longer than the
// bound to exhaust, cancellation must return within a small fraction of
// that.
func TestEXSParallelCancelLatency(t *testing.T) {
	md, err := thermal.Default(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Model: md, Levels: power.FullRange(), TmaxC: 80,
		Overhead: power.DefaultOverhead()}

	ctx, cancel := context.WithCancel(context.Background())
	p.Ctx = ctx
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := EXSParallel(p, 4)
		done <- outcome{res, err}
	}()

	time.Sleep(30 * time.Millisecond)
	cancel()
	canceledAt := time.Now()

	const latencyBound = 5 * time.Second // generous vs the 64-eval poll stride; the full 16^9 tree would take far longer
	select {
	case out := <-done:
		if lat := time.Since(canceledAt); lat > latencyBound {
			t.Fatalf("cancel took %s to land", lat)
		}
		switch {
		case out.err != nil:
			if !errors.Is(out.err, ErrDeadline) {
				t.Fatalf("canceled EXSParallel error %v is not a typed ErrDeadline", out.err)
			}
		case out.res.Degraded == DegradedEXS:
			if !out.res.Feasible || out.res.Throughput <= 0 {
				t.Fatalf("degraded parallel incumbent unusable: %+v", out.res)
			}
		case out.res.Degraded == DegradedNone:
			// The machine finished the search before the cancel landed —
			// nothing to pin, but the result must be intact.
			if !out.res.Feasible {
				t.Fatalf("complete EXSParallel result infeasible: %+v", out.res)
			}
		default:
			t.Fatalf("unexpected degradation tag %q", out.res.Degraded)
		}
	case <-time.After(latencyBound + 25*time.Second):
		t.Fatal("EXSParallel never returned after cancel")
	}
}

// The safe floor is the chain's terminal guarantee: it must produce a
// feasible constant plan with zero regard for the context, or refuse
// with the typed ErrInfeasible — never return garbage.
func TestSafeFloor(t *testing.T) {
	p := anytimeProblem(t)
	// Even an already-expired deadline must not stop the floor.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx

	res, err := SafeFloor(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != DegradedFallback {
		t.Fatalf("floor not tagged as fallback: %q", res.Degraded)
	}
	if res.Name != "LNS" {
		t.Fatalf("floor must keep the LNS method name for the verifier, got %q", res.Name)
	}
	if !res.Feasible || res.Throughput <= 0 || res.M != 1 {
		t.Fatalf("floor degenerate: feasible=%v tpt=%v m=%d", res.Feasible, res.Throughput, res.M)
	}
	if res.PeakRise > p.Model.Rise(p.TmaxC)+feasTol {
		t.Fatalf("floor peak %.4f exceeds the budget %.4f", res.PeakRise, p.Model.Rise(p.TmaxC))
	}
}

// Infeasible platforms produce the typed refusal, never a plan.
func TestSafeFloorInfeasibleRefusals(t *testing.T) {
	md, err := thermal.Default(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := power.PaperLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	ambient := md.Absolute(0)
	cases := []struct {
		name string
		p    Problem
	}{
		{"tmax at ambient: all modes too hot", Problem{
			Model: md, Levels: ls, TmaxC: ambient + 0.01, Overhead: power.DefaultOverhead()}},
		{"no shutdown allowed and no headroom", Problem{
			Model: md, Levels: ls, TmaxC: ambient + 0.01, Overhead: power.DefaultOverhead(), DisallowOff: true}},
	}
	for _, tc := range cases {
		res, err := SafeFloor(tc.p)
		if err == nil {
			t.Errorf("%s: floor returned a plan (tpt %v) instead of refusing", tc.name, res.Throughput)
			continue
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: refusal %v is not typed ErrInfeasible", tc.name, err)
		}
		if res != nil {
			t.Errorf("%s: refusal still carried a result", tc.name)
		}
	}
}
