package solver

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"thermosc/internal/mat"
	"thermosc/internal/power"
)

// EXSParallel is EXS with the branch-and-bound search fanned out across
// worker goroutines: the top-level branches (core 0's candidate modes)
// form the work queue, workers share the incumbent bound through a mutex-
// guarded snapshot, and results merge deterministically. It returns the
// identical optimum to EXS/EXSNaive.
//
// Parallel efficiency note: sharing the incumbent is what makes parallel
// branch-and-bound worthwhile — a late worker inherits the best bound
// found so far and prunes harder than a cold sequential run of its
// subtree. Workers refresh the bound at every subtree root; finer sharing
// is not worth the contention at these problem sizes.
func EXSParallel(p Problem, workers int) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := now()
	n := p.Model.NumCores()
	tmax := p.tmaxRise()
	volts := candidateVoltages(p)
	hcc := coreResponseMatrix(p)
	pm := p.Model.Power()
	psi := make([]float64, len(volts))
	for k, v := range volts {
		psi[k] = pm.Static(power.NewMode(v))
	}
	psiMin := psi[0]

	// Suffix bounds, shared read-only across workers.
	minSuffix := make([][]float64, n+1)
	minSuffix[n] = make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		row := mat.VecClone(minSuffix[j+1])
		mat.VecAXPY(row, psiMin, hcc[j])
		minSuffix[j] = row
	}
	maxSpeedSuffix := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		maxSpeedSuffix[j] = maxSpeedSuffix[j+1] + volts[len(volts)-1]
	}

	// Shared incumbent.
	var mu sync.Mutex
	bestSum := math.Inf(-1)
	var best []int
	var totalEvals int64
	// Cooperative cancellation: any worker observing an expired context
	// raises the flag; the others unwind their subtrees immediately.
	var stop atomic.Bool

	// Work queue: core-0 level indices, high levels first (better seeds).
	jobs := make(chan int)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		idx := make([]int, n)
		temps0 := make([]float64, n)
		var evals int64
		localBest := math.Inf(-1)
		var localIdx []int

		// Per-worker depth-indexed scratch (see EXS): one allocation for
		// the worker's whole share of the tree, not one per interior node.
		scratchBuf := make([]float64, (n+2)*n)
		scratch := make([][]float64, n+2)
		for d := range scratch {
			scratch[d] = scratchBuf[d*n : (d+1)*n : (d+1)*n]
		}

		var dfs func(j int, temps []float64, speedSum float64, bound float64) float64
		dfs = func(j int, temps []float64, speedSum float64, bound float64) float64 {
			if stop.Load() {
				return bound
			}
			evals++
			// Poll the context every 64 evals (a node costs O(n) flops, so
			// 64 of them is well under one schedule evaluation): a cancel
			// lands within one eval's worth of work, not a 1024-node
			// subtree later.
			if evals&63 == 0 && p.ctxErr() != nil {
				stop.Store(true)
				return bound
			}
			if speedSum+maxSpeedSuffix[j] <= bound {
				return bound
			}
			for i := 0; i < n; i++ {
				if temps[i]+minSuffix[j][i] > tmax+feasTol {
					return bound
				}
			}
			if j == n {
				if speedSum > bound {
					bound = speedSum
					if speedSum > localBest {
						localBest = speedSum
						localIdx = append(localIdx[:0], idx...)
					}
				}
				return bound
			}
			local := scratch[j+1]
			for k := len(volts) - 1; k >= 0; k-- {
				// Inner-loop stop check: a sibling's cancellation unwinds
				// this level between children instead of after the whole
				// fan-out of remaining subtrees.
				if stop.Load() {
					return bound
				}
				idx[j] = k
				copy(local, temps)
				mat.VecAXPY(local, psi[k], hcc[j])
				bound = dfs(j+1, local, speedSum+volts[k], bound)
			}
			return bound
		}

		for k0 := range jobs {
			// Inherit the freshest global bound for this subtree.
			mu.Lock()
			bound := bestSum
			mu.Unlock()

			idx[0] = k0
			for i := range temps0 {
				temps0[i] = psi[k0] * hcc[0][i]
			}
			bound = dfs(1, temps0, volts[k0], bound)

			if localIdx != nil && localBest > math.Inf(-1) {
				mu.Lock()
				if localBest > bestSum {
					bestSum = localBest
					best = append(best[:0], localIdx...)
				}
				mu.Unlock()
			}
		}
		mu.Lock()
		totalEvals += evals
		mu.Unlock()
	}

	if n == 1 {
		// Degenerate: no parallelism to extract; fall back.
		res, err := EXS(p)
		if err != nil {
			return nil, err
		}
		res.Name = "EXS-parallel"
		return res, nil
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for k := len(volts) - 1; k >= 0; k-- {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	if stop.Load() {
		// Anytime: every worker merged its incumbent before exiting, so
		// `best` is the best fully-evaluated feasible assignment found
		// before the deadline — return it tagged Degraded. No incumbent
		// means the deadline beat every leaf: a typed deadline refusal.
		if best == nil {
			return nil, deadlineErr(p.ctxErr())
		}
		res, err := exsResult(p, "EXS-parallel", best, bestSum, totalEvals, start)
		if err != nil {
			return nil, err
		}
		res.Degraded = DegradedEXS
		return res, nil
	}

	if best == nil {
		return exsResult(p, "EXS-parallel", nil, bestSum, totalEvals, start)
	}
	return exsResult(p, "EXS-parallel", best, bestSum, totalEvals, start)
}
